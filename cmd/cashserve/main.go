// Command cashserve exposes the cash engine over TCP: build, run,
// compare, and table requests arrive as length-prefixed frames (see
// internal/srv), are admitted through a bounded worker pool, and are
// served by one shared engine with its artifact and run caches.
//
// Usage:
//
//	cashserve -listen :7313
//
// Robustness knobs:
//
//	-workers N        worker pool size (default 8)
//	-queue N          request queue depth; a full queue sheds with a
//	                  typed over-capacity response (default 64)
//	-quota-rate R     per-connection requests/second (0 = unlimited)
//	-quota-burst N    per-connection burst size (default 8)
//	-write-timeout D  slow-client disconnect threshold (default 5s)
//	-drain D          graceful-drain budget on SIGINT/SIGTERM; when it
//	                  expires, in-flight work is hard-canceled (default 30s)
//
// Cache and persistence knobs:
//
//	-cache-budget N   in-memory artifact/run cache byte budget
//	                  (0 = 64 MiB default, negative = cache disabled)
//	-store DIR        persist compiled artifacts and deterministic run
//	                  outcomes under DIR; a restarted server pointed at
//	                  the same DIR warm-starts from them
//	-store-budget N   on-disk store byte budget (0 = 1 GiB default,
//	                  negative = unlimited)
//	-snapshots        serve runs on machines cloned from copy-on-write
//	                  snapshots instead of building each from scratch
//
// Chaos (wire-fault injection, for resilience testing):
//
//	-chaos-rate P     per-event injection probability (default 0 = off)
//	-chaos-seed N     fault schedule seed (default 1)
//
// On SIGINT/SIGTERM the server drains gracefully: listeners close, new
// requests get typed shutting-down responses, in-flight requests finish
// and flush within the drain budget, then the engine is closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cash/internal/chaos"
	"cash/internal/serve"
	"cash/internal/srv"
)

func main() {
	var (
		listen       = flag.String("listen", ":7313", "TCP listen address")
		workers      = flag.Int("workers", srv.DefaultWorkers, "worker pool size")
		queue        = flag.Int("queue", srv.DefaultQueueDepth, "request queue depth (-1 = no queue beyond workers)")
		quotaRate    = flag.Float64("quota-rate", 0, "per-connection requests/second (0 = unlimited)")
		quotaBurst   = flag.Int("quota-burst", 8, "per-connection burst size")
		writeTimeout = flag.Duration("write-timeout", srv.DefaultWriteTimeout, "slow-client disconnect threshold")
		drain        = flag.Duration("drain", 30*time.Second, "graceful drain budget before hard cancel")
		maxInFlight  = flag.Int("max-in-flight", 0, "engine admission bound (0 = derived)")
		chaosRate    = flag.Float64("chaos-rate", 0, "wire-fault injection probability (0 = off)")
		chaosSeed    = flag.Uint64("chaos-seed", chaos.DefaultSeed, "wire-fault schedule seed")
		cacheBudget  = flag.Int64("cache-budget", 0, "in-memory artifact/run cache byte budget (0 = 64 MiB default, negative = disabled)")
		storeDir     = flag.String("store", "", "root a persistent on-disk artifact/run store at this directory; a restarted server warm-starts from it")
		storeBudget  = flag.Int64("store-budget", 0, "on-disk store byte budget (0 = 1 GiB default, negative = unlimited); only with -store")
		snapshots    = flag.Bool("snapshots", false, "serve runs on machines cloned from copy-on-write snapshots")
	)
	flag.Parse()

	eng, err := serve.Open(serve.EngineConfig{
		MaxInFlight: *maxInFlight,
		CacheBytes:  *cacheBudget,
		StoreDir:    *storeDir,
		StoreBytes:  *storeBudget,
		Snapshots:   *snapshots,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashserve: %v\n", err)
		os.Exit(1)
	}
	cfg := srv.Config{
		Engine:       eng,
		Workers:      *workers,
		QueueDepth:   *queue,
		QuotaRate:    *quotaRate,
		QuotaBurst:   *quotaBurst,
		WriteTimeout: *writeTimeout,
	}
	if *chaosRate > 0 {
		cfg.Chaos = chaos.NewPlan(chaos.Config{
			Seed: *chaosSeed, Rate: *chaosRate, Sites: chaos.NetSites(),
		})
	}
	s := srv.New(cfg)

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cashserve: listening on %s (workers %d, queue %d)\n",
		l.Addr(), *workers, *queue)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "cashserve: %v — draining (budget %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "cashserve: drain budget expired, in-flight work canceled\n")
		}
		if err := <-serveErr; err != nil {
			fmt.Fprintf(os.Stderr, "cashserve: %v\n", err)
		}
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "cashserve: %v\n", err)
		eng.Close()
		os.Exit(1)
	}
	eng.Close()
	snap := s.LatencySnapshot()
	fmt.Fprintf(os.Stderr, "cashserve: served %d runs, sim p50 %d p99 %d cycles\n",
		snap.Count, snap.Quantile(50), snap.Quantile(99))
}
