// Command cashload is an open-loop load generator for the cash wire
// server (internal/srv): N concurrent clients issue run requests on a
// fixed arrival schedule — request k of the global sequence departs at
// start + k/rate whether or not earlier requests have completed — and
// the tool reports availability plus simulated-latency quantiles.
//
// Usage:
//
//	cashload -addr host:7313 -clients 100 -per-client 10 -rate 500
//	cashload -pipe                    hermetic in-process server
//
// The report is deterministic for a seeded run: counts are a pure
// function of the schedule and the latency histogram holds simulated
// cycles, never host time, so -pipe output is byte-comparable across
// machines (the CI soak lane diffs it against a committed golden).
//
//	-seed N       request-mix seed (default 1)
//	-rate R       aggregate arrival rate, requests/second (0 = all at once)
//	-timeout D    per-request deadline (0 = none)
//	-retries N    retry budget per request for sheds and transport faults
//	-mode M       compiler mode: gcc, bcc, or cash (default cash)
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"cash/internal/serve"
	"cash/internal/srv"
)

func main() {
	var (
		addr      = flag.String("addr", "", "server address (mutually exclusive with -pipe)")
		pipe      = flag.Bool("pipe", false, "drive an in-process server over net.Pipe (hermetic)")
		clients   = flag.Int("clients", srv.GoldenClients, "concurrent client connections")
		perClient = flag.Int("per-client", srv.GoldenPerClient, "requests per client")
		rate      = flag.Float64("rate", srv.GoldenRate, "aggregate arrival rate, requests/second")
		seed      = flag.Uint64("seed", srv.GoldenSeed, "request-mix seed")
		mode      = flag.String("mode", "cash", "compiler mode for every request")
		timeout   = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		retries   = flag.Int("retries", 0, "retry budget per request")
		workers   = flag.Int("workers", 16, "with -pipe: server worker pool size")
		queue     = flag.Int("queue", 4096, "with -pipe: server queue depth")
	)
	flag.Parse()

	cfg := srv.LoadConfig{
		Clients:   *clients,
		PerClient: *perClient,
		Rate:      *rate,
		Seed:      *seed,
		Mode:      *mode,
		Timeout:   *timeout,
		Retries:   *retries,
	}

	switch {
	case *pipe && *addr != "":
		fmt.Fprintln(os.Stderr, "cashload: -pipe and -addr are mutually exclusive")
		os.Exit(2)
	case *pipe:
		// Hermetic mode: an in-process server over synchronous pipes.
		// The engine bound and queue depth keep the golden run
		// sub-capacity, so availability is 100% by construction.
		eng := serve.NewEngine(serve.EngineConfig{MaxInFlight: 32})
		s := srv.New(srv.Config{Engine: eng, Workers: *workers, QueueDepth: *queue})
		l := srv.NewPipeListener()
		go s.Serve(l)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			s.Shutdown(ctx)
			eng.Close()
		}()
		cfg.Dial = l.Dial
	case *addr != "":
		a := *addr
		cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", a) }
	default:
		fmt.Fprintln(os.Stderr, "cashload: one of -addr or -pipe is required")
		os.Exit(2)
	}

	begin := time.Now()
	rep, err := srv.RunLoad(context.Background(), cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cashload: %v\n", err)
		os.Exit(1)
	}
	// The report (stdout) is deterministic; wall-clock goes to stderr so
	// stdout stays byte-comparable.
	fmt.Print(rep.Format())
	fmt.Fprintf(os.Stderr, "cashload: %d requests in %v\n", rep.Total(), time.Since(begin).Round(time.Millisecond))
}
