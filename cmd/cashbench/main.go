// Command cashbench regenerates the tables and figures of the paper's
// evaluation section from the simulated system.
//
// Usage:
//
//	cashbench -all [-requests 2000]    regenerate everything
//	cashbench -table table1            one table (see -list)
//	cashbench -figure1                 the translation-pipeline trace
//	cashbench -list                    list table ids and captions
//
// All work is served through one cash.Engine: compiled artifacts are
// cached under a content hash, deterministic executions come from a
// run cache, simulated machines are pooled, and admission control
// bounds in-flight work. The serving knobs:
//
//	-repeat N    with -all, serve the suite N times through the same
//	             Engine; pass 1 is printed, later (cache-warm) passes
//	             must be byte-identical or the run fails
//	-no-cache    disable the artifact/run cache
//	-no-pool     disable machine pooling
//	-store DIR   persist compiled artifacts and deterministic run
//	             outcomes under DIR; a later process pointed at the same
//	             DIR warm-starts from them (tables stay byte-identical)
//	-snapshots   clone pre-warmed machines from copy-on-write snapshots
//	             instead of building each machine from scratch
//
// The resilience experiment (fault injection against the network
// servers) takes two extra knobs; the same seed and rate always
// reproduce the same table:
//
//	cashbench -table resilience -chaos-seed 1 -chaos-rate 0.05
//
// The strategy-matrix table sweeps every registered checking strategy
// (cashc -list-strategies) against every pass pipeline; -strategy
// restricts the sweep to a comma-separated subset. An unknown name
// fails with an error listing the valid ones. -mode is the deprecated
// spelling of -strategy:
//
//	cashbench -table strategy-matrix -strategy mpx,bcc
//
// Observability (see internal/obs): the metrics flags report the
// registry delta across exactly the work this process did — counters
// from every layer (vm, paging, ldt, core, netsim) plus the shared
// latency histogram. The delta is deterministic at any -parallel
// setting, which CI pins by diffing -parallel 1 against -parallel 8:
//
//	-metrics            print the metrics delta to stderr
//	-metrics-out FILE   write the metrics delta to FILE as text
//	-metrics-json FILE  write the metrics delta to FILE as JSON
//
// Host-side knobs (none of them change any table's content):
//
//	-parallel N      concurrent experiments per table (default GOMAXPROCS)
//	-json FILE       with -all, write per-table timings as JSON
//	-cpuprofile FILE write a pprof CPU profile
//	-memprofile FILE write a pprof heap profile at exit
//
// Tables go to stdout; the throughput summary goes to stderr, so stdout
// remains byte-comparable across runs and settings.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cash"
	"cash/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cashbench:", err)
		os.Exit(1)
	}
}

// tableTimingJSON is one entry of the -json report.
type tableTimingJSON struct {
	Table           string  `json:"table"`
	HostNS          int64   `json:"host_ns"`
	SimInstructions uint64  `json:"sim_instructions"`
	SimCycles       uint64  `json:"sim_cycles"`
	InstrPerSec     float64 `json:"sim_instr_per_sec"`
}

// sbCountersJSON is the tier-2 superblock activity this process
// accumulated (zero across the board when -tier2 is off).
type sbCountersJSON struct {
	Compiled      uint64 `json:"compiled"`
	Entries       uint64 `json:"entries"`
	Deopts        uint64 `json:"deopts"`
	InstrsRetired uint64 `json:"instrs_retired"`
}

// kernelTimingJSON is one Table 1 kernel's median host cost per
// complete run — the numbers BENCH_*.json speedup records are built
// from.
type kernelTimingJSON struct {
	Kernel          string `json:"kernel"`
	HostNSPerOp     int64  `json:"host_ns_per_op"`
	SimInstructions uint64 `json:"sim_instructions"`
}

type timingReportJSON struct {
	Requests    int                `json:"requests"`
	Parallelism int                `json:"parallelism"`
	Tier2       bool               `json:"tier2"`
	TotalHostNS int64              `json:"total_host_ns"`
	SB          sbCountersJSON     `json:"sb"`
	Tables      []tableTimingJSON  `json:"tables"`
	Kernels     []kernelTimingJSON `json:"kernels"`
}

func run() (err error) {
	var (
		all         = flag.Bool("all", false, "regenerate every table")
		table       = flag.String("table", "", "regenerate one table by id")
		figure1     = flag.Bool("figure1", false, "print the Figure 1 translation trace")
		list        = flag.Bool("list", false, "list available table ids")
		requests    = flag.Int("requests", 2000, "request count for the network experiment")
		parallel    = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent experiments per table (1 = sequential)")
		chaosSeed   = flag.Uint64("chaos-seed", cash.DefaultChaosSeed, "fault-injection PRNG seed for -table resilience")
		chaosRate   = flag.Float64("chaos-rate", cash.DefaultChaosRate, "fault-injection probability per request for -table resilience")
		jsonPath    = flag.String("json", "", "with -all, write per-table timings to this file as JSON")
		cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		metrics     = flag.Bool("metrics", false, "print the observability-registry delta to stderr")
		metricsOut  = flag.String("metrics-out", "", "write the observability-registry delta to this file as text")
		metricsJSON = flag.String("metrics-json", "", "write the observability-registry delta to this file as JSON")
		repeat      = flag.Int("repeat", 1, "with -all, serve the suite this many times through one Engine (later passes must match pass 1)")
		noCache     = flag.Bool("no-cache", false, "disable the Engine's artifact/run cache")
		noPool      = flag.Bool("no-pool", false, "disable the Engine's machine pool")
		passesFlag  = flag.String("passes", "", "comma-separated IR optimization passes (rce,hoist,affine,chop) applied to every experiment")
		tier2       = flag.Bool("tier2", false, "execute every experiment through the tier-2 superblock engine (tables stay byte-identical)")
		strategy    = flag.String("strategy", "", "comma-separated checking strategies restricting -table strategy-matrix (default: every registered strategy)")
		modeFlag    = flag.String("mode", "", "deprecated alias for -strategy")
		storeDir    = flag.String("store", "", "root a persistent on-disk artifact/run store at this directory (survives the process; a second run warm-starts from it)")
		storeBudget = flag.Int64("store-budget", 0, "on-disk store byte budget (0 = 1 GiB default, negative = unlimited); only with -store")
		snapshots   = flag.Bool("snapshots", false, "clone pre-warmed machines from copy-on-write snapshots instead of building each from scratch")
	)
	flag.Parse()

	if sel := *strategy; sel != "" || *modeFlag != "" {
		if sel == "" {
			sel = *modeFlag
		}
		var names []string
		for _, n := range strings.Split(sel, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if err := cash.SetBenchStrategies(names); err != nil {
			return err
		}
	}

	if *passesFlag != "" {
		var passes []string
		for _, p := range strings.Split(*passesFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				passes = append(passes, p)
			}
		}
		cash.SetBenchPasses(passes)
	}
	cash.SetBenchTier2(*tier2)

	// The deprecated global still steers code without an Engine in hand
	// (and Engines built with a zero Parallelism, like the resilience
	// table's private one).
	cash.SetParallelism(*parallel)

	cfg := cash.EngineConfig{
		Parallelism: *parallel,
		StoreDir:    *storeDir,
		StoreBytes:  *storeBudget,
		Snapshots:   *snapshots,
	}
	if *noCache {
		cfg.CacheBytes = -1
	}
	if *noPool {
		cfg.PoolSize = -1
	}
	eng, err := cash.OpenEngine(cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()

	if *cpuProfile != "" {
		f, cerr := os.Create(*cpuProfile)
		if cerr != nil {
			return cerr
		}
		// Teardown runs on every exit path from run: stop the profiler
		// first so its buffered samples are flushed into f, then close f
		// and surface the close error — a short write on the profile is a
		// failure, not a shrug.
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close cpu profile: %w", cerr)
			}
		}()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			return perr
		}
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			if werr := writeHeapProfile(path); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	wantMetrics := *metrics || *metricsOut != "" || *metricsJSON != ""
	var metricsBase cash.MetricsSnapshot
	if wantMetrics {
		metricsBase = cash.Metrics()
		defer func() {
			if err != nil {
				return
			}
			err = emitMetrics(metricsBase, *metrics, *metricsOut, *metricsJSON)
		}()
	}

	switch {
	case *list:
		for _, sp := range cash.Tables() {
			fmt.Printf("%-17s %s\n", sp.ID, sp.Caption)
		}
		return nil

	case *figure1:
		out, err := eng.Figure1Trace(ctx)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case *table != "":
		start := time.Now()
		var (
			tab *cash.ResultTable
			err error
		)
		if *table == "resilience" {
			tab, err = cash.ResilienceTable(*requests, *chaosSeed, *chaosRate)
		} else {
			tab, err = eng.Table(ctx, *table, *requests)
		}
		if err != nil {
			return err
		}
		fmt.Print(tab.Format())
		reportThroughput(time.Since(start))
		return nil

	case *all:
		if *repeat < 1 {
			return fmt.Errorf("-repeat must be at least 1, got %d", *repeat)
		}
		start := time.Now()
		var (
			first   string
			timings []cash.TableTiming
		)
		for pass := 1; pass <= *repeat; pass++ {
			tabs, tms, err := eng.AllTablesTimed(ctx, *requests)
			if err != nil {
				return err
			}
			var b strings.Builder
			for _, tab := range tabs {
				b.WriteString(tab.Format())
				b.WriteByte('\n')
			}
			trace, err := eng.Figure1Trace(ctx)
			if err != nil {
				return err
			}
			b.WriteString(trace)
			if pass == 1 {
				first = b.String()
				timings = tms
				fmt.Print(first)
				continue
			}
			if b.String() != first {
				return fmt.Errorf("pass %d output diverged from pass 1 (%d vs %d bytes): cache-warm passes must be byte-identical", pass, b.Len(), len(first))
			}
		}
		elapsed := time.Since(start)
		reportThroughput(elapsed)
		if *jsonPath != "" {
			// The per-kernel host timings run after the suite so their
			// wall-clock measurement shares the host with nothing else.
			kernels, kerr := cash.KernelHostTimings(5)
			if kerr != nil {
				return kerr
			}
			if err := writeTimings(*jsonPath, *requests, *parallel, *tier2, elapsed, timings, kernels); err != nil {
				return err
			}
		}
		return nil

	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, -figure1 or -list")
	}
}

// writeHeapProfile captures the final live heap into path. The GC run
// before the snapshot collects the benchmark's garbage so the profile
// shows what the process actually retains.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("write heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close heap profile: %w", err)
	}
	return nil
}

// emitMetrics renders the registry delta since base to the requested
// sinks. The delta isolates exactly this process's work and is
// deterministic at any -parallel setting.
func emitMetrics(base cash.MetricsSnapshot, toStderr bool, outPath, jsonPath string) error {
	delta := cash.Metrics().Delta(base)
	if toStderr {
		fmt.Fprint(os.Stderr, delta.Format())
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(delta.Format()), 0o644); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		data, err := delta.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// reportThroughput prints the host-side summary line to stderr: the
// simulated work done this process and the rate it was done at.
func reportThroughput(elapsed time.Duration) {
	instrs, cycles := vm.SimCounters()
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(instrs) / s
	}
	fmt.Fprintf(os.Stderr,
		"cashbench: simulated %d instructions (%d cycles) in %.2fs host time — %.1fM instr/s\n",
		instrs, cycles, elapsed.Seconds(), rate/1e6)
}

func writeTimings(path string, requests, parallel int, tier2 bool, elapsed time.Duration, timings []cash.TableTiming, kernels []cash.KernelTiming) error {
	sbCompiled, sbEntries, sbDeopts, sbRetired := vm.SBCounters()
	rep := timingReportJSON{
		Requests:    requests,
		Parallelism: parallel,
		Tier2:       tier2,
		TotalHostNS: elapsed.Nanoseconds(),
		SB: sbCountersJSON{
			Compiled:      sbCompiled,
			Entries:       sbEntries,
			Deopts:        sbDeopts,
			InstrsRetired: sbRetired,
		},
		Tables:  make([]tableTimingJSON, 0, len(timings)),
		Kernels: make([]kernelTimingJSON, 0, len(kernels)),
	}
	for _, k := range kernels {
		rep.Kernels = append(rep.Kernels, kernelTimingJSON{
			Kernel:          k.Name,
			HostNSPerOp:     k.HostNSPerOp,
			SimInstructions: k.SimInstructions,
		})
	}
	for _, tm := range timings {
		rep.Tables = append(rep.Tables, tableTimingJSON{
			Table:           tm.ID,
			HostNS:          tm.HostNS,
			SimInstructions: tm.SimInstructions,
			SimCycles:       tm.SimCycles,
			InstrPerSec:     tm.InstrPerSec(),
		})
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
