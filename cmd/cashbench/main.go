// Command cashbench regenerates the tables and figures of the paper's
// evaluation section from the simulated system.
//
// Usage:
//
//	cashbench -all [-requests 2000]    regenerate everything
//	cashbench -table table1            one table (see -list)
//	cashbench -figure1                 the translation-pipeline trace
//	cashbench -list                    list table ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cash"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cashbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all      = flag.Bool("all", false, "regenerate every table")
		table    = flag.String("table", "", "regenerate one table by id")
		figure1  = flag.Bool("figure1", false, "print the Figure 1 translation trace")
		list     = flag.Bool("list", false, "list available table ids")
		requests = flag.Int("requests", 2000, "request count for the network experiment")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Println(strings.Join(cash.TableIDs(), "\n"))
		return nil

	case *figure1:
		out, err := cash.Figure1Trace()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	case *table != "":
		tab, err := cash.Table(*table)
		if err != nil {
			return err
		}
		fmt.Print(tab.Format())
		return nil

	case *all:
		tabs, err := cash.AllTables(*requests)
		if err != nil {
			return err
		}
		for _, tab := range tabs {
			fmt.Print(tab.Format())
			fmt.Println()
		}
		out, err := cash.Figure1Trace()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil

	default:
		flag.Usage()
		return fmt.Errorf("nothing to do: pass -all, -table, -figure1 or -list")
	}
}
