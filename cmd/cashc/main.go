// Command cashc compiles a mini-C source file under one of the three
// compiler modes (gcc, bcc, cash) and prints the generated assembly
// listing plus static statistics — the tool to inspect how Cash
// instruments array references.
//
// Usage:
//
//	cashc [-mode gcc|bcc|cash] [-segregs 2|3|4] [-size] file.c
//	cashc -workload matmul40 -mode cash
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cash"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cashc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modeName = flag.String("mode", "cash", "compiler mode: gcc, bcc or cash")
		segRegs  = flag.Int("segregs", 3, "segment register budget for cash mode (2, 3 or 4)")
		sizeOnly = flag.Bool("size", false, "print only the code-size estimate")
		wlName   = flag.String("workload", "", "compile a built-in workload instead of a file")
	)
	flag.Parse()

	mode, err := parseMode(*modeName)
	if err != nil {
		return err
	}
	source, name, err := loadSource(*wlName, flag.Args())
	if err != nil {
		return err
	}
	art, err := cash.Build(source, mode, cash.Options{SegRegs: *segRegs})
	if err != nil {
		return err
	}
	if *sizeOnly {
		fmt.Printf("%s [%s]: %d bytes of text\n", name, mode, art.CodeSize())
		return nil
	}
	fmt.Print(art.Disassemble())
	fmt.Printf("\n# text size estimate: %d bytes\n", art.CodeSize())
	stats := art.StaticStats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("# %s: %d\n", k, stats[k])
	}
	return nil
}

func parseMode(s string) (cash.Mode, error) {
	switch s {
	case "gcc":
		return cash.ModeGCC, nil
	case "bcc":
		return cash.ModeBCC, nil
	case "cash":
		return cash.ModeCash, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func loadSource(wlName string, args []string) (source, name string, err error) {
	if wlName != "" {
		w, ok := cash.WorkloadByName(wlName)
		if !ok {
			return "", "", fmt.Errorf("unknown workload %q", wlName)
		}
		return w.Source, w.Name, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("exactly one source file (or -workload) required")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}
