// Command cashc compiles a mini-C source file under one of the
// registered checking strategies (gcc, bcc, cash, mpx) and prints the
// generated assembly listing plus static statistics — the tool to
// inspect how each strategy instruments array references.
//
// Usage:
//
//	cashc [-strategy gcc|bcc|cash|mpx] [-segregs 2|3|4] [-size] file.c
//	cashc -workload matmul40 -strategy cash
//	cashc -list-strategies
//
// -mode is a deprecated alias for -strategy.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cash"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cashc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		strategy = flag.String("strategy", "", "checking strategy (see -list-strategies); default cash")
		modeName = flag.String("mode", "", "deprecated alias for -strategy")
		segRegs  = flag.Int("segregs", 3, "segment register budget for cash mode (2, 3 or 4)")
		sizeOnly = flag.Bool("size", false, "print only the code-size estimate")
		wlName   = flag.String("workload", "", "compile a built-in workload instead of a file")
		listStra = flag.Bool("list-strategies", false, "list the registered checking strategies and exit")
	)
	flag.Parse()

	if *listStra {
		for _, s := range cash.Strategies() {
			fmt.Printf("%-6s %-16s %s\n", s.Name, "["+s.Kind+"]", s.Description)
		}
		return nil
	}
	mode, err := pickStrategy(*strategy, *modeName)
	if err != nil {
		return err
	}
	source, name, err := loadSource(*wlName, flag.Args())
	if err != nil {
		return err
	}
	art, err := cash.Build(source, mode, cash.Options{SegRegs: *segRegs})
	if err != nil {
		return err
	}
	if *sizeOnly {
		fmt.Printf("%s [%s]: %d bytes of text\n", name, mode, art.CodeSize())
		return nil
	}
	fmt.Print(art.Disassemble())
	fmt.Printf("\n# text size estimate: %d bytes\n", art.CodeSize())
	stats := art.StaticStats()
	keys := make([]string, 0, len(stats))
	for k := range stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("# %s: %d\n", k, stats[k])
	}
	return nil
}

// pickStrategy resolves the -strategy flag (with -mode as a deprecated
// alias) against the strategy registry; empty means cash.
func pickStrategy(strategy, mode string) (cash.Mode, error) {
	s := strategy
	if s == "" {
		s = mode
	}
	if s == "" {
		s = "cash"
	}
	for _, name := range cash.StrategyNames() {
		if s == name {
			return cash.Mode(s), nil
		}
	}
	return "", fmt.Errorf("unknown strategy %q (valid: %s)",
		s, strings.Join(cash.StrategyNames(), ", "))
}

func loadSource(wlName string, args []string) (source, name string, err error) {
	if wlName != "" {
		w, ok := cash.WorkloadByName(wlName)
		if !ok {
			return "", "", fmt.Errorf("unknown workload %q", wlName)
		}
		return w.Source, w.Name, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("exactly one source file (or -workload) required")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}
