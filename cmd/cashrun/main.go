// Command cashrun compiles and executes a mini-C program on the
// simulated machine and reports cycles, check counts, segment activity
// and — the point of the system — any array bound violation the
// segmentation hardware caught.
//
// Usage:
//
//	cashrun [-strategy gcc|bcc|cash|mpx] [-segregs N] [-passes rce,hoist,affine,chop] [-compare] [-trace] file.c
//	cashrun -workload toast -compare
//
// -mode is a deprecated alias for -strategy.
//
// -passes enables IR optimization passes (-stats prints the static
// codegen counters they affect; -dump-ir prints the optimized IR to
// stderr before running).
//
// -tier2 executes hot regions through the superblock engine
// (simulated output and counters are identical; only host speed
// changes); -dump-superblocks prints the compiled traces to stderr and
// requires -tier2. A tier-2 run reports its superblock activity on the
// trailing `# superblocks:` line.
//
// With -events the run records a structured machine-event trace —
// segment-register loads, LDT descriptor installs and evictions,
// allocation/free traffic, faults — and prints it to stderr after the
// program's output; -events-json FILE writes the same records as JSON.
// Tracing is off by default and costs the simulation nothing when off.
//
//	cashrun -events -workload toast
//	cashrun -events-json trace.json file.c
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"cash"
)

// errViolation signals a detected bound violation: already reported on
// stdout, exits with status 2. A sentinel instead of os.Exit inside run
// so deferred teardown (the -events trace dump) still happens.
var errViolation = errors.New("array bound violation detected")

func main() {
	if err := run(); err != nil {
		if errors.Is(err, errViolation) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "cashrun:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		strategy = flag.String("strategy", "", "checking strategy: gcc, bcc, cash or mpx; default cash")
		modeName = flag.String("mode", "", "deprecated alias for -strategy")
		segRegs  = flag.Int("segregs", 3, "segment register budget for cash mode")
		compare  = flag.Bool("compare", false, "run all three modes and compare")
		trace    = flag.Bool("trace", false, "print the Figure-1 translation pipeline demo")
		wlName   = flag.String("workload", "", "run a built-in workload instead of a file")
		events   = flag.Bool("events", false, "record a machine-event trace and print it to stderr")
		eventsJS = flag.String("events-json", "", "record a machine-event trace and write it to this file as JSON")
		passes   = flag.String("passes", "", "comma-separated IR optimization passes (rce,hoist,affine,chop); empty disables")
		dumpIR   = flag.Bool("dump-ir", false, "print the optimized IR to stderr before running")
		stats    = flag.Bool("stats", false, "print static codegen counters after the run")
		tier2    = flag.Bool("tier2", false, "execute hot regions through the tier-2 superblock engine")
		dumpSB   = flag.Bool("dump-superblocks", false, "with -tier2, print the compiled superblocks to stderr before running")
	)
	flag.Parse()

	// Flag combinations are validated up front, before any compilation.
	if *dumpSB && !*tier2 {
		return errors.New("-dump-superblocks requires -tier2")
	}

	var tr *cash.EventTrace
	if *events || *eventsJS != "" {
		tr = cash.NewEventTrace(0)
		cash.SetDefaultEventTrace(tr)
		defer func() {
			cash.SetDefaultEventTrace(nil)
			if *events {
				fmt.Fprint(os.Stderr, tr.Format())
			}
			if *eventsJS != "" {
				if data, jerr := tr.JSON(); jerr == nil {
					if werr := os.WriteFile(*eventsJS, append(data, '\n'), 0o644); werr != nil && err == nil {
						err = werr
					}
				} else if err == nil {
					err = jerr
				}
			}
		}()
	}

	if *trace {
		out, err := cash.Figure1Trace()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	source, name, err := loadSource(*wlName, flag.Args())
	if err != nil {
		return err
	}
	opts := cash.Options{SegRegs: *segRegs, EventTrace: tr, Passes: splitPasses(*passes), Tier2: *tier2}

	if *compare {
		cmp, err := cash.Compare(name, source, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %12s cycles\n", "gcc", format(cmp.GCC.Cycles))
		fmt.Printf("%-8s %12s cycles  (+%.1f%%)  hw=%d sw=%d segloads=%d\n",
			"cash", format(cmp.Cash.Cycles), cmp.CashOverheadPct(),
			cmp.Cash.Stats.HWChecks, cmp.Cash.Stats.SWChecks, cmp.Cash.Stats.SegRegLoads)
		fmt.Printf("%-8s %12s cycles  (+%.1f%%)  sw=%d\n",
			"bcc", format(cmp.BCC.Cycles), cmp.BCCOverheadPct(), cmp.BCC.Stats.SWChecks)
		fmt.Printf("text     gcc=%dB cash=+%.1f%% bcc=+%.1f%%\n",
			cmp.GCC.CodeSize, cmp.CashSizeOverheadPct(), cmp.BCCSizeOverheadPct())
		return nil
	}

	mode, err := pickStrategy(*strategy, *modeName)
	if err != nil {
		return err
	}
	art, err := cash.Build(source, mode, opts)
	if err != nil {
		return err
	}
	if *dumpIR {
		fmt.Fprint(os.Stderr, art.DumpIR())
	}
	if *dumpSB {
		fmt.Fprint(os.Stderr, art.DumpSuperblocks())
	}
	res, err := art.Run()
	if err != nil {
		return err
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	fmt.Printf("# mode=%s cycles=%d instructions=%d hw-checks=%d sw-checks=%d\n",
		mode, res.Cycles, res.Stats.Instructions, res.Stats.HWChecks, res.Stats.SWChecks)
	if *stats {
		static := art.StaticStats()
		for _, k := range cash.StatKeys() {
			if v, ok := static[k]; ok {
				fmt.Printf("# static %s=%d\n", k, v)
			}
		}
	}
	if res.SB != nil {
		fmt.Printf("# superblocks: compiled=%d entries=%d deopts=%d instrs-retired=%d\n",
			res.SB.Compiled, res.SB.Entries, res.SB.Deopts, res.SB.InstrsRetired)
	}
	fmt.Printf("# segments: peak-live=%d allocs=%d cache-hits=%d kernel-entries=%d\n",
		res.LDTStats.PeakLive, res.LDTStats.AllocRequests,
		res.LDTStats.CacheHits, res.LDTStats.KernelCalls)
	if res.Violation != nil {
		fmt.Printf("# ARRAY BOUND VIOLATION DETECTED: %v\n", res.Violation)
		return errViolation
	}
	return nil
}

func format(v uint64) string {
	s := fmt.Sprintf("%d", v)
	out := ""
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out += ","
		}
		out += string(c)
	}
	return out
}

func splitPasses(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// pickStrategy resolves the -strategy flag (with -mode as a deprecated
// alias) against the strategy registry; empty means cash.
func pickStrategy(strategy, mode string) (cash.Mode, error) {
	s := strategy
	if s == "" {
		s = mode
	}
	if s == "" {
		s = "cash"
	}
	for _, name := range cash.StrategyNames() {
		if s == name {
			return cash.Mode(s), nil
		}
	}
	return "", fmt.Errorf("unknown strategy %q (valid: %s)",
		s, strings.Join(cash.StrategyNames(), ", "))
}

func loadSource(wlName string, args []string) (source, name string, err error) {
	if wlName != "" {
		w, ok := cash.WorkloadByName(wlName)
		if !ok {
			return "", "", fmt.Errorf("unknown workload %q", wlName)
		}
		return w.Source, w.Name, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("exactly one source file (or -workload) required")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}
