// Detectors: the full comparison the paper's related-work section (§2)
// sketches — no checking, Electric Fence guard pages, BCC's software
// checks (both the 6-instruction sequence and the IA-32 bound
// instruction), and Cash — on one heap-churning workload plus three
// overflow probes (heap, global, stack).
package main

import (
	"fmt"
	"log"

	"cash"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tab, err := cash.Table("detectors")
	if err != nil {
		return err
	}
	fmt.Print(tab.Format())
	fmt.Println()

	// The same trade-off demonstrated directly: Electric Fence catches a
	// heap overrun with zero check instructions...
	heapBug := `
void main() {
	char *b = malloc(30);
	for (int i = 0; i < 40; i++) b[i] = 'x';
}`
	art, err := cash.Build(heapBug, cash.ModeGCC, cash.Options{ElectricFence: true})
	if err != nil {
		return err
	}
	res, err := art.Run()
	if err != nil {
		return err
	}
	fmt.Printf("electric fence on a heap overrun: %v\n", res.Violation)
	fmt.Printf("address space for one 30-byte object: %d bytes (two pages)\n\n", res.HeapSpan)

	// ...but is blind to a global-array overflow that Cash stops cold.
	globalBug := `
int table[8];
void main() { for (int i = 0; i <= 8; i++) table[i] = i; }`
	art, err = cash.Build(globalBug, cash.ModeGCC, cash.Options{ElectricFence: true})
	if err != nil {
		return err
	}
	res, err = art.Run()
	if err != nil {
		return err
	}
	fmt.Printf("electric fence on a global overflow: violation=%v (missed)\n", res.Violation != nil)

	art, err = cash.Build(globalBug, cash.ModeCash, cash.Options{})
	if err != nil {
		return err
	}
	res, err = art.Run()
	if err != nil {
		return err
	}
	fmt.Printf("cash on the same overflow:          %v\n", res.Violation)
	return nil
}
