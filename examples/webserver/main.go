// Webserver: the paper's §4.4 network experiment — run the Apache- and
// Qpopper-style request handlers under a process-per-request server and
// measure the latency, throughput and space penalties of turning Cash on,
// as Table 8 reports for the real servers.
package main

import (
	"fmt"
	"log"

	"cash"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const requests = 2000
	fmt.Printf("process-per-request server, %d requests per application\n\n", requests)
	for _, name := range []string{"apache", "qpopper", "bind"} {
		w, ok := cash.WorkloadByName(name)
		if !ok {
			return fmt.Errorf("workload %s missing", name)
		}
		rep, err := cash.MeasureNetworkApp(w, requests, cash.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("== %s (%s) ==\n", rep.Paper, w.Description)
		fmt.Printf("handler CPU:        gcc %d cycles, cash %d cycles\n",
			rep.GCC.HandlerCycles, rep.Cash.HandlerCycles)
		fmt.Printf("latency penalty:    %.1f%%\n", rep.LatencyPenaltyPct)
		fmt.Printf("throughput penalty: %.1f%%\n", rep.ThroughputPenaltyPct)
		fmt.Printf("space overhead:     %.1f%% (statically linked)\n\n", rep.SpaceOverheadPct)
	}
	fmt.Println("paper's Table 8 bands: latency 2.5-9.8%, throughput 2.4-8.9%, space 44.8-68.3%")
	return nil
}
