// Engine: serve many build/run requests through one cash.Engine and
// watch the serving layers work — the artifact cache compiles each
// distinct program once (concurrent duplicates coalesce onto one
// compile), the run cache replays deterministic executions without
// re-simulating, machines are recycled through the pool, and a request
// canceled mid-simulation returns promptly without leaking anything.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"cash"
)

const kernel = `
int churn(int n) {
	int *buf = malloc(n * 4);
	for (int i = 0; i < n; i++) buf[i] = i * 3;
	int s = 0;
	for (int i = 0; i < n; i++) s += buf[i];
	free(buf);
	return s;
}
void main() {
	int t = 0;
	for (int r = 0; r < 50; r++) t += churn(8 + r);
	printi(t);
}`

// runaway burns its entire step budget — the kind of request a serving
// deployment wants to be able to cancel.
const runaway = `
void main() {
	int s = 0;
	for (int i = 0; i < 2000000000; i++) s += i;
	printi(s);
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	eng := cash.NewEngine(cash.EngineConfig{})

	// 1. Thirty-two concurrent identical requests, one compile.
	before := cash.Metrics()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.BuildContext(ctx, kernel, cash.ModeCash, cash.Options{}); err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()
	delta := cash.Metrics().Delta(before)
	fmt.Printf("32 concurrent builds -> %d compile(s), %d served from cache or coalesced\n",
		delta.Counters["serve.build.compiles"],
		delta.Counters["serve.cache.hits"]+delta.Counters["serve.build.coalesced"])

	// 2. Repeat runs come from the run cache; the results are identical.
	art, err := eng.BuildContext(ctx, kernel, cash.ModeCash, cash.Options{})
	if err != nil {
		return err
	}
	cold := time.Now()
	res1, err := eng.RunContext(ctx, art)
	if err != nil {
		return err
	}
	coldTook := time.Since(cold)
	warm := time.Now()
	res2, err := eng.RunContext(ctx, art)
	if err != nil {
		return err
	}
	fmt.Printf("first run %d cycles in %v; repeat run %d cycles in %v (run cache)\n",
		res1.Cycles, coldTook.Round(time.Microsecond),
		res2.Cycles, time.Since(warm).Round(time.Microsecond))

	// 3. Cancel a runaway request mid-simulation.
	hog, err := eng.BuildContext(ctx, runaway, cash.ModeGCC, cash.Options{StepLimit: 500_000_000})
	if err != nil {
		return err
	}
	cancelable, cancel := context.WithCancel(ctx)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := eng.RunContext(cancelable, hog); err != nil {
		fmt.Printf("runaway request canceled after %v: %v\n",
			time.Since(start).Round(time.Millisecond), err)
	}

	// 4. The engine is unharmed: the next request serves normally.
	if _, err := eng.RunContext(ctx, art); err != nil {
		return err
	}
	total := cash.Metrics().Delta(before)
	fmt.Printf("pool: %d fresh machine(s), %d recycled; run cache hits: %d\n",
		total.Counters["serve.pool.fresh"],
		total.Counters["serve.pool.recycled"],
		total.Counters["serve.cache.run_hits"])
	return nil
}
