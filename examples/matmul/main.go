// Matmul: the paper's Table 1 experiment on one kernel — compare GCC
// (unchecked), BCC (software checks) and Cash (segment-hardware checks)
// on matrix multiplication, then sweep the segment-register budget (§4.2)
// and the input size (Table 3).
package main

import (
	"fmt"
	"log"

	"cash"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, ok := cash.WorkloadByName("matmul40")
	if !ok {
		return fmt.Errorf("matmul40 workload missing")
	}
	fmt.Println("== three compilers on 40x40 matrix multiplication ==")
	cmp, err := cash.Compare(w.Name, w.Source, cash.Options{SegRegs: 4})
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %12d cycles\n", "gcc", cmp.GCC.Cycles)
	fmt.Printf("%-6s %12d cycles  +%5.1f%%   %d hardware checks, %d software\n",
		"cash", cmp.Cash.Cycles, cmp.CashOverheadPct(),
		cmp.Cash.Stats.HWChecks, cmp.Cash.Stats.SWChecks)
	fmt.Printf("%-6s %12d cycles  +%5.1f%%   %d software checks\n\n",
		"bcc", cmp.BCC.Cycles, cmp.BCCOverheadPct(), cmp.BCC.Stats.SWChecks)

	fmt.Println("== segment-register budget sweep (3 arrays in the loop) ==")
	for _, regs := range []int{2, 3, 4} {
		cmp, err := cash.Compare(w.Name, w.Source, cash.Options{SegRegs: regs})
		if err != nil {
			return err
		}
		fmt.Printf("%d registers: cash +%5.2f%%  (hw=%d sw=%d)\n",
			regs, cmp.CashOverheadPct(),
			cmp.Cash.Stats.HWChecks, cmp.Cash.Stats.SWChecks)
	}
	fmt.Println()

	fmt.Println("== input-size sweep (Table 3 shape: overhead falls with size) ==")
	tab, err := cash.Table("table3")
	if err != nil {
		return err
	}
	fmt.Print(tab.Format())
	return nil
}
