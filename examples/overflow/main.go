// Overflow: a stack-smashing scenario in the style of the attacks the
// paper motivates (§1) — a network-style handler copies an untrusted
// "request" into a fixed stack buffer without checking its length.
//
// Under GCC the copy silently tramples the rest of the frame (the paper's
// observation: this is how >50% of CERT vulnerabilities worked). Under
// Cash the handler's buffer has its own segment, and the first write past
// its end raises #GP at the offending instruction. Under BCC the software
// check catches it too — at ~6 instructions per reference instead of
// zero.
package main

import (
	"fmt"
	"log"

	"cash"
)

// The handler copies until NUL, the strcpy idiom; the request is longer
// than the 16-byte buffer.
const vulnerable = `
char request[64] = "GET /AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA HTTP/1.0";
int important = 12345;   // stand-in for adjacent state an attacker wants

void handle() {
	char buf[16];
	int i = 0;
	while (request[i] != 0) {
		buf[i] = request[i];   // unchecked strcpy-style copy
		i++;
	}
}

void main() {
	handle();
	printi(important);
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for _, mode := range []cash.Mode{cash.ModeGCC, cash.ModeBCC, cash.ModeCash} {
		fmt.Printf("== %v ==\n", mode)
		art, err := cash.Build(vulnerable, mode, cash.Options{})
		if err != nil {
			return err
		}
		res, err := art.Run()
		switch {
		case err != nil:
			// The unchecked copy smashed the saved return address: RET
			// jumped into attacker-controlled bytes (0x41414141 = "AAAA")
			// — the control-flow hijack the paper's intro describes.
			fmt.Printf("CONTROL FLOW HIJACKED: %v\n", err)
			fmt.Print("the overflow overwrote the return address with request bytes\n\n")
		case res.Violation != nil:
			fmt.Printf("attack stopped at the overflowing write:\n  %v\n", res.Violation)
			fmt.Printf("cycles to detection: %d\n\n", res.Cycles)
		default:
			fmt.Printf("handler ran to completion; program output: %v\n", res.Output)
			fmt.Print("the request overran the 16-byte stack buffer undetected\n\n")
		}
	}
	return nil
}
