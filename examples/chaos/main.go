// Chaos: the resilient network server under deterministic fault
// injection. A seeded PRNG picks ~10% of requests and hits each with one
// injected fault — a transient modify_ldt failure, LDT exhaustion,
// descriptor or shadow free-list corruption, an unmapped request page, a
// malformed request, or a runaway handler — and the server retries with
// backoff, sheds load, degrades to flat segments (§3.4), or detects the
// damage, but never crashes. Because every injection decision is a pure
// function of (seed, request, attempt), two runs with the same seed
// agree to the last counter.
package main

import (
	"fmt"
	"log"
	"reflect"

	"cash"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, ok := cash.WorkloadByName("apache")
	if !ok {
		return fmt.Errorf("apache workload missing")
	}
	const (
		requests = 400
		seed     = 1
		rate     = 0.10
	)
	rep, err := cash.MeasureResilience(w, requests, cash.Options{}, seed, rate)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d requests, %.0f%% injection rate, seed %d\n\n",
		rep.Paper, rep.Requests, rate*100, uint64(seed))
	fmt.Printf("%-5s %6s %5s %5s %6s %5s %5s %5s %5s %5s\n",
		"mode", "avail", "inj", "retry", "shed", "degr", "tmo", "det", "tol", "p99")
	for i := range rep.Modes {
		m := &rep.Modes[i]
		fmt.Printf("%-5s %5.1f%% %5d %5d %6d %5d %5d %5d %5d %4dK\n",
			m.Mode, m.AvailabilityPct(), m.Injected, m.Retries,
			m.Shed, m.Degraded, m.TimedOut, m.Detected, m.Tolerated, m.P99/1000)
	}

	// Determinism: the same seed replays the exact same faults.
	again, err := cash.MeasureResilience(w, requests, cash.Options{}, seed, rate)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(rep, again) {
		return fmt.Errorf("same seed produced a different report")
	}
	fmt.Println("\nsecond run with the same seed: identical report (deterministic replay)")

	// A different seed injects a different fault schedule.
	other, err := cash.MeasureResilience(w, requests, cash.Options{}, seed+1, rate)
	if err != nil {
		return err
	}
	if reflect.DeepEqual(rep, other) {
		return fmt.Errorf("different seeds produced identical reports")
	}
	fmt.Println("seed+1: different fault schedule, server still available")
	return nil
}
