// Quickstart: compile a tiny C program under the Cash compiler, run it on
// the simulated machine, and watch the x86 segmentation hardware catch an
// out-of-bounds array write as a #GP fault.
package main

import (
	"fmt"
	"log"

	"cash"
)

const safe = `
int a[10];
void main() {
	int s = 0;
	for (int i = 0; i < 10; i++) a[i] = i * i;
	for (int i = 0; i < 10; i++) s += a[i];
	printi(s);
}`

const buggy = `
int a[10];
void main() {
	// Classic off-by-one: i <= 10 writes one element past the end.
	for (int i = 0; i <= 10; i++) {
		a[i] = i;
	}
}`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== safe program under Cash ==")
	art, err := cash.Build(safe, cash.ModeCash, cash.Options{})
	if err != nil {
		return err
	}
	res, err := art.Run()
	if err != nil {
		return err
	}
	fmt.Printf("output: %v\n", res.Output)
	fmt.Printf("cycles: %d, hardware bound checks: %d (zero per-check cost)\n\n",
		res.Cycles, res.Stats.HWChecks)

	fmt.Println("== off-by-one overflow under Cash ==")
	art, err = cash.Build(buggy, cash.ModeCash, cash.Options{})
	if err != nil {
		return err
	}
	res, err = art.Run()
	if err != nil {
		return err
	}
	if res.Violation == nil {
		return fmt.Errorf("overflow was not detected")
	}
	fmt.Printf("caught by segment limit hardware:\n  %v\n\n", res.Violation)

	fmt.Println("== same overflow under plain GCC ==")
	art, err = cash.Build(buggy, cash.ModeGCC, cash.Options{})
	if err != nil {
		return err
	}
	res, err = art.Run()
	if err != nil {
		return err
	}
	if res.Violation == nil {
		fmt.Println("ran to completion: the overflow silently corrupted adjacent memory")
	}
	return nil
}
