package cash

import (
	"strings"
	"testing"
)

const demoOverflow = `
int buf[8];
void main() {
	for (int i = 0; i <= 8; i++) {
		buf[i] = i;
	}
}`

const demoSafe = `
int a[16];
void main() {
	int s = 0;
	for (int r = 0; r < 20; r++) {
		for (int i = 0; i < 16; i++) a[i] = i * r;
		for (int i = 0; i < 16; i++) s += a[i];
	}
	printi(s);
}`

func TestPublicBuildRunCatchesOverflow(t *testing.T) {
	art, err := Build(demoOverflow, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("segment hardware must catch the off-by-one overflow")
	}
	if !strings.Contains(res.Violation.Error(), "#GP") {
		t.Fatalf("violation should be a #GP, got %v", res.Violation)
	}
}

func TestPublicCompare(t *testing.T) {
	cmp, err := Compare("demo", demoSafe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CashOverheadPct() >= cmp.BCCOverheadPct() {
		t.Fatalf("cash %.1f%% must beat bcc %.1f%%",
			cmp.CashOverheadPct(), cmp.BCCOverheadPct())
	}
}

func TestPublicWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 19 {
		t.Fatalf("workloads = %d, want 19", got)
	}
	if _, ok := WorkloadByName("apache"); !ok {
		t.Fatal("apache workload missing")
	}
}

func TestPublicTableDispatch(t *testing.T) {
	for _, id := range []string{"constants", "ldt", "figure2"} {
		tab, err := Table(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
	if _, err := Table("table99"); err == nil {
		t.Fatal("unknown table id must error")
	}
	if len(TableIDs()) != 18 {
		t.Fatalf("TableIDs = %d entries, want 18", len(TableIDs()))
	}
	for _, id := range TableIDs() {
		if id == "table1" || id == "table8" {
			continue // covered by the bench package tests; skip the slow ones here
		}
	}
}

func TestPublicConstants(t *testing.T) {
	oc, err := MeasureOverheadConstants()
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCharacterize(t *testing.T) {
	ch, err := Characterize(demoSafe, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The outer repeat loop contains array references too, so all three
	// loops count as array-using.
	if ch.ArrayUsingLoops != 3 {
		t.Fatalf("ArrayUsingLoops = %d, want 3", ch.ArrayUsingLoops)
	}
}

func TestPublicFigure1Trace(t *testing.T) {
	trace, err := Figure1Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "physical=") {
		t.Fatal("trace must show the pipeline")
	}
}

func TestPublicNetworkMeasure(t *testing.T) {
	w, ok := WorkloadByName("bind")
	if !ok {
		t.Fatal("bind missing")
	}
	rep, err := MeasureNetworkApp(w, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyPenaltyPct <= 0 {
		t.Fatal("latency penalty must be positive")
	}
}
