package cash

import (
	"context"
	"errors"
	"strings"
	"testing"
)

const demoOverflow = `
int buf[8];
void main() {
	for (int i = 0; i <= 8; i++) {
		buf[i] = i;
	}
}`

const demoSafe = `
int a[16];
void main() {
	int s = 0;
	for (int r = 0; r < 20; r++) {
		for (int i = 0; i < 16; i++) a[i] = i * r;
		for (int i = 0; i < 16; i++) s += a[i];
	}
	printi(s);
}`

func TestPublicBuildRunCatchesOverflow(t *testing.T) {
	art, err := Build(demoOverflow, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("segment hardware must catch the off-by-one overflow")
	}
	if !strings.Contains(res.Violation.Error(), "#GP") {
		t.Fatalf("violation should be a #GP, got %v", res.Violation)
	}
}

func TestPublicCompare(t *testing.T) {
	cmp, err := Compare("demo", demoSafe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CashOverheadPct() >= cmp.BCCOverheadPct() {
		t.Fatalf("cash %.1f%% must beat bcc %.1f%%",
			cmp.CashOverheadPct(), cmp.BCCOverheadPct())
	}
}

func TestPublicWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 19 {
		t.Fatalf("workloads = %d, want 19", got)
	}
	if _, ok := WorkloadByName("apache"); !ok {
		t.Fatal("apache workload missing")
	}
}

func TestPublicTableDispatch(t *testing.T) {
	for _, id := range []string{"constants", "ldt", "figure2"} {
		tab, err := Table(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
	if _, err := Table("table99"); err == nil {
		t.Fatal("unknown table id must error")
	}
	if len(TableIDs()) != 21 {
		t.Fatalf("TableIDs = %d entries, want 21", len(TableIDs()))
	}
	for _, id := range TableIDs() {
		if id == "table1" || id == "table8" {
			continue // covered by the bench package tests; skip the slow ones here
		}
	}
}

func TestPublicConstants(t *testing.T) {
	oc, err := MeasureOverheadConstants()
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCharacterize(t *testing.T) {
	ch, err := Characterize(demoSafe, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The outer repeat loop contains array references too, so all three
	// loops count as array-using.
	if ch.ArrayUsingLoops != 3 {
		t.Fatalf("ArrayUsingLoops = %d, want 3", ch.ArrayUsingLoops)
	}
}

func TestPublicFigure1Trace(t *testing.T) {
	trace, err := Figure1Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "physical=") {
		t.Fatal("trace must show the pipeline")
	}
}

func TestPublicNetworkMeasure(t *testing.T) {
	w, ok := WorkloadByName("bind")
	if !ok {
		t.Fatal("bind missing")
	}
	rep, err := MeasureNetworkApp(w, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyPenaltyPct <= 0 {
		t.Fatal("latency penalty must be positive")
	}
}

func TestPublicTablesRegistry(t *testing.T) {
	specs := Tables()
	ids := TableIDs()
	if len(specs) != len(ids) {
		t.Fatalf("Tables() has %d entries, TableIDs %d", len(specs), len(ids))
	}
	for i, sp := range specs {
		if sp.ID != ids[i] {
			t.Fatalf("spec %d id %q, TableIDs %q — registry and id list diverged", i, sp.ID, ids[i])
		}
		if sp.Caption == "" {
			t.Fatalf("%s: empty caption", sp.ID)
		}
		if sp.Generate == nil {
			t.Fatalf("%s: nil generator", sp.ID)
		}
		// resilience (chaos-seeded), ablation-passes, ablation-affine
		// (pass-enabled rebuilds), and strategy-matrix (post-registry
		// strategies) are excluded from -all to keep the historical
		// full-suite golden byte-identical.
		wantInAll := sp.ID != "resilience" && sp.ID != "ablation-passes" &&
			sp.ID != "ablation-affine" && sp.ID != "strategy-matrix"
		if sp.InAll != wantInAll {
			t.Fatalf("%s: InAll = %v, want %v", sp.ID, sp.InAll, wantInAll)
		}
	}
	// A spec generates through a nil Engine (process default).
	sp, ok := specByID(t, "constants")
	if !ok {
		t.Fatal("constants spec missing")
	}
	tab, err := sp.Generate(context.Background(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("constants: empty table")
	}
	// The unknown-id error derives from the registry: it lists every id.
	_, err = Table("table99")
	if err == nil {
		t.Fatal("unknown table id must error")
	}
	for _, id := range ids {
		if !strings.Contains(err.Error(), id) {
			t.Fatalf("unknown-id error %q does not list %q", err, id)
		}
	}
}

func specByID(t *testing.T, id string) (TableSpec, bool) {
	t.Helper()
	for _, sp := range Tables() {
		if sp.ID == id {
			return sp, true
		}
	}
	return TableSpec{}, false
}

func TestPublicEngineServes(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	ctx := context.Background()
	art, err := eng.BuildContext(ctx, demoSafe, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := eng.RunContext(ctx, art)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng.RunContext(ctx, art) // run-cache hit
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles || len(res1.Output) != len(res2.Output) {
		t.Fatal("cached run differs from real run")
	}
	cmp, err := eng.CompareContext(ctx, "demo", demoSafe, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CashOverheadPct() >= cmp.BCCOverheadPct() {
		t.Fatal("engine-served comparison lost the paper's ordering")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := eng.RunContext(canceled, art); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: err = %v, want context.Canceled", err)
	}
	if _, err := eng.Table(ctx, "table99", 0); err == nil {
		t.Fatal("engine lookup of unknown table id must error")
	}
}

func TestPublicResilienceConfig(t *testing.T) {
	cfg := DefaultResilienceConfig()
	if cfg.Seed != DefaultChaosSeed || cfg.Rate != DefaultChaosRate {
		t.Fatalf("DefaultResilienceConfig = %+v, want seed %d rate %v", cfg, DefaultChaosSeed, DefaultChaosRate)
	}
}
