module cash

go 1.22
