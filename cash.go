// Package cash is a complete reproduction of "Checking Array Bound
// Violation Using Segmentation Hardware" (Lam & Chiueh, DSN 2005) as a
// Go library.
//
// Cash performs array bound checking for free by giving every array its
// own x86 segment: the segment-limit check the virtual-memory hardware
// applies to each memory reference *is* the bound check. Because the
// hardware feature (32-bit segmentation) is unusable from Go and dead on
// modern CPUs, this library contains a faithful software model of the
// whole stack: the segmentation and paging hardware (GDT/LDT,
// selectors, shadow registers, the granularity bit), a cycle-modelled
// x86-flavoured machine, the OS support (modify_ldt, the cash_modify_ldt
// call gate, the user-space free list and 3-entry segment cache), a
// mini-C compiler with three back ends (unchecked GCC, software-checked
// BCC, segment-checked Cash), and the paper's entire benchmark suite.
//
// Quick start:
//
//	art, err := cash.Build(src, cash.ModeCash, cash.Options{})
//	res, err := art.Run()
//	if res.Violation != nil { /* overflow caught by segment hardware */ }
//
// Compare the three compilers on one program:
//
//	cmp, err := cash.Compare("kernel", src, cash.Options{})
//	fmt.Printf("Cash +%.1f%%, BCC +%.1f%%\n",
//		cmp.CashOverheadPct(), cmp.BCCOverheadPct())
//
// Regenerate a paper table:
//
//	tab, err := cash.Table("table1")
//	fmt.Print(tab.Format())
package cash

import (
	"fmt"

	"cash/internal/bench"
	"cash/internal/chaos"
	"cash/internal/core"
	"cash/internal/netsim"
	"cash/internal/obs"
	"cash/internal/vm"
	"cash/internal/workload"
)

// Default chaos-plane parameters for Table("resilience"); cmd/cashbench
// overrides them with -chaos-seed and -chaos-rate.
const (
	DefaultChaosSeed uint64  = 1
	DefaultChaosRate float64 = 0.05
)

// Mode selects one of the three compilers.
type Mode = core.Mode

// Compiler modes.
const (
	// ModeGCC compiles without bound checks (the baseline).
	ModeGCC = core.ModeGCC
	// ModeBCC compiles with software bound checks: 3-word fat pointers
	// and the 6-instruction check sequence per reference.
	ModeBCC = core.ModeBCC
	// ModeCash compiles with segmentation-hardware bound checks: one
	// segment per array, 2-word pointers, loop-hoisted segment loads.
	ModeCash = core.ModeCash
)

// Options tunes a build; the zero value reproduces the paper's default
// prototype (3 segment registers, read and write checks, call gate).
type Options = core.Options

// Artifact is a compiled program.
type Artifact = core.Artifact

// RunResult is the outcome of one execution, including any detected
// bound violation.
type RunResult = core.RunResult

// Comparison holds a three-mode evaluation of one program.
type Comparison = core.Comparison

// LoopCharacteristics are the static per-program loop statistics of the
// paper's characteristics tables.
type LoopCharacteristics = core.LoopCharacteristics

// OverheadConstants are the §4.1 fixed costs of the Cash mechanism.
type OverheadConstants = core.OverheadConstants

// Violation is a detected array bound violation (a segmentation #GP or a
// failed software check). Returned inside RunResult.
type Violation = vm.Fault

// Workload is one program of the paper's benchmark suite.
type Workload = workload.Workload

// ResultTable is a formatted experiment result.
type ResultTable = bench.Table

// AppReport is one network application's Table 8 measurement.
type AppReport = netsim.AppReport

// ResilienceReport is one network application's availability and latency
// accounting under deterministic fault injection.
type ResilienceReport = netsim.ResilienceReport

// ModeResilience is one compiler mode's slice of a ResilienceReport.
type ModeResilience = netsim.ModeResilience

// Build parses, type-checks and compiles mini-C source for a mode.
func Build(source string, mode Mode, opts Options) (*Artifact, error) {
	return core.Build(source, mode, opts)
}

// Compare builds and runs source under GCC, BCC and Cash and reports
// cycles, check counts and code sizes. It fails if the program output
// differs between modes or a bound violation occurs.
func Compare(name, source string, opts Options) (*Comparison, error) {
	return core.Compare(name, source, opts)
}

// Characterize computes the static loop/array statistics of a program
// under the given segment-register budget.
func Characterize(source string, segRegBudget int) (LoopCharacteristics, error) {
	return core.Characterize(source, segRegBudget)
}

// MeasureOverheadConstants measures the per-program, per-array and
// per-array-use costs (§4.1) on the simulated machine.
func MeasureOverheadConstants() (OverheadConstants, error) {
	return core.MeasureOverheadConstants()
}

// Workloads returns the paper's full benchmark suite: 6 kernels
// (Table 1), 6 macro applications (Tables 4-6), 6 network applications
// (Tables 7-8), and the libc corpus.
func Workloads() []Workload { return workload.All() }

// WorkloadByName finds one benchmark program.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// MeasureNetworkApp runs the paper's §4.4 experiment for one network
// application: process-per-request latency, throughput and space
// penalties of Cash over the unchecked baseline.
func MeasureNetworkApp(w Workload, requests int, opts Options) (*AppReport, error) {
	return netsim.Measure(w, requests, opts)
}

// MeasureResilience runs one network application's resilient server
// under deterministic fault injection: requests picked by a PRNG seeded
// with (seed, request index) suffer one of seven injected faults —
// transient modify_ldt failures, LDT exhaustion, descriptor or shadow
// free-list corruption, page-table unmap races, malformed requests,
// runaway handlers — and the server retries, sheds, degrades to flat
// segments (§3.4) or detects, but never crashes. Identical seed and
// rate reproduce the report exactly.
func MeasureResilience(w Workload, requests int, opts Options, seed uint64, rate float64) (*ResilienceReport, error) {
	return netsim.MeasureResilience(w, requests, opts,
		chaos.NewPlan(chaos.Config{Seed: seed, Rate: rate}))
}

// ResilienceTable renders the resilience experiment for every network
// application (see cmd/cashbench -table resilience).
func ResilienceTable(requests int, seed uint64, rate float64) (*ResultTable, error) {
	return bench.ResilienceTable(requests, seed, rate)
}

// Table regenerates one of the paper's tables or analyses by id:
//
//	table1 table2 table3 table4 table5 table6 table7 table8 table8bcc
//	ablation-segregs bound detectors constants ldt cache segments figure2
//	resilience
func Table(id string) (*ResultTable, error) {
	switch id {
	case "table1":
		return bench.Table1(4)
	case "table2":
		return bench.Table2()
	case "table3":
		return bench.Table3()
	case "table4":
		return bench.Table4()
	case "table5":
		return bench.Table5()
	case "table6":
		return bench.Table6()
	case "table7":
		return bench.Table7()
	case "table8":
		return bench.Table8(netsim.DefaultRequests)
	case "table8bcc":
		return bench.Table8BCC(netsim.DefaultRequests)
	case "ablation-segregs":
		return bench.AblationSegRegs()
	case "bound":
		return bench.BoundInstrTable()
	case "detectors":
		return bench.DetectorTable()
	case "constants":
		return bench.ConstantsTable()
	case "ldt":
		return bench.LDTCostTable()
	case "cache":
		return bench.CacheTable()
	case "segments":
		return bench.SegmentsTable()
	case "figure2":
		return bench.Figure2Table()
	case "resilience":
		return bench.ResilienceTable(netsim.DefaultRequests, DefaultChaosSeed, DefaultChaosRate)
	default:
		return nil, fmt.Errorf("cash: unknown table %q (see cash.Table doc)", id)
	}
}

// TableIDs lists the ids accepted by Table, in paper order.
func TableIDs() []string {
	return []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "table8", "table8bcc",
		"ablation-segregs", "bound", "detectors",
		"constants", "ldt", "cache", "segments", "figure2",
		"resilience",
	}
}

// AllTables regenerates every table with the given request count for the
// network experiment. Tables are produced one at a time, but the
// independent experiments inside each (its rows) run concurrently up to
// the SetParallelism budget; results are identical at any setting.
func AllTables(requests int) ([]*ResultTable, error) { return bench.AllTables(requests) }

// TableTiming is the host-side cost of producing one table: wall-clock
// nanoseconds plus the simulated instructions and cycles run on its
// behalf.
type TableTiming = bench.Timing

// AllTablesTimed is AllTables plus per-table host timings.
func AllTablesTimed(requests int) ([]*ResultTable, []TableTiming, error) {
	return bench.AllTablesTimed(requests)
}

// SetParallelism bounds how many experiments the benchmark harness runs
// concurrently (default: GOMAXPROCS). 1 forces sequential execution.
func SetParallelism(n int) { bench.SetParallelism(n) }

// Figure1Trace renders the Figure 1 address-translation pipeline
// (segmentation then paging) for a small traced program.
func Figure1Trace() (string, error) { return bench.Figure1Trace() }

// MetricsSnapshot is a point-in-time copy of the process-wide metrics
// registry: named counters and gauges plus latency histograms. Snapshots
// are plain data — subtract two with Delta to isolate one experiment's
// contribution, render with Format (deterministic text) or JSON.
type MetricsSnapshot = obs.Snapshot

// Metrics snapshots the process-wide observability registry that the
// simulator's layers (vm, paging, ldt, core, netsim) publish into. Take
// a snapshot before and after an experiment and Delta them; because
// every published metric is commutative across goroutines, the delta is
// identical at any SetParallelism budget.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// EventTrace is a bounded ring buffer of structured machine events:
// segment-register loads, descriptor installs and evictions, faults,
// LDT allocation traffic, and the resilient server's retry/shed/
// degrade/re-arm decisions. A nil *EventTrace is valid everywhere and
// disables emission; tracing is strictly opt-in.
type EventTrace = obs.Trace

// TraceEvent is one structured EventTrace record.
type TraceEvent = obs.Event

// NewEventTrace returns a trace retaining up to capacity events
// (0 means the default capacity). Attach it to machine runs with
// Options.EventTrace, or install it process-wide with
// SetDefaultEventTrace for producers without an options path.
func NewEventTrace(capacity int) *EventTrace { return obs.NewTrace(capacity) }

// SetDefaultEventTrace installs (or, with nil, removes) the process-wide
// event trace — the one the netsim resilient server emits into — and
// returns the previous one.
func SetDefaultEventTrace(tr *EventTrace) *EventTrace { return obs.SetDefaultTrace(tr) }
