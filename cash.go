// Package cash is a complete reproduction of "Checking Array Bound
// Violation Using Segmentation Hardware" (Lam & Chiueh, DSN 2005) as a
// Go library.
//
// Cash performs array bound checking for free by giving every array its
// own x86 segment: the segment-limit check the virtual-memory hardware
// applies to each memory reference *is* the bound check. Because the
// hardware feature (32-bit segmentation) is unusable from Go and dead on
// modern CPUs, this library contains a faithful software model of the
// whole stack: the segmentation and paging hardware (GDT/LDT,
// selectors, shadow registers, the granularity bit), a cycle-modelled
// x86-flavoured machine, the OS support (modify_ldt, the cash_modify_ldt
// call gate, the user-space free list and 3-entry segment cache), a
// mini-C compiler with a registry of checking strategies (unchecked
// "gcc", software-checked "bcc", segment-checked "cash", MPX-style
// "mpx" — see Strategies), and the paper's entire benchmark suite.
//
// Quick start — build under a named strategy and run:
//
//	art, err := cash.Build(src, cash.ModeCash, cash.Options{})
//	res, err := art.Run()
//	if res.Violation != nil { /* overflow caught by segment hardware */ }
//
// A Mode is simply a strategy name; any name listed by Strategies works:
//
//	art, err := cash.Build(src, "mpx", cash.Options{})
//
// Compare strategies on one program (empty Strategies means the paper's
// gcc/bcc/cash trio):
//
//	cmp, err := cash.CompareStrategies("kernel", src,
//		cash.CompareConfig{Strategies: []string{"gcc", "bcc", "cash", "mpx"}})
//	fmt.Printf("Cash +%.1f%%, MPX +%.1f%%\n",
//		cmp.OverheadPct("cash"), cmp.OverheadPct("mpx"))
//
// Regenerate a paper table:
//
//	tab, err := cash.Table("table1")
//	fmt.Print(tab.Format())
//
// Serve many requests through one Engine — compiled artifacts are
// cached under a content hash, deterministic executions are served
// from a run cache, machines are pooled, and admission control bounds
// in-flight work:
//
//	eng := cash.NewEngine(cash.EngineConfig{})
//	art, err := eng.BuildContext(ctx, src, cash.ModeCash, cash.Options{})
//	res, err := eng.RunContext(ctx, art)
package cash

import (
	"context"

	"cash/internal/bench"
	"cash/internal/chaos"
	"cash/internal/codegen"
	"cash/internal/core"
	"cash/internal/netsim"
	"cash/internal/obs"
	"cash/internal/serve"
	"cash/internal/vm"
	"cash/internal/workload"
)

// Default chaos-plane parameters for Table("resilience"); cmd/cashbench
// overrides them with -chaos-seed and -chaos-rate.
const (
	DefaultChaosSeed uint64  = chaos.DefaultSeed
	DefaultChaosRate float64 = chaos.DefaultRate
)

// Mode names a checking strategy from the registry (see Strategies).
// It is the strategy name itself, so any registered strategy can be
// requested with a plain string; the constants below name the built-in
// strategies and remain valid everywhere a Mode is accepted.
type Mode = core.Mode

// The built-in checking strategies.
const (
	// ModeGCC compiles without bound checks (the baseline).
	ModeGCC = core.ModeGCC
	// ModeBCC compiles with software bound checks: 3-word fat pointers
	// and the 6-instruction check sequence per reference.
	ModeBCC = core.ModeBCC
	// ModeCash compiles with segmentation-hardware bound checks: one
	// segment per array, 2-word pointers, loop-hoisted segment loads.
	ModeCash = core.ModeCash
	// ModeMPX compiles with MPX-style bound checks: thin 1-word
	// pointers, a shadow bounds table keyed by pointer location, and
	// 1-cycle bndcl/bndcu checks with 10-cycle table loads/stores.
	ModeMPX = core.ModeMPX
)

// StrategySpec describes one registered checking strategy.
type StrategySpec struct {
	// Name is the registry name — a valid Mode value ("gcc", "bcc",
	// "cash", "mpx").
	Name string
	// Description is a one-line summary of the lowering.
	Description string
	// Kind is "lowering" for pure instruction lowerings (gcc, bcc) and
	// "hardware-modeled" for strategies backed by a simulated hardware
	// checking feature (cash's segmentation, mpx's bounds registers).
	Kind string
}

// Strategies lists every registered checking strategy in registration
// order. The names are the valid Mode values.
func Strategies() []StrategySpec {
	infos := core.Strategies()
	out := make([]StrategySpec, len(infos))
	for i, in := range infos {
		out[i] = StrategySpec{Name: in.Name, Description: in.Description, Kind: string(in.Kind)}
	}
	return out
}

// StrategyNames lists the registered strategy names in registration
// order.
func StrategyNames() []string { return core.StrategyNames() }

// Options tunes a build; the zero value reproduces the paper's default
// prototype (3 segment registers, read and write checks, call gate).
type Options = core.Options

// Artifact is a compiled program.
type Artifact = core.Artifact

// RunResult is the outcome of one execution, including any detected
// bound violation.
type RunResult = core.RunResult

// Comparison holds a multi-strategy evaluation of one program.
type Comparison = core.Comparison

// CompareConfig configures a multi-strategy comparison: which strategies
// to compare (the first is the baseline; empty means gcc, bcc, cash) and
// the build options shared by every column.
type CompareConfig = core.CompareConfig

// LoopCharacteristics are the static per-program loop statistics of the
// paper's characteristics tables.
type LoopCharacteristics = core.LoopCharacteristics

// OverheadConstants are the §4.1 fixed costs of the Cash mechanism.
type OverheadConstants = core.OverheadConstants

// Violation is a detected array bound violation (a segmentation #GP or a
// failed software check). Returned inside RunResult.
type Violation = vm.Fault

// Workload is one program of the paper's benchmark suite.
type Workload = workload.Workload

// ResultTable is a formatted experiment result.
type ResultTable = bench.Table

// AppReport is one network application's Table 8 measurement.
type AppReport = netsim.AppReport

// ResilienceReport is one network application's availability and latency
// accounting under deterministic fault injection.
type ResilienceReport = netsim.ResilienceReport

// ModeResilience is one compiler mode's slice of a ResilienceReport.
type ModeResilience = netsim.ModeResilience

// Build parses, type-checks and compiles mini-C source for the named
// checking strategy. Unknown strategy names yield an error listing the
// valid names.
func Build(source string, mode Mode, opts Options) (*Artifact, error) {
	return core.Build(source, mode, opts)
}

// PassNames lists the IR optimization passes Options.Passes accepts, in
// execution order: "rce" (redundant-check elimination), "hoist"
// (loop-invariant check hoisting), "affine" (convex-hull endpoint checks
// for affine indices) and "chop" (straight-line consolidation of nearby
// checks into one hull check). With no passes the back end's output is
// byte-identical to the historical direct emitter.
func PassNames() []string { return codegen.PassNames() }

// StatKeys lists every static codegen counter an Artifact's StaticStats
// may carry, in the deterministic order tools print them.
func StatKeys() []string { return codegen.StatKeys() }

// CompareStrategies builds and runs source under every strategy named in
// cfg and reports cycles, check counts and code sizes. It fails if any
// strategy's output differs from the baseline (the first strategy) or a
// bound violation occurs.
func CompareStrategies(name, source string, cfg CompareConfig) (*Comparison, error) {
	return core.CompareStrategies(name, source, cfg)
}

// Compare builds and runs source under GCC, BCC and Cash and reports
// cycles, check counts and code sizes. It fails if the program output
// differs between modes or a bound violation occurs.
//
// Deprecated: Use CompareStrategies, which accepts any registered
// strategy set. This wrapper keeps working and compares gcc, bcc, cash.
func Compare(name, source string, opts Options) (*Comparison, error) {
	return core.Compare(name, source, opts)
}

// Characterize computes the static loop/array statistics of a program
// under the given segment-register budget.
func Characterize(source string, segRegBudget int) (LoopCharacteristics, error) {
	return core.Characterize(source, segRegBudget)
}

// MeasureOverheadConstants measures the per-program, per-array and
// per-array-use costs (§4.1) on the simulated machine.
func MeasureOverheadConstants() (OverheadConstants, error) {
	return core.MeasureOverheadConstants()
}

// EngineConfig tunes a serving Engine. The zero value gives the
// defaults: a 64 MiB artifact/run cache, an 8-machine pool, in-flight
// admission bounded by the parallelism budget, and the process-wide
// parallelism and event-trace settings.
type EngineConfig = serve.EngineConfig

// Engine is the serving runtime: it owns every piece of cross-request
// state — a content-addressed artifact cache (builds of identical
// source/mode/options are compiled once, concurrent duplicates
// coalesced), a run cache for deterministic executions, a pool of
// reusable simulated machines (reset on reuse, indistinguishable from
// fresh), and admission control bounding in-flight work with a FIFO
// waiter queue. All methods are safe for concurrent use; every
// operation takes a context and honors cancellation between simulated
// basic blocks.
//
// Engines are independent: each owns its own cache, pool and admission
// state, so a misbehaving tenant cannot evict another Engine's
// artifacts. Package-level helpers (Build, Compare, Table, AllTables)
// serve through a shared process-default Engine.
type Engine struct {
	eng *serve.Engine
}

// NewEngine builds a serving Engine from cfg. An unusable StoreDir is
// degraded silently to a memory-only cache; use OpenEngine to observe
// the failure instead.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{eng: serve.NewEngine(cfg)}
}

// OpenEngine builds a serving Engine from cfg, reporting an unusable
// EngineConfig.StoreDir as an error instead of silently dropping the
// persistent layer.
func OpenEngine(cfg EngineConfig) (*Engine, error) {
	eng, err := serve.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// runtime returns the underlying serving engine, falling back to the
// process-default one for a nil receiver.
func (e *Engine) runtime() *serve.Engine {
	if e == nil || e.eng == nil {
		return serve.Default()
	}
	return e.eng
}

// ErrEngineClosed is returned by every Engine method after Close: the
// engine rejects new work instead of queuing it forever.
var ErrEngineClosed = serve.ErrEngineClosed

// Close shuts the Engine down: new work is rejected with
// ErrEngineClosed, queued requests fail immediately, and Close blocks
// until in-flight requests have drained. It is idempotent. Closing a
// nil or zero Engine is a no-op — the shared process-default engine is
// never closed through a wrapper.
func (e *Engine) Close() error {
	if e == nil || e.eng == nil {
		return nil
	}
	return e.eng.Close()
}

// BuildContext is Build through the Engine: the compiled artifact is
// cached under a content hash of (source, mode, options), concurrent
// identical builds are coalesced into one compile, and ctx cancels the
// wait for an in-flight build.
func (e *Engine) BuildContext(ctx context.Context, source string, mode Mode, opts Options) (*Artifact, error) {
	return e.runtime().BuildContext(ctx, source, mode, opts)
}

// RunContext executes an artifact on a pooled machine under admission
// control. Deterministic executions are served from the run cache;
// ctx cancels a queued request and interrupts a running simulation
// between basic blocks, returning ctx.Err().
func (e *Engine) RunContext(ctx context.Context, art *Artifact) (*RunResult, error) {
	return e.runtime().RunContext(ctx, art)
}

// CompareStrategiesContext is CompareStrategies through the Engine:
// every strategy's build and run is cached, pooled and
// admission-controlled like any other request.
func (e *Engine) CompareStrategiesContext(ctx context.Context, name, source string, cfg CompareConfig) (*Comparison, error) {
	return e.runtime().CompareStrategiesContext(ctx, name, source, cfg)
}

// CompareContext is Compare through the Engine: the three builds and
// runs are cached, pooled and admission-controlled like any other
// request.
//
// Deprecated: Use CompareStrategiesContext, which accepts any
// registered strategy set. This wrapper keeps working and compares
// gcc, bcc, cash.
func (e *Engine) CompareContext(ctx context.Context, name, source string, opts Options) (*Comparison, error) {
	return e.runtime().CompareContext(ctx, name, source, opts)
}

// Table regenerates one registered table by id (see Tables). requests
// sets the client workload of the network experiments (0 means the
// paper's 2000); the other tables ignore it.
func (e *Engine) Table(ctx context.Context, id string, requests int) (*ResultTable, error) {
	return bench.TableByID(ctx, e.runtime(), id, requests)
}

// AllTables regenerates every table that `cashbench -all` prints.
// Repeated calls on one Engine serve builds from the artifact cache
// and repeated deterministic executions from the run cache, producing
// byte-identical tables at a fraction of the cold cost.
func (e *Engine) AllTables(ctx context.Context, requests int) ([]*ResultTable, error) {
	return bench.AllTablesContext(ctx, e.runtime(), requests)
}

// AllTablesTimed is AllTables plus per-table host timings.
func (e *Engine) AllTablesTimed(ctx context.Context, requests int) ([]*ResultTable, []TableTiming, error) {
	return bench.AllTablesTimedContext(ctx, e.runtime(), requests)
}

// MeasureNetworkApp is MeasureNetworkApp through the Engine.
func (e *Engine) MeasureNetworkApp(ctx context.Context, w Workload, requests int, opts Options) (*AppReport, error) {
	return netsim.MeasureContext(ctx, e.runtime(), w, requests, opts)
}

// MeasureResilience is MeasureResilienceWith through the Engine.
func (e *Engine) MeasureResilience(ctx context.Context, w Workload, requests int, opts Options, cfg ResilienceConfig) (*ResilienceReport, error) {
	return netsim.MeasureResilienceContext(ctx, e.runtime(), w, requests, opts,
		chaos.NewPlan(chaos.Config{Seed: cfg.Seed, Rate: cfg.Rate}))
}

// Figure1Trace renders the Figure 1 address-translation pipeline
// through the Engine. The build is cached; the traced execution always
// re-simulates, because attaching a trace makes the run observably
// different.
func (e *Engine) Figure1Trace(ctx context.Context) (string, error) {
	return bench.Figure1TraceContext(ctx, e.runtime())
}

// Workloads returns the paper's full benchmark suite: 6 kernels
// (Table 1), 6 macro applications (Tables 4-6), 6 network applications
// (Tables 7-8), and the libc corpus.
func Workloads() []Workload { return workload.All() }

// WorkloadByName finds one benchmark program.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// MeasureNetworkApp runs the paper's §4.4 experiment for one network
// application: process-per-request latency, throughput and space
// penalties of Cash over the unchecked baseline.
func MeasureNetworkApp(w Workload, requests int, opts Options) (*AppReport, error) {
	return netsim.Measure(w, requests, opts)
}

// ResilienceConfig parameterises the deterministic chaos plane of the
// resilience experiment. The zero value injects nothing (rate 0); use
// DefaultResilienceConfig for the golden-table parameters.
type ResilienceConfig struct {
	// Seed keys every injection draw; identical seeds reproduce the
	// fault schedule exactly.
	Seed uint64
	// Rate is the per-request injection probability in [0, 1].
	Rate float64
}

// DefaultResilienceConfig returns the chaos parameters of the checked-in
// resilience golden (seed 1, rate 5%).
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{Seed: DefaultChaosSeed, Rate: DefaultChaosRate}
}

// MeasureResilienceWith runs one network application's resilient server
// under deterministic fault injection: requests picked by a PRNG seeded
// with (cfg.Seed, request index) suffer one of seven injected faults —
// transient modify_ldt failures, LDT exhaustion, descriptor or shadow
// free-list corruption, page-table unmap races, malformed requests,
// runaway handlers — and the server retries, sheds, degrades to flat
// segments (§3.4) or detects, but never crashes. Identical configs
// reproduce the report exactly.
func MeasureResilienceWith(w Workload, requests int, opts Options, cfg ResilienceConfig) (*ResilienceReport, error) {
	return netsim.MeasureResilience(w, requests, opts,
		chaos.NewPlan(chaos.Config{Seed: cfg.Seed, Rate: cfg.Rate}))
}

// MeasureResilience is MeasureResilienceWith with the chaos parameters
// spelled positionally.
//
// Deprecated: Use MeasureResilienceWith (or Engine.MeasureResilience
// for cancellation), which names the chaos parameters in a
// ResilienceConfig instead of a positional (seed, rate) tail.
func MeasureResilience(w Workload, requests int, opts Options, seed uint64, rate float64) (*ResilienceReport, error) {
	return MeasureResilienceWith(w, requests, opts, ResilienceConfig{Seed: seed, Rate: rate})
}

// ResilienceTable renders the resilience experiment for every network
// application (see cmd/cashbench -table resilience).
func ResilienceTable(requests int, seed uint64, rate float64) (*ResultTable, error) {
	return bench.ResilienceTable(requests, seed, rate)
}

// TableSpec describes one registered table of the paper's evaluation.
// The registry (Tables) is the single source of truth for table ids:
// Table, TableIDs, AllTables ordering, `cashbench -list` and the
// unknown-id error all derive from it.
type TableSpec struct {
	// ID is the stable identifier accepted by Table (e.g. "table1").
	ID string
	// Caption is a one-line description for listings.
	Caption string
	// InAll reports whether AllTables regenerates this table. The
	// resilience table is excluded: the paper's tables are chaos-free.
	InAll bool
	// Generate produces the table through an Engine (nil uses the
	// process default). Generators measuring the network experiment
	// honor requests (0 means the paper's 2000); the rest ignore it.
	Generate func(ctx context.Context, eng *Engine, requests int) (*ResultTable, error)
}

// Tables returns every registered table spec, in paper order. The
// slice is freshly allocated; callers may reorder or filter it.
func Tables() []TableSpec {
	specs := bench.Specs()
	out := make([]TableSpec, len(specs))
	for i, sp := range specs {
		sp := sp
		out[i] = TableSpec{
			ID:      sp.ID,
			Caption: sp.Caption,
			InAll:   sp.InAll,
			Generate: func(ctx context.Context, eng *Engine, requests int) (*ResultTable, error) {
				if requests <= 0 {
					requests = netsim.DefaultRequests
				}
				return sp.Generate(ctx, eng.runtime(), requests)
			},
		}
	}
	return out
}

// Table regenerates one of the paper's tables or analyses by id, via
// the process-default Engine. Valid ids are those of Tables:
//
//	table1 table2 table3 table4 table5 table6 table7 table8 table8bcc
//	ablation-segregs bound detectors constants ldt cache segments figure2
//	resilience
//
// An unknown id yields an error listing every valid id.
func Table(id string) (*ResultTable, error) {
	return bench.TableByID(context.Background(), serve.Default(), id, 0)
}

// TableIDs lists the ids accepted by Table, in paper order.
func TableIDs() []string { return bench.TableIDs() }

// AllTables regenerates every table with the given request count for the
// network experiment. Tables are produced one at a time, but the
// independent experiments inside each (its rows) run concurrently up to
// the SetParallelism budget; results are identical at any setting.
func AllTables(requests int) ([]*ResultTable, error) { return bench.AllTables(requests) }

// TableTiming is the host-side cost of producing one table: wall-clock
// nanoseconds plus the simulated instructions and cycles run on its
// behalf.
type TableTiming = bench.Timing

// AllTablesTimed is AllTables plus per-table host timings.
func AllTablesTimed(requests int) ([]*ResultTable, []TableTiming, error) {
	return bench.AllTablesTimed(requests)
}

// SetBenchPasses configures the IR optimization passes every table
// generator compiles with (see PassNames; nil restores the
// exact-replication default of none). `cashbench -passes rce,hoist`
// regenerates the whole suite under the optimizing back end; the
// checked-in goldens pin both settings.
func SetBenchPasses(passes []string) { bench.SetPasses(passes) }

// SetBenchStrategies restricts the strategy-matrix table to the named
// checking strategies (`cashbench -table strategy-matrix -strategy
// mpx`); nil restores the full-registry sweep. Unknown names are
// rejected with an error listing the valid ones (see Strategies).
func SetBenchStrategies(names []string) error {
	_, err := bench.SetStrategyFilter(names)
	return err
}

// SetBenchTier2 switches every table generator onto the tier-2
// superblock engine (`cashbench -tier2`). Tier-2 execution is
// output-identical to step execution, so the goldens must not change —
// CI diffs the tier-2 suite against the same goldens to prove it.
func SetBenchTier2(on bool) { bench.SetTier2(on) }

// KernelTiming is one Table 1 kernel's measured host cost under the
// current bench configuration (see SetBenchPasses / SetBenchTier2).
type KernelTiming = bench.KernelTiming

// KernelHostTimings times `runs` complete executions of each Table 1
// kernel and reports the median host ns per run — the per-kernel block
// `cashbench -json` emits for BENCH_*.json records.
func KernelHostTimings(runs int) ([]KernelTiming, error) { return bench.KernelHostTimings(runs) }

// SetParallelism bounds how many experiments the benchmark harness runs
// concurrently (default: GOMAXPROCS). 1 forces sequential execution.
//
// Deprecated: Use EngineConfig.Parallelism to give each Engine its own
// budget instead of mutating process-wide state. This setting keeps
// working: an Engine whose config leaves Parallelism zero honors it.
func SetParallelism(n int) { bench.SetParallelism(n) }

// Figure1Trace renders the Figure 1 address-translation pipeline
// (segmentation then paging) for a small traced program.
func Figure1Trace() (string, error) { return bench.Figure1Trace() }

// MetricsSnapshot is a point-in-time copy of the process-wide metrics
// registry: named counters and gauges plus latency histograms. Snapshots
// are plain data — subtract two with Delta to isolate one experiment's
// contribution, render with Format (deterministic text) or JSON.
type MetricsSnapshot = obs.Snapshot

// Metrics snapshots the process-wide observability registry that the
// simulator's layers (vm, paging, ldt, core, netsim) publish into. Take
// a snapshot before and after an experiment and Delta them; because
// every published metric is commutative across goroutines, the delta is
// identical at any SetParallelism budget.
func Metrics() MetricsSnapshot { return obs.Default().Snapshot() }

// EventTrace is a bounded ring buffer of structured machine events:
// segment-register loads, descriptor installs and evictions, faults,
// LDT allocation traffic, and the resilient server's retry/shed/
// degrade/re-arm decisions. A nil *EventTrace is valid everywhere and
// disables emission; tracing is strictly opt-in.
type EventTrace = obs.Trace

// TraceEvent is one structured EventTrace record.
type TraceEvent = obs.Event

// NewEventTrace returns a trace retaining up to capacity events
// (0 means the default capacity). Attach it to machine runs with
// Options.EventTrace, or install it process-wide with
// SetDefaultEventTrace for producers without an options path.
func NewEventTrace(capacity int) *EventTrace { return obs.NewTrace(capacity) }

// SetDefaultEventTrace installs (or, with nil, removes) the process-wide
// event trace — the one the netsim resilient server emits into — and
// returns the previous one.
//
// Deprecated: Use EngineConfig.EventTrace to scope a trace to one
// Engine instead of mutating process-wide state. This setting keeps
// working: an Engine whose config leaves EventTrace nil emits into it.
func SetDefaultEventTrace(tr *EventTrace) *EventTrace { return obs.SetDefaultTrace(tr) }
