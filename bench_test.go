package cash

// One testing.B benchmark per table and figure of the paper's evaluation
// section. The quantity of interest is simulated cycles (and derived
// overhead percentages), which are deterministic; they are reported with
// b.ReportMetric so `go test -bench` output carries the reproduction
// numbers alongside the incidental wall-clock cost of simulation.

import (
	"flag"
	"testing"

	"cash/internal/bench"
	"cash/internal/core"
	"cash/internal/ldt"
	"cash/internal/netsim"
	"cash/internal/workload"
	"cash/internal/x86seg"
)

// -tier2 runs the benchmarks under superblock execution (Options.Tier2),
// the BENCH_6.json comparison axis. Simulated metrics are identical
// either way; only host ns/op moves.
var benchTier2 = flag.Bool("tier2", false, "benchmark with tier-2 superblock execution")

// reportComparison attaches the paper's metrics to a benchmark.
func reportComparison(b *testing.B, cmp *core.Comparison) {
	b.Helper()
	b.ReportMetric(float64(cmp.GCC.Cycles), "gcc-cycles")
	b.ReportMetric(cmp.CashOverheadPct(), "cash-ovh-%")
	b.ReportMetric(cmp.BCCOverheadPct(), "bcc-ovh-%")
	b.ReportMetric(float64(cmp.Cash.Stats.HWChecks), "hw-checks")
	b.ReportMetric(float64(cmp.Cash.Stats.SWChecks), "sw-checks")
}

// BenchmarkTable1Kernels regenerates Table 1: the six numerical kernels
// under GCC/Cash/BCC with four segment registers.
func BenchmarkTable1Kernels(b *testing.B) {
	for _, w := range workload.Kernels() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var cmp *core.Comparison
			var err error
			for i := 0; i < b.N; i++ {
				cmp, err = core.Compare(w.Name, w.Source, core.Options{SegRegs: 4, Tier2: *benchTier2})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportComparison(b, cmp)
		})
	}
}

// BenchmarkAblationSegRegs regenerates the §4.2 sweep: kernel overheads
// with 2, 3 and 4 segment registers.
func BenchmarkAblationSegRegs(b *testing.B) {
	for _, regs := range []int{2, 3, 4} {
		regs := regs
		b.Run(map[int]string{2: "regs2", 3: "regs3", 4: "regs4"}[regs], func(b *testing.B) {
			var worst, sum float64
			var swTotal uint64
			for i := 0; i < b.N; i++ {
				worst, sum, swTotal = 0, 0, 0
				for _, w := range workload.Kernels() {
					cmp, err := core.Compare(w.Name, w.Source, core.Options{SegRegs: regs})
					if err != nil {
						b.Fatal(err)
					}
					ov := cmp.CashOverheadPct()
					sum += ov
					if ov > worst {
						worst = ov
					}
					swTotal += cmp.Cash.Stats.SWChecks
				}
			}
			b.ReportMetric(sum/6, "mean-cash-ovh-%")
			b.ReportMetric(worst, "worst-cash-ovh-%")
			b.ReportMetric(float64(swTotal), "sw-checks")
		})
	}
}

// BenchmarkTable2CodeSize regenerates Table 2: kernel binary sizes.
func BenchmarkTable2CodeSize(b *testing.B) {
	var tab *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tab.Rows)), "rows")
}

// BenchmarkTable3Scaling regenerates Table 3: Cash overhead vs input
// size for FFT, Gaussian elimination and matrix multiplication.
func BenchmarkTable3Scaling(b *testing.B) {
	type series struct {
		name  string
		mk    func(int) workload.Workload
		sizes []int
	}
	for _, s := range []series{
		{name: "fft", mk: workload.FFT2D, sizes: []int{8, 32}},
		{name: "gauss", mk: workload.Gaussian, sizes: []int{8, 32}},
		{name: "matmul", mk: workload.MatMul, sizes: []int{8, 32}},
	} {
		s := s
		b.Run(s.name, func(b *testing.B) {
			var small, large float64
			for i := 0; i < b.N; i++ {
				for j, n := range s.sizes {
					w := s.mk(n)
					cmp, err := core.Compare(w.Name, w.Source, core.Options{SegRegs: 4})
					if err != nil {
						b.Fatal(err)
					}
					if j == 0 {
						small = cmp.CashOverheadPct()
					} else {
						large = cmp.CashOverheadPct()
					}
				}
			}
			b.ReportMetric(small, "cash-ovh-small-%")
			b.ReportMetric(large, "cash-ovh-large-%")
		})
	}
}

// BenchmarkTable4Characteristics regenerates Table 4 (and exercises the
// static loop analysis).
func BenchmarkTable4Characteristics(b *testing.B) {
	var loops int
	for i := 0; i < b.N; i++ {
		loops = 0
		for _, w := range workload.Macros() {
			ch, err := core.Characterize(w.Source, 3)
			if err != nil {
				b.Fatal(err)
			}
			loops += ch.ArrayUsingLoops
		}
	}
	b.ReportMetric(float64(loops), "array-loops")
}

// BenchmarkTable5Macro regenerates Table 5: the macro applications.
func BenchmarkTable5Macro(b *testing.B) {
	for _, w := range workload.Macros() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var cmp *core.Comparison
			var err error
			for i := 0; i < b.N; i++ {
				cmp, err = core.Compare(w.Name, w.Source, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportComparison(b, cmp)
		})
	}
}

// BenchmarkTable7Characteristics regenerates Table 7.
func BenchmarkTable7Characteristics(b *testing.B) {
	var spilled int
	for i := 0; i < b.N; i++ {
		spilled = 0
		for _, w := range workload.NetworkApps() {
			ch, err := core.Characterize(w.Source, 3)
			if err != nil {
				b.Fatal(err)
			}
			spilled += ch.SpilledLoops
		}
	}
	b.ReportMetric(float64(spilled), "spilled-loops")
}

// BenchmarkTable8Network regenerates Table 8: per-application latency,
// throughput and space penalties under the process-per-request server.
func BenchmarkTable8Network(b *testing.B) {
	for _, w := range workload.NetworkApps() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			var rep *netsim.AppReport
			var err error
			for i := 0; i < b.N; i++ {
				rep, err = netsim.Measure(w, 200, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.LatencyPenaltyPct, "latency-penalty-%")
			b.ReportMetric(rep.ThroughputPenaltyPct, "throughput-penalty-%")
			b.ReportMetric(rep.SpaceOverheadPct, "space-ovh-%")
		})
	}
}

// BenchmarkOverheadConstants regenerates the §4.1 fixed-cost
// measurements (per-program 543, per-array 263, per-array-use 4).
func BenchmarkOverheadConstants(b *testing.B) {
	var oc core.OverheadConstants
	var err error
	for i := 0; i < b.N; i++ {
		oc, err = core.MeasureOverheadConstants()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(oc.PerProgram), "per-program-cycles")
	b.ReportMetric(float64(oc.PerArray), "per-array-cycles")
	b.ReportMetric(float64(oc.PerArrayUse), "per-array-use-cycles")
}

// BenchmarkLDTCallGate measures the §3.6 fast kernel path (253 cycles
// per segment allocation) against BenchmarkLDTSyscall's stock path.
func BenchmarkLDTCallGate(b *testing.B) {
	m := ldt.NewManager(x86seg.NewTable("LDT"))
	if err := m.InstallCallGate(); err != nil {
		b.Fatal(err)
	}
	m.ResetCycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel, err := m.Alloc(uint32(i%1024)*64, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Free(sel); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Cycles())/float64(b.N), "sim-cycles/alloc+free")
}

// BenchmarkLDTSyscall measures the stock modify_ldt path (781 cycles).
func BenchmarkLDTSyscall(b *testing.B) {
	m := ldt.NewManager(x86seg.NewTable("LDT"))
	for i := 0; i < b.N; i++ {
		sel, err := m.Alloc(uint32(i%1024)*64+4096*1024, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Free(sel); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(m.Cycles())/float64(b.N), "sim-cycles/alloc+free")
}

// BenchmarkSegmentCache regenerates the §4.5 Toast cache analysis.
func BenchmarkSegmentCache(b *testing.B) {
	w, _ := workload.ByName("toast")
	art, err := core.Build(w.Source, core.ModeCash, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var res *core.RunResult
	for i := 0; i < b.N; i++ {
		res, err = art.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LDTStats.HitRatio()*100, "cache-hit-%")
	b.ReportMetric(float64(res.LDTStats.AllocRequests), "alloc-requests")
}

// BenchmarkFigure1Translation measures the simulated translation
// pipeline itself: one segment-checked reference through segmentation and
// paging (this is the only wall-clock-oriented benchmark; it shows the
// simulator's raw cost per modelled reference).
func BenchmarkFigure1Translation(b *testing.B) {
	mmu := x86seg.NewMMU()
	d, err := x86seg.NewDataDescriptor(0x8000, 4096)
	if err != nil {
		b.Fatal(err)
	}
	if err := mmu.LDT().Set(1, d); err != nil {
		b.Fatal(err)
	}
	if err := mmu.Load(x86seg.GS, x86seg.NewSelector(1, x86seg.LDT, 3)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mmu.Translate(x86seg.GS, uint32(i)&0xff8, 4, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2Granularity measures descriptor construction across
// the 1 MiB granularity boundary (§3.5 / Figure 2).
func BenchmarkFigure2Granularity(b *testing.B) {
	var slack uint32
	for i := 0; i < b.N; i++ {
		d, err := x86seg.NewDataDescriptor(0, 1<<20+100)
		if err != nil {
			b.Fatal(err)
		}
		slack = d.ByteSize() - (1<<20 + 100)
	}
	b.ReportMetric(float64(slack), "lower-slack-bytes")
}

// BenchmarkSimulator reports the raw interpreter speed: simulated
// instructions per wall-clock second on the matmul kernel.
func BenchmarkSimulator(b *testing.B) {
	w := workload.MatMul(24)
	art, err := core.Build(w.Source, core.ModeCash, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := art.Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Stats.Instructions
	}
	b.ReportMetric(float64(instrs), "sim-instructions/op")
}

// BenchmarkSecurityOnlyMode measures the §3.8 write-only-check variant
// against full checking on a read-heavy kernel.
func BenchmarkSecurityOnlyMode(b *testing.B) {
	w := workload.MatMul(32)
	run := func(skipReads bool) float64 {
		cmp, err := core.Compare(w.Name, w.Source, core.Options{SkipReadChecks: skipReads})
		if err != nil {
			b.Fatal(err)
		}
		return cmp.CashOverheadPct()
	}
	var full, writeOnly float64
	for i := 0; i < b.N; i++ {
		full = run(false)
		writeOnly = run(true)
	}
	b.ReportMetric(full, "full-check-ovh-%")
	b.ReportMetric(writeOnly, "write-only-ovh-%")
}
