// Package chaos is the deterministic fault-injection plane of the
// resilience harness. It decides — ahead of execution and independently
// of goroutine scheduling — which requests of a simulated serving run are
// faulted and how.
//
// Every decision is a pure function of (seed, scope, request index,
// attempt, draw number): two runs with the same seed produce exactly the
// same fault sequence, no matter how the work is parallelised, so chaos
// experiments are replayable byte-for-byte. The package deliberately has
// no dependencies on the machine; it only *chooses* faults. The VM
// (internal/vm) provides the mechanisms and the server harness
// (internal/netsim) maps a chosen Site onto them.
package chaos

import "fmt"

// Site identifies one injection point of the simulated system. The sites
// mirror the failure modes the paper's design discusses: modify_ldt
// churn (§3.6), LDT exhaustion and the flat-segment fallback (§3.4),
// user-space shadow-structure corruption (§3.8), and the #GP path by
// which bound violations surface.
type Site int

// Injection sites.
const (
	// SiteNone means the request runs clean.
	SiteNone Site = iota
	// SiteTransientLDT makes the first segment-allocation kernel entry
	// fail transiently (EAGAIN-style); the request is retryable.
	SiteTransientLDT
	// SiteExhaustLDT reserves every LDT entry before the handler starts,
	// forcing all allocations onto the flat-segment fallback (§3.4).
	SiteExhaustLDT
	// SiteCorruptDescriptor corrupts the first installed array descriptor
	// behind the allocator's back (limit shrunk to one byte).
	SiteCorruptDescriptor
	// SiteCorruptShadow corrupts the user-space free_ldt_entry list (the
	// §3.8 shadow structures) by inserting a duplicate of a live entry.
	SiteCorruptShadow
	// SiteUnmapPage unmaps the page holding the request buffer, modelling
	// a page-table unmap race; the handler's first read of it faults.
	SiteUnmapPage
	// SiteMalformedRequest scribbles over the embedded request bytes, so
	// the handler sees adversarial input.
	SiteMalformedRequest
	// SiteRunawayHandler models a handler stuck in a loop: the request
	// runs with a step budget below its known cost, so the watchdog
	// (vm.WithStepLimit) terminates it.
	SiteRunawayHandler

	// Network-layer sites, injected at the TCP serving front end
	// (internal/srv) rather than inside the simulated machine. They are
	// deliberately NOT part of AllSites — the vm-site schedules of the
	// resilience goldens must not shift when the wire layer learns new
	// failure modes.

	// SiteAcceptFail makes one accepted connection fail immediately (the
	// listener behaves as if accept(2) returned an error).
	SiteAcceptFail
	// SiteConnDrop severs a connection after a request frame has been
	// read but before its response is written — the client sees a
	// mid-request EOF.
	SiteConnDrop
	// SiteSlowRead delays the server's read of one request frame,
	// modelling a congested or trickling client.
	SiteSlowRead

	numSites
)

func (s Site) String() string {
	switch s {
	case SiteNone:
		return "none"
	case SiteTransientLDT:
		return "transient-ldt"
	case SiteExhaustLDT:
		return "exhaust-ldt"
	case SiteCorruptDescriptor:
		return "corrupt-descriptor"
	case SiteCorruptShadow:
		return "corrupt-shadow"
	case SiteUnmapPage:
		return "unmap-page"
	case SiteMalformedRequest:
		return "malformed-request"
	case SiteRunawayHandler:
		return "runaway-handler"
	case SiteAcceptFail:
		return "accept-fail"
	case SiteConnDrop:
		return "conn-drop"
	case SiteSlowRead:
		return "slow-read"
	default:
		return fmt.Sprintf("Site(%d)", int(s))
	}
}

// AllSites lists every machine-level injection site (the sites the
// netsim resilience harness draws from). The network sites are listed
// separately by NetSites so existing fault schedules stay stable.
func AllSites() []Site {
	return []Site{
		SiteTransientLDT, SiteExhaustLDT, SiteCorruptDescriptor,
		SiteCorruptShadow, SiteUnmapPage, SiteMalformedRequest,
		SiteRunawayHandler,
	}
}

// NetSites lists the wire-layer injection sites the TCP front end
// (internal/srv) maps onto accept failures, mid-request connection
// drops and delayed reads.
func NetSites() []Site {
	return []Site{SiteAcceptFail, SiteConnDrop, SiteSlowRead}
}

// UniversalSites lists the sites that apply to any compiler mode. The
// LDT-related sites only make sense under Cash, which is the only mode
// that allocates segments.
func UniversalSites() []Site {
	return []Site{SiteUnmapPage, SiteMalformedRequest, SiteRunawayHandler}
}

// Config parameterises a Plan.
// Default chaos parameters: the seed and injection rate used by the
// resilience golden and by callers that do not pick their own.
const (
	DefaultSeed uint64  = 1
	DefaultRate float64 = 0.05
)

type Config struct {
	// Seed keys every draw; equal seeds give identical fault schedules.
	Seed uint64
	// Rate is the per-request injection probability in [0, 1].
	Rate float64
	// Sites, when non-empty, restricts injection to the listed sites
	// (used by targeted tests); the caller-supplied applicable set is
	// intersected with it.
	Sites []Site
}

// Plan is an immutable, concurrency-safe fault schedule. A nil *Plan is
// valid and injects nothing.
type Plan struct {
	cfg Config
}

// NewPlan builds a plan; rates outside [0, 1] are clamped.
func NewPlan(cfg Config) *Plan {
	if cfg.Rate < 0 {
		cfg.Rate = 0
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	return &Plan{cfg: cfg}
}

// Enabled reports whether the plan can inject anything.
func (p *Plan) Enabled() bool { return p != nil && p.cfg.Rate > 0 }

// Seed returns the plan's seed (0 for a nil plan).
func (p *Plan) Seed() uint64 {
	if p == nil {
		return 0
	}
	return p.cfg.Seed
}

// Rate returns the per-request injection probability.
func (p *Plan) Rate() float64 {
	if p == nil {
		return 0
	}
	return p.cfg.Rate
}

// Injection is the decision for one (request, attempt): at most one site
// plus auxiliary deterministic randomness for the site's parameters.
type Injection struct {
	Site Site
	// Aux is site-specific deterministic randomness (e.g. which byte
	// value to scribble).
	Aux uint64
}

// Active reports whether the injection does anything.
func (in Injection) Active() bool { return in.Site != SiteNone }

// Is reports whether the injection hits the given site.
func (in Injection) Is(s Site) bool { return in.Site == s }

// Draw decides the fault for one attempt of one request. scope names the
// experiment (e.g. "apache/cash") so distinct applications and compiler
// modes get independent schedules; applicable lists the sites that can
// fire in this context. Redrawing with a higher attempt yields an
// independent decision — that is what makes retrying transient faults
// effective.
func (p *Plan) Draw(scope string, request, attempt int, applicable []Site) Injection {
	if !p.Enabled() || len(applicable) == 0 {
		return Injection{}
	}
	sites := applicable
	if len(p.cfg.Sites) > 0 {
		sites = intersect(applicable, p.cfg.Sites)
		if len(sites) == 0 {
			return Injection{}
		}
	}
	base := mix(mix(p.cfg.Seed^fnv64a(scope), uint64(request)), uint64(attempt))
	if unit(mix(base, 0)) >= p.cfg.Rate {
		return Injection{}
	}
	return Injection{
		Site: sites[mix(base, 1)%uint64(len(sites))],
		Aux:  mix(base, 2),
	}
}

func intersect(a, b []Site) []Site {
	var out []Site
	for _, s := range a {
		for _, t := range b {
			if s == t {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// fnv64a hashes a scope string (FNV-1a).
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is one splitmix64 step over state x advanced by y — the stateless
// PRNG all draws derive from.
func mix(x, y uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15*(y+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a hash to [0, 1) with 53-bit resolution.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
