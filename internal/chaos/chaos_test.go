package chaos

import "testing"

func TestDrawIsDeterministic(t *testing.T) {
	p := NewPlan(Config{Seed: 42, Rate: 0.5})
	q := NewPlan(Config{Seed: 42, Rate: 0.5})
	for req := 0; req < 500; req++ {
		for attempt := 0; attempt < 3; attempt++ {
			a := p.Draw("apache/cash", req, attempt, AllSites())
			b := q.Draw("apache/cash", req, attempt, AllSites())
			if a != b {
				t.Fatalf("req %d attempt %d: %v != %v", req, attempt, a, b)
			}
		}
	}
}

func TestDrawRateZeroAndNilPlanInjectNothing(t *testing.T) {
	for _, p := range []*Plan{nil, NewPlan(Config{Seed: 1, Rate: 0})} {
		for req := 0; req < 200; req++ {
			if in := p.Draw("x", req, 0, AllSites()); in.Active() {
				t.Fatalf("plan %v injected %v at request %d", p, in, req)
			}
		}
	}
}

func TestDrawRateOneAlwaysInjectsFromApplicable(t *testing.T) {
	p := NewPlan(Config{Seed: 9, Rate: 1})
	seen := map[Site]bool{}
	for req := 0; req < 300; req++ {
		in := p.Draw("bind/gcc", req, 0, UniversalSites())
		if !in.Active() {
			t.Fatalf("request %d not injected at rate 1", req)
		}
		ok := false
		for _, s := range UniversalSites() {
			if in.Site == s {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("site %v not in the applicable set", in.Site)
		}
		seen[in.Site] = true
	}
	if len(seen) != len(UniversalSites()) {
		t.Fatalf("only %d of %d applicable sites ever drawn", len(seen), len(UniversalSites()))
	}
}

func TestDrawRateIsApproximatelyHonoured(t *testing.T) {
	p := NewPlan(Config{Seed: 3, Rate: 0.05})
	hits := 0
	const n = 20000
	for req := 0; req < n; req++ {
		if p.Draw("qpopper/cash", req, 0, AllSites()).Active() {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.03 || got > 0.07 {
		t.Fatalf("empirical rate %.4f far from configured 0.05", got)
	}
}

func TestDrawVariesAcrossScopeRequestAttemptSeed(t *testing.T) {
	base := NewPlan(Config{Seed: 7, Rate: 0.5})
	diff := func(name string, f func(req int) Injection) {
		t.Helper()
		same := 0
		for req := 0; req < 400; req++ {
			if base.Draw("a/cash", req, 0, AllSites()) == f(req) {
				same++
			}
		}
		if same == 400 {
			t.Fatalf("%s: schedules identical — draws are not independent", name)
		}
	}
	other := NewPlan(Config{Seed: 8, Rate: 0.5})
	diff("scope", func(req int) Injection { return base.Draw("b/cash", req, 0, AllSites()) })
	diff("attempt", func(req int) Injection { return base.Draw("a/cash", req, 1, AllSites()) })
	diff("seed", func(req int) Injection { return other.Draw("a/cash", req, 0, AllSites()) })
}

func TestConfigSitesRestrictsDraws(t *testing.T) {
	p := NewPlan(Config{Seed: 1, Rate: 1, Sites: []Site{SiteRunawayHandler}})
	for req := 0; req < 100; req++ {
		in := p.Draw("x/cash", req, 0, AllSites())
		if in.Site != SiteRunawayHandler {
			t.Fatalf("request %d drew %v, want runaway only", req, in.Site)
		}
	}
	// A filter with no overlap against the applicable set injects nothing.
	p = NewPlan(Config{Seed: 1, Rate: 1, Sites: []Site{SiteTransientLDT}})
	if in := p.Draw("x/gcc", 0, 0, UniversalSites()); in.Active() {
		t.Fatalf("disjoint site filter still injected %v", in)
	}
}

func TestSiteStrings(t *testing.T) {
	for s := SiteNone; s < numSites; s++ {
		if s.String() == "" || s.String() == "Site(0)" {
			t.Fatalf("site %d has no name", int(s))
		}
	}
}
