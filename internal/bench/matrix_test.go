package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"cash/internal/codegen"
	"cash/internal/core"
	"cash/internal/serve"
	"cash/internal/workload"
)

// TestGoldenStrategyMatrix pins the strategy x pass matrix byte-for-byte.
// Regenerate only for a change that is *supposed* to alter results:
//
//	go run ./cmd/cashbench -table strategy-matrix 2>/dev/null > internal/bench/testdata/golden_strategy_matrix.txt
func TestGoldenStrategyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix regeneration is slow; run without -short")
	}
	want, err := os.ReadFile("testdata/golden_strategy_matrix.txt")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := StrategyMatrix()
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Format()
	if got != string(want) {
		t.Fatalf("strategy matrix drifted from golden file\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestStrategyMatrixDeterministic renders the matrix twice on fresh
// engines and requires byte identity — the CI strategy-matrix lane runs
// the generator twice and diffs, so flakiness here is a lane failure.
func TestStrategyMatrixDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix regeneration is slow; run without -short")
	}
	render := func() string {
		tab, err := strategyMatrix(context.Background(), serve.NewEngine(serve.EngineConfig{}))
		if err != nil {
			t.Fatal(err)
		}
		return tab.Format()
	}
	first := render()
	second := render()
	if first != second {
		t.Fatalf("strategy matrix not reproducible across runs\n%s", firstDiff(second, first))
	}
}

// TestStrategyMatrixCoversRegistry: the matrix must sweep every
// registered strategy (a new registration shows up here, forcing a
// deliberate golden regeneration) and every pass pipeline ends in the
// full rce+hoist+affine+chop chain.
func TestStrategyMatrixCoversRegistry(t *testing.T) {
	names := core.StrategyNames()
	seen := map[string]bool{}
	for _, combo := range matrixPassCombos {
		seen[combo.label] = true
	}
	if !seen["+chop"] || !seen["none"] {
		t.Fatalf("pass combos %v must span none..+chop", matrixPassCombos)
	}
	last := matrixPassCombos[len(matrixPassCombos)-1].passes
	if len(last) != len(codegen.PassNames()) {
		t.Fatalf("final combo %v does not exercise every registered pass %v", last, codegen.PassNames())
	}
	if len(names) < 4 {
		t.Fatalf("registry lists %v; the matrix expects at least gcc, bcc, cash, mpx", names)
	}
}

// TestStrategyFilter: the cashbench -strategy knob validates names up
// front and restricts the matrix to the requested rows.
func TestStrategyFilter(t *testing.T) {
	if _, err := SetStrategyFilter([]string{"asan"}); err == nil {
		t.Fatal("unknown strategy accepted by the filter")
	} else if !strings.Contains(err.Error(), `unknown strategy "asan"`) {
		t.Fatalf("unexpected error %v", err)
	}
	prev, err := SetStrategyFilter([]string{"mpx"})
	if err != nil {
		t.Fatal(err)
	}
	defer SetStrategyFilter(prev)
	tab, err := strategyMatrix(context.Background(), serve.Default())
	if err != nil {
		t.Fatal(err)
	}
	ws := append(workload.Kernels(), workload.RangeKernels()...)
	if len(tab.Rows) != len(ws) {
		t.Fatalf("filtered matrix has %d rows, want one per workload (%d)", len(tab.Rows), len(ws))
	}
	for _, row := range tab.Rows {
		if row[1] != "mpx" {
			t.Fatalf("filtered matrix contains strategy %q", row[1])
		}
	}
}

// TestChopReducesChecks is the CHOP acceptance gate: under bcc, the
// consolidation pass must strictly reduce dynamic software checks on at
// least three kernels without changing program output.
func TestChopReducesChecks(t *testing.T) {
	eng := serve.Default()
	ctx := context.Background()
	ws := append(workload.Kernels(), workload.RangeKernels()...)
	ws = append(ws, workload.StencilKernels()...)
	var winners []string
	for _, w := range ws {
		off, err := matrixCell(ctx, eng, w, core.ModeBCC, nil)
		if err != nil {
			t.Fatalf("%s off: %v", w.Name, err)
		}
		on, err := matrixCell(ctx, eng, w, core.ModeBCC, []string{"chop"})
		if err != nil {
			t.Fatalf("%s chop: %v", w.Name, err)
		}
		if !outputEqual(on.output, off.output) {
			t.Fatalf("%s: chop changed program output", w.Name)
		}
		if on.dynSW > off.dynSW {
			t.Errorf("%s: chop increased dynamic checks %d -> %d", w.Name, off.dynSW, on.dynSW)
		}
		if on.dynSW < off.dynSW {
			winners = append(winners, fmt.Sprintf("%s (%d -> %d)", w.Name, off.dynSW, on.dynSW))
		}
	}
	if len(winners) < 3 {
		t.Fatalf("chop reduced dynamic checks on %d kernels %v, want >= 3", len(winners), winners)
	}
	t.Logf("chop winners: %v", winners)
}
