package bench

import (
	"strconv"
	"strings"
	"testing"
)

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 kernels", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// With 4 segment registers all checks are in hardware.
		if !strings.HasSuffix(row[1], "/0") {
			t.Errorf("%s: HW/SW = %s, want zero software checks", row[0], row[1])
		}
		cash := parsePct(t, row[3])
		bcc := parsePct(t, row[4])
		if cash >= bcc {
			t.Errorf("%s: cash %.1f%% must beat bcc %.1f%%", row[0], cash, bcc)
		}
		if cash > 12 {
			t.Errorf("%s: cash overhead %.1f%% too large", row[0], cash)
		}
		if bcc < 20 {
			t.Errorf("%s: bcc overhead %.1f%% too small", row[0], bcc)
		}
	}
	if out := tab.Format(); !strings.Contains(out, "TABLE1") {
		t.Error("Format must include the table id")
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		cash := parsePct(t, row[2])
		bcc := parsePct(t, row[3])
		if cash <= 0 || bcc <= 0 {
			t.Errorf("%s: both overheads must be positive (%s, %s)", row[0], row[2], row[3])
		}
		if cash >= bcc {
			t.Errorf("%s: cash size overhead %.1f%% must be below bcc %.1f%%", row[0], cash, bcc)
		}
	}
}

func TestTable3Decreasing(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		first := parsePct(t, row[1])
		last := parsePct(t, row[len(row)-1])
		if last >= first && last > 1.0 {
			t.Errorf("%s: overhead must fall with size: %s -> %s", row[0], row[1], row[len(row)-1])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		cash := parsePct(t, row[2])
		bcc := parsePct(t, row[3])
		if cash >= bcc {
			t.Errorf("%s: cash %.1f%% must beat bcc %.1f%%", row[0], cash, bcc)
		}
	}
}

func TestTable7Sendmail(t *testing.T) {
	tab, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	var sendmailFrac float64
	fracs := make(map[string]float64)
	for _, row := range tab.Rows {
		// "> 3 Arrays" cell looks like "2 (11.1%)".
		open := strings.Index(row[3], "(")
		f := parsePct(t, strings.TrimSuffix(row[3][open+1:], ")"))
		fracs[row[0]] = f
		if row[0] == "Sendmail" {
			sendmailFrac = f
		}
	}
	if sendmailFrac == 0 {
		t.Fatal("sendmail must have spilled loops")
	}
	for name, f := range fracs {
		if f > sendmailFrac {
			t.Errorf("%s spilled fraction %.1f%% exceeds Sendmail's %.1f%%", name, f, sendmailFrac)
		}
	}
}

func TestTable8Shape(t *testing.T) {
	tab, err := Table8(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		lat := parsePct(t, row[1])
		thr := parsePct(t, row[2])
		space := parsePct(t, row[3])
		if lat <= 0 || lat > 40 {
			t.Errorf("%s: latency penalty %.1f%% outside plausible band", row[0], lat)
		}
		if thr <= 0 || thr > lat {
			t.Errorf("%s: throughput penalty %.1f%% must be positive and not above latency %.1f%%", row[0], thr, lat)
		}
		if space <= 0 {
			t.Errorf("%s: space overhead must be positive", row[0])
		}
	}
}

func TestAblationMonotone(t *testing.T) {
	tab, err := AblationSegRegs()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sw2, sw3, sw4 := parsePct(t, row[1]), parsePct(t, row[3]), parsePct(t, row[5])
		if sw2 < sw3 || sw3 < sw4 {
			t.Errorf("%s: software share must not grow with more registers: %v %v %v",
				row[0], sw2, sw3, sw4)
		}
		if sw4 != 0 {
			t.Errorf("%s: 4 registers must eliminate software checks, got %.1f%%", row[0], sw4)
		}
	}
}

func TestConstantsTable(t *testing.T) {
	tab, err := ConstantsTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] != row[2] {
			t.Errorf("constant %s: measured %s != paper %s", row[0], row[1], row[2])
		}
	}
}

func TestLDTCostTable(t *testing.T) {
	tab, err := LDTCostTable()
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "781" || tab.Rows[1][1] != "253" {
		t.Fatalf("LDT costs = %v, want 781 / 253", tab.Rows)
	}
}

func TestCacheTable(t *testing.T) {
	tab, err := CacheTable()
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]string, len(tab.Rows))
	for _, row := range tab.Rows {
		cells[row[0]] = row[1]
	}
	hit := parsePct(t, cells["cache hit ratio"])
	if hit < 30 {
		t.Errorf("toast cache hit ratio %.1f%%, want substantial (paper: 53.8%%)", hit)
	}
	share := parsePct(t, cells["LDT modification share of run time"])
	if share > 10 {
		t.Errorf("LDT share %.1f%% must be small (paper: ~1%%)", share)
	}
}

func TestSegmentsBudget(t *testing.T) {
	tab, err := SegmentsTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		peak, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if peak <= 0 || peak > 8191 {
			t.Errorf("%s: peak live segments %d outside budget", row[0], peak)
		}
	}
}

func TestFigure2Table(t *testing.T) {
	tab, err := Figure2Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		slack, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatal(err)
		}
		if slack < 0 || slack >= 4096 {
			t.Errorf("size %s: lower slack %d must be within one page", row[0], slack)
		}
		if row[1] == "off" && slack != 0 {
			t.Errorf("byte-granular segment must have zero slack")
		}
	}
}

func TestFigure1Trace(t *testing.T) {
	trace, err := Figure1Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace, "linear=") || !strings.Contains(trace, "physical=") {
		t.Fatalf("trace missing pipeline stages:\n%s", trace)
	}
	if !strings.Contains(trace, "LDT[") {
		t.Fatalf("trace must show an array segment selector:\n%s", trace)
	}
}
