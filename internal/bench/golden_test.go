package bench

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"cash/internal/par"
)

// renderAll reproduces exactly what `cashbench -all` writes to stdout:
// every table in paper order, a blank line after each, then the Figure 1
// trace.
func renderAll(t *testing.T, requests int) string {
	t.Helper()
	tabs, err := AllTables(requests)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tab := range tabs {
		b.WriteString(tab.Format())
		b.WriteByte('\n')
	}
	trace, err := Figure1Trace()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(trace)
	return b.String()
}

// TestGoldenAllTables pins the full benchmark output byte-for-byte: the
// TLB, the dense memory arenas, the predecoded dispatch and the parallel
// harness are host-side optimisations that must not move a single
// simulated number. Regenerate the golden file only for a change that is
// *supposed* to alter results:
//
//	go run ./cmd/cashbench -all -requests 200 > internal/bench/testdata/golden_all_200.txt
func TestGoldenAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration is slow; run without -short")
	}
	want, err := os.ReadFile("testdata/golden_all_200.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := renderAll(t, 200)
	if got != string(want) {
		t.Fatalf("benchmark output drifted from golden file\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestGoldenAllTablesTier2 renders the full suite again through the
// tier-2 superblock engine and diffs it against the *same* golden file:
// tier-2 is a host-side execution strategy, so it must not move a
// single simulated number. This is the test behind the CI tier-2 suite
// lane (`cashbench -all -requests 200 -tier2`).
func TestGoldenAllTablesTier2(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration is slow; run without -short")
	}
	want, err := os.ReadFile("testdata/golden_all_200.txt")
	if err != nil {
		t.Fatal(err)
	}
	prev := SetTier2(true)
	defer SetTier2(prev)
	got := renderAll(t, 200)
	if got != string(want) {
		t.Fatalf("tier-2 benchmark output drifted from the step-execution golden\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestParallelDeterminism checks that the worker budget cannot change any
// result: the same tables rendered fully sequentially and with a large
// budget must be byte-identical. Under -race this also exercises the
// row fan-out for data races.
func TestParallelDeterminism(t *testing.T) {
	defer par.SetParallelism(par.Parallelism())
	render := func(budget int) string {
		par.SetParallelism(budget)
		var b strings.Builder
		for _, mk := range []func() (*Table, error){
			func() (*Table, error) { return Table1(4) },
			Table3,
			AblationSegRegs,
		} {
			tab, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			b.WriteString(tab.Format())
		}
		return b.String()
	}
	seq := render(1)
	parl := render(8)
	if seq != parl {
		t.Fatalf("output differs between -parallel 1 and -parallel 8\n%s", firstDiff(parl, seq))
	}
}

// firstDiff renders the first differing line of two texts.
func firstDiff(got, want string) string {
	g := strings.Split(got, "\n")
	w := strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("first difference at line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return "texts differ in length only"
}
