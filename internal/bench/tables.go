package bench

import (
	"context"
	"fmt"

	"cash/internal/core"
	"cash/internal/netsim"
	"cash/internal/par"
	"cash/internal/serve"
	"cash/internal/workload"
)

// SetParallelism bounds how many experiments (table rows) run
// concurrently; 1 forces fully sequential execution. Every table's
// content is independent of the setting — rows are independent
// deterministic simulations assembled in index order.
//
// Deprecated: the knob is process-wide. Give each serving Engine its
// own budget with serve.EngineConfig.Parallelism instead; Engines with
// no explicit budget keep honoring this setting.
func SetParallelism(n int) { par.SetParallelism(n) }

// Parallelism returns the current worker budget.
func Parallelism() int { return par.Parallelism() }

// Table1 reproduces the micro-benchmark comparison: per-kernel dynamic
// hardware/software check counts and the execution-time overheads of Cash
// and BCC relative to GCC. The paper ran this experiment with four
// segment registers ("In this experiment, Cash is able to use four
// segment registers. As a result, all software bound checks are
// eliminated").
func Table1(segRegs int) (*Table, error) {
	return table1(context.Background(), serve.Default(), segRegs)
}

func table1(ctx context.Context, eng *serve.Engine, segRegs int) (*Table, error) {
	if segRegs == 0 {
		segRegs = 4
	}
	t := &Table{
		ID:      "table1",
		Title:   fmt.Sprintf("kernel overheads (GCC cycles; Cash/BCC %% increase; %d segment registers)", segRegs),
		Columns: []string{"Program", "HW/SW Checks", "GCC", "Cash", "BCC"},
		Notes: []string{
			"HW/SW Checks are dynamic counts under Cash (paper reports static counts; shape identical)",
			"kernel sizes scaled to simulator budgets; see DESIGN.md",
		},
	}
	ws := workload.Kernels()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		cmp, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{SegRegs: segRegs}))
		if err != nil {
			return err
		}
		t.Rows[i] = []string{
			w.Paper,
			checksCol(cmp.Cash.Stats.HWChecks, cmp.Cash.Stats.SWChecks),
			kcycles(cmp.GCC.Cycles),
			pct(cmp.CashOverheadPct()),
			pct(cmp.BCCOverheadPct()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table2 reproduces the kernel binary-size comparison: GCC text bytes and
// the Cash/BCC percentage increases.
func Table2() (*Table, error) {
	return sizeTable(context.Background(), serve.Default(), "table2", "kernel binary code size", workload.Kernels())
}

// Table6 reproduces the macro-application binary-size comparison.
func Table6() (*Table, error) {
	return sizeTable(context.Background(), serve.Default(), "table6", "macro-application binary code size", workload.Macros())
}

// staticLinkSizes compiles the libc corpus under each mode. The paper's
// binaries are statically linked against a GLIBC recompiled with each
// checker, so every binary carries the per-mode library text. The
// replication factor models linking many translation units of library
// code, keeping the library the dominant size contribution as in the
// paper's 400-500 KB binaries.
func staticLinkSizes(ctx context.Context, eng *serve.Engine) (map[core.Mode]int, error) {
	lib := workload.LibCorpus()
	out := make(map[core.Mode]int, 3)
	for _, mode := range []core.Mode{core.ModeGCC, core.ModeCash, core.ModeBCC} {
		art, err := eng.BuildContext(ctx, lib.Source, mode, opt(core.Options{}))
		if err != nil {
			return nil, fmt.Errorf("libc corpus: %w", err)
		}
		out[mode] = art.CodeSize() * netsim.LibReplicas
	}
	return out, nil
}

func sizeTable(ctx context.Context, eng *serve.Engine, id, title string, ws []workload.Workload) (*Table, error) {
	libSizes, err := staticLinkSizes(ctx, eng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title + " (GCC bytes; Cash/BCC % increase; static link)",
		Columns: []string{"Program", "GCC", "Cash", "BCC"},
		Notes: []string{
			"each binary includes the per-mode libc corpus text (static linking with a recompiled library, as in the paper)",
		},
	}
	t.Rows = make([][]string, len(ws))
	err = eng.Do(len(ws), func(i int) error {
		w := ws[i]
		sizes := make(map[core.Mode]int, 3)
		for _, mode := range []core.Mode{core.ModeGCC, core.ModeCash, core.ModeBCC} {
			art, err := eng.BuildContext(ctx, w.Source, mode, opt(core.Options{}))
			if err != nil {
				return fmt.Errorf("%s: %w", w.Name, err)
			}
			sizes[mode] = art.CodeSize() + libSizes[mode]
		}
		gcc := float64(sizes[core.ModeGCC])
		t.Rows[i] = []string{
			w.Paper,
			fmt.Sprintf("%d", sizes[core.ModeGCC]),
			pct((float64(sizes[core.ModeCash]) - gcc) / gcc * 100),
			pct((float64(sizes[core.ModeBCC]) - gcc) / gcc * 100),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table3 reproduces the input-size scaling experiment: Cash's relative
// overhead for 2D FFT, Gaussian elimination and matrix multiplication as
// the matrix grows (the paper sweeps 64..512; we sweep the same shape at
// simulator-friendly sizes).
func Table3() (*Table, error) {
	return table3(context.Background(), serve.Default())
}

func table3(ctx context.Context, eng *serve.Engine) (*Table, error) {
	type series struct {
		paper string
		mk    func(int) workload.Workload
		sizes []int
	}
	sweeps := []series{
		{paper: "2D FFT", mk: workload.FFT2D, sizes: []int{8, 16, 32, 64}},
		{paper: "Gaussian", mk: workload.Gaussian, sizes: []int{8, 16, 32, 64}},
		{paper: "Matrix", mk: workload.MatMul, sizes: []int{8, 16, 32, 64}},
	}
	t := &Table{
		ID:      "table3",
		Title:   "Cash overhead vs input size (percent over GCC)",
		Columns: []string{"Program", "8", "16", "32", "64"},
		Notes: []string{
			"paper sweeps 64..512 on real hardware; the decreasing-overhead shape is the result",
		},
	}
	// Every (series, size) cell is an independent experiment; flatten the
	// sweep so all cells share the worker budget.
	perRow := len(sweeps[0].sizes)
	cells := make([]string, len(sweeps)*perRow)
	err := eng.Do(len(cells), func(i int) error {
		s := sweeps[i/perRow]
		w := s.mk(s.sizes[i%perRow])
		cmp, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{SegRegs: 4}))
		if err != nil {
			return err
		}
		cells[i] = pct(cmp.CashOverheadPct())
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, s := range sweeps {
		t.Rows = append(t.Rows, append([]string{s.paper}, cells[si*perRow:(si+1)*perRow]...))
	}
	return t, nil
}

// Table4 reproduces the macro-application characteristics.
func Table4() (*Table, error) {
	return characteristicsTable(context.Background(), serve.Default(), "table4", "macro-application characteristics", workload.Macros())
}

// Table7 reproduces the network-application characteristics.
func Table7() (*Table, error) {
	return characteristicsTable(context.Background(), serve.Default(), "table7", "network-application characteristics", workload.NetworkApps())
}

func characteristicsTable(ctx context.Context, eng *serve.Engine, id, title string, ws []workload.Workload) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Program", "Lines of Code", "Array-Using Loops", "> 3 Arrays", "Spilled Iter %"},
		Notes: []string{
			"line counts are of the mini-C skeletons, not the original applications",
			"the parenthesised and last columns are the paper's spilled-loop share: static loops and executed iterations",
		},
	}
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		ch, err := core.Characterize(w.Source, 3)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		fracPct := 0.0
		if ch.ArrayUsingLoops > 0 {
			fracPct = float64(ch.SpilledLoops) / float64(ch.ArrayUsingLoops) * 100
		}
		// Dynamic share of loop iterations executed in spilled loops.
		art, err := eng.BuildContext(ctx, w.Source, core.ModeCash, opt(core.Options{}))
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		res, err := eng.RunContext(ctx, art)
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}
		if res.Violation != nil {
			return fmt.Errorf("%s: unexpected violation: %v", w.Name, res.Violation)
		}
		t.Rows[i] = []string{
			w.Paper,
			fmt.Sprintf("%d", ch.Lines),
			fmt.Sprintf("%d", ch.ArrayUsingLoops),
			fmt.Sprintf("%d (%.1f%%)", ch.SpilledLoops, fracPct),
			pct(res.Stats.SpilledIterPct()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table5 reproduces the macro-application performance comparison.
func Table5() (*Table, error) {
	return table5(context.Background(), serve.Default())
}

func table5(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "table5",
		Title:   "macro-application overheads (GCC cycles; Cash/BCC % increase)",
		Columns: []string{"Program", "GCC", "Cash", "BCC"},
	}
	ws := workload.Macros()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		cmp, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{}))
		if err != nil {
			return err
		}
		t.Rows[i] = []string{
			w.Paper,
			kcycles(cmp.GCC.Cycles),
			pct(cmp.CashOverheadPct()),
			pct(cmp.BCCOverheadPct()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Table8 reproduces the network-application latency/throughput/space
// penalties of Cash over the unchecked baseline.
func Table8(requests int) (*Table, error) {
	return table8(context.Background(), serve.Default(), requests)
}

func table8(ctx context.Context, eng *serve.Engine, requests int) (*Table, error) {
	reps, err := netsim.MeasureAllContext(ctx, eng, requests, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table8",
		Title:   fmt.Sprintf("network-application penalties (%d requests, process per request)", reps[0].Requests),
		Columns: []string{"Program", "Latency Penalty", "Throughput Penalty", "Space Overhead"},
		Notes: []string{
			"latency = handler process CPU cycles; throughput includes a fixed per-request OS cost",
			"BCC could not compile these applications in the paper; our BCC column exists and is much slower (see -table table8bcc)",
		},
	}
	for _, rep := range reps {
		t.Rows = append(t.Rows, []string{
			rep.Paper,
			pct(rep.LatencyPenaltyPct),
			pct(rep.ThroughputPenaltyPct),
			pct(rep.SpaceOverheadPct),
		})
	}
	return t, nil
}

// Table8BCC is the comparison the paper could not run: BCC's latency
// penalty on the network applications.
func Table8BCC(requests int) (*Table, error) {
	return table8BCC(context.Background(), serve.Default(), requests)
}

func table8BCC(ctx context.Context, eng *serve.Engine, requests int) (*Table, error) {
	reps, err := netsim.MeasureAllContext(ctx, eng, requests, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "table8bcc",
		Title:   "network applications: BCC latency penalty (not measurable in the paper)",
		Columns: []string{"Program", "Cash Latency Penalty", "BCC Latency Penalty"},
	}
	for _, rep := range reps {
		bcc := (float64(rep.BCC.HandlerCycles) - float64(rep.GCC.HandlerCycles)) /
			float64(rep.GCC.HandlerCycles) * 100
		t.Rows = append(t.Rows, []string{rep.Paper, pct(rep.LatencyPenaltyPct), pct(bcc)})
	}
	return t, nil
}
