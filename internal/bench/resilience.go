package bench

import (
	"context"
	"fmt"

	"cash/internal/chaos"
	"cash/internal/core"
	"cash/internal/netsim"
	"cash/internal/serve"
)

// ResilienceTable runs the resilient network servers (internal/netsim)
// against the deterministic chaos plane and reports availability and
// latency tails per application and compiler mode. It is not part of
// AllTables: the paper's tables are chaos-free, and keeping this table
// separate keeps their goldens byte-identical.
func ResilienceTable(requests int, seed uint64, rate float64) (*Table, error) {
	return ResilienceTableContext(context.Background(), requests, seed, rate)
}

// ResilienceTableContext is ResilienceTable with cancellation. It
// deliberately measures on a fresh private Engine rather than a
// caller-supplied one, so the serve-layer metrics it publishes are a
// pure function of (requests, seed, rate) — the property the metrics
// golden checks.
func ResilienceTableContext(ctx context.Context, requests int, seed uint64, rate float64) (*Table, error) {
	plan := chaos.NewPlan(chaos.Config{Seed: seed, Rate: rate})
	reps, err := netsim.MeasureAllResilienceContext(ctx, serve.NewEngine(serve.EngineConfig{}), requests, opt(core.Options{}), plan)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "resilience",
		Title: fmt.Sprintf("server resilience under fault injection (%d requests, seed %d, rate %.0f%%)",
			requests, seed, rate*100),
		Columns: []string{"Program", "Mode", "Avail", "p50", "p95", "p99",
			"Inj", "Retry", "Shed", "Degr", "Tmo", "Det", "Tol"},
		Notes: []string{
			"Avail = served/offered; p50/p95/p99 = handler latency percentiles over served requests (K cycles, incl. retry backoff)",
			"Inj = requests picked by the chaos plane; Retry = transient modify_ldt retries; Shed = refused (retries exhausted or load shedding)",
			"Degr = served in flat-segment fallback mode (§3.4); Tmo = killed by the watchdog budget; Det = fault or corruption caught; Tol = injection absorbed",
			"gcc/bcc see only the universal sites (page unmap, malformed request, runaway handler); LDT sites apply to cash alone",
			"deterministic: identical seed and rate reproduce this table exactly",
		},
	}
	for _, rep := range reps {
		for i := range rep.Modes {
			mr := &rep.Modes[i]
			t.Rows = append(t.Rows, []string{
				rep.Paper,
				mr.Mode.String(),
				pct(mr.AvailabilityPct()),
				kcycles(mr.P50),
				kcycles(mr.P95),
				kcycles(mr.P99),
				fmt.Sprintf("%d", mr.Injected),
				fmt.Sprintf("%d", mr.Retries),
				fmt.Sprintf("%d", mr.Shed),
				fmt.Sprintf("%d", mr.Degraded),
				fmt.Sprintf("%d", mr.TimedOut),
				fmt.Sprintf("%d", mr.Detected),
				fmt.Sprintf("%d", mr.Tolerated),
			})
		}
	}
	return t, nil
}
