// Package bench regenerates every table and figure of the paper's
// evaluation section (§4) from the simulated system: the micro-benchmark
// kernel comparison (Table 1), binary sizes (Tables 2 and 6), input-size
// scaling (Table 3), macro-application characteristics and performance
// (Tables 4 and 5), network-application characteristics and penalties
// (Tables 7 and 8), the §4.1 overhead constants, the §3.6 kernel-entry
// costs, the §4.2 segment-register ablation, the §4.5 segment-cache and
// segment-budget analyses, and the Figure 1/Figure 2 demonstrations.
package bench

import (
	"fmt"
	"math"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID      string // e.g. "table1"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// pct formats a percentage; the NaN sentinel (a ratio with no baseline,
// see netsim.pctIncrease) renders as "n/a" rather than "NaN%".
func pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v)
}
func kcycles(v uint64) string { return fmt.Sprintf("%dK", v/1000) }
func checksCol(hw, sw uint64) string {
	return fmt.Sprintf("%d/%d", hw, sw)
}
