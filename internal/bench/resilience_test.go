package bench

import (
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// TestResilienceGolden pins the chaos-soak output byte-for-byte at the
// CI reference point (200 requests, seed 1, rate 5%). Determinism is
// the whole point of the seeded chaos plane, so any drift here is a
// behaviour change, not noise. Regenerate only for intentional changes:
//
//	go run ./cmd/cashbench -table resilience -requests 200 -chaos-seed 1 -chaos-rate 0.05 > internal/bench/testdata/golden_resilience_s1_r5_200.txt
func TestResilienceGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full network-application chaos soak")
	}
	want, err := os.ReadFile("testdata/golden_resilience_s1_r5_200.txt")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ResilienceTable(200, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Format()
	if got != string(want) {
		t.Fatalf("resilience output drifted from golden file\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
	// Acceptance floor: every application/mode row survived injection.
	for _, row := range tab.Rows {
		avail := strings.TrimSuffix(row[2], "%")
		v, err := strconv.ParseFloat(avail, 64)
		if err != nil {
			t.Fatalf("unparsable availability %q in row %v", row[2], row)
		}
		if v <= 0 {
			t.Errorf("%s/%s: availability %s — server did not survive", row[0], row[1], row[2])
		}
	}
}

func TestPctFormatsNaNAsNA(t *testing.T) {
	if got := pct(math.NaN()); got != "n/a" {
		t.Fatalf("pct(NaN) = %q, want n/a", got)
	}
	if got := pct(12.34); got != "12.3%" {
		t.Fatalf("pct(12.34) = %q", got)
	}
}
