package bench

import (
	"context"
	"fmt"

	"cash/internal/core"
	"cash/internal/serve"
)

// DetectorTable compares the bound-violation detectors the paper
// discusses — no checking (GCC), Electric Fence guard pages (related
// work, §2), BCC software checks, the bound instruction, and Cash — on a
// heap-churning workload: run-time overhead, heap address-space
// consumption, and what each one actually catches.

// detectorHeapKernel allocates, fills and frees many heap buffers — the
// access pattern Electric Fence was built for.
const detectorHeapKernel = `
int total;
int churn(int n, int seed) {
	int *buf = malloc(n * 4);
	for (int i = 0; i < n; i++) buf[i] = seed + i;
	int s = 0;
	for (int i = 0; i < n; i++) s += buf[i];
	free(buf);
	return s;
}
void main() {
	for (int r = 0; r < 200; r++) {
		total += churn(16 + (r % 48), r);
	}
	printi(total);
}`

// Overflow probes, one per memory region.
const (
	probeHeap = `
void main() {
	char *b = malloc(24);
	for (int i = 0; i < 40; i++) b[i] = 'A';
}`
	probeGlobal = `
int g[8];
void main() { for (int i = 0; i <= 8; i++) g[i] = i; }`
	probeStack = `
void smash() {
	int b[8];
	for (int i = 0; i <= 8; i++) b[i] = i;
}
void main() { smash(); }`
)

type detectorVariant struct {
	name string
	mode core.Mode
	opts core.Options
}

func detectorVariants() []detectorVariant {
	return []detectorVariant{
		{name: "GCC (unchecked)", mode: core.ModeGCC},
		{name: "Electric Fence", mode: core.ModeGCC, opts: core.Options{ElectricFence: true}},
		{name: "BCC (6-instr seq)", mode: core.ModeBCC},
		{name: "BCC (bound instr)", mode: core.ModeBCC, opts: core.Options{UseBoundInstr: true}},
		{name: "Cash", mode: core.ModeCash},
	}
}

// DetectorTable builds the comparison.
func DetectorTable() (*Table, error) {
	return detectorTable(context.Background(), serve.Default())
}

func detectorTable(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "detectors",
		Title:   "bound-violation detectors on a heap-churn workload (200 allocations)",
		Columns: []string{"Detector", "Cycles", "Overhead", "Heap Span", "Heap OOB", "Global OOB", "Stack OOB"},
		Notes: []string{
			"Electric Fence catches only heap overruns, at ~2 pages of address space per allocation (§2)",
			"cache/page-fault costs of the fence layout are not modelled; its true run-time cost would be higher",
		},
	}
	type variantResult struct {
		cycles   uint64
		heapSpan uint32
		caught   [3]bool
	}
	vs := detectorVariants()
	results := make([]variantResult, len(vs))
	err := eng.Do(len(vs), func(i int) error {
		v := vs[i]
		art, err := eng.BuildContext(ctx, detectorHeapKernel, v.mode, opt(v.opts))
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		res, err := eng.RunContext(ctx, art)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		if res.Violation != nil {
			return fmt.Errorf("%s: spurious violation: %v", v.name, res.Violation)
		}
		results[i].cycles = res.Cycles
		results[i].heapSpan = res.HeapSpan
		for pi, probe := range []string{probeHeap, probeGlobal, probeStack} {
			caught, err := detects(ctx, eng, probe, v)
			if err != nil {
				return fmt.Errorf("%s: probe: %w", v.name, err)
			}
			results[i].caught[pi] = caught
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	base := results[0].cycles // variants[0] is the unchecked GCC baseline
	for i, v := range vs {
		r := results[i]
		ovh := float64(r.cycles-base) / float64(base) * 100
		row := []string{
			v.name,
			fmt.Sprintf("%d", r.cycles),
			pct(ovh),
			fmt.Sprintf("%dK", r.heapSpan/1024),
		}
		for _, caught := range r.caught {
			if caught {
				row = append(row, "caught")
			} else {
				row = append(row, "missed")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// detects reports whether the variant stops the probe's overflow. The
// run goes through the Engine, so a probe's outcome — including the
// expensive unchecked-GCC runaways that burn the whole step budget —
// is simulated once and served from the run cache afterwards.
func detects(ctx context.Context, eng *serve.Engine, src string, v detectorVariant) (bool, error) {
	art, err := eng.BuildContext(ctx, src, v.mode, opt(v.opts))
	if err != nil {
		return false, err
	}
	res, err := eng.RunContext(ctx, art)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return false, cerr
		}
		// A crash that is not a classified violation (e.g. corrupted
		// control flow under GCC) still means the overflow went
		// undetected at the offending reference.
		return false, nil
	}
	return res.Violation != nil, nil
}
