package bench

import (
	"fmt"
	"sort"
	"time"

	"cash/internal/core"
	"cash/internal/workload"
)

// KernelTiming is the measured host-side cost of one Table 1 kernel
// under the harness-wide configuration (passes, tier): the median
// wall-clock nanoseconds per complete run and the simulated
// instructions one run executes. `cashbench -json` emits these so
// BENCH_*.json speedup records can be generated without hand-editing.
type KernelTiming struct {
	Name            string
	HostNSPerOp     int64
	SimInstructions uint64
}

// KernelHostTimings builds each Table 1 kernel under the harness
// configuration and times runs complete executions, reporting the
// median. Runs below 1 are treated as 1. The kernels execute
// sequentially on the calling goroutine — wall-clock per op is the
// quantity being measured, so nothing else may share the host.
func KernelHostTimings(runs int) ([]KernelTiming, error) {
	if runs < 1 {
		runs = 1
	}
	ws := workload.Kernels()
	out := make([]KernelTiming, 0, len(ws))
	for _, w := range ws {
		art, err := core.Build(w.Source, core.ModeCash, opt(core.Options{}))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		samples := make([]int64, runs)
		var instrs uint64
		for i := 0; i < runs; i++ {
			start := time.Now()
			res, err := art.Run()
			samples[i] = time.Since(start).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", w.Name, err)
			}
			if res.Violation != nil {
				return nil, fmt.Errorf("%s: spurious violation: %v", w.Name, res.Violation)
			}
			instrs = res.Stats.Instructions
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		out = append(out, KernelTiming{
			Name:            w.Name,
			HostNSPerOp:     samples[runs/2],
			SimInstructions: instrs,
		})
	}
	return out, nil
}
