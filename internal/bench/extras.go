package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cash/internal/core"
	"cash/internal/ldt"
	"cash/internal/serve"
	"cash/internal/vm"
	"cash/internal/workload"
	"cash/internal/x86seg"
)

// AblationSegRegs reproduces the §4.2 segment-register sweep: for each
// kernel, the fraction of bound checks that fall back to software and the
// resulting overhead with 2, 3 and 4 segment registers.
func AblationSegRegs() (*Table, error) {
	return ablationSegRegs(context.Background(), serve.Default())
}

func ablationSegRegs(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "ablation-segregs",
		Title:   "Cash overhead and software-check share vs segment-register budget",
		Columns: []string{"Program", "2 regs sw%", "2 regs ovh", "3 regs sw%", "3 regs ovh", "4 regs sw%", "4 regs ovh"},
		Notes: []string{
			"sw% = software checks / all checks executed under Cash (§4.2)",
		},
	}
	ws := workload.Kernels()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		row := []string{w.Paper}
		for _, regs := range []int{2, 3, 4} {
			cmp, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{SegRegs: regs}))
			if err != nil {
				return err
			}
			total := cmp.Cash.Stats.HWChecks + cmp.Cash.Stats.SWChecks
			share := 0.0
			if total > 0 {
				share = float64(cmp.Cash.Stats.SWChecks) / float64(total) * 100
			}
			row = append(row, pct(share), pct(cmp.CashOverheadPct()))
		}
		t.Rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// CacheTable reproduces the §4.5 segment-cache analysis on the Toast
// workload: allocation requests, 3-entry cache hits, kernel entries, and
// the share of run time spent in LDT modification.
func CacheTable() (*Table, error) {
	return cacheTable(context.Background(), serve.Default())
}

func cacheTable(ctx context.Context, eng *serve.Engine) (*Table, error) {
	w, _ := workload.ByName("toast")
	art, err := eng.BuildContext(ctx, w.Source, core.ModeCash, opt(core.Options{}))
	if err != nil {
		return nil, err
	}
	res, err := eng.RunContext(ctx, art)
	if err != nil {
		return nil, err
	}
	if res.Violation != nil {
		return nil, fmt.Errorf("toast: unexpected violation: %v", res.Violation)
	}
	st := res.LDTStats
	gateCycles := st.KernelCalls * ldt.CostCallGate
	t := &Table{
		ID:      "cache",
		Title:   "segment allocation and the 3-entry cache (Toast, §4.5)",
		Columns: []string{"Metric", "Value"},
	}
	t.Rows = [][]string{
		{"segment allocation requests", fmt.Sprintf("%d", st.AllocRequests)},
		{"3-entry cache hits", fmt.Sprintf("%d", st.CacheHits)},
		{"cache hit ratio", pct(st.HitRatio() * 100)},
		{"kernel entries (cash_modify_ldt)", fmt.Sprintf("%d", st.KernelCalls)},
		{"cycles in call gate", fmt.Sprintf("%d", gateCycles)},
		{"total run cycles", fmt.Sprintf("%d", res.Cycles)},
		{"LDT modification share of run time", pct(float64(gateCycles) / float64(res.Cycles) * 100)},
	}
	t.Notes = []string{
		"paper: Toast makes 415,659 requests, 53.8% hit ratio, LDT cost insignificant vs total run time",
	}
	return t, nil
}

// SegmentsTable reproduces the §4.5 segment-budget analysis: the peak
// number of simultaneously live segments per suite, against the 8191
// budget.
func SegmentsTable() (*Table, error) {
	return segmentsTable(context.Background(), serve.Default())
}

func segmentsTable(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "segments",
		Title:   "peak simultaneously live segments per application (budget: 8191)",
		Columns: []string{"Program", "Category", "Peak Live Segments", "Total Allocations"},
	}
	ws := workload.All()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		art, err := eng.BuildContext(ctx, w.Source, core.ModeCash, opt(core.Options{}))
		if err != nil {
			return err
		}
		res, err := eng.RunContext(ctx, art)
		if err != nil {
			return err
		}
		if res.Violation != nil {
			return fmt.Errorf("%s: unexpected violation: %v", w.Name, res.Violation)
		}
		t.Rows[i] = []string{
			w.Name,
			w.Category.String(),
			fmt.Sprintf("%d", res.LDTStats.PeakLive),
			fmt.Sprintf("%d", res.LDTStats.AllocRequests),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = []string{
		"paper: <=10 segments for kernels, 163 for macro apps, 292 for network apps — far below 8191",
	}
	return t, nil
}

// ConstantsTable reproduces the §4.1 fixed-cost measurements.
func ConstantsTable() (*Table, error) {
	oc, err := core.MeasureOverheadConstants()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "constants",
		Title:   "Cash overhead constants, measured vs paper (§4.1, cycles)",
		Columns: []string{"Constant", "Measured", "Paper"},
	}
	t.Rows = [][]string{
		{"per-program", fmt.Sprintf("%d", oc.PerProgram), "543"},
		{"per-array", fmt.Sprintf("%d", oc.PerArray), "263"},
		{"per-array-use", fmt.Sprintf("%d", oc.PerArrayUse), "4"},
	}
	return t, nil
}

// LDTCostTable reproduces the §3.6 kernel-entry comparison: the stock
// modify_ldt system call vs the cash_modify_ldt call gate.
func LDTCostTable() (*Table, error) {
	t := &Table{
		ID:      "ldt",
		Title:   "LDT modification cost (§3.6, cycles per segment allocation)",
		Columns: []string{"Path", "Measured", "Paper"},
	}
	mgrCost := func(gate bool) (uint64, error) {
		m := ldt.NewManager(x86seg.NewTable("LDT"))
		if gate {
			if err := m.InstallCallGate(); err != nil {
				return 0, err
			}
			m.ResetCycles()
		}
		if _, err := m.Alloc(0x1000, 64); err != nil {
			return 0, err
		}
		return m.Cycles(), nil
	}
	slow, err := mgrCost(false)
	if err != nil {
		return nil, err
	}
	fast, err := mgrCost(true)
	if err != nil {
		return nil, err
	}
	t.Rows = [][]string{
		{"modify_ldt system call", fmt.Sprintf("%d", slow), "781"},
		{"cash_modify_ldt call gate", fmt.Sprintf("%d", fast), "253"},
	}
	return t, nil
}

// BoundInstrTable reproduces the §2 comparison between the IA-32 bound
// instruction (7 cycles, one instruction) and the explicit 6-instruction
// check sequence, as the software checker of BCC.
func BoundInstrTable() (*Table, error) {
	return boundInstrTable(context.Background(), serve.Default())
}

func boundInstrTable(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "bound",
		Title:   "bound instruction vs 6-instruction check sequence (BCC software checker, §2)",
		Columns: []string{"Program", "BCC seq ovh", "BCC bound ovh", "seq cycles", "bound cycles"},
		Notes: []string{
			"paper: bound takes 7 cycles where the 6 equivalent instructions take 6, so bound loses",
		},
	}
	ws := workload.Kernels()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		seq, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{}))
		if err != nil {
			return err
		}
		bnd, err := eng.CompareContext(ctx, w.Name, w.Source, opt(core.Options{UseBoundInstr: true}))
		if err != nil {
			return err
		}
		t.Rows[i] = []string{
			w.Paper,
			pct(seq.BCCOverheadPct()),
			pct(bnd.BCCOverheadPct()),
			fmt.Sprintf("%d", seq.BCC.Cycles),
			fmt.Sprintf("%d", bnd.BCC.Cycles),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Figure2Table demonstrates the §3.5 granularity-bit behaviour: for
// arrays around and above 1 MiB, the segment size, the upper-bound
// exactness, and the sub-page lower-bound slack.
func Figure2Table() (*Table, error) {
	t := &Table{
		ID:      "figure2",
		Title:   "granularity-bit limit behaviour for large arrays (§3.5 / Figure 2)",
		Columns: []string{"Array Bytes", "G bit", "Segment Bytes", "Upper Bound", "Lower Slack (bytes)"},
	}
	for _, size := range []uint32{1 << 20, 1<<20 + 1, 1<<20 + 100, 1<<22 + 4097, 64 << 20} {
		d, err := x86seg.NewDataDescriptor(0, size)
		if err != nil {
			return nil, err
		}
		slack := d.ByteSize() - size
		upper := "exact"
		if !d.Granularity {
			slack = 0
		}
		g := "off"
		if d.Granularity {
			g = "on"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			g,
			fmt.Sprintf("%d", d.ByteSize()),
			upper + " (end-aligned)",
			fmt.Sprintf("%d", slack),
		})
	}
	t.Notes = []string{
		"Cash aligns the array end with the segment end, so the upper bound is byte-exact;",
		"the lower bound is soft by < 4096 bytes, harmless per §3.5 (no known attack underflows)",
	}
	return t, nil
}

// Figure1Trace runs a tiny program with paging enabled and renders the
// segment->linear->physical pipeline of its first data references.
func Figure1Trace() (string, error) {
	return Figure1TraceContext(context.Background(), serve.Default())
}

// Figure1TraceContext is Figure1Trace through an explicit Engine. The
// build is cached, but the traced execution always re-simulates: trace
// attachment makes the run observably different, so it bypasses the
// run cache by design.
func Figure1TraceContext(ctx context.Context, eng *serve.Engine) (string, error) {
	src := `
int a[4] = {10, 20, 30, 40};
void main() {
	int s = 0;
	for (int i = 0; i < 4; i++) s += a[i];
	printi(s);
}`
	art, err := eng.BuildContext(ctx, src, core.ModeCash, Options())
	if err != nil {
		return "", err
	}
	var lines []string
	m, err := art.NewMachine(
		vm.WithPaging(1<<24),
		vm.WithTrace(func(e vm.TraceEntry) {
			if len(lines) >= 12 {
				return
			}
			kind := "read"
			if e.Write {
				kind = "write"
			}
			lines = append(lines, fmt.Sprintf(
				"%-5s %-3s sel=%-14s offset=%#08x -> linear=%#08x -> physical=%#08x",
				kind, e.Seg, e.Selector, e.Offset, e.Linear, e.Physical))
		}),
	)
	if err != nil {
		return "", err
	}
	if _, err := m.Run(); err != nil {
		return "", err
	}
	header := "FIGURE1 — memory translation pipeline (segmentation then paging)\n"
	return header + strings.Join(lines, "\n") + "\n", nil
}

// Options returns the default experiment options.
func Options() core.Options { return opt(core.Options{}) }

// Timing records the host-side cost of producing one table: wall-clock
// time plus the simulated instructions and cycles executed on its behalf.
// The simulated counts are exact because tables run one at a time (only
// their rows fan out), so the process-wide counter deltas belong entirely
// to the table being produced.
type Timing struct {
	ID              string
	HostNS          int64
	SimInstructions uint64
	SimCycles       uint64
}

// InstrPerSec returns the simulated-instruction throughput achieved while
// producing the table, in instructions per host second.
func (tm Timing) InstrPerSec() float64 {
	if tm.HostNS <= 0 {
		return 0
	}
	return float64(tm.SimInstructions) / (float64(tm.HostNS) / 1e9)
}

// AllTables regenerates every InAll table of the Specs registry (not
// the trace) in paper order, through the process-default Engine. Within
// each table, independent rows run concurrently up to the parallelism
// budget; the tables themselves run one after another.
func AllTables(requests int) ([]*Table, error) {
	tables, _, err := AllTablesTimed(requests)
	return tables, err
}

// AllTablesTimed is AllTables plus per-table host timings.
func AllTablesTimed(requests int) ([]*Table, []Timing, error) {
	return AllTablesTimedContext(context.Background(), serve.Default(), requests)
}

// AllTablesContext is AllTables through an explicit Engine: repeated
// calls on one Engine serve every build from the artifact cache and
// every repeated deterministic execution from the run cache, so a warm
// pass costs a fraction of a cold one while producing byte-identical
// tables.
func AllTablesContext(ctx context.Context, eng *serve.Engine, requests int) ([]*Table, error) {
	tables, _, err := AllTablesTimedContext(ctx, eng, requests)
	return tables, err
}

// AllTablesTimedContext is AllTablesContext plus per-table host
// timings. The simulated counts are exact for a cold Engine; a warm
// pass attributes near-zero simulated work to cached tables, because
// their runs were never re-simulated.
func AllTablesTimedContext(ctx context.Context, eng *serve.Engine, requests int) ([]*Table, []Timing, error) {
	specs := Specs()
	tables := make([]*Table, 0, len(specs))
	timings := make([]Timing, 0, len(specs))
	for _, sp := range specs {
		if !sp.InAll {
			continue
		}
		startInstr, startCycles := vm.SimCounters()
		start := time.Now()
		t, err := sp.Generate(ctx, eng, requests)
		if err != nil {
			return nil, nil, err
		}
		endInstr, endCycles := vm.SimCounters()
		tables = append(tables, t)
		timings = append(timings, Timing{
			ID:              t.ID,
			HostNS:          time.Since(start).Nanoseconds(),
			SimInstructions: endInstr - startInstr,
			SimCycles:       endCycles - startCycles,
		})
	}
	return tables, timings, nil
}
