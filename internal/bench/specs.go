package bench

import (
	"context"
	"fmt"
	"strings"

	"cash/internal/chaos"
	"cash/internal/netsim"
	"cash/internal/serve"
	"cash/internal/workload"
)

// Spec describes one table of the paper's evaluation: its identity, a
// caption for listings, whether `cashbench -all` includes it, and the
// generator that produces it through a serving Engine. The registry is
// the single source of truth for table ids — Table-by-id lookup, the
// -list output, AllTables ordering and the unknown-id error all derive
// from it.
type Spec struct {
	// ID is the stable identifier (e.g. "table1", "ablation-segregs").
	ID string
	// Caption is a one-line description for listings.
	Caption string
	// InAll reports whether AllTables regenerates this table. The
	// resilience table is excluded: the paper's tables are chaos-free,
	// and keeping it separate keeps their goldens byte-identical.
	InAll bool
	// Generate produces the table. Generators that measure the network
	// experiment honor requests; the rest ignore it.
	Generate func(ctx context.Context, eng *serve.Engine, requests int) (*Table, error)
}

// Specs returns every table spec in paper order. The slice is freshly
// allocated; callers may reorder or filter it.
func Specs() []Spec {
	return []Spec{
		{ID: "table1", Caption: "kernel overheads and dynamic check counts (§4.2, Table 1)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return table1(ctx, eng, 4)
			}},
		{ID: "table2", Caption: "kernel binary code size (§4.2, Table 2)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return sizeTable(ctx, eng, "table2", "kernel binary code size", workload.Kernels())
			}},
		{ID: "table3", Caption: "Cash overhead vs input size (§4.2, Table 3)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return table3(ctx, eng)
			}},
		{ID: "table4", Caption: "macro-application characteristics (§4.3, Table 4)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return characteristicsTable(ctx, eng, "table4", "macro-application characteristics", workload.Macros())
			}},
		{ID: "table5", Caption: "macro-application overheads (§4.3, Table 5)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return table5(ctx, eng)
			}},
		{ID: "table6", Caption: "macro-application binary code size (§4.3, Table 6)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return sizeTable(ctx, eng, "table6", "macro-application binary code size", workload.Macros())
			}},
		{ID: "table7", Caption: "network-application characteristics (§4.4, Table 7)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return characteristicsTable(ctx, eng, "table7", "network-application characteristics", workload.NetworkApps())
			}},
		{ID: "table8", Caption: "network-application penalties (§4.4, Table 8)", InAll: true,
			Generate: table8},
		{ID: "table8bcc", Caption: "network applications under BCC (beyond the paper)", InAll: true,
			Generate: table8BCC},
		{ID: "ablation-segregs", Caption: "segment-register budget sweep (§4.2)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return ablationSegRegs(ctx, eng)
			}},
		{ID: "bound", Caption: "bound instruction vs 6-instruction sequence (§2)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return boundInstrTable(ctx, eng)
			}},
		{ID: "detectors", Caption: "bound-violation detector comparison (§2)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return detectorTable(ctx, eng)
			}},
		{ID: "constants", Caption: "Cash overhead constants (§4.1)", InAll: true,
			Generate: func(ctx context.Context, _ *serve.Engine, _ int) (*Table, error) {
				return ConstantsTable()
			}},
		{ID: "ldt", Caption: "modify_ldt vs call-gate cost (§3.6)", InAll: true,
			Generate: func(ctx context.Context, _ *serve.Engine, _ int) (*Table, error) {
				return LDTCostTable()
			}},
		{ID: "cache", Caption: "segment allocation and the 3-entry cache (§4.5)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return cacheTable(ctx, eng)
			}},
		{ID: "segments", Caption: "peak live segments vs the 8191 budget (§4.5)", InAll: true,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return segmentsTable(ctx, eng)
			}},
		{ID: "figure2", Caption: "granularity-bit behaviour for large arrays (§3.5)", InAll: true,
			Generate: func(ctx context.Context, _ *serve.Engine, _ int) (*Table, error) {
				return Figure2Table()
			}},
		// The pass ablation is excluded from -all so the historical
		// golden (which predates the optimizing back end) stays
		// byte-identical; it has its own golden file.
		{ID: "ablation-passes", Caption: "IR optimization pass ablation: rce + hoist on the kernels", InAll: false,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return ablationPasses(ctx, eng)
			}},
		// Same reasoning: the affine ablation rides outside -all with its
		// own golden, so the historical suite goldens stay byte-identical.
		{ID: "ablation-affine", Caption: "affine range analysis on computed indices: kernels + range kernels", InAll: false,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return ablationAffine(ctx, eng)
			}},
		// The strategy matrix also rides outside -all with its own
		// golden: it post-dates the named-strategy registry, and folding
		// it into -all would churn the historical suite goldens.
		{ID: "strategy-matrix", Caption: "checking strategy x pass-pipeline matrix: kernels + range kernels", InAll: false,
			Generate: func(ctx context.Context, eng *serve.Engine, _ int) (*Table, error) {
				return strategyMatrix(ctx, eng)
			}},
		// The resilience generator deliberately ignores the caller's
		// Engine: it measures on a fresh private one so its published
		// metrics delta is a pure function of (requests, seed, rate) —
		// see netsim.MeasureResilience.
		{ID: "resilience", Caption: "server resilience under deterministic fault injection", InAll: false,
			Generate: func(ctx context.Context, _ *serve.Engine, requests int) (*Table, error) {
				return ResilienceTableContext(ctx, requests, chaos.DefaultSeed, chaos.DefaultRate)
			}},
	}
}

// SpecByID finds one table spec in the registry.
func SpecByID(id string) (Spec, bool) {
	for _, s := range Specs() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// TableIDs lists every registered table id, in paper order.
func TableIDs() []string {
	specs := Specs()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// UnknownTableError is the error a by-id lookup returns for an id the
// registry does not know; it lists every valid id.
func UnknownTableError(id string) error {
	return fmt.Errorf("bench: unknown table %q (valid ids: %s)", id, strings.Join(TableIDs(), " "))
}

// Table regenerates one registered table by id through the given
// Engine, with the given request count for the network experiments.
func TableByID(ctx context.Context, eng *serve.Engine, id string, requests int) (*Table, error) {
	s, ok := SpecByID(id)
	if !ok {
		return nil, UnknownTableError(id)
	}
	if requests <= 0 {
		requests = netsim.DefaultRequests
	}
	return s.Generate(ctx, eng, requests)
}
