package bench

import (
	"context"
	"os"
	"testing"

	"cash/internal/serve"
	"cash/internal/workload"
)

// TestGoldenAblationPasses pins the pass-ablation table byte-for-byte.
// Regenerate only for a change that is supposed to alter the passes:
//
//	go run ./cmd/cashbench -table ablation-passes > internal/bench/testdata/golden_ablation_passes.txt
func TestGoldenAblationPasses(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_ablation_passes.txt")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ablationPasses(context.Background(), serve.NewEngine(serve.EngineConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Format(); got != string(want) {
		t.Fatalf("ablation-passes drifted from golden\n%s", firstDiff(got, string(want)))
	}
}

// TestPassesImproveKernels is the acceptance bar for the optimizing back
// end: with rce+hoist, at least 3 of the 6 numerical kernels must
// execute strictly fewer software checks AND strictly fewer cycles.
func TestPassesImproveKernels(t *testing.T) {
	ctx := context.Background()
	eng := serve.NewEngine(serve.EngineConfig{})
	improved := 0
	for _, w := range workload.Kernels() {
		off, err := measurePasses(ctx, eng, w, nil)
		if err != nil {
			t.Fatalf("%s off: %v", w.Name, err)
		}
		on, err := measurePasses(ctx, eng, w, []string{"rce", "hoist"})
		if err != nil {
			t.Fatalf("%s on: %v", w.Name, err)
		}
		if on.dynSW < off.dynSW && on.cycles < off.cycles {
			improved++
		}
		if on.cycles > off.cycles {
			t.Errorf("%s: passes made it slower: %d -> %d cycles", w.Name, off.cycles, on.cycles)
		}
	}
	if improved < 3 {
		t.Fatalf("passes improved only %d of 6 kernels (want >= 3)", improved)
	}
}

// TestGoldenAllTablesPasses pins the full suite compiled through the
// optimizing back end. Regenerate with:
//
//	go run ./cmd/cashbench -all -requests 200 -passes rce,hoist > internal/bench/testdata/golden_all_passes_200.txt
func TestGoldenAllTablesPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full table regeneration is slow; run without -short")
	}
	want, err := os.ReadFile("testdata/golden_all_passes_200.txt")
	if err != nil {
		t.Fatal(err)
	}
	prev := SetPasses([]string{"rce", "hoist"})
	defer SetPasses(prev)
	got := renderAll(t, 200)
	if got != string(want) {
		t.Fatalf("passes-enabled benchmark output drifted from golden\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}
