package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestBoundInstrTableShape(t *testing.T) {
	tab, err := BoundInstrTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		seq, err := strconv.ParseUint(row[3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		bnd, err := strconv.ParseUint(row[4], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		// §2: the bound instruction (7 cycles) loses to the 6-cycle
		// sequence on every kernel.
		if bnd <= seq {
			t.Errorf("%s: bound (%d) must cost more than the sequence (%d)", row[0], bnd, seq)
		}
	}
}

func TestDetectorTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("the unchecked probes run to the step limit; slow, run without -short")
	}
	tab, err := DetectorTable()
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]string, len(tab.Rows))
	for _, row := range tab.Rows {
		rows[row[0]] = row
	}
	caught := func(name string, col int) bool { return rows[name][col] == "caught" }

	// GCC catches nothing.
	for col := 4; col <= 6; col++ {
		if caught("GCC (unchecked)", col) {
			t.Error("unchecked baseline must miss every overflow")
		}
	}
	// Electric Fence: heap only.
	if !caught("Electric Fence", 4) || caught("Electric Fence", 5) || caught("Electric Fence", 6) {
		t.Errorf("electric fence must catch heap only: %v", rows["Electric Fence"])
	}
	// BCC and Cash catch all three regions.
	for _, name := range []string{"BCC (6-instr seq)", "Cash"} {
		for col := 4; col <= 6; col++ {
			if !caught(name, col) {
				t.Errorf("%s must catch all regions: %v", name, rows[name])
			}
		}
	}
	// Electric Fence burns vastly more heap address space.
	parseSpan := func(name string) int {
		v, err := strconv.Atoi(strings.TrimSuffix(rows[name][3], "K"))
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if parseSpan("Electric Fence") < 20*parseSpan("Cash") {
		t.Errorf("fence heap span %dK must dwarf cash %dK",
			parseSpan("Electric Fence"), parseSpan("Cash"))
	}
	// Cash is the cheapest checker on the churn workload.
	parseOvh := func(name string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(rows[name][2], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if parseOvh("Cash") >= parseOvh("BCC (6-instr seq)") {
		t.Errorf("cash overhead %.1f%% must undercut bcc %.1f%%",
			parseOvh("Cash"), parseOvh("BCC (6-instr seq)"))
	}
}

func TestCharacteristicsDynamicColumn(t *testing.T) {
	tab, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	var sendmailDyn float64
	for _, row := range tab.Rows {
		dyn, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == "Sendmail" {
			sendmailDyn = dyn
		}
	}
	if sendmailDyn <= 0 {
		t.Fatal("sendmail must execute spilled-loop iterations")
	}
}
