package bench

import (
	"context"
	"fmt"
	"strings"

	"cash/internal/codegen"
	"cash/internal/core"
	"cash/internal/serve"
	"cash/internal/workload"
)

// The strategy filter (`cashbench -strategy mpx`) restricts the
// strategy-matrix sweep to the named strategies; nil means the full
// registry. Shares passMu with the other harness-wide settings.
var harnessStrategies []string

// SetStrategyFilter restricts the strategy matrix to the named checking
// strategies (nil restores the full-registry sweep). Unknown names are
// rejected with the registry's error listing the valid ones. Returns
// the previous filter.
func SetStrategyFilter(names []string) ([]string, error) {
	for _, n := range names {
		if _, ok := codegen.StrategyByName(n); !ok {
			return nil, codegen.UnknownStrategyError(n)
		}
	}
	passMu.Lock()
	defer passMu.Unlock()
	prev := harnessStrategies
	harnessStrategies = append([]string(nil), names...)
	return prev, nil
}

// StrategyFilter returns the harness-wide strategy filter (nil when the
// matrix sweeps the whole registry).
func StrategyFilter() []string {
	passMu.RLock()
	defer passMu.RUnlock()
	return append([]string(nil), harnessStrategies...)
}

// matrixPassCombos are the pass-pipeline prefixes the strategy matrix
// sweeps: each combo adds the next registered pass, so the columns read
// as an incremental ablation. (Pass lists are normalised into registry
// order, so prefixes are the canonical combinations.)
var matrixPassCombos = []struct {
	label  string
	passes []string
}{
	{"none", nil},
	{"rce", []string{"rce"}},
	{"+hoist", []string{"rce", "hoist"}},
	{"+affine", []string{"rce", "hoist", "affine"}},
	{"+chop", []string{"rce", "hoist", "affine", "chop"}},
}

// StrategyMatrix measures every registered checking strategy against
// every pass combination on the Table 1 kernels plus the range kernels:
// one row per (program, strategy), one column per pass pipeline, each
// cell cycles/dynamic-software-checks. Every cell's program output is
// verified against the unchecked gcc baseline, so the table doubles as
// a differential gate over the full strategy x pass space.
func StrategyMatrix() (*Table, error) {
	return strategyMatrix(context.Background(), serve.Default())
}

func strategyMatrix(ctx context.Context, eng *serve.Engine) (*Table, error) {
	strategies := StrategyFilter()
	if len(strategies) == 0 {
		strategies = core.StrategyNames()
	}
	t := &Table{
		ID:    "strategy-matrix",
		Title: "strategy x pass matrix (cycles / dynamic software checks)",
		Notes: []string{
			"strategies: " + strings.Join(strategies, ", ") + " (see cashc -list-strategies)",
			"pass columns are pipeline prefixes in registry order; every cell's output is verified against unchecked gcc",
		},
	}
	t.Columns = append([]string{"Program", "Strategy"}, func() []string {
		cols := make([]string, len(matrixPassCombos))
		for i, c := range matrixPassCombos {
			cols[i] = c.label
		}
		return cols
	}()...)

	ws := append(workload.Kernels(), workload.RangeKernels()...)
	t.Rows = make([][]string, len(ws)*len(strategies))
	err := eng.Do(len(ws), func(wi int) error {
		w := ws[wi]
		// The differential baseline: unchecked gcc with no passes.
		ref, err := matrixCell(ctx, eng, w, core.ModeGCC, nil)
		if err != nil {
			return fmt.Errorf("%s gcc baseline: %w", w.Name, err)
		}
		for si, s := range strategies {
			row := []string{w.Name, s}
			for _, combo := range matrixPassCombos {
				cell, err := matrixCell(ctx, eng, w, core.Mode(s), combo.passes)
				if err != nil {
					return fmt.Errorf("%s %s %s: %w", w.Name, s, combo.label, err)
				}
				if !outputEqual(cell.output, ref.output) {
					return fmt.Errorf("%s %s %s: output diverged from gcc", w.Name, s, combo.label)
				}
				row = append(row, fmt.Sprintf("%d/%d", cell.cycles, cell.dynSW))
			}
			t.Rows[wi*len(strategies)+si] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// matrixMeasurement is one strategy-matrix cell.
type matrixMeasurement struct {
	cycles uint64
	dynSW  uint64
	output []int32
}

func matrixCell(ctx context.Context, eng *serve.Engine, w workload.Workload, mode core.Mode, passes []string) (matrixMeasurement, error) {
	var m matrixMeasurement
	art, err := eng.BuildContext(ctx, w.Source, mode, core.Options{Passes: passes, Tier2: Tier2()})
	if err != nil {
		return m, err
	}
	res, err := eng.RunContext(ctx, art)
	if err != nil {
		return m, err
	}
	if res.Violation != nil {
		return m, fmt.Errorf("spurious violation: %v", res.Violation)
	}
	m.cycles = res.Cycles
	m.dynSW = res.Stats.SWChecks
	m.output = res.Output
	return m, nil
}

func outputEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
