package bench

import (
	"context"
	"os"
	"testing"

	"cash/internal/serve"
	"cash/internal/workload"
)

// TestGoldenAblationAffine pins the affine-ablation table byte-for-byte.
// Regenerate only for a change that is supposed to alter the passes:
//
//	go run ./cmd/cashbench -table ablation-affine 2>/dev/null > internal/bench/testdata/golden_ablation_affine.txt
func TestGoldenAblationAffine(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_ablation_affine.txt")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ablationAffine(context.Background(), serve.NewEngine(serve.EngineConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Format(); got != string(want) {
		t.Fatalf("ablation-affine drifted from golden\n%s", firstDiff(got, string(want)))
	}
}

// TestAffineClosesComputedIndexGap is the acceptance bar for the affine
// pass: with the full pipeline, every Table 1 kernel executes strictly
// fewer dynamic software checks and strictly fewer cycles than the
// unoptimized build — including MatMul, whose i*n+j indices no earlier
// pass could touch — and the gather control is bit-for-bit unaffected.
func TestAffineClosesComputedIndexGap(t *testing.T) {
	ctx := context.Background()
	eng := serve.NewEngine(serve.EngineConfig{})
	full := []string{"rce", "hoist", "affine"}
	for _, w := range workload.Kernels() {
		off, err := measurePasses(ctx, eng, w, nil)
		if err != nil {
			t.Fatalf("%s off: %v", w.Name, err)
		}
		on, err := measurePasses(ctx, eng, w, full)
		if err != nil {
			t.Fatalf("%s full: %v", w.Name, err)
		}
		if on.dynSW >= off.dynSW {
			t.Errorf("%s: dynamic sw checks not reduced: %d -> %d", w.Name, off.dynSW, on.dynSW)
		}
		if on.cycles >= off.cycles {
			t.Errorf("%s: cycles not reduced: %d -> %d", w.Name, off.cycles, on.cycles)
		}
	}

	// MatMul specifically must improve over the previous best pipeline:
	// that is the gap this pass exists to close.
	mm := workload.MatMul(40)
	base, err := measurePasses(ctx, eng, mm, []string{"rce", "hoist"})
	if err != nil {
		t.Fatal(err)
	}
	on, err := measurePasses(ctx, eng, mm, full)
	if err != nil {
		t.Fatal(err)
	}
	if on.dynSW >= base.dynSW || on.cycles >= base.cycles {
		t.Fatalf("matmul not improved over rce+hoist: checks %d -> %d, cycles %d -> %d",
			base.dynSW, on.dynSW, base.cycles, on.cycles)
	}
	if on.affine == 0 {
		t.Fatal("matmul: affine pass replaced no checks")
	}

	// The control: gather's data-dependent index must be left alone.
	g := workload.Gather(256)
	gBase, err := measurePasses(ctx, eng, g, []string{"rce", "hoist"})
	if err != nil {
		t.Fatal(err)
	}
	gFull, err := measurePasses(ctx, eng, g, full)
	if err != nil {
		t.Fatal(err)
	}
	if gFull.affine != 0 {
		t.Fatalf("gather: affine replaced %d checks on the control kernel", gFull.affine)
	}
	if gFull.dynSW != gBase.dynSW || gFull.cycles != gBase.cycles || gFull.staticSW != gBase.staticSW {
		t.Fatalf("gather changed under affine: checks %d -> %d, cycles %d -> %d",
			gBase.dynSW, gFull.dynSW, gBase.cycles, gFull.cycles)
	}
}
