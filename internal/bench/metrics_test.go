package bench

import (
	"os"
	"testing"

	"cash/internal/obs"
	"cash/internal/par"
)

// resilienceMetricsDelta runs the resilience experiment and returns the
// observability-registry delta it produced, exactly as `cashbench
// -table resilience ... -metrics-out` writes it.
func resilienceMetricsDelta(t *testing.T, requests int, seed uint64, rate float64) string {
	t.Helper()
	base := obs.Default().Snapshot()
	if _, err := ResilienceTable(requests, seed, rate); err != nil {
		t.Fatal(err)
	}
	return obs.Default().Snapshot().Delta(base).Format()
}

// TestMetricsGoldenResilience pins the metrics delta of the CI reference
// resilience run byte-for-byte. The delta isolates exactly this run's
// contribution, so it matches a fresh `cashbench` process even though
// other tests in this package publish into the same registry first.
// Regenerate only for intentional changes:
//
//	go run ./cmd/cashbench -table resilience -requests 200 -chaos-seed 1 -chaos-rate 0.05 -metrics-out internal/bench/testdata/golden_resilience_metrics_s1_r5_200.txt > /dev/null
func TestMetricsGoldenResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full network-application chaos soak")
	}
	want, err := os.ReadFile("testdata/golden_resilience_metrics_s1_r5_200.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := resilienceMetricsDelta(t, 200, 1, 0.05)
	if got != string(want) {
		t.Fatalf("metrics delta drifted from golden file\ngot %d bytes, want %d bytes\n%s",
			len(got), len(want), firstDiff(got, string(want)))
	}
}

// TestMetricsParallelDeterminism checks the obs determinism contract end
// to end: every metric the layers publish is commutative (counter sums,
// histogram buckets), so the registry delta of the same experiment must
// be byte-identical whether its rows run sequentially or fanned out.
func TestMetricsParallelDeterminism(t *testing.T) {
	defer par.SetParallelism(par.Parallelism())
	par.SetParallelism(1)
	seq := resilienceMetricsDelta(t, 40, 7, 0.1)
	par.SetParallelism(8)
	parl := resilienceMetricsDelta(t, 40, 7, 0.1)
	if seq != parl {
		t.Fatalf("metrics delta differs between -parallel 1 and -parallel 8\n%s", firstDiff(parl, seq))
	}
}
