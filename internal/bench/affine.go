package bench

import (
	"context"
	"fmt"

	"cash/internal/serve"
	"cash/internal/workload"
)

// AblationAffine measures what the affine symbolic-range pass buys on
// top of rce+hoist: the Table 1 kernels plus the four range kernels,
// under BCC, with the baseline pipeline versus the full one. The
// computed-index references (i*n+j and friends) are exactly the checks
// rce and hoist cannot touch.
func AblationAffine() (*Table, error) {
	return ablationAffine(context.Background(), serve.Default())
}

func ablationAffine(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "ablation-affine",
		Title:   "affine range-analysis ablation (BCC; rce+hoist vs rce+hoist+affine)",
		Columns: []string{"Program", "Static SW", "Dynamic SW", "Cycles", "Δ Cycles", "Affine"},
		Notes: []string{
			"affine replaces checks on affine computed indices (i*c1 + j*c2 + c3 over counted-loop nests) with convex-hull endpoint checks in the preheader",
			"columns show rce+hoist -> rce+hoist+affine; Affine counts the per-iteration checks the pass replaced; gather is the control the pass must not touch",
		},
	}
	ws := append(workload.Kernels(), workload.RangeKernels()...)
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		base, err := measurePasses(ctx, eng, w, []string{"rce", "hoist"})
		if err != nil {
			return fmt.Errorf("%s base: %w", w.Name, err)
		}
		full, err := measurePasses(ctx, eng, w, []string{"rce", "hoist", "affine"})
		if err != nil {
			return fmt.Errorf("%s full: %w", w.Name, err)
		}
		t.Rows[i] = []string{
			w.Name,
			fmt.Sprintf("%d -> %d", base.staticSW, full.staticSW),
			fmt.Sprintf("%d -> %d", base.dynSW, full.dynSW),
			fmt.Sprintf("%d -> %d", base.cycles, full.cycles),
			pct(100 * (float64(base.cycles) - float64(full.cycles)) / float64(base.cycles)),
			fmt.Sprintf("%d", full.affine),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
