package bench

import (
	"context"
	"fmt"
	"sync"

	"cash/internal/core"
	"cash/internal/serve"
	"cash/internal/workload"
)

// The harness-wide pass configuration. Every experiment in this package
// compiles through opt(), so `cashbench -passes rce,hoist` regenerates
// the entire suite under the optimizing back end. Configure before
// generating tables — the tables themselves read it concurrently.
var (
	passMu        sync.RWMutex
	harnessPasses []string
	harnessTier2  bool
)

// SetPasses configures the IR optimization passes every experiment in
// this package compiles with (nil restores the exact-replication
// default of no passes). It returns the previous setting.
func SetPasses(passes []string) []string {
	passMu.Lock()
	defer passMu.Unlock()
	prev := harnessPasses
	harnessPasses = append([]string(nil), passes...)
	return prev
}

// Passes returns the harness-wide pass configuration.
func Passes() []string {
	passMu.RLock()
	defer passMu.RUnlock()
	return append([]string(nil), harnessPasses...)
}

// SetTier2 configures whether every experiment in this package executes
// through the tier-2 superblock engine (`cashbench -tier2`). Tier-2 is
// output-identical to step execution, so the tables must not change —
// the CI tier-2 lane diffs the suite against the step goldens to prove
// it. Returns the previous setting.
func SetTier2(on bool) bool {
	passMu.Lock()
	defer passMu.Unlock()
	prev := harnessTier2
	harnessTier2 = on
	return prev
}

// Tier2 returns the harness-wide tier-2 setting.
func Tier2() bool {
	passMu.RLock()
	defer passMu.RUnlock()
	return harnessTier2
}

// opt stamps the harness-wide pass and tier configuration onto one
// experiment's build options.
func opt(o core.Options) core.Options {
	passMu.RLock()
	defer passMu.RUnlock()
	if len(harnessPasses) > 0 && o.Passes == nil {
		o.Passes = harnessPasses
	}
	if harnessTier2 {
		o.Tier2 = true
	}
	return o
}

// AblationPasses measures what the optional IR passes buy on the six
// numerical kernels under BCC (the mode where every check is software,
// so eliminated checks translate directly into cycles): static and
// dynamic software-check counts and cycles, with passes off versus
// rce+hoist.
func AblationPasses() (*Table, error) {
	return ablationPasses(context.Background(), serve.Default())
}

func ablationPasses(ctx context.Context, eng *serve.Engine) (*Table, error) {
	t := &Table{
		ID:      "ablation-passes",
		Title:   "IR optimization pass ablation (BCC; off vs rce+hoist)",
		Columns: []string{"Program", "Static SW", "Dynamic SW", "Cycles", "Δ Cycles"},
		Notes: []string{
			"rce deletes checks already performed on every path; hoist replaces counted-loop checks with two preheader range checks",
			"columns show off -> on; Δ is the cycle reduction of the optimized build",
		},
	}
	ws := workload.Kernels()
	t.Rows = make([][]string, len(ws))
	err := eng.Do(len(ws), func(i int) error {
		w := ws[i]
		off, err := measurePasses(ctx, eng, w, nil)
		if err != nil {
			return fmt.Errorf("%s off: %w", w.Name, err)
		}
		on, err := measurePasses(ctx, eng, w, []string{"rce", "hoist"})
		if err != nil {
			return fmt.Errorf("%s on: %w", w.Name, err)
		}
		t.Rows[i] = []string{
			w.Paper,
			fmt.Sprintf("%d -> %d", off.staticSW, on.staticSW),
			fmt.Sprintf("%d -> %d", off.dynSW, on.dynSW),
			fmt.Sprintf("%d -> %d", off.cycles, on.cycles),
			pct(100 * (float64(off.cycles) - float64(on.cycles)) / float64(off.cycles)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// passMeasurement is one build+run of a kernel under a pass setting.
type passMeasurement struct {
	staticSW uint64
	dynSW    uint64
	cycles   uint64
	affine   uint64 // checks the affine pass replaced (0 unless it ran)
}

func measurePasses(ctx context.Context, eng *serve.Engine, w workload.Workload, passes []string) (passMeasurement, error) {
	var m passMeasurement
	// Deliberately not opt(): the ablation's off-arm must stay pass-free
	// even under `cashbench -passes`. The tier setting still applies —
	// tier-2 is execution strategy, not code shape.
	art, err := eng.BuildContext(ctx, w.Source, core.ModeBCC, core.Options{Passes: passes, Tier2: Tier2()})
	if err != nil {
		return m, err
	}
	res, err := eng.RunContext(ctx, art)
	if err != nil {
		return m, err
	}
	if res.Violation != nil {
		return m, fmt.Errorf("spurious violation: %v", res.Violation)
	}
	m.staticSW = art.StaticStats()["sw_checks_static"]
	m.dynSW = res.Stats.SWChecks
	m.cycles = res.Cycles
	m.affine = art.StaticStats()["sw_checks_affine"]
	return m, nil
}
