package minic

import "testing"

func lex(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := lex(t, "int main() { return 42; }")
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "int"}, {TokIdent, "main"}, {TokPunct, "("}, {TokPunct, ")"},
		{TokPunct, "{"}, {TokKeyword, "return"}, {TokNumber, "42"},
		{TokPunct, ";"}, {TokPunct, "}"},
	}
	if len(toks) != len(want)+1 {
		t.Fatalf("token count = %d, want %d", len(toks), len(want)+1)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		src  string
		want int32
	}{
		{src: "0", want: 0},
		{src: "12345", want: 12345},
		{src: "0x10", want: 16},
		{src: "0xffffffff", want: -1},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			toks := lex(t, tt.src)
			if toks[0].Int != tt.want {
				t.Fatalf("value = %d, want %d", toks[0].Int, tt.want)
			}
		})
	}
}

func TestLexCharAndString(t *testing.T) {
	toks := lex(t, `'a' '\n' '\0' "hi\tthere"`)
	if toks[0].Int != 'a' || toks[1].Int != '\n' || toks[2].Int != 0 {
		t.Fatalf("char literals = %d %d %d", toks[0].Int, toks[1].Int, toks[2].Int)
	}
	if toks[3].Kind != TokString || toks[3].Text != "hi\tthere" {
		t.Fatalf("string = %q", toks[3].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks := lex(t, "a // line comment\n/* block\ncomment */ b")
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].Line != 3 {
		t.Fatalf("b at line %d, want 3", toks[1].Line)
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	toks := lex(t, "a <= b >> 2 != c++ && d")
	want := []string{"a", "<=", "b", ">>", "2", "!=", "c", "++", "&&", "d"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	tests := []string{"@", "'x", `"abc`, "/* open", "'\\q'"}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Lex(src); err == nil {
				t.Fatalf("Lex(%q) succeeded, want error", src)
			}
		})
	}
}

func TestLinePositions(t *testing.T) {
	toks := lex(t, "a\n  b")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLineCount(t *testing.T) {
	if got := LineCount("a\n\n  \nb\nc"); got != 3 {
		t.Fatalf("LineCount = %d, want 3", got)
	}
}
