package minic

import "fmt"

// Builtin functions provided by the runtime library. malloc's result is
// assignable to any pointer type (old-C style), so workloads read
// naturally without casts; an explicit cast is also accepted.
var builtins = map[string]struct {
	ret    *Type
	params []*Type
}{
	"malloc": {ret: PointerTo(Char), params: []*Type{Int}},
	"free":   {ret: Void, params: []*Type{PointerTo(Char)}},
	"printi": {ret: Void, params: []*Type{Int}},
	"printc": {ret: Void, params: []*Type{Int}},
}

// IsBuiltin reports whether name is a runtime builtin.
func IsBuiltin(name string) bool {
	_, ok := builtins[name]
	return ok
}

// Check resolves names and types over the AST in place. It must run
// before code generation.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		globals: make(map[string]*VarDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return errf(g.Line, 1, "duplicate global %q", g.Name)
		}
		if g.Type.Kind == TypeVoid {
			return errf(g.Line, 1, "variable %q has void type", g.Name)
		}
		c.globals[g.Name] = g
		if err := c.checkInit(g); err != nil {
			return err
		}
	}
	for _, f := range prog.Funcs {
		if _, dup := c.funcs[f.Name]; dup {
			return errf(f.Line, 1, "duplicate function %q", f.Name)
		}
		if IsBuiltin(f.Name) {
			return errf(f.Line, 1, "function %q shadows a builtin", f.Name)
		}
		c.funcs[f.Name] = f
	}
	if _, ok := c.funcs["main"]; !ok {
		return errf(1, 1, "program has no main function")
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

type checker struct {
	prog    *Program
	globals map[string]*VarDecl
	funcs   map[string]*FuncDecl

	fn        *FuncDecl
	scopes    []map[string]*VarDecl
	loopDepth int
}

func (c *checker) checkInit(d *VarDecl) error {
	switch {
	case d.InitStr != "":
		if d.Type.Kind != TypeArray || d.Type.Elem.Kind != TypeChar {
			return errf(d.Line, 1, "string initialiser requires a char array")
		}
		if len(d.InitStr)+1 > d.Type.Len {
			return errf(d.Line, 1, "string initialiser longer than array %q", d.Name)
		}
	case d.InitList != nil:
		if d.Type.Kind != TypeArray {
			return errf(d.Line, 1, "brace initialiser requires an array")
		}
		if len(d.InitList) > d.Type.Len {
			return errf(d.Line, 1, "too many initialisers for %q", d.Name)
		}
		for _, e := range d.InitList {
			if err := c.checkExpr(e); err != nil {
				return err
			}
			if !e.Type().IsArith() {
				return errf(e.Pos(), 1, "array initialiser must be arithmetic")
			}
		}
	case d.Init != nil:
		if err := c.checkExpr(d.Init); err != nil {
			return err
		}
		if err := c.assignable(d.Type, d.Init); err != nil {
			return errf(d.Line, 1, "initialising %q: %v", d.Name, err)
		}
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]*VarDecl{make(map[string]*VarDecl, len(f.Params))}
	for _, p := range f.Params {
		if p.Type.Kind == TypeVoid {
			return errf(p.Line, 1, "parameter %q has void type", p.Name)
		}
		if _, dup := c.scopes[0][p.Name]; dup {
			return errf(p.Line, 1, "duplicate parameter %q", p.Name)
		}
		c.scopes[0][p.Name] = p
	}
	return c.checkBlock(f.Body)
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*VarDecl)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *VarDecl {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if d, ok := c.scopes[i][name]; ok {
			return d
		}
	}
	return c.globals[name]
}

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.checkBlock(s)

	case *DeclStmt:
		for _, d := range s.Decls {
			if d.Type.Kind == TypeVoid {
				return errf(d.Line, 1, "variable %q has void type", d.Name)
			}
			if err := c.checkInit(d); err != nil {
				return err
			}
			top := c.scopes[len(c.scopes)-1]
			if _, dup := top[d.Name]; dup {
				return errf(d.Line, 1, "duplicate variable %q in scope", d.Name)
			}
			top[d.Name] = d
		}
		return nil

	case *ExprStmt:
		return c.checkExpr(s.X)

	case *IfStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.condType(s.Cond); err != nil {
			return err
		}
		if s.Then != nil {
			if err := c.checkStmt(s.Then); err != nil {
				return err
			}
		}
		if s.Else != nil {
			return c.checkStmt(s.Else)
		}
		return nil

	case *WhileStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.condType(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		if s.Body != nil {
			return c.checkStmt(s.Body)
		}
		return nil

	case *ForStmt:
		// The init declaration scopes over the whole loop.
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond); err != nil {
				return err
			}
			if err := c.condType(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkExpr(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		if s.Body != nil {
			return c.checkStmt(s.Body)
		}
		return nil

	case *ReturnStmt:
		if s.X == nil {
			if c.fn.Ret.Kind != TypeVoid {
				return errf(s.Line, 1, "%s: return needs a value", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret.Kind == TypeVoid {
			return errf(s.Line, 1, "%s: void function returns a value", c.fn.Name)
		}
		if err := c.checkExpr(s.X); err != nil {
			return err
		}
		if err := c.assignable(c.fn.Ret, s.X); err != nil {
			return errf(s.Line, 1, "%s: return: %v", c.fn.Name, err)
		}
		return nil

	case *BreakStmt:
		if c.loopDepth == 0 {
			return errf(s.Line, 1, "break outside loop")
		}
		return nil

	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(s.Line, 1, "continue outside loop")
		}
		return nil

	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

// condType requires an arithmetic or pointer condition.
func (c *checker) condType(e Expr) error {
	t := e.Type()
	if t.IsArith() || t.IsPointerLike() {
		return nil
	}
	return errf(e.Pos(), 1, "condition has type %s", t)
}

// assignable checks whether an expression may be assigned to type dst.
// Rules: arithmetic to arithmetic; pointer to pointer (old-C permissive,
// matching the paper's discussion of type-cast pointers in §3.9); the
// literal 0 to a pointer.
func (c *checker) assignable(dst *Type, e Expr) error {
	src := e.Type()
	switch {
	case dst.IsArith() && src.IsArith():
		return nil
	case dst.Kind == TypePointer && src.Kind == TypePointer:
		return nil
	case dst.Kind == TypePointer && isZeroLit(e):
		return nil
	default:
		return fmt.Errorf("cannot assign %s to %s", src, dst)
	}
}

func isZeroLit(e Expr) bool {
	n, ok := e.(*NumberLit)
	return ok && n.Value == 0
}

// isLValue reports whether e designates a storage location.
func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *VarRef:
		return e.Decl != nil && e.Decl.Type.Kind != TypeArray
	case *Index:
		return true
	case *Unary:
		return e.Op == "*"
	default:
		return false
	}
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *NumberLit:
		e.typ = Int
		return nil

	case *StringLit:
		e.typ = PointerTo(Char)
		return nil

	case *VarRef:
		d := c.lookup(e.Name)
		if d == nil {
			return errf(e.Pos(), 1, "undefined variable %q", e.Name)
		}
		e.Decl = d
		e.typ = d.Type.Decay()
		return nil

	case *Unary:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		switch e.Op {
		case "!", "-", "~":
			if !xt.IsArith() && !(e.Op == "!" && xt.IsPointerLike()) {
				return errf(e.Pos(), 1, "operator %s requires arithmetic operand, got %s", e.Op, xt)
			}
			e.typ = Int
		case "*":
			if xt.Kind != TypePointer {
				return errf(e.Pos(), 1, "cannot dereference %s", xt)
			}
			if xt.Elem.Kind == TypeVoid {
				return errf(e.Pos(), 1, "cannot dereference void pointer")
			}
			e.typ = xt.Elem.Decay()
		case "&":
			switch x := e.X.(type) {
			case *VarRef:
				// &array yields a pointer to the first element, which is
				// what the paper's workloads use it for.
				if x.Decl.Type.Kind == TypeArray {
					e.typ = PointerTo(x.Decl.Type.Elem)
				} else {
					e.typ = PointerTo(x.Decl.Type)
				}
			case *Index:
				e.typ = x.Base.Type() // pointer to element
			default:
				return errf(e.Pos(), 1, "cannot take address of this expression")
			}
		default:
			return errf(e.Pos(), 1, "unknown unary operator %s", e.Op)
		}
		return nil

	case *IncDec:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if !isLValue(e.X) {
			return errf(e.Pos(), 1, "%s requires an lvalue", e.Op)
		}
		xt := e.X.Type()
		if !xt.IsArith() && xt.Kind != TypePointer {
			return errf(e.Pos(), 1, "%s requires arithmetic or pointer operand", e.Op)
		}
		e.typ = xt
		return nil

	case *Binary:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		if err := c.checkExpr(e.Y); err != nil {
			return err
		}
		xt, yt := e.X.Type(), e.Y.Type()
		switch e.Op {
		case "+", "-":
			switch {
			case xt.IsArith() && yt.IsArith():
				e.typ = Int
			case xt.Kind == TypePointer && yt.IsArith():
				e.typ = xt
			case e.Op == "+" && xt.IsArith() && yt.Kind == TypePointer:
				e.typ = yt
			case e.Op == "-" && xt.Kind == TypePointer && yt.Kind == TypePointer:
				e.typ = Int // element count difference
			default:
				return errf(e.Pos(), 1, "invalid operands to %s: %s, %s", e.Op, xt, yt)
			}
		case "*", "/", "%", "&", "|", "^", "<<", ">>":
			if !xt.IsArith() || !yt.IsArith() {
				return errf(e.Pos(), 1, "invalid operands to %s: %s, %s", e.Op, xt, yt)
			}
			e.typ = Int
		case "==", "!=", "<", "<=", ">", ">=":
			ok := (xt.IsArith() && yt.IsArith()) ||
				(xt.Kind == TypePointer && yt.Kind == TypePointer) ||
				(xt.Kind == TypePointer && isZeroLit(e.Y)) ||
				(yt.Kind == TypePointer && isZeroLit(e.X))
			if !ok {
				return errf(e.Pos(), 1, "invalid comparison: %s, %s", xt, yt)
			}
			e.typ = Int
		case "&&", "||":
			for _, side := range []Expr{e.X, e.Y} {
				t := side.Type()
				if !t.IsArith() && !t.IsPointerLike() {
					return errf(e.Pos(), 1, "invalid operand to %s: %s", e.Op, t)
				}
			}
			e.typ = Int
		default:
			return errf(e.Pos(), 1, "unknown operator %s", e.Op)
		}
		return nil

	case *Assign:
		if err := c.checkExpr(e.LHS); err != nil {
			return err
		}
		if err := c.checkExpr(e.RHS); err != nil {
			return err
		}
		if !isLValue(e.LHS) {
			return errf(e.Pos(), 1, "assignment requires an lvalue")
		}
		lt := e.LHS.Type()
		if e.Op == "=" {
			if err := c.assignable(lt, e.RHS); err != nil {
				return errf(e.Pos(), 1, "%v", err)
			}
		} else {
			rt := e.RHS.Type()
			// Compound assignment: arithmetic op, or pointer += / -= int.
			ok := (lt.IsArith() && rt.IsArith()) ||
				((e.Op == "+=" || e.Op == "-=") && lt.Kind == TypePointer && rt.IsArith())
			if !ok {
				return errf(e.Pos(), 1, "invalid %s: %s, %s", e.Op, lt, rt)
			}
		}
		e.typ = lt
		return nil

	case *Index:
		if err := c.checkExpr(e.Base); err != nil {
			return err
		}
		if err := c.checkExpr(e.Index); err != nil {
			return err
		}
		bt := e.Base.Type()
		if bt.Kind != TypePointer {
			return errf(e.Pos(), 1, "cannot index %s", bt)
		}
		if !e.Index.Type().IsArith() {
			return errf(e.Pos(), 1, "array index must be arithmetic")
		}
		e.typ = bt.Elem.Decay()
		return nil

	case *Call:
		for _, a := range e.Args {
			if err := c.checkExpr(a); err != nil {
				return err
			}
		}
		if bi, ok := builtins[e.Name]; ok {
			if len(e.Args) != len(bi.params) {
				return errf(e.Pos(), 1, "%s takes %d argument(s)", e.Name, len(bi.params))
			}
			for i, want := range bi.params {
				got := e.Args[i].Type()
				if want.IsArith() && got.IsArith() {
					continue
				}
				if want.Kind == TypePointer && (got.Kind == TypePointer || isZeroLit(e.Args[i])) {
					continue
				}
				return errf(e.Pos(), 1, "%s: argument %d has type %s", e.Name, i+1, got)
			}
			e.typ = bi.ret
			return nil
		}
		fn, ok := c.funcs[e.Name]
		if !ok {
			return errf(e.Pos(), 1, "undefined function %q", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return errf(e.Pos(), 1, "%s takes %d argument(s), got %d", e.Name, len(fn.Params), len(e.Args))
		}
		for i, p := range fn.Params {
			if err := c.assignable(p.Type, e.Args[i]); err != nil {
				return errf(e.Pos(), 1, "%s: argument %d: %v", e.Name, i+1, err)
			}
		}
		e.Decl = fn
		e.typ = fn.Ret
		return nil

	case *Cast:
		if err := c.checkExpr(e.X); err != nil {
			return err
		}
		xt := e.X.Type()
		ok := (e.To.IsArith() && (xt.IsArith() || xt.Kind == TypePointer)) ||
			(e.To.Kind == TypePointer && (xt.Kind == TypePointer || xt.IsArith()))
		if !ok {
			return errf(e.Pos(), 1, "invalid cast from %s to %s", xt, e.To)
		}
		e.typ = e.To
		return nil

	default:
		return fmt.Errorf("unknown expression %T", e)
	}
}
