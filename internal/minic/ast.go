package minic

// The mini-C abstract syntax tree. The parser produces it; Check resolves
// names and annotates expressions with types; the code generators consume
// it.

// Program is a parsed translation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
	// Source is retained for line counting (Table 4 / Table 7
	// characteristics).
	Source string
}

// StorageClass distinguishes where a variable lives.
type StorageClass int

// Storage classes.
const (
	StorageGlobal StorageClass = iota + 1
	StorageLocal
	StorageParam
)

// VarDecl declares a variable (global, local or parameter).
type VarDecl struct {
	Name     string
	Type     *Type
	Storage  StorageClass
	Init     Expr   // scalar initialiser, or nil
	InitList []Expr // array initialiser elements, or nil
	InitStr  string // string initialiser for char arrays ("" if none)
	Line     int

	// Assigned by the code generator.
	Addr   uint32 // globals: linear address
	Offset int32  // locals/params: EBP offset
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []*VarDecl
	Body   *BlockStmt
	Line   int
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a { ... } sequence.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt declares one or more local variables ("int x, y = 2;").
type DeclStmt struct {
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for effect.
type ExprStmt struct {
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Line int
}

// ForStmt is a for loop. Init and Post may be nil; Cond may be nil
// (infinite loop).
type ForStmt struct {
	Init Stmt // ExprStmt or DeclStmt
	Cond Expr
	Post Expr
	Body Stmt
	Line int
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	X    Expr // nil for void return
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is implemented by all expression nodes. After Check, Type()
// returns the expression's (decayed) type.
type Expr interface {
	exprNode()
	Type() *Type
	Pos() int
}

type exprBase struct {
	typ  *Type
	line int
}

func (e *exprBase) Type() *Type { return e.typ }
func (e *exprBase) Pos() int    { return e.line }

// NumberLit is an integer literal.
type NumberLit struct {
	exprBase
	Value int32
}

// StringLit is a string literal; it denotes an anonymous global char
// array and decays to char*.
type StringLit struct {
	exprBase
	Value string
	// Addr is assigned by the code generator.
	Addr uint32
}

// VarRef references a declared variable.
type VarRef struct {
	exprBase
	Name string
	Decl *VarDecl // resolved by Check
}

// Unary is !x, -x, ~x, *p, &lv.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	exprBase
	Op   string // "++" or "--"
	Post bool
	X    Expr
}

// Binary is x op y for arithmetic, comparison, logical and shift
// operators.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is lv = x and the compound forms (+=, -=, ...).
type Assign struct {
	exprBase
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// Index is a[i]. After checking, Base has pointer type (arrays decay).
type Index struct {
	exprBase
	Base  Expr
	Index Expr
}

// Call invokes a function or builtin (malloc, free, printi, printc).
type Call struct {
	exprBase
	Name string
	Args []Expr
	Decl *FuncDecl // resolved user function; nil for builtins
}

// Cast is (type)x.
type Cast struct {
	exprBase
	To *Type
	X  Expr
}

func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*VarRef) exprNode()    {}
func (*Unary) exprNode()     {}
func (*IncDec) exprNode()    {}
func (*Binary) exprNode()    {}
func (*Assign) exprNode()    {}
func (*Index) exprNode()     {}
func (*Call) exprNode()      {}
func (*Cast) exprNode()      {}
