package minic

// Parse builds an AST from mini-C source. The grammar is a conventional
// C subset; see the package comment. Returned errors carry line:col
// positions.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Source: src}
	for !p.at(TokEOF) {
		if err := p.topDecl(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind TokKind) bool { return p.cur().Kind == kind }

func (p *parser) atPunct(text string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == text
}

func (p *parser) atKeyword(text string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == text
}

func (p *parser) acceptPunct(text string) bool {
	if p.atPunct(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	t := p.cur()
	if !p.acceptPunct(text) {
		return errf(t.Line, t.Col, "expected %q, found %s", text, t)
	}
	return nil
}

func (p *parser) atType() bool {
	return p.atKeyword("int") || p.atKeyword("char") || p.atKeyword("void")
}

// baseType consumes int/char/void.
func (p *parser) baseType() (*Type, error) {
	t := p.cur()
	switch {
	case p.atKeyword("int"):
		p.pos++
		return Int, nil
	case p.atKeyword("char"):
		p.pos++
		return Char, nil
	case p.atKeyword("void"):
		p.pos++
		return Void, nil
	default:
		return nil, errf(t.Line, t.Col, "expected type, found %s", t)
	}
}

// stars consumes "*"* and wraps base in pointers.
func (p *parser) stars(base *Type) *Type {
	for p.acceptPunct("*") {
		base = PointerTo(base)
	}
	return base
}

func (p *parser) ident() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

// topDecl parses one global variable declaration (possibly with several
// declarators) or a function definition.
func (p *parser) topDecl(prog *Program) error {
	base, err := p.baseType()
	if err != nil {
		return err
	}
	typ := p.stars(base)
	name, err := p.ident()
	if err != nil {
		return err
	}
	if p.atPunct("(") {
		fn, err := p.funcRest(typ, name)
		if err != nil {
			return err
		}
		prog.Funcs = append(prog.Funcs, fn)
		return nil
	}
	// Global variable(s).
	for {
		decl, err := p.declaratorRest(typ, name, StorageGlobal)
		if err != nil {
			return err
		}
		prog.Globals = append(prog.Globals, decl)
		if !p.acceptPunct(",") {
			break
		}
		// Subsequent declarators share the base type but re-parse stars.
		typ2 := p.stars(base)
		name, err = p.ident()
		if err != nil {
			return err
		}
		typ = typ2
	}
	return p.expectPunct(";")
}

// declaratorRest parses the remainder of a declarator after the name:
// optional array suffix and initialiser.
func (p *parser) declaratorRest(typ *Type, name Token, storage StorageClass) (*VarDecl, error) {
	decl := &VarDecl{Name: name.Text, Type: typ, Storage: storage, Line: name.Line}
	if p.acceptPunct("[") {
		t := p.cur()
		if t.Kind != TokNumber {
			return nil, errf(t.Line, t.Col, "array length must be an integer literal")
		}
		p.pos++
		if t.Int <= 0 {
			return nil, errf(t.Line, t.Col, "array length must be positive")
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		decl.Type = ArrayOf(typ, int(t.Int))
	}
	if p.acceptPunct("=") {
		switch {
		case p.atPunct("{"):
			p.pos++
			for {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				decl.InitList = append(decl.InitList, e)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		case p.at(TokString):
			decl.InitStr = p.next().Text
		default:
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			decl.Init = e
		}
	}
	return decl, nil
}

// funcRest parses a function definition after "type name".
func (p *parser) funcRest(ret *Type, name Token) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: ret, Line: name.Line}
	if !p.atPunct(")") {
		// Allow "void" as the sole parameter.
		if p.atKeyword("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.pos++
		} else {
			for {
				base, err := p.baseType()
				if err != nil {
					return nil, err
				}
				typ := p.stars(base)
				pname, err := p.ident()
				if err != nil {
					return nil, err
				}
				// Array parameters decay to pointers.
				if p.acceptPunct("[") {
					if p.cur().Kind == TokNumber {
						p.pos++
					}
					if err := p.expectPunct("]"); err != nil {
						return nil, err
					}
					typ = PointerTo(typ)
				}
				fn.Params = append(fn.Params, &VarDecl{
					Name: pname.Text, Type: typ, Storage: StorageParam, Line: pname.Line,
				})
				if !p.acceptPunct(",") {
					break
				}
			}
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	blk := &BlockStmt{}
	for !p.atPunct("}") {
		if p.at(TokEOF) {
			t := p.cur()
			return nil, errf(t.Line, t.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.pos++
	return blk, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct("{"):
		return p.block()

	case p.atPunct(";"):
		p.pos++
		return nil, nil

	case p.atType():
		return p.localDecl()

	case p.atKeyword("if"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmt := &IfStmt{Cond: cond, Then: then}
		if p.atKeyword("else") {
			p.pos++
			stmt.Else, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return stmt, nil

	case p.atKeyword("while"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.Line}, nil

	case p.atKeyword("for"):
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		stmt := &ForStmt{Line: t.Line}
		if !p.atPunct(";") {
			if p.atType() {
				init, err := p.localDecl() // consumes ";"
				if err != nil {
					return nil, err
				}
				stmt.Init = init
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				stmt.Init = &ExprStmt{X: e}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		if !p.atPunct(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.Cond = cond
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.Post = post
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmt.Body = body
		return stmt, nil

	case p.atKeyword("return"):
		p.pos++
		stmt := &ReturnStmt{Line: t.Line}
		if !p.atPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.X = e
		}
		return stmt, p.expectPunct(";")

	case p.atKeyword("break"):
		p.pos++
		return &BreakStmt{Line: t.Line}, p.expectPunct(";")

	case p.atKeyword("continue"):
		p.pos++
		return &ContinueStmt{Line: t.Line}, p.expectPunct(";")

	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, p.expectPunct(";")
	}
}

// localDecl parses "type declarator (, declarator)* ;" and returns a
// BlockStmt when several variables are declared at once.
func (p *parser) localDecl() (Stmt, error) {
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	stmt := &DeclStmt{}
	for {
		typ := p.stars(base)
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		decl, err := p.declaratorRest(typ, name, StorageLocal)
		if err != nil {
			return nil, err
		}
		stmt.Decls = append(stmt.Decls, decl)
		if !p.acceptPunct(",") {
			break
		}
	}
	return stmt, p.expectPunct(";")
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.pos++
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: exprBase{line: t.Line}, Op: t.Text, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binaryExpr(level int) (Expr, error) {
	if level == len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binaryExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.Kind == TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.binaryExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{line: t.Line}, Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "!", "-", "~", "*", "&":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{line: t.Line}, Op: t.Text, X: x}, nil
		case "++", "--":
			p.pos++
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &IncDec{exprBase: exprBase{line: t.Line}, Op: t.Text, X: x}, nil
		case "(":
			// Cast: "(" type ")" unary.
			if p.toks[p.pos+1].Kind == TokKeyword && keywords[p.toks[p.pos+1].Text] {
				save := p.pos
				p.pos++
				base, err := p.baseType()
				if err != nil {
					p.pos = save
					break
				}
				typ := p.stars(base)
				if !p.acceptPunct(")") {
					p.pos = save
					break
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				return &Cast{exprBase: exprBase{line: t.Line}, To: typ, X: x}, nil
			}
		}
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.atPunct("["):
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{line: t.Line}, Base: x, Index: idx}
		case p.atPunct("++"), p.atPunct("--"):
			p.pos++
			x = &IncDec{exprBase: exprBase{line: t.Line}, Op: t.Text, Post: true, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber, TokCharLit:
		p.pos++
		return &NumberLit{exprBase: exprBase{line: t.Line}, Value: t.Int}, nil
	case TokString:
		p.pos++
		return &StringLit{exprBase: exprBase{line: t.Line}, Value: t.Text}, nil
	case TokIdent:
		p.pos++
		if p.atPunct("(") {
			p.pos++
			call := &Call{exprBase: exprBase{line: t.Line}, Name: t.Text}
			if !p.atPunct(")") {
				for {
					arg, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			return call, p.expectPunct(")")
		}
		return &VarRef{exprBase: exprBase{line: t.Line}, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.pos++
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, errf(t.Line, t.Col, "unexpected token %s", t)
}
