package minic

import "testing"

func parse(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseAndCheck(t *testing.T, src string) *Program {
	t.Helper()
	prog := parse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

func TestParseGlobals(t *testing.T) {
	prog := parse(t, `
int x;
int y = 5;
int a[10];
int b[3] = {1, 2, 3};
char msg[6] = "hello";
int *p;
char **pp;
void main() {}
`)
	if len(prog.Globals) != 7 {
		t.Fatalf("globals = %d, want 7", len(prog.Globals))
	}
	tests := []struct {
		idx  int
		name string
		typ  string
	}{
		{0, "x", "int"},
		{1, "y", "int"},
		{2, "a", "int[10]"},
		{3, "b", "int[3]"},
		{4, "msg", "char[6]"},
		{5, "p", "int*"},
		{6, "pp", "char**"},
	}
	for _, tt := range tests {
		g := prog.Globals[tt.idx]
		if g.Name != tt.name || g.Type.String() != tt.typ {
			t.Errorf("global %d = %s %s, want %s %s", tt.idx, g.Type, g.Name, tt.typ, tt.name)
		}
	}
	if prog.Globals[4].InitStr != "hello" {
		t.Errorf("msg init = %q, want hello", prog.Globals[4].InitStr)
	}
	if len(prog.Globals[3].InitList) != 3 {
		t.Errorf("b init list len = %d, want 3", len(prog.Globals[3].InitList))
	}
}

func TestParseMultipleDeclarators(t *testing.T) {
	prog := parseAndCheck(t, `
int a, b = 2, *c;
void main() { int x, y; x = 1; y = x; }
`)
	if len(prog.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(prog.Globals))
	}
	if prog.Globals[2].Type.String() != "int*" {
		t.Fatalf("c type = %s, want int*", prog.Globals[2].Type)
	}
}

func TestParseFunction(t *testing.T) {
	prog := parse(t, `
int add(int a, int b) { return a + b; }
void noargs(void) {}
int takesArray(int arr[], int n) { return arr[n]; }
void main() {}
`)
	if len(prog.Funcs) != 4 {
		t.Fatalf("funcs = %d, want 4", len(prog.Funcs))
	}
	add := prog.Funcs[0]
	if add.Name != "add" || len(add.Params) != 2 || add.Ret != Int {
		t.Fatalf("add = %+v", add)
	}
	if prog.Funcs[2].Params[0].Type.String() != "int*" {
		t.Fatalf("array param type = %s, want int*", prog.Funcs[2].Params[0].Type)
	}
}

func TestParseStatements(t *testing.T) {
	parseAndCheck(t, `
int a[10];
void main() {
	int i;
	int sum = 0;
	for (i = 0; i < 10; i++) {
		a[i] = i * i;
	}
	for (int j = 0; j < 10; j++) sum += a[j];
	while (sum > 100) { sum = sum - 10; if (sum == 150) break; else continue; }
	if (sum) printi(sum);
}
`)
}

func TestParsePointerOps(t *testing.T) {
	parseAndCheck(t, `
void main() {
	int *p;
	int x;
	p = malloc(40);
	*p = 5;
	p[1] = 6;
	p++;
	++p;
	p--;
	x = *p + p[0];
	p = &x;
	p = (int*)malloc(8);
	free(p);
	printi(x);
}
`)
}

func TestParsePrecedence(t *testing.T) {
	prog := parseAndCheck(t, `
void main() {
	int x;
	x = 1 + 2 * 3;
	printi(x);
}
`)
	// Walk to the assignment: x = 1 + (2*3)
	body := prog.Funcs[0].Body
	assign := body.Stmts[1].(*ExprStmt).X.(*Assign)
	add := assign.RHS.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op = %s, want +", add.Op)
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("rhs of + must be the multiplication")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "missing semicolon", src: "int x int y;"},
		{name: "bad array length", src: "int a[x]; void main(){}"},
		{name: "negative array length", src: "int a[0]; void main(){}"},
		{name: "unterminated block", src: "void main() {"},
		{name: "stray token", src: "void main() { 1 + ; }"},
		{name: "missing paren", src: "void main() { if (1 {} }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Fatalf("Parse succeeded, want error")
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "no main", src: "int x;"},
		{name: "undefined variable", src: "void main() { x = 1; }"},
		{name: "undefined function", src: "void main() { foo(); }"},
		{name: "duplicate global", src: "int x; int x; void main(){}"},
		{name: "duplicate function", src: "void f(){} void f(){} void main(){}"},
		{name: "void variable", src: "void x; void main(){}"},
		{name: "assign to array", src: "int a[4]; int b[4]; void main() { a = b; }"},
		{name: "assign to literal", src: "void main() { 3 = 4; }"},
		{name: "deref int", src: "void main() { int x; *x = 1; }"},
		{name: "index int", src: "void main() { int x; x[0] = 1; }"},
		{name: "break outside loop", src: "void main() { break; }"},
		{name: "continue outside loop", src: "void main() { continue; }"},
		{name: "return value from void", src: "void main() { return 1; }"},
		{name: "missing return value", src: "int f() { return; } void main(){}"},
		{name: "wrong arg count", src: "int f(int a) { return a; } void main() { f(1,2); }"},
		{name: "pointer to int assign", src: "void main() { int x; int *p; p = &x; x = p; }"},
		{name: "string into int array", src: `int a[4] = "abc"; void main(){}`},
		{name: "string too long", src: `char s[3] = "abc"; void main(){}`},
		{name: "too many initialisers", src: "int a[2] = {1,2,3}; void main(){}"},
		{name: "shadow builtin", src: "int malloc(int n) { return n; } void main(){}"},
		{name: "duplicate param", src: "int f(int a, int a) { return a; } void main(){}"},
		{name: "modulo pointer", src: "void main() { int *p; p = malloc(4); p = p % 2; }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			prog, err := Parse(tt.src)
			if err != nil {
				return // parse-time rejection is fine too
			}
			if err := Check(prog); err == nil {
				t.Fatalf("Check succeeded, want error")
			}
		})
	}
}

func TestCheckTypes(t *testing.T) {
	prog := parseAndCheck(t, `
int g[8];
int sum(int *p, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s += p[i];
	return s;
}
void main() {
	printi(sum(g, 8));
	printi(sum(&g[2], 4));
}
`)
	fn := prog.Funcs[0]
	// p[i] has type int after decay.
	forStmt := fn.Body.Stmts[1].(*ForStmt)
	assign := forStmt.Body.(*ExprStmt).X.(*Assign)
	idx := assign.RHS.(*Index)
	if idx.Type() != Int {
		t.Fatalf("p[i] type = %s, want int", idx.Type())
	}
	if idx.Base.Type().String() != "int*" {
		t.Fatalf("p type = %s, want int*", idx.Base.Type())
	}
}

func TestCheckArrayDecay(t *testing.T) {
	prog := parseAndCheck(t, `
int a[10];
void main() {
	int *p;
	p = a;
	p = a + 2;
	printi(p[0]);
}
`)
	main := prog.Funcs[0]
	assign := main.Body.Stmts[1].(*ExprStmt).X.(*Assign)
	if assign.RHS.Type().String() != "int*" {
		t.Fatalf("array decays to %s, want int*", assign.RHS.Type())
	}
}

func TestCheckScoping(t *testing.T) {
	// The inner x shadows the outer; both uses must resolve.
	prog := parseAndCheck(t, `
int x = 1;
void main() {
	printi(x);
	{
		int x = 2;
		printi(x);
	}
	printi(x);
}
`)
	main := prog.Funcs[0]
	outer := main.Body.Stmts[0].(*ExprStmt).X.(*Call).Args[0].(*VarRef)
	inner := main.Body.Stmts[1].(*BlockStmt).Stmts[1].(*ExprStmt).X.(*Call).Args[0].(*VarRef)
	if outer.Decl == inner.Decl {
		t.Fatal("inner x must shadow outer x")
	}
	if outer.Decl.Storage != StorageGlobal || inner.Decl.Storage != StorageLocal {
		t.Fatal("storage classes wrong")
	}
}

func TestPointerDifference(t *testing.T) {
	parseAndCheck(t, `
void main() {
	int *p;
	int *q;
	p = malloc(40);
	q = p + 5;
	printi(q - p);
}
`)
}
