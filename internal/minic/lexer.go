package minic

import (
	"strconv"
	"strings"
)

// Lex tokenises mini-C source. It supports //-comments, /* */-comments,
// decimal and hex integers, character literals with the common escapes,
// and string literals.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == TokEOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			startLine, startCol := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return errf(startLine, startCol, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// multi-byte punctuation, longest first.
var puncts = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",",
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := l.pos
		base := 10
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			base = 16
			l.advance()
			l.advance()
		}
		for l.pos < len(l.src) && (isDigit(l.peek()) ||
			(base == 16 && strings.ContainsRune("abcdefABCDEF", rune(l.peek())))) {
			l.advance()
		}
		text := l.src[start:l.pos]
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		v, err := strconv.ParseUint(digits, base, 32)
		if err != nil {
			return Token{}, errf(line, col, "bad integer literal %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Int: int32(uint32(v)), Line: line, Col: col}, nil

	case c == '\'':
		l.advance()
		v, err := l.charValue(line, col)
		if err != nil {
			return Token{}, err
		}
		if l.pos >= len(l.src) || l.peek() != '\'' {
			return Token{}, errf(line, col, "unterminated character literal")
		}
		l.advance()
		return Token{Kind: TokCharLit, Text: string(rune(v)), Int: int32(v), Line: line, Col: col}, nil

	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, errf(line, col, "unterminated string literal")
			}
			if l.peek() == '"' {
				l.advance()
				break
			}
			v, err := l.charValue(line, col)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(byte(v))
		}
		return Token{Kind: TokString, Text: sb.String(), Line: line, Col: col}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, errf(line, col, "unexpected character %q", string(c))
}

// charValue reads one (possibly escaped) character from inside a char or
// string literal.
func (l *lexer) charValue(line, col int) (byte, error) {
	if l.pos >= len(l.src) {
		return 0, errf(line, col, "unterminated literal")
	}
	c := l.advance()
	if c != '\\' {
		return c, nil
	}
	if l.pos >= len(l.src) {
		return 0, errf(line, col, "unterminated escape")
	}
	e := l.advance()
	switch e {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, errf(line, col, "unknown escape \\%c", e)
	}
}
