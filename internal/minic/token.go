// Package minic implements the front end of the Cash reproduction
// compiler: a lexer, parser and type checker for mini-C, the C subset the
// paper's workloads are written in.
//
// mini-C has int (32-bit signed), char (8-bit unsigned), void, pointers
// and one-dimensional arrays; functions; the usual statements (if, while,
// for, break, continue, return) and operators; the built-ins malloc, free,
// printi and printc. Multi-dimensional data uses manual row-major
// indexing, as the paper's kernels do. Floating-point kernels are ported
// to 16.16 fixed point (documented substitution — the checked array
// reference structure is unchanged).
package minic

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota + 1
	TokIdent
	TokNumber
	TokCharLit
	TokString
	TokKeyword
	TokPunct
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokCharLit:
		return "character literal"
	case TokString:
		return "string literal"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Int  int32 // value for TokNumber and TokCharLit
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// Error is a front-end diagnostic carrying source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
