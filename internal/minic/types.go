package minic

import "fmt"

// TypeKind classifies mini-C types.
type TypeKind int

// Type kinds.
const (
	TypeInt TypeKind = iota + 1
	TypeChar
	TypeVoid
	TypePointer
	TypeArray
)

// Type is a mini-C type. Int, Char and Void are interned singletons;
// compose pointers and arrays with PointerTo and ArrayOf.
type Type struct {
	Kind TypeKind
	Elem *Type // pointer target / array element
	Len  int   // array length
}

// Singleton base types.
var (
	Int  = &Type{Kind: TypeInt}
	Char = &Type{Kind: TypeChar}
	Void = &Type{Kind: TypeVoid}
)

// PointerTo returns the type "pointer to elem".
func PointerTo(elem *Type) *Type { return &Type{Kind: TypePointer, Elem: elem} }

// ArrayOf returns the type "array of n elem".
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: TypeArray, Elem: elem, Len: n} }

// Size returns the logical object size in bytes: int 4, char 1, pointer 4
// (value word only — the fat-pointer representations of BCC and Cash are a
// code-generation concern, not a language one), arrays elem*len.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeInt:
		return 4
	case TypeChar:
		return 1
	case TypePointer:
		return 4
	case TypeArray:
		return t.Elem.Size() * t.Len
	default:
		return 0
	}
}

// IsPointerLike reports whether t is a pointer or decays to one.
func (t *Type) IsPointerLike() bool {
	return t.Kind == TypePointer || t.Kind == TypeArray
}

// IsArith reports whether t participates in integer arithmetic.
func (t *Type) IsArith() bool { return t.Kind == TypeInt || t.Kind == TypeChar }

// Decay returns the expression type after array-to-pointer decay.
func (t *Type) Decay() *Type {
	if t.Kind == TypeArray {
		return PointerTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case TypePointer:
		return t.Elem.Equal(u.Elem)
	case TypeArray:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	default:
		return true
	}
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeInt:
		return "int"
	case TypeChar:
		return "char"
	case TypeVoid:
		return "void"
	case TypePointer:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	default:
		return fmt.Sprintf("type(%d)", int(t.Kind))
	}
}
