package minic

import "strings"

// LineCount returns the number of non-blank source lines, the measure the
// paper's characteristics tables (Table 4, Table 7) report.
func LineCount(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
