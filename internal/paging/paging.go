// Package paging models the fixed-size-page half of IA-32 virtual memory:
// a two-level page table that translates 32-bit linear addresses (produced
// by segmentation, see internal/x86seg) into physical addresses.
//
// The most significant 10 bits of a linear address index the page
// directory, the next 10 bits index a page table, and the low 12 bits are
// the offset within a 4 KiB page — the pipeline of Figure 1 in the paper.
package paging

import "fmt"

const (
	// PageSize is the x86 page size.
	PageSize = 4096
	// EntriesPerTable is the number of entries in the page directory and
	// in each page table (10 index bits).
	EntriesPerTable = 1024
)

// PageFault is the error returned when a linear address has no valid
// mapping or the access violates page-level protection.
type PageFault struct {
	Linear uint32
	Write  bool
	Detail string
}

func (f *PageFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("#PF: %s of linear %#x: %s", kind, f.Linear, f.Detail)
}

// entry is a page-table or page-directory entry.
type entry struct {
	frame    uint32 // physical frame number
	present  bool
	writable bool
}

// pageTable is one second-level table mapping 1024 pages.
type pageTable struct {
	entries [EntriesPerTable]entry
}

// Directory is a two-level page table. The zero value has no mappings;
// use Map or NewIdentity to install them.
type Directory struct {
	tables [EntriesPerTable]*pageTable
	walks  uint64 // table walks performed (stats)
}

// NewIdentity returns a directory that identity-maps the first n bytes of
// the linear address space read-write. n is rounded up to a whole page.
func NewIdentity(n uint32) *Directory {
	d := &Directory{}
	pages := (uint64(n) + PageSize - 1) / PageSize
	for p := uint64(0); p < pages; p++ {
		lin := uint32(p * PageSize)
		d.Map(lin, lin, true)
	}
	return d
}

// Map installs a mapping from the page containing linear to the physical
// frame containing phys. Both addresses are truncated to page boundaries.
func (d *Directory) Map(linear, phys uint32, writable bool) {
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	t := d.tables[dirIdx]
	if t == nil {
		t = &pageTable{}
		d.tables[dirIdx] = t
	}
	t.entries[tblIdx] = entry{frame: phys >> 12, present: true, writable: writable}
}

// Unmap removes the mapping for the page containing linear.
func (d *Directory) Unmap(linear uint32) {
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	if t := d.tables[dirIdx]; t != nil {
		t.entries[tblIdx] = entry{}
	}
}

// Translate walks the two-level table and returns the physical address for
// a linear address, or a *PageFault.
func (d *Directory) Translate(linear uint32, write bool) (uint32, error) {
	d.walks++
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	off := linear & 0xfff
	t := d.tables[dirIdx]
	if t == nil {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "page directory entry not present"}
	}
	e := t.entries[tblIdx]
	if !e.present {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "page table entry not present"}
	}
	if write && !e.writable {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "write to read-only page"}
	}
	return e.frame<<12 | off, nil
}

// Walks returns the number of translations performed, for statistics.
func (d *Directory) Walks() uint64 { return d.walks }

// MappedPages returns how many pages currently have a present mapping.
func (d *Directory) MappedPages() int {
	n := 0
	for _, t := range d.tables {
		if t == nil {
			continue
		}
		for _, e := range t.entries {
			if e.present {
				n++
			}
		}
	}
	return n
}
