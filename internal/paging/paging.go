// Package paging models the fixed-size-page half of IA-32 virtual memory:
// a two-level page table that translates 32-bit linear addresses (produced
// by segmentation, see internal/x86seg) into physical addresses.
//
// The most significant 10 bits of a linear address index the page
// directory, the next 10 bits index a page table, and the low 12 bits are
// the offset within a 4 KiB page — the pipeline of Figure 1 in the paper.
package paging

import (
	"fmt"

	"cash/internal/obs"
)

// Process-wide paging metrics in the shared observability registry.
// Directories publish coarse deltas via PublishMetrics (the VM calls it
// once per run), so the per-translation hot path carries no atomics.
var (
	mWalks     = obs.Default().Counter("paging.walks")
	mTLBHits   = obs.Default().Counter("paging.tlb.hits")
	mTLBMisses = obs.Default().Counter("paging.tlb.misses")
)

const (
	// PageSize is the x86 page size.
	PageSize = 4096
	// EntriesPerTable is the number of entries in the page directory and
	// in each page table (10 index bits).
	EntriesPerTable = 1024
)

// PageFault is the error returned when a linear address has no valid
// mapping or the access violates page-level protection.
type PageFault struct {
	Linear uint32
	Write  bool
	Detail string
}

func (f *PageFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("#PF: %s of linear %#x: %s", kind, f.Linear, f.Detail)
}

// entry is a page-table or page-directory entry.
type entry struct {
	frame    uint32 // physical frame number
	present  bool
	writable bool
}

// pageTable is one second-level table mapping 1024 pages.
type pageTable struct {
	entries [EntriesPerTable]entry
}

// TLBEntries is the size of the direct-mapped translation look-aside
// buffer in front of the table walk. Like a real TLB it is purely a host
// speed optimisation: architectural behaviour (including the Walks
// counter) is identical with the TLB disabled.
const TLBEntries = 64

// tlbEntry caches one translation: virtual page number -> physical frame
// plus the writable bit, so write-protection faults are still detected on
// TLB hits.
type tlbEntry struct {
	vpn      uint32
	frame    uint32
	valid    bool
	writable bool
}

// Directory is a two-level page table. The zero value has no mappings;
// use Map or NewIdentity to install them.
type Directory struct {
	tables [EntriesPerTable]*pageTable
	walks  uint64 // architectural translations performed (stats)

	tlb       [TLBEntries]tlbEntry
	tlbHits   uint64
	tlbMisses uint64

	// Counts already pushed to the shared registry (see PublishMetrics).
	pubWalks, pubHits, pubMisses uint64
}

// NewIdentity returns a directory that identity-maps the first n bytes of
// the linear address space read-write. n is rounded up to a whole page.
func NewIdentity(n uint32) *Directory {
	d := &Directory{}
	pages := (uint64(n) + PageSize - 1) / PageSize
	for p := uint64(0); p < pages; p++ {
		lin := uint32(p * PageSize)
		d.Map(lin, lin, true)
	}
	return d
}

// Map installs a mapping from the page containing linear to the physical
// frame containing phys. Both addresses are truncated to page boundaries.
func (d *Directory) Map(linear, phys uint32, writable bool) {
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	t := d.tables[dirIdx]
	if t == nil {
		t = &pageTable{}
		d.tables[dirIdx] = t
	}
	t.entries[tblIdx] = entry{frame: phys >> 12, present: true, writable: writable}
	d.invalidate(linear)
}

// Unmap removes the mapping for the page containing linear.
func (d *Directory) Unmap(linear uint32) {
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	if t := d.tables[dirIdx]; t != nil {
		t.entries[tblIdx] = entry{}
	}
	d.invalidate(linear)
}

// invalidate drops any TLB entry for the page containing linear. A vpn
// can only live in its direct-mapped slot, so clearing that slot suffices.
func (d *Directory) invalidate(linear uint32) {
	d.tlb[(linear>>12)%TLBEntries] = tlbEntry{}
}

// Translate returns the physical address for a linear address, or a
// *PageFault. Every call counts as one architectural translation (Walks);
// the TLB only short-circuits the host-side two-level table walk.
func (d *Directory) Translate(linear uint32, write bool) (uint32, error) {
	d.walks++
	vpn := linear >> 12
	e := &d.tlb[vpn%TLBEntries]
	if e.valid && e.vpn == vpn && (!write || e.writable) {
		d.tlbHits++
		return e.frame<<12 | linear&0xfff, nil
	}
	d.tlbMisses++
	return d.walk(linear, write)
}

// walk performs the full two-level table walk and refills the TLB on
// success.
func (d *Directory) walk(linear uint32, write bool) (uint32, error) {
	dirIdx := linear >> 22
	tblIdx := (linear >> 12) & 0x3ff
	off := linear & 0xfff
	t := d.tables[dirIdx]
	if t == nil {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "page directory entry not present"}
	}
	e := t.entries[tblIdx]
	if !e.present {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "page table entry not present"}
	}
	if write && !e.writable {
		return 0, &PageFault{Linear: linear, Write: write, Detail: "write to read-only page"}
	}
	vpn := linear >> 12
	d.tlb[vpn%TLBEntries] = tlbEntry{vpn: vpn, frame: e.frame, valid: true, writable: e.writable}
	return e.frame<<12 | off, nil
}

// Walks returns the number of translations performed, for statistics.
// TLB hits count: they are architectural translations the hardware would
// have limit-checked and walked.
func (d *Directory) Walks() uint64 { return d.walks }

// TLBHits returns how many translations were served from the TLB.
func (d *Directory) TLBHits() uint64 { return d.tlbHits }

// TLBMisses returns how many translations required a full table walk
// (including translations that faulted).
func (d *Directory) TLBMisses() uint64 { return d.tlbMisses }

// PublishMetrics pushes this directory's translation counts into the
// shared observability registry (internal/obs). It publishes only the
// delta since the previous call, so it is idempotent over unchanged
// state and safe to call at every run boundary.
func (d *Directory) PublishMetrics() {
	mWalks.Add(d.walks - d.pubWalks)
	mTLBHits.Add(d.tlbHits - d.pubHits)
	mTLBMisses.Add(d.tlbMisses - d.pubMisses)
	d.pubWalks, d.pubHits, d.pubMisses = d.walks, d.tlbHits, d.tlbMisses
}

// MappedPages returns how many pages currently have a present mapping.
func (d *Directory) MappedPages() int {
	n := 0
	for _, t := range d.tables {
		if t == nil {
			continue
		}
		for _, e := range t.entries {
			if e.present {
				n++
			}
		}
	}
	return n
}
