package paging

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestIdentityMap(t *testing.T) {
	d := NewIdentity(64 * 1024)
	for _, lin := range []uint32{0, 1, PageSize - 1, PageSize, 64*1024 - 1} {
		got, err := d.Translate(lin, true)
		if err != nil {
			t.Fatalf("Translate(%#x): %v", lin, err)
		}
		if got != lin {
			t.Fatalf("Translate(%#x) = %#x, want identity", lin, got)
		}
	}
	if got := d.MappedPages(); got != 16 {
		t.Fatalf("MappedPages = %d, want 16", got)
	}
}

func TestUnmappedFaults(t *testing.T) {
	d := NewIdentity(PageSize)
	_, err := d.Translate(PageSize, false)
	var pf *PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("want *PageFault, got %v", err)
	}
	if pf.Linear != PageSize {
		t.Errorf("fault linear = %#x, want %#x", pf.Linear, PageSize)
	}
}

func TestNonIdentityMapping(t *testing.T) {
	var d Directory
	d.Map(0x40000000, 0x2000, true) // high linear page -> low physical frame
	got, err := d.Translate(0x40000123, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x2123 {
		t.Fatalf("Translate = %#x, want 0x2123", got)
	}
}

func TestReadOnlyPage(t *testing.T) {
	var d Directory
	d.Map(0, 0, false)
	if _, err := d.Translate(0x10, false); err != nil {
		t.Fatalf("read of read-only page: %v", err)
	}
	if _, err := d.Translate(0x10, true); err == nil {
		t.Fatal("write to read-only page must fault")
	}
}

func TestUnmap(t *testing.T) {
	var d Directory
	d.Map(0x5000, 0x5000, true)
	if _, err := d.Translate(0x5000, false); err != nil {
		t.Fatal(err)
	}
	d.Unmap(0x5000)
	if _, err := d.Translate(0x5000, false); err == nil {
		t.Fatal("unmapped page must fault")
	}
}

func TestWalkCounter(t *testing.T) {
	d := NewIdentity(PageSize)
	before := d.Walks()
	_, _ = d.Translate(0, false)
	_, _ = d.Translate(PageSize*10, false) // faulting walks count too
	if got := d.Walks() - before; got != 2 {
		t.Fatalf("Walks delta = %d, want 2", got)
	}
}

func TestTLBHitsAndMisses(t *testing.T) {
	d := NewIdentity(16 * PageSize)
	if _, err := d.Translate(0x1000, false); err != nil {
		t.Fatal(err)
	}
	if hits, misses := d.TLBHits(), d.TLBMisses(); hits != 0 || misses != 1 {
		t.Fatalf("after first access: hits=%d misses=%d, want 0/1", hits, misses)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.Translate(0x1000+uint32(i)*4, true); err != nil {
			t.Fatal(err)
		}
	}
	if hits := d.TLBHits(); hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if walks := d.Walks(); walks != 6 {
		t.Fatalf("Walks = %d, want 6 (TLB hits count architecturally)", walks)
	}
}

func TestTLBInvalidatedOnMapAndUnmap(t *testing.T) {
	var d Directory
	d.Map(0x5000, 0x5000, true)
	if got, _ := d.Translate(0x5004, false); got != 0x5004 {
		t.Fatalf("Translate = %#x, want 0x5004", got)
	}
	// Remap the same page elsewhere: the cached translation must not be
	// served.
	d.Map(0x5000, 0x9000, true)
	if got, _ := d.Translate(0x5004, false); got != 0x9004 {
		t.Fatalf("after remap, Translate = %#x, want 0x9004", got)
	}
	d.Unmap(0x5000)
	if _, err := d.Translate(0x5004, false); err == nil {
		t.Fatal("unmapped page must fault even after a TLB hit")
	}
}

func TestTLBConflictEviction(t *testing.T) {
	// Two pages whose vpns collide in the direct-mapped TLB.
	a := uint32(0)
	b := uint32(TLBEntries * PageSize)
	var d Directory
	d.Map(a, 0x10000, true)
	d.Map(b, 0x20000, true)
	for i := 0; i < 3; i++ {
		if got, _ := d.Translate(a, false); got != 0x10000 {
			t.Fatalf("a -> %#x, want 0x10000", got)
		}
		if got, _ := d.Translate(b, false); got != 0x20000 {
			t.Fatalf("b -> %#x, want 0x20000", got)
		}
	}
	if hits := d.TLBHits(); hits != 0 {
		t.Fatalf("conflicting vpns must evict each other, hits = %d", hits)
	}
}

func TestTLBWriteProtectionOnHit(t *testing.T) {
	var d Directory
	d.Map(0, 0, false)
	if _, err := d.Translate(0x10, false); err != nil {
		t.Fatal(err)
	}
	// The read filled the TLB; a write must still fault.
	if _, err := d.Translate(0x10, true); err == nil {
		t.Fatal("write to read-only page must fault after a read cached it")
	}
}

// TestQuickPageOffsetPreserved: translation never alters the low 12 bits.
func TestQuickPageOffsetPreserved(t *testing.T) {
	f := func(linPage uint32, off uint16, physPage uint32) bool {
		var d Directory
		lin := (linPage << 12) | uint32(off)&0xfff
		d.Map(lin, physPage<<12, true)
		got, err := d.Translate(lin, true)
		if err != nil {
			return false
		}
		return got&0xfff == lin&0xfff && got>>12 == physPage&0xfffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
