package paging

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestIdentityMap(t *testing.T) {
	d := NewIdentity(64 * 1024)
	for _, lin := range []uint32{0, 1, PageSize - 1, PageSize, 64*1024 - 1} {
		got, err := d.Translate(lin, true)
		if err != nil {
			t.Fatalf("Translate(%#x): %v", lin, err)
		}
		if got != lin {
			t.Fatalf("Translate(%#x) = %#x, want identity", lin, got)
		}
	}
	if got := d.MappedPages(); got != 16 {
		t.Fatalf("MappedPages = %d, want 16", got)
	}
}

func TestUnmappedFaults(t *testing.T) {
	d := NewIdentity(PageSize)
	_, err := d.Translate(PageSize, false)
	var pf *PageFault
	if !errors.As(err, &pf) {
		t.Fatalf("want *PageFault, got %v", err)
	}
	if pf.Linear != PageSize {
		t.Errorf("fault linear = %#x, want %#x", pf.Linear, PageSize)
	}
}

func TestNonIdentityMapping(t *testing.T) {
	var d Directory
	d.Map(0x40000000, 0x2000, true) // high linear page -> low physical frame
	got, err := d.Translate(0x40000123, false)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x2123 {
		t.Fatalf("Translate = %#x, want 0x2123", got)
	}
}

func TestReadOnlyPage(t *testing.T) {
	var d Directory
	d.Map(0, 0, false)
	if _, err := d.Translate(0x10, false); err != nil {
		t.Fatalf("read of read-only page: %v", err)
	}
	if _, err := d.Translate(0x10, true); err == nil {
		t.Fatal("write to read-only page must fault")
	}
}

func TestUnmap(t *testing.T) {
	var d Directory
	d.Map(0x5000, 0x5000, true)
	if _, err := d.Translate(0x5000, false); err != nil {
		t.Fatal(err)
	}
	d.Unmap(0x5000)
	if _, err := d.Translate(0x5000, false); err == nil {
		t.Fatal("unmapped page must fault")
	}
}

func TestWalkCounter(t *testing.T) {
	d := NewIdentity(PageSize)
	before := d.Walks()
	_, _ = d.Translate(0, false)
	_, _ = d.Translate(PageSize*10, false) // faulting walks count too
	if got := d.Walks() - before; got != 2 {
		t.Fatalf("Walks delta = %d, want 2", got)
	}
}

// TestQuickPageOffsetPreserved: translation never alters the low 12 bits.
func TestQuickPageOffsetPreserved(t *testing.T) {
	f := func(linPage uint32, off uint16, physPage uint32) bool {
		var d Directory
		lin := (linPage << 12) | uint32(off)&0xfff
		d.Map(lin, physPage<<12, true)
		got, err := d.Translate(lin, true)
		if err != nil {
			return false
		}
		return got&0xfff == lin&0xfff && got>>12 == physPage&0xfffff
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
