package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryIndexOnce(t *testing.T) {
	defer SetParallelism(Parallelism())
	for _, budget := range []int{1, 2, 16} {
		SetParallelism(budget)
		const n = 100
		var counts [n]atomic.Int32
		if err := Do(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("budget %d: f(%d) ran %d times", budget, i, got)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(8)
	for trial := 0; trial < 10; trial++ {
		err := Do(20, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("want fail-3 (lowest failing index), got %v", err)
		}
	}
}

// TestDoConcurrentSimultaneousFailures pins the scheduling-independence
// half of Do's contract: when several indices fail at the same moment —
// a rendezvous barrier holds every worker in flight until all have
// started, so no failure is ordered before another by the work loop —
// the returned error is still the lowest failed index's.
func TestDoConcurrentSimultaneousFailures(t *testing.T) {
	defer SetParallelism(Parallelism())
	const n = 8
	SetParallelism(n)
	for trial := 0; trial < 25; trial++ {
		var barrier sync.WaitGroup
		barrier.Add(n)
		err := Do(n, func(i int) error {
			barrier.Done()
			barrier.Wait()
			if i%2 == 1 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-1" {
			t.Fatalf("trial %d: want fail-1 (lowest failing index), got %v", trial, err)
		}
	}
}

func TestDoSequentialStopsAtFirstError(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(1)
	ran := 0
	sentinel := errors.New("stop")
	err := Do(10, func(i int) error {
		ran++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
	if ran != 3 {
		t.Fatalf("sequential mode must stop at first error; ran %d calls", ran)
	}
}

func TestSetParallelismClampsToOne(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(-5)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d, want 1", got)
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
