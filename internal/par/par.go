// Package par provides the bounded fan-out used by the benchmark
// harness: a process-wide worker budget and an indexed parallel-for.
//
// The harness parallelises the independent rows of each table (every row
// is its own compile-and-run experiment) while the tables themselves stay
// sequential, so per-table counter deltas remain exact. Each worker writes
// only its own index's results, which keeps output ordering — and
// therefore every formatted table — byte-identical to a sequential run.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var parallelism atomic.Int32

func init() { parallelism.Store(int32(runtime.GOMAXPROCS(0))) }

// SetParallelism sets the worker budget for subsequent Do calls. Values
// below 1 are treated as 1 (fully sequential).
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker budget.
func Parallelism() int { return int(parallelism.Load()) }

// Do runs f(0) … f(n-1), at most Parallelism() at a time, and waits for
// every started call to return. On failure it returns the error of the
// lowest failed index: even when several indices fail simultaneously
// under a concurrent budget, the reported error is a deterministic
// function of the failure set, never of goroutine scheduling. With a
// budget of 1 (or n == 1) it runs inline, with no goroutines at all.
//
// The budgets differ in one observable way — which indices run. A
// sequential run stops at the first error, so later indices never
// execute; a concurrent run starts every index and runs each to
// completion. The returned error is identical either way. Callers that
// need every index's side effects, or every error rather than just the
// lowest, must use DoCollect.
func Do(n int, f func(i int) error) error {
	return DoN(Parallelism(), n, f)
}

// DoN is Do with an explicit worker budget instead of the process-wide
// one. The serving engine uses it to give each Engine its own
// parallelism, independent of the deprecated global knob.
func DoN(budget, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if budget <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	for _, err := range DoCollectN(budget, n, f) {
		if err != nil {
			return err
		}
	}
	return nil
}

// DoCollect runs f(0) … f(n-1) like Do, but always runs every index to
// completion and returns the full per-index error slice (all nil on
// success). Callers that need partial results alongside a joined error —
// the resilient measurement paths — use this instead of Do.
func DoCollect(n int, f func(i int) error) []error {
	return DoCollectN(Parallelism(), n, f)
}

// DoCollectN is DoCollect with an explicit worker budget.
func DoCollectN(budget, n int, f func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	p := budget
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = f(i)
		}
		return errs
	}
	sem := make(chan struct{}, p)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	return errs
}
