package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutGetRoundtrip(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello, segmented world")
	if err := d.Put("a:key1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("a:key1")
	if !ok {
		t.Fatal("expected hit")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: got %q want %q", got, payload)
	}
	if _, ok := d.Get("a:absent"); ok {
		t.Fatal("expected miss for absent key")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestReopenFindsEntries(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("a:key%d", i)
		if err := d.Put(key, []byte(strings.Repeat("x", 100+i))); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes := d.Bytes()

	d2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 5 {
		t.Fatalf("reopened Len = %d, want 5", d2.Len())
	}
	if d2.Bytes() != wantBytes {
		t.Fatalf("reopened Bytes = %d, want %d", d2.Bytes(), wantBytes)
	}
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("a:key%d", i)
		got, ok := d2.Get(key)
		if !ok {
			t.Fatalf("reopened store missed %s", key)
		}
		if want := []byte(strings.Repeat("x", 100+i)); !bytes.Equal(got, want) {
			t.Fatalf("%s payload mismatch after reopen", key)
		}
	}
}

func TestTruncatedEntryIsMissNotError(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:victim", []byte(strings.Repeat("y", 500))); err != nil {
		t.Fatal(err)
	}
	path := d.Path("a:victim")
	if err := os.Truncate(path, 17); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("a:victim"); ok {
		t.Fatal("truncated entry must read as a miss")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("invalid entry file should be removed after failed Get")
	}
	// A rebuilt entry must round-trip again.
	if err := d.Put("a:victim", []byte("rebuilt")); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("a:victim")
	if !ok || string(got) != "rebuilt" {
		t.Fatalf("rebuilt entry: ok=%v got=%q", ok, got)
	}
}

func TestCorruptedPayloadIsMiss(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:victim", []byte(strings.Repeat("z", 500))); err != nil {
		t.Fatal(err)
	}
	path := d.Path("a:victim")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("a:victim"); ok {
		t.Fatal("hash-mismatched entry must read as a miss")
	}
}

func TestReopenDropsInvalidAndTemp(t *testing.T) {
	root := t.TempDir()
	d, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:good", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:bad", []byte(strings.Repeat("b", 300))); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(d.Path("a:bad"), 40); err != nil {
		t.Fatal(err)
	}
	// Simulate an interrupted write: a leftover temp file.
	fan := filepath.Dir(d.Path("a:good"))
	tmpPath := filepath.Join(fan, "put-stale.tmp")
	if err := os.WriteFile(tmpPath, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(root, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1 (invalid entry dropped)", d2.Len())
	}
	if _, ok := d2.Get("a:good"); !ok {
		t.Fatal("valid entry lost on reopen")
	}
	if _, ok := d2.Get("a:bad"); ok {
		t.Fatal("truncated entry survived reopen")
	}
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatal("temp leftover not cleaned on reopen")
	}
}

func TestBudgetEviction(t *testing.T) {
	var evicted []string
	d, err := Open(t.TempDir(), Options{
		Budget:  2000,
		OnEvict: func(key string) { evicted = append(evicted, key) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each entry is ~headerSize + keyLen + 600 bytes; three fit, the
	// fourth evicts the least recently used.
	for i := 0; i < 3; i++ {
		if err := d.Put(fmt.Sprintf("a:k%d", i), bytes.Repeat([]byte{byte(i)}, 520)); err != nil {
			t.Fatal(err)
		}
	}
	if len(evicted) != 0 {
		t.Fatalf("premature eviction: %v", evicted)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := d.Get("a:k0"); !ok {
		t.Fatal("k0 missing")
	}
	if err := d.Put("a:k3", bytes.Repeat([]byte{3}, 520)); err != nil {
		t.Fatal(err)
	}
	if len(evicted) == 0 {
		t.Fatal("expected an eviction")
	}
	if evicted[0] != "a:k1" {
		t.Fatalf("evicted %v, want a:k1 first", evicted)
	}
	if _, ok := d.Get("a:k1"); ok {
		t.Fatal("evicted entry still readable")
	}
	if _, ok := d.Get("a:k0"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if d.opts.Budget > 0 && d.Bytes() > d.opts.Budget {
		t.Fatalf("bytes %d over budget %d", d.Bytes(), d.opts.Budget)
	}
}

func TestReplacementAccounting(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:k", bytes.Repeat([]byte{1}, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a:k", bytes.Repeat([]byte{2}, 10)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d after replacement, want 1", d.Len())
	}
	want := int64(headerSize + len("a:k") + 10)
	if d.Bytes() != want {
		t.Fatalf("Bytes = %d after replacement, want %d (old size leaked)", d.Bytes(), want)
	}
	got, ok := d.Get("a:k")
	if !ok || len(got) != 10 || got[0] != 2 {
		t.Fatalf("replacement payload wrong: ok=%v got=%v", ok, got)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	d, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("a:w%d-i%d", w, i%10)
				if err := d.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := d.Get(key); ok && string(got) != key {
					t.Errorf("wrong payload for %s: %q", key, got)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
