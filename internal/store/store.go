// Package store implements a content-addressed on-disk artifact store
// with a crash-safe write protocol. It is the bottom layer of the
// serving stack's layered cache: the in-memory LRU sits above it and
// consults it on miss, so a process restart finds its compiled
// artifacts and deterministic run results already on disk.
//
// Every entry is one file named by the SHA-256 of its key, under a
// two-character fanout directory. The file carries a fixed header
// (magic, key length, payload length, payload SHA-256) followed by the
// key and the payload. Writes go to a temp file in the same directory,
// are fsynced, and are atomically renamed into place; the parent
// directory is fsynced after the rename so the entry survives a crash.
// A reader validates the magic, the lengths, the embedded key, and the
// payload hash — any mismatch (truncation, corruption, collision)
// deletes the file and reports a miss, never an error. Losing a cache
// entry is always recoverable; serving a wrong one is not.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// magic identifies a store entry file and pins its format version.
// Bump the trailing digit on any incompatible layout change: old
// entries then fail validation and are treated as misses.
const magic = "cashsto1"

// headerSize is the fixed prefix before the key bytes: magic (8),
// key length (4, u32 LE), payload length (8, u64 LE), payload
// SHA-256 (32).
const headerSize = 8 + 4 + 8 + sha256.Size

// entExt is the extension of committed entry files. Temp files use
// ".tmp" and are deleted on Open; anything else in the tree is ignored.
const entExt = ".ent"

// Options configures a Dir.
type Options struct {
	// Budget bounds the total bytes of committed entry files. Zero or
	// negative means unlimited. When a Put pushes the total over the
	// budget, least-recently-used entries are deleted (the entry just
	// written is never the victim).
	Budget int64

	// OnEvict, when non-nil, is called with the key of every entry
	// removed by budget eviction. It is not called for entries dropped
	// because they failed validation.
	OnEvict func(key string)
}

// Dir is a content-addressed store rooted at one directory. All
// methods are safe for concurrent use.
type Dir struct {
	root string
	opts Options

	mu      sync.Mutex
	bytes   int64
	lru     []string           // keys, least recently used first
	entries map[string]*dirEnt // key -> entry
}

type dirEnt struct {
	size int64 // whole file size (header + key + payload)
	pos  int   // index into lru; maintained on every reorder
}

// Open opens (creating if needed) the store rooted at root. Leftover
// temp files from interrupted writes are deleted, and any committed
// entry whose header is unreadable or whose size disagrees with its
// header is removed. Payload hashes are NOT verified here — that
// happens on Get, so Open stays cheap on large stores.
func Open(root string, opts Options) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", root, err)
	}
	d := &Dir{root: root, opts: opts, entries: make(map[string]*dirEnt)}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// scan walks the fanout tree, removing temp leftovers and invalid
// entries and rebuilding the LRU ordered by mtime (oldest first) so
// budget eviction after a reopen removes the stalest entries.
func (d *Dir) scan() error {
	type found struct {
		key   string
		size  int64
		mtime int64
		name  string
	}
	var all []found
	dirs, err := os.ReadDir(d.root)
	if err != nil {
		return fmt.Errorf("store: scan %s: %w", d.root, err)
	}
	for _, fan := range dirs {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		fanDir := filepath.Join(d.root, fan.Name())
		files, err := os.ReadDir(fanDir)
		if err != nil {
			return fmt.Errorf("store: scan %s: %w", fanDir, err)
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(fanDir, f.Name())
			if strings.HasSuffix(f.Name(), ".tmp") {
				os.Remove(path)
				continue
			}
			if !strings.HasSuffix(f.Name(), entExt) {
				continue
			}
			key, size, mtime, ok := readEntryHeader(path)
			if !ok {
				os.Remove(path)
				continue
			}
			all = append(all, found{key: key, size: size, mtime: mtime, name: f.Name()})
		}
	}
	// Oldest first; ties broken by key hash for determinism.
	sort.Slice(all, func(i, j int) bool {
		if all[i].mtime != all[j].mtime {
			return all[i].mtime < all[j].mtime
		}
		return all[i].name < all[j].name
	})
	for _, f := range all {
		d.entries[f.key] = &dirEnt{size: f.size, pos: len(d.lru)}
		d.lru = append(d.lru, f.key)
		d.bytes += f.size
	}
	return nil
}

// readEntryHeader opens path, validates the fixed header against the
// file size, and returns the embedded key. The payload hash is not
// checked. ok is false for any unreadable or inconsistent file.
func readEntryHeader(path string) (key string, size, mtime int64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, 0, false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", 0, 0, false
	}
	var hdr [headerSize]byte
	if _, err := f.Read(hdr[:]); err != nil {
		return "", 0, 0, false
	}
	keyLen, payloadLen, _, hok := parseHeader(hdr[:])
	if !hok {
		return "", 0, 0, false
	}
	want := int64(headerSize) + int64(keyLen) + int64(payloadLen)
	if st.Size() != want {
		return "", 0, 0, false
	}
	keyBuf := make([]byte, keyLen)
	if _, err := f.Read(keyBuf); err != nil {
		return "", 0, 0, false
	}
	if keyPath(path, string(keyBuf)) != path {
		return "", 0, 0, false
	}
	return string(keyBuf), st.Size(), st.ModTime().UnixNano(), true
}

// keyPath returns the canonical path an entry for key should live at,
// using the directory root inferred from an existing path's grandparent.
func keyPath(existing, key string) string {
	root := filepath.Dir(filepath.Dir(existing))
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	return filepath.Join(root, name[:2], name+entExt)
}

// parseHeader decodes the fixed header prefix. ok is false when the
// magic is wrong or the lengths are absurd.
func parseHeader(hdr []byte) (keyLen uint32, payloadLen uint64, sum [sha256.Size]byte, ok bool) {
	if len(hdr) < headerSize || string(hdr[:8]) != magic {
		return 0, 0, sum, false
	}
	keyLen = binary.LittleEndian.Uint32(hdr[8:12])
	payloadLen = binary.LittleEndian.Uint64(hdr[12:20])
	copy(sum[:], hdr[20:headerSize])
	if keyLen == 0 || keyLen > 1<<20 || payloadLen > 1<<40 {
		return 0, 0, sum, false
	}
	return keyLen, payloadLen, sum, true
}

// path returns the file an entry for key lives at.
func (d *Dir) path(key string) string {
	h := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(h[:])
	return filepath.Join(d.root, name[:2], name+entExt)
}

// Path exposes the on-disk location of key's entry (which may or may
// not exist). Tests and tooling use it; the serving layers do not.
func (d *Dir) Path(key string) string { return d.path(key) }

// Get returns the payload stored under key. ok is false on a miss —
// including every corruption case: wrong magic, bad lengths, key
// mismatch, truncation, payload hash mismatch. A failed validation
// removes the file so the next Put can rewrite it cleanly.
func (d *Dir) Get(key string) (payload []byte, ok bool) {
	d.mu.Lock()
	_, known := d.entries[key]
	d.mu.Unlock()
	if !known {
		return nil, false
	}
	path := d.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		d.drop(key, path)
		return nil, false
	}
	payload, ok = validate(data, key)
	if !ok {
		d.drop(key, path)
		return nil, false
	}
	d.touch(key)
	return payload, true
}

// validate checks a whole entry file against key and returns its
// payload.
func validate(data []byte, key string) ([]byte, bool) {
	if len(data) < headerSize {
		return nil, false
	}
	keyLen, payloadLen, sum, ok := parseHeader(data[:headerSize])
	if !ok {
		return nil, false
	}
	want := headerSize + int(keyLen) + int(payloadLen)
	if int64(len(data)) != int64(want) {
		return nil, false
	}
	if string(data[headerSize:headerSize+int(keyLen)]) != key {
		return nil, false
	}
	payload := data[headerSize+int(keyLen):]
	if sha256.Sum256(payload) != sum {
		return nil, false
	}
	return payload, true
}

// drop forgets key and best-effort removes its file. Used when a read
// or validation fails; OnEvict is not called.
func (d *Dir) drop(key, path string) {
	d.mu.Lock()
	if ent, ok := d.entries[key]; ok {
		d.removeLocked(key, ent)
	}
	d.mu.Unlock()
	os.Remove(path)
}

// removeLocked deletes key from the index. Caller holds d.mu.
func (d *Dir) removeLocked(key string, ent *dirEnt) {
	d.bytes -= ent.size
	delete(d.entries, key)
	// Compact the LRU slice; fixing up pos keeps removal O(n) but n is
	// the entry count, and removals are rare (evictions and drops).
	copy(d.lru[ent.pos:], d.lru[ent.pos+1:])
	d.lru = d.lru[:len(d.lru)-1]
	for i := ent.pos; i < len(d.lru); i++ {
		d.entries[d.lru[i]].pos = i
	}
}

// touch moves key to the most-recently-used end.
func (d *Dir) touch(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ent, ok := d.entries[key]
	if !ok || ent.pos == len(d.lru)-1 {
		return
	}
	copy(d.lru[ent.pos:], d.lru[ent.pos+1:])
	d.lru[len(d.lru)-1] = key
	for i := ent.pos; i < len(d.lru); i++ {
		d.entries[d.lru[i]].pos = i
	}
}

// Put stores payload under key with the crash-safe protocol:
// write-temp in the destination directory, fsync, atomic rename,
// fsync the directory. An existing entry for key is replaced. The
// error is advisory — a failed Put leaves the store consistent and
// callers treat it as "not cached".
func (d *Dir) Put(key string, payload []byte) error {
	path := d.path(key)
	fanDir := filepath.Dir(path)
	if err := os.MkdirAll(fanDir, 0o755); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}

	sum := sha256.Sum256(payload)
	blob := make([]byte, 0, headerSize+len(key)+len(payload))
	blob = append(blob, magic...)
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(key)))
	blob = binary.LittleEndian.AppendUint64(blob, uint64(len(payload)))
	blob = append(blob, sum[:]...)
	blob = append(blob, key...)
	blob = append(blob, payload...)

	tmp, err := os.CreateTemp(fanDir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: put: %w", err)
	}
	syncDir(fanDir)

	size := int64(len(blob))
	var evicted []string
	d.mu.Lock()
	if old, ok := d.entries[key]; ok {
		d.removeLocked(key, old)
	}
	d.entries[key] = &dirEnt{size: size, pos: len(d.lru)}
	d.lru = append(d.lru, key)
	d.bytes += size
	if d.opts.Budget > 0 {
		for d.bytes > d.opts.Budget && len(d.lru) > 1 {
			victim := d.lru[0]
			ent := d.entries[victim]
			d.removeLocked(victim, ent)
			evicted = append(evicted, victim)
		}
	}
	d.mu.Unlock()

	for _, victim := range evicted {
		os.Remove(d.path(victim))
		if d.opts.OnEvict != nil {
			d.opts.OnEvict(victim)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best effort: some filesystems reject directory fsync, and losing the
// entry on crash is an acceptable outcome.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		return
	}
	f.Sync()
	f.Close()
}

// Has reports whether key is indexed, without touching the LRU or the
// disk. A subsequent Get may still miss if the file was corrupted.
func (d *Dir) Has(key string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.entries[key]
	return ok
}

// Len returns the number of indexed entries.
func (d *Dir) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// Bytes returns the total size of indexed entry files.
func (d *Dir) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Close releases the store. The Dir holds no descriptors between
// operations, so Close is a no-op kept for the layered-store contract;
// operations after Close still work.
func (d *Dir) Close() error { return nil }

// IsNotExist reports whether err came from a missing root — callers
// that treat an absent store directory as "start empty" use it.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
