// Package x86seg models the segmentation half of the IA-32 virtual memory
// hardware: segment selectors, segment descriptors, the GDT and per-process
// LDT descriptor tables, segment registers with their hidden descriptor
// caches, and the segment limit check performed on every memory reference.
//
// This is the hardware feature the Cash paper (Lam & Chiueh, DSN 2005)
// exploits: by allocating one segment per array and generating array
// references through a segment register, the limit check becomes an array
// bound check that costs nothing per reference.
package x86seg

import "fmt"

// Table selects which descriptor table a selector indexes.
type Table int

// Descriptor table indicators, encoded in the TI bit of a selector.
const (
	GDT Table = iota + 1
	LDT
)

func (t Table) String() string {
	switch t {
	case GDT:
		return "GDT"
	case LDT:
		return "LDT"
	default:
		return fmt.Sprintf("Table(%d)", int(t))
	}
}

// TableEntries is the number of descriptors in a GDT or LDT: the selector
// index field is 13 bits wide, so 8192 entries.
const TableEntries = 8192

// Selector is a 16-bit x86 segment selector:
//
//	bits 15..3  index into the GDT or LDT (13 bits, 8192 entries)
//	bit  2      TI: 0 = GDT, 1 = LDT
//	bits 1..0   RPL: requested privilege level
type Selector uint16

// NewSelector builds a selector from its fields. Index must be in
// [0, TableEntries); values outside are masked to 13 bits, as the
// hardware register would.
func NewSelector(index int, table Table, rpl int) Selector {
	s := Selector(index&0x1fff) << 3
	if table == LDT {
		s |= 1 << 2
	}
	s |= Selector(rpl & 3)
	return s
}

// Index returns the 13-bit descriptor table index.
func (s Selector) Index() int { return int(s >> 3) }

// Table returns which descriptor table the selector refers to.
func (s Selector) Table() Table {
	if s&(1<<2) != 0 {
		return LDT
	}
	return GDT
}

// RPL returns the requested privilege level.
func (s Selector) RPL() int { return int(s & 3) }

// IsNull reports whether s is a null selector: index 0 with TI = 0.
// Loading a null selector into a data segment register is legal; using
// that register for a memory reference raises #GP.
func (s Selector) IsNull() bool { return s&^3 == 0 }

func (s Selector) String() string {
	if s.IsNull() {
		return "null-selector"
	}
	return fmt.Sprintf("%s[%d]:rpl%d", s.Table(), s.Index(), s.RPL())
}
