package x86seg

import (
	"errors"
	"testing"
)

func mustDescriptor(t *testing.T, base, size uint32) Descriptor {
	t.Helper()
	d, err := NewDataDescriptor(base, size)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTableSetLookup(t *testing.T) {
	tbl := NewTable("LDT")
	d := mustDescriptor(t, 0x4000, 64)
	if err := tbl.Set(5, d); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Lookup(NewSelector(5, LDT, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got.Base != 0x4000 || got.ByteSize() != 64 {
		t.Fatalf("Lookup = %v, want base 0x4000 size 64", got)
	}
}

func TestTableLookupUninstalled(t *testing.T) {
	tbl := NewTable("LDT")
	_, err := tbl.Lookup(NewSelector(3, LDT, 0))
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultGP {
		t.Fatalf("lookup of empty entry: want #GP, got %v", err)
	}
}

func TestTableLimitEnforced(t *testing.T) {
	tbl := NewTable("GDT")
	d := mustDescriptor(t, 0, 16)
	if err := tbl.Set(100, d); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetLimit(50); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup(NewSelector(100, GDT, 0)); err == nil {
		t.Fatal("selector beyond table limit must fault")
	}
	if err := tbl.SetLimit(100); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup(NewSelector(100, GDT, 0)); err != nil {
		t.Fatalf("selector at table limit must pass: %v", err)
	}
}

func TestTableIndexValidation(t *testing.T) {
	tbl := NewTable("LDT")
	d := mustDescriptor(t, 0, 16)
	if err := tbl.Set(-1, d); err == nil {
		t.Error("negative index must be rejected")
	}
	if err := tbl.Set(TableEntries, d); err == nil {
		t.Error("index 8192 must be rejected")
	}
	if err := tbl.Clear(TableEntries); err == nil {
		t.Error("Clear beyond table must be rejected")
	}
	if err := tbl.SetLimit(TableEntries); err == nil {
		t.Error("limit 8192 must be rejected")
	}
}

func TestTableClearAndCount(t *testing.T) {
	tbl := NewTable("LDT")
	d := mustDescriptor(t, 0, 16)
	for i := 1; i <= 10; i++ {
		if err := tbl.Set(i, d); err != nil {
			t.Fatal(err)
		}
	}
	if got := tbl.Count(); got != 10 {
		t.Fatalf("Count = %d, want 10", got)
	}
	if err := tbl.Clear(4); err != nil {
		t.Fatal(err)
	}
	if tbl.InUse(4) {
		t.Error("entry 4 should be free after Clear")
	}
	if got := tbl.Count(); got != 9 {
		t.Fatalf("Count after Clear = %d, want 9", got)
	}
	if _, err := tbl.Lookup(NewSelector(4, LDT, 0)); err == nil {
		t.Error("lookup of cleared entry must fault")
	}
}

func TestTableFull8192Entries(t *testing.T) {
	tbl := NewTable("LDT")
	d := mustDescriptor(t, 0, 16)
	for i := 0; i < TableEntries; i++ {
		if err := tbl.Set(i, d); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
	}
	if got := tbl.Count(); got != TableEntries {
		t.Fatalf("Count = %d, want %d", got, TableEntries)
	}
}
