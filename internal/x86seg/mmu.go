package x86seg

import "fmt"

// SegReg names one of the six segment registers.
type SegReg int

// The six IA-32 segment registers. CS/SS/DS are reserved for code, stack
// and data; ES, FS and GS (and optionally SS, §3.7) are available to Cash
// for array segments.
const (
	ES SegReg = iota
	CS
	SS
	DS
	FS
	GS
	NumSegRegs = 6
)

var segRegNames = [NumSegRegs]string{"ES", "CS", "SS", "DS", "FS", "GS"}

func (r SegReg) String() string {
	if r >= 0 && int(r) < NumSegRegs {
		return segRegNames[r]
	}
	return fmt.Sprintf("SegReg(%d)", int(r))
}

// segRegister is one segment register: the visible selector plus the hidden
// part (descriptor cache / shadow register) loaded from the descriptor
// table at MOV-to-segment-register time.
type segRegister struct {
	selector Selector
	cache    Descriptor
	loaded   bool // hidden part holds a valid descriptor
}

// MMU is the segmentation unit: the GDT, the current LDT, and the six
// segment registers. Every memory reference is translated and limit-checked
// through one of the registers.
type MMU struct {
	gdt  *DescriptorTable
	ldt  *DescriptorTable
	regs [NumSegRegs]segRegister
}

// NewMMU returns an MMU with empty GDT and LDT and all segment registers
// holding null selectors.
func NewMMU() *MMU {
	return &MMU{gdt: NewTable("GDT"), ldt: NewTable("LDT")}
}

// GDT returns the global descriptor table.
func (m *MMU) GDT() *DescriptorTable { return m.gdt }

// LDT returns the current local descriptor table.
func (m *MMU) LDT() *DescriptorTable { return m.ldt }

// SetLDT switches the current LDT, as a context switch (or LDTR rewrite)
// would. Segment registers keep their cached descriptors: stale hidden
// parts are a real hardware hazard the paper calls out, and tests exercise
// it deliberately.
func (m *MMU) SetLDT(t *DescriptorTable) { m.ldt = t }

func (m *MMU) table(sel Selector) *DescriptorTable {
	if sel.Table() == LDT {
		return m.ldt
	}
	return m.gdt
}

// Load performs MOV to a segment register: the selector is validated
// against its descriptor table and the descriptor is copied into the hidden
// part. Loading a null selector into a data segment register succeeds (the
// fault comes at use time); loading one into CS or SS faults immediately.
func (m *MMU) Load(r SegReg, sel Selector) error {
	if sel.IsNull() {
		if r == CS || r == SS {
			return &Fault{Code: FaultGP, Selector: sel, Detail: "null selector loaded into " + r.String()}
		}
		m.regs[r] = segRegister{selector: sel}
		return nil
	}
	d, err := m.table(sel).Lookup(sel)
	if err != nil {
		return err
	}
	if !d.Present {
		return &Fault{Code: FaultNotPresent, Selector: sel, Detail: "descriptor not present"}
	}
	m.regs[r] = segRegister{selector: sel, cache: d, loaded: true}
	return nil
}

// Selector returns the visible part of a segment register.
func (m *MMU) Selector(r SegReg) Selector { return m.regs[r].selector }

// Cached returns the hidden descriptor of a segment register and whether it
// holds a valid descriptor.
func (m *MMU) Cached(r SegReg) (Descriptor, bool) {
	return m.regs[r].cache, m.regs[r].loaded
}

// Translate checks a memory reference of size bytes at offset through
// segment register r and returns the linear address (segment base +
// offset). The limit check uses the cached descriptor — not the in-memory
// table — so a descriptor modified after loading is not observed until the
// register is reloaded, exactly as on real hardware.
func (m *MMU) Translate(r SegReg, offset uint32, size uint32, write bool) (uint32, error) {
	reg := &m.regs[r]
	if !reg.loaded {
		return 0, &Fault{
			Code: FaultGP, Selector: reg.selector, Offset: offset,
			Detail: "memory reference through unloaded segment register " + r.String(),
		}
	}
	if err := reg.cache.Check(offset, size, write); err != nil {
		if f, ok := err.(*Fault); ok {
			f.Selector = reg.selector
		}
		return 0, err
	}
	return reg.cache.Base + offset, nil
}
