package x86seg

import "fmt"

// SegReg names one of the six segment registers.
type SegReg int

// The six IA-32 segment registers. CS/SS/DS are reserved for code, stack
// and data; ES, FS and GS (and optionally SS, §3.7) are available to Cash
// for array segments.
const (
	ES SegReg = iota
	CS
	SS
	DS
	FS
	GS
	NumSegRegs = 6
)

var segRegNames = [NumSegRegs]string{"ES", "CS", "SS", "DS", "FS", "GS"}

func (r SegReg) String() string {
	if r >= 0 && int(r) < NumSegRegs {
		return segRegNames[r]
	}
	return fmt.Sprintf("SegReg(%d)", int(r))
}

// segRegister is one segment register: the visible selector plus the hidden
// part (descriptor cache / shadow register) loaded from the descriptor
// table at MOV-to-segment-register time.
//
// flat and isLDT are host-side derivations of the visible and hidden
// parts, precomputed at load time so the per-reference hot path does not
// re-decode the descriptor: flat means the cached descriptor is a
// writable 4 GiB base-0 data segment (every in-range access passes), and
// isLDT mirrors the selector's TI bit (the references the paper counts as
// hardware bound checks).
type segRegister struct {
	selector Selector
	cache    Descriptor
	loaded   bool // hidden part holds a valid descriptor
	flat     bool
	isLDT    bool
}

// MMU is the segmentation unit: the GDT, the current LDT, and the six
// segment registers. Every memory reference is translated and limit-checked
// through one of the registers.
type MMU struct {
	gdt  *DescriptorTable
	ldt  *DescriptorTable
	regs [NumSegRegs]segRegister
}

// NewMMU returns an MMU with empty GDT and LDT and all segment registers
// holding null selectors.
func NewMMU() *MMU {
	return &MMU{gdt: NewTable("GDT"), ldt: NewTable("LDT")}
}

// GDT returns the global descriptor table.
func (m *MMU) GDT() *DescriptorTable { return m.gdt }

// Reset returns the MMU to its NewMMU state in place: both tables are
// emptied (the LDT reset applies to whatever table is currently
// installed) and every segment register reverts to a null selector with
// no cached descriptor.
func (m *MMU) Reset() {
	m.gdt.Reset()
	m.ldt.Reset()
	m.regs = [NumSegRegs]segRegister{}
}

// LDT returns the current local descriptor table.
func (m *MMU) LDT() *DescriptorTable { return m.ldt }

// SetLDT switches the current LDT, as a context switch (or LDTR rewrite)
// would. Segment registers keep their cached descriptors: stale hidden
// parts are a real hardware hazard the paper calls out, and tests exercise
// it deliberately.
func (m *MMU) SetLDT(t *DescriptorTable) { m.ldt = t }

func (m *MMU) table(sel Selector) *DescriptorTable {
	if sel.Table() == LDT {
		return m.ldt
	}
	return m.gdt
}

// Load performs MOV to a segment register: the selector is validated
// against its descriptor table and the descriptor is copied into the hidden
// part. Loading a null selector into a data segment register succeeds (the
// fault comes at use time); loading one into CS or SS faults immediately.
func (m *MMU) Load(r SegReg, sel Selector) error {
	if sel.IsNull() {
		if r == CS || r == SS {
			return &Fault{Code: FaultGP, Selector: sel, Detail: "null selector loaded into " + r.String()}
		}
		m.regs[r] = segRegister{selector: sel, isLDT: sel.Table() == LDT}
		return nil
	}
	d, err := m.table(sel).Lookup(sel)
	if err != nil {
		return err
	}
	if !d.Present {
		return &Fault{Code: FaultNotPresent, Selector: sel, Detail: "descriptor not present"}
	}
	m.regs[r] = segRegister{
		selector: sel,
		cache:    d,
		loaded:   true,
		flat: d.Base == 0 && d.Kind == KindData && d.Writable &&
			d.EffectiveLimit() == 0xffffffff,
		isLDT: sel.Table() == LDT,
	}
	return nil
}

// Selector returns the visible part of a segment register.
func (m *MMU) Selector(r SegReg) Selector { return m.regs[r].selector }

// IsLDT reports whether the visible selector in r refers to the LDT —
// i.e. whether references through r are array-segment (hardware bound
// check) references. Precomputed at load time; hot-path cheap.
func (m *MMU) IsLDT(r SegReg) bool { return m.regs[r].isLDT }

// FlatLinear is the host fast path for the overwhelmingly common case of
// a reference through a flat 4 GiB writable data segment (the simulated
// Linux DS/SS/ES): when it applies, the limit check trivially passes and
// the linear address is the offset itself. The boolean reports whether
// the fast path applied; when false the caller must use Translate, which
// performs the full architectural check. size must be >= 1.
func (m *MMU) FlatLinear(r SegReg, offset, size uint32) (uint32, bool) {
	if m.regs[r].flat && offset+size-1 >= offset {
		return offset, true
	}
	return 0, false
}

// Cached returns the hidden descriptor of a segment register and whether it
// holds a valid descriptor.
func (m *MMU) Cached(r SegReg) (Descriptor, bool) {
	return m.regs[r].cache, m.regs[r].loaded
}

// Translate checks a memory reference of size bytes at offset through
// segment register r and returns the linear address (segment base +
// offset). The limit check uses the cached descriptor — not the in-memory
// table — so a descriptor modified after loading is not observed until the
// register is reloaded, exactly as on real hardware.
func (m *MMU) Translate(r SegReg, offset uint32, size uint32, write bool) (uint32, error) {
	reg := &m.regs[r]
	if !reg.loaded {
		return 0, &Fault{
			Code: FaultGP, Selector: reg.selector, Offset: offset,
			Detail: "memory reference through unloaded segment register " + r.String(),
		}
	}
	if err := reg.cache.Check(offset, size, write); err != nil {
		if f, ok := err.(*Fault); ok {
			f.Selector = reg.selector
		}
		return 0, err
	}
	return reg.cache.Base + offset, nil
}
