package x86seg

import "fmt"

// SegReg names one of the six segment registers.
type SegReg int

// The six IA-32 segment registers. CS/SS/DS are reserved for code, stack
// and data; ES, FS and GS (and optionally SS, §3.7) are available to Cash
// for array segments.
const (
	ES SegReg = iota
	CS
	SS
	DS
	FS
	GS
	NumSegRegs = 6
)

var segRegNames = [NumSegRegs]string{"ES", "CS", "SS", "DS", "FS", "GS"}

func (r SegReg) String() string {
	if r >= 0 && int(r) < NumSegRegs {
		return segRegNames[r]
	}
	return fmt.Sprintf("SegReg(%d)", int(r))
}

// segRegister is one segment register: the visible selector plus the hidden
// part (descriptor cache / shadow register) loaded from the descriptor
// table at MOV-to-segment-register time.
//
// flat and isLDT are host-side derivations of the visible and hidden
// parts, precomputed at load time so the per-reference hot path does not
// re-decode the descriptor: flat means the cached descriptor is a
// writable 4 GiB base-0 data segment (every in-range access passes), and
// isLDT mirrors the selector's TI bit (the references the paper counts as
// hardware bound checks).
type segRegister struct {
	selector Selector
	cache    Descriptor
	loaded   bool // hidden part holds a valid descriptor
	flat     bool
	isLDT    bool

	// quickR and quickW are the precomputed limit-check thresholds for
	// the tier-2 inline fast path (QuickTranslate): quickR[k] is one past
	// the largest offset at which a read of 1<<k bytes stays within the
	// cached descriptor's limit, held as uint64 so a flat 4 GiB segment
	// does not wrap to zero. quickW likewise for writes (zero for
	// read-only and code segments). Zero disables the fast path, which
	// falls back to the full Translate — the zero value of a segRegister
	// is therefore always safe.
	quickR [3]uint64
	quickW [3]uint64
}

// quickLimits precomputes the fast-path thresholds for a descriptor just
// loaded into a segment register. The thresholds encode exactly the
// accesses Translate admits — Check's rejection cases (not present, call
// gate, write to read-only or code) map to zero thresholds, and the
// limit comparison offset+size-1 <= limit becomes offset < limit-size+2.
func quickLimits(d Descriptor) (r, w [3]uint64) {
	if !d.Present || d.Kind == KindCallGate {
		return
	}
	limit := int64(d.EffectiveLimit())
	for k := 0; k < 3; k++ {
		if v := limit - int64(1)<<k + 2; v > 0 {
			r[k] = uint64(v)
		}
	}
	if d.Kind == KindData && d.Writable {
		w = r
	}
	return
}

// MMU is the segmentation unit: the GDT, the current LDT, and the six
// segment registers. Every memory reference is translated and limit-checked
// through one of the registers.
type MMU struct {
	gdt  *DescriptorTable
	ldt  *DescriptorTable
	regs [NumSegRegs]segRegister
	gen  uint64 // bumped on any segment-register or table change
}

// NewMMU returns an MMU with empty GDT and LDT and all segment registers
// holding null selectors.
func NewMMU() *MMU {
	return &MMU{gdt: NewTable("GDT"), ldt: NewTable("LDT"), gen: 1}
}

// Gen is a generation counter that changes whenever a segment register
// is loaded or a table is switched or reset — i.e. whenever state cached
// from QuickState may have gone stale. Callers snapshot Gen alongside
// the cached state and revalidate by comparing.
func (m *MMU) Gen() uint64 { return m.gen }

// GDT returns the global descriptor table.
func (m *MMU) GDT() *DescriptorTable { return m.gdt }

// Reset returns the MMU to its NewMMU state in place: both tables are
// emptied (the LDT reset applies to whatever table is currently
// installed) and every segment register reverts to a null selector with
// no cached descriptor.
func (m *MMU) Reset() {
	m.gdt.Reset()
	m.ldt.Reset()
	m.regs = [NumSegRegs]segRegister{}
	m.gen++
}

// LDT returns the current local descriptor table.
func (m *MMU) LDT() *DescriptorTable { return m.ldt }

// SetLDT switches the current LDT, as a context switch (or LDTR rewrite)
// would. Segment registers keep their cached descriptors: stale hidden
// parts are a real hardware hazard the paper calls out, and tests exercise
// it deliberately.
func (m *MMU) SetLDT(t *DescriptorTable) { m.ldt = t; m.gen++ }

func (m *MMU) table(sel Selector) *DescriptorTable {
	if sel.Table() == LDT {
		return m.ldt
	}
	return m.gdt
}

// Load performs MOV to a segment register: the selector is validated
// against its descriptor table and the descriptor is copied into the hidden
// part. Loading a null selector into a data segment register succeeds (the
// fault comes at use time); loading one into CS or SS faults immediately.
func (m *MMU) Load(r SegReg, sel Selector) error {
	if sel.IsNull() {
		if r == CS || r == SS {
			return &Fault{Code: FaultGP, Selector: sel, Detail: "null selector loaded into " + r.String()}
		}
		m.regs[r] = segRegister{selector: sel, isLDT: sel.Table() == LDT}
		m.gen++
		return nil
	}
	d, err := m.table(sel).Lookup(sel)
	if err != nil {
		return err
	}
	if !d.Present {
		return &Fault{Code: FaultNotPresent, Selector: sel, Detail: "descriptor not present"}
	}
	m.regs[r] = segRegister{
		selector: sel,
		cache:    d,
		loaded:   true,
		flat: d.Base == 0 && d.Kind == KindData && d.Writable &&
			d.EffectiveLimit() == 0xffffffff,
		isLDT: sel.Table() == LDT,
	}
	m.regs[r].quickR, m.regs[r].quickW = quickLimits(d)
	m.gen++
	return nil
}

// QuickTranslate is the tier-2 inline fast path: the linear address of
// an access of 1<<k bytes (k in 0..2) at offset through r, and true,
// when the precomputed limit check passes. False means the caller must
// run the full Translate — which reproduces every fault the thresholds
// conservatively declined. Semantically QuickTranslate(…) == (lin, nil)
// from Translate for every (true, lin) it returns; the thresholds are
// recomputed on Load, so cached-descriptor staleness behaves identically
// on both paths.
func (m *MMU) QuickTranslate(r SegReg, offset uint32, k int, write bool) (uint32, bool) {
	s := &m.regs[r]
	lim := s.quickR[k]
	if write {
		lim = s.quickW[k]
	}
	if uint64(offset) < lim {
		return s.cache.Base + offset, true
	}
	return 0, false
}

// QuickRef is QuickTranslate fused with IsLDT: one segment-register
// lookup yields the fast-path linear address, whether the reference is
// an LDT (hardware bound check) reference, and whether the fast path
// applied. The ldt result is valid regardless of ok, so the caller can
// count the hardware check before falling back to the full Translate —
// the same order memPhys uses.
func (m *MMU) QuickRef(r SegReg, offset uint32, k int, write bool) (lin uint32, ldt, ok bool) {
	s := &m.regs[r]
	lim := s.quickR[k]
	if write {
		lim = s.quickW[k]
	}
	if uint64(offset) < lim {
		return s.cache.Base + offset, s.isLDT, true
	}
	return 0, s.isLDT, false
}

// QuickState exposes one segment register's fast-path state for callers
// that cache it across a run of accesses (the tier-2 run loop): the
// segment base, the 4-byte read and write thresholds (see quickLimits),
// and whether references through the register count as hardware bound
// checks. The thresholds are valid until the next Load of the register.
func (m *MMU) QuickState(r SegReg) (base uint32, qr, qw uint64, ldt bool) {
	s := &m.regs[r]
	return s.cache.Base, s.quickR[2], s.quickW[2], s.isLDT
}

// Selector returns the visible part of a segment register.
func (m *MMU) Selector(r SegReg) Selector { return m.regs[r].selector }

// IsLDT reports whether the visible selector in r refers to the LDT —
// i.e. whether references through r are array-segment (hardware bound
// check) references. Precomputed at load time; hot-path cheap.
func (m *MMU) IsLDT(r SegReg) bool { return m.regs[r].isLDT }

// FlatLinear is the host fast path for the overwhelmingly common case of
// a reference through a flat 4 GiB writable data segment (the simulated
// Linux DS/SS/ES): when it applies, the limit check trivially passes and
// the linear address is the offset itself. The boolean reports whether
// the fast path applied; when false the caller must use Translate, which
// performs the full architectural check. size must be >= 1.
func (m *MMU) FlatLinear(r SegReg, offset, size uint32) (uint32, bool) {
	if m.regs[r].flat && offset+size-1 >= offset {
		return offset, true
	}
	return 0, false
}

// Cached returns the hidden descriptor of a segment register and whether it
// holds a valid descriptor.
func (m *MMU) Cached(r SegReg) (Descriptor, bool) {
	return m.regs[r].cache, m.regs[r].loaded
}

// Translate checks a memory reference of size bytes at offset through
// segment register r and returns the linear address (segment base +
// offset). The limit check uses the cached descriptor — not the in-memory
// table — so a descriptor modified after loading is not observed until the
// register is reloaded, exactly as on real hardware.
func (m *MMU) Translate(r SegReg, offset uint32, size uint32, write bool) (uint32, error) {
	reg := &m.regs[r]
	if !reg.loaded {
		return 0, &Fault{
			Code: FaultGP, Selector: reg.selector, Offset: offset,
			Detail: "memory reference through unloaded segment register " + r.String(),
		}
	}
	if err := reg.cache.Check(offset, size, write); err != nil {
		if f, ok := err.(*Fault); ok {
			f.Selector = reg.selector
		}
		return 0, err
	}
	return reg.cache.Base + offset, nil
}
