package x86seg

import "fmt"

// Kind classifies a descriptor. Only the kinds the Cash system touches are
// modelled: code and data segments plus call gates (used by the
// cash_modify_ldt fast kernel entry).
type Kind int

// Descriptor kinds.
const (
	KindData Kind = iota + 1
	KindCode
	KindCallGate
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindCode:
		return "code"
	case KindCallGate:
		return "call-gate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PageGranule is the limit-scaling factor applied when the granularity bit
// is set: the 20-bit limit field counts 4 KiB units instead of bytes.
const PageGranule = 1 << 12

// MaxByteLimit is the largest byte-granular limit the 20-bit field encodes
// (a segment of exactly 1 MiB). Larger segments require the G bit.
const MaxByteLimit = 1<<20 - 1

// Descriptor is an 8-byte segment descriptor as stored in the GDT or LDT.
// Limit is the raw 20-bit field; the effective byte limit depends on the
// granularity bit (see EffectiveLimit).
type Descriptor struct {
	Base        uint32 // segment start linear address
	Limit       uint32 // raw 20-bit limit field
	Granularity bool   // G bit: limit counts 4 KiB units
	Present     bool   // P bit
	DPL         int    // descriptor privilege level, 0..3
	Kind        Kind
	Writable    bool // data segments: writes permitted

	// Call-gate fields (Kind == KindCallGate).
	GateTarget int // kernel routine id the gate transfers to
}

// EffectiveLimit returns the highest valid byte offset within the segment.
// With G=0 that is Limit itself (0 .. 2^20-1). With G=1 the hardware scales
// Limit by 4 KiB and fills the low 12 bits with ones: the check ignores the
// low 12 bits of the offset, which is exactly the <=4 KiB lower-bound slack
// the paper analyses in §3.5 / Figure 2.
func (d Descriptor) EffectiveLimit() uint32 {
	if d.Granularity {
		return d.Limit<<12 | 0xfff
	}
	return d.Limit
}

// ByteSize returns the segment size in bytes (EffectiveLimit + 1).
func (d Descriptor) ByteSize() uint32 { return d.EffectiveLimit() + 1 }

// NewDataDescriptor builds a writable, present data-segment descriptor
// covering [base, base+size). Segments of 1 MiB or less are byte-granular.
// Larger segments set the granularity bit; per §3.5 the limit is rounded up
// to the minimum multiple of 4 KiB covering size, and callers that need
// byte-exact upper bounds must align the end of the object with the end of
// the segment. Size zero is rejected.
func NewDataDescriptor(base, size uint32) (Descriptor, error) {
	if size == 0 {
		return Descriptor{}, fmt.Errorf("x86seg: zero-size segment at base %#x", base)
	}
	d := Descriptor{
		Base:     base,
		Present:  true,
		DPL:      3,
		Kind:     KindData,
		Writable: true,
	}
	if size-1 <= MaxByteLimit {
		d.Limit = size - 1
		return d, nil
	}
	// Round up to whole pages; the limit field counts 4 KiB units.
	pages := (uint64(size) + PageGranule - 1) / PageGranule
	if pages > 1<<20 {
		return Descriptor{}, fmt.Errorf("x86seg: segment size %d exceeds 4 GiB addressing", size)
	}
	d.Granularity = true
	d.Limit = uint32(pages - 1)
	return d, nil
}

// Check performs the segment limit check the hardware applies to a memory
// reference of the given size (in bytes) at the given offset. It returns a
// *Fault if any byte of the access lies outside the segment, if the segment
// is not present, or if a write targets a read-only segment.
func (d Descriptor) Check(offset uint32, size uint32, write bool) error {
	if !d.Present {
		return &Fault{Code: FaultNotPresent, Offset: offset}
	}
	if d.Kind == KindCallGate {
		return &Fault{Code: FaultGP, Offset: offset, Detail: "data access through call gate descriptor"}
	}
	if write && (d.Kind == KindCode || !d.Writable) {
		// Code segments are never writable; data segments honour the W bit.
		return &Fault{Code: FaultGP, Offset: offset, Detail: "write to read-only segment"}
	}
	if size == 0 {
		size = 1
	}
	limit := d.EffectiveLimit()
	// offset+size-1 must not wrap and must stay within the limit.
	end := uint64(offset) + uint64(size) - 1
	if end > uint64(limit) {
		return &Fault{
			Code:   FaultGP,
			Offset: offset,
			Detail: fmt.Sprintf("limit check: offset %#x size %d exceeds limit %#x", offset, size, limit),
		}
	}
	return nil
}

func (d Descriptor) String() string {
	g := ""
	if d.Granularity {
		g = " G"
	}
	return fmt.Sprintf("%s base=%#x limit=%#x%s dpl=%d", d.Kind, d.Base, d.EffectiveLimit(), g, d.DPL)
}
