package x86seg

// tableImage is a frozen copy of a DescriptorTable's contents up to its
// high-water mark — the only slots that can differ from a fresh table.
type tableImage struct {
	entries []Descriptor
	valid   []bool
	limit   int
}

func captureTable(t *DescriptorTable) tableImage {
	return tableImage{
		entries: append([]Descriptor(nil), t.entries[:t.maxSet]...),
		valid:   append([]bool(nil), t.valid[:t.maxSet]...),
		limit:   t.limit,
	}
}

// restoreInto rewrites t to exactly the captured state; t may hold
// arbitrary prior contents (Reset bounds the clearing to t's own
// high-water mark).
func (img tableImage) restoreInto(t *DescriptorTable) {
	t.Reset()
	copy(t.entries[:], img.entries)
	copy(t.valid[:], img.valid)
	t.maxSet = len(img.entries)
	t.limit = img.limit
}

// MMUImage is a frozen copy of an MMU's architectural state: both
// descriptor tables and all six segment registers (visible selectors
// and hidden descriptor caches, including the precomputed fast-path
// thresholds). Captured once, restorable into any MMU.
type MMUImage struct {
	gdt  tableImage
	ldt  tableImage
	regs [NumSegRegs]segRegister
}

// Capture freezes the MMU's current state.
func (m *MMU) Capture() *MMUImage {
	return &MMUImage{
		gdt:  captureTable(m.gdt),
		ldt:  captureTable(m.ldt),
		regs: m.regs,
	}
}

// RestoreInto returns m to exactly the captured state, in place. The
// generation counter advances (never rewinds), invalidating any state
// callers cached against the old generation.
func (img *MMUImage) RestoreInto(m *MMU) {
	img.gdt.restoreInto(m.gdt)
	img.ldt.restoreInto(m.ldt)
	m.regs = img.regs
	m.gen++
}
