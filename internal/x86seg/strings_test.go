package x86seg

import (
	"strings"
	"testing"
)

// String renderings appear in fault messages and disassembly listings;
// pin their formats.

func TestStringerFormats(t *testing.T) {
	if got := GDT.String(); got != "GDT" {
		t.Errorf("GDT.String() = %q", got)
	}
	if got := LDT.String(); got != "LDT" {
		t.Errorf("LDT.String() = %q", got)
	}
	if got := Table(0).String(); !strings.Contains(got, "Table(") {
		t.Errorf("unknown table String() = %q", got)
	}
	if got := KindData.String(); got != "data" {
		t.Errorf("KindData = %q", got)
	}
	if got := KindCode.String(); got != "code" {
		t.Errorf("KindCode = %q", got)
	}
	if got := KindCallGate.String(); got != "call-gate" {
		t.Errorf("KindCallGate = %q", got)
	}
	if got := Kind(99).String(); !strings.Contains(got, "Kind(") {
		t.Errorf("unknown kind = %q", got)
	}
	if got := FaultGP.String(); got != "#GP" {
		t.Errorf("FaultGP = %q", got)
	}
	if got := FaultNotPresent.String(); got != "#NP" {
		t.Errorf("FaultNotPresent = %q", got)
	}
	if got := FaultCode(42).String(); !strings.Contains(got, "FaultCode(") {
		t.Errorf("unknown fault code = %q", got)
	}
	for i, want := range []string{"ES", "CS", "SS", "DS", "FS", "GS"} {
		if got := SegReg(i).String(); got != want {
			t.Errorf("SegReg(%d) = %q, want %q", i, got, want)
		}
	}
	if got := SegReg(9).String(); !strings.Contains(got, "SegReg(") {
		t.Errorf("unknown seg reg = %q", got)
	}
}

func TestSelectorString(t *testing.T) {
	if got := NewSelector(0, GDT, 0).String(); got != "null-selector" {
		t.Errorf("null selector String() = %q", got)
	}
	got := NewSelector(7, LDT, 3).String()
	if !strings.Contains(got, "LDT[7]") || !strings.Contains(got, "rpl3") {
		t.Errorf("selector String() = %q", got)
	}
}

func TestDescriptorString(t *testing.T) {
	d, err := NewDataDescriptor(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	s := d.String()
	for _, frag := range []string{"data", "base=0x1000", "limit=0x3f"} {
		if !strings.Contains(s, frag) {
			t.Errorf("descriptor String() = %q, missing %q", s, frag)
		}
	}
	big, err := NewDataDescriptor(0, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(big.String(), " G ") {
		t.Errorf("page-granular descriptor must show the G bit: %q", big.String())
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Code: FaultGP, Selector: NewSelector(3, LDT, 3), Offset: 0x40, Detail: "limit check"}
	msg := f.Error()
	for _, frag := range []string{"#GP", "0x40", "LDT[3]", "limit check"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("fault message %q missing %q", msg, frag)
		}
	}
}

func TestDescriptorSizeOverflow(t *testing.T) {
	// A segment can never exceed the 32-bit space; the constructor's
	// page-count guard is unreachable through uint32 sizes but the
	// zero-size case is.
	if _, err := NewDataDescriptor(10, 0); err == nil {
		t.Fatal("zero size must be rejected")
	}
}

func TestWriteThroughCodeSegmentFaults(t *testing.T) {
	m := NewMMU()
	code, err := NewDataDescriptor(0, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	code.Kind = KindCode
	code.Writable = false
	if err := m.GDT().Set(5, code); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(ES, NewSelector(5, GDT, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ES, 0, 4, true); err == nil {
		t.Fatal("write through a read-only code segment must fault")
	}
}
