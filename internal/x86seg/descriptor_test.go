package x86seg

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewDataDescriptorByteGranular(t *testing.T) {
	tests := []struct {
		name string
		base uint32
		size uint32
	}{
		{name: "one byte", base: 0x1000, size: 1},
		{name: "100 bytes", base: 0x2000, size: 100},
		{name: "exactly 1MiB", base: 0, size: 1 << 20},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := NewDataDescriptor(tt.base, tt.size)
			if err != nil {
				t.Fatal(err)
			}
			if d.Granularity {
				t.Error("segments <= 1 MiB must be byte-granular")
			}
			if got := d.ByteSize(); got != tt.size {
				t.Errorf("ByteSize = %d, want %d", got, tt.size)
			}
			if got := d.EffectiveLimit(); got != tt.size-1 {
				t.Errorf("EffectiveLimit = %#x, want %#x", got, tt.size-1)
			}
		})
	}
}

func TestNewDataDescriptorPageGranular(t *testing.T) {
	// 1 MiB + 1 byte forces the G bit; limit rounds up to 4 KiB units (§3.5).
	d, err := NewDataDescriptor(0x100000, 1<<20+1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Granularity {
		t.Fatal("segment > 1 MiB must set the granularity bit")
	}
	// Rounded size: 257 pages.
	if got := d.ByteSize(); got != 257*PageGranule {
		t.Fatalf("ByteSize = %d, want %d", got, 257*PageGranule)
	}
}

func TestNewDataDescriptorZeroSize(t *testing.T) {
	if _, err := NewDataDescriptor(0, 0); err == nil {
		t.Fatal("zero-size segment must be rejected")
	}
}

func TestNewDataDescriptorMax(t *testing.T) {
	d, err := NewDataDescriptor(0, 0xffffffff)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.EffectiveLimit(); got != 0xffffffff {
		t.Fatalf("EffectiveLimit = %#x, want 0xffffffff", got)
	}
}

func TestLimitCheck(t *testing.T) {
	d, err := NewDataDescriptor(0x1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		offset uint32
		size   uint32
		wantOK bool
	}{
		{name: "first byte", offset: 0, size: 1, wantOK: true},
		{name: "last byte", offset: 99, size: 1, wantOK: true},
		{name: "last word", offset: 96, size: 4, wantOK: true},
		{name: "one past end", offset: 100, size: 1, wantOK: false},
		{name: "word straddling end", offset: 97, size: 4, wantOK: false},
		{name: "far out", offset: 0xffffffff, size: 1, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := d.Check(tt.offset, tt.size, false)
			if ok := err == nil; ok != tt.wantOK {
				t.Fatalf("Check(%#x, %d) err = %v, want ok=%v", tt.offset, tt.size, err, tt.wantOK)
			}
			if err != nil {
				var f *Fault
				if !errors.As(err, &f) || f.Code != FaultGP {
					t.Fatalf("limit violation must be #GP, got %v", err)
				}
			}
		})
	}
}

// TestGranularityLowerBoundSlack reproduces the §3.5 / Figure 2 property:
// for a page-granular segment, the limit check ignores the low 12 bits of
// the offset, so the upper bound is byte-exact only if the array end is
// aligned with the segment end, and up to 4 KiB of slack exists at the
// low end of the first page.
func TestGranularityLowerBoundSlack(t *testing.T) {
	size := uint32(1<<20 + 100) // > 1 MiB: needs G bit; rounds to 257 pages
	d, err := NewDataDescriptor(0, size)
	if err != nil {
		t.Fatal(err)
	}
	segBytes := d.ByteSize()
	if segBytes != 257*PageGranule {
		t.Fatalf("segment rounds to %d bytes, want %d", segBytes, 257*PageGranule)
	}
	// Everything below the rounded segment size passes — including the
	// (segBytes - size) bytes that do not belong to the array. That slack
	// is strictly less than one page.
	slack := segBytes - size
	if slack >= PageGranule {
		t.Fatalf("slack %d must be < one page", slack)
	}
	if err := d.Check(segBytes-1, 1, false); err != nil {
		t.Errorf("offset at segment end must pass: %v", err)
	}
	if err := d.Check(segBytes, 1, false); err == nil {
		t.Error("offset one past rounded segment must fault")
	}
	// With end-alignment (§3.5): place the array so its last byte is the
	// segment's last byte; the upper bound check is then byte-exact.
	arrayStart := segBytes - size
	if err := d.Check(arrayStart+size-1, 1, false); err != nil {
		t.Errorf("last array byte must pass: %v", err)
	}
	if err := d.Check(arrayStart+size, 1, false); err == nil {
		t.Error("one past end-aligned array must fault (upper bound exact)")
	}
	// The lower bound is NOT exact: offsets in [0, arrayStart) pass the
	// hardware check even though they precede the array.
	if arrayStart > 0 {
		if err := d.Check(0, 1, false); err != nil {
			t.Errorf("lower-bound slack: offset 0 passes the hardware check: %v", err)
		}
	}
}

func TestReadOnlyWriteFaults(t *testing.T) {
	d, err := NewDataDescriptor(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Writable = false
	if err := d.Check(0, 4, false); err != nil {
		t.Fatalf("read from read-only segment must pass: %v", err)
	}
	if err := d.Check(0, 4, true); err == nil {
		t.Fatal("write to read-only segment must fault")
	}
}

func TestNotPresentFaults(t *testing.T) {
	d, err := NewDataDescriptor(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	d.Present = false
	err = d.Check(0, 1, false)
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultNotPresent {
		t.Fatalf("want #NP, got %v", err)
	}
}

func TestCallGateDataAccessFaults(t *testing.T) {
	d := Descriptor{Present: true, Kind: KindCallGate, GateTarget: 1}
	if err := d.Check(0, 4, false); err == nil {
		t.Fatal("data access through a call gate must fault")
	}
}

// TestQuickDescriptorCoversExactRange: for byte-granular segments every
// offset below size passes and every offset at or beyond size faults.
func TestQuickDescriptorCoversExactRange(t *testing.T) {
	f := func(base uint32, sz uint16, probe uint32) bool {
		size := uint32(sz)%MaxByteLimit + 1
		d, err := NewDataDescriptor(base, size)
		if err != nil {
			return false
		}
		inBounds := probe < size
		return (d.Check(probe, 1, true) == nil) == inBounds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGranularSegmentContainsArray: a page-granular descriptor always
// covers the requested size, and overshoots by less than one page.
func TestQuickGranularSegmentContainsArray(t *testing.T) {
	f := func(extra uint32) bool {
		size := uint32(1<<20) + extra%(1<<24) + 1
		d, err := NewDataDescriptor(0, size)
		if err != nil {
			return false
		}
		got := d.ByteSize()
		return got >= size && got-size < PageGranule
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
