package x86seg

import (
	"testing"
	"testing/quick"
)

func TestSelectorFields(t *testing.T) {
	tests := []struct {
		name  string
		index int
		table Table
		rpl   int
	}{
		{name: "gdt entry 1", index: 1, table: GDT, rpl: 0},
		{name: "ldt entry 7", index: 7, table: LDT, rpl: 3},
		{name: "max index", index: TableEntries - 1, table: LDT, rpl: 2},
		{name: "zero ldt", index: 0, table: LDT, rpl: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := NewSelector(tt.index, tt.table, tt.rpl)
			if got := s.Index(); got != tt.index {
				t.Errorf("Index = %d, want %d", got, tt.index)
			}
			if got := s.Table(); got != tt.table {
				t.Errorf("Table = %v, want %v", got, tt.table)
			}
			if got := s.RPL(); got != tt.rpl {
				t.Errorf("RPL = %d, want %d", got, tt.rpl)
			}
		})
	}
}

func TestNullSelector(t *testing.T) {
	if s := NewSelector(0, GDT, 0); !s.IsNull() {
		t.Error("GDT[0] rpl 0 should be null")
	}
	if s := NewSelector(0, GDT, 3); !s.IsNull() {
		t.Error("RPL does not affect nullness")
	}
	if s := NewSelector(0, LDT, 0); s.IsNull() {
		t.Error("LDT[0] is not a null selector")
	}
	if s := NewSelector(1, GDT, 0); s.IsNull() {
		t.Error("GDT[1] is not a null selector")
	}
}

func TestSelectorIndexMasked(t *testing.T) {
	s := NewSelector(TableEntries+5, GDT, 0)
	if got := s.Index(); got != 5 {
		t.Fatalf("Index masked to 13 bits: got %d, want 5", got)
	}
}

func TestQuickSelectorRoundTrip(t *testing.T) {
	f := func(index uint16, ldt bool, rpl uint8) bool {
		idx := int(index) % TableEntries
		tbl := GDT
		if ldt {
			tbl = LDT
		}
		r := int(rpl) % 4
		s := NewSelector(idx, tbl, r)
		return s.Index() == idx && s.Table() == tbl && s.RPL() == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
