package x86seg

import "testing"

// Boundary tests at the three corners of the descriptor encoding: the
// largest byte-granular segment (exactly 1 MiB), the first segment
// forced onto the granularity bit (1 MiB + 1, with its §3.5 round-up
// slack), and the top of the 32-bit address space, where a naive uint32
// end-of-access computation would wrap to 0 and let an overflow pass.

// TestBoundaryExactOneMiB: a segment of exactly 1 MiB is the last one
// the 20-bit limit field encodes byte-granularly. Its bound check must
// be byte-exact: the final byte is in, the byte after is out.
func TestBoundaryExactOneMiB(t *testing.T) {
	const size = uint32(1) << 20
	d, err := NewDataDescriptor(0x1000, size)
	if err != nil {
		t.Fatal(err)
	}
	if d.Granularity {
		t.Fatal("exactly 1 MiB must stay byte-granular, got G=1")
	}
	if d.Limit != MaxByteLimit {
		t.Fatalf("Limit = %#x, want MaxByteLimit %#x", d.Limit, uint32(MaxByteLimit))
	}
	if got := d.EffectiveLimit(); got != size-1 {
		t.Fatalf("EffectiveLimit = %#x, want %#x", got, size-1)
	}
	if err := d.Check(size-1, 1, false); err != nil {
		t.Fatalf("last byte of a 1 MiB segment must be accessible: %v", err)
	}
	if err := d.Check(size-4, 4, true); err != nil {
		t.Fatalf("word ending on the last byte must be accessible: %v", err)
	}
	if err := d.Check(size, 1, false); err == nil {
		t.Fatal("first byte past 1 MiB must fault")
	}
	if err := d.Check(size-1, 2, false); err == nil {
		t.Fatal("access straddling the 1 MiB limit must fault")
	}
}

// TestBoundaryOneMiBPlusOne: one byte more than 1 MiB forces the G bit.
// The limit is rounded up to whole 4 KiB pages (257 of them), so the
// hardware check ignores the low 12 bits of the offset and the segment
// admits up to 4095 bytes past the object's end — exactly the §3.5
// lower-bound slack the paper bounds at one page.
func TestBoundaryOneMiBPlusOne(t *testing.T) {
	const size = uint32(1)<<20 + 1
	d, err := NewDataDescriptor(0, size)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Granularity {
		t.Fatal("1 MiB + 1 must set the granularity bit")
	}
	if d.Limit != 256 {
		t.Fatalf("Limit = %d pages - 1, want 256 (257 pages of 4 KiB)", d.Limit)
	}
	const wantEff = 257*PageGranule - 1 // 1052671
	if got := d.EffectiveLimit(); got != wantEff {
		t.Fatalf("EffectiveLimit = %d, want %d", got, uint32(wantEff))
	}
	// The object's own bytes are accessible...
	if err := d.Check(size-1, 1, false); err != nil {
		t.Fatalf("last object byte must be accessible: %v", err)
	}
	// ...and so is the round-up slack, up to the segment's page-aligned
	// end — the checking-granularity loss the paper accepts.
	if err := d.Check(wantEff, 1, true); err != nil {
		t.Fatalf("round-up slack (%d bytes) must be inside the segment: %v", wantEff-(size-1), err)
	}
	if err := d.Check(wantEff+1, 1, false); err == nil {
		t.Fatal("first byte past the rounded-up segment must fault")
	}
}

// TestBoundaryNearFourGiB: a maximal segment reaching the top of the
// 32-bit space. The end-of-access computation offset+size-1 overflows
// uint32 for accesses at the very top; the check must do it in 64 bits,
// or an out-of-bounds access at offset 0xFFFFFFFF would wrap to end=0,
// pass the limit check, and silently corrupt address 0.
func TestBoundaryNearFourGiB(t *testing.T) {
	d, err := NewDataDescriptor(0, 0xFFFFFFFF)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Granularity {
		t.Fatal("a ~4 GiB segment must be page-granular")
	}
	if got := d.EffectiveLimit(); got != 0xFFFFFFFF {
		t.Fatalf("EffectiveLimit = %#x, want 0xFFFFFFFF", got)
	}
	if err := d.Check(0xFFFFFFFC, 4, true); err != nil {
		t.Fatalf("word ending on the last addressable byte must pass: %v", err)
	}
	if err := d.Check(0xFFFFFFFF, 1, false); err != nil {
		t.Fatalf("last addressable byte must pass: %v", err)
	}
	// offset+size-1 = 0x100000000: wraps to 0 in uint32 arithmetic.
	if err := d.Check(0xFFFFFFFF, 2, false); err == nil {
		t.Fatal("access wrapping past 4 GiB must fault, not wrap to offset 0")
	}
	if err := d.Check(0xFFFFFFF0, 0x20, false); err == nil {
		t.Fatal("multi-byte access spilling past 4 GiB must fault")
	}
}

// TestBoundarySizeRejections pins the constructor's edges around the
// same corners: zero size is rejected, and every size from 1 byte to
// the uint32 maximum encodes without error.
func TestBoundarySizeRejections(t *testing.T) {
	if _, err := NewDataDescriptor(0, 0); err == nil {
		t.Fatal("zero-size segment must be rejected")
	}
	for _, size := range []uint32{1, MaxByteLimit, MaxByteLimit + 1, MaxByteLimit + 2, 0xFFFFF000, 0xFFFFFFFF} {
		d, err := NewDataDescriptor(0, size)
		if err != nil {
			t.Fatalf("size %#x: %v", size, err)
		}
		// The encoded segment always covers the object: ByteSize >= size.
		if d.ByteSize() != 0 && d.ByteSize() < size {
			t.Fatalf("size %#x: ByteSize %#x does not cover the object", size, d.ByteSize())
		}
	}
}
