package x86seg

import "fmt"

// DescriptorTable is a GDT or LDT: an array of up to TableEntries segment
// descriptors plus the table limit the GDTR/LDTR register would hold. The
// processor refuses selectors that index beyond the table limit.
type DescriptorTable struct {
	name    string
	entries [TableEntries]Descriptor
	valid   [TableEntries]bool
	limit   int // highest valid index; -1 for an empty table
	maxSet  int // high-water mark: 1 + highest index ever Set, bounds Reset
}

// NewTable returns an empty descriptor table with the full 8192-entry
// limit. name is used in error messages ("GDT", "LDT").
func NewTable(name string) *DescriptorTable {
	return &DescriptorTable{name: name, limit: TableEntries - 1}
}

// SetLimit restricts the table to indices <= limit, mirroring the 16-bit
// limit field of GDTR/LDTR.
func (t *DescriptorTable) SetLimit(limit int) error {
	if limit < -1 || limit >= TableEntries {
		return fmt.Errorf("x86seg: %s limit %d out of range", t.name, limit)
	}
	t.limit = limit
	return nil
}

// Limit returns the current table limit (highest addressable index).
func (t *DescriptorTable) Limit() int { return t.limit }

// Set installs a descriptor at the given index. This models the kernel
// writing the in-memory table; segment registers that have already cached
// the old descriptor are NOT refreshed — software must reload them, exactly
// as on real hardware (§3.1).
func (t *DescriptorTable) Set(index int, d Descriptor) error {
	if index < 0 || index >= TableEntries {
		return fmt.Errorf("x86seg: %s index %d out of range", t.name, index)
	}
	t.entries[index] = d
	t.valid[index] = true
	if index >= t.maxSet {
		t.maxSet = index + 1
	}
	return nil
}

// Clear removes the descriptor at index.
func (t *DescriptorTable) Clear(index int) error {
	if index < 0 || index >= TableEntries {
		return fmt.Errorf("x86seg: %s index %d out of range", t.name, index)
	}
	t.entries[index] = Descriptor{}
	t.valid[index] = false
	return nil
}

// Lookup fetches the descriptor a selector refers to, applying the table
// limit check the processor performs against GDTR/LDTR.
func (t *DescriptorTable) Lookup(sel Selector) (Descriptor, error) {
	idx := sel.Index()
	if idx > t.limit {
		return Descriptor{}, &Fault{
			Code: FaultGP, Selector: sel,
			Detail: fmt.Sprintf("selector index %d beyond %s limit %d", idx, t.name, t.limit),
		}
	}
	if !t.valid[idx] {
		return Descriptor{}, &Fault{
			Code: FaultGP, Selector: sel,
			Detail: fmt.Sprintf("%s entry %d not installed", t.name, idx),
		}
	}
	return t.entries[idx], nil
}

// InUse reports whether index currently holds a descriptor.
func (t *DescriptorTable) InUse(index int) bool {
	return index >= 0 && index < TableEntries && t.valid[index]
}

// Count returns the number of installed descriptors.
func (t *DescriptorTable) Count() int {
	n := 0
	for _, v := range t.valid {
		if v {
			n++
		}
	}
	return n
}

// Reset empties the table in place and restores the full limit, exactly
// as NewTable(name) would. Only the slots below the high-water mark are
// cleared, so recycling a table costs proportional to how much of it was
// ever used.
func (t *DescriptorTable) Reset() {
	clear(t.entries[:t.maxSet])
	clear(t.valid[:t.maxSet])
	t.maxSet = 0
	t.limit = TableEntries - 1
}
