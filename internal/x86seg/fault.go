package x86seg

import "fmt"

// FaultCode identifies the class of a segmentation fault.
type FaultCode int

// Fault codes raised by the segmentation hardware model.
const (
	// FaultGP is a general-protection fault: limit violation, write to a
	// read-only segment, use of a null selector, or a selector index
	// beyond the descriptor table limit.
	FaultGP FaultCode = iota + 1
	// FaultNotPresent is raised when a reference goes through a
	// descriptor whose present bit is clear.
	FaultNotPresent
)

func (c FaultCode) String() string {
	switch c {
	case FaultGP:
		return "#GP"
	case FaultNotPresent:
		return "#NP"
	default:
		return fmt.Sprintf("FaultCode(%d)", int(c))
	}
}

// Fault is the error produced when a memory reference fails a segmentation
// check. In the Cash system a #GP on an array segment *is* the detected
// array bound violation.
type Fault struct {
	Code     FaultCode
	Selector Selector // selector in use, when known
	Offset   uint32   // offending offset within the segment
	Detail   string
}

func (f *Fault) Error() string {
	msg := fmt.Sprintf("%s at offset %#x", f.Code, f.Offset)
	if !f.Selector.IsNull() || f.Selector != 0 {
		msg += " via " + f.Selector.String()
	}
	if f.Detail != "" {
		msg += ": " + f.Detail
	}
	return msg
}
