package x86seg

import (
	"errors"
	"testing"
)

func newTestMMU(t *testing.T) *MMU {
	t.Helper()
	m := NewMMU()
	// Flat data segment in the GDT at entry 2, like the Linux layout.
	flat := mustDescriptor(t, 0, 0xffffffff)
	if err := m.GDT().Set(2, flat); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(DS, NewSelector(2, GDT, 3)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTranslateFlatSegment(t *testing.T) {
	m := newTestMMU(t)
	lin, err := m.Translate(DS, 0x1234, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if lin != 0x1234 {
		t.Fatalf("Translate = %#x, want 0x1234", lin)
	}
}

func TestTranslateArraySegment(t *testing.T) {
	m := newTestMMU(t)
	// A 40-byte array at linear 0x8000, as Cash would set it up.
	arr := mustDescriptor(t, 0x8000, 40)
	if err := m.LDT().Set(1, arr); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(GS, NewSelector(1, LDT, 3)); err != nil {
		t.Fatal(err)
	}
	// In-bounds element 9 (offset 36, word access).
	lin, err := m.Translate(GS, 36, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if lin != 0x8000+36 {
		t.Fatalf("Translate = %#x, want %#x", lin, 0x8000+36)
	}
	// Element 10 is the classic off-by-one overflow: #GP.
	_, err = m.Translate(GS, 40, 4, true)
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultGP {
		t.Fatalf("off-by-one access: want #GP, got %v", err)
	}
	if f.Selector != NewSelector(1, LDT, 3) {
		t.Errorf("fault selector = %v, want LDT[1]", f.Selector)
	}
}

func TestNullSelectorLoadAndUse(t *testing.T) {
	m := NewMMU()
	null := NewSelector(0, GDT, 0)
	// Loading null into a data register succeeds.
	if err := m.Load(ES, null); err != nil {
		t.Fatalf("loading null into ES must succeed: %v", err)
	}
	// Using it faults.
	if _, err := m.Translate(ES, 0, 1, false); err == nil {
		t.Fatal("reference through null-loaded ES must fault")
	}
	// Loading null into CS or SS faults immediately.
	if err := m.Load(CS, null); err == nil {
		t.Fatal("loading null into CS must fault")
	}
	if err := m.Load(SS, null); err == nil {
		t.Fatal("loading null into SS must fault")
	}
}

func TestUnloadedRegisterFaults(t *testing.T) {
	m := NewMMU()
	if _, err := m.Translate(FS, 0, 4, false); err == nil {
		t.Fatal("reference through never-loaded FS must fault")
	}
}

func TestLoadValidatesDescriptor(t *testing.T) {
	m := NewMMU()
	if err := m.Load(GS, NewSelector(9, LDT, 3)); err == nil {
		t.Fatal("loading a selector with no descriptor must fault")
	}
	d := mustDescriptor(t, 0, 16)
	d.Present = false
	if err := m.LDT().Set(9, d); err != nil {
		t.Fatal(err)
	}
	err := m.Load(GS, NewSelector(9, LDT, 3))
	var f *Fault
	if !errors.As(err, &f) || f.Code != FaultNotPresent {
		t.Fatalf("loading not-present descriptor: want #NP, got %v", err)
	}
}

// TestShadowRegisterStaleness models the descriptor-cache behaviour the
// paper describes in §3.1: after the in-memory descriptor is modified, a
// loaded segment register keeps using the old cached copy until software
// reloads it.
func TestShadowRegisterStaleness(t *testing.T) {
	m := NewMMU()
	d := mustDescriptor(t, 0x1000, 100)
	if err := m.LDT().Set(3, d); err != nil {
		t.Fatal(err)
	}
	sel := NewSelector(3, LDT, 3)
	if err := m.Load(FS, sel); err != nil {
		t.Fatal(err)
	}
	// Shrink the segment in the table. The cached copy is unaffected.
	small := mustDescriptor(t, 0x1000, 10)
	if err := m.LDT().Set(3, small); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(FS, 50, 1, false); err != nil {
		t.Fatalf("stale cache must still allow offset 50: %v", err)
	}
	// After an explicit reload the new limit applies.
	if err := m.Load(FS, sel); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(FS, 50, 1, false); err == nil {
		t.Fatal("after reload, offset 50 must fault against limit 9")
	}
}

func TestSetLDTSwitchesTable(t *testing.T) {
	m := NewMMU()
	ldt2 := NewTable("LDT2")
	d := mustDescriptor(t, 0x9000, 32)
	if err := ldt2.Set(1, d); err != nil {
		t.Fatal(err)
	}
	// Not visible before the switch.
	if err := m.Load(GS, NewSelector(1, LDT, 3)); err == nil {
		t.Fatal("descriptor in a non-current LDT must not resolve")
	}
	m.SetLDT(ldt2)
	if err := m.Load(GS, NewSelector(1, LDT, 3)); err != nil {
		t.Fatalf("after SetLDT the descriptor must resolve: %v", err)
	}
	if m.LDT() != ldt2 {
		t.Error("LDT() must return the switched table")
	}
}

func TestSelectorVisiblePart(t *testing.T) {
	m := newTestMMU(t)
	want := NewSelector(2, GDT, 3)
	if got := m.Selector(DS); got != want {
		t.Fatalf("Selector(DS) = %v, want %v", got, want)
	}
	if _, ok := m.Cached(DS); !ok {
		t.Fatal("Cached(DS) must report a loaded descriptor")
	}
	if _, ok := m.Cached(GS); ok {
		t.Fatal("Cached(GS) must report unloaded")
	}
}

func TestWriteProtection(t *testing.T) {
	m := NewMMU()
	d := mustDescriptor(t, 0, 64)
	d.Writable = false
	if err := m.GDT().Set(4, d); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(ES, NewSelector(4, GDT, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Translate(ES, 0, 4, false); err != nil {
		t.Fatalf("read must pass: %v", err)
	}
	if _, err := m.Translate(ES, 0, 4, true); err == nil {
		t.Fatal("write to read-only segment must fault")
	}
}
