package serve

import (
	"context"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cash/internal/core"
)

// violationKernel trips a bound violation under the cash strategy.
const violationKernel = `
int a[4];
void main() { for (int i = 0; i < 8; i++) a[i] = i; }`

func mustOpen(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// storeFiles lists the on-disk store's entry files, sorted.
func storeFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(p, ".ent") {
			files = append(files, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	return files
}

// TestPersistRestartWarm pins the tentpole contract end to end: a second
// engine over the same store directory — a restarted process — serves
// the first engine's compiled artifacts and memoised run outcomes from
// disk, byte-identical to a cold build, without recompiling.
func TestPersistRestartWarm(t *testing.T) {
	dir := t.TempDir()

	eng1 := mustOpen(t, EngineConfig{StoreDir: dir})
	art1 := mustBuild(t, eng1, heapKernel, core.ModeCash, core.Options{})
	res1 := mustRun(t, eng1, art1)
	vart1 := mustBuild(t, eng1, violationKernel, core.ModeCash, core.Options{})
	vres1 := mustRun(t, eng1, vart1)
	if vres1.Violation == nil {
		t.Fatal("expected a violation")
	}
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}
	if len(storeFiles(t, dir)) == 0 {
		t.Fatal("first engine persisted nothing")
	}

	hits := counter("store.disk.hits")
	eng2 := mustOpen(t, EngineConfig{StoreDir: dir})
	art2 := mustBuild(t, eng2, heapKernel, core.ModeCash, core.Options{})
	if art2.AST != nil {
		t.Fatal("warm build has an AST: it was recompiled, not loaded from disk")
	}
	res2 := mustRun(t, eng2, art2)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("warm result differs from the first process's:\n%+v\nvs\n%+v", res1, res2)
	}
	vres2 := mustRun(t, eng2, mustBuild(t, eng2, violationKernel, core.ModeCash, core.Options{}))
	if vres2.Violation == nil || vres2.Violation.Error() != vres1.Violation.Error() {
		t.Fatalf("violation did not survive the restart: %v vs %v", vres2.Violation, vres1.Violation)
	}
	if got := counter("store.disk.hits") - hits; got < 2 {
		t.Fatalf("disk hits delta = %d, want >= 2 (artifact + run)", got)
	}

	// Ground truth: the disk-served outcome equals a from-scratch engine
	// with caching and pooling disabled.
	cold := mustOpen(t, EngineConfig{CacheBytes: -1, PoolSize: -1})
	resCold := mustRun(t, cold, mustBuild(t, cold, heapKernel, core.ModeCash, core.Options{}))
	if !reflect.DeepEqual(res2, resCold) {
		t.Fatalf("disk-served result differs from cache-disabled engine:\n%+v\nvs\n%+v", res2, resCold)
	}
}

// TestPersistBuildErrorNotPersisted pins that a failing build poisons no
// layer: the disk store stays empty, and the next identical request
// compiles again (and can succeed if the input is fixed).
func TestPersistBuildErrorNotPersisted(t *testing.T) {
	dir := t.TempDir()
	eng := mustOpen(t, EngineConfig{StoreDir: dir})
	const bad = `void main( { }`
	if _, err := eng.BuildContext(context.Background(), bad, core.ModeCash, core.Options{}); err == nil {
		t.Fatal("bad kernel built successfully")
	}
	if files := storeFiles(t, dir); len(files) != 0 {
		t.Fatalf("failing build left %d store entries: %v", len(files), files)
	}
	// The failure is not a cached verdict: the same request builds again.
	if _, err := eng.BuildContext(context.Background(), bad, core.ModeCash, core.Options{}); err == nil {
		t.Fatal("bad kernel built successfully on retry")
	}
	mustBuild(t, eng, sumKernel, core.ModeCash, core.Options{})
	if len(storeFiles(t, dir)) == 0 {
		t.Fatal("successful build after a failure persisted nothing")
	}
}

// TestPersistCorruptionIsMissNotError pins crash-safety degradation: a
// truncated or bit-flipped store entry is a cache miss — the engine
// silently recompiles and overwrites — never an error or wrong data.
func TestPersistCorruptionIsMissNotError(t *testing.T) {
	dir := t.TempDir()
	eng1 := mustOpen(t, EngineConfig{StoreDir: dir})
	res1 := mustRun(t, eng1, mustBuild(t, eng1, heapKernel, core.ModeCash, core.Options{}))
	if err := eng1.Close(); err != nil {
		t.Fatal(err)
	}

	files := storeFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("want at least artifact + run entries, got %v", files)
	}
	// Truncate the first entry mid-header and flip a payload byte in the
	// last — both classic torn-write shapes.
	if err := os.Truncate(files[0], 17); err != nil {
		t.Fatal(err)
	}
	last := files[len(files)-1]
	blob, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-10] ^= 0xff
	if err := os.WriteFile(last, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	misses := counter("store.disk.misses")
	eng2 := mustOpen(t, EngineConfig{StoreDir: dir})
	art2 := mustBuild(t, eng2, heapKernel, core.ModeCash, core.Options{})
	res2 := mustRun(t, eng2, art2)
	if !reflect.DeepEqual(res1, res2) {
		t.Fatalf("result after corruption differs:\n%+v\nvs\n%+v", res1, res2)
	}
	if counter("store.disk.misses") == misses {
		t.Fatal("corrupted entries did not register as disk misses")
	}
}

// TestSnapshotEngineEquivalence pins the snapshot fast path at the
// serve layer: an engine cloning machines from copy-on-write snapshots
// produces results byte-identical to one building machines from
// scratch, across strategies, tiers, and violation outcomes.
func TestSnapshotEngineEquivalence(t *testing.T) {
	snapEng := mustOpen(t, EngineConfig{Snapshots: true, CacheBytes: -1})
	plain := mustOpen(t, EngineConfig{CacheBytes: -1, PoolSize: -1})
	cases := []struct {
		src  string
		mode core.Mode
		opts core.Options
	}{
		{heapKernel, core.ModeGCC, core.Options{}},
		{heapKernel, core.ModeCash, core.Options{}},
		{heapKernel, core.ModeCash, core.Options{Tier2: true}},
		{violationKernel, core.ModeCash, core.Options{}},
	}
	clones := counter("vm.snapshot.clones")
	for _, tc := range cases {
		want := mustRun(t, plain, mustBuild(t, plain, tc.src, tc.mode, tc.opts))
		art := mustBuild(t, snapEng, tc.src, tc.mode, tc.opts)
		// CacheBytes: -1 disables run memoisation, so every call below is
		// a real simulation on a fresh snapshot clone.
		for i := 0; i < 2; i++ {
			got := mustRun(t, snapEng, art)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("[%v %+v] snapshot run %d differs:\n%+v\nvs\n%+v",
					tc.mode, tc.opts, i, want, got)
			}
		}
	}
	if counter("vm.snapshot.clones") == clones {
		t.Fatal("snapshot engine never cloned a snapshot")
	}
}

// TestMemStoreReplacementAccounting is the regression test for the
// size-accounting leak: re-inserting a key replaces the old entry's
// bytes instead of adding to them, replacement never counts as an
// eviction, and budget eviction still accounts exactly.
func TestMemStoreReplacementAccounting(t *testing.T) {
	small, err := core.Build(sumKernel, core.ModeGCC, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := core.Build(heapKernel, core.ModeGCC, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	evictions := counter("serve.cache.evictions")
	s := newMemStore(1<<30, nil)
	s.PutArtifact("k", big)
	s.PutArtifact("k", small)
	if got, want := s.Bytes(), artifactSize(small); got != want {
		t.Fatalf("bytes after replacement = %d, want %d (old size leaked)", got, want)
	}
	for i := 0; i < 10; i++ {
		s.PutArtifact("k", big)
		s.PutArtifact("k", small)
	}
	if got, want := s.Bytes(), artifactSize(small); got != want {
		t.Fatalf("bytes after repeated replacement = %d, want %d", got, want)
	}
	if got := counter("serve.cache.evictions") - evictions; got != 0 {
		t.Fatalf("replacements counted as %d evictions, want 0", got)
	}

	// Budget eviction: a second entry pushes the first out, and the
	// account tracks exactly the survivor.
	tiny := newMemStore(artifactSize(big)+artifactSize(small)/2, nil)
	tiny.PutArtifact("k1", small)
	tiny.PutArtifact("k2", big)
	if got := counter("serve.cache.evictions") - evictions; got != 1 {
		t.Fatalf("evictions delta = %d, want 1", got)
	}
	if got, want := tiny.Bytes(), artifactSize(big); got != want {
		t.Fatalf("bytes after eviction = %d, want %d", got, want)
	}
	if _, ok := tiny.GetArtifact("k1"); ok {
		t.Fatal("evicted entry still served")
	}
	if _, ok := tiny.GetArtifact("k2"); !ok {
		t.Fatal("surviving entry missing")
	}
}

// benchRun measures RunContext throughput on one cached artifact with
// run memoisation off, so every iteration builds (or clones) a machine
// and simulates for real — the machine-construction fast paths are what
// separate the variants.
func benchRun(b *testing.B, cfg EngineConfig) {
	eng, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	art, err := eng.BuildContext(context.Background(), sumKernel, core.ModeCash, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunContext(context.Background(), art); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunContext(context.Background(), art); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunFreshMachine(b *testing.B) {
	benchRun(b, EngineConfig{CacheBytes: -1, PoolSize: -1})
}

func BenchmarkRunPooledMachine(b *testing.B) {
	benchRun(b, EngineConfig{CacheBytes: -1})
}

func BenchmarkRunSnapshotClone(b *testing.B) {
	benchRun(b, EngineConfig{CacheBytes: -1, Snapshots: true})
}
