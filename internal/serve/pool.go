package serve

import (
	"sync"

	"cash/internal/mem"
	"cash/internal/vm"
)

// pooledParts is one recyclable part set plus the memory geometry it
// was built for: parts only fit programs with the same geometry.
type pooledParts struct {
	g mem.Geometry
	p vm.Parts
}

// pool is the Engine's shared machine-parts pool. Reset-on-reuse
// happens inside vm.New (WithParts), so everything handed out is
// indistinguishable from freshly allocated state.
type pool struct {
	mu    sync.Mutex
	parts []pooledParts
	cap   int
}

func newPool(capacity int) *pool { return &pool{cap: capacity} }

// get removes and returns parts matching g, newest first.
func (p *pool) get(g mem.Geometry) (vm.Parts, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.parts) - 1; i >= 0; i-- {
		if p.parts[i].g == g {
			out := p.parts[i].p
			p.parts = append(p.parts[:i], p.parts[i+1:]...)
			return out, true
		}
	}
	return vm.Parts{}, false
}

// put stores parts for recycling, dropping them when the pool is full.
func (p *pool) put(g mem.Geometry, parts vm.Parts) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.parts) >= p.cap {
		return false
	}
	p.parts = append(p.parts, pooledParts{g: g, p: parts})
	return true
}

// LocalPool is a sequential single-slot machine recycler. The netsim
// resilience path uses one per mode server: its take/put sequence is a
// pure function of that server's request stream — it deliberately never
// touches the Engine's shared pool, so no cross-server timing can leak
// into the serve.pool.* counters it publishes (each server's counts are
// fixed; registry adds commute, so totals are deterministic at any
// fan-out budget). A nil LocalPool (pooling disabled) is a valid no-op.
type LocalPool struct {
	parts vm.Parts
	has   bool
	g     mem.Geometry
}

// NewLocalPool returns a fresh LocalPool, or nil when this Engine has
// pooling disabled (all methods are nil-safe, so callers use the result
// unconditionally).
func (e *Engine) NewLocalPool() *LocalPool {
	if e.pool == nil {
		return nil
	}
	return &LocalPool{}
}

// Options returns the vm options that make the next machine recycle
// this pool's parts, when the held set's geometry fits the program.
// With nothing to recycle (or a nil pool) it returns nil and the
// machine allocates fresh.
func (p *LocalPool) Options(prog *vm.Program) []vm.Option {
	if p == nil {
		return nil
	}
	g := vm.GeometryFor(prog)
	if p.has && p.g == g {
		p.has = false
		mPoolRecycled.Inc()
		return []vm.Option{vm.WithParts(p.parts)}
	}
	mPoolFresh.Inc()
	return nil
}

// Put takes the machine's parts for recycling into the local slot,
// dropping them when the slot is occupied (a mismatched-geometry set is
// parked there). Call only after the machine's last use; the parts are
// reset on their next reuse.
func (p *LocalPool) Put(m *vm.Machine) {
	if p == nil || m == nil {
		return
	}
	parts := m.Parts()
	if !p.has {
		p.parts, p.g, p.has = parts, parts.Mem.Geometry(), true
		mPoolReturned.Inc()
		return
	}
	mPoolDropped.Inc()
}
