package serve

import (
	"container/list"
	"context"
	"sync"
)

// admission bounds concurrently admitted requests with a FIFO waiter
// queue. Released slots are handed directly to the head waiter (no
// thundering herd, no barging past the queue); a waiter whose context
// is canceled removes itself, or — when the grant raced the cancel —
// passes the slot straight on. Close marks the engine closed: queued
// waiters fail with ErrEngineClosed, new acquires are rejected, and
// the closer blocks until every admitted request has released its slot.
type admission struct {
	mu       sync.Mutex
	inflight int
	waiters  list.List // of *waiter
	closed   bool
	drained  *sync.Cond // lazily bound to mu; broadcast when inflight hits 0
}

type waiter struct {
	ch      chan struct{}
	granted bool  // written under admission.mu before ch closes
	err     error // ErrEngineClosed when the engine closed under the waiter
}

// acquire takes a request slot, blocking in FIFO order when limit
// slots are in flight. It returns ctx.Err() if the context is canceled
// first, or ErrEngineClosed if the engine is (or becomes) closed.
func (e *Engine) acquire(ctx context.Context) error {
	limit := e.limit()
	a := &e.adm
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrEngineClosed
	}
	if a.inflight < limit && a.waiters.Len() == 0 {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	w := &waiter{ch: make(chan struct{})}
	el := a.waiters.PushBack(w)
	a.mu.Unlock()
	mAdmWaits.Inc()
	select {
	case <-w.ch:
		// Either the releaser handed its slot over (inflight already
		// counts it) or Close failed the wait.
		return w.err
	case <-ctx.Done():
		a.mu.Lock()
		granted := w.granted
		if !granted {
			// Remove is a no-op if Close already unlinked the waiter.
			a.waiters.Remove(el)
		}
		a.mu.Unlock()
		if granted {
			// The grant raced the cancel: we own a slot we will not use.
			e.release()
		}
		mAdmCanceled.Inc()
		return ctx.Err()
	}
}

// release frees a request slot: handed to the head waiter if one is
// queued, otherwise returned to the free count (waking a pending Close
// when the engine is draining and this was the last slot).
func (e *Engine) release() {
	a := &e.adm
	a.mu.Lock()
	if el := a.waiters.Front(); el != nil {
		w := a.waiters.Remove(el).(*waiter)
		w.granted = true
		close(w.ch)
		a.mu.Unlock()
		return
	}
	a.inflight--
	if a.closed && a.inflight == 0 && a.drained != nil {
		a.drained.Broadcast()
	}
	a.mu.Unlock()
}

// closeAndDrain transitions the admission gate to closed: queued
// waiters fail immediately with ErrEngineClosed, later acquires are
// rejected, and the call blocks until every in-flight slot is released.
// Safe to call repeatedly and from multiple goroutines; every call
// returns only once the engine is fully drained.
func (a *admission) closeAndDrain() {
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		for el := a.waiters.Front(); el != nil; el = a.waiters.Front() {
			w := a.waiters.Remove(el).(*waiter)
			w.err = ErrEngineClosed
			close(w.ch)
		}
	}
	if a.drained == nil {
		a.drained = sync.NewCond(&a.mu)
	}
	for a.inflight > 0 {
		a.drained.Wait()
	}
	a.mu.Unlock()
}
