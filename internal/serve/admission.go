package serve

import (
	"container/list"
	"context"
	"sync"
)

// admission bounds concurrently admitted requests with a FIFO waiter
// queue. Released slots are handed directly to the head waiter (no
// thundering herd, no barging past the queue); a waiter whose context
// is canceled removes itself, or — when the grant raced the cancel —
// passes the slot straight on.
type admission struct {
	mu       sync.Mutex
	inflight int
	waiters  list.List // of *waiter
}

type waiter struct {
	ch      chan struct{}
	granted bool // written under admission.mu before ch closes
}

// acquire takes a request slot, blocking in FIFO order when limit
// slots are in flight. It returns ctx.Err() if the context is canceled
// first.
func (e *Engine) acquire(ctx context.Context) error {
	limit := e.limit()
	a := &e.adm
	a.mu.Lock()
	if a.inflight < limit && a.waiters.Len() == 0 {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	w := &waiter{ch: make(chan struct{})}
	el := a.waiters.PushBack(w)
	a.mu.Unlock()
	mAdmWaits.Inc()
	select {
	case <-w.ch:
		// The releaser handed its slot over; inflight already counts it.
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		granted := w.granted
		if !granted {
			a.waiters.Remove(el)
		}
		a.mu.Unlock()
		if granted {
			// The grant raced the cancel: we own a slot we will not use.
			e.release()
		}
		mAdmCanceled.Inc()
		return ctx.Err()
	}
}

// release frees a request slot: handed to the head waiter if one is
// queued, otherwise returned to the free count.
func (e *Engine) release() {
	a := &e.adm
	a.mu.Lock()
	if el := a.waiters.Front(); el != nil {
		w := a.waiters.Remove(el).(*waiter)
		w.granted = true
		close(w.ch)
		a.mu.Unlock()
		return
	}
	a.inflight--
	a.mu.Unlock()
}
