package serve

import (
	"container/list"
	"sync"

	"cash/internal/core"
)

// Store is one layer of the engine's content-addressed cache. Keys are
// the bare build-key hashes from buildKey; artifact and run-result
// namespaces are kept distinct by every implementation (the memory
// layer prefixes "a:"/"r:" into its shared LRU, the disk layer into its
// file keys). Implementations are safe for concurrent use.
//
// A Store is a cache, not a database: Put may drop the value (budget
// eviction, unpersistable value, I/O failure) and Get may miss on a key
// that was put — callers always fall back to rebuilding/rerunning.
type Store interface {
	// GetArtifact returns the artifact cached under key, if any.
	GetArtifact(key string) (*core.Artifact, bool)
	// PutArtifact caches art under key, replacing any previous value.
	PutArtifact(key string, art *core.Artifact)
	// GetRun returns the memoised run outcome for key. The result is
	// safe for the caller to mutate (a private copy or freshly decoded).
	GetRun(key string) (*core.RunResult, error, bool)
	// PutRun memoises a run outcome. First writer wins: a key that is
	// already present keeps its existing value.
	PutRun(key string, res *core.RunResult, runErr error)
	// Bytes returns the layer's accounted size (layered stores sum
	// their layers).
	Bytes() int64
	// Close releases layer resources. The engine calls it after drain.
	Close() error
}

// memStore is the in-memory layer: artifacts and run results in one
// size-bounded LRU, exactly the cache the engine had before the store
// was layered. It keeps the engine's published metrics: serve.cache.
// evictions counts budget evictions (never replacements) and
// serve.cache.bytes tracks this layer only — the numbers are
// byte-identical to the pre-layering engine when no disk layer is
// configured.
type memStore struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // of *entry; front = most recently used
	entries map[string]*list.Element

	// onDrop, when non-nil, observes every entry leaving the layer —
	// budget eviction or replacement — and runs OUTSIDE mu, so the hook
	// may take unrelated locks (the cache uses it to unregister evicted
	// artifacts from its run-key table).
	onDrop func(*entry)
}

func newMemStore(budget int64, onDrop func(*entry)) *memStore {
	return &memStore{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		onDrop:  onDrop,
	}
}

func (s *memStore) GetArtifact(key string) (*core.Artifact, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries["a:"+key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).art, true
}

func (s *memStore) PutArtifact(key string, art *core.Artifact) {
	s.put("a:"+key, &entry{art: art, size: artifactSize(art)})
}

func (s *memStore) GetRun(key string) (*core.RunResult, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries["r:"+key]
	if !ok {
		return nil, nil, false
	}
	s.lru.MoveToFront(el)
	ent := el.Value.(*entry)
	return cloneRunResult(ent.res), ent.runErr, true
}

func (s *memStore) PutRun(key string, res *core.RunResult, runErr error) {
	ent := &entry{res: cloneRunResult(res), runErr: runErr, size: runResultSize(res)}
	s.mu.Lock()
	if _, ok := s.entries["r:"+key]; ok {
		s.mu.Unlock()
		return // a concurrent identical run got there first
	}
	dropped := s.insertLocked("r:"+key, ent)
	s.mu.Unlock()
	s.drop(dropped)
}

// put inserts under the full (prefixed) key, replacing any existing
// entry, then reports evictions to onDrop outside the lock.
func (s *memStore) put(fullKey string, ent *entry) {
	s.mu.Lock()
	dropped := s.insertLocked(fullKey, ent)
	s.mu.Unlock()
	s.drop(dropped)
}

// insertLocked adds an entry and evicts from the LRU tail until the
// byte budget holds. The newest entry always stays, even when it alone
// exceeds the budget — an over-budget singleton is more useful than an
// empty cache that recompiles forever.
//
// Replacement is exact: an existing entry under fullKey is removed
// first — its bytes come off the account and it is returned for the
// onDrop hook — so re-inserting a key can never leak budget. Only
// budget evictions count into serve.cache.evictions; a replacement is
// an overwrite, not an eviction.
func (s *memStore) insertLocked(fullKey string, ent *entry) []*entry {
	var dropped []*entry
	if el, ok := s.entries[fullKey]; ok {
		old := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, fullKey)
		s.bytes -= old.size
		dropped = append(dropped, old)
	}
	ent.key = fullKey
	s.entries[fullKey] = s.lru.PushFront(ent)
	s.bytes += ent.size
	for s.bytes > s.budget && s.lru.Len() > 1 {
		el := s.lru.Back()
		victim := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.entries, victim.key)
		s.bytes -= victim.size
		mCacheEvictions.Inc()
		dropped = append(dropped, victim)
	}
	gCacheBytes.Set(s.bytes)
	return dropped
}

// drop runs the onDrop hook for entries that left the layer.
func (s *memStore) drop(dropped []*entry) {
	if s.onDrop == nil {
		return
	}
	for _, ent := range dropped {
		s.onDrop(ent)
	}
}

func (s *memStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

func (s *memStore) Close() error { return nil }
