package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"cash/internal/core"
)

// buildKey derives the content address of an artifact: a SHA-256 over
// the source text, the strategy name, and every semantic build option.
// The strategy is hashed by name, so a Mode constant and its string
// spelling (core.ModeCash and "cash") address the same cache entry.
// Options.EventTrace is deliberately excluded (the caller nils it
// first): a trace changes what is observed, never what is built, so
// traced and untraced requests share one compiled artifact.
//
// The key addresses the same artifact in every layer of the store —
// and, through the disk layer, across processes: a restarted server
// computes the same key and finds the previous process's artifact.
func buildKey(source string, mode core.Mode, opts core.Options) string {
	h := sha256.New()
	h.Write([]byte(mode))
	h.Write([]byte{0})
	var fixed [32]byte
	binary.LittleEndian.PutUint32(fixed[4:], uint32(opts.SegRegs))
	if opts.SkipReadChecks {
		fixed[8] = 1
	}
	if opts.UseBoundInstr {
		fixed[9] = 1
	}
	if opts.WithoutCallGate {
		fixed[10] = 1
	}
	if opts.ElectricFence {
		fixed[11] = 1
	}
	// Tier2 selects which execution engine the artifact's machines use,
	// so tier-2 and step artifacts are distinct cache entries even
	// though they compile the same code.
	if opts.Tier2 {
		fixed[12] = 1
	}
	binary.LittleEndian.PutUint64(fixed[16:], opts.StepLimit)
	binary.LittleEndian.PutUint64(fixed[24:], uint64(len(source)))
	h.Write(fixed[:])
	// Optimization passes change the emitted program, so they are part
	// of the content address. The engine normalised the list before
	// keying (core.NormalizePasses), so equivalent spellings collide.
	for _, p := range opts.Passes {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	h.Write([]byte{0xff})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one memory-layer cached value: an artifact ("a:"-prefixed
// key) or a run result ("r:"-prefixed key). Both kinds share the single
// LRU list and byte budget.
type entry struct {
	key  string
	size int64

	art *core.Artifact

	res    *core.RunResult
	runErr error
}

// flight is one in-progress build that concurrent identical requests
// coalesce onto.
type flight struct {
	done chan struct{}
	art  *core.Artifact
	err  error
}

// cache front-ends the engine's layered Store with the pieces that are
// engine policy rather than storage: the singleflight table that
// coalesces concurrent identical builds, and the artifact→key table
// that makes runs of canonical cached artifacts memoisable.
type cache struct {
	store Store

	mu sync.Mutex
	// artKeys maps canonical cached artifacts back to their build key,
	// enabling the run-result cache. Trace-bearing clones are absent by
	// construction, so their runs are never memoised. Artifacts promoted
	// from the disk layer register here exactly like compiled ones.
	artKeys map[*core.Artifact]string
	flights map[string]*flight
}

// newCache builds the memory-only cache (no disk layer).
func newCache(budget int64) *cache {
	c := &cache{
		artKeys: make(map[*core.Artifact]string),
		flights: make(map[string]*flight),
	}
	c.store = newMemStore(budget, c.dropEntry)
	return c
}

// newLayeredCache stacks the memory layer over a disk layer: reads
// fall through to disk on a memory miss (promoting hits), writes go
// through both, so compiled artifacts and deterministic run outcomes
// survive the process.
func newLayeredCache(budget int64, disk Store) *cache {
	c := &cache{
		artKeys: make(map[*core.Artifact]string),
		flights: make(map[string]*flight),
	}
	mem := newMemStore(budget, c.dropEntry)
	c.store = newLayered(mem, disk, c.registerArtifact)
	return c
}

// dropEntry is the memory layer's eviction hook: an artifact leaving
// memory loses its run-memoisation registration (holders of the old
// pointer run for real; the next build-key lookup re-registers a
// canonical artifact, from disk or a fresh compile).
func (c *cache) dropEntry(ent *entry) {
	if ent.art == nil {
		return
	}
	c.mu.Lock()
	delete(c.artKeys, ent.art)
	c.mu.Unlock()
}

// registerArtifact marks art as the canonical artifact for a build key
// so its runs hit the run cache.
func (c *cache) registerArtifact(key string, art *core.Artifact) {
	c.mu.Lock()
	c.artKeys[art] = key
	c.mu.Unlock()
}

// getArtifact returns the cached artifact for a build key, from any
// layer.
func (c *cache) getArtifact(key string) (*core.Artifact, bool) {
	return c.store.GetArtifact(key)
}

// startFlight joins or starts the singleflight for key. The second
// return is true for the leader — the caller that must compile and then
// finishFlight; false means wait on the returned flight's done channel.
func (c *cache) startFlight(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// finishFlight records the leader's build outcome, stores a successful
// artifact (through every layer — a failed build writes nothing, to
// memory or disk), and releases every waiter.
func (c *cache) finishFlight(key string, f *flight, art *core.Artifact, err error) {
	f.art, f.err = art, err
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.artKeys[art] = key
	}
	c.mu.Unlock()
	if err == nil {
		// Outside c.mu: the disk layer does real I/O and the memory
		// layer's eviction hook takes c.mu itself.
		c.store.PutArtifact(key, art)
	}
	close(f.done)
}

// runKey returns the run-cache key for an artifact and whether its runs
// are memoisable (only canonical cached artifacts are; trace-bearing
// clones and uncached artifacts run for real every time).
func (c *cache) runKey(art *core.Artifact) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.artKeys[art]
	return key, ok
}

// getRun returns the memoised run outcome for a run key. The result is
// a private copy per call, so callers may mutate what they receive.
func (c *cache) getRun(key string) (*core.RunResult, error, bool) {
	return c.store.GetRun(key)
}

// putRun memoises a run outcome (result, error, or both).
func (c *cache) putRun(key string, res *core.RunResult, runErr error) {
	c.store.PutRun(key, res, runErr)
}

// close releases the cache's store layers (the disk layer, when
// present; the memory layer is a no-op).
func (c *cache) close() error {
	return c.store.Close()
}

// artifactSize estimates an artifact's retained bytes for the cache
// budget: the predecoded program dominates, at roughly one exec closure
// plus cost/note bytes per instruction, plus the data image and AST.
func artifactSize(art *core.Artifact) int64 {
	p := art.Program
	return int64(len(p.Instrs))*96 + int64(len(p.Data)) + 4096
}

// runResultSize estimates a memoised run result's retained bytes.
func runResultSize(res *core.RunResult) int64 {
	if res == nil || res.Result == nil {
		return 256
	}
	return int64(len(res.Output))*4 + 512
}

// cloneRunResult deep-copies a run result so cached state and caller
// state can never alias. The *vm.Fault violation is shared: faults are
// immutable once returned.
func cloneRunResult(res *core.RunResult) *core.RunResult {
	if res == nil {
		return nil
	}
	out := *res
	if res.Result != nil {
		r := *res.Result
		r.Output = append([]int32(nil), res.Result.Output...)
		out.Result = &r
	}
	return &out
}
