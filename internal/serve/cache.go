package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"cash/internal/core"
)

// buildKey derives the content address of an artifact: a SHA-256 over
// the source text, the strategy name, and every semantic build option.
// The strategy is hashed by name, so a Mode constant and its string
// spelling (core.ModeCash and "cash") address the same cache entry.
// Options.EventTrace is deliberately excluded (the caller nils it
// first): a trace changes what is observed, never what is built, so
// traced and untraced requests share one compiled artifact.
func buildKey(source string, mode core.Mode, opts core.Options) string {
	h := sha256.New()
	h.Write([]byte(mode))
	h.Write([]byte{0})
	var fixed [32]byte
	binary.LittleEndian.PutUint32(fixed[4:], uint32(opts.SegRegs))
	if opts.SkipReadChecks {
		fixed[8] = 1
	}
	if opts.UseBoundInstr {
		fixed[9] = 1
	}
	if opts.WithoutCallGate {
		fixed[10] = 1
	}
	if opts.ElectricFence {
		fixed[11] = 1
	}
	// Tier2 selects which execution engine the artifact's machines use,
	// so tier-2 and step artifacts are distinct cache entries even
	// though they compile the same code.
	if opts.Tier2 {
		fixed[12] = 1
	}
	binary.LittleEndian.PutUint64(fixed[16:], opts.StepLimit)
	binary.LittleEndian.PutUint64(fixed[24:], uint64(len(source)))
	h.Write(fixed[:])
	// Optimization passes change the emitted program, so they are part
	// of the content address. The engine normalised the list before
	// keying (core.NormalizePasses), so equivalent spellings collide.
	for _, p := range opts.Passes {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	h.Write([]byte{0xff})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one cached value: an artifact ("a:"-prefixed key) or a run
// result ("r:"-prefixed key). Both kinds share the single LRU list and
// byte budget.
type entry struct {
	key  string
	size int64

	art *core.Artifact

	res    *core.RunResult
	runErr error
}

// flight is one in-progress build that concurrent identical requests
// coalesce onto.
type flight struct {
	done chan struct{}
	art  *core.Artifact
	err  error
}

// cache is the Engine's content-addressed store: artifacts and run
// results in one size-bounded LRU, plus the singleflight table.
type cache struct {
	mu      sync.Mutex
	budget  int64
	bytes   int64
	lru     *list.List // of *entry; front = most recently used
	entries map[string]*list.Element
	// artKeys maps canonical cached artifacts back to their build key,
	// enabling the run-result cache. Trace-bearing clones are absent by
	// construction, so their runs are never memoised.
	artKeys map[*core.Artifact]string
	flights map[string]*flight
}

func newCache(budget int64) *cache {
	return &cache{
		budget:  budget,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
		artKeys: make(map[*core.Artifact]string),
		flights: make(map[string]*flight),
	}
}

// getArtifact returns the cached artifact for a build key.
func (c *cache) getArtifact(key string) (*core.Artifact, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries["a:"+key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).art, true
}

// startFlight joins or starts the singleflight for key. The second
// return is true for the leader — the caller that must compile and then
// finishFlight; false means wait on the returned flight's done channel.
func (c *cache) startFlight(key string) (*flight, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// finishFlight records the leader's build outcome, inserts a successful
// artifact into the cache, and releases every waiter.
func (c *cache) finishFlight(key string, f *flight, art *core.Artifact, err error) {
	f.art, f.err = art, err
	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		c.insert("a:"+key, &entry{art: art, size: artifactSize(art)})
		c.artKeys[art] = key
	}
	c.mu.Unlock()
	close(f.done)
}

// runKey returns the run-cache key for an artifact and whether its runs
// are memoisable (only canonical cached artifacts are; trace-bearing
// clones and uncached artifacts run for real every time).
func (c *cache) runKey(art *core.Artifact) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.artKeys[art]
	return key, ok
}

// getRun returns the memoised run outcome for a run key. The result is
// a fresh deep copy per call, so callers may mutate what they receive.
func (c *cache) getRun(key string) (*core.RunResult, error, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries["r:"+key]
	if !ok {
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	ent := el.Value.(*entry)
	return cloneRunResult(ent.res), ent.runErr, true
}

// putRun memoises a run outcome (result, error, or both). The stored
// result is a deep copy, insulating the cache from caller mutation.
func (c *cache) putRun(key string, res *core.RunResult, runErr error) {
	ent := &entry{res: cloneRunResult(res), runErr: runErr, size: runResultSize(res)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries["r:"+key]; ok {
		return // a concurrent identical run got there first
	}
	c.insert("r:"+key, ent)
}

// insert adds an entry under c.mu and evicts from the LRU tail until
// the byte budget holds. The newest entry always stays, even when it
// alone exceeds the budget — an over-budget singleton is more useful
// than an empty cache that recompiles forever.
func (c *cache) insert(fullKey string, ent *entry) {
	ent.key = fullKey
	c.entries[fullKey] = c.lru.PushFront(ent)
	c.bytes += ent.size
	for c.bytes > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		victim := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.entries, victim.key)
		if victim.art != nil {
			delete(c.artKeys, victim.art)
		}
		c.bytes -= victim.size
		mCacheEvictions.Inc()
	}
	gCacheBytes.Set(c.bytes)
}

// artifactSize estimates an artifact's retained bytes for the cache
// budget: the predecoded program dominates, at roughly one exec closure
// plus cost/note bytes per instruction, plus the data image and AST.
func artifactSize(art *core.Artifact) int64 {
	p := art.Program
	return int64(len(p.Instrs))*96 + int64(len(p.Data)) + 4096
}

// runResultSize estimates a memoised run result's retained bytes.
func runResultSize(res *core.RunResult) int64 {
	if res == nil || res.Result == nil {
		return 256
	}
	return int64(len(res.Output))*4 + 512
}

// cloneRunResult deep-copies a run result so cached state and caller
// state can never alias. The *vm.Fault violation is shared: faults are
// immutable once returned.
func cloneRunResult(res *core.RunResult) *core.RunResult {
	if res == nil {
		return nil
	}
	out := *res
	if res.Result != nil {
		r := *res.Result
		r.Output = append([]int32(nil), res.Result.Output...)
		out.Result = &r
	}
	return &out
}
