package serve

import (
	"testing"

	"cash/internal/core"
)

// TestBuildKeyAliasIdentity: the deprecated Mode constants and their
// plain string spellings must address the same artifact-cache entry —
// the key hashes the strategy name, not an enum value.
func TestBuildKeyAliasIdentity(t *testing.T) {
	src := "void main() { printi(1); }"
	cases := []struct{ a, b core.Mode }{
		{core.ModeCash, core.Mode("cash")},
		{core.ModeGCC, core.Mode("gcc")},
		{core.ModeBCC, core.Mode("bcc")},
		{core.ModeMPX, core.Mode("mpx")},
	}
	for _, c := range cases {
		if got, want := buildKey(src, c.a, core.Options{}), buildKey(src, c.b, core.Options{}); got != want {
			t.Errorf("buildKey(%v) = %s, buildKey(%q) = %s: aliases must share a cache entry",
				c.a, got, string(c.b), want)
		}
	}
	// Distinct strategies must not collide.
	if buildKey(src, core.ModeCash, core.Options{}) == buildKey(src, core.ModeMPX, core.Options{}) {
		t.Error("cash and mpx share a cache key")
	}
}

// TestBuildKeyStrategySeparation: the name is length-delimited in the
// hash, so a strategy name must never alias into the option block or
// source of a different request.
func TestBuildKeyStrategySeparation(t *testing.T) {
	if buildKey("x", core.Mode("ab"), core.Options{}) == buildKey("x", core.Mode("a"), core.Options{}) {
		t.Error("different names collide")
	}
}
