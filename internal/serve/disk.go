package serve

import (
	"sync"

	"cash/internal/core"
	"cash/internal/obs"
	"cash/internal/store"
)

// Disk-layer metrics. Registered lazily — the first engine that opens a
// disk store creates them — so engines without a StoreDir publish
// nothing new and every pre-existing metrics golden stays byte-
// identical.
var (
	diskMetricsOnce sync.Once
	mDiskHits       *obs.Counter
	mDiskMisses     *obs.Counter
	mDiskWrites     *obs.Counter
	mDiskEvictions  *obs.Counter
)

func diskMetrics() {
	diskMetricsOnce.Do(func() {
		mDiskHits = obs.Default().Counter("store.disk.hits")
		mDiskMisses = obs.Default().Counter("store.disk.misses")
		mDiskWrites = obs.Default().Counter("store.disk.writes")
		mDiskEvictions = obs.Default().Counter("store.disk.evictions")
	})
}

// diskStore adapts the content-addressed file store (internal/store)
// to the Store interface: artifacts and run outcomes are serialised
// with the core codecs, keyed by the same "a:"/"r:"-prefixed build
// keys as the memory layer. Unpersistable values (trace-bearing
// artifacts, non-deterministic outcomes) and I/O failures degrade to
// "not cached" — a disk store never fails a request.
type diskStore struct {
	dir *store.Dir
}

// newDiskStore opens (or creates) the store rooted at dirPath.
func newDiskStore(dirPath string, budget int64) (*diskStore, error) {
	diskMetrics()
	dir, err := store.Open(dirPath, store.Options{
		Budget:  budget,
		OnEvict: func(string) { mDiskEvictions.Inc() },
	})
	if err != nil {
		return nil, err
	}
	return &diskStore{dir: dir}, nil
}

func (s *diskStore) GetArtifact(key string) (*core.Artifact, bool) {
	payload, ok := s.dir.Get("a:" + key)
	if !ok {
		mDiskMisses.Inc()
		return nil, false
	}
	art, err := core.DecodeArtifact(payload)
	if err != nil {
		// Undecodable bytes (codec drift, unregistered strategy) are a
		// miss; the rebuild overwrites the entry.
		mDiskMisses.Inc()
		return nil, false
	}
	mDiskHits.Inc()
	return art, true
}

func (s *diskStore) PutArtifact(key string, art *core.Artifact) {
	payload, ok, err := core.EncodeArtifact(art)
	if err != nil || !ok {
		return
	}
	if s.dir.Put("a:"+key, payload) == nil {
		mDiskWrites.Inc()
	}
}

func (s *diskStore) GetRun(key string) (*core.RunResult, error, bool) {
	payload, ok := s.dir.Get("r:" + key)
	if !ok {
		mDiskMisses.Inc()
		return nil, nil, false
	}
	res, runErr, err := core.DecodeRunOutcome(payload)
	if err != nil {
		mDiskMisses.Inc()
		return nil, nil, false
	}
	mDiskHits.Inc()
	return res, runErr, true
}

func (s *diskStore) PutRun(key string, res *core.RunResult, runErr error) {
	if s.dir.Has("r:" + key) {
		return // deterministic outcome, identical bytes: skip the rewrite
	}
	payload, ok := core.EncodeRunOutcome(res, runErr)
	if !ok {
		return
	}
	if s.dir.Put("r:"+key, payload) == nil {
		mDiskWrites.Inc()
	}
}

func (s *diskStore) Bytes() int64 { return s.dir.Bytes() }

func (s *diskStore) Close() error { return s.dir.Close() }
