package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cash/internal/core"
)

// TestEngineCloseRejectsNewWork pins the lifecycle end: after Close,
// every entry point returns the typed ErrEngineClosed, and Close is
// idempotent.
func TestEngineCloseRejectsNewWork(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInFlight: 2})
	art := mustBuild(t, eng, sumKernel, core.ModeCash, core.Options{})
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	ctx := context.Background()
	if _, err := eng.BuildContext(ctx, sumKernel, core.ModeCash, core.Options{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("BuildContext after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.RunContext(ctx, art); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("RunContext after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := eng.CompareContext(ctx, "k", sumKernel, core.Options{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("CompareContext after Close: %v, want ErrEngineClosed", err)
	}
}

// TestEngineCloseDrainsInFlight pins the drain: Close blocks until the
// admitted request releases its slot, then returns; queued waiters fail
// with ErrEngineClosed immediately rather than waiting out the drain.
func TestEngineCloseDrainsInFlight(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInFlight: 1, Parallelism: 1})
	// Occupy the only slot directly.
	if err := eng.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queue a waiter behind it.
	waiterErr := make(chan error, 1)
	go func() {
		err := eng.acquire(context.Background())
		if err == nil {
			eng.release()
		}
		waiterErr <- err
	}()
	// Wait until the waiter is queued.
	for {
		eng.adm.mu.Lock()
		n := eng.adm.waiters.Len()
		eng.adm.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan struct{})
	go func() {
		eng.Close()
		close(closed)
	}()
	// The queued waiter must fail promptly, without the drain finishing.
	select {
	case err := <-waiterErr:
		if !errors.Is(err, ErrEngineClosed) {
			t.Fatalf("queued waiter: %v, want ErrEngineClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter did not fail after Close")
	}
	// Close must still be blocked on the in-flight slot.
	select {
	case <-closed:
		t.Fatal("Close returned before the in-flight request drained")
	case <-time.After(20 * time.Millisecond):
	}
	eng.release()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the last slot was released")
	}
}

// TestAdmissionCancellationStorm queues a storm of clients behind a
// fully occupied engine and cancels them all mid-wait, interleaved with
// real releases so grants race cancels: afterwards no slot may be
// leaked (the full limit is immediately acquirable) and the pool
// counters stay parallel-deterministic — every machine handed out was
// handed back exactly once, so fresh+recycled == returned+dropped.
func TestAdmissionCancellationStorm(t *testing.T) {
	const limit = 2
	eng := NewEngine(EngineConfig{MaxInFlight: limit, Parallelism: limit, PoolSize: 2})
	art := mustBuild(t, eng, heapKernel, core.ModeCash, core.Options{})

	handedOut := func() uint64 { return counter("serve.pool.fresh") + counter("serve.pool.recycled") }
	handedBack := func() uint64 { return counter("serve.pool.returned") + counter("serve.pool.dropped") }
	outBefore, backBefore := handedOut(), handedBack()

	const storm = 200
	rng := rand.New(rand.NewSource(7))
	delays := make([]time.Duration, storm)
	for i := range delays {
		delays[i] = time.Duration(rng.Intn(2000)) * time.Microsecond
	}
	var wg sync.WaitGroup
	errs := make([]error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			// Cancel mid-wait (or mid-run, for the few that get in).
			timer := time.AfterFunc(delays[i], cancel)
			defer timer.Stop()
			defer cancel()
			_, errs[i] = eng.RunContext(ctx, art)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("storm client %d: unexpected error %v", i, err)
		}
	}
	// No slot leak: the full admission limit is acquirable right now.
	for i := 0; i < limit; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := eng.acquire(ctx); err != nil {
			cancel()
			t.Fatalf("slot %d leaked: acquire after the storm failed: %v", i, err)
		}
		cancel()
	}
	for i := 0; i < limit; i++ {
		eng.release()
	}
	// Machine accounting balanced: every NewMachine release ran.
	if out, back := handedOut()-outBefore, handedBack()-backBefore; out != back {
		t.Fatalf("pool counters leaked: handed out %d machines, handed back %d", out, back)
	}
}
