// Package serve is the serving runtime of the reproduction: an Engine
// that owns every piece of cross-request state the per-call API
// (core.Build, Artifact.Run) rebuilds from scratch — a content-addressed
// artifact cache with singleflight build deduplication, a pool of
// recyclable machine parts (memory arenas, MMU descriptor tables, LDT
// manager free lists), and admission control bounding concurrent
// requests. The paper amortizes Cash's fixed costs (§4.1 per-program and
// per-array setup) across many references; the Engine amortizes the
// host-side analogues — compilation and arena allocation — across many
// requests.
//
// Everything the Engine does is observable through the shared
// internal/obs registry (serve.cache.*, serve.build.*, serve.pool.*,
// serve.admission.*) and none of it changes any simulated number: a
// cache-hit artifact is the same artifact, a recycled machine is reset
// to exactly the fresh-build state (pinned by equivalence tests), and
// results served from the run cache are deep copies of a real run's
// result.
package serve

import (
	"context"
	"errors"
	"sync"

	"cash/internal/core"
	"cash/internal/obs"
	"cash/internal/par"
	"cash/internal/vm"
)

// Engine-level metrics in the shared observability registry.
var (
	mCacheHits      = obs.Default().Counter("serve.cache.hits")
	mCacheMisses    = obs.Default().Counter("serve.cache.misses")
	mCacheEvictions = obs.Default().Counter("serve.cache.evictions")
	mCacheRunHits   = obs.Default().Counter("serve.cache.run_hits")
	gCacheBytes     = obs.Default().Gauge("serve.cache.bytes")

	mBuildCompiles  = obs.Default().Counter("serve.build.compiles")
	mBuildCoalesced = obs.Default().Counter("serve.build.coalesced")

	mPoolRecycled = obs.Default().Counter("serve.pool.recycled")
	mPoolFresh    = obs.Default().Counter("serve.pool.fresh")
	mPoolReturned = obs.Default().Counter("serve.pool.returned")
	mPoolDropped  = obs.Default().Counter("serve.pool.dropped")

	mAdmWaits    = obs.Default().Counter("serve.admission.waits")
	mAdmCanceled = obs.Default().Counter("serve.admission.canceled")
)

// ErrEngineClosed is returned by every Engine method once Close has
// been called: the engine has a lifecycle end a server can hook
// shutdown into, and work submitted after that end is rejected with
// this typed error rather than queued forever.
var ErrEngineClosed = errors.New("serve: engine closed")

// DefaultCacheBytes is the artifact/run cache budget when
// EngineConfig.CacheBytes is zero.
const DefaultCacheBytes = 64 << 20

// DefaultPoolSize is the machine-parts pool capacity when
// EngineConfig.PoolSize is zero.
const DefaultPoolSize = 8

// DefaultStoreBytes is the on-disk store budget when
// EngineConfig.StoreBytes is zero and a StoreDir is configured.
const DefaultStoreBytes = 1 << 30

// EngineConfig tunes an Engine. The zero value is a fully enabled
// engine with default sizing that inherits the process-wide parallelism
// and default event trace, so NewEngine(EngineConfig{}) behaves like the
// pre-Engine API, only faster.
type EngineConfig struct {
	// CacheBytes bounds the artifact + run-result cache. 0 means
	// DefaultCacheBytes; negative disables caching entirely.
	CacheBytes int64
	// PoolSize bounds how many machine part sets are kept for recycling.
	// 0 means DefaultPoolSize; negative disables pooling.
	PoolSize int
	// MaxInFlight bounds concurrently admitted requests. 0 derives the
	// bound from Parallelism.
	MaxInFlight int
	// Parallelism is the worker budget for this Engine's table fan-outs,
	// replacing the deprecated process-wide bench.SetParallelism. 0
	// inherits the global setting (dynamically — later SetParallelism
	// calls are honored).
	Parallelism int
	// EventTrace receives the Engine's consumers' structured events
	// (netsim serving decisions). Nil inherits the process default trace
	// (obs.DefaultTrace), again dynamically.
	EventTrace *obs.Trace
	// StoreDir, when non-empty, roots a content-addressed on-disk store
	// layered under the in-memory cache: compiled artifacts and
	// deterministic run outcomes are written through to disk and survive
	// the process, so a restarted engine warm-starts from its
	// predecessor's work. Requires caching (CacheBytes >= 0); ignored
	// when caching is disabled. Open reports an unusable directory as an
	// error; NewEngine degrades to a memory-only engine.
	StoreDir string
	// StoreBytes bounds the on-disk store. 0 means DefaultStoreBytes;
	// negative means unlimited.
	StoreBytes int64
	// Snapshots enables copy-on-write machine snapshots: the first
	// machine built for an artifact is snapshotted after construction
	// and later machines are cloned from the snapshot with lazy page
	// copying instead of re-zeroing arenas and replaying setup. Clones
	// are pinned byte-identical to fresh machines (equivalence tests at
	// the vm and serve layers). Off by default.
	Snapshots bool
}

// Engine owns all cross-request serving state. Engines are safe for
// concurrent use; create one per logical service (or use Default).
type Engine struct {
	cfg   EngineConfig
	cache *cache
	pool  *pool
	adm   admission
	// snaps memoises one machine snapshot per compiled program (lazily,
	// on first NewMachine with Snapshots enabled). Keyed by the Program
	// pointer so canonical artifacts and their trace-bearing clones —
	// which share the Program — share the snapshot.
	snaps sync.Map // *vm.Program -> *snapEntry
}

// NewEngine returns an Engine for the given configuration. A StoreDir
// that cannot be opened is dropped: the engine runs memory-only rather
// than failing (use Open to observe the error).
func NewEngine(cfg EngineConfig) *Engine {
	e, err := Open(cfg)
	if err != nil {
		cfg.StoreDir = ""
		e, _ = Open(cfg)
	}
	return e
}

// Open returns an Engine for the given configuration, reporting an
// unusable StoreDir as an error instead of degrading silently.
func Open(cfg EngineConfig) (*Engine, error) {
	e := &Engine{cfg: cfg}
	if cfg.CacheBytes >= 0 {
		budget := cfg.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		if cfg.StoreDir != "" {
			storeBudget := cfg.StoreBytes
			if storeBudget == 0 {
				storeBudget = DefaultStoreBytes
			}
			if storeBudget < 0 {
				storeBudget = 0 // unlimited
			}
			disk, err := newDiskStore(cfg.StoreDir, storeBudget)
			if err != nil {
				return nil, err
			}
			e.cache = newLayeredCache(budget, disk)
		} else {
			e.cache = newCache(budget)
		}
	}
	if cfg.PoolSize >= 0 {
		size := cfg.PoolSize
		if size == 0 {
			size = DefaultPoolSize
		}
		e.pool = newPool(size)
	}
	return e, nil
}

// Close shuts the Engine down: new work — builds, runs, comparisons —
// is rejected with ErrEngineClosed, queued admission waiters fail with
// the same error immediately, and Close blocks until every admitted
// request has finished and released its slot (the drain). Close is
// idempotent and safe to call concurrently; every call returns only
// once the engine is drained. The caches and pool are left intact so
// in-flight requests finish normally; they are simply unreachable once
// the last reference to the Engine drops.
func (e *Engine) Close() error {
	e.adm.closeAndDrain()
	if e.cache != nil {
		return e.cache.close()
	}
	return nil
}

// closed reports whether Close has begun.
func (e *Engine) closed() bool {
	e.adm.mu.Lock()
	defer e.adm.mu.Unlock()
	return e.adm.closed
}

var defaultEngine = NewEngine(EngineConfig{})

// Default returns the process-wide Engine the compatibility wrappers
// (cash.Build, bench.Table1, …) share.
func Default() *Engine { return defaultEngine }

// parallelism resolves this Engine's worker budget.
func (e *Engine) parallelism() int {
	if e.cfg.Parallelism > 0 {
		return e.cfg.Parallelism
	}
	return par.Parallelism()
}

// limit resolves the admission bound.
func (e *Engine) limit() int {
	if e.cfg.MaxInFlight > 0 {
		return e.cfg.MaxInFlight
	}
	if p := e.parallelism(); p > 1 {
		return p
	}
	return 1
}

// workers is the fan-out budget for Do/DoCollect: capped at the
// admission limit so the Engine's own fan-outs never queue against
// themselves — internal waits would make the serve.admission.waits
// counter scheduling-dependent.
func (e *Engine) workers() int {
	p := e.parallelism()
	if l := e.limit(); l < p {
		p = l
	}
	return p
}

// Do runs f(0) … f(n-1) with this Engine's worker budget (see par.Do
// for the error contract).
func (e *Engine) Do(n int, f func(i int) error) error {
	return par.DoN(e.workers(), n, f)
}

// DoCollect runs every index to completion and returns the per-index
// error slice (see par.DoCollect).
func (e *Engine) DoCollect(n int, f func(i int) error) []error {
	return par.DoCollectN(e.workers(), n, f)
}

// EventTrace resolves the trace the Engine's consumers should emit
// into: the configured one, else the process default.
func (e *Engine) EventTrace() *obs.Trace {
	if e.cfg.EventTrace != nil {
		return e.cfg.EventTrace
	}
	return obs.DefaultTrace()
}

// BuildContext returns the artifact for (source, mode, opts), serving
// it from the content-addressed cache when possible. Concurrent misses
// for the same key compile once (singleflight); waiters block on the
// flight or ctx, whichever finishes first. The cache key excludes
// opts.EventTrace — a requested trace is attached to a clone of the
// cached artifact, and such clones bypass the run-result cache so their
// events always fire.
//
// Logical-build accounting: cache hits and coalesced waiters still
// count into core.builds.* (via core.NoteCachedBuild), so those
// counters track build requests independent of cache state; the
// physical compile count is serve.build.compiles.
func (e *Engine) BuildContext(ctx context.Context, source string, mode core.Mode, opts core.Options) (*core.Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if e.closed() {
		return nil, ErrEngineClosed
	}
	if e.cache == nil {
		return core.Build(source, mode, opts)
	}
	reqTrace := opts.EventTrace
	opts.EventTrace = nil
	passes, err := core.NormalizePasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	opts.Passes = passes
	key := buildKey(source, mode, opts)

	if art, ok := e.cache.getArtifact(key); ok {
		mCacheHits.Inc()
		core.NoteCachedBuild(mode)
		return withTrace(art, reqTrace), nil
	}
	f, leader := e.cache.startFlight(key)
	if !leader {
		mBuildCoalesced.Inc()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err != nil {
			return nil, f.err
		}
		core.NoteCachedBuild(mode)
		return withTrace(f.art, reqTrace), nil
	}
	mCacheMisses.Inc()
	mBuildCompiles.Inc()
	art, err := core.Build(source, mode, opts)
	e.cache.finishFlight(key, f, art, err)
	if err != nil {
		return nil, err
	}
	return withTrace(art, reqTrace), nil
}

// withTrace attaches a requested event trace to a cached artifact.
func withTrace(art *core.Artifact, tr *obs.Trace) *core.Artifact {
	if tr == nil {
		return art
	}
	return art.WithEventTrace(tr)
}

// NewMachine prepares a machine for the artifact, recycling pooled
// parts when available. The returned release func hands the machine's
// parts back to the pool; it is idempotent, but must not be called
// before the machine's last use.
func (e *Engine) NewMachine(art *core.Artifact, extra ...vm.Option) (*vm.Machine, func(), error) {
	var opts []vm.Option
	g := vm.GeometryFor(art.Program)
	if e.pool != nil {
		if parts, ok := e.pool.get(g); ok {
			mPoolRecycled.Inc()
			opts = []vm.Option{vm.WithParts(parts)}
		} else {
			mPoolFresh.Inc()
		}
	}
	m, err := e.newMachine(art, opts, extra)
	if err != nil {
		return nil, nil, err
	}
	released := false
	release := func() {
		if released || e.pool == nil {
			released = true
			return
		}
		released = true
		if e.pool.put(g, m.Parts()) {
			mPoolReturned.Inc()
		} else {
			mPoolDropped.Inc()
		}
	}
	return m, release, nil
}

// newMachine constructs the machine for an artifact — from the
// artifact's warmed snapshot when snapshots are enabled and the
// artifact supports them, else the ordinary fresh-build path. Both
// paths accept pooled parts and produce machines pinned byte-identical
// to each other.
func (e *Engine) newMachine(art *core.Artifact, opts, extra []vm.Option) (*vm.Machine, error) {
	if e.cfg.Snapshots {
		if snap := e.snapshotFor(art); snap != nil {
			sopts := make([]vm.Option, 0, len(opts)+len(extra)+1)
			if tr := art.Options().EventTrace; tr != nil {
				// The snapshot source is trace-free (traces observe a
				// machine's life from construction, so a snapshot cannot
				// carry one); a trace-bearing clone attaches its trace here.
				sopts = append(sopts, vm.WithEventTrace(tr))
			}
			sopts = append(sopts, opts...)
			sopts = append(sopts, extra...)
			if m, err := snap.NewMachine(sopts...); err == nil {
				return m, nil
			}
			// An option the snapshot cannot honor (paging, chaos, …):
			// fall through to the fresh-build path. Option validation
			// happens before any pooled part is touched, so the parts in
			// opts are still clean.
		}
	}
	return art.NewMachine(append(opts[:len(opts):len(opts)], extra...)...)
}

// snapEntry memoises one program's snapshot; the once makes the first
// requester build it while concurrent requesters wait.
type snapEntry struct {
	once sync.Once
	snap *vm.Snapshot
}

// snapshotFor returns the warmed snapshot for the artifact's program,
// building it on first use. A nil return means the artifact cannot be
// snapshotted (paging, electric fence, …) — that verdict is memoised
// too, so the probe costs one machine build ever.
func (e *Engine) snapshotFor(art *core.Artifact) *vm.Snapshot {
	v, _ := e.snaps.LoadOrStore(art.Program, &snapEntry{})
	ent := v.(*snapEntry)
	ent.once.Do(func() {
		// Snapshot a trace-free machine even when the triggering request
		// carries a trace: the snapshot is shared by every future
		// request for this program, traced or not.
		m, err := art.WithEventTrace(nil).NewMachine()
		if err != nil {
			return
		}
		ent.snap, _ = m.Snapshot()
	})
	return ent.snap
}

// RunContext executes the artifact once, honoring ctx between simulated
// basic blocks (a canceled ctx surfaces as ctx.Err, never as a *Fault).
// Runs of canonical cached artifacts are memoised: a repeat run returns
// a deep copy of the recorded result — including deterministic error
// outcomes such as step-limit faults — without simulating. Trace-
// bearing artifact clones and engines with caching disabled always run
// for real. A request slot is held for the duration (admission
// control).
func (e *Engine) RunContext(ctx context.Context, art *core.Artifact) (*core.RunResult, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	return e.runNoAdmission(ctx, art)
}

// runNoAdmission is RunContext minus the admission slot, for internal
// callers that already hold one.
func (e *Engine) runNoAdmission(ctx context.Context, art *core.Artifact) (*core.RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key, cacheable := "", false
	if e.cache != nil {
		key, cacheable = e.cache.runKey(art)
	}
	if cacheable {
		if res, err, ok := e.cache.getRun(key); ok {
			mCacheRunHits.Inc()
			return res, err
		}
	}
	m, release, err := e.NewMachine(art, vm.WithCancel(ctx))
	if err != nil {
		return nil, err
	}
	res, runErr := art.RunOn(m)
	release()
	if f := (*vm.Fault)(nil); errors.As(runErr, &f) && f.Kind == vm.FaultCanceled {
		return nil, ctx.Err()
	}
	if cacheable {
		// Deterministic machine, deterministic outcome: errors (e.g. a
		// runaway program's step-limit fault) are as cacheable as
		// successes. Cancellation never reaches here.
		e.cache.putRun(key, res, runErr)
	}
	return res, runErr
}

// engineRunner adapts the Engine to core.Runner for CompareContext.
// The comparison holds one admission slot for its whole six-step
// build/run sequence, so the internal steps never queue.
type engineRunner struct {
	ctx context.Context
	e   *Engine
}

func (r engineRunner) BuildArtifact(source string, mode core.Mode, opts core.Options) (*core.Artifact, error) {
	return r.e.BuildContext(r.ctx, source, mode, opts)
}

func (r engineRunner) RunArtifact(art *core.Artifact) (*core.RunResult, error) {
	return r.e.runNoAdmission(r.ctx, art)
}

// CompareStrategiesContext is core.CompareStrategies through the
// Engine: every strategy's build and run is served from the caches and
// pooled machines, under one admission slot.
func (e *Engine) CompareStrategiesContext(ctx context.Context, name, source string, cfg core.CompareConfig) (*core.Comparison, error) {
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	return core.CompareStrategiesUsing(engineRunner{ctx: ctx, e: e}, name, source, cfg)
}

// CompareContext is core.Compare through the Engine: the three classic
// modes' builds and runs are served from the caches and pooled
// machines, under one admission slot.
//
// Deprecated: Use CompareStrategiesContext, which accepts any
// registered strategy set. This wrapper keeps working and compares
// gcc, bcc, cash.
func (e *Engine) CompareContext(ctx context.Context, name, source string, opts core.Options) (*core.Comparison, error) {
	return e.CompareStrategiesContext(ctx, name, source, core.CompareConfig{Options: opts})
}
