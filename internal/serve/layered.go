package serve

import (
	"errors"

	"cash/internal/core"
)

// layered composes two Store layers as a read-through/write-through
// overlay: reads probe the upper (memory) layer first and fall back to
// the lower (disk) layer, promoting hits upward; writes go through
// both. Everything above the cache sees one Store — the engine's code
// paths are unchanged by the presence of a disk layer.
type layered struct {
	upper Store
	lower Store

	// onPromote observes artifacts entering the process from the lower
	// layer, so the cache can register them for run-result memoisation
	// exactly like freshly compiled ones.
	onPromote func(key string, art *core.Artifact)
}

func newLayered(upper, lower Store, onPromote func(string, *core.Artifact)) *layered {
	return &layered{upper: upper, lower: lower, onPromote: onPromote}
}

func (l *layered) GetArtifact(key string) (*core.Artifact, bool) {
	if art, ok := l.upper.GetArtifact(key); ok {
		return art, true
	}
	art, ok := l.lower.GetArtifact(key)
	if !ok {
		return nil, false
	}
	l.upper.PutArtifact(key, art)
	if l.onPromote != nil {
		l.onPromote(key, art)
	}
	return art, true
}

func (l *layered) PutArtifact(key string, art *core.Artifact) {
	l.upper.PutArtifact(key, art)
	l.lower.PutArtifact(key, art)
}

func (l *layered) GetRun(key string) (*core.RunResult, error, bool) {
	if res, runErr, ok := l.upper.GetRun(key); ok {
		return res, runErr, ok
	}
	res, runErr, ok := l.lower.GetRun(key)
	if !ok {
		return nil, nil, false
	}
	// Promote so repeat requests stay off the disk. The memory layer
	// clones on put, so the decoded copy below stays private to this
	// caller.
	l.upper.PutRun(key, res, runErr)
	return res, runErr, true
}

func (l *layered) PutRun(key string, res *core.RunResult, runErr error) {
	l.upper.PutRun(key, res, runErr)
	l.lower.PutRun(key, res, runErr)
}

func (l *layered) Bytes() int64 { return l.upper.Bytes() + l.lower.Bytes() }

func (l *layered) Close() error {
	return errors.Join(l.upper.Close(), l.lower.Close())
}
