package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cash/internal/core"
	"cash/internal/obs"
)

// Small deterministic kernels for cache/pool tests. Each test that
// counts global metrics snapshots them before and after, so the tests
// compose with anything else the package (or a cached engine) did.
const sumKernel = `
void main() {
	int s = 0;
	for (int i = 0; i < 100; i++) s += i;
	printi(s);
}`

const heapKernel = `
int churn(int n) {
	int *buf = malloc(n * 4);
	for (int i = 0; i < n; i++) buf[i] = i * 3;
	int s = 0;
	for (int i = 0; i < n; i++) s += buf[i];
	free(buf);
	return s;
}
void main() {
	int t = 0;
	for (int r = 0; r < 20; r++) t += churn(8 + r);
	printi(t);
}`

// runawayKernel burns its entire step budget.
const runawayKernel = `
void main() {
	int s = 0;
	for (int i = 0; i < 2000000000; i++) s += i;
	printi(s);
}`

func counter(name string) uint64 { return obs.Default().Counter(name).Value() }

func mustBuild(t *testing.T, e *Engine, src string, mode core.Mode, opts core.Options) *core.Artifact {
	t.Helper()
	art, err := e.BuildContext(context.Background(), src, mode, opts)
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func mustRun(t *testing.T, e *Engine, art *core.Artifact) *core.RunResult {
	t.Helper()
	res, err := e.RunContext(context.Background(), art)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCacheHitIsByteIdentical pins the core cache contract: a cached
// build is the same artifact, a cached run is indistinguishable from a
// real one, and both match an engine with caching and pooling disabled.
func TestCacheHitIsByteIdentical(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	cold := NewEngine(EngineConfig{CacheBytes: -1, PoolSize: -1})
	for _, mode := range []core.Mode{core.ModeGCC, core.ModeBCC, core.ModeCash} {
		art1 := mustBuild(t, eng, heapKernel, mode, core.Options{})
		art2 := mustBuild(t, eng, heapKernel, mode, core.Options{})
		if art1 != art2 {
			t.Fatalf("[%v] cache hit returned a different artifact", mode)
		}
		runHits := counter("serve.cache.run_hits")
		res1 := mustRun(t, eng, art1) // real simulation, result recorded
		res2 := mustRun(t, eng, art1) // served from the run cache
		if got := counter("serve.cache.run_hits") - runHits; got != 1 {
			t.Fatalf("[%v] run_hits delta = %d, want 1", mode, got)
		}
		if res1 == res2 {
			t.Fatalf("[%v] run cache returned the recorded result itself, not a copy", mode)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Fatalf("[%v] cached run result differs from the real one:\n%+v\nvs\n%+v", mode, res1, res2)
		}
		resCold := mustRun(t, cold, mustBuild(t, cold, heapKernel, mode, core.Options{}))
		if !reflect.DeepEqual(res1, resCold) {
			t.Fatalf("[%v] cached engine result differs from cache-disabled engine:\n%+v\nvs\n%+v", mode, res1, resCold)
		}
		// A caller mutating its copy must not poison later hits.
		res2.Output = append(res2.Output, 999999)
		res3 := mustRun(t, eng, art1)
		if !reflect.DeepEqual(res1, res3) {
			t.Fatalf("[%v] mutating a served copy leaked into the cache", mode)
		}
	}
}

// TestCacheTier2Distinct pins that tier-2 and step execution are
// distinct cache entries: they compile the same code but execute it
// through different engines, so one artifact must never serve both. A
// tier-2 artifact's machines must actually run tier-2 (SB stats
// present), and its results must still equal the step artifact's.
func TestCacheTier2Distinct(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	step := mustBuild(t, eng, heapKernel, core.ModeCash, core.Options{})
	tier2 := mustBuild(t, eng, heapKernel, core.ModeCash, core.Options{Tier2: true})
	if step == tier2 {
		t.Fatal("tier-2 build served the step artifact from the cache")
	}
	if again := mustBuild(t, eng, heapKernel, core.ModeCash, core.Options{Tier2: true}); again != tier2 {
		t.Fatal("repeated tier-2 build missed the cache")
	}
	res1 := mustRun(t, eng, step)
	res2 := mustRun(t, eng, tier2)
	if res1.SB != nil {
		t.Fatal("step artifact reported superblock stats")
	}
	if res2.SB == nil || res2.SB.InstrsRetired == 0 {
		t.Fatalf("tier-2 artifact did not execute through superblocks: %+v", res2.SB)
	}
	c1, c2 := *res1.Result, *res2.Result
	c2.SB = nil
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("tier-2 result differs from step result:\n%+v\nvs\n%+v", c1, c2)
	}
}

// TestCacheErrorOutcomesAreCached pins that deterministic failures
// (here: a runaway program's step-limit fault) are served from the run
// cache too — the expensive part of the detectors table depends on it.
func TestCacheErrorOutcomesAreCached(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	art := mustBuild(t, eng, runawayKernel, core.ModeGCC, core.Options{StepLimit: 100_000})
	_, err1 := eng.RunContext(context.Background(), art)
	if err1 == nil {
		t.Fatal("runaway kernel ran to completion; want step-limit fault")
	}
	runHits := counter("serve.cache.run_hits")
	_, err2 := eng.RunContext(context.Background(), art)
	if got := counter("serve.cache.run_hits") - runHits; got != 1 {
		t.Fatalf("run_hits delta = %d, want 1 (error outcome not cached)", got)
	}
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("cached error differs: %v vs %v", err1, err2)
	}
}

// TestCacheEvictionUnderTinyBudget forces every insert over budget and
// checks the LRU actually evicts (while always retaining the newest
// entry, so a hot artifact larger than the whole budget still serves).
func TestCacheEvictionUnderTinyBudget(t *testing.T) {
	eng := NewEngine(EngineConfig{CacheBytes: 1, PoolSize: -1})
	evictions := counter("serve.cache.evictions")
	compiles := counter("serve.build.compiles")
	sources := make([]string, 4)
	for i := range sources {
		sources[i] = fmt.Sprintf("void main() { printi(%d); }", 1000+i)
		mustBuild(t, eng, sources[i], core.ModeCash, core.Options{})
	}
	if got := counter("serve.cache.evictions") - evictions; got < 3 {
		t.Fatalf("evictions delta = %d, want >= 3", got)
	}
	// The newest artifact survives (hit); the oldest was evicted (miss).
	mustBuild(t, eng, sources[3], core.ModeCash, core.Options{})
	mustBuild(t, eng, sources[0], core.ModeCash, core.Options{})
	if got := counter("serve.build.compiles") - compiles; got != 5 {
		t.Fatalf("compiles delta = %d, want 5 (4 cold + 1 evicted rebuild)", got)
	}
}

// TestSingleflightCollapsesConcurrentBuilds starts 32 identical builds
// at once and checks exactly one compile happened, the other 31 were
// served as a hit or coalesced onto the flight, and the logical
// core.builds.* counter still saw all 32 requests.
func TestSingleflightCollapsesConcurrentBuilds(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInFlight: 64})
	const n = 32
	src := `void main() { printi(424242); }`
	compiles := counter("serve.build.compiles")
	hits := counter("serve.cache.hits")
	coalesced := counter("serve.build.coalesced")
	logical := counter("core.builds.cash")

	arts := make([]*core.Artifact, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i], errs[i] = eng.BuildContext(context.Background(), src, core.ModeCash, core.Options{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		if arts[i] != arts[0] {
			t.Fatalf("build %d returned a different artifact", i)
		}
	}
	if got := counter("serve.build.compiles") - compiles; got != 1 {
		t.Fatalf("compiles delta = %d, want 1", got)
	}
	servedCheap := (counter("serve.cache.hits") - hits) + (counter("serve.build.coalesced") - coalesced)
	if servedCheap != n-1 {
		t.Fatalf("hits+coalesced delta = %d, want %d", servedCheap, n-1)
	}
	if got := counter("core.builds.cash") - logical; got != n {
		t.Fatalf("logical build count delta = %d, want %d", got, n)
	}
}

// TestBuildErrorsPropagateToWaiters pins the failure side of the
// singleflight: every coalesced waiter gets the leader's compile error,
// and nothing is cached for the key.
func TestBuildErrorsPropagateToWaiters(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	src := `void main() { this is not mini-C `
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.BuildContext(context.Background(), src, core.ModeCash, core.Options{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("build %d: want compile error, got nil", i)
		}
	}
	// The failure was not cached: a retry compiles (and fails) again.
	compiles := counter("serve.build.compiles")
	if _, err := eng.BuildContext(context.Background(), src, core.ModeCash, core.Options{}); err == nil {
		t.Fatal("retry: want compile error, got nil")
	}
	if got := counter("serve.build.compiles") - compiles; got != 1 {
		t.Fatalf("retry compiles delta = %d, want 1 (error was cached?)", got)
	}
}

// TestPooledMachineEquivalence pins the pool's core guarantee: a run on
// recycled machine parts is indistinguishable from a run on fresh ones,
// for all three modes and across programs of different geometry sharing
// one pool. The run cache is disabled so every run really simulates.
func TestPooledMachineEquivalence(t *testing.T) {
	eng := NewEngine(EngineConfig{CacheBytes: -1, PoolSize: 2})
	for _, mode := range []core.Mode{core.ModeGCC, core.ModeBCC, core.ModeCash} {
		artA := mustBuild(t, eng, heapKernel, mode, core.Options{})
		artB := mustBuild(t, eng, sumKernel, mode, core.Options{})
		recycled := counter("serve.pool.recycled")
		freshA := mustRun(t, eng, artA) // fresh parts, returned to pool
		freshB := mustRun(t, eng, artB)
		for i := 0; i < 3; i++ {
			if got := mustRun(t, eng, artA); !reflect.DeepEqual(freshA, got) {
				t.Fatalf("[%v] recycled run %d differs from fresh run:\n%+v\nvs\n%+v", mode, i, freshA, got)
			}
			if got := mustRun(t, eng, artB); !reflect.DeepEqual(freshB, got) {
				t.Fatalf("[%v] recycled run %d differs from fresh run (B):\n%+v", mode, i, got)
			}
		}
		if counter("serve.pool.recycled") == recycled {
			t.Fatalf("[%v] no machine was recycled; the equivalence was tested against nothing", mode)
		}
	}
}

// TestPoolConcurrentHammer exercises the pool from many goroutines
// under -race: interleaved runs of two different programs must all
// produce their own program's exact result.
func TestPoolConcurrentHammer(t *testing.T) {
	eng := NewEngine(EngineConfig{CacheBytes: -1, PoolSize: 2, MaxInFlight: 8})
	artA := mustBuild(t, eng, heapKernel, core.ModeCash, core.Options{})
	artB := mustBuild(t, eng, sumKernel, core.ModeCash, core.Options{})
	wantA := mustRun(t, eng, artA)
	wantB := mustRun(t, eng, artB)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				art, want := artA, wantA
				if (g+i)%2 == 0 {
					art, want = artB, wantB
				}
				got, err := eng.RunContext(context.Background(), art)
				if err != nil {
					t.Errorf("goroutine %d run %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("goroutine %d run %d: result differs", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRunContextCancellation checks that canceling mid-simulation
// surfaces ctx.Err() promptly and leaks neither the admission slot nor
// pool capacity: the engine serves the next request normally.
func TestRunContextCancellation(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInFlight: 1})
	// ~100M-instruction budget: several seconds if cancellation fails,
	// interrupted within a cancel stride if it works.
	art := mustBuild(t, eng, runawayKernel, core.ModeGCC, core.Options{StepLimit: 100_000_000})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.RunContext(ctx, art)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil on cancellation", res)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("cancellation took %v; not prompt", elapsed)
	}
	eng.adm.mu.Lock()
	inflight, queued := eng.adm.inflight, eng.adm.waiters.Len()
	eng.adm.mu.Unlock()
	if inflight != 0 || queued != 0 {
		t.Fatalf("admission state leaked: inflight=%d queued=%d", inflight, queued)
	}
	// The canceled run's result must not have been cached, and the
	// single slot must be free: a fresh run completes.
	quick := mustBuild(t, eng, sumKernel, core.ModeCash, core.Options{})
	mustRun(t, eng, quick)
}

// TestBuildContextPreCanceled: a dead context never compiles.
func TestBuildContextPreCanceled(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.BuildContext(ctx, sumKernel, core.ModeCash, core.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAdmissionQueuesAndCancels pins the FIFO admission contract on a
// one-slot engine: a second request waits, a canceled waiter leaves the
// queue (counted), and the slot is handed on intact.
func TestAdmissionQueuesAndCancels(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInFlight: 1, CacheBytes: -1, PoolSize: -1})
	waits := counter("serve.admission.waits")
	canceled := counter("serve.admission.canceled")

	if err := eng.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A waiter behind the held slot cancels out of the queue.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.acquire(ctx) }()
	for {
		eng.adm.mu.Lock()
		queued := eng.adm.waiters.Len()
		eng.adm.mu.Unlock()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	if got := counter("serve.admission.waits") - waits; got != 1 {
		t.Fatalf("waits delta = %d, want 1", got)
	}
	if got := counter("serve.admission.canceled") - canceled; got != 1 {
		t.Fatalf("canceled delta = %d, want 1", got)
	}
	// A second waiter is granted the slot when the holder releases.
	go func() { done <- eng.acquire(context.Background()) }()
	for {
		eng.adm.mu.Lock()
		queued := eng.adm.waiters.Len()
		eng.adm.mu.Unlock()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	eng.release()
	if err := <-done; err != nil {
		t.Fatalf("queued waiter got %v, want grant", err)
	}
	eng.release()
	eng.adm.mu.Lock()
	defer eng.adm.mu.Unlock()
	if eng.adm.inflight != 0 || eng.adm.waiters.Len() != 0 {
		t.Fatalf("admission state leaked: inflight=%d queued=%d", eng.adm.inflight, eng.adm.waiters.Len())
	}
}

// TestCompareContextMatchesPlainCompare: the engine-served comparison
// is the plain one, byte for byte.
func TestCompareContextMatchesPlainCompare(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	want, err := core.Compare("heap", heapKernel, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.CompareContext(context.Background(), "heap", heapKernel, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("engine comparison differs:\n%+v\nvs\n%+v", want, got)
	}
}
