package vm

import "cash/internal/obs"

// Process-wide totals of simulated work, published into the shared
// observability registry (internal/obs) once per Machine.Run with the
// run's delta — the atomics cost nothing on the per-instruction path and
// have no effect on any per-run Result. SimCounters reads the same
// registry counters, so the throughput line and `cashbench -metrics`
// can never disagree.
var (
	mSimInstructions = obs.Default().Counter("vm.sim.instructions")
	mSimCycles       = obs.Default().Counter("vm.sim.cycles")
	mRuns            = obs.Default().Counter("vm.runs")

	mFaultSegmentation = obs.Default().Counter("vm.faults.segmentation")
	mFaultPage         = obs.Default().Counter("vm.faults.page")
	mFaultSWCheck      = obs.Default().Counter("vm.faults.software_check")
	mFaultDivide       = obs.Default().Counter("vm.faults.divide")
	mFaultInvalid      = obs.Default().Counter("vm.faults.invalid")
	mFaultStepLimit    = obs.Default().Counter("vm.faults.step_limit")
	mFaultTransient    = obs.Default().Counter("vm.faults.transient")
	mFaultCanceled     = obs.Default().Counter("vm.faults.canceled")
	mFaultOther        = obs.Default().Counter("vm.faults.other")

	// Tier-2 superblock activity (see superblock.go): compiled is added
	// once per program at superblock-compile time; the rest are one batch
	// per tier-2 run. A high deopts/entries ratio is the deopt-storm
	// signal the metrics goldens make visible.
	mSBCompiled = obs.Default().Counter("vm.sb.compiled")
	mSBEntries  = obs.Default().Counter("vm.sb.entries")
	mSBDeopts   = obs.Default().Counter("vm.sb.deopts")
	mSBRetired  = obs.Default().Counter("vm.sb.instrs_retired")
)

func countSim(instructions, cycles uint64) {
	if instructions != 0 {
		mSimInstructions.Add(instructions)
	}
	if cycles != 0 {
		mSimCycles.Add(cycles)
	}
}

// countFault publishes one finished run's fault classification.
func countFault(k FaultKind) {
	switch k {
	case FaultSegmentation:
		mFaultSegmentation.Inc()
	case FaultPage:
		mFaultPage.Inc()
	case FaultSoftwareCheck:
		mFaultSWCheck.Inc()
	case FaultDivide:
		mFaultDivide.Inc()
	case FaultInvalid:
		mFaultInvalid.Inc()
	case FaultStepLimit:
		mFaultStepLimit.Inc()
	case FaultTransient:
		mFaultTransient.Inc()
	case FaultCanceled:
		mFaultCanceled.Inc()
	default:
		mFaultOther.Inc()
	}
}

// countSB publishes one tier-2 run's superblock activity.
func countSB(entries, deopts, retired uint64) {
	if entries != 0 {
		mSBEntries.Add(entries)
	}
	if deopts != 0 {
		mSBDeopts.Add(deopts)
	}
	if retired != 0 {
		mSBRetired.Add(retired)
	}
}

// SBCounters returns the process-wide tier-2 totals: superblocks
// compiled, superblock entries, deopt exits, and instructions retired
// inside superblocks.
func SBCounters() (compiled, entries, deopts, retired uint64) {
	return mSBCompiled.Value(), mSBEntries.Value(), mSBDeopts.Value(), mSBRetired.Value()
}

// SimCounters returns the process-wide totals of simulated instructions
// and cycles executed by all machines so far. Safe to call concurrently
// with running machines; a machine's contribution appears when its Run
// returns.
func SimCounters() (instructions, cycles uint64) {
	return mSimInstructions.Value(), mSimCycles.Value()
}
