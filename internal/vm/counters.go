package vm

import "sync/atomic"

// Process-wide totals of simulated work, accumulated by every Machine.Run
// (including runs that fault). They exist for host-side throughput
// reporting — simulated instructions per host second — and have no effect
// on any per-run Result. Updated once per Run with the run's delta, so
// the atomics cost nothing on the per-instruction path.
var (
	simInstructions atomic.Uint64
	simCycles       atomic.Uint64
)

func countSim(instructions, cycles uint64) {
	if instructions != 0 {
		simInstructions.Add(instructions)
	}
	if cycles != 0 {
		simCycles.Add(cycles)
	}
}

// SimCounters returns the process-wide totals of simulated instructions
// and cycles executed by all machines so far. Safe to call concurrently
// with running machines; a machine's contribution appears when its Run
// returns.
func SimCounters() (instructions, cycles uint64) {
	return simInstructions.Load(), simCycles.Load()
}
