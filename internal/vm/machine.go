package vm

import (
	"fmt"

	"cash/internal/ldt"
	"cash/internal/mem"
	"cash/internal/paging"
	"cash/internal/x86seg"
)

// Mode identifies which compiler produced the program being run; it
// selects the behaviour of the runtime library services (chiefly malloc's
// object layout).
type Mode int

// Compiler modes.
const (
	// ModeGCC is the unchecked baseline.
	ModeGCC Mode = iota + 1
	// ModeBCC is software-only bound checking (3-word pointers,
	// 6-instruction checks).
	ModeBCC
	// ModeCash is segmentation-hardware bound checking (2-word pointers,
	// 3-word info structures, per-array segments).
	ModeCash
)

func (m Mode) String() string {
	switch m {
	case ModeGCC:
		return "gcc"
	case ModeBCC:
		return "bcc"
	case ModeCash:
		return "cash"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// GDT layout used by the simulated OS.
const (
	gdtFlatCode = 1
	gdtFlatData = 2
)

// FlatCodeSelector and FlatDataSelector are the flat 4 GiB segments the
// simulated Linux kernel installs; FlatDataSelector is also Cash's "global
// segment" fall-back when the LDT is exhausted (§3.4).
var (
	FlatCodeSelector = x86seg.NewSelector(gdtFlatCode, x86seg.GDT, 3)
	FlatDataSelector = x86seg.NewSelector(gdtFlatData, x86seg.GDT, 3)
)

// System call and host service numbers.
const (
	SysExit           = 1
	SysSetLDTCallGate = 17

	GateAllocSegment = 1
	GateFreeSegment  = 2

	HostPrintInt = 1
	HostPrintCh  = 2
	HostMalloc   = 3
	HostFree     = 4
)

// InfoStructSize is the size of the per-object information structure:
// lower bound, upper bound, LDT selector (3 words, §3.2).
const InfoStructSize = 12

// Stats are the dynamic execution statistics the paper reports.
type Stats struct {
	Instructions uint64
	HWChecks     uint64 // memory refs limit-checked through an array segment
	SWChecks     uint64 // software bound-check sequences executed
	BoundInstrs  uint64 // IA-32 bound instructions executed
	SegRegLoads  uint64 // MOV-to-segment-register count
	MallocCalls  uint64
	PageWalks    uint64
	LoopIters    uint64 // loop back-edges executed
	SpilledIters uint64 // back-edges of loops with more arrays than segment registers
}

// SpilledIterPct returns the share of executed loop iterations that
// belong to spilled loops — the parenthesised percentage of the paper's
// Tables 4 and 7.
func (s Stats) SpilledIterPct() float64 {
	if s.LoopIters == 0 {
		return 0
	}
	return float64(s.SpilledIters) / float64(s.LoopIters) * 100
}

// Result summarises a completed run.
type Result struct {
	Cycles   uint64
	ExitCode int32
	Output   []int32
	Stats    Stats
	LDTStats ldt.Stats
}

// TraceEntry records one address translation for the Figure-1 pipeline
// demonstration.
type TraceEntry struct {
	Seg      x86seg.SegReg
	Selector x86seg.Selector
	Offset   uint32
	Linear   uint32
	Physical uint32
	Write    bool
}

// Option configures a Machine.
type Option func(*Machine)

// WithPaging enables the two-level page-table walk behind segmentation,
// identity-mapping the first n bytes of the linear space.
func WithPaging(n uint32) Option {
	return func(m *Machine) { m.pages = paging.NewIdentity(n) }
}

// WithStepLimit caps the number of executed instructions.
func WithStepLimit(n uint64) Option {
	return func(m *Machine) { m.stepLimit = n }
}

// WithTrace installs a hook receiving every address translation.
func WithTrace(fn func(TraceEntry)) Option {
	return func(m *Machine) { m.trace = fn }
}

// WithoutCallGate suppresses call-gate installation so that every segment
// allocation pays the stock modify_ldt cost (781 cycles) — the §3.6
// ablation.
func WithoutCallGate() Option {
	return func(m *Machine) { m.noGate = true }
}

// WithElectricFence turns malloc into the Electric Fence debugger the
// paper's related work discusses (§2): every heap object is placed so it
// ends at a page boundary and the following page is left unmapped, so an
// overflowing reference takes a page fault with zero per-check cost —
// at the price of at least two pages of address space per allocation.
// Requires WithPaging.
func WithElectricFence() Option {
	return func(m *Machine) { m.efence = true }
}

// Machine executes a Program. Create one per run with New; machines are
// not safe for concurrent use.
type Machine struct {
	prog *Program
	mode Mode

	memory *mem.Memory
	mmu    *x86seg.MMU
	pages  *paging.Directory
	ldtMgr *ldt.Manager

	regs  [NumRegs]uint32
	eq    bool // last compare: equal
	lt    bool // last compare: signed less-than
	below bool // last compare: unsigned below

	ip        int
	heap      uint32
	cycles    uint64
	stepLimit uint64
	noGate    bool
	efence    bool
	guards    map[uint32]bool // Electric Fence guard pages
	halted    bool
	exitCode  int32

	output []int32
	stats  Stats
	trace  func(TraceEntry)
}

// DefaultStepLimit bounds runaway programs.
const DefaultStepLimit = 2_000_000_000

// New prepares a machine for the given program: physical memory holding
// the data image, a GDT with flat code/data segments, an empty LDT with
// its manager, and registers initialised to the simulated Linux process
// state (flat CS/DS/SS/ES, null FS/GS, ESP at the stack top).
func New(prog *Program, mode Mode, opts ...Option) (*Machine, error) {
	m := &Machine{
		prog:      prog,
		mode:      mode,
		memory:    mem.New(),
		mmu:       x86seg.NewMMU(),
		stepLimit: DefaultStepLimit,
		heap:      prog.HeapBase,
	}
	for _, o := range opts {
		o(m)
	}
	m.ldtMgr = ldt.NewManager(m.mmu.LDT())

	flatCode, err := x86seg.NewDataDescriptor(0, 0xffffffff)
	if err != nil {
		return nil, err
	}
	flatCode.Kind = x86seg.KindCode
	flatData, err := x86seg.NewDataDescriptor(0, 0xffffffff)
	if err != nil {
		return nil, err
	}
	if err := m.mmu.GDT().Set(gdtFlatCode, flatCode); err != nil {
		return nil, err
	}
	if err := m.mmu.GDT().Set(gdtFlatData, flatData); err != nil {
		return nil, err
	}
	for _, r := range []x86seg.SegReg{x86seg.DS, x86seg.SS, x86seg.ES} {
		if err := m.mmu.Load(r, FlatDataSelector); err != nil {
			return nil, err
		}
	}
	if err := m.mmu.Load(x86seg.CS, FlatCodeSelector); err != nil {
		return nil, err
	}
	// FS and GS start null, so use before load faults (§3.1).
	if err := m.mmu.Load(x86seg.FS, x86seg.NewSelector(0, x86seg.GDT, 0)); err != nil {
		return nil, err
	}
	if err := m.mmu.Load(x86seg.GS, x86seg.NewSelector(0, x86seg.GDT, 0)); err != nil {
		return nil, err
	}

	m.memory.WriteBytes(prog.DataBase, prog.Data)
	m.regs[ESP] = prog.StackTop
	m.ip = prog.Entry
	if m.pages != nil {
		// Identity-map the stack region too; WithPaging(n) covers only
		// the low data/heap range.
		for lin := (prog.StackTop - 1<<20) &^ 0xfff; lin < prog.StackTop; lin += paging.PageSize {
			m.pages.Map(lin, lin, true)
		}
	}
	return m, nil
}

// LDTManager exposes the machine's segment allocation manager.
func (m *Machine) LDTManager() *ldt.Manager { return m.ldtMgr }

// MMU exposes the segmentation unit (for tests and the trace tool).
func (m *Machine) MMU() *x86seg.MMU { return m.mmu }

// Memory exposes physical memory (for tests and loaders).
func (m *Machine) Memory() *mem.Memory { return m.memory }

// Reg returns the value of a general-purpose register.
func (m *Machine) Reg(r Reg) uint32 { return m.regs[r] }

// SetReg sets a general-purpose register (for test harnesses).
func (m *Machine) SetReg(r Reg, v uint32) { m.regs[r] = v }

// Cycles returns the cycle count so far, including LDT manager charges.
func (m *Machine) Cycles() uint64 { return m.cycles + m.ldtMgr.Cycles() }

// HeapSpan returns the amount of heap address space consumed so far —
// the quantity Electric Fence inflates by a page-pair per allocation.
func (m *Machine) HeapSpan() uint32 { return m.heap - m.prog.HeapBase }

// IsGuardFault reports whether f is a page fault on an Electric Fence
// guard page — i.e. a detected heap overrun, as opposed to an unrelated
// wild access.
func (m *Machine) IsGuardFault(f *Fault) bool {
	if f == nil || f.Kind != FaultPage || len(m.guards) == 0 {
		return false
	}
	pf, ok := f.Cause.(*paging.PageFault)
	if !ok {
		return false
	}
	return m.guards[pf.Linear&^0xfff]
}

func (m *Machine) fault(kind FaultKind, cause error) *Fault {
	instr := ""
	if m.ip >= 0 && m.ip < len(m.prog.Instrs) {
		instr = m.prog.Instrs[m.ip].String()
	}
	return &Fault{Kind: kind, IP: m.ip, Instr: instr, Cause: cause}
}

// Run executes the program from its entry point until HLT, exit, a fault,
// or the step limit. On a detected bound violation the returned error is a
// *Fault with IsBoundViolation() == true.
func (m *Machine) Run() (*Result, error) {
	for !m.halted {
		if m.stats.Instructions >= m.stepLimit {
			return m.result(), m.fault(FaultStepLimit, nil)
		}
		if m.ip < 0 || m.ip >= len(m.prog.Instrs) {
			return m.result(), m.fault(FaultInvalid, fmt.Errorf("ip %d outside program", m.ip))
		}
		if err := m.step(); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() *Result {
	return &Result{
		Cycles:   m.Cycles(),
		ExitCode: m.exitCode,
		Output:   m.output,
		Stats:    m.stats,
		LDTStats: m.ldtMgr.Stats(),
	}
}

// effAddr computes the effective (segment-relative) address of a memory
// operand.
func (m *Machine) effAddr(ref MemRef) uint32 {
	ea := uint32(ref.Disp)
	if ref.HasBase {
		ea += m.regs[ref.Base]
	}
	if ref.HasIndex {
		scale := uint32(ref.Scale)
		if scale == 0 {
			scale = 1
		}
		ea += m.regs[ref.Index] * scale
	}
	return ea
}

// translate maps a segment-relative access to a physical address, applying
// the segment limit check and (if enabled) the page walk. Accesses through
// a segment register holding an LDT selector are counted as hardware bound
// checks — those are exactly Cash's per-array segments.
func (m *Machine) translate(ref MemRef, size uint8, write bool) (uint32, error) {
	ea := m.effAddr(ref)
	// Every reference through an array segment (an LDT selector) is a
	// hardware bound check — counted whether it passes or faults.
	if m.mmu.Selector(ref.Seg).Table() == x86seg.LDT {
		m.stats.HWChecks++
	}
	lin, err := m.mmu.Translate(ref.Seg, ea, uint32(size), write)
	if err != nil {
		return 0, m.fault(FaultSegmentation, err)
	}
	phys := lin
	if m.pages != nil {
		phys, err = m.pages.Translate(lin, write)
		if err != nil {
			return 0, m.fault(FaultPage, err)
		}
		m.stats.PageWalks++
	}
	if m.trace != nil {
		m.trace(TraceEntry{
			Seg: ref.Seg, Selector: m.mmu.Selector(ref.Seg),
			Offset: ea, Linear: lin, Physical: phys, Write: write,
		})
	}
	return phys, nil
}

func (m *Machine) load(ref MemRef, size uint8) (uint32, error) {
	phys, err := m.translate(ref, size, false)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint32(m.memory.Read8(phys)), nil
	case 2:
		return uint32(m.memory.Read16(phys)), nil
	default:
		return m.memory.Read32(phys), nil
	}
}

func (m *Machine) store(ref MemRef, size uint8, v uint32) error {
	phys, err := m.translate(ref, size, true)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		m.memory.Write8(phys, uint8(v))
	case 2:
		m.memory.Write16(phys, uint16(v))
	default:
		m.memory.Write32(phys, v)
	}
	return nil
}

func (m *Machine) get(o Operand, size uint8) (uint32, error) {
	switch o.Kind {
	case KindReg:
		return m.regs[o.Reg], nil
	case KindImm:
		return uint32(o.Imm), nil
	case KindMem:
		return m.load(o.Mem, size)
	case KindSReg:
		return uint32(m.mmu.Selector(o.SReg)), nil
	default:
		return 0, m.fault(FaultInvalid, fmt.Errorf("read of empty operand"))
	}
}

func (m *Machine) set(o Operand, size uint8, v uint32) error {
	switch o.Kind {
	case KindReg:
		m.regs[o.Reg] = v
		return nil
	case KindMem:
		return m.store(o.Mem, size, v)
	default:
		return m.fault(FaultInvalid, fmt.Errorf("write to %v operand", o.Kind))
	}
}

// push/pop (and CALL/RET through them) address the stack through DS
// rather than SS. Under the simulated Linux both are the identical flat
// segment, and this models the §3.7 rewriting that frees SS for array
// bound checking: PUSH/POP become MOV+SUB/ADD through DS, so stack
// operations keep working when SS holds an array selector.
func (m *Machine) push(v uint32) error {
	m.regs[ESP] -= 4
	return m.store(MemRef{Seg: x86seg.DS, Base: ESP, HasBase: true}, 4, v)
}

func (m *Machine) pop() (uint32, error) {
	v, err := m.load(MemRef{Seg: x86seg.DS, Base: ESP, HasBase: true}, 4)
	if err != nil {
		return 0, err
	}
	m.regs[ESP] += 4
	return v, nil
}

func (m *Machine) condition(op Op) bool {
	switch op {
	case JE:
		return m.eq
	case JNE:
		return !m.eq
	case JL:
		return m.lt
	case JLE:
		return m.lt || m.eq
	case JG:
		return !m.lt && !m.eq
	case JGE:
		return !m.lt
	case JB:
		return m.below
	case JAE:
		return !m.below
	case JA:
		return !m.below && !m.eq
	case JBE:
		return m.below || m.eq
	default:
		return false
	}
}

func (m *Machine) step() error {
	in := &m.prog.Instrs[m.ip]
	m.stats.Instructions++
	m.cycles += in.baseCost()
	switch in.Note {
	case NoteSWCheck:
		m.stats.SWChecks++
	case NoteLoopBackedge:
		m.stats.LoopIters++
	case NoteSpilledBackedge:
		m.stats.LoopIters++
		m.stats.SpilledIters++
	}
	size := in.Size
	if size == 0 {
		size = 4
	}
	next := m.ip + 1

	switch in.Op {
	case NOP:

	case MOV:
		v, err := m.get(in.Src, size)
		if err != nil {
			return err
		}
		if err := m.set(in.Dst, size, v); err != nil {
			return err
		}

	case LEA:
		if in.Src.Kind != KindMem {
			return m.fault(FaultInvalid, fmt.Errorf("lea needs memory source"))
		}
		if err := m.set(in.Dst, 4, m.effAddr(in.Src.Mem)); err != nil {
			return err
		}

	case ADD, SUB, IMUL, IDIV, IMOD, AND, OR, XOR, SHL, SHR, SAR:
		a, err := m.get(in.Dst, size)
		if err != nil {
			return err
		}
		b, err := m.get(in.Src, size)
		if err != nil {
			return err
		}
		var v uint32
		switch in.Op {
		case ADD:
			v = a + b
		case SUB:
			v = a - b
		case IMUL:
			v = uint32(int32(a) * int32(b))
		case IDIV:
			if b == 0 {
				return m.fault(FaultDivide, nil)
			}
			v = uint32(int32(a) / int32(b))
		case IMOD:
			if b == 0 {
				return m.fault(FaultDivide, nil)
			}
			v = uint32(int32(a) % int32(b))
		case AND:
			v = a & b
		case OR:
			v = a | b
		case XOR:
			v = a ^ b
		case SHL:
			v = a << (b & 31)
		case SHR:
			v = a >> (b & 31)
		case SAR:
			v = uint32(int32(a) >> (b & 31))
		}
		if err := m.set(in.Dst, size, v); err != nil {
			return err
		}

	case NEG, NOT:
		a, err := m.get(in.Dst, size)
		if err != nil {
			return err
		}
		v := -a
		if in.Op == NOT {
			v = ^a
		}
		if err := m.set(in.Dst, size, v); err != nil {
			return err
		}

	case CMP:
		a, err := m.get(in.Dst, size)
		if err != nil {
			return err
		}
		b, err := m.get(in.Src, size)
		if err != nil {
			return err
		}
		m.eq = a == b
		m.lt = int32(a) < int32(b)
		m.below = a < b

	case TEST:
		a, err := m.get(in.Dst, size)
		if err != nil {
			return err
		}
		b, err := m.get(in.Src, size)
		if err != nil {
			return err
		}
		m.eq = a&b == 0
		m.lt = int32(a&b) < 0
		m.below = false

	case JMP:
		next = in.Target

	case JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		if m.condition(in.Op) {
			next = in.Target
		}

	case PUSH:
		v, err := m.get(in.Src, 4)
		if err != nil {
			return err
		}
		if err := m.push(v); err != nil {
			return err
		}

	case POP:
		v, err := m.pop()
		if err != nil {
			return err
		}
		if err := m.set(in.Dst, 4, v); err != nil {
			return err
		}

	case CALL:
		if err := m.push(uint32(m.ip + 1)); err != nil {
			return err
		}
		next = in.Target

	case RET:
		v, err := m.pop()
		if err != nil {
			return err
		}
		next = int(v)

	case MOVSR:
		v, err := m.get(in.Src, 2)
		if err != nil {
			return err
		}
		if err := m.mmu.Load(in.Dst.SReg, x86seg.Selector(v)); err != nil {
			return m.fault(FaultSegmentation, err)
		}
		m.stats.SegRegLoads++

	case MOVRS:
		if err := m.set(in.Dst, 4, uint32(m.mmu.Selector(in.Src.SReg))); err != nil {
			return err
		}

	case BOUND:
		m.stats.BoundInstrs++
		m.stats.SWChecks++
		idx, err := m.get(in.Dst, 4)
		if err != nil {
			return err
		}
		if in.Src.Kind != KindMem {
			return m.fault(FaultInvalid, fmt.Errorf("bound needs memory bounds"))
		}
		lower, err := m.load(in.Src.Mem, 4)
		if err != nil {
			return err
		}
		upperRef := in.Src.Mem
		upperRef.Disp += 4
		upper, err := m.load(upperRef, 4)
		if err != nil {
			return err
		}
		if idx < lower || idx >= upper {
			return m.fault(FaultSoftwareCheck,
				fmt.Errorf("bound: %#x outside [%#x,%#x)", idx, lower, upper))
		}

	case TRAP:
		return m.fault(FaultSoftwareCheck, fmt.Errorf("%s", in.Sym))

	case INT:
		if err := m.syscall(); err != nil {
			return err
		}

	case LCALL:
		if err := m.gateCall(); err != nil {
			return err
		}

	case HCALL:
		if err := m.hostCall(in.Src.Imm); err != nil {
			return err
		}

	case HLT:
		m.halted = true

	default:
		return m.fault(FaultInvalid, fmt.Errorf("unknown opcode %v", in.Op))
	}

	m.ip = next
	return nil
}
