package vm

import (
	"context"
	"fmt"

	"cash/internal/ldt"
	"cash/internal/mem"
	"cash/internal/obs"
	"cash/internal/paging"
	"cash/internal/x86seg"
)

// Mode identifies which compiler produced the program being run; it
// selects the behaviour of the runtime library services (chiefly malloc's
// object layout).
type Mode int

// Compiler modes.
const (
	// ModeGCC is the unchecked baseline.
	ModeGCC Mode = iota + 1
	// ModeBCC is software-only bound checking (3-word pointers,
	// 6-instruction checks).
	ModeBCC
	// ModeCash is segmentation-hardware bound checking (2-word pointers,
	// 3-word info structures, per-array segments).
	ModeCash
	// ModeMPX is bounds-table checking in the style of Intel MPX: thin
	// 1-word pointers whose bounds live in a shadow bounds table keyed by
	// the pointer's storage location, loaded and stored with
	// BNDLDX/BNDSTX and checked with BNDCL/BNDCU.
	ModeMPX
)

func (m Mode) String() string {
	switch m {
	case ModeGCC:
		return "gcc"
	case ModeBCC:
		return "bcc"
	case ModeCash:
		return "cash"
	case ModeMPX:
		return "mpx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// GDT layout used by the simulated OS.
const (
	gdtFlatCode = 1
	gdtFlatData = 2
)

// FlatCodeSelector and FlatDataSelector are the flat 4 GiB segments the
// simulated Linux kernel installs; FlatDataSelector is also Cash's "global
// segment" fall-back when the LDT is exhausted (§3.4).
var (
	FlatCodeSelector = x86seg.NewSelector(gdtFlatCode, x86seg.GDT, 3)
	FlatDataSelector = x86seg.NewSelector(gdtFlatData, x86seg.GDT, 3)
)

// System call and host service numbers.
const (
	SysExit           = 1
	SysSetLDTCallGate = 17

	GateAllocSegment = 1
	GateFreeSegment  = 2

	HostPrintInt = 1
	HostPrintCh  = 2
	HostMalloc   = 3
	HostFree     = 4
)

// InfoStructSize is the size of the per-object information structure:
// lower bound, upper bound, LDT selector (3 words, §3.2).
const InfoStructSize = 12

// Stats are the dynamic execution statistics the paper reports.
type Stats struct {
	Instructions uint64
	HWChecks     uint64 // memory refs limit-checked through an array segment
	SWChecks     uint64 // software bound-check sequences executed
	BoundInstrs  uint64 // IA-32 bound instructions executed
	BndChecks    uint64 // MPX bndcl/bndcu check pairs executed
	BndLoads     uint64 // MPX bndldx bounds-table loads
	BndStores    uint64 // MPX bndstx bounds-table stores
	SegRegLoads  uint64 // MOV-to-segment-register count
	MallocCalls  uint64
	PageWalks    uint64
	LoopIters    uint64 // loop back-edges executed
	SpilledIters uint64 // back-edges of loops with more arrays than segment registers
	// FlatFallbacks counts segment allocations that fell back to the flat
	// data segment because the LDT was exhausted (§3.4) — the signal the
	// resilience harness uses to classify a request as degraded.
	FlatFallbacks uint64
}

// SpilledIterPct returns the share of executed loop iterations that
// belong to spilled loops — the parenthesised percentage of the paper's
// Tables 4 and 7.
func (s Stats) SpilledIterPct() float64 {
	if s.LoopIters == 0 {
		return 0
	}
	return float64(s.SpilledIters) / float64(s.LoopIters) * 100
}

// Result summarises a completed run.
type Result struct {
	Cycles   uint64
	ExitCode int32
	Output   []int32
	Stats    Stats
	LDTStats ldt.Stats
	// SB reports superblock activity when the machine ran with WithTier2;
	// nil under step execution. Host-side observability only — no
	// simulated quantity depends on it.
	SB *SBStats
}

// TraceEntry records one address translation for the Figure-1 pipeline
// demonstration.
type TraceEntry struct {
	Seg      x86seg.SegReg
	Selector x86seg.Selector
	Offset   uint32
	Linear   uint32
	Physical uint32
	Write    bool
}

// Option configures a Machine.
type Option func(*Machine)

// WithPaging enables the two-level page-table walk behind segmentation,
// identity-mapping the first n bytes of the linear space.
func WithPaging(n uint32) Option {
	return func(m *Machine) { m.pages = paging.NewIdentity(n) }
}

// WithStepLimit caps the number of executed instructions.
func WithStepLimit(n uint64) Option {
	return func(m *Machine) { m.stepLimit = n }
}

// WithTier2 enables superblock execution (tier 2): the compiler's hot
// regions are fused into single closures with bulk counter accounting,
// deopting to the step interpreter at a precise instruction boundary on
// any fault or side exit (see superblock.go). Simulated output,
// counters and violation verdicts are identical to step execution;
// only host speed changes.
func WithTier2() Option {
	return func(m *Machine) { m.tier2 = true }
}

// WithTrace installs a hook receiving every address translation.
func WithTrace(fn func(TraceEntry)) Option {
	return func(m *Machine) { m.trace = fn }
}

// WithEventTrace attaches a structured event trace (internal/obs): the
// machine emits segment-register loads and run-ending faults, and wires
// the trace into the LDT manager for allocation/descriptor events.
// Event emission is a nil check when no trace is attached, so the
// simulated numbers are identical either way.
func WithEventTrace(tr *obs.Trace) Option {
	return func(m *Machine) { m.etrace = tr }
}

// WithoutCallGate suppresses call-gate installation so that every segment
// allocation pays the stock modify_ldt cost (781 cycles) — the §3.6
// ablation.
func WithoutCallGate() Option {
	return func(m *Machine) { m.noGate = true }
}

// WithCancel makes Run honor ctx: the machine polls ctx.Err() every
// cancelStride instructions (between simulated basic blocks, folded into
// the existing step-limit compare, so the per-instruction path is
// unchanged) and stops with a FaultCanceled wrapping ctx.Err(). A nil
// ctx is ignored.
func WithCancel(ctx context.Context) Option {
	return func(m *Machine) { m.ctx = ctx }
}

// Parts is the reusable allocation-heavy state of a machine: the dense
// physical memory arenas, the MMU with its descriptor tables, and the
// LDT manager with its 8191-entry free list. A serving layer recycles
// Parts across runs via WithParts; everything else about a Machine is
// cheap per-run state.
type Parts struct {
	Mem *mem.Memory
	MMU *x86seg.MMU
	LDT *ldt.Manager
}

// WithParts makes New reuse previously allocated machine parts instead
// of allocating fresh ones, provided the memory geometry matches
// GeometryFor(prog) (otherwise the parts are ignored and fresh state is
// allocated). The parts are Reset to their pristine state first, so a
// recycled machine is observationally identical to a fresh one — the
// pool equivalence tests pin this.
func WithParts(p Parts) Option {
	return func(m *Machine) { m.reuse = p }
}

// Fault-injection mechanism options. Each implements one chaos Site
// (internal/chaos); the netsim resilience harness composes them. They are
// inert unless explicitly requested, so the standard benchmark paths are
// untouched.

// WithLDTAudit enables the ldt.Manager's audit bookkeeping so the
// post-run invariant checker can validate free-list conservation and
// descriptor-table consistency.
func WithLDTAudit() Option {
	return func(m *Machine) { m.ldtAudit = true }
}

// WithLDTReserve marks n LDT entries as held by other consumers before
// the program starts, modelling external pressure on the shared table —
// with the full budget reserved, every allocation takes the §3.4
// flat-segment fallback.
func WithLDTReserve(n int) Option {
	return func(m *Machine) { m.ldtReserve = n }
}

// WithTransientAllocFault makes the first segment-allocation kernel entry
// fail with a transient (retryable) error, modelling modify_ldt returning
// EAGAIN under allocation churn.
func WithTransientAllocFault() Option {
	return func(m *Machine) { m.chaosTransient = true }
}

// WithDescriptorCorruption rewrites the first installed array descriptor
// behind the allocator's back, shrinking it to a one-byte segment. The
// handler's next access through it takes a #GP, or — if the segment is
// never touched — the post-run invariant checker flags the drift.
func WithDescriptorCorruption() Option {
	return func(m *Machine) { m.chaosCorruptDesc = true }
}

// WithShadowCorruption damages the user-space free_ldt_entry list after
// the first allocation (the §3.8 shadow-structure overwrite scenario);
// the invariant checker detects the duplicate entry.
func WithShadowCorruption() Option {
	return func(m *Machine) { m.chaosCorruptShadow = true }
}

// WithPoke overwrites bytes of physical memory after the data image is
// loaded — the malformed-request injection scribbles the embedded request
// buffer with it.
func WithPoke(addr uint32, data []byte) Option {
	return func(m *Machine) { m.pokeAddr, m.pokeData = addr, data }
}

// WithPageUnmap removes the page mapping covering linear before execution
// starts, modelling a page-table unmap race. Requires WithPaging.
func WithPageUnmap(linear uint32) Option {
	return func(m *Machine) { m.unmapLinear, m.unmapSet = linear, true }
}

// WithElectricFence turns malloc into the Electric Fence debugger the
// paper's related work discusses (§2): every heap object is placed so it
// ends at a page boundary and the following page is left unmapped, so an
// overflowing reference takes a page fault with zero per-check cost —
// at the price of at least two pages of address space per allocation.
// Requires WithPaging.
func WithElectricFence() Option {
	return func(m *Machine) { m.efence = true }
}

// Machine executes a Program. Create one per run with New; machines are
// not safe for concurrent use.
type Machine struct {
	prog *Program
	mode Mode

	memory *mem.Memory
	mmu    *x86seg.MMU
	pages  *paging.Directory
	ldtMgr *ldt.Manager

	regs  [NumRegs]uint32
	eq    bool // last compare: equal
	lt    bool // last compare: signed less-than
	below bool // last compare: unsigned below

	ip        int
	heap      uint32
	cycles    uint64
	stepLimit uint64
	ctx       context.Context // nil unless WithCancel
	nextStop  uint64          // next instruction count to pause at (step limit or cancel poll)
	reuse     Parts           // candidate recycled state from WithParts
	noGate    bool
	efence    bool
	plain     bool            // no paging, no trace: memory fast path applies
	guards    map[uint32]bool // Electric Fence guard pages
	// bnd is the MPX shadow bounds table: pointer-slot address ->
	// (lower, upper). Allocated lazily by the first BNDSTX; a missing
	// entry reads as the unbounded INIT pair, exactly like MPX's lazily
	// populated Bounds Tables.
	bnd      map[uint32][2]uint32
	halted   bool
	exitCode int32
	cloned   bool // built from a Snapshot: publish COW-page deltas

	// Tier-2 state (see superblock.go): the shared superblock table and
	// this machine's entry/deopt/retired tallies.
	tier2     bool
	sbt       *sbTable
	sbEntries uint64
	sbDeopts  uint64
	sbRetired uint64
	sbw       segWindows // cached sbWindows, valid while sbwGen == mmu.Gen()
	sbwGen    uint64

	// Fault-injection mechanisms (see the With* chaos options). At most
	// one of the one-shot corruptions fires per run (chaosFired latches).
	ldtAudit           bool
	ldtReserve         int
	chaosTransient     bool
	chaosCorruptDesc   bool
	chaosCorruptShadow bool
	chaosFired         bool
	pokeAddr           uint32
	pokeData           []byte
	unmapLinear        uint32
	unmapSet           bool

	output []int32
	stats  Stats
	trace  func(TraceEntry)
	etrace *obs.Trace // structured event trace; nil = off
}

// DefaultStepLimit bounds runaway programs.
const DefaultStepLimit = 2_000_000_000

// New prepares a machine for the given program: physical memory holding
// the data image, a GDT with flat code/data segments, an empty LDT with
// its manager, and registers initialised to the simulated Linux process
// state (flat CS/DS/SS/ES, null FS/GS, ESP at the stack top).
func New(prog *Program, mode Mode, opts ...Option) (*Machine, error) {
	m := &Machine{
		prog:      prog,
		mode:      mode,
		stepLimit: DefaultStepLimit,
		heap:      prog.HeapBase,
	}
	for _, o := range opts {
		o(m)
	}
	m.plain = m.pages == nil && m.trace == nil
	if m.tier2 {
		m.sbt = prog.superblocks()
	}
	// Recycle pooled parts when their memory geometry matches this
	// program; otherwise (or with no parts) allocate fresh. Reset before
	// use makes a recycled machine indistinguishable from a fresh one.
	if g := GeometryFor(prog); m.reuse.Mem != nil && m.reuse.MMU != nil &&
		m.reuse.LDT != nil && m.reuse.Mem.Geometry() == g {
		m.memory, m.mmu, m.ldtMgr = m.reuse.Mem, m.reuse.MMU, m.reuse.LDT
		m.memory.Reset()
		m.mmu.Reset()
		m.ldtMgr.Reset(m.mmu.LDT())
	} else {
		m.memory = mem.NewDense(g.LoSize, g.HiBase, g.HiSize)
		m.mmu = x86seg.NewMMU()
		m.ldtMgr = ldt.NewManager(m.mmu.LDT())
	}
	m.ldtMgr.SetTrace(m.etrace)

	flatCode, err := x86seg.NewDataDescriptor(0, 0xffffffff)
	if err != nil {
		return nil, err
	}
	flatCode.Kind = x86seg.KindCode
	flatData, err := x86seg.NewDataDescriptor(0, 0xffffffff)
	if err != nil {
		return nil, err
	}
	if err := m.mmu.GDT().Set(gdtFlatCode, flatCode); err != nil {
		return nil, err
	}
	if err := m.mmu.GDT().Set(gdtFlatData, flatData); err != nil {
		return nil, err
	}
	for _, r := range []x86seg.SegReg{x86seg.DS, x86seg.SS, x86seg.ES} {
		if err := m.mmu.Load(r, FlatDataSelector); err != nil {
			return nil, err
		}
	}
	if err := m.mmu.Load(x86seg.CS, FlatCodeSelector); err != nil {
		return nil, err
	}
	// FS and GS start null, so use before load faults (§3.1).
	if err := m.mmu.Load(x86seg.FS, x86seg.NewSelector(0, x86seg.GDT, 0)); err != nil {
		return nil, err
	}
	if err := m.mmu.Load(x86seg.GS, x86seg.NewSelector(0, x86seg.GDT, 0)); err != nil {
		return nil, err
	}

	m.memory.WriteBytes(prog.DataBase, prog.Data)
	m.regs[ESP] = prog.StackTop
	m.ip = prog.Entry
	if m.pages != nil {
		// Identity-map the stack region too; WithPaging(n) covers only
		// the low data/heap range.
		for lin := (prog.StackTop - 1<<20) &^ 0xfff; lin < prog.StackTop; lin += paging.PageSize {
			m.pages.Map(lin, lin, true)
		}
	}
	// Setup-time fault injections, applied after the pristine machine
	// state is in place so they perturb exactly what they model.
	if m.ldtAudit {
		m.ldtMgr.EnableAudit()
	}
	if m.ldtReserve > 0 {
		m.ldtMgr.Reserve(m.ldtReserve)
	}
	if m.pokeData != nil {
		m.memory.WriteBytes(m.pokeAddr, m.pokeData)
	}
	if m.unmapSet {
		if m.pages == nil {
			return nil, fmt.Errorf("vm: WithPageUnmap requires WithPaging")
		}
		m.pages.Unmap(m.unmapLinear &^ (paging.PageSize - 1))
	}
	return m, nil
}

// Arena sizing for denseMemoryFor. The low arena covers the code/data
// image and the heap's common growth; the high arena covers the stack
// window below the initial ESP. Addresses outside either arena spill to
// the sparse page map, so these are pure speed knobs, not limits.
const (
	loArenaSize    = 16 << 20
	stackArenaSize = 2 << 20
)

// GeometryFor returns the arena layout a machine for prog uses:
// arena-backed over the spans the program will actually touch, sparse
// everywhere else. Pooled Parts are reusable for a program exactly when
// their memory's Geometry equals GeometryFor(prog). HiBase is reported
// page-truncated, matching what mem.NewDense actually installs.
func GeometryFor(prog *Program) mem.Geometry {
	loSize := uint32(loArenaSize)
	if end := prog.HeapBase + (1 << 20); end > loSize && prog.HeapBase < (64<<20) {
		loSize = end
	}
	hiBase, hiSize := uint32(0), uint32(0)
	if prog.StackTop >= stackArenaSize && prog.StackTop-stackArenaSize >= loSize {
		hiBase = (prog.StackTop - stackArenaSize) &^ (mem.PageSize - 1)
		hiSize = stackArenaSize
	}
	return mem.Geometry{LoSize: loSize, HiBase: hiBase, HiSize: hiSize}
}

// Parts returns the machine's reusable allocation-heavy state, for a
// pool to recycle into a future New via WithParts. The caller must not
// hand out parts while the machine could still run.
func (m *Machine) Parts() Parts {
	return Parts{Mem: m.memory, MMU: m.mmu, LDT: m.ldtMgr}
}

// LDTManager exposes the machine's segment allocation manager.
func (m *Machine) LDTManager() *ldt.Manager { return m.ldtMgr }

// MMU exposes the segmentation unit (for tests and the trace tool).
func (m *Machine) MMU() *x86seg.MMU { return m.mmu }

// Memory exposes physical memory (for tests and loaders).
func (m *Machine) Memory() *mem.Memory { return m.memory }

// Reg returns the value of a general-purpose register.
func (m *Machine) Reg(r Reg) uint32 { return m.regs[r] }

// SetReg sets a general-purpose register (for test harnesses).
func (m *Machine) SetReg(r Reg, v uint32) { m.regs[r] = v }

// Cycles returns the cycle count so far, including LDT manager charges.
func (m *Machine) Cycles() uint64 { return m.cycles + m.ldtMgr.Cycles() }

// HeapSpan returns the amount of heap address space consumed so far —
// the quantity Electric Fence inflates by a page-pair per allocation.
func (m *Machine) HeapSpan() uint32 { return m.heap - m.prog.HeapBase }

// IsGuardFault reports whether f is a page fault on an Electric Fence
// guard page — i.e. a detected heap overrun, as opposed to an unrelated
// wild access.
func (m *Machine) IsGuardFault(f *Fault) bool {
	if f == nil || f.Kind != FaultPage || len(m.guards) == 0 {
		return false
	}
	pf, ok := f.Cause.(*paging.PageFault)
	if !ok {
		return false
	}
	return m.guards[pf.Linear&^0xfff]
}

func (m *Machine) fault(kind FaultKind, cause error) *Fault {
	instr := ""
	if m.ip >= 0 && m.ip < len(m.prog.Instrs) {
		instr = m.prog.Instrs[m.ip].String()
	}
	return &Fault{Kind: kind, IP: m.ip, Instr: instr, Cause: cause}
}

// cancelStride is how many instructions may execute between context
// polls under WithCancel: ~60µs of simulated work at the harness's
// typical host rate, so cancellation is prompt without putting a
// context check on the per-instruction path.
const cancelStride = 4096

// Run executes the program from its entry point until HLT, exit, a fault,
// the step limit, or cancellation of the WithCancel context. On a
// detected bound violation the returned error is a *Fault with
// IsBoundViolation() == true.
func (m *Machine) Run() (res *Result, err error) {
	c := m.prog.compiledProgram()
	n := len(c.exec)
	startInstrs, startCycles := m.stats.Instructions, m.cycles
	startSBEntries, startSBDeopts, startSBRetired := m.sbEntries, m.sbDeopts, m.sbRetired
	var startCow uint64
	if m.cloned {
		startCow = m.memory.CowPages()
	}
	defer func() {
		// Publish this run's observability delta: process-wide simulated
		// work, the fault classification, and the per-machine paging and
		// LDT activity. One batch of atomic adds per run, nothing on the
		// per-instruction path.
		countSim(m.stats.Instructions-startInstrs, m.cycles-startCycles)
		mRuns.Inc()
		if m.tier2 {
			countSB(m.sbEntries-startSBEntries, m.sbDeopts-startSBDeopts,
				m.sbRetired-startSBRetired)
		}
		if f, ok := err.(*Fault); ok && f != nil {
			countFault(f.Kind)
			if m.etrace.Enabled() {
				m.etrace.Emit(obs.EvFault, uint64(f.Kind), uint64(f.IP), f.Error())
			}
		}
		if m.pages != nil {
			m.pages.PublishMetrics()
		}
		m.ldtMgr.PublishMetrics()
		if m.cloned {
			mSnapCowPages.Add(m.memory.CowPages() - startCow)
		}
	}()
	// nextStop folds cancellation polling into the step-limit compare:
	// without a context it is the step limit itself; with one, the loop
	// pauses every cancelStride instructions to poll ctx.Err().
	m.nextStop = m.stepLimit
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			return m.result(), m.fault(FaultCanceled, err)
		}
		if s := m.stats.Instructions + cancelStride; s < m.nextStop {
			m.nextStop = s
		}
	}
	if m.sbt != nil {
		return m.runTier2(c)
	}
	for !m.halted {
		if m.stats.Instructions >= m.nextStop {
			if err := m.stopCheck(); err != nil {
				return m.result(), err
			}
		}
		ip := m.ip
		if uint(ip) >= uint(n) {
			return m.result(), m.fault(FaultInvalid, fmt.Errorf("ip %d outside program", ip))
		}
		m.stats.Instructions++
		m.cycles += uint64(c.cost[ip])
		if nt := c.note[ip]; nt != NoteNone {
			switch nt {
			case NoteSWCheck:
				m.stats.SWChecks++
			case NoteLoopBackedge:
				m.stats.LoopIters++
			case NoteSpilledBackedge:
				m.stats.LoopIters++
				m.stats.SpilledIters++
			}
		}
		if err := c.exec[ip](m); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

// stopCheck handles a nextStop pause: a step-limit fault, a
// cancellation poll, and scheduling the next pause. Called only when
// Instructions >= nextStop; nextStop < stepLimit implies a context is
// attached.
func (m *Machine) stopCheck() error {
	if m.stats.Instructions >= m.stepLimit {
		return m.fault(FaultStepLimit, nil)
	}
	if err := m.ctx.Err(); err != nil {
		return m.fault(FaultCanceled, err)
	}
	if s := m.stats.Instructions + cancelStride; s < m.stepLimit {
		m.nextStop = s
	} else {
		m.nextStop = m.stepLimit
	}
	return nil
}

// runTier2 is the Run loop with superblock dispatch: when the next
// instruction heads a compiled superblock and one whole pass fits under
// nextStop, the fused trace executes it (superblock.run); every other
// instruction — including deopt tails after a side exit and the final
// approach to a step-limit or cancellation boundary — takes the
// per-instruction path unchanged.
func (m *Machine) runTier2(c *compiled) (*Result, error) {
	t := m.sbt
	n := len(c.exec)
	for !m.halted {
		if m.stats.Instructions >= m.nextStop {
			if err := m.stopCheck(); err != nil {
				return m.result(), err
			}
		}
		ip := m.ip
		if uint(ip) >= uint(n) {
			return m.result(), m.fault(FaultInvalid, fmt.Errorf("ip %d outside program", ip))
		}
		if sb := t.heads[ip]; sb != nil && m.nextStop-m.stats.Instructions >= uint64(sb.n) {
			if err := sb.run(m); err != nil {
				return m.result(), err
			}
			continue
		}
		m.stats.Instructions++
		m.cycles += uint64(c.cost[ip])
		if nt := c.note[ip]; nt != NoteNone {
			switch nt {
			case NoteSWCheck:
				m.stats.SWChecks++
			case NoteLoopBackedge:
				m.stats.LoopIters++
			case NoteSpilledBackedge:
				m.stats.LoopIters++
				m.stats.SpilledIters++
			}
		}
		if err := c.exec[ip](m); err != nil {
			return m.result(), err
		}
	}
	return m.result(), nil
}

func (m *Machine) result() *Result {
	res := &Result{
		Cycles:   m.Cycles(),
		ExitCode: m.exitCode,
		Output:   m.output,
		Stats:    m.stats,
		LDTStats: m.ldtMgr.Stats(),
	}
	if m.sbt != nil {
		res.SB = &SBStats{
			Compiled:      uint64(len(m.sbt.list)),
			Entries:       m.sbEntries,
			Deopts:        m.sbDeopts,
			InstrsRetired: m.sbRetired,
		}
	}
	return res
}

// stackRef is the predecoded DS:(%esp) operand used by push and pop.
var stackRef = memOp{seg: x86seg.DS, base: int16(ESP), index: -1}

// push/pop (and CALL/RET through them) address the stack through DS
// rather than SS. Under the simulated Linux both are the identical flat
// segment, and this models the §3.7 rewriting that frees SS for array
// bound checking: PUSH/POP become MOV+SUB/ADD through DS, so stack
// operations keep working when SS holds an array selector.
func (m *Machine) push(v uint32) error {
	m.regs[ESP] -= 4
	phys, err := m.memPhys(&stackRef, 4, true)
	if err != nil {
		return err
	}
	m.memory.Write32(phys, v)
	return nil
}

func (m *Machine) pop() (uint32, error) {
	phys, err := m.memPhys(&stackRef, 4, false)
	if err != nil {
		return 0, err
	}
	m.regs[ESP] += 4
	return m.memory.Read32(phys), nil
}
