package vm

import (
	"fmt"

	"cash/internal/obs"
	"cash/internal/x86seg"
)

// This file is the predecoded execution engine. Each Instr is compiled
// once per Program into a closure (execFn) with its operand kinds
// resolved, its effective-address shape specialised and its access size
// fixed, so the interpreter's hot loop performs no per-access switching
// on Operand.Kind or size. The closures capture only immutable decoded
// state and take the Machine as a parameter, so one compiled program is
// shared by any number of machines (and goroutines) running it.
//
// The engine is a host-speed optimisation only: instruction semantics,
// fault behaviour, cycle charges and every Stats counter are identical
// to the reference interpreter it replaced.

// execFn executes one predecoded instruction. It must either return an
// error (leaving m.ip at the faulting instruction) or advance m.ip.
type execFn func(m *Machine) error

// loadFn reads one predecoded operand.
type loadFn func(m *Machine) (uint32, error)

// storeFn writes one predecoded operand.
type storeFn func(m *Machine, v uint32) error

// compiled is the predecoded form of a program: per-instruction closures
// plus the flat cost/note metadata the run loop charges before dispatch.
type compiled struct {
	exec []execFn
	cost []uint8
	note []Note
}

// compiledProgram returns the predecoded form, compiling it on first use.
// The sync.Once makes concurrent machines running the same Program safe.
func (p *Program) compiledProgram() *compiled {
	p.pre.once.Do(func() {
		c := &compiled{
			exec: make([]execFn, len(p.Instrs)),
			cost: make([]uint8, len(p.Instrs)),
			note: make([]Note, len(p.Instrs)),
		}
		for i := range p.Instrs {
			in := &p.Instrs[i]
			c.exec[i] = compileInstr(in)
			c.cost[i] = uint8(in.baseCost())
			c.note[i] = in.Note
		}
		p.pre.c = c
	})
	return p.pre.c
}

// memOp is the predecoded form of a MemRef: register numbers resolved to
// indices (-1 when absent) and the displacement widened, so the
// effective-address computation is branch-light and copy-free.
type memOp struct {
	seg   x86seg.SegReg
	base  int16 // register index, -1 = none
	index int16
	scale uint32
	disp  uint32
}

func compileMem(r MemRef) memOp {
	mo := memOp{seg: r.Seg, base: -1, index: -1, disp: uint32(r.Disp)}
	if r.HasBase {
		mo.base = int16(r.Base)
	}
	if r.HasIndex {
		mo.index = int16(r.Index)
		mo.scale = uint32(r.Scale)
		if mo.scale == 0 {
			mo.scale = 1
		}
	}
	return mo
}

// ea computes the effective (segment-relative) address of the operand.
func (mo *memOp) ea(m *Machine) uint32 {
	a := mo.disp
	if mo.base >= 0 {
		a += m.regs[mo.base]
	}
	if mo.index >= 0 {
		a += m.regs[mo.index] * mo.scale
	}
	return a
}

// memPhys maps a predecoded memory operand to a physical address,
// applying the segment limit check and (if enabled) the page walk.
// References through a segment register holding an LDT selector are
// counted as hardware bound checks — those are exactly Cash's per-array
// segments. The flat-segment fast path skips the descriptor decode for
// the simulated Linux DS/SS/ES without changing any architectural
// outcome.
func (m *Machine) memPhys(mo *memOp, size uint32, write bool) (uint32, error) {
	ea := mo.ea(m)
	if m.mmu.IsLDT(mo.seg) {
		m.stats.HWChecks++
	}
	lin, ok := m.mmu.FlatLinear(mo.seg, ea, size)
	if !ok {
		var err error
		lin, err = m.mmu.Translate(mo.seg, ea, size, write)
		if err != nil {
			return 0, m.fault(FaultSegmentation, err)
		}
	}
	if m.plain {
		return lin, nil
	}
	return m.memPhysSlow(mo, ea, lin, write)
}

// memPhysSlow is the non-plain tail: the page walk and the trace hook,
// kept out of the hot path (m.plain is precomputed at construction).
func (m *Machine) memPhysSlow(mo *memOp, ea, lin uint32, write bool) (uint32, error) {
	phys := lin
	if m.pages != nil {
		var err error
		phys, err = m.pages.Translate(lin, write)
		if err != nil {
			return 0, m.fault(FaultPage, err)
		}
		m.stats.PageWalks++
	}
	if m.trace != nil {
		m.trace(TraceEntry{
			Seg: mo.seg, Selector: m.mmu.Selector(mo.seg),
			Offset: ea, Linear: lin, Physical: phys, Write: write,
		})
	}
	return phys, nil
}

// compileLoad builds the operand reader for one operand at a fixed
// access size. Register and immediate reads ignore size, exactly like
// the reference interpreter.
func compileLoad(o Operand, size uint32) loadFn {
	switch o.Kind {
	case KindReg:
		r := o.Reg
		return func(m *Machine) (uint32, error) { return m.regs[r], nil }
	case KindImm:
		v := uint32(o.Imm)
		return func(m *Machine) (uint32, error) { return v, nil }
	case KindSReg:
		s := o.SReg
		return func(m *Machine) (uint32, error) { return uint32(m.mmu.Selector(s)), nil }
	case KindMem:
		mo := compileMem(o.Mem)
		switch size {
		case 1:
			return func(m *Machine) (uint32, error) {
				phys, err := m.memPhys(&mo, 1, false)
				if err != nil {
					return 0, err
				}
				return uint32(m.memory.Read8(phys)), nil
			}
		case 2:
			return func(m *Machine) (uint32, error) {
				phys, err := m.memPhys(&mo, 2, false)
				if err != nil {
					return 0, err
				}
				return uint32(m.memory.Read16(phys)), nil
			}
		default:
			return func(m *Machine) (uint32, error) {
				phys, err := m.memPhys(&mo, 4, false)
				if err != nil {
					return 0, err
				}
				return m.memory.Read32(phys), nil
			}
		}
	default:
		return func(m *Machine) (uint32, error) {
			return 0, m.fault(FaultInvalid, fmt.Errorf("read of empty operand"))
		}
	}
}

// compileStore builds the operand writer for one operand at a fixed
// access size.
func compileStore(o Operand, size uint32) storeFn {
	switch o.Kind {
	case KindReg:
		r := o.Reg
		return func(m *Machine, v uint32) error {
			m.regs[r] = v
			return nil
		}
	case KindMem:
		mo := compileMem(o.Mem)
		switch size {
		case 1:
			return func(m *Machine, v uint32) error {
				phys, err := m.memPhys(&mo, 1, true)
				if err != nil {
					return err
				}
				m.memory.Write8(phys, uint8(v))
				return nil
			}
		case 2:
			return func(m *Machine, v uint32) error {
				phys, err := m.memPhys(&mo, 2, true)
				if err != nil {
					return err
				}
				m.memory.Write16(phys, uint16(v))
				return nil
			}
		default:
			return func(m *Machine, v uint32) error {
				phys, err := m.memPhys(&mo, 4, true)
				if err != nil {
					return err
				}
				m.memory.Write32(phys, v)
				return nil
			}
		}
	default:
		kind := o.Kind
		return func(m *Machine, v uint32) error {
			return m.fault(FaultInvalid, fmt.Errorf("write to %v operand", kind))
		}
	}
}

// aluFn returns the pure combining function for a two-operand ALU op.
// IDIV and IMOD are excluded (they fault on zero divisors).
func aluFn(op Op) func(a, b uint32) uint32 {
	switch op {
	case ADD:
		return func(a, b uint32) uint32 { return a + b }
	case SUB:
		return func(a, b uint32) uint32 { return a - b }
	case IMUL:
		return func(a, b uint32) uint32 { return uint32(int32(a) * int32(b)) }
	case AND:
		return func(a, b uint32) uint32 { return a & b }
	case OR:
		return func(a, b uint32) uint32 { return a | b }
	case XOR:
		return func(a, b uint32) uint32 { return a ^ b }
	case SHL:
		return func(a, b uint32) uint32 { return a << (b & 31) }
	case SHR:
		return func(a, b uint32) uint32 { return a >> (b & 31) }
	default: // SAR
		return func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) }
	}
}

// predicate returns the flag test for a conditional jump.
func predicate(op Op) func(m *Machine) bool {
	switch op {
	case JE:
		return func(m *Machine) bool { return m.eq }
	case JNE:
		return func(m *Machine) bool { return !m.eq }
	case JL:
		return func(m *Machine) bool { return m.lt }
	case JLE:
		return func(m *Machine) bool { return m.lt || m.eq }
	case JG:
		return func(m *Machine) bool { return !m.lt && !m.eq }
	case JGE:
		return func(m *Machine) bool { return !m.lt }
	case JB:
		return func(m *Machine) bool { return m.below }
	case JAE:
		return func(m *Machine) bool { return !m.below }
	case JA:
		return func(m *Machine) bool { return !m.below && !m.eq }
	case JBE:
		return func(m *Machine) bool { return m.below || m.eq }
	default:
		return func(m *Machine) bool { return false }
	}
}

// compileInstr builds the execution closure for one instruction.
func compileInstr(in *Instr) execFn {
	size := uint32(in.Size)
	if size == 0 {
		size = 4
	}

	switch in.Op {
	case NOP:
		return func(m *Machine) error { m.ip++; return nil }

	case MOV:
		getS := compileLoad(in.Src, size)
		setD := compileStore(in.Dst, size)
		return func(m *Machine) error {
			v, err := getS(m)
			if err != nil {
				return err
			}
			if err := setD(m, v); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case LEA:
		if in.Src.Kind != KindMem {
			return func(m *Machine) error {
				return m.fault(FaultInvalid, fmt.Errorf("lea needs memory source"))
			}
		}
		mo := compileMem(in.Src.Mem)
		setD := compileStore(in.Dst, 4)
		return func(m *Machine) error {
			if err := setD(m, mo.ea(m)); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case ADD, SUB, IMUL, AND, OR, XOR, SHL, SHR, SAR:
		getD := compileLoad(in.Dst, size)
		getS := compileLoad(in.Src, size)
		setD := compileStore(in.Dst, size)
		op := aluFn(in.Op)
		return func(m *Machine) error {
			a, err := getD(m)
			if err != nil {
				return err
			}
			b, err := getS(m)
			if err != nil {
				return err
			}
			if err := setD(m, op(a, b)); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case IDIV, IMOD:
		getD := compileLoad(in.Dst, size)
		getS := compileLoad(in.Src, size)
		setD := compileStore(in.Dst, size)
		mod := in.Op == IMOD
		return func(m *Machine) error {
			a, err := getD(m)
			if err != nil {
				return err
			}
			b, err := getS(m)
			if err != nil {
				return err
			}
			if b == 0 {
				return m.fault(FaultDivide, nil)
			}
			var v uint32
			if mod {
				v = uint32(int32(a) % int32(b))
			} else {
				v = uint32(int32(a) / int32(b))
			}
			if err := setD(m, v); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case NEG, NOT:
		getD := compileLoad(in.Dst, size)
		setD := compileStore(in.Dst, size)
		not := in.Op == NOT
		return func(m *Machine) error {
			a, err := getD(m)
			if err != nil {
				return err
			}
			v := -a
			if not {
				v = ^a
			}
			if err := setD(m, v); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case CMP:
		getD := compileLoad(in.Dst, size)
		getS := compileLoad(in.Src, size)
		return func(m *Machine) error {
			a, err := getD(m)
			if err != nil {
				return err
			}
			b, err := getS(m)
			if err != nil {
				return err
			}
			m.eq = a == b
			m.lt = int32(a) < int32(b)
			m.below = a < b
			m.ip++
			return nil
		}

	case TEST:
		getD := compileLoad(in.Dst, size)
		getS := compileLoad(in.Src, size)
		return func(m *Machine) error {
			a, err := getD(m)
			if err != nil {
				return err
			}
			b, err := getS(m)
			if err != nil {
				return err
			}
			m.eq = a&b == 0
			m.lt = int32(a&b) < 0
			m.below = false
			m.ip++
			return nil
		}

	case JMP:
		target := in.Target
		return func(m *Machine) error { m.ip = target; return nil }

	case JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		pred := predicate(in.Op)
		target := in.Target
		return func(m *Machine) error {
			if pred(m) {
				m.ip = target
			} else {
				m.ip++
			}
			return nil
		}

	case PUSH:
		getS := compileLoad(in.Src, 4)
		return func(m *Machine) error {
			v, err := getS(m)
			if err != nil {
				return err
			}
			if err := m.push(v); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case POP:
		setD := compileStore(in.Dst, 4)
		return func(m *Machine) error {
			v, err := m.pop()
			if err != nil {
				return err
			}
			if err := setD(m, v); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case CALL:
		target := in.Target
		return func(m *Machine) error {
			if err := m.push(uint32(m.ip + 1)); err != nil {
				return err
			}
			m.ip = target
			return nil
		}

	case RET:
		return func(m *Machine) error {
			v, err := m.pop()
			if err != nil {
				return err
			}
			m.ip = int(v)
			return nil
		}

	case MOVSR:
		getS := compileLoad(in.Src, 2)
		dst := in.Dst.SReg
		return func(m *Machine) error {
			v, err := getS(m)
			if err != nil {
				return err
			}
			if err := m.mmu.Load(dst, x86seg.Selector(v)); err != nil {
				return m.fault(FaultSegmentation, err)
			}
			m.stats.SegRegLoads++
			if m.etrace.Enabled() {
				m.etrace.Emit(obs.EvSegRegLoad, uint64(dst), uint64(v),
					dst.String()+" <- "+x86seg.Selector(v).String())
			}
			m.ip++
			return nil
		}

	case MOVRS:
		setD := compileStore(in.Dst, 4)
		src := in.Src.SReg
		return func(m *Machine) error {
			if err := setD(m, uint32(m.mmu.Selector(src))); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case BOUND:
		getD := compileLoad(in.Dst, 4)
		srcIsMem := in.Src.Kind == KindMem
		var loMem, hiMem memOp
		if srcIsMem {
			loMem = compileMem(in.Src.Mem)
			upperRef := in.Src.Mem
			upperRef.Disp += 4
			hiMem = compileMem(upperRef)
		}
		return func(m *Machine) error {
			m.stats.BoundInstrs++
			m.stats.SWChecks++
			idx, err := getD(m)
			if err != nil {
				return err
			}
			if !srcIsMem {
				return m.fault(FaultInvalid, fmt.Errorf("bound needs memory bounds"))
			}
			lower, err := m.loadWord(&loMem)
			if err != nil {
				return err
			}
			upper, err := m.loadWord(&hiMem)
			if err != nil {
				return err
			}
			if idx < lower || idx >= upper {
				return m.fault(FaultSoftwareCheck,
					fmt.Errorf("bound: %#x outside [%#x,%#x)", idx, lower, upper))
			}
			m.ip++
			return nil
		}

	case BNDCL:
		// Lower-bound check of an MPX pair. Like BOUND, the closure does
		// its own statistics so tier-2 superblock execution counts
		// identically; the pair is counted once, here.
		getD := compileLoad(in.Dst, 4)
		getS := compileLoad(in.Src, 4)
		return func(m *Machine) error {
			m.stats.SWChecks++
			m.stats.BndChecks++
			addr, err := getD(m)
			if err != nil {
				return err
			}
			lower, err := getS(m)
			if err != nil {
				return err
			}
			if addr < lower {
				return m.fault(FaultSoftwareCheck,
					fmt.Errorf("bndcl: %#x below lower bound %#x", addr, lower))
			}
			m.ip++
			return nil
		}

	case BNDCU:
		// Upper-bound check. The repo's bounds are half-open, so the trap
		// condition is addr >= upper (real bndcu compares against an
		// inclusive upper; the convention difference is absorbed at
		// lowering).
		getD := compileLoad(in.Dst, 4)
		getS := compileLoad(in.Src, 4)
		return func(m *Machine) error {
			addr, err := getD(m)
			if err != nil {
				return err
			}
			upper, err := getS(m)
			if err != nil {
				return err
			}
			if addr >= upper {
				return m.fault(FaultSoftwareCheck,
					fmt.Errorf("bndcu: %#x at or above upper bound %#x", addr, upper))
			}
			m.ip++
			return nil
		}

	case BNDLDX:
		// Bounds-table load: the effective address of the memory operand
		// keys the shadow table; the entry's lower/upper land in EDX/ECX.
		// A missing entry is the unbounded INIT pair (0, 0xffffffff),
		// matching MPX's lazily populated Bounds Tables. The table walk
		// cost is charged via baseCost.
		if in.Src.Kind != KindMem {
			return func(m *Machine) error {
				return m.fault(FaultInvalid, fmt.Errorf("bndldx needs memory source"))
			}
		}
		mo := compileMem(in.Src.Mem)
		return func(m *Machine) error {
			m.stats.BndLoads++
			lo, hi := uint32(0), uint32(0xffffffff)
			if e, ok := m.bnd[mo.ea(m)]; ok {
				lo, hi = e[0], e[1]
			}
			m.regs[EDX] = lo
			m.regs[ECX] = hi
			m.ip++
			return nil
		}

	case BNDSTX:
		// Bounds-table store for the slot addressed by Dst: Src=$1 records
		// the pair held in EDX/ECX, Src=$0 resets the slot to INIT
		// (unbounded) without touching registers.
		if in.Dst.Kind != KindMem {
			return func(m *Machine) error {
				return m.fault(FaultInvalid, fmt.Errorf("bndstx needs memory destination"))
			}
		}
		mo := compileMem(in.Dst.Mem)
		init := in.Src.Kind == KindImm && in.Src.Imm == 0
		return func(m *Machine) error {
			m.stats.BndStores++
			if m.bnd == nil {
				m.bnd = make(map[uint32][2]uint32)
			}
			if init {
				delete(m.bnd, mo.ea(m))
			} else {
				m.bnd[mo.ea(m)] = [2]uint32{m.regs[EDX], m.regs[ECX]}
			}
			m.ip++
			return nil
		}

	case TRAP:
		sym := in.Sym
		return func(m *Machine) error {
			return m.fault(FaultSoftwareCheck, fmt.Errorf("%s", sym))
		}

	case INT:
		return func(m *Machine) error {
			if err := m.syscall(); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case LCALL:
		return func(m *Machine) error {
			if err := m.gateCall(); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case HCALL:
		svc := in.Src.Imm
		return func(m *Machine) error {
			if err := m.hostCall(svc); err != nil {
				return err
			}
			m.ip++
			return nil
		}

	case HLT:
		return func(m *Machine) error {
			m.halted = true
			m.ip++
			return nil
		}

	default:
		op := in.Op
		return func(m *Machine) error {
			return m.fault(FaultInvalid, fmt.Errorf("unknown opcode %v", op))
		}
	}
}

// loadWord reads a 32-bit value through a predecoded memory operand (the
// BOUND bounds-pair reads).
func (m *Machine) loadWord(mo *memOp) (uint32, error) {
	phys, err := m.memPhys(mo, 4, false)
	if err != nil {
		return 0, err
	}
	return m.memory.Read32(phys), nil
}
