package vm

import "fmt"

// Builder assembles a Program incrementally, resolving symbolic labels and
// function names to instruction indices. It is the interface the code
// generators (and hand-written test programs) emit through.
type Builder struct {
	instrs  []Instr
	labels  map[string]int
	funcs   map[string]int
	fixups  []fixup
	pending []string // labels waiting to bind to the next instruction
	errs    []error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		funcs:  make(map[string]int),
	}
}

// Emit appends an instruction and returns its index.
func (b *Builder) Emit(in Instr) int {
	idx := len(b.instrs)
	if len(b.pending) > 0 {
		in.Label = b.pending[0]
		b.pending = b.pending[:0]
	}
	b.instrs = append(b.instrs, in)
	return idx
}

// Op emits a two-operand instruction.
func (b *Builder) Op(op Op, dst, src Operand) int {
	return b.Emit(Instr{Op: op, Dst: dst, Src: src})
}

// Op1 emits a one-operand instruction (PUSH uses Src, POP/NEG/NOT use Dst).
func (b *Builder) Op1(op Op, o Operand) int {
	switch op {
	case PUSH:
		return b.Emit(Instr{Op: op, Src: o})
	default:
		return b.Emit(Instr{Op: op, Dst: o})
	}
}

// Label binds a symbolic label to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.instrs)
	b.pending = append(b.pending, name)
}

// Func binds a function name to the next emitted instruction.
func (b *Builder) Func(name string) {
	if _, dup := b.funcs[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate function %q", name))
		return
	}
	b.funcs[name] = len(b.instrs)
	b.Label("fn_" + name)
}

// Jump emits a branch to a label (forward references allowed).
func (b *Builder) Jump(op Op, label string) int {
	idx := b.Emit(Instr{Op: op, Sym: label})
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
	return idx
}

// Call emits a call to a named function.
func (b *Builder) Call(name string) int {
	idx := b.Emit(Instr{Op: CALL, Sym: name})
	b.fixups = append(b.fixups, fixup{instr: idx, label: "fn_" + name})
	return idx
}

// Fixup registers a symbolic branch target for an already-emitted
// instruction, exactly as Jump and Call do for the instructions they
// emit. Replaying a prebuilt instruction stream (ir.Module.EmitTo) uses
// it to re-enter the label-resolution machinery.
func (b *Builder) Fixup(idx int, label string) {
	b.fixups = append(b.fixups, fixup{instr: idx, label: label})
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Instr returns a pointer to an already-emitted instruction, allowing
// back-patching of notes.
func (b *Builder) Instr(i int) *Instr { return &b.instrs[i] }

// Finish resolves all fixups and returns the assembled program skeleton.
// The caller fills in data image and entry metadata.
func (b *Builder) Finish(name string) (*Program, error) {
	if len(b.pending) > 0 {
		// Bind trailing labels to a final halt so jumps to "end" work.
		b.Emit(Instr{Op: HLT})
	}
	for _, e := range b.errs {
		return nil, e
	}
	for _, f := range b.fixups {
		tgt, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		b.instrs[f.instr].Target = tgt
	}
	return &Program{
		Name:   name,
		Instrs: b.instrs,
		Funcs:  b.funcs,
		Stats:  make(map[string]uint64),
	}, nil
}
