package vm

import "cash/internal/x86seg"

// Encoded-size model.
//
// Tables 2 and 6 of the paper compare *binary sizes* of the three
// compilers' output. We do not emit real machine code, so each ISA
// instruction carries an x86-flavoured encoding-length estimate: opcode +
// ModRM + SIB + displacement + immediate + prefixes. The estimate follows
// IA-32 encoding rules closely enough that the relative code-size growth
// of the check sequences matches the paper's.

func memBytes(m MemRef) int {
	n := 1 // ModRM
	if m.HasIndex {
		n++ // SIB
	}
	switch {
	case m.Disp == 0 && m.HasBase:
		// no displacement
	case m.Disp >= -128 && m.Disp <= 127 && m.HasBase:
		n++ // disp8
	default:
		n += 4 // disp32
	}
	if m.Seg != x86seg.DS && m.Seg != x86seg.SS {
		n++ // segment-override prefix
	}
	return n
}

func immBytes(v int32) int {
	if v >= -128 && v <= 127 {
		return 1
	}
	return 4
}

func operandBytes(o Operand) int {
	switch o.Kind {
	case KindMem:
		return memBytes(o.Mem)
	case KindImm:
		return immBytes(o.Imm)
	default:
		return 0
	}
}

// EncodedSize estimates the IA-32 encoding length of the instruction in
// bytes.
func (in Instr) EncodedSize() int {
	prefix := 0
	if in.Size == 2 {
		prefix = 1 // operand-size override
	}
	switch in.Op {
	case NOP, HLT, RET:
		return 1
	case TRAP:
		return 2 // ud2
	case INT:
		return 2
	case LCALL:
		return 7 // far call with 16:32 pointer
	case HCALL, CALL:
		return 5 // call rel32
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		// Minimal (short, rel8) form; Layout applies branch relaxation
		// and widens to the rel32 form when the target is out of range.
		return 2
	case PUSH:
		switch in.Src.Kind {
		case KindReg:
			return 1
		case KindImm:
			return 1 + immBytes(in.Src.Imm)
		default:
			return 2 + memBytes(in.Src.Mem)
		}
	case POP:
		if in.Dst.Kind == KindReg {
			return 1
		}
		return 2 + memBytes(in.Dst.Mem)
	case MOVSR, MOVRS:
		n := 1 + prefix
		if in.Src.Kind != KindMem && in.Dst.Kind != KindMem {
			n++ // ModRM for the register form
		}
		if in.Src.Kind == KindMem {
			n += memBytes(in.Src.Mem)
		}
		if in.Dst.Kind == KindMem {
			n += memBytes(in.Dst.Mem)
		}
		return n
	case BOUND:
		return 1 + memBytes(in.Src.Mem)
	case BNDCL, BNDCU:
		// Two-byte 0F opcode + ModRM, plus the bound operand (register
		// forms carry it in ModRM; the immediate form models a bounds
		// constant materialised inline).
		return 3 + operandBytes(in.Src)
	case BNDLDX, BNDSTX:
		// Two-byte 0F opcode + the slot-addressing memory operand; the
		// imm selector of BNDSTX is encoding-free (ModRM reg field).
		if in.Op == BNDLDX {
			return 2 + memBytes(in.Src.Mem)
		}
		return 2 + memBytes(in.Dst.Mem)
	case MOV:
		if in.Src.Kind == KindImm && in.Dst.Kind == KindReg {
			return 5 + prefix // mov reg, imm32 (b8+r)
		}
		n := 1 + prefix // opcode; ModRM is part of memBytes for memory forms
		if in.Src.Kind != KindMem && in.Dst.Kind != KindMem {
			n++ // ModRM for the register form
		}
		n += operandBytes(in.Src) + operandBytes(in.Dst)
		if in.Src.Kind == KindImm {
			n += 3 // mov to r/m takes a full imm32 (c7 /0)
		}
		return n
	default: // ALU, LEA, CMP, TEST, shifts
		n := 1 + prefix
		if in.Src.Kind != KindMem && in.Dst.Kind != KindMem {
			n++ // ModRM for the register form
		}
		n += operandBytes(in.Src) + operandBytes(in.Dst)
		return n
	}
}

func isBranch(op Op) bool {
	switch op {
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		return true
	default:
		return false
	}
}

// longBranchExtra is the size penalty of the rel32 branch form over the
// rel8 form: jcc rel32 is 6 bytes vs 2, jmp rel32 is 5 bytes vs 2.
func longBranchExtra(op Op) int {
	if op == JMP {
		return 3
	}
	return 4
}

// Layout performs branch relaxation and returns the byte offset of each
// instruction plus the total text size. Branches start in their short
// (rel8) form and are widened to rel32 until a fixpoint — this is what
// makes the bound-check branches to the shared trap cost their true
// near-jump size, a visible share of BCC's code growth.
func (p *Program) Layout() ([]int, int) {
	n := len(p.Instrs)
	long := make([]bool, n)
	offsets := make([]int, n)
	var total int
	for pass := 0; pass < 32; pass++ {
		total = 0
		for i, in := range p.Instrs {
			offsets[i] = total
			sz := in.EncodedSize()
			if long[i] {
				sz += longBranchExtra(in.Op)
			}
			total += sz
		}
		changed := false
		for i, in := range p.Instrs {
			if !isBranch(in.Op) || long[i] {
				continue
			}
			if in.Target < 0 || in.Target >= n {
				continue
			}
			// rel8 displacement is measured from the end of the branch.
			disp := offsets[in.Target] - (offsets[i] + 2)
			if disp < -128 || disp > 127 {
				long[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return offsets, total
}

// CodeSize returns the estimated encoded size of the program text in
// bytes, after branch relaxation.
func (p *Program) CodeSize() int {
	_, total := p.Layout()
	return total
}
