package vm

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"

	"cash/internal/mem"
	"cash/internal/x86seg"
)

// Tier-2 execution: superblock compilation.
//
// The predecoded engine (predecode.go) still pays per-instruction costs
// on every step: the dispatch load, the cycle/note accounting, and one
// or two nested closure calls per operand. Tier 2 removes them for hot
// code. The compiler's IR layer selects candidate regions over the loop
// tree (ir.Module.SuperblockHints) and records them on the Program;
// buildTrace turns each region into a superblock — a single-entry,
// multi-exit straight-line trace — and compiles every trace instruction
// into one flat micro-op with the operand shapes resolved at build time.
// The run loop (superblock.run) interprets the micro-ops with the
// register file, the compare flags and the hardware-check tally held in
// host locals, translates memory references through the MMU's
// precomputed fast path (x86seg.QuickTranslate), and accumulates
// Instructions, cycles and note-derived counters in bulk from prefix
// sums — one reconciliation per superblock exit instead of per
// instruction.
//
// The deopt contract: a superblock is entered only when the interpreter
// is exactly at its head and a whole pass fits under nextStop. Every
// exit — a taken side branch, a fault, a loop leaving through its
// condition — writes the local register file and flags back to the
// machine, reconciles the counters for precisely the instructions
// retired (faulting instruction included, matching the interpreter's
// charge-before-execute order) and leaves m.ip at the precise
// instruction boundary, so the step interpreter resumes (or the fault
// reports) exactly as if every instruction had been single-stepped.
// Dynamic per-access counters (HWChecks, PageWalks, SegRegLoads,
// BoundInstrs, and BOUND's SWChecks) are tallied per access — they
// depend on run-time segment-register contents and cannot be
// prefix-summed. Simulated output, counters, violation verdicts and
// fault identities are byte-identical to step execution; the
// equivalence tests and the differential fuzzer pin this.

// Region is a superblock candidate: a half-open instruction index range
// the compiler judged hot (a loop's layout span). Regions are hints —
// execution is correct with any, or no, regions attached.
type Region struct {
	Start int
	End   int
	Name  string
}

// Micro-op kinds. Register-or-immediate source operands share one
// encoding: the operand value is r[src] + imm2, with src pointing at
// the always-zero register slot (uZero) for pure immediates — no branch
// on operand kind survives into the run loop.
const (
	uNop   uint8 = iota
	uMov         // r[dst] = r[src] + imm2
	uLea         // r[dst] = ea
	uLoad1       // r[dst] = zext mem[ea]
	uLoad2
	uLoad4
	uStore1 // mem[ea] = trunc(r[src] + imm2)
	uStore2
	uStore4
	uAdd // r[dst] += r[src] + imm2
	uSub // r[dst] -= r[src] + imm2
	uMul // r[dst] = int32 mul
	uAnd // r[dst] &= r[src] + imm2
	uOr
	uXor
	uShl  // r[dst] <<= (r[src]+imm2) & 31
	uShr  // logical
	uSar  // arithmetic
	uAlu  // r[dst] = fn(r[dst], r[src]+imm2)
	uAddM // r[dst] += load(mem)
	uSubM
	uMulM
	uAluM   // r[dst] = fn(r[dst], load(mem))
	uAluRMW // mem = fn(load(mem), r[src]+imm2), two translations
	uAddRMW // uAluRMW specialized to ADD (no indirect call)
	uDiv    // r[dst] = int32 quotient; zero divisor faults
	uMod
	uNeg
	uNot
	uCmp   // flags from r[dst] vs r[src]+imm2
	uCmpJ  // uCmp fused with the conditional jump micro-op that follows it
	uCmpRM // flags from r[dst] vs load(mem)
	uCmpM  // flags from load(mem) vs r[src]+imm2
	uTest
	uJmp // unconditional: taken path only
	uJE
	uJNE
	uJL
	uJLE
	uJG
	uJGE
	uJB
	uJAE
	uJA
	uJBE
	uPush // push r[src]+imm2 through the stack reference
	uPop
	uGen // fall back to the predecoded closure for this instruction
)

// uZero is the index of the always-zero slot in the run loop's local
// register file. The file is sized 16 so every register field can be
// masked with &15, which proves the bounds to the compiler; slots
// NumRegs..15 are never written and read as zero.
const uZero = 8

// uop is one compiled trace instruction. Fields are interpreted per
// kind; unused fields are zero. For memory operands ea = r[base] +
// r[idx]*scale + imm, with base/idx = uZero when absent.
type uop struct {
	kind  uint8
	k     uint8 // log2 access size for sized memory arms
	dst   uint8
	src   uint8
	base  uint8
	idx   uint8
	seg   uint8 // x86seg.SegReg of the memory operand
	scale uint32
	imm   uint32 // memory displacement
	imm2  uint32 // reg-or-imm source: operand = r[src] + imm2
	tgt   int32  // branch taken: exit ip, or -1 = back edge to head
	fall  int32  // branch not taken: exit ip, or -1 = continue in trace
	fn    func(a, b uint32) uint32
	gen   execFn
}

// superblock is one compiled trace.
type superblock struct {
	name    string
	head    int // instruction index of the trace entry
	n       int // trace length in instructions
	uops    []uop
	looping bool // last instruction branches back to head: multi-pass execution

	// Prefix sums over the trace, indexed by instructions retired
	// (cost[k] = total for the first k instructions), so one flush per
	// exit reconciles every bulk-accounted counter exactly.
	cost []uint64
	sw   []uint64 // NoteSWCheck
	li   []uint64 // NoteLoopBackedge + NoteSpilledBackedge
	si   []uint64 // NoteSpilledBackedge
}

// sbTable is the compiled tier-2 form of a program: superblocks indexed
// by head instruction, shared (like the predecoded form) by every
// machine running the program.
type sbTable struct {
	heads []*superblock // len(prog.Instrs); nil = no superblock here
	list  []*superblock // in selection order, for DumpSuperblocks
}

// superblocks returns the program's compiled superblock table, building
// it on first use. Safe for concurrent machines, like compiledProgram.
func (p *Program) superblocks() *sbTable {
	p.sb.once.Do(func() {
		t := &sbTable{heads: make([]*superblock, len(p.Instrs))}
		add := func(r Region) *superblock {
			sb := buildTrace(p, r)
			if sb == nil || t.heads[sb.head] != nil {
				return nil
			}
			t.heads[sb.head] = sb
			t.list = append(t.list, sb)
			return sb
		}
		for _, r := range p.Regions {
			sb := add(r)
			if sb == nil {
				continue
			}
			// A trace follows the fall-through path, so every taken
			// in-region branch would exit to the step interpreter for the
			// rest of the loop body. Compile secondary traces at those
			// side-exit targets (and at in-region jump joins) so off-trace
			// paths land back on compiled code; the worklist closes over
			// targets the secondaries expose in turn.
			work := []*superblock{sb}
			for len(work) > 0 {
				cur := work[0]
				work = work[1:]
				for k := 0; k < cur.n; k++ {
					in := &p.Instrs[cur.head+k]
					if in.Op != JMP && !isCondJump(in.Op) {
						continue
					}
					tgt := in.Target
					if tgt <= r.Start || tgt >= r.End || t.heads[tgt] != nil {
						continue
					}
					sec := Region{
						Name:  fmt.Sprintf("%s+%d", r.Name, tgt-r.Start),
						Start: tgt,
						End:   r.End,
					}
					if s2 := add(sec); s2 != nil {
						work = append(work, s2)
					}
				}
			}
		}
		if len(t.list) > 0 {
			mSBCompiled.Add(uint64(len(t.list)))
		}
		p.sb.t = t
	})
	return p.sb.t
}

// sbTraceable reports whether an op may appear inside a trace. Calls,
// returns and system entries transfer control dynamically or run
// variable-cost services; TRAP always faults; HLT ends the run — all of
// them stay on the step interpreter.
func sbTraceable(op Op) bool {
	switch op {
	case CALL, RET, INT, LCALL, HCALL, HLT, TRAP:
		return false
	}
	return op < numOps
}

// sbMinLen is the shortest trace worth compiling: below this the entry
// and flush overhead cancels the dispatch savings.
const sbMinLen = 2

// buildTrace selects and compiles the trace for one candidate region:
// the longest straight-line prefix of [Start, End) — an unconditional
// jump terminates the trace (it is included; its target decides whether
// the trace loops), an untraceable op stops before itself.
func buildTrace(p *Program, r Region) *superblock {
	start, end := r.Start, r.End
	if start < 0 || end > len(p.Instrs) || start >= end {
		return nil
	}
	i := start
	for i < end {
		if !sbTraceable(p.Instrs[i].Op) {
			break
		}
		if p.Instrs[i].Op == JMP {
			i++
			break
		}
		i++
	}
	n := i - start
	if n < sbMinLen {
		return nil
	}
	sb := &superblock{
		name: r.Name,
		head: start,
		n:    n,
		uops: make([]uop, n),
		cost: make([]uint64, n+1),
		sw:   make([]uint64, n+1),
		li:   make([]uint64, n+1),
		si:   make([]uint64, n+1),
	}
	for k := 0; k < n; k++ {
		in := &p.Instrs[start+k]
		sb.cost[k+1] = sb.cost[k] + in.baseCost()
		sb.sw[k+1] = sb.sw[k]
		sb.li[k+1] = sb.li[k]
		sb.si[k+1] = sb.si[k]
		switch in.Note {
		case NoteSWCheck:
			sb.sw[k+1]++
		case NoteLoopBackedge:
			sb.li[k+1]++
		case NoteSpilledBackedge:
			sb.li[k+1]++
			sb.si[k+1]++
		}
		sb.uops[k] = buildUop(in, start+k, start, n)
	}
	last := &p.Instrs[start+n-1]
	sb.looping = (last.Op == JMP || isCondJump(last.Op)) && last.Target == start
	// Fuse register-compare/conditional-jump pairs: the jump micro-op
	// stays in place (its slot carries the branch targets and keeps the
	// retired-instruction accounting one-to-one), but the compare
	// consumes it in a single dispatch.
	for k := 0; k+1 < n; k++ {
		if sb.uops[k].kind == uCmp && sb.uops[k+1].kind >= uJE && sb.uops[k+1].kind <= uJBE {
			sb.uops[k].kind = uCmpJ
		}
	}
	return sb
}

func isCondJump(op Op) bool {
	return op >= JE && op <= JBE
}

// memFields encodes a memory operand into the uop's ea fields.
func memFields(u *uop, ref MemRef) {
	u.seg = uint8(ref.Seg)
	u.base, u.idx, u.scale = uZero, uZero, 0
	u.imm = uint32(ref.Disp)
	if ref.HasBase {
		u.base = uint8(ref.Base) & 15
	}
	if ref.HasIndex {
		u.idx = uint8(ref.Index) & 15
		u.scale = uint32(ref.Scale)
		if u.scale == 0 {
			u.scale = 1
		}
	}
}

// srcFields encodes a register-or-immediate operand into src/imm2 so
// the run loop evaluates it uniformly as r[src] + imm2. Reports whether
// the operand had one of the two kinds.
func srcFields(u *uop, o Operand) bool {
	switch o.Kind {
	case KindReg:
		u.src, u.imm2 = uint8(o.Reg)&15, 0
		return true
	case KindImm:
		u.src, u.imm2 = uZero, uint32(o.Imm)
		return true
	}
	return false
}

func sizeLog(size uint8) uint8 {
	switch size {
	case 1:
		return 0
	case 2:
		return 1
	}
	return 2
}

// buildUop compiles one trace instruction at index self into a micro-op.
// Anything without a specialized arm falls back to its generic
// predecoded closure (uGen), which the run loop brackets with full
// machine-state writeback/reload.
func buildUop(in *Instr, self, head, n int) uop {
	u := uop{kind: uGen, src: uZero, base: uZero, idx: uZero, k: sizeLog(in.Size)}
	last := self == head+n-1

	switch in.Op {
	case NOP:
		u.kind = uNop
		return u

	case MOV:
		switch {
		case in.Dst.Kind == KindReg && srcFields(&u, in.Src):
			u.kind, u.dst = uMov, uint8(in.Dst.Reg)&15
			return u
		case in.Dst.Kind == KindReg && in.Src.Kind == KindMem:
			u.kind = [3]uint8{uLoad1, uLoad2, uLoad4}[u.k]
			u.dst = uint8(in.Dst.Reg) & 15
			memFields(&u, in.Src.Mem)
			return u
		case in.Dst.Kind == KindMem && srcFields(&u, in.Src):
			u.kind = [3]uint8{uStore1, uStore2, uStore4}[u.k]
			memFields(&u, in.Dst.Mem)
			return u
		}

	case LEA:
		if in.Dst.Kind == KindReg && in.Src.Kind == KindMem {
			u.kind, u.dst = uLea, uint8(in.Dst.Reg)&15
			memFields(&u, in.Src.Mem)
			return u
		}

	case ADD, SUB, IMUL, AND, OR, XOR, SHL, SHR, SAR:
		switch {
		case in.Dst.Kind == KindReg && srcFields(&u, in.Src):
			u.dst = uint8(in.Dst.Reg) & 15
			switch in.Op {
			case ADD:
				u.kind = uAdd
			case SUB:
				u.kind = uSub
			case IMUL:
				u.kind = uMul
			case AND:
				u.kind = uAnd
			case OR:
				u.kind = uOr
			case XOR:
				u.kind = uXor
			case SHL:
				u.kind = uShl
			case SHR:
				u.kind = uShr
			default: // SAR
				u.kind = uSar
			}
			return u
		case in.Dst.Kind == KindReg && in.Src.Kind == KindMem:
			u.dst = uint8(in.Dst.Reg) & 15
			memFields(&u, in.Src.Mem)
			switch in.Op {
			case ADD:
				u.kind = uAddM
			case SUB:
				u.kind = uSubM
			case IMUL:
				u.kind = uMulM
			default:
				u.kind, u.fn = uAluM, aluFn(in.Op)
			}
			return u
		case in.Dst.Kind == KindMem && srcFields(&u, in.Src):
			// Read-modify-write: two translations, read then write, in
			// the interpreter's order, so fault identity and the
			// HWChecks double-count for LDT segments are preserved.
			if in.Op == ADD {
				u.kind = uAddRMW
			} else {
				u.kind, u.fn = uAluRMW, aluFn(in.Op)
			}
			memFields(&u, in.Dst.Mem)
			return u
		}

	case IDIV, IMOD:
		if in.Dst.Kind == KindReg && srcFields(&u, in.Src) {
			u.dst = uint8(in.Dst.Reg) & 15
			if in.Op == IMOD {
				u.kind = uMod
			} else {
				u.kind = uDiv
			}
			return u
		}

	case NEG, NOT:
		if in.Dst.Kind == KindReg {
			u.dst = uint8(in.Dst.Reg) & 15
			if in.Op == NOT {
				u.kind = uNot
			} else {
				u.kind = uNeg
			}
			return u
		}

	case CMP:
		switch {
		case in.Dst.Kind == KindReg && srcFields(&u, in.Src):
			u.kind, u.dst = uCmp, uint8(in.Dst.Reg)&15
			return u
		case in.Dst.Kind == KindReg && in.Src.Kind == KindMem:
			u.kind, u.dst = uCmpRM, uint8(in.Dst.Reg)&15
			memFields(&u, in.Src.Mem)
			return u
		case in.Dst.Kind == KindMem && srcFields(&u, in.Src):
			u.kind = uCmpM
			memFields(&u, in.Dst.Mem)
			return u
		}

	case TEST:
		if in.Dst.Kind == KindReg && srcFields(&u, in.Src) {
			u.kind, u.dst = uTest, uint8(in.Dst.Reg)&15
			return u
		}

	case JMP:
		u.kind = uJmp
		if in.Target == head {
			u.tgt = -1 // back edge
		} else {
			u.tgt = int32(in.Target)
		}
		return u

	case JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE:
		u.kind = uJE + uint8(in.Op-JE)
		// Taken: a side exit to the target — except the trace-final back
		// edge, which continues the next pass. Not taken: fall through in
		// the trace — except at the trace end, where it is the exit that
		// leaves the loop.
		u.tgt, u.fall = int32(in.Target), -1
		if last {
			u.fall = int32(self + 1)
			if in.Target == head {
				u.tgt = -1
			}
		}
		return u

	case PUSH:
		if srcFields(&u, in.Src) {
			u.kind = uPush
			return u
		}

	case POP:
		if in.Dst.Kind == KindReg {
			u.kind, u.dst = uPop, uint8(in.Dst.Reg)&15
			return u
		}
	}

	// Everything else (MOVSR, MOVRS, BOUND, odd operand shapes) runs its
	// generic predecoded closure with machine state written back around
	// it; the closure maintains m.ip itself, so the run loop treats any
	// ip other than self+1 as a side exit.
	u.gen = compileInstr(in)
	return u
}

// flush reconciles the bulk-accounted counters for `passes` complete
// passes plus `partial` instructions of the current pass.
func (sb *superblock) flush(m *Machine, passes uint64, partial int) {
	n := uint64(sb.n)
	retired := passes*n + uint64(partial)
	m.stats.Instructions += retired
	m.cycles += passes*sb.cost[sb.n] + sb.cost[partial]
	m.stats.SWChecks += passes*sb.sw[sb.n] + sb.sw[partial]
	m.stats.LoopIters += passes*sb.li[sb.n] + sb.li[partial]
	m.stats.SpilledIters += passes*sb.si[sb.n] + sb.si[partial]
	m.sbRetired += retired
}

// segWindows is the per-segment fast-path state the run loop keeps in a
// host-stack struct: thresholds that fold the segment limit check and
// the dense-arena bounds check into one unsigned compare per access.
// Recomputed at superblock entry and after every generic micro-op — the
// only points at which a segment register or the machine's memory mode
// can change under a trace. Every threshold is zero on non-plain
// machines, so the fused paths never bypass paging or tracing; they are
// also conservative (4-byte thresholds guard smaller accesses), and any
// access they decline takes the exact architectural path instead.
type segWindows struct {
	base  [8]uint32 // segment base
	ldt   [8]bool   // references count as hardware bound checks
	loR   [8]uint32 // ea < loR: read limit ok and base+ea inside the lo arena
	wOK   [8]uint32 // ea < wOK: write limit ok (the store still checks the arena)
	hiDel [8]uint32 // ea-hiDel < hiLen: read limit ok and inside the hi arena
	hiLen [8]uint32
}

func (m *Machine) sbWindows() (w segWindows) {
	if !m.plain {
		return
	}
	_, _, lo4, hiBase, hi4 := m.memory.DenseWindows()
	for s := 0; s < x86seg.NumSegRegs; s++ {
		base, qr, qw, ldt := m.mmu.QuickState(x86seg.SegReg(s))
		w.base[s] = base
		w.ldt[s] = ldt
		if qw > 0xffffffff {
			qw = 0xffffffff
		}
		w.wOK[s] = uint32(qw)
		if base < lo4 {
			if lim := uint64(lo4 - base); qr < lim {
				w.loR[s] = uint32(qr)
			} else {
				w.loR[s] = lo4 - base
			}
		}
		// The hi (stack) window is only fused for base-0 non-LDT segments
		// wholly under the read limit, so the fused path never needs a
		// hardware-check count or a partial-window edge case.
		if base == 0 && !ldt && hi4 > 0 && uint64(hiBase)+uint64(hi4) <= qr {
			w.hiDel[s] = hiBase
			w.hiLen[s] = hi4
		}
	}
	return
}

// run interprets the superblock's micro-ops from its head. The caller
// guarantees m.ip == sb.head and that one whole pass fits under
// m.nextStop; a looping trace keeps iterating while further passes fit,
// so the step-limit and cancellation boundaries are always reached by
// the interpreter, never mid-block.
//
// Machine state lives in host locals for the duration: the register
// file (r, with uZero..15 pinned to zero), the compare flags and the
// LDT hardware-check tally. Every exit path writes them back before
// flushing the prefix-summed counters. Generic micro-ops (uGen) and
// fault construction see fully reconciled machine state.
func (sb *superblock) run(m *Machine) error {
	var (
		r      [16]uint32
		eq     bool
		lt     bool
		below  bool
		taken  bool
		hw     uint64
		passes uint64
		k      int
		err    error
		u      *uop
	)
	m.sbEntries++
	budget := m.nextStop - m.stats.Instructions
	n := uint64(sb.n)
	head := sb.head
	sbt := m.sbt
	mmu := m.mmu
	memv := m.memory
	plain := m.plain
	uops := sb.uops
	low, hiw, _, _, _ := memv.DenseWindows()
	if g := mmu.Gen(); g != m.sbwGen {
		m.sbw = m.sbWindows()
		m.sbwGen = g
	}
	w := &m.sbw
	copy(r[:NumRegs], m.regs[:])
	eq, lt, below = m.eq, m.lt, m.below

	for {
		k = 0
		for k < len(uops) {
			u = &uops[k]
			switch u.kind {
			case uNop:

			case uMov:
				r[u.dst&15] = r[u.src&15] + u.imm2

			case uLea:
				r[u.dst&15] = r[u.base&15] + r[u.idx&15]*u.scale + u.imm

			case uLoad4:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if d := ea - w.hiDel[s]; d < w.hiLen[s] {
					r[u.dst&15] = binary.LittleEndian.Uint32(hiw[d:])
				} else if ea < w.loR[s] {
					if w.ldt[s] {
						hw++
					}
					r[u.dst&15] = binary.LittleEndian.Uint32(low[w.base[s]+ea:])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 2, false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 4, false); err != nil {
							goto deopt
						}
					}
					r[u.dst&15] = memv.Read32(lin)
				}

			case uLoad2:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if d := ea - w.hiDel[s]; d < w.hiLen[s] {
					r[u.dst&15] = uint32(binary.LittleEndian.Uint16(hiw[d:]))
				} else if ea < w.loR[s] {
					if w.ldt[s] {
						hw++
					}
					r[u.dst&15] = uint32(binary.LittleEndian.Uint16(low[w.base[s]+ea:]))
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 1, false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 2, false); err != nil {
							goto deopt
						}
					}
					r[u.dst&15] = uint32(memv.Read16(lin))
				}

			case uLoad1:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if d := ea - w.hiDel[s]; d < w.hiLen[s] {
					r[u.dst&15] = uint32(hiw[d])
				} else if ea < w.loR[s] {
					if w.ldt[s] {
						hw++
					}
					r[u.dst&15] = uint32(low[w.base[s]+ea])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 0, false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1, false); err != nil {
							goto deopt
						}
					}
					r[u.dst&15] = uint32(memv.Read8(lin))
				}

			case uStore4:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if ea < w.wOK[s] {
					if w.ldt[s] {
						hw++
					}
					lin := w.base[s] + ea
					if !memv.Write32Fast(lin, r[u.src&15]+u.imm2) {
						memv.Write32(lin, r[u.src&15]+u.imm2)
					}
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 2, true)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 4, true); err != nil {
							goto deopt
						}
					}
					if !memv.Write32Fast(lin, r[u.src&15]+u.imm2) {
						memv.Write32(lin, r[u.src&15]+u.imm2)
					}
				}

			case uStore2:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if ea < w.wOK[s] {
					if w.ldt[s] {
						hw++
					}
					memv.Write16(w.base[s]+ea, uint16(r[u.src&15]+u.imm2))
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 1, true)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 2, true); err != nil {
							goto deopt
						}
					}
					memv.Write16(lin, uint16(r[u.src&15]+u.imm2))
				}

			case uStore1:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if ea < w.wOK[s] {
					if w.ldt[s] {
						hw++
					}
					lin := w.base[s] + ea
					if !memv.Write8Fast(lin, uint8(r[u.src&15]+u.imm2)) {
						memv.Write8(lin, uint8(r[u.src&15]+u.imm2))
					}
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, 0, true)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1, true); err != nil {
							goto deopt
						}
					}
					if !memv.Write8Fast(lin, uint8(r[u.src&15]+u.imm2)) {
						memv.Write8(lin, uint8(r[u.src&15]+u.imm2))
					}
				}

			case uAdd:
				r[u.dst&15] += r[u.src&15] + u.imm2

			case uSub:
				r[u.dst&15] -= r[u.src&15] + u.imm2

			case uMul:
				r[u.dst&15] = uint32(int32(r[u.dst&15]) * int32(r[u.src&15]+u.imm2))

			case uAnd:
				r[u.dst&15] &= r[u.src&15] + u.imm2

			case uOr:
				r[u.dst&15] |= r[u.src&15] + u.imm2

			case uXor:
				r[u.dst&15] ^= r[u.src&15] + u.imm2

			case uShl:
				r[u.dst&15] <<= (r[u.src&15] + u.imm2) & 31

			case uShr:
				r[u.dst&15] >>= (r[u.src&15] + u.imm2) & 31

			case uSar:
				r[u.dst&15] = uint32(int32(r[u.dst&15]) >> ((r[u.src&15] + u.imm2) & 31))

			case uAlu:
				r[u.dst&15] = u.fn(r[u.dst&15], r[u.src&15]+u.imm2)

			case uAddM, uSubM, uMulM, uAluM:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				var b uint32
				if d := ea - w.hiDel[s]; d < w.hiLen[s] && u.k == 2 {
					b = binary.LittleEndian.Uint32(hiw[d:])
				} else if ea < w.loR[s] && u.k == 2 {
					if w.ldt[s] {
						hw++
					}
					b = binary.LittleEndian.Uint32(low[w.base[s]+ea:])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, int(u.k), false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1<<u.k, false); err != nil {
							goto deopt
						}
					}
					b = sbReadSized(memv, lin, u.k)
				}
				switch u.kind {
				case uAddM:
					r[u.dst&15] += b
				case uSubM:
					r[u.dst&15] -= b
				case uMulM:
					r[u.dst&15] = uint32(int32(r[u.dst&15]) * int32(b))
				default:
					r[u.dst&15] = u.fn(r[u.dst&15], b)
				}

			case uAluRMW, uAddRMW:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				if d := ea - w.hiDel[s]; d < w.hiLen[s] && ea < w.wOK[s] && u.k == 2 {
					// hi windows are never LDT, so no hardware-check counts;
					// the store still runs through the fast accessor for the
					// dirty watermark.
					a, b := binary.LittleEndian.Uint32(hiw[d:]), r[u.src&15]+u.imm2
					v := a + b
					if u.kind == uAluRMW {
						v = u.fn(a, b)
					}
					if !memv.Write32Fast(ea, v) {
						memv.Write32(ea, v)
					}
				} else if ea < w.loR[s] && ea < w.wOK[s] && u.k == 2 {
					if w.ldt[s] {
						hw += 2 // read translation, then write translation
					}
					lin := w.base[s] + ea
					a, b := binary.LittleEndian.Uint32(low[lin:]), r[u.src&15]+u.imm2
					v := a + b
					if u.kind == uAluRMW {
						v = u.fn(a, b)
					}
					if !memv.Write32Fast(lin, v) {
						memv.Write32(lin, v)
					}
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, int(u.k), false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1<<u.k, false); err != nil {
							goto deopt
						}
					}
					a := sbReadSized(memv, lin, u.k)
					lin2, ldt2, qok2 := mmu.QuickRef(x86seg.SegReg(u.seg), ea, int(u.k), true)
					if ldt2 {
						hw++
					}
					if !qok2 || !plain {
						m.ip = head + k
						if lin2, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1<<u.k, true); err != nil {
							goto deopt
						}
					}
					b := r[u.src&15] + u.imm2
					v := a + b
					if u.kind == uAluRMW {
						v = u.fn(a, b)
					}
					sbWriteSized(memv, lin2, u.k, v)
				}

			case uDiv, uMod:
				b := r[u.src&15] + u.imm2
				if b == 0 {
					m.ip = head + k
					err = m.fault(FaultDivide, nil)
					goto deopt
				}
				if u.kind == uMod {
					r[u.dst&15] = uint32(int32(r[u.dst&15]) % int32(b))
				} else {
					r[u.dst&15] = uint32(int32(r[u.dst&15]) / int32(b))
				}

			case uNeg:
				r[u.dst&15] = -r[u.dst&15]

			case uNot:
				r[u.dst&15] = ^r[u.dst&15]

			case uCmp:
				a, b := r[u.dst&15], r[u.src&15]+u.imm2
				eq = a == b
				lt = int32(a) < int32(b)
				below = a < b

			case uCmpJ:
				// Fused compare-and-branch: the flags are still published
				// to the locals (later micro-ops may reread them), but the
				// following conditional-jump micro-op is consumed here,
				// saving one dispatch round per compare/branch pair.
				a, b := r[u.dst&15], r[u.src&15]+u.imm2
				eq = a == b
				lt = int32(a) < int32(b)
				below = a < b
				k++
				u = &uops[k]
				switch u.kind {
				case uJE:
					taken = eq
				case uJNE:
					taken = !eq
				case uJL:
					taken = lt
				case uJLE:
					taken = lt || eq
				case uJG:
					taken = !lt && !eq
				case uJGE:
					taken = !lt
				case uJB:
					taken = below
				case uJAE:
					taken = !below
				case uJA:
					taken = !below && !eq
				default: // uJBE
					taken = below || eq
				}
				goto branch

			case uCmpRM:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				var b uint32
				if d := ea - w.hiDel[s]; d < w.hiLen[s] && u.k == 2 {
					b = binary.LittleEndian.Uint32(hiw[d:])
				} else if ea < w.loR[s] && u.k == 2 {
					if w.ldt[s] {
						hw++
					}
					b = binary.LittleEndian.Uint32(low[w.base[s]+ea:])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, int(u.k), false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1<<u.k, false); err != nil {
							goto deopt
						}
					}
					b = sbReadSized(memv, lin, u.k)
				}
				a := r[u.dst&15]
				eq = a == b
				lt = int32(a) < int32(b)
				below = a < b

			case uCmpM:
				ea := r[u.base&15] + r[u.idx&15]*u.scale + u.imm
				s := u.seg & 7
				var a uint32
				if d := ea - w.hiDel[s]; d < w.hiLen[s] && u.k == 2 {
					a = binary.LittleEndian.Uint32(hiw[d:])
				} else if ea < w.loR[s] && u.k == 2 {
					if w.ldt[s] {
						hw++
					}
					a = binary.LittleEndian.Uint32(low[w.base[s]+ea:])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.SegReg(u.seg), ea, int(u.k), false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.SegReg(u.seg), ea, 1<<u.k, false); err != nil {
							goto deopt
						}
					}
					a = sbReadSized(memv, lin, u.k)
				}
				b := r[u.src&15] + u.imm2
				eq = a == b
				lt = int32(a) < int32(b)
				below = a < b

			case uTest:
				v := r[u.dst&15] & (r[u.src&15] + u.imm2)
				eq = v == 0
				lt = int32(v) < 0
				below = false

			case uJmp:
				taken = true
				goto branch
			case uJE:
				taken = eq
				goto branch
			case uJNE:
				taken = !eq
				goto branch
			case uJL:
				taken = lt
				goto branch
			case uJLE:
				taken = lt || eq
				goto branch
			case uJG:
				taken = !lt && !eq
				goto branch
			case uJGE:
				taken = !lt
				goto branch
			case uJB:
				taken = below
				goto branch
			case uJAE:
				taken = !below
				goto branch
			case uJA:
				taken = !below && !eq
				goto branch
			case uJBE:
				taken = below || eq
				goto branch

			case uPush:
				// Matches Machine.push: ESP moves before the translation,
				// so a faulting push leaves it decremented.
				r[ESP] -= 4
				ea := r[ESP]
				if ea < w.wOK[x86seg.DS] {
					if w.ldt[x86seg.DS] {
						hw++
					}
					lin := w.base[x86seg.DS] + ea
					if !memv.Write32Fast(lin, r[u.src&15]+u.imm2) {
						memv.Write32(lin, r[u.src&15]+u.imm2)
					}
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.DS, ea, 2, true)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.DS, ea, 4, true); err != nil {
							goto deopt
						}
					}
					if !memv.Write32Fast(lin, r[u.src&15]+u.imm2) {
						memv.Write32(lin, r[u.src&15]+u.imm2)
					}
				}

			case uPop:
				ea := r[ESP]
				if d := ea - w.hiDel[x86seg.DS]; d < w.hiLen[x86seg.DS] {
					r[ESP] = ea + 4
					r[u.dst&15] = binary.LittleEndian.Uint32(hiw[d:])
				} else {
					lin, ldt, qok := mmu.QuickRef(x86seg.DS, ea, 2, false)
					if ldt {
						hw++
					}
					if !qok || !plain {
						m.ip = head + k
						if lin, err = m.sbMemSlow(x86seg.DS, ea, 4, false); err != nil {
							goto deopt
						}
					}
					r[ESP] += 4
					if v, fok := memv.Read32Fast(lin); fok {
						r[u.dst&15] = v
					} else {
						r[u.dst&15] = memv.Read32(lin)
					}
				}

			default: // uGen
				copy(m.regs[:], r[:NumRegs])
				m.eq, m.lt, m.below = eq, lt, below
				m.stats.HWChecks += hw
				hw = 0
				m.ip = head + k
				if err = u.gen(m); err != nil {
					// The closure mutated machine state directly; it is
					// already authoritative — flush counters only.
					sb.flush(m, passes, k+1)
					m.sbDeopts++
					return err
				}
				copy(r[:NumRegs], m.regs[:])
				eq, lt, below = m.eq, m.lt, m.below
				if g := mmu.Gen(); g != m.sbwGen {
					m.sbw = m.sbWindows()
					m.sbwGen = g
				}
				if m.ip != head+k+1 {
					goto exit
				}
			}
			k++
			continue

		branch:
			if taken {
				if u.tgt >= 0 {
					m.ip = int(u.tgt)
					goto exit
				}
				goto backedge
			}
			if u.fall >= 0 {
				m.ip = int(u.fall)
				goto exit
			}
			k++
		}
		// Fell off the end of a straight-line trace.
		passes++
		m.ip = head + sb.n
		goto done

	backedge:
		passes++
		if budget-passes*n >= n {
			continue
		}
		m.ip = head
		goto done

	done: // a whole number of passes completed; m.ip set above
		sb.flush(m, passes, 0)
		goto link

	exit: // side exit after step k; m.ip set by the branch logic
		sb.flush(m, passes, k+1)

	link:
		// Trace linking: when the exit lands on another superblock's head
		// and a whole pass of it still fits under nextStop, switch traces
		// here — the register file, flags and hardware-check tally stay
		// in host locals instead of round-tripping through the machine
		// and the dispatch loop.
		if ip := m.ip; uint(ip) < uint(len(sbt.heads)) {
			if nsb := sbt.heads[ip]; nsb != nil && m.nextStop-m.stats.Instructions >= uint64(nsb.n) {
				sb = nsb
				m.sbEntries++
				head, n, uops = sb.head, uint64(sb.n), sb.uops
				budget = m.nextStop - m.stats.Instructions
				passes = 0
				continue
			}
		}
		copy(m.regs[:], r[:NumRegs])
		m.eq, m.lt, m.below = eq, lt, below
		m.stats.HWChecks += hw
		return nil
	}

deopt: // fault at step k; m.ip set at the fault site, err holds the fault
	copy(m.regs[:], r[:NumRegs])
	m.eq, m.lt, m.below = eq, lt, below
	m.stats.HWChecks += hw
	sb.flush(m, passes, k+1)
	m.sbDeopts++
	return err
}

// sbReadSized and sbWriteSized are the sized memory accessors for the
// less-common micro-ops that keep their access size as data (ALU and
// CMP memory operands); loads and stores get dedicated sized kinds.
func sbReadSized(mv *mem.Memory, phys uint32, k uint8) uint32 {
	switch k {
	case 0:
		return uint32(mv.Read8(phys))
	case 1:
		return uint32(mv.Read16(phys))
	}
	return mv.Read32(phys)
}

func sbWriteSized(mv *mem.Memory, phys uint32, k uint8, v uint32) {
	switch k {
	case 0:
		mv.Write8(phys, uint8(v))
	case 1:
		mv.Write16(phys, uint16(v))
	default:
		mv.Write32(phys, v)
	}
}

// sbMemSlow completes a fused memory access that missed the inline fast
// path (limit-check decline, or a machine with paging or tracing): the
// full architectural translation — exactly Machine.memPhys minus the
// LDT hardware-check count, which the micro-op arm has already applied.
// The caller must set m.ip to the accessing instruction first so a
// fault renders the right identity.
func (m *Machine) sbMemSlow(seg x86seg.SegReg, ea, size uint32, write bool) (uint32, error) {
	lin, ok := m.mmu.FlatLinear(seg, ea, size)
	if !ok {
		var err error
		lin, err = m.mmu.Translate(seg, ea, size, write)
		if err != nil {
			return 0, m.fault(FaultSegmentation, err)
		}
	}
	if m.plain {
		return lin, nil
	}
	return m.sbMemTail(seg, ea, lin, write)
}

// sbMemTail is the non-plain tail of sbMemSlow: the page walk and the
// trace hook, mirroring memPhysSlow for a fused access.
func (m *Machine) sbMemTail(seg x86seg.SegReg, ea, lin uint32, write bool) (uint32, error) {
	phys := lin
	if m.pages != nil {
		var err error
		phys, err = m.pages.Translate(lin, write)
		if err != nil {
			return 0, m.fault(FaultPage, err)
		}
		m.stats.PageWalks++
	}
	if m.trace != nil {
		m.trace(TraceEntry{
			Seg: seg, Selector: m.mmu.Selector(seg),
			Offset: ea, Linear: lin, Physical: phys, Write: write,
		})
	}
	return phys, nil
}

// DumpSuperblocks renders the program's compiled superblocks — the
// tier-2 analogue of Disassemble, pinned by tests and printed by
// `cashrun -tier2 -dump-superblocks`.
func (p *Program) DumpSuperblocks() string {
	t := p.superblocks()
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s mode): %d superblocks\n", p.Name, p.Mode, len(t.list))
	for _, sb := range t.list {
		kind := "trace"
		if sb.looping {
			kind = "loop"
		}
		fmt.Fprintf(&b, "superblock %s @%d..%d (%s, %d instrs)\n",
			sb.name, sb.head, sb.head+sb.n-1, kind, sb.n)
		for i := sb.head; i < sb.head+sb.n; i++ {
			fmt.Fprintf(&b, "%5d %s\n", i, p.Instrs[i].String())
		}
	}
	return b.String()
}

// SBStats reports one tier-2 run's superblock activity (Result.SB).
type SBStats struct {
	Compiled      uint64 // superblocks compiled for the program
	Entries       uint64 // superblock entries
	Deopts        uint64 // exits through a fault back to the interpreter
	InstrsRetired uint64 // instructions retired inside superblocks
}

// sb cache on Program, mirroring the predecode cache.
type sbCache struct {
	once sync.Once
	t    *sbTable
}
