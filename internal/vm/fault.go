package vm

import "fmt"

// FaultKind classifies run-time faults.
type FaultKind int

// Fault kinds.
const (
	// FaultSegmentation is a #GP/#NP from the segmentation hardware —
	// under Cash this is how an array bound violation manifests.
	FaultSegmentation FaultKind = iota + 1
	// FaultPage is a page fault from the paging unit.
	FaultPage
	// FaultSoftwareCheck is a software bound-check failure (BCC's check
	// sequence, Cash's spill fall-back, or the bound instruction).
	FaultSoftwareCheck
	// FaultDivide is a divide-by-zero.
	FaultDivide
	// FaultInvalid is an ill-formed instruction or machine state.
	FaultInvalid
	// FaultStepLimit means the step budget was exhausted.
	FaultStepLimit
	// FaultTransient is a transient kernel failure (an injected
	// EAGAIN-style modify_ldt error); the operation is retryable on a
	// fresh machine.
	FaultTransient
	// FaultCanceled means the run's context (WithCancel) was canceled;
	// the serving layer maps it back to the context's error.
	FaultCanceled
)

func (k FaultKind) String() string {
	switch k {
	case FaultSegmentation:
		return "segmentation fault"
	case FaultPage:
		return "page fault"
	case FaultSoftwareCheck:
		return "software bound violation"
	case FaultDivide:
		return "divide error"
	case FaultInvalid:
		return "invalid operation"
	case FaultStepLimit:
		return "step limit exceeded"
	case FaultTransient:
		return "transient kernel failure"
	case FaultCanceled:
		return "run canceled"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is the error returned when program execution stops abnormally.
// IsBoundViolation reports whether the fault represents a detected array
// bound violation (the event Cash exists to catch).
type Fault struct {
	Kind  FaultKind
	IP    int    // instruction index
	Instr string // disassembly of the faulting instruction
	Cause error  // underlying x86seg or paging fault, if any
}

func (f *Fault) Error() string {
	msg := fmt.Sprintf("%s at ip=%d (%s)", f.Kind, f.IP, f.Instr)
	if f.Cause != nil {
		msg += ": " + f.Cause.Error()
	}
	return msg
}

// Unwrap exposes the underlying hardware fault for errors.As.
func (f *Fault) Unwrap() error { return f.Cause }

// IsBoundViolation reports whether the fault is a detected bound
// violation, by hardware (segment limit) or software check.
func (f *Fault) IsBoundViolation() bool {
	return f.Kind == FaultSegmentation || f.Kind == FaultSoftwareCheck
}
