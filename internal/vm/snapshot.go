package vm

import (
	"fmt"
	"sync"

	"cash/internal/ldt"
	"cash/internal/mem"
	"cash/internal/obs"
	"cash/internal/x86seg"
)

// Snapshot metrics. Registered lazily, on the first snapshot taken —
// machines that never snapshot publish nothing new, keeping every
// pre-existing metrics golden byte-identical.
var (
	snapMetricsOnce sync.Once
	mSnapClones     *obs.Counter
	mSnapCowPages   *obs.Counter
)

func snapMetrics() {
	snapMetricsOnce.Do(func() {
		mSnapClones = obs.Default().Counter("vm.snapshot.clones")
		mSnapCowPages = obs.Default().Counter("vm.snapshot.cow_pages")
	})
}

// Snapshot is a frozen, warmed machine: the post-construction state of
// New — flat GDT installed, segment registers loaded, data image
// written, registers and instruction pointer at the entry point —
// captured once and cloned per run. A clone restores arena bytes up to
// the captured watermarks and shares sparse pages copy-on-write, so
// cloning skips the arena zeroing and setup replay of a fresh build
// while staying byte-identical to one (pinned by equivalence tests at
// the vm and serve layers). Snapshots are immutable and safe for
// concurrent NewMachine calls.
type Snapshot struct {
	prog      *Program
	mode      Mode
	geo       mem.Geometry
	regs      [NumRegs]uint32
	ip        int
	heap      uint32
	stepLimit uint64
	noGate    bool
	tier2     bool

	mem *mem.Image
	mmu *x86seg.MMUImage
	ldt *ldt.ManagerImage
}

// Snapshot captures the machine's current state for cloning. Only a
// freshly constructed machine is snapshottable: one that has executed,
// or was built with construction-shaping options a clone could not
// reproduce (paging, Electric Fence, traces, chaos injections), is
// refused with an error — the caller falls back to building machines
// the ordinary way.
func (m *Machine) Snapshot() (*Snapshot, error) {
	switch {
	case m.halted || m.stats.Instructions > 0 || m.cycles > 0 || len(m.output) > 0:
		return nil, fmt.Errorf("vm: cannot snapshot a machine that has run")
	case m.pages != nil:
		return nil, fmt.Errorf("vm: cannot snapshot a machine with paging enabled")
	case m.efence:
		return nil, fmt.Errorf("vm: cannot snapshot an Electric Fence machine")
	case m.trace != nil || m.etrace != nil:
		return nil, fmt.Errorf("vm: cannot snapshot a machine with a trace attached")
	case m.ldtAudit || m.ldtReserve > 0 || m.chaosTransient || m.chaosCorruptDesc ||
		m.chaosCorruptShadow || m.pokeData != nil || m.unmapSet:
		return nil, fmt.Errorf("vm: cannot snapshot a machine with fault injection configured")
	}
	ldtImg := m.ldtMgr.Capture()
	if ldtImg == nil {
		return nil, fmt.Errorf("vm: LDT manager state not snapshottable")
	}
	snapMetrics()
	return &Snapshot{
		prog:      m.prog,
		mode:      m.mode,
		geo:       m.memory.Geometry(),
		regs:      m.regs,
		ip:        m.ip,
		heap:      m.heap,
		stepLimit: m.stepLimit,
		noGate:    m.noGate,
		tier2:     m.tier2,
		mem:       m.memory.Capture(),
		mmu:       m.mmu.Capture(),
		ldt:       ldtImg,
	}, nil
}

// Program returns the program the snapshot was taken over.
func (s *Snapshot) Program() *Program { return s.prog }

// NewMachine clones the snapshot into a runnable machine. The clone
// starts from the snapshot's baked-in settings (step limit, call-gate
// suppression, tier-2), which opts may override or extend — WithParts
// recycles pooled state (restored in place, no separate Reset pass),
// WithCancel, WithEventTrace and WithStepLimit behave exactly as on
// New. Options that shape construction itself (paging, Electric Fence,
// chaos injections) cannot be honored on a clone and return an error
// before any pooled part is touched, so the caller can retry via New
// with the same parts.
func (s *Snapshot) NewMachine(opts ...Option) (*Machine, error) {
	m := &Machine{
		prog:      s.prog,
		mode:      s.mode,
		stepLimit: s.stepLimit,
		heap:      s.heap,
		noGate:    s.noGate,
		tier2:     s.tier2,
	}
	for _, o := range opts {
		o(m)
	}
	if m.pages != nil || m.efence || m.ldtAudit || m.ldtReserve > 0 ||
		m.chaosTransient || m.chaosCorruptDesc || m.chaosCorruptShadow ||
		m.pokeData != nil || m.unmapSet {
		return nil, fmt.Errorf("vm: option requires New, not a snapshot clone")
	}
	m.plain = m.pages == nil && m.trace == nil
	if m.tier2 {
		m.sbt = s.prog.superblocks()
	}
	if m.reuse.Mem != nil && m.reuse.MMU != nil && m.reuse.LDT != nil &&
		m.reuse.Mem.Geometry() == s.geo {
		// Restore below rewrites exactly the state Reset would clear, so
		// recycled parts skip the reset pass entirely.
		m.memory, m.mmu, m.ldtMgr = m.reuse.Mem, m.reuse.MMU, m.reuse.LDT
	} else {
		m.memory = mem.NewDense(s.geo.LoSize, s.geo.HiBase, s.geo.HiSize)
		m.mmu = x86seg.NewMMU()
		m.ldtMgr = ldt.NewManager(m.mmu.LDT())
	}
	if !s.mem.RestoreInto(m.memory) {
		return nil, fmt.Errorf("vm: snapshot memory geometry mismatch")
	}
	s.mmu.RestoreInto(m.mmu)
	s.ldt.RestoreInto(m.ldtMgr, m.mmu.LDT())
	m.ldtMgr.SetTrace(m.etrace)
	m.regs = s.regs
	m.ip = s.ip
	m.cloned = true
	mSnapClones.Inc()
	return m, nil
}
