package vm

import (
	"testing"

	"cash/internal/x86seg"
)

func TestEncodedSizes(t *testing.T) {
	tests := []struct {
		name string
		in   Instr
		want int
	}{
		{name: "nop", in: Instr{Op: NOP}, want: 1},
		{name: "ret", in: Instr{Op: RET}, want: 1},
		{name: "trap", in: Instr{Op: TRAP}, want: 2},
		{name: "int", in: Instr{Op: INT, Src: I(0x80)}, want: 2},
		{name: "lcall", in: Instr{Op: LCALL, Src: I(7)}, want: 7},
		{name: "call", in: Instr{Op: CALL}, want: 5},
		{name: "mov reg imm", in: Instr{Op: MOV, Dst: R(EAX), Src: I(1234)}, want: 5},
		{name: "mov reg reg", in: Instr{Op: MOV, Dst: R(EAX), Src: R(EBX)}, want: 2},
		{name: "push reg", in: Instr{Op: PUSH, Src: R(EAX)}, want: 1},
		{name: "push imm8", in: Instr{Op: PUSH, Src: I(5)}, want: 2},
		{name: "push imm32", in: Instr{Op: PUSH, Src: I(100000)}, want: 5},
		{name: "pop reg", in: Instr{Op: POP, Dst: R(EAX)}, want: 1},
		{
			name: "mov with small disp",
			in:   Instr{Op: MOV, Dst: R(EAX), Src: M(MemRef{Seg: x86seg.DS, Base: EBX, HasBase: true, Disp: 8})},
			want: 3, // opcode + ModRM + disp8 (8b 43 08)
		},
		{
			name: "mov with large disp",
			in:   Instr{Op: MOV, Dst: R(EAX), Src: M(MemRef{Seg: x86seg.DS, Base: EBX, HasBase: true, Disp: 100000})},
			want: 6, // opcode + ModRM + disp32
		},
		{
			name: "segment override adds a prefix byte",
			in:   Instr{Op: MOV, Dst: R(EAX), Src: M(MemRef{Seg: x86seg.GS, Base: EBX, HasBase: true, Disp: 8})},
			want: 4,
		},
		{
			name: "SIB byte for indexed form",
			in:   Instr{Op: MOV, Dst: R(EAX), Src: M(MemRef{Seg: x86seg.DS, Base: EBX, HasBase: true, Index: ECX, HasIndex: true, Scale: 4})},
			want: 3, // opcode + ModRM + SIB
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.EncodedSize(); got != tt.want {
				t.Fatalf("EncodedSize = %d, want %d", got, tt.want)
			}
		})
	}
}

// TestBranchRelaxationShort: a tight loop keeps its rel8 branches.
func TestBranchRelaxationShort(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.Op(ADD, R(EAX), I(1))
	b.Op(CMP, R(EAX), I(10))
	b.Jump(JL, "top")
	b.Emit(Instr{Op: HLT})
	p, err := b.Finish("short")
	if err != nil {
		t.Fatal(err)
	}
	_, total := p.Layout()
	// add(3) + cmp(3) + jl short(2) + hlt(1)
	if total != 9 {
		t.Fatalf("total = %d, want 9 (short branch)", total)
	}
}

// TestBranchRelaxationLong: a branch over >127 bytes widens to rel32.
func TestBranchRelaxationLong(t *testing.T) {
	b := NewBuilder()
	b.Jump(JE, "far")
	for i := 0; i < 60; i++ {
		b.Op(MOV, R(EAX), I(1000)) // 5 bytes each
	}
	b.Label("far")
	b.Emit(Instr{Op: HLT})
	p, err := b.Finish("long")
	if err != nil {
		t.Fatal(err)
	}
	offsets, total := p.Layout()
	// The jcc must be the 6-byte near form: everything shifts by 4.
	if offsets[1] != 6 {
		t.Fatalf("first instruction after the branch at %d, want 6 (jcc rel32)", offsets[1])
	}
	if total != 6+60*5+1 {
		t.Fatalf("total = %d, want %d", total, 6+60*5+1)
	}
}

// TestRelaxationFixpoint: widening one branch can push another out of
// range; the layout must converge, not oscillate.
func TestRelaxationFixpoint(t *testing.T) {
	b := NewBuilder()
	// Two branches whose targets are ~127 bytes away, separated by
	// filler so that widening the first pushes the second over the edge.
	b.Jump(JE, "mid")
	for i := 0; i < 24; i++ {
		b.Op(MOV, R(EAX), I(1000))
	}
	b.Jump(JNE, "end")
	b.Label("mid")
	for i := 0; i < 24; i++ {
		b.Op(MOV, R(EBX), I(1000))
	}
	b.Label("end")
	b.Emit(Instr{Op: HLT})
	p, err := b.Finish("fixpoint")
	if err != nil {
		t.Fatal(err)
	}
	offsets, total := p.Layout()
	if total <= 0 {
		t.Fatal("layout must produce a positive size")
	}
	// Offsets must be strictly increasing.
	for i := 1; i < len(offsets); i++ {
		if offsets[i] <= offsets[i-1] {
			t.Fatalf("offsets not monotone at %d: %v", i, offsets[:i+1])
		}
	}
}

func TestDisassemblyStrings(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: MOV, Dst: R(EAX), Src: I(10)}, "\tmovl\t$10, %eax"},
		{Instr{Op: MOV, Dst: R(EAX), Src: M(MemRef{Seg: x86seg.SS, Base: EBP, HasBase: true, Disp: -8}), Size: 1}, "\tmovb\t-8(%ebp), %eax"},
		{Instr{Op: MOV, Dst: M(MemRef{Seg: x86seg.GS, Base: EDX, HasBase: true, Index: EAX, HasIndex: true, Scale: 4}), Src: I(10)}, "\tmovl\t$10, %gs:(%edx,%eax,4)"},
		{Instr{Op: JMP, Sym: ".loop"}, "\tjmp\t.loop"},
		{Instr{Op: INT, Src: I(0x80)}, "\tint\t$128"},
		{Instr{Op: RET}, "\tret"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
