package vm

import (
	"reflect"
	"sync"
	"testing"

	"cash/internal/obs"
)

// snapProg builds a program that exercises the state a snapshot must
// carry faithfully: the call gate, an LDT allocation, the data image,
// heap writes, and a summing loop over both.
func snapProg(t *testing.T) *Program {
	t.Helper()
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
		b.Emit(Instr{Op: INT, Src: I(0x80)})
		b.Op(MOV, R(EAX), I(64))
		b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
		b.Op(MOV, R(EBX), R(EAX))
		b.Op(MOV, ds(EBX, 0), I(41))  // heap write
		b.Op(MOV, R(ECX), I(0x1000))  // data base
		b.Op(MOV, R(EAX), ds(ECX, 0)) // from the data image
		b.Op(ADD, R(EAX), ds(EBX, 0)) // plus the heap cell
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	p.Data = []byte{1, 0, 0, 0}
	return p
}

// TestSnapshotCloneEquivalence pins the snapshot contract at the vm
// layer: a machine cloned from a snapshot runs byte-identically to a
// freshly built machine, in both checking modes, and the snapshot
// survives its clones unchanged — the Nth clone equals the first.
func TestSnapshotCloneEquivalence(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeCash} {
		fresh := mustRun(t, snapProg(t), mode)

		src, err := New(snapProg(t), mode)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := src.Snapshot()
		if err != nil {
			t.Fatalf("[%v] snapshot: %v", mode, err)
		}
		for i := 0; i < 3; i++ {
			clone, err := snap.NewMachine()
			if err != nil {
				t.Fatalf("[%v] clone %d: %v", mode, i, err)
			}
			res, err := clone.Run()
			if err != nil {
				t.Fatalf("[%v] clone %d run: %v", mode, i, err)
			}
			if !reflect.DeepEqual(fresh, res) {
				t.Fatalf("[%v] clone %d differs from fresh run:\n%+v\nvs\n%+v",
					mode, i, fresh, res)
			}
		}
	}
}

// TestSnapshotCloneWithRecycledParts pins that restoring a snapshot
// into pooled parts dirtied by a previous tenant leaves no stale state:
// the clone still runs byte-identically to a fresh machine.
func TestSnapshotCloneWithRecycledParts(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeCash} {
		// The writer dirties data memory, the heap, and (in cash mode)
		// the LDT before donating its parts.
		writer, err := New(snapProg(t), mode)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writer.Run(); err != nil {
			t.Fatalf("[%v] writer: %v", mode, err)
		}

		fresh := mustRun(t, snapProg(t), mode)
		src, err := New(snapProg(t), mode)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := src.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		clone, err := snap.NewMachine(WithParts(writer.Parts()))
		if err != nil {
			t.Fatalf("[%v] clone on parts: %v", mode, err)
		}
		res, err := clone.Run()
		if err != nil {
			t.Fatalf("[%v] clone run: %v", mode, err)
		}
		if !reflect.DeepEqual(fresh, res) {
			t.Fatalf("[%v] recycled clone differs from fresh run:\n%+v\nvs\n%+v",
				mode, fresh, res)
		}
	}
}

// TestSnapshotConcurrentClones exercises snapshot immutability under
// concurrent cloning (meaningful under -race): many goroutines clone
// and run simultaneously, and every result equals a fresh build's.
func TestSnapshotConcurrentClones(t *testing.T) {
	fresh := mustRun(t, snapProg(t), ModeCash)
	src, err := New(snapProg(t), ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				clone, err := snap.NewMachine()
				if err != nil {
					errs <- err
					return
				}
				res, err := clone.Run()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(fresh, res) {
					t.Errorf("concurrent clone differs from fresh run")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSnapshotRefusals pins which machines refuse to snapshot: anything
// whose state a clone could not reproduce faithfully.
func TestSnapshotRefusals(t *testing.T) {
	mk := func(opts ...Option) *Machine {
		m, err := New(snapProg(t), ModeCash, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		m    func() *Machine
	}{
		{"already ran", func() *Machine {
			m := mk()
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"paging", func() *Machine { return mk(WithPaging(4 << 20)) }},
		{"event trace", func() *Machine { return mk(WithEventTrace(obs.NewTrace(8))) }},
		{"ldt audit", func() *Machine { return mk(WithLDTAudit()) }},
		{"chaos poke", func() *Machine { return mk(WithPoke(0x1000, []byte{1})) }},
	}
	for _, tc := range cases {
		if _, err := tc.m().Snapshot(); err == nil {
			t.Errorf("%s: Snapshot() succeeded, want refusal", tc.name)
		}
	}
}

// TestSnapshotCloneRejectsConstructionOptions pins that options shaping
// machine construction fail cleanly on a clone — before any pooled part
// is touched — and that the snapshot stays usable afterwards.
func TestSnapshotCloneRejectsConstructionOptions(t *testing.T) {
	src, err := New(snapProg(t), ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := src.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Option{
		WithPaging(4 << 20), WithElectricFence(), WithLDTAudit(),
		WithDescriptorCorruption(), WithPoke(0x1000, []byte{1}),
	} {
		if _, err := snap.NewMachine(opt); err == nil {
			t.Fatal("clone with construction-shaping option succeeded, want error")
		}
	}
	clone, err := snap.NewMachine()
	if err != nil {
		t.Fatalf("snapshot unusable after rejected clones: %v", err)
	}
	if _, err := clone.Run(); err != nil {
		t.Fatal(err)
	}
}
