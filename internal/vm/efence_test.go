package vm

import (
	"errors"
	"testing"
)

// Tests for the Electric Fence malloc debugger model (§2 related work).

func efenceProg(t *testing.T, n, writes int32) *Program {
	t.Helper()
	return buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(n))
		b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
		b.Op(MOV, R(EBX), R(EAX)) // base pointer
		b.Op(MOV, R(ECX), I(0))   // byte index
		b.Label("loop")
		b.Op(CMP, R(ECX), I(writes))
		b.Jump(JGE, "done")
		b.Emit(Instr{Op: MOV,
			Dst:  M(MemRef{Base: EBX, HasBase: true, Index: ECX, HasIndex: true, Scale: 1}),
			Src:  I('A'),
			Size: 1,
		})
		b.Op(ADD, R(ECX), I(1))
		b.Jump(JMP, "loop")
		b.Label("done")
		b.Emit(Instr{Op: HLT})
	})
}

func TestEFenceInBoundsPasses(t *testing.T) {
	p := efenceProg(t, 100, 100)
	res, err := run(t, p, ModeGCC, WithPaging(1<<24), WithElectricFence())
	if err != nil {
		t.Fatalf("in-bounds writes must pass: %v", err)
	}
	if res.Stats.Instructions == 0 {
		t.Fatal("program must have run")
	}
}

func TestEFenceOverflowPageFaults(t *testing.T) {
	p := efenceProg(t, 100, 101) // one byte past the end
	_, err := run(t, p, ModeGCC, WithPaging(1<<24), WithElectricFence())
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultPage {
		t.Fatalf("overflow into the guard page must page-fault, got %v", err)
	}
}

func TestEFenceObjectEndsAtPageBoundary(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(100))
		b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	res := mustRun(t, p, ModeGCC, WithPaging(1<<24), WithElectricFence())
	ptr := uint32(res.Output[0])
	if (ptr+100)%4096 != 0 {
		t.Fatalf("object end %#x must sit on a page boundary", ptr+100)
	}
}

func TestEFenceRequiresPaging(t *testing.T) {
	p := efenceProg(t, 16, 1)
	_, err := run(t, p, ModeGCC, WithElectricFence())
	if err == nil {
		t.Fatal("electric fence without paging must fail")
	}
}

// TestEFenceSpaceConsumption demonstrates the paper's critique: the
// page-per-object layout burns vastly more address space than Cash's
// byte-granular segments.
func TestEFenceSpaceConsumption(t *testing.T) {
	alloc := func(opts ...Option) *Machine {
		p := buildProg(t, func(b *Builder) {
			b.Op(MOV, R(ECX), I(0))
			b.Label("loop")
			b.Op(CMP, R(ECX), I(50))
			b.Jump(JGE, "done")
			b.Op1(PUSH, R(ECX))
			b.Op(MOV, R(EAX), I(16)) // tiny allocations
			b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
			b.Op1(POP, R(ECX))
			b.Op(ADD, R(ECX), I(1))
			b.Jump(JMP, "loop")
			b.Label("done")
			b.Emit(Instr{Op: HLT})
		})
		m, err := New(p, ModeGCC, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := alloc()
	fenced := alloc(WithPaging(1<<24), WithElectricFence())
	plainSpan := plain.heap - plain.prog.HeapBase
	fencedSpan := fenced.heap - fenced.prog.HeapBase
	// 50 x 16 bytes: ~800 bytes plain, ~50 x 8 KiB fenced.
	if fencedSpan < 100*plainSpan {
		t.Fatalf("electric fence span %d must dwarf plain span %d", fencedSpan, plainSpan)
	}
}
