// Package vm implements the simulated execution substrate for the Cash
// reproduction: an x86-flavoured 32-bit register machine whose every data
// reference is translated and limit-checked by the segmentation model in
// internal/x86seg (optionally followed by the paging model in
// internal/paging), with a per-instruction cycle cost model calibrated to
// the Pentium-III constants reported in the paper.
//
// The three compiler back ends (internal/codegen) target this ISA; the
// benchmark harness compares their simulated cycle counts, which is the
// quantity the paper reports.
package vm

import (
	"fmt"
	"strings"
	"sync"

	"cash/internal/x86seg"
)

// Reg names a general-purpose 32-bit register.
type Reg uint8

// General-purpose registers.
const (
	EAX Reg = iota
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI
	NumRegs
)

var regNames = [NumRegs]string{"eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"}

func (r Reg) String() string {
	if r < NumRegs {
		return "%" + regNames[r]
	}
	return fmt.Sprintf("%%r(%d)", uint8(r))
}

// Op is an instruction opcode.
type Op uint8

// Opcodes. The set is the subset of IA-32 the Cash code generators emit,
// plus three "system" entries: INT (system call), LCALL (call gate) and
// HCALL (host/libc services such as malloc that the paper links in as
// recompiled library code).
const (
	NOP Op = iota
	MOV
	LEA
	ADD
	SUB
	IMUL
	IDIV
	IMOD
	AND
	OR
	XOR
	SHL
	SHR
	SAR
	NEG
	NOT
	CMP
	TEST
	JMP
	JE
	JNE
	JL
	JLE
	JG
	JGE
	JB
	JAE
	JA
	JBE
	PUSH
	POP
	CALL
	RET
	MOVSR // MOV to segment register: 4 cycles (§3.3)
	MOVRS // MOV from segment register
	BOUND // IA-32 bound instruction: 7 cycles (§2)
	TRAP  // software bound-check failure (UD2-style)
	INT   // system call (int 0x80)
	LCALL // call gate entry (lcall $0x7,$0x0 -> cash_modify_ldt)
	HCALL // host/libc service
	HLT
	// MPX-style bounds instructions, for the "mpx" checking strategy: a
	// lower/upper check pair against register or immediate bounds, and a
	// shadow bounds-table load/store keyed by the address of the pointer
	// slot (modelling bndldx/bndstx's two-level Bounds Directory walk).
	BNDCL  // trap if Dst register < Src (lower bound)
	BNDCU  // trap if Dst register >= Src (exclusive upper bound)
	BNDLDX // load bounds for the slot at Src's address into EDX/ECX
	BNDSTX // store EDX/ECX (Src=$1) or INIT bounds (Src=$0) for Dst's slot
	numOps
)

var opNames = [numOps]string{
	"nop", "mov", "lea", "add", "sub", "imul", "idiv", "imod",
	"and", "or", "xor", "shl", "shr", "sar", "neg", "not",
	"cmp", "test",
	"jmp", "je", "jne", "jl", "jle", "jg", "jge", "jb", "jae", "ja", "jbe",
	"push", "pop", "call", "ret",
	"movsr", "movrs", "bound", "trap", "int", "lcall", "hcall", "hlt",
	"bndcl", "bndcu", "bndldx", "bndstx",
}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OperandKind distinguishes operand flavours.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindMem
	KindSReg
)

// MemRef is an IA-32 addressing-mode memory operand:
//
//	seg:[base + index*scale + disp]
//
// Seg is the segment register the reference is checked through; the
// default data segment is DS. Cash's instrumented array references use ES,
// FS, GS (and optionally SS).
type MemRef struct {
	Seg      x86seg.SegReg
	Base     Reg
	HasBase  bool
	Index    Reg
	HasIndex bool
	Scale    uint8 // 1, 2, 4 or 8
	Disp     int32
}

func (m MemRef) String() string {
	var b strings.Builder
	// DS is the default data segment; SS is the default for EBP/ESP
	// bases — neither needs an override prefix in listings.
	implicitSS := m.Seg == x86seg.SS && m.HasBase && (m.Base == EBP || m.Base == ESP)
	if m.Seg != x86seg.DS && !implicitSS {
		b.WriteString("%" + strings.ToLower(m.Seg.String()) + ":")
	}
	if m.Disp != 0 || (!m.HasBase && !m.HasIndex) {
		fmt.Fprintf(&b, "%d", m.Disp)
	}
	if m.HasBase || m.HasIndex {
		b.WriteByte('(')
		if m.HasBase {
			b.WriteString(m.Base.String())
		}
		if m.HasIndex {
			fmt.Fprintf(&b, ",%s,%d", m.Index.String(), m.Scale)
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Operand is one instruction operand.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	SReg x86seg.SegReg
	Imm  int32
	Mem  MemRef
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// I returns an immediate operand.
func I(v int32) Operand { return Operand{Kind: KindImm, Imm: v} }

// M returns a memory operand.
func M(m MemRef) Operand { return Operand{Kind: KindMem, Mem: m} }

// SR returns a segment-register operand.
func SR(s x86seg.SegReg) Operand { return Operand{Kind: KindSReg, SReg: s} }

func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("$%d", o.Imm)
	case KindMem:
		return o.Mem.String()
	case KindSReg:
		return "%" + strings.ToLower(o.SReg.String())
	default:
		return ""
	}
}

// Note annotates an instruction for the statistics the paper reports.
type Note uint8

// Instruction annotations.
const (
	NoteNone Note = iota
	// NoteSWCheck marks the first instruction of a software bound-check
	// sequence; executing it counts one software check (BCC, or Cash's
	// spill fall-back).
	NoteSWCheck
	// NoteSegSetup marks per-array-use segment set-up code that a
	// standard optimiser hoists out of the loop (§3.3).
	NoteSegSetup
	// NoteLoopBackedge marks a loop's back-edge jump; executing it
	// counts one loop iteration.
	NoteLoopBackedge
	// NoteSpilledBackedge marks the back-edge of a loop that uses more
	// distinct arrays than there are segment registers — the "spilled
	// loop" iterations the paper's Tables 4 and 7 report in parentheses.
	NoteSpilledBackedge
)

// Instr is one machine instruction.
type Instr struct {
	Op     Op
	Dst    Operand
	Src    Operand
	Size   uint8 // access size for MOV: 1, 2 or 4 bytes (0 = 4)
	Target int   // resolved instruction index for jumps/calls
	Sym    string
	Note   Note
	Label  string // label attached at this instruction, for listings
}

func (in Instr) String() string {
	var b strings.Builder
	if in.Label != "" {
		fmt.Fprintf(&b, "%s:\n", in.Label)
	}
	b.WriteString("\t")
	op := in.Op.String()
	if in.Op == MOV {
		switch in.Size {
		case 1:
			op = "movb"
		case 2:
			op = "movw"
		default:
			op = "movl"
		}
	}
	b.WriteString(op)
	switch in.Op {
	case JMP, JE, JNE, JL, JLE, JG, JGE, JB, JAE, JA, JBE, CALL:
		if in.Sym != "" {
			fmt.Fprintf(&b, "\t%s", in.Sym)
		} else {
			fmt.Fprintf(&b, "\t@%d", in.Target)
		}
	case INT, LCALL, HCALL:
		fmt.Fprintf(&b, "\t$%d", in.Src.Imm)
	default:
		// AT&T order: op src, dst.
		if in.Src.Kind != KindNone {
			b.WriteString("\t" + in.Src.String())
			if in.Dst.Kind != KindNone {
				b.WriteString(", " + in.Dst.String())
			}
		} else if in.Dst.Kind != KindNone {
			b.WriteString("\t" + in.Dst.String())
		}
	}
	return b.String()
}

// Program is an executable image: code, an initial data image, and entry
// point metadata produced by the code generators.
type Program struct {
	Name     string
	Instrs   []Instr
	Entry    int               // instruction index of the entry point
	Funcs    map[string]int    // function name -> entry instruction
	Data     []byte            // initial data segment image
	DataBase uint32            // linear address the data image loads at
	HeapBase uint32            // first heap address (after data)
	StackTop uint32            // initial ESP
	Mode     string            // producing compiler mode, for listings
	Stats    map[string]uint64 // static code-gen statistics

	// Regions are the compiler's superblock candidate hints (loop spans,
	// hottest first) for tier-2 execution. Purely advisory: execution is
	// identical with or without them.
	Regions []Region

	// pre caches the predecoded execution form (see predecode.go), built
	// lazily on first Run and shared by every Machine executing this
	// program. Programs must not be copied by value once running.
	pre struct {
		once sync.Once
		c    *compiled
	}

	// sb caches the compiled superblock table (see superblock.go) the
	// same way, built lazily on the first tier-2 machine.
	sb sbCache
}

// Disassemble renders the program as an AT&T-style listing.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s (%s mode), %d instructions\n", p.Name, p.Mode, len(p.Instrs))
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "%5d %s\n", i, in.String())
	}
	return b.String()
}
