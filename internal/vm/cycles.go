package vm

// Cycle cost model.
//
// The paper's relative results rest on a handful of measured constants:
// a segment-register load costs 4 cycles (§3.3), the six-instruction
// software bound check costs 6 cycles (§2: "the 6 equivalent instructions
// require 6 cycles"), the IA-32 bound instruction costs 7 cycles (§2),
// cash_modify_ldt costs 253 cycles and modify_ldt 781 (§3.6, charged by
// internal/ldt). We therefore charge 1 cycle for simple ALU, move and
// branch instructions — matching the paper's 1-cycle-per-instruction
// accounting on the P3 — and use textbook latencies for multiply/divide.
const (
	cycleSimple = 1 // mov/lea/alu/cmp/test/jcc/push/pop
	// IMUL is charged at its pipelined throughput (one per cycle on the
	// P3), not its latency: the paper's accounting — "the 6 equivalent
	// instructions require 6 cycles" against loop bodies full of
	// multiplies — implies throughput costing for the ALU.
	cycleMul      = 1
	cycleDiv      = 20 // idiv is unpipelined
	cycleCall     = 2
	cycleRet      = 2
	cycleSegLoad  = 4 // MOV to segment register (§3.3)
	cycleSegStore = 1 // MOV from segment register
	cycleBound    = 7 // bound instruction on a 1.1 GHz P3 (§2)

	// MPX strategy constants, following the cost structure "Intel MPX
	// Explained" measured: the compare-style bndcl/bndcu are ordinary
	// 1-cycle ALU ops, while bndldx/bndstx pay a two-level Bounds
	// Directory -> Bounds Table walk (two dependent memory accesses plus
	// address arithmetic), which is where MPX's overhead concentrates.
	cycleBndCheck = 1
	cycleBndTable = 10
)

// CostMalloc is the flat cost of the allocator itself, identical across
// compiler modes so that mode comparisons isolate bound-checking costs.
const CostMalloc = 80

// CostFreeHeap is the flat cost of free(3), identical across modes.
const CostFreeHeap = 40

// CostPrint is the flat cost of the output routine, identical across modes.
const CostPrint = 60

func (in *Instr) baseCost() uint64 {
	switch in.Op {
	case IMUL:
		return cycleMul
	case IDIV, IMOD:
		return cycleDiv
	case CALL:
		return cycleCall
	case RET:
		return cycleRet
	case MOVSR:
		return cycleSegLoad
	case MOVRS:
		return cycleSegStore
	case BOUND:
		return cycleBound
	case BNDCL, BNDCU:
		return cycleBndCheck
	case BNDLDX, BNDSTX:
		return cycleBndTable
	case HLT, NOP:
		return 0
	case INT, LCALL, HCALL:
		// Charged by the service implementation.
		return 0
	default:
		return cycleSimple
	}
}
