package vm

import (
	"errors"
	"fmt"

	"cash/internal/ldt"
	"cash/internal/x86seg"
)

// This file implements the three service entries of the simulated OS and
// runtime library:
//
//   INT   — Linux system calls (exit, set_ldt_callgate)
//   LCALL — the cash_modify_ldt call gate (segment alloc/free, §3.6)
//   HCALL — recompiled libc services (malloc, free, output)
//
// All segment-allocation cycle costs are charged by the ldt.Manager, so
// the call-gate-vs-syscall trade-off the paper measures shows up directly
// in the machine's cycle count.

func (m *Machine) syscall() error {
	switch m.regs[EAX] {
	case SysExit:
		m.exitCode = int32(m.regs[EBX])
		m.halted = true
		return nil
	case SysSetLDTCallGate:
		if m.noGate {
			// Ablation: pretend the kernel lacks the Cash patch; later
			// allocations pay the stock modify_ldt cost.
			return nil
		}
		if err := m.ldtMgr.InstallCallGate(); err != nil {
			return m.fault(FaultInvalid, err)
		}
		return nil
	default:
		return m.fault(FaultInvalid, fmt.Errorf("unknown syscall %d", m.regs[EAX]))
	}
}

// gateCall services lcall $0x7,$0x0. Parameters are passed in registers —
// the paper's cash_modify_ldt avoids copying from the user stack:
//
//	EAX = operation (GateAllocSegment, GateFreeSegment)
//	EBX = array base         (alloc)  | selector (free)
//	ECX = array size         (alloc)
//	EDX = info struct address, 0 if none (alloc)
//
// On return EAX holds the segment selector (alloc).
// ErrTransientLDT is the cause of an injected transient modify_ldt
// failure (see WithTransientAllocFault); it surfaces as a Fault of kind
// FaultTransient, which callers may retry on a fresh machine.
var ErrTransientLDT = errors.New("modify_ldt: resource temporarily unavailable (injected)")

// allocFault converts a segment-allocation error into the right fault
// kind: injected transient failures are retryable, everything else is an
// invalid operation.
func (m *Machine) allocFault(err error) *Fault {
	if errors.Is(err, ErrTransientLDT) {
		return m.fault(FaultTransient, err)
	}
	return m.fault(FaultInvalid, err)
}

func (m *Machine) gateCall() error {
	switch m.regs[EAX] {
	case GateAllocSegment:
		sel, err := m.allocSegment(m.regs[EBX], m.regs[ECX], m.regs[EDX])
		if err != nil {
			return m.allocFault(err)
		}
		m.regs[EAX] = uint32(sel)
		return nil
	case GateFreeSegment:
		m.freeSegment(x86seg.Selector(m.regs[EBX]))
		return nil
	default:
		return m.fault(FaultInvalid, fmt.Errorf("unknown gate operation %d", m.regs[EAX]))
	}
}

// allocSegment allocates a segment covering the array [base, base+size)
// and, when infoAddr is non-zero, fills the 3-word information structure:
//
//	info[0] = selector
//	info[4] = segment base (subtracted to form segment offsets, §3.3)
//	info[8] = array end (software upper bound)
//
// Arrays larger than 1 MiB get a page-granular segment whose end is
// aligned with the array end (§3.5), making the hardware upper-bound check
// byte-exact at the price of sub-page lower-bound slack. When the LDT is
// exhausted the flat data segment is returned with bounds [0, 4 GiB),
// which disables checking for this object (§3.4).
func (m *Machine) allocSegment(base, size, infoAddr uint32) (x86seg.Selector, error) {
	if m.chaosTransient && !m.chaosFired {
		m.chaosFired = true
		return 0, ErrTransientLDT
	}
	segBase, segSize := base, size
	if size > 0 && size-1 > x86seg.MaxByteLimit {
		pages := (uint64(size) + x86seg.PageGranule - 1) / x86seg.PageGranule
		segSize = uint32(pages) * x86seg.PageGranule
		segBase = base + size - segSize
	}
	sel, err := m.ldtMgr.Alloc(segBase, segSize)
	lower, upper := segBase, base+size
	if errors.Is(err, ldt.ErrExhausted) {
		m.stats.FlatFallbacks++
		sel, lower, upper = FlatDataSelector, 0, 0xffffffff
	} else if err != nil {
		return 0, err
	} else if !m.chaosFired && (m.chaosCorruptDesc || m.chaosCorruptShadow) {
		m.chaosFired = true
		if m.chaosCorruptDesc {
			// Shrink the freshly installed descriptor to one byte behind
			// the allocator's back: the next reference through it faults,
			// and the audit checker sees the drift either way.
			if bad, derr := x86seg.NewDataDescriptor(segBase, 1); derr == nil {
				_ = m.mmu.LDT().Set(sel.Index(), bad)
			}
		} else {
			m.ldtMgr.CorruptFreeList(uint64(sel))
		}
	}
	if infoAddr != 0 {
		m.memory.Write32(infoAddr, uint32(sel))
		m.memory.Write32(infoAddr+4, lower)
		m.memory.Write32(infoAddr+8, upper)
	}
	return sel, nil
}

// freeSegment releases a segment; the flat fall-back selector is not a
// real allocation and is ignored.
func (m *Machine) freeSegment(sel x86seg.Selector) {
	if sel == FlatDataSelector || sel.IsNull() {
		return
	}
	// A double free or corrupted selector only hurts the application
	// itself (§3.8); mirror that by ignoring the failure.
	_ = m.ldtMgr.Free(sel)
}

func (m *Machine) hostCall(service int32) error {
	switch service {
	case HostPrintInt:
		m.cycles += CostPrint
		m.output = append(m.output, int32(m.regs[EAX]))
		return nil
	case HostPrintCh:
		m.cycles += CostPrint
		m.output = append(m.output, int32(m.regs[EAX])&0xff)
		return nil
	case HostMalloc:
		m.stats.MallocCalls++
		m.cycles += CostMalloc
		ptr, err := m.malloc(m.regs[EAX])
		if err != nil {
			return m.allocFault(err)
		}
		m.regs[EAX] = ptr
		return nil
	case HostFree:
		m.cycles += CostFreeHeap
		m.freeHeap(m.regs[EAX])
		return nil
	default:
		return m.fault(FaultInvalid, fmt.Errorf("unknown host service %d", service))
	}
}

// malloc carves a block from the bump heap. Under ModeCash the paper's
// layout is used: a 3-word info structure precedes the array, the array's
// segment is allocated, and for >1 MiB requests the array is placed so its
// end coincides with the page-granular segment end (§3.5).
func (m *Machine) malloc(n uint32) (uint32, error) {
	if n == 0 {
		n = 1
	}
	alignUp := func(v uint32) uint32 { return (v + 3) &^ 3 }
	if m.efence {
		return m.mallocEFence(n)
	}
	if m.mode != ModeCash {
		ptr := alignUp(m.heap)
		m.heap = ptr + n
		return ptr, nil
	}
	block := alignUp(m.heap)
	array := block + InfoStructSize
	if n-1 > x86seg.MaxByteLimit {
		pages := (uint64(n) + x86seg.PageGranule - 1) / x86seg.PageGranule
		segBytes := uint32(pages) * x86seg.PageGranule
		// Place the array so it ends at the segment end; the padding
		// below the array is the (unused) lower-bound slack region.
		array = block + InfoStructSize + (segBytes - n)
		m.heap = block + InfoStructSize + segBytes
	} else {
		m.heap = array + n
	}
	// The info structure always sits immediately below the array so that
	// free() can find it from the pointer alone.
	if _, err := m.allocSegment(array, n, array-InfoStructSize); err != nil {
		return 0, err
	}
	return array, nil
}

// mallocEFence implements the Electric Fence layout: the object ends at
// a page boundary and the next page is an unmapped guard, so the first
// byte written past the object page-faults. The paper's related-work
// critique — "it consumes too much virtual memory space" — is visible in
// the page accounting: every allocation burns at least two pages.
func (m *Machine) mallocEFence(n uint32) (uint32, error) {
	if m.pages == nil {
		return 0, fmt.Errorf("electric fence requires paging")
	}
	const page = 4096
	// Start at the next page boundary, leave room for the object plus
	// its trailing guard page.
	start := (m.heap + page - 1) &^ (page - 1)
	objPages := (n + page - 1) / page
	guard := start + objPages*page
	ptr := guard - n // object ends exactly at the guard page
	m.pages.Unmap(guard)
	if m.guards == nil {
		m.guards = make(map[uint32]bool)
	}
	m.guards[guard] = true
	m.heap = guard + page
	return ptr, nil
}

// freeHeap releases a heap object. Under ModeCash the info structure sits
// InfoStructSize bytes below the array and names the segment to free.
func (m *Machine) freeHeap(ptr uint32) {
	if m.efence || m.mode != ModeCash || ptr < InfoStructSize {
		return
	}
	sel := x86seg.Selector(m.memory.Read32(ptr - InfoStructSize))
	m.freeSegment(sel)
}
