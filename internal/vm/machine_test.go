package vm

import (
	"errors"
	"reflect"
	"testing"

	"cash/internal/ldt"
	"cash/internal/x86seg"
)

// buildProg assembles instructions into a runnable program with a standard
// memory layout.
func buildProg(t *testing.T, emit func(b *Builder)) *Program {
	t.Helper()
	b := NewBuilder()
	emit(b)
	p, err := b.Finish("test")
	if err != nil {
		t.Fatal(err)
	}
	p.DataBase = 0x1000
	p.HeapBase = 0x100000
	p.StackTop = 0x7fff0000
	return p
}

func run(t *testing.T, p *Program, mode Mode, opts ...Option) (*Result, error) {
	t.Helper()
	m, err := New(p, mode, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func mustRun(t *testing.T, p *Program, mode Mode, opts ...Option) *Result {
	t.Helper()
	res, err := run(t, p, mode, opts...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func ds(base Reg, disp int32) Operand {
	return M(MemRef{Seg: x86seg.DS, Base: base, HasBase: true, Disp: disp})
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		op   Op
		a, b int32
		want int32
	}{
		{name: "add", op: ADD, a: 7, b: 5, want: 12},
		{name: "sub", op: SUB, a: 7, b: 5, want: 2},
		{name: "sub negative", op: SUB, a: 5, b: 7, want: -2},
		{name: "imul", op: IMUL, a: -3, b: 5, want: -15},
		{name: "idiv", op: IDIV, a: -17, b: 5, want: -3},
		{name: "imod", op: IMOD, a: 17, b: 5, want: 2},
		{name: "and", op: AND, a: 0xff, b: 0x0f, want: 0x0f},
		{name: "or", op: OR, a: 0xf0, b: 0x0f, want: 0xff},
		{name: "xor", op: XOR, a: 0xff, b: 0x0f, want: 0xf0},
		{name: "shl", op: SHL, a: 1, b: 4, want: 16},
		{name: "shr", op: SHR, a: 16, b: 2, want: 4},
		{name: "sar", op: SAR, a: -16, b: 2, want: -4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := buildProg(t, func(b *Builder) {
				b.Op(MOV, R(EAX), I(tt.a))
				b.Op(tt.op, R(EAX), I(tt.b))
				b.Op(MOV, R(EAX), R(EAX))
				b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
				b.Emit(Instr{Op: HLT})
			})
			res := mustRun(t, p, ModeGCC)
			if len(res.Output) != 1 || res.Output[0] != tt.want {
				t.Fatalf("output = %v, want [%d]", res.Output, tt.want)
			}
		})
	}
}

func TestDivideByZeroFaults(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(1))
		b.Op(IDIV, R(EAX), I(0))
		b.Emit(Instr{Op: HLT})
	})
	_, err := run(t, p, ModeGCC)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultDivide {
		t.Fatalf("want divide fault, got %v", err)
	}
}

func TestMemoryAndDataImage(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EBX), I(0x1000))
		b.Op(MOV, R(EAX), ds(EBX, 0)) // load data[0]
		b.Op(ADD, R(EAX), ds(EBX, 4)) // add data[1]
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Op(MOV, ds(EBX, 8), R(EAX)) // store to data[2]
		b.Op(MOV, R(EAX), ds(EBX, 8))
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	p.Data = []byte{10, 0, 0, 0, 32, 0, 0, 0, 0, 0, 0, 0}
	res := mustRun(t, p, ModeGCC)
	want := []int32{42, 42}
	if len(res.Output) != 2 || res.Output[0] != want[0] || res.Output[1] != want[1] {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
}

func TestByteAccess(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EBX), I(0x1000))
		in := Instr{Op: MOV, Dst: R(EAX), Src: ds(EBX, 1), Size: 1}
		b.Emit(in)
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	p.Data = []byte{0xff, 0x7b, 0xff}
	res := mustRun(t, p, ModeGCC)
	if res.Output[0] != 0x7b {
		t.Fatalf("byte load = %#x, want 0x7b", res.Output[0])
	}
}

func TestConditionalJumps(t *testing.T) {
	tests := []struct {
		name  string
		a, b  int32
		jcc   Op
		taken bool
	}{
		{name: "je taken", a: 3, b: 3, jcc: JE, taken: true},
		{name: "je not", a: 3, b: 4, jcc: JE, taken: false},
		{name: "jne taken", a: 3, b: 4, jcc: JNE, taken: true},
		{name: "jl signed", a: -1, b: 0, jcc: JL, taken: true},
		{name: "jb unsigned -1 not below 0", a: -1, b: 0, jcc: JB, taken: false},
		{name: "jae unsigned", a: -1, b: 0, jcc: JAE, taken: true},
		{name: "jg", a: 5, b: 4, jcc: JG, taken: true},
		{name: "jge equal", a: 4, b: 4, jcc: JGE, taken: true},
		{name: "jle greater not", a: 5, b: 4, jcc: JLE, taken: false},
		{name: "ja", a: 5, b: 4, jcc: JA, taken: true},
		{name: "jbe equal", a: 4, b: 4, jcc: JBE, taken: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := buildProg(t, func(b *Builder) {
				b.Op(MOV, R(EAX), I(tt.a))
				b.Op(CMP, R(EAX), I(tt.b))
				b.Jump(tt.jcc, "taken")
				b.Op(MOV, R(EAX), I(0))
				b.Jump(JMP, "out")
				b.Label("taken")
				b.Op(MOV, R(EAX), I(1))
				b.Label("out")
				b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
				b.Emit(Instr{Op: HLT})
			})
			res := mustRun(t, p, ModeGCC)
			want := int32(0)
			if tt.taken {
				want = 1
			}
			if res.Output[0] != want {
				t.Fatalf("taken = %d, want %d", res.Output[0], want)
			}
		})
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(0))
		b.Op(MOV, R(ECX), I(1))
		b.Label("loop")
		b.Op(CMP, R(ECX), I(10))
		b.Jump(JG, "done")
		b.Op(ADD, R(EAX), R(ECX))
		b.Op(ADD, R(ECX), I(1))
		b.Jump(JMP, "loop")
		b.Label("done")
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	res := mustRun(t, p, ModeGCC)
	if res.Output[0] != 55 {
		t.Fatalf("sum = %d, want 55", res.Output[0])
	}
}

func TestCallRetAndStack(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(20))
		b.Op1(PUSH, R(EAX))
		b.Call("double")
		b.Op(ADD, R(ESP), I(4))
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
		b.Func("double")
		b.Op1(PUSH, R(EBP))
		b.Op(MOV, R(EBP), R(ESP))
		b.Op(MOV, R(EAX), M(MemRef{Seg: x86seg.SS, Base: EBP, HasBase: true, Disp: 8}))
		b.Op(ADD, R(EAX), R(EAX))
		b.Op1(POP, R(EBP))
		b.Emit(Instr{Op: RET})
	})
	res := mustRun(t, p, ModeGCC)
	if res.Output[0] != 40 {
		t.Fatalf("double(20) = %d, want 40", res.Output[0])
	}
}

func TestLEAComputesWithoutAccess(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EBX), I(0x100))
		b.Op(MOV, R(ECX), I(4))
		b.Op(LEA, R(EAX), M(MemRef{Base: EBX, HasBase: true, Index: ECX, HasIndex: true, Scale: 4, Disp: 2}))
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	res := mustRun(t, p, ModeGCC)
	if res.Output[0] != 0x100+16+2 {
		t.Fatalf("lea = %#x, want %#x", res.Output[0], 0x100+16+2)
	}
}

// TestSegmentArrayAccess is the paper's core mechanism end to end: allocate
// a segment over an array, load GS, access through it, and observe that an
// out-of-bounds reference faults with #GP.
func TestSegmentArrayAccess(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		// Program prologue: install the call gate.
		b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
		b.Emit(Instr{Op: INT, Src: I(0x80)})
		// Allocate a segment over a 40-byte array at 0x1000 with the info
		// structure at 0x2000.
		b.Op(MOV, R(EAX), I(GateAllocSegment))
		b.Op(MOV, R(EBX), I(0x1000))
		b.Op(MOV, R(ECX), I(40))
		b.Op(MOV, R(EDX), I(0x2000))
		b.Emit(Instr{Op: LCALL, Src: I(7)})
		// Load GS from info[0] as the paper's code sequence does.
		b.Op(MOV, R(ECX), I(0x2000))
		b.Emit(Instr{Op: MOVSR, Dst: SR(x86seg.GS), Src: ds(ECX, 0), Size: 2})
		// In-bounds store to element 9 through GS (offset = addr - base).
		b.Op(MOV, R(EDX), I(36))
		b.Op(MOV, M(MemRef{Seg: x86seg.GS, Base: EDX, HasBase: true}), I(77))
		// Read it back through DS to confirm the linear address.
		b.Op(MOV, R(EAX), ds(ECX, -0x1000+0x24)) // DS: 0x1024
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		// Out-of-bounds store to element 10: #GP.
		b.Op(MOV, R(EDX), I(40))
		b.Op(MOV, M(MemRef{Seg: x86seg.GS, Base: EDX, HasBase: true}), I(1))
		b.Emit(Instr{Op: HLT})
	})
	m, err := New(p, ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("want fault, got err=%v", err)
	}
	if !f.IsBoundViolation() || f.Kind != FaultSegmentation {
		t.Fatalf("want segmentation bound violation, got %v", f)
	}
	if len(res.Output) != 1 || res.Output[0] != 77 {
		t.Fatalf("in-bounds store failed: output %v", res.Output)
	}
	if res.Stats.HWChecks != 2 {
		t.Fatalf("HWChecks = %d, want 2 (one per GS access)", res.Stats.HWChecks)
	}
	if res.Stats.SegRegLoads != 1 {
		t.Fatalf("SegRegLoads = %d, want 1", res.Stats.SegRegLoads)
	}
}

func TestUnloadedGSFaults(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), M(MemRef{Seg: x86seg.GS, Disp: 0}))
		b.Emit(Instr{Op: HLT})
	})
	_, err := run(t, p, ModeGCC)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultSegmentation {
		t.Fatalf("want segmentation fault through null GS, got %v", err)
	}
}

func TestBoundInstruction(t *testing.T) {
	mk := func(idx int32) *Program {
		return buildProg(t, func(b *Builder) {
			b.Op(MOV, R(EBX), I(0x1000))
			b.Op(MOV, R(EAX), I(idx))
			b.Emit(Instr{Op: BOUND, Dst: R(EAX), Src: ds(EBX, 0)})
			b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
			b.Emit(Instr{Op: HLT})
		})
	}
	bounds := []byte{100, 0, 0, 0, 200, 0, 0, 0} // [100, 200)
	p := mk(150)
	p.Data = bounds
	res := mustRun(t, p, ModeGCC)
	if res.Stats.BoundInstrs != 1 {
		t.Fatalf("BoundInstrs = %d, want 1", res.Stats.BoundInstrs)
	}
	p = mk(200)
	p.Data = bounds
	_, err := run(t, p, ModeGCC)
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultSoftwareCheck {
		t.Fatalf("bound violation: want software check fault, got %v", err)
	}
}

func TestTrapFaults(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Emit(Instr{Op: TRAP, Sym: "array bound violated"})
	})
	_, err := run(t, p, ModeGCC)
	var f *Fault
	if !errors.As(err, &f) || !f.IsBoundViolation() {
		t.Fatalf("want bound violation, got %v", err)
	}
}

func TestExitSyscall(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(SysExit))
		b.Op(MOV, R(EBX), I(3))
		b.Emit(Instr{Op: INT, Src: I(0x80)})
	})
	res := mustRun(t, p, ModeGCC)
	if res.ExitCode != 3 {
		t.Fatalf("ExitCode = %d, want 3", res.ExitCode)
	}
}

func TestStepLimit(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Label("spin")
		b.Jump(JMP, "spin")
	})
	_, err := run(t, p, ModeGCC, WithStepLimit(1000))
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultStepLimit {
		t.Fatalf("want step-limit fault, got %v", err)
	}
}

func TestMallocModes(t *testing.T) {
	alloc := func(mode Mode) (*Result, *Machine) {
		p := buildProg(t, func(b *Builder) {
			b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
			b.Emit(Instr{Op: INT, Src: I(0x80)})
			b.Op(MOV, R(EAX), I(100))
			b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
			b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)}) // print pointer
			b.Emit(Instr{Op: HLT})
		})
		m, err := New(p, mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}

	resGCC, _ := alloc(ModeGCC)
	if uint32(resGCC.Output[0]) != 0x100000 {
		t.Fatalf("gcc malloc = %#x, want heap base", resGCC.Output[0])
	}

	resCash, m := alloc(ModeCash)
	ptr := uint32(resCash.Output[0])
	if ptr != 0x100000+InfoStructSize {
		t.Fatalf("cash malloc = %#x, want heap base + info struct", ptr)
	}
	// The info structure holds selector, lower, upper.
	sel := x86seg.Selector(m.Memory().Read32(ptr - InfoStructSize))
	lower := m.Memory().Read32(ptr - InfoStructSize + 4)
	upper := m.Memory().Read32(ptr - InfoStructSize + 8)
	if lower != ptr || upper != ptr+100 {
		t.Fatalf("info bounds = [%#x,%#x), want [%#x,%#x)", lower, upper, ptr, ptr+100)
	}
	d, err := m.MMU().LDT().Lookup(sel)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base != ptr || d.ByteSize() != 100 {
		t.Fatalf("segment = %v, want base %#x size 100", d, ptr)
	}
	if resCash.LDTStats.KernelCalls != 1 {
		t.Fatalf("KernelCalls = %d, want 1", resCash.LDTStats.KernelCalls)
	}
}

func TestCashMallocLargeArrayEndAligned(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
		b.Emit(Instr{Op: INT, Src: I(0x80)})
		b.Op(MOV, R(EAX), I(1<<20+100)) // > 1 MiB: granularity bit
		b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	m, err := New(p, ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	ptr := uint32(res.Output[0])
	sel := x86seg.Selector(m.Memory().Read32(ptr - InfoStructSize))
	d, err := m.MMU().LDT().Lookup(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Granularity {
		t.Fatal("large array segment must be page-granular")
	}
	// §3.5: the array end coincides with the segment end.
	arrayEnd := ptr + (1<<20 + 100)
	segEnd := d.Base + d.ByteSize()
	if arrayEnd != segEnd {
		t.Fatalf("array end %#x != segment end %#x", arrayEnd, segEnd)
	}
}

func TestCashFreeReleasesSegment(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
		b.Emit(Instr{Op: INT, Src: I(0x80)})
		b.Op(MOV, R(EAX), I(64))
		b.Emit(Instr{Op: HCALL, Src: I(HostMalloc)})
		b.Emit(Instr{Op: HCALL, Src: I(HostFree)}) // ptr still in EAX
		b.Emit(Instr{Op: HLT})
	})
	m, err := New(p, ModeCash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.LDTManager().Live(); got != 0 {
		t.Fatalf("live segments after free = %d, want 0", got)
	}
}

func TestCycleAccounting(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(1))  // 1 cycle
		b.Op(ADD, R(EAX), I(2))  // 1 cycle
		b.Op(IMUL, R(EAX), I(3)) // 1 cycle (pipelined throughput)
		b.Op(IDIV, R(EAX), I(3)) // 20 cycles
		b.Emit(Instr{Op: HLT})   // 0
	})
	res := mustRun(t, p, ModeGCC)
	if res.Cycles != 23 {
		t.Fatalf("Cycles = %d, want 23", res.Cycles)
	}
	if res.Stats.Instructions != 5 {
		t.Fatalf("Instructions = %d, want 5", res.Stats.Instructions)
	}
}

func TestSegRegLoadCost(t *testing.T) {
	// A MOVSR costs 4 cycles (§3.3).
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(int32(FlatDataSelector)))
		b.Emit(Instr{Op: MOVSR, Dst: SR(x86seg.ES), Src: R(EAX), Size: 2})
		b.Emit(Instr{Op: HLT})
	})
	res := mustRun(t, p, ModeGCC)
	if res.Cycles != 1+cycleSegLoad {
		t.Fatalf("Cycles = %d, want %d", res.Cycles, 1+cycleSegLoad)
	}
}

func TestCallGateVsSyscallCost(t *testing.T) {
	// With the gate installed an allocation costs 253 cycles; without the
	// Cash kernel patch (WithoutCallGate) it costs 781 (§3.6).
	prog := func() *Program {
		return buildProg(t, func(b *Builder) {
			b.Op(MOV, R(EAX), I(SysSetLDTCallGate))
			b.Emit(Instr{Op: INT, Src: I(0x80)})
			b.Op(MOV, R(EAX), I(GateAllocSegment))
			b.Op(MOV, R(EBX), I(0x1000))
			b.Op(MOV, R(ECX), I(64))
			b.Op(MOV, R(EDX), I(0))
			b.Emit(Instr{Op: LCALL, Src: I(7)})
			b.Emit(Instr{Op: HLT})
		})
	}
	fast := mustRun(t, prog(), ModeCash)
	slow := mustRun(t, prog(), ModeCash, WithoutCallGate())
	// Both runs execute identical instructions; only the kernel-entry
	// charges differ. Fast pays setup (543) + gate (253); slow pays the
	// stock syscall (781) with no setup.
	common := fast.Cycles - ldt.CostProgramSetup - ldt.CostCallGate
	if got := slow.Cycles - common; got != ldt.CostModifyLDT {
		t.Fatalf("syscall-path alloc cost = %d, want %d", got, uint64(ldt.CostModifyLDT))
	}
	if got := fast.Cycles - common; got != ldt.CostProgramSetup+ldt.CostCallGate {
		t.Fatalf("gate-path cost = %d, want %d", got,
			uint64(ldt.CostProgramSetup+ldt.CostCallGate))
	}
}

func TestNoteSWCheckCounted(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(5))
		i := b.Op(CMP, R(EAX), I(10))
		b.Instr(i).Note = NoteSWCheck
		b.Jump(JAE, "fail")
		b.Emit(Instr{Op: HLT})
		b.Label("fail")
		b.Emit(Instr{Op: TRAP, Sym: "check failed"})
	})
	res := mustRun(t, p, ModeGCC)
	if res.Stats.SWChecks != 1 {
		t.Fatalf("SWChecks = %d, want 1", res.Stats.SWChecks)
	}
}

func TestPagingBehindSegmentation(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EBX), I(0x1000))
		b.Op(MOV, R(EAX), ds(EBX, 0))
		b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
		b.Emit(Instr{Op: HLT})
	})
	p.Data = []byte{9, 0, 0, 0}
	var traced []TraceEntry
	res := mustRun(t, p, ModeGCC,
		WithPaging(1<<24),
		WithTrace(func(e TraceEntry) { traced = append(traced, e) }))
	if res.Output[0] != 9 {
		t.Fatalf("output = %v, want [9]", res.Output)
	}
	if res.Stats.PageWalks == 0 {
		t.Fatal("page walks must be counted")
	}
	if len(traced) == 0 {
		t.Fatal("trace hook must fire")
	}
	e := traced[0]
	if e.Offset != 0x1000 || e.Linear != 0x1000 || e.Physical != 0x1000 {
		t.Fatalf("trace = %+v, want identity pipeline for flat DS", e)
	}
}

func TestPageFaultSurfaces(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EBX), I(1<<25)) // beyond the identity-mapped range
		b.Op(MOV, R(EAX), ds(EBX, 0))
		b.Emit(Instr{Op: HLT})
	})
	_, err := run(t, p, ModeGCC, WithPaging(1<<24))
	var f *Fault
	if !errors.As(err, &f) || f.Kind != FaultPage {
		t.Fatalf("want page fault, got %v", err)
	}
}

func TestDisassembleListing(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(1))
		b.Emit(Instr{Op: HLT})
	})
	listing := p.Disassemble()
	if listing == "" {
		t.Fatal("empty listing")
	}
}

func TestCodeSizePositive(t *testing.T) {
	p := buildProg(t, func(b *Builder) {
		b.Op(MOV, R(EAX), I(1))
		b.Op(MOV, R(EAX), M(MemRef{Seg: x86seg.GS, Base: EBX, HasBase: true, Disp: 1000}))
		b.Emit(Instr{Op: HLT})
	})
	if p.CodeSize() <= 0 {
		t.Fatal("code size must be positive")
	}
	// The GS-override access must encode larger than a plain register mov.
	if p.Instrs[1].EncodedSize() <= p.Instrs[0].EncodedSize() {
		t.Fatal("segment override + disp32 must cost encoding bytes")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jump(JMP, "nowhere")
	if _, err := b.Finish("bad"); err == nil {
		t.Fatal("undefined label must be an error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Emit(Instr{Op: NOP})
	b.Label("x")
	b.Emit(Instr{Op: HLT})
	if _, err := b.Finish("bad"); err == nil {
		t.Fatal("duplicate label must be an error")
	}
}

// TestWithPartsResetEquivalence pins the machine-pool contract at the
// vm layer: running on recycled Parts is indistinguishable from running
// on a fresh machine, and no stale memory from the previous tenant is
// visible — reset-on-reuse must restore the exact fresh-build state.
func TestWithPartsResetEquivalence(t *testing.T) {
	mkWriter := func() *Program {
		p := buildProg(t, func(b *Builder) {
			b.Op(MOV, R(EBX), I(0x1000))
			b.Op(MOV, ds(EBX, 0), I(0x55555555)) // dirty data[0]
			b.Op(MOV, ds(EBX, 8), I(-1))         // dirty data[2]
			b.Op(MOV, R(EAX), ds(EBX, 0))
			b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
			b.Emit(Instr{Op: HLT})
		})
		p.Data = []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		return p
	}
	mkReader := func() *Program {
		p := buildProg(t, func(b *Builder) {
			b.Op(MOV, R(EBX), I(0x1000))
			b.Op(MOV, R(EAX), ds(EBX, 0)) // expects its own image, not 0x55555555
			b.Op(ADD, R(EAX), ds(EBX, 8)) // expects 0, not -1
			b.Emit(Instr{Op: HCALL, Src: I(HostPrintInt)})
			b.Emit(Instr{Op: HLT})
		})
		p.Data = []byte{7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
		return p
	}
	for _, mode := range []Mode{ModeGCC, ModeCash} {
		writer, err := New(mkWriter(), mode)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := writer.Run(); err != nil {
			t.Fatalf("[%v] writer: %v", mode, err)
		}
		fresh := mustRun(t, mkReader(), mode)
		recycledMachine, err := New(mkReader(), mode, WithParts(writer.Parts()))
		if err != nil {
			t.Fatal(err)
		}
		recycled, err := recycledMachine.Run()
		if err != nil {
			t.Fatalf("[%v] recycled: %v", mode, err)
		}
		if recycled.Output[0] != 7 {
			t.Fatalf("[%v] recycled machine saw stale memory: output %v", mode, recycled.Output)
		}
		if !reflect.DeepEqual(fresh, recycled) {
			t.Fatalf("[%v] recycled run differs from fresh run:\n%+v\nvs\n%+v", mode, fresh, recycled)
		}
	}
}
