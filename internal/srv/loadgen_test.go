package srv

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cash/internal/obs"
)

func TestLoadMixDeterministic(t *testing.T) {
	seen := make(map[int]bool)
	for k := uint64(0); k < 64; k++ {
		p := loadMix(GoldenSeed, k)
		if p != loadMix(GoldenSeed, k) {
			t.Fatalf("loadMix(%d, %d) is not a pure function", GoldenSeed, k)
		}
		if p < 0 || p >= len(loadPrograms) {
			t.Fatalf("loadMix(%d, %d) = %d out of range", GoldenSeed, k, p)
		}
		seen[p] = true
	}
	if len(seen) != len(loadPrograms) {
		t.Fatalf("mix of 64 requests covered %d of %d programs", len(seen), len(loadPrograms))
	}
}

func TestLoadReportFormat(t *testing.T) {
	h := obs.NewCycleHistogram()
	h.Observe(100)
	h.Observe(300)
	r := &LoadReport{
		Clients: 2, PerClient: 1, Seed: 9, Mode: "cash",
		OK: 2, Latency: h.Snapshot(),
	}
	want := "cashload seed=9 clients=2 per-client=1 mode=cash\n" +
		"requests 2: ok 2, shed 0, quota 0, deadline 0, shutdown 0, transport 0, failed 0\n" +
		"availability 100.00%\n" +
		"sim latency cycles: p50 100, p90 300, p95 300, p99 300, min 100, max 300, mean 200\n"
	if got := r.Format(); got != want {
		t.Fatalf("report format drifted:\n got: %q\nwant: %q", got, want)
	}
}

// TestRunLoadGolden is the committed-golden half of the acceptance bar:
// the seeded 1000-client run's report must match
// testdata/golden_cashload_s1.txt byte for byte. The CI soak lane pins
// the same file through the cashload binary.
func TestRunLoadGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden load run skipped in -short mode")
	}
	checkGoroutines(t)
	_, l := startServer(t, Config{Engine: testEngine(), Workers: 16, QueueDepth: 4096})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadConfig{
		Dial:      l.Dial,
		Clients:   GoldenClients,
		PerClient: GoldenPerClient,
		Rate:      GoldenRate,
		Seed:      GoldenSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Format()
	path := filepath.Join("testdata", "golden_cashload_s1.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing committed golden %s: %v\ngot:\n%s", path, err, got)
	}
	if got != string(want) {
		t.Fatalf("cashload report drifted from %s:\n--- got\n%s--- want\n%s", path, got, want)
	}
}
