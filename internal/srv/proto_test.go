package srv

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	h := header{Version: ProtoVersion, Type: TRun, ID: 777, DeadlineMillis: 1500}
	body := RunRequest{Source: "void main() {}", Mode: "cash",
		Options: WireOptions{SegRegs: 4, Passes: []string{"rce", "hoist"}, Tier2: true}}
	if err := writeFrame(&buf, h, body); err != nil {
		t.Fatal(err)
	}
	got, raw, err := readFrame(&buf, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header roundtrip: %+v != %+v", got, h)
	}
	var back RunRequest
	if err := decode(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Source != body.Source || back.Mode != body.Mode || !back.Options.Tier2 ||
		back.Options.SegRegs != 4 || len(back.Options.Passes) != 2 {
		t.Fatalf("body roundtrip: %+v", back)
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	big := RunRequest{Source: strings.Repeat("x", 4096)}
	if err := writeFrame(&buf, header{Version: ProtoVersion, Type: TRun, ID: 1}, big); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, 256); err == nil {
		t.Fatal("oversized frame must be rejected")
	}
}

func TestFrameShorterThanHeaderRejected(t *testing.T) {
	r := bytes.NewReader([]byte{0, 0, 0, 2, 1, 1})
	if _, _, err := readFrame(r, DefaultMaxFrameBytes); err == nil {
		t.Fatal("undersized frame must be rejected")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{{"gcc", true}, {"bcc", true}, {"cash", true}, {"", true}, {"llvm", false}} {
		if _, err := ParseMode(tc.in); (err == nil) != tc.ok {
			t.Fatalf("ParseMode(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
	}
}

func TestBucketQuota(t *testing.T) {
	b := newBucket(2, 3) // 2 tokens/s, burst 3
	now := ref()
	for i := 0; i < 3; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, retry := b.take(now)
	if ok {
		t.Fatal("4th immediate request must be over quota")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry hint %v outside (0, 1s] at 2 tokens/s", retry)
	}
	// Half a second refills one token at 2/s.
	if ok, _ := b.take(now.Add(600 * time.Millisecond)); !ok {
		t.Fatal("token did not refill")
	}
	if b != nil {
		// nil bucket admits everything
		var nb *bucket
		if ok, _ := nb.take(now); !ok {
			t.Fatal("nil bucket must admit")
		}
	}
}

func ref() time.Time { return time.Unix(1_000_000, 0) }
