package srv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cash/internal/obs"
)

// The load mix: four small deterministic mini-C programs. Each has a
// fixed simulated cost, so the latency distribution of a seeded run is
// a pure function of the request mix — the committed cashload golden
// depends on nothing host-side.
var loadPrograms = []struct {
	name   string
	source string
}{
	{"sum64", `
int a[64];
void main() {
	for (int i = 0; i < 64; i++) a[i] = i * 3;
	int s = 0;
	for (int i = 0; i < 64; i++) s += a[i];
	printi(s);
}`},
	{"stride128", `
int a[128];
void main() {
	for (int i = 0; i < 128; i++) a[i] = i;
	int s = 0;
	for (int st = 1; st <= 4; st++) {
		for (int i = 0; i < 128; i += st) s += a[i];
	}
	printi(s);
}`},
	{"heap-churn", `
int churn(int n) {
	int *buf = malloc(n * 4);
	for (int i = 0; i < n; i++) buf[i] = i * 7;
	int s = 0;
	for (int i = 0; i < n; i++) s += buf[i];
	free(buf);
	return s;
}
void main() {
	int t = 0;
	for (int r = 0; r < 12; r++) t += churn(16 + r);
	printi(t);
}`},
	{"window96", `
int a[96];
int b[96];
void main() {
	for (int i = 0; i < 96; i++) a[i] = (i * 13) % 97;
	for (int i = 2; i < 94; i++) {
		b[i] = a[i-2] + a[i-1] + a[i] + a[i+1] + a[i+2];
	}
	int s = 0;
	for (int i = 0; i < 96; i++) s += b[i];
	printi(s);
}`},
}

// The golden run's parameters: cmd/cashload -pipe defaults and the
// in-package golden test both use these, so the CI soak lane and the
// test suite pin the same committed bytes
// (internal/srv/testdata/golden_cashload_s1.txt).
const (
	GoldenClients   = 1000
	GoldenPerClient = 2
	GoldenRate      = 50000
	GoldenSeed      = 1
)

// LoadConfig parameterises one open-loop load run.
type LoadConfig struct {
	// Dial opens one connection to the server under test (e.g.
	// PipeListener.Dial, or a net.Dial closure).
	Dial func() (net.Conn, error)
	// Clients is the number of concurrent client connections.
	Clients int
	// PerClient is how many requests each client issues.
	PerClient int
	// Rate is the aggregate arrival rate in requests per second. The
	// schedule is open-loop: request k of the global sequence is issued
	// at start + k/Rate whether or not earlier requests have completed.
	// <= 0 issues everything immediately.
	Rate float64
	// Seed keys the request mix (which program each request runs).
	Seed uint64
	// Mode is the wire compiler mode for every request ("" = cash).
	Mode string
	// Options rides on every request.
	Options WireOptions
	// Timeout is the per-request deadline; 0 means none.
	Timeout time.Duration
	// Retries is how many times a request is retried after a transport
	// failure or typed shed, each attempt on a fresh connection (for
	// chaos runs). 0 means no retries.
	Retries int
}

// LoadReport aggregates one load run. All quantities are deterministic
// for a seeded run against a deterministic server: counts are pure
// functions of the schedule and the latency histogram holds simulated
// cycles, so Format is byte-stable across runs at any host speed.
type LoadReport struct {
	Clients   int
	PerClient int
	Seed      uint64
	Mode      string

	OK        int64 // successful responses (including detected violations)
	Shed      int64 // typed over-capacity responses
	Quota     int64 // typed quota responses
	Deadline  int64 // typed deadline responses or client-side deadline
	Shutdown  int64 // typed shutting-down/canceled responses
	Transport int64 // connection-level failures after retries
	Failed    int64 // other server errors

	Latency obs.HistogramSnapshot // simulated cycles of OK responses
}

// Total is the number of requests issued.
func (r *LoadReport) Total() int64 {
	return r.OK + r.Shed + r.Quota + r.Deadline + r.Shutdown + r.Transport + r.Failed
}

// Availability is the fraction of requests answered successfully, in
// percent.
func (r *LoadReport) Availability() float64 {
	total := r.Total()
	if total == 0 {
		return 0
	}
	return float64(r.OK) / float64(total) * 100
}

// Format renders the report as deterministic text: only simulated
// quantities and schedule-determined counts, never host time.
func (r *LoadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cashload seed=%d clients=%d per-client=%d mode=%s\n",
		r.Seed, r.Clients, r.PerClient, r.Mode)
	fmt.Fprintf(&b, "requests %d: ok %d, shed %d, quota %d, deadline %d, shutdown %d, transport %d, failed %d\n",
		r.Total(), r.OK, r.Shed, r.Quota, r.Deadline, r.Shutdown, r.Transport, r.Failed)
	fmt.Fprintf(&b, "availability %.2f%%\n", r.Availability())
	h := r.Latency
	var mean uint64
	if h.Count > 0 {
		mean = h.Sum / h.Count
	}
	fmt.Fprintf(&b, "sim latency cycles: p50 %d, p90 %d, p95 %d, p99 %d, min %d, max %d, mean %d\n",
		h.Quantile(50), h.Quantile(90), h.Quantile(95), h.Quantile(99), h.Min, h.Max, mean)
	return b.String()
}

// loadMix picks the program for global request k — splitmix-style, so
// the mix is a pure function of (seed, k).
func loadMix(seed, k uint64) int {
	z := seed + 0x9e3779b97f4a7c15*(k+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(len(loadPrograms)))
}

// RunLoad drives an open-loop load run and aggregates the results.
// Each client owns one connection; its requests are issued by
// independent goroutines at their scheduled arrival times (pipelined on
// the shared connection), so a stalled response never delays a later
// arrival — the defining property of an open-loop generator.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Dial == nil {
		return nil, errors.New("srv: LoadConfig.Dial is required")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.PerClient <= 0 {
		cfg.PerClient = 1
	}
	mode := cfg.Mode
	if mode == "" {
		mode = "cash"
	}
	rep := &LoadReport{Clients: cfg.Clients, PerClient: cfg.PerClient, Seed: cfg.Seed, Mode: mode}
	hist := obs.NewCycleHistogram()
	var ok, shed, quota, deadline, shutdown, transport, failed atomic.Int64

	start := time.Now()
	arrival := func(k int) time.Time {
		if cfg.Rate <= 0 {
			return start
		}
		return start.Add(time.Duration(float64(k) / cfg.Rate * float64(time.Second)))
	}

	dialRetry := func() (*Client, error) {
		var lastErr error
		for a := 0; a <= cfg.Retries; a++ {
			nc, err := cfg.Dial()
			if err != nil {
				lastErr = err
				continue
			}
			return NewClient(nc), nil
		}
		return nil, lastErr
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shared, dialErr := dialRetry()
			if shared != nil {
				defer shared.Close()
			}
			var reqWG sync.WaitGroup
			for j := 0; j < cfg.PerClient; j++ {
				reqWG.Add(1)
				go func(j int) {
					defer reqWG.Done()
					k := j*cfg.Clients + i // interleave clients in the arrival order
					if d := time.Until(arrival(k)); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							transport.Add(1)
							return
						}
					}
					if shared == nil {
						// The connection never came up (e.g. accept chaos
						// beyond the retry budget).
						_ = dialErr
						transport.Add(1)
						return
					}
					req := RunRequest{
						Source:  loadPrograms[loadMix(cfg.Seed, uint64(k))].source,
						Mode:    mode,
						Options: cfg.Options,
					}
					c := shared
					for attempt := 0; ; attempt++ {
						rctx := ctx
						var cancel context.CancelFunc
						if cfg.Timeout > 0 {
							rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
						}
						res, err := c.Run(rctx, req)
						if cancel != nil {
							cancel()
						}
						if err == nil {
							ok.Add(1)
							hist.Observe(res.Cycles)
							return
						}
						var se *ServerError
						isServer := errors.As(err, &se)
						if attempt < cfg.Retries {
							if IsShed(err) {
								// Honor the server's retry-after hint.
								select {
								case <-time.After(se.RetryAfter):
								case <-ctx.Done():
								}
								continue
							}
							if !isServer {
								// Transport failure: this connection is
								// dead — retry on a fresh one.
								if fresh, derr := dialRetry(); derr == nil {
									c = fresh
									defer fresh.Close()
									continue
								}
							}
						}
						switch {
						case isServer && se.Code == CodeOverCapacity:
							shed.Add(1)
						case isServer && se.Code == CodeQuota:
							quota.Add(1)
						case isServer && se.Code == CodeDeadline:
							deadline.Add(1)
						case isServer && (se.Code == CodeShutdown || se.Code == CodeCanceled):
							shutdown.Add(1)
						case isServer:
							failed.Add(1)
						case errors.Is(err, context.DeadlineExceeded):
							deadline.Add(1)
						default:
							transport.Add(1)
						}
						return
					}
				}(j)
			}
			reqWG.Wait()
		}(i)
	}
	wg.Wait()

	rep.OK = ok.Load()
	rep.Shed = shed.Load()
	rep.Quota = quota.Load()
	rep.Deadline = deadline.Load()
	rep.Shutdown = shutdown.Load()
	rep.Transport = transport.Load()
	rep.Failed = failed.Load()
	rep.Latency = hist.Snapshot()
	return rep, nil
}
