package srv

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cash/internal/chaos"
	"cash/internal/serve"
)

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

const srcQuick = `
int a[16];
void main() {
	int s = 0;
	for (int i = 0; i < 16; i++) a[i] = i * 5;
	for (int i = 0; i < 16; i++) s += a[i];
	printi(s);
}`

// srcCompare has enough loop reuse for cash's hoisted segment loads to
// amortize (tiny programs pay more for cash than for bcc).
const srcCompare = `
int a[16];
void main() {
	int s = 0;
	for (int r = 0; r < 20; r++) {
		for (int i = 0; i < 16; i++) a[i] = i * r;
		for (int i = 0; i < 16; i++) s += a[i];
	}
	printi(s);
}`

const srcOverflow = `
int buf[8];
void main() {
	for (int i = 0; i <= 8; i++) {
		buf[i] = i;
	}
}`

// slowSource returns a distinct long-running program per tag so each
// test controls its own (uncached) in-flight timing.
func slowSource(tag int) string {
	return fmt.Sprintf(`
void main() {
	int s = 0;
	for (int i = 0; i < 3000000; i++) s += i;
	printi(s + %d);
}`, tag)
}

// bigStep lifts the step limit so slow programs hit the deadline or the
// drain cancel, never the runaway fault.
var bigStep = WireOptions{StepLimit: 4_000_000_000}

func testEngine() *serve.Engine {
	return serve.NewEngine(serve.EngineConfig{MaxInFlight: 32, Parallelism: 4})
}

// startServer runs a Server over a PipeListener and tears both down at
// test end, failing the test if Serve does not return.
func startServer(t *testing.T, cfg Config) (*Server, *PipeListener) {
	t.Helper()
	if cfg.Engine == nil {
		cfg.Engine = testEngine()
	}
	s := New(cfg)
	l := NewPipeListener()
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v, want nil after shutdown", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("Serve did not return after shutdown")
		}
	})
	return s, l
}

func dialClient(t *testing.T, l *PipeListener) *Client {
	t.Helper()
	nc, err := l.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(nc)
	t.Cleanup(func() { c.Close() })
	return c
}

// checkGoroutines asserts (as the last cleanup) that the test returned
// the goroutine count to its starting level — no leaked conns, workers,
// or waiters. Register before startServer so it runs after teardown.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+3 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d at start, %d after teardown\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

func ctxT(t *testing.T, d time.Duration) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// ---------------------------------------------------------------------
// Roundtrips
// ---------------------------------------------------------------------

func TestServerRoundtrips(t *testing.T) {
	checkGoroutines(t)
	_, l := startServer(t, Config{})
	c := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)

	t.Run("build", func(t *testing.T) {
		resp, err := c.Build(ctx, BuildRequest{Source: srcQuick, Mode: "cash"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CodeSize <= 0 || resp.Mode != "cash" {
			t.Fatalf("build response %+v", resp)
		}
	})
	t.Run("run", func(t *testing.T) {
		resp, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cycles == 0 || resp.Violation != "" {
			t.Fatalf("run response %+v", resp)
		}
		if len(resp.Output) != 1 || resp.Output[0] != 5*(15*16/2) {
			t.Fatalf("output %v, want [600]", resp.Output)
		}
	})
	t.Run("run_violation", func(t *testing.T) {
		resp, err := c.Run(ctx, RunRequest{Source: srcOverflow, Mode: "cash"})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp.Violation, "#GP") {
			t.Fatalf("violation %q must be a #GP", resp.Violation)
		}
	})
	t.Run("compare", func(t *testing.T) {
		resp, err := c.Compare(ctx, CompareRequest{Name: "wire-demo", Source: srcCompare})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cash.Cycles <= resp.GCC.Cycles {
			t.Fatalf("cash %d cycles must cost more than gcc %d", resp.Cash.Cycles, resp.GCC.Cycles)
		}
		if resp.CashOverheadPct >= resp.BCCOverheadPct {
			t.Fatalf("cash overhead %.1f%% must beat bcc %.1f%%", resp.CashOverheadPct, resp.BCCOverheadPct)
		}
	})
	t.Run("bad_mode", func(t *testing.T) {
		_, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "llvm"})
		var se *ServerError
		if !errors.As(err, &se) || se.Code != CodeBadRequest {
			t.Fatalf("bad mode: err=%v, want %s", err, CodeBadRequest)
		}
	})
	t.Run("bad_source", func(t *testing.T) {
		_, err := c.Run(ctx, RunRequest{Source: "void main( {", Mode: "cash"})
		var se *ServerError
		if !errors.As(err, &se) || se.Code != CodeBadRequest {
			t.Fatalf("bad source: err=%v, want %s", err, CodeBadRequest)
		}
	})
	t.Run("bad_table", func(t *testing.T) {
		_, err := c.Table(ctx, TableRequest{ID: "table99"})
		var se *ServerError
		if !errors.As(err, &se) || se.Code != CodeBadRequest {
			t.Fatalf("bad table: err=%v, want %s", err, CodeBadRequest)
		}
	})
	// The connection survives every typed rejection above.
	t.Run("conn_still_alive", func(t *testing.T) {
		if _, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServerBadVersionClosesConn(t *testing.T) {
	checkGoroutines(t)
	_, l := startServer(t, Config{})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, header{Version: 9, Type: TRun, ID: 1}, RunRequest{Source: srcQuick}); err != nil {
		t.Fatal(err)
	}
	h, body, err := readFrame(nc, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != TError {
		t.Fatalf("response type %d, want TError", h.Type)
	}
	var e ErrorResponse
	if err := decode(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeBadVersion {
		t.Fatalf("code %q, want %q", e.Code, CodeBadVersion)
	}
	// The server hangs up after a version mismatch.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := readFrame(nc, DefaultMaxFrameBytes); err == nil {
		t.Fatal("connection must be closed after a version mismatch")
	}
}

func TestServerUnknownTypeIsTyped(t *testing.T) {
	checkGoroutines(t)
	_, l := startServer(t, Config{})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, header{Version: ProtoVersion, Type: 99, ID: 7}, struct{}{}); err != nil {
		t.Fatal(err)
	}
	h, body, err := readFrame(nc, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if err := decode(body, &e); err != nil {
		t.Fatal(err)
	}
	if h.ID != 7 || h.Type != TError || e.Code != CodeBadRequest {
		t.Fatalf("unknown type: id=%d type=%d code=%q", h.ID, h.Type, e.Code)
	}
}

// ---------------------------------------------------------------------
// Overload, quota, deadline
// ---------------------------------------------------------------------

func TestServerShedsOverCapacity(t *testing.T) {
	checkGoroutines(t)
	started := make(chan struct{})
	release := make(chan struct{})
	var hooked atomic.Int32
	_, l := startServer(t, Config{
		Workers:    1,
		QueueDepth: -1, // nothing queues beyond the single worker's hands
		execHook: func(*task) {
			if hooked.Add(1) == 1 {
				close(started)
				<-release
			}
		},
	})
	c := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)

	occupied := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
		occupied <- err
	}()
	<-started // the only worker is now blocked in execHook

	const burst = 10
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var se *ServerError
		if !errors.As(err, &se) || se.Code != CodeOverCapacity {
			t.Fatalf("burst request %d: err=%v, want typed %s", i, err, CodeOverCapacity)
		}
		if se.RetryAfter <= 0 {
			t.Fatalf("burst request %d: shed without a retry-after hint", i)
		}
		if !IsShed(err) {
			t.Fatalf("burst request %d: IsShed must report true", i)
		}
	}
	close(release)
	if err := <-occupied; err != nil {
		t.Fatalf("occupying request failed: %v", err)
	}
	// Capacity is back: the next request goes through.
	if _, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatalf("post-burst request failed: %v", err)
	}
}

func TestServerPerClientQuota(t *testing.T) {
	checkGoroutines(t)
	// A controllable clock that stands still unless advanced. It must
	// track real time loosely (write deadlines are computed from it), so
	// it starts at time.Now and only ever moves forward.
	var clockMu sync.Mutex
	clock := time.Now()
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}
	_, l := startServer(t, Config{
		QuotaRate:  2,
		QuotaBurst: 3,
		now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return clock
		},
	})
	c := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)
	for i := 0; i < 3; i++ {
		if _, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	_, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeQuota {
		t.Fatalf("4th request: err=%v, want typed %s", err, CodeQuota)
	}
	if se.RetryAfter <= 0 {
		t.Fatal("quota response must carry a retry-after hint")
	}
	// Rate 2/s and an empty bucket under a frozen clock: the next token
	// is exactly 500ms away.
	if se.RetryAfter != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want exactly 500ms", se.RetryAfter)
	}
	// A fractional wait must round UP: 100µs after the miss the next
	// token is 499.9ms away, and a truncated 499ms hint would send the
	// client back while the bucket is still empty.
	advance(100 * time.Microsecond)
	_, err = c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
	if !errors.As(err, &se) || se.Code != CodeQuota {
		t.Fatalf("fractional-wait request: err=%v, want typed %s", err, CodeQuota)
	}
	if se.RetryAfter != 500*time.Millisecond {
		t.Fatalf("fractional retry-after = %v, want 500ms (rounded up from 499.9ms)", se.RetryAfter)
	}
	// A different connection has its own bucket.
	c2 := dialClient(t, l)
	if _, err := c2.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatalf("fresh connection must have a fresh bucket: %v", err)
	}
	// Advancing the clock refills this connection's bucket.
	advance(time.Second)
	if _, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatalf("refilled request: %v", err)
	}
}

func TestServerDeadlinePropagatesToCancellation(t *testing.T) {
	checkGoroutines(t)
	_, l := startServer(t, Config{})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Raw frame with a wire deadline but no client-side one, so the
	// typed response is observable deterministically.
	req := RunRequest{Source: slowSource(1), Mode: "cash", Options: bigStep}
	if err := writeFrame(nc, header{Version: ProtoVersion, Type: TRun, ID: 1, DeadlineMillis: 40}, req); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	h, body, err := readFrame(nc, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if err := decode(body, &e); err != nil {
		t.Fatal(err)
	}
	if h.Type != TError || e.Code != CodeDeadline {
		t.Fatalf("deadline response: type=%d code=%q msg=%q, want %s", h.Type, e.Code, e.Message, CodeDeadline)
	}
	// The connection survives a deadline miss.
	if err := writeFrame(nc, header{Version: ProtoVersion, Type: TRun, ID: 2}, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatal(err)
	}
	h, _, err = readFrame(nc, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID != 2 || h.Type != TResult {
		t.Fatalf("follow-up after deadline: id=%d type=%d", h.ID, h.Type)
	}
}

// ---------------------------------------------------------------------
// Misbehaving clients
// ---------------------------------------------------------------------

func TestServerDisconnectsSlowClient(t *testing.T) {
	checkGoroutines(t)
	_, l := startServer(t, Config{WriteTimeout: 50 * time.Millisecond})
	nc, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := writeFrame(nc, header{Version: ProtoVersion, Type: TRun, ID: 1}, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatal(err)
	}
	// Never drain the response: net.Pipe has no buffer, so the server's
	// frame write blocks until its 50ms deadline fires and the conn is
	// dropped. Sleep between single-byte probes so the response can
	// never trickle out fast enough to beat the write deadline.
	buf := make([]byte, 1)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
		nc.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		if _, err := nc.Read(buf); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue // still connected
			}
			return // closed by the server: the slow client was cut off
		}
	}
	t.Fatal("server never disconnected the unresponsive client")
}

func TestServerPanicIsolation(t *testing.T) {
	checkGoroutines(t)
	var calls atomic.Int32
	_, l := startServer(t, Config{
		Workers: 2,
		execHook: func(t *task) {
			if calls.Add(1) == 1 {
				panic("injected request panic")
			}
		},
	})
	c := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)
	_, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeInternal {
		t.Fatalf("panicked request: err=%v, want typed %s", err, CodeInternal)
	}
	if !strings.Contains(se.Message, "injected request panic") {
		t.Fatalf("panic message lost: %q", se.Message)
	}
	// Worker and connection both survived.
	if _, err := c.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"}); err != nil {
		t.Fatalf("request after panic: %v", err)
	}
}

// ---------------------------------------------------------------------
// Drain and shutdown
// ---------------------------------------------------------------------

func TestServerGracefulDrain(t *testing.T) {
	checkGoroutines(t)
	started := make(chan struct{})
	var once sync.Once
	s, l := startServer(t, Config{
		execHook: func(t *task) { once.Do(func() { close(started) }) },
	})
	cA := dialClient(t, l)
	cB := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)

	inFlight := make(chan error, 1)
	var resp *RunResponse
	go func() {
		var err error
		resp, err = cA.Run(ctx, RunRequest{Source: slowSource(2), Mode: "cash", Options: bigStep})
		inFlight <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(sctx)
	}()
	// Wait until the drain state is visible, then probe with a new
	// request on the pre-existing second connection.
	for !s.stopping() {
		time.Sleep(time.Millisecond)
	}
	_, err := cB.Run(ctx, RunRequest{Source: srcQuick, Mode: "cash"})
	var se *ServerError
	if !errors.As(err, &se) || se.Code != CodeShutdown {
		t.Fatalf("request during drain: err=%v, want typed %s", err, CodeShutdown)
	}

	// The in-flight request finishes and its response is flushed.
	if err := <-inFlight; err != nil {
		t.Fatalf("in-flight request failed during graceful drain: %v", err)
	}
	if resp == nil || resp.Cycles == 0 {
		t.Fatalf("in-flight response lost: %+v", resp)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("graceful Shutdown returned %v", err)
	}
	// New dials fail: the listener is gone.
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
}

func TestServerHardCancelOnDrainBudget(t *testing.T) {
	checkGoroutines(t)
	started := make(chan struct{})
	var once sync.Once
	s, l := startServer(t, Config{
		execHook: func(t *task) { once.Do(func() { close(started) }) },
	})
	c := dialClient(t, l)
	ctx := ctxT(t, 60*time.Second)

	inFlight := make(chan error, 1)
	go func() {
		// Big enough to outlive any plausible drain budget.
		_, err := c.Run(ctx, RunRequest{Source: slowSource(3), Mode: "cash",
			Options: WireOptions{StepLimit: 4_000_000_000}})
		inFlight <- err
	}()
	<-started

	sctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	begin := time.Now()
	err := s.Shutdown(sctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hard-canceled Shutdown returned %v, want deadline exceeded", err)
	}
	if took := time.Since(begin); took > 20*time.Second {
		t.Fatalf("hard cancel took %v; the drain budget was not enforced", took)
	}
	// The in-flight client observed the cancellation — either a typed
	// shutdown/cancel response or a severed connection, never a hang.
	select {
	case err := <-inFlight:
		var se *ServerError
		if errors.As(err, &se) {
			if se.Code != CodeShutdown && se.Code != CodeCanceled {
				t.Fatalf("in-flight request: typed %q, want shutdown/canceled", se.Code)
			}
		} else if err == nil {
			t.Fatal("in-flight request claims success after hard cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request hung through a hard cancel")
	}
}

func TestServerServeAfterCloseFails(t *testing.T) {
	s := New(Config{Engine: testEngine()})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(NewPipeListener()); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve on closed server: %v, want ErrServerClosed", err)
	}
}

// ---------------------------------------------------------------------
// Wire chaos
// ---------------------------------------------------------------------

func TestServerChaosAcceptFail(t *testing.T) {
	checkGoroutines(t)
	before := mChaosAcceptFail.Value()
	_, l := startServer(t, Config{
		Chaos: chaos.NewPlan(chaos.Config{Seed: 3, Rate: 0.4, Sites: []chaos.Site{chaos.SiteAcceptFail}}),
	})
	ctx := ctxT(t, 120*time.Second)
	rep, err := RunLoad(ctx, LoadConfig{
		Dial: l.Dial, Clients: 16, PerClient: 1, Seed: 3, Retries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 16 {
		t.Fatalf("availability with accept chaos + retries: %s", rep.Format())
	}
	if mChaosAcceptFail.Value() == before {
		t.Fatal("accept chaos never fired at rate 0.4")
	}
}

func TestServerChaosConnDrop(t *testing.T) {
	checkGoroutines(t)
	before := mChaosConnDrop.Value()
	_, l := startServer(t, Config{
		Chaos: chaos.NewPlan(chaos.Config{Seed: 5, Rate: 0.35, Sites: []chaos.Site{chaos.SiteConnDrop}}),
	})
	ctx := ctxT(t, 120*time.Second)
	rep, err := RunLoad(ctx, LoadConfig{
		Dial: l.Dial, Clients: 16, PerClient: 2, Seed: 5, Retries: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 32 {
		t.Fatalf("availability with conn-drop chaos + retries: %s", rep.Format())
	}
	if mChaosConnDrop.Value() == before {
		t.Fatal("conn-drop chaos never fired at rate 0.35")
	}
}

func TestServerChaosSlowRead(t *testing.T) {
	checkGoroutines(t)
	before := mChaosSlowRead.Value()
	_, l := startServer(t, Config{
		Chaos: chaos.NewPlan(chaos.Config{Seed: 7, Rate: 1, Sites: []chaos.Site{chaos.SiteSlowRead}}),
	})
	ctx := ctxT(t, 120*time.Second)
	rep, err := RunLoad(ctx, LoadConfig{
		Dial: l.Dial, Clients: 8, PerClient: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 16 {
		t.Fatalf("slow-read chaos must only delay, never fail: %s", rep.Format())
	}
	if mChaosSlowRead.Value() == before {
		t.Fatal("slow-read chaos never fired at rate 1")
	}
}

// ---------------------------------------------------------------------
// The acceptance bar: 1000 concurrent clients, hermetically
// ---------------------------------------------------------------------

func TestServerThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-client acceptance run skipped in -short mode")
	}
	checkGoroutines(t)
	eng := testEngine()
	// Sub-capacity: the queue holds the full offered load, so nothing
	// is shed and availability is 100% by construction.
	s, l := startServer(t, Config{Engine: eng, Workers: 16, QueueDepth: 4096})
	ctx := ctxT(t, 300*time.Second)

	run := func() string {
		rep, err := RunLoad(ctx, LoadConfig{
			Dial: l.Dial, Clients: 1000, PerClient: 2, Seed: 1, Rate: 50000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.OK != 2000 || rep.Availability() != 100 {
			t.Fatalf("sub-capacity run must be fully available:\n%s", rep.Format())
		}
		return rep.Format()
	}
	first := run()
	second := run()
	if first != second {
		t.Fatalf("seeded report not byte-stable across runs:\n--- first\n%s--- second\n%s", first, second)
	}
	// The server-wide merged histogram saw nothing yet (conns still
	// open); after shutdown it must cover all 4000 requests.
	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if snap := s.LatencySnapshot(); snap.Count != 4000 {
		t.Fatalf("server-wide latency histogram count = %d, want 4000", snap.Count)
	}
}
