package srv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"cash/internal/bench"
	"cash/internal/chaos"
	"cash/internal/obs"
	"cash/internal/serve"
)

// Wire-layer metrics in the shared observability registry. None of
// these are linked into cashbench, so the committed metrics goldens are
// untouched.
var (
	mReqOK       = obs.Default().Counter("srv.requests.ok")
	mReqShed     = obs.Default().Counter("srv.requests.shed")
	mReqQuota    = obs.Default().Counter("srv.requests.quota")
	mReqDeadline = obs.Default().Counter("srv.requests.deadline")
	mReqCanceled = obs.Default().Counter("srv.requests.canceled")
	mReqBad      = obs.Default().Counter("srv.requests.bad")
	mReqInternal = obs.Default().Counter("srv.requests.internal")
	mReqPanics   = obs.Default().Counter("srv.requests.panics")

	mConnsOpened = obs.Default().Counter("srv.conns.opened")
	mConnsClosed = obs.Default().Counter("srv.conns.closed")

	mChaosAcceptFail = obs.Default().Counter("srv.chaos.accept_fail")
	mChaosConnDrop   = obs.Default().Counter("srv.chaos.conn_drop")
	mChaosSlowRead   = obs.Default().Counter("srv.chaos.slow_read")
)

// ErrServerClosed is returned by Serve after Shutdown or Close begins.
var ErrServerClosed = errors.New("srv: server closed")

// Defaults for zero Config fields.
const (
	DefaultWorkers      = 8
	DefaultQueueDepth   = 64
	DefaultWriteTimeout = 5 * time.Second
	DefaultRetryAfter   = 50 * time.Millisecond
)

// Config tunes a Server. The zero value (plus an Engine) is a working
// server with quotas disabled and chaos off.
type Config struct {
	// Engine serves the requests. Nil uses the shared process-default
	// engine. The Server never closes the engine — lifecycles compose
	// from the outside (shut the server down, then close the engine).
	Engine *serve.Engine
	// Workers bounds the worker pool executing requests; queued work
	// beyond it waits in the request queue. 0 means DefaultWorkers.
	Workers int
	// QueueDepth bounds the request queue. A request arriving with the
	// queue full is shed immediately with a typed over-capacity
	// response. 0 means DefaultQueueDepth; negative means depth 0 (every
	// request beyond the workers' hands is shed).
	QueueDepth int
	// QuotaRate is the per-connection token-bucket refill rate in
	// requests per second; <= 0 disables quotas.
	QuotaRate float64
	// QuotaBurst is the bucket capacity when quotas are enabled (min 1).
	QuotaBurst int
	// WriteTimeout bounds one response write; a client that cannot keep
	// up with its responses is disconnected rather than allowed to wedge
	// a worker or the writer. 0 means DefaultWriteTimeout.
	WriteTimeout time.Duration
	// RetryAfter is the hint attached to over-capacity responses. 0
	// means DefaultRetryAfter.
	RetryAfter time.Duration
	// MaxFrameBytes bounds one request frame. 0 means
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// Chaos, when enabled, injects wire-level faults (accept failures,
	// mid-request connection drops, delayed reads) deterministically
	// from the plan's seed.
	Chaos *chaos.Plan

	// now overrides the clock (tests; quotas and retry hints).
	now func() time.Time
	// execHook runs at the head of every request execution (tests;
	// panic isolation).
	execHook func(*task)
}

// Server states.
const (
	stateRunning = iota
	stateDraining
	stateClosed
)

// task is one queued request: the connection to answer on, the parsed
// header, and the undecoded body.
type task struct {
	c    *srvConn
	h    header
	body []byte
}

// Server is the TCP front end. Create with New, attach listeners with
// Serve (one goroutine each), stop with Shutdown (graceful) or Close
// (immediate).
type Server struct {
	cfg Config
	eng *serve.Engine

	queue       chan *task
	baseCtx     context.Context
	baseCancel  context.CancelFunc
	stopWorkers chan struct{}
	stopOnce    sync.Once
	startOnce   sync.Once

	mu        sync.Mutex
	state     int
	listeners map[net.Listener]struct{}
	conns     map[*srvConn]struct{}
	acceptSeq int
	connSeq   int

	inflight sync.WaitGroup // accepted-into-queue requests
	workerWG sync.WaitGroup
	connWG   sync.WaitGroup

	histMu sync.Mutex
	hist   *obs.Histogram // server-wide simulated-latency view
}

// New builds a Server from cfg. Workers start on the first Serve call.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = serve.Default()
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	if depth < 0 {
		depth = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:         cfg,
		eng:         eng,
		queue:       make(chan *task, depth),
		baseCtx:     ctx,
		baseCancel:  cancel,
		stopWorkers: make(chan struct{}),
		listeners:   make(map[net.Listener]struct{}),
		conns:       make(map[*srvConn]struct{}),
		hist:        obs.NewCycleHistogram(),
	}
}

func (s *Server) now() time.Time {
	if s.cfg.now != nil {
		return s.cfg.now()
	}
	return time.Now()
}

func (s *Server) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return DefaultWorkers
}

func (s *Server) writeTimeout() time.Duration {
	if s.cfg.WriteTimeout > 0 {
		return s.cfg.WriteTimeout
	}
	return DefaultWriteTimeout
}

// ceilMillis converts a retry hint to whole milliseconds, rounding up.
// Milliseconds() truncates, so a 2.7ms wait would become a 2ms hint and
// a well-behaved client would come back while the quota is still
// exhausted, burn the retry, and be told to wait again. Never below 1ms:
// a zero hint reads as "retry immediately".
func ceilMillis(d time.Duration) int64 {
	ms := d.Milliseconds()
	if d > time.Duration(ms)*time.Millisecond {
		ms++
	}
	if ms < 1 {
		ms = 1
	}
	return ms
}

func (s *Server) retryAfterMillis() int64 {
	d := s.cfg.RetryAfter
	if d <= 0 {
		d = DefaultRetryAfter
	}
	return ceilMillis(d)
}

func (s *Server) maxFrame() int {
	if s.cfg.MaxFrameBytes > 0 {
		return s.cfg.MaxFrameBytes
	}
	return DefaultMaxFrameBytes
}

// LatencySnapshot returns the server-wide simulated-latency histogram:
// every connection's per-request run cycles, merged on connection
// close.
func (s *Server) LatencySnapshot() obs.HistogramSnapshot {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return s.hist.Snapshot()
}

// Serve accepts connections on l until the listener fails or the server
// shuts down. It returns nil after Shutdown/Close, ErrServerClosed when
// called on an already-stopped server, and the accept error otherwise.
// Injected accept faults (chaos.SiteAcceptFail) and temporary network
// errors are survived with a short backoff, not returned.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	s.startOnce.Do(func() {
		for i := 0; i < s.workers(); i++ {
			s.workerWG.Add(1)
			go s.worker()
		}
	})
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	var backoff time.Duration
	for {
		nc, err := l.Accept()
		if err != nil {
			if s.stopping() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if backoff < 5*time.Millisecond {
					backoff += time.Millisecond
				}
				time.Sleep(backoff)
				continue
			}
			return err
		}
		backoff = 0
		s.mu.Lock()
		acceptIdx := s.acceptSeq
		s.acceptSeq++
		connID := s.connSeq
		s.connSeq++
		s.mu.Unlock()
		// Chaos: an injected accept failure severs the connection before
		// it is ever served, as if accept(2) itself had failed.
		if s.cfg.Chaos.Draw("srv/accept", acceptIdx, 0, []chaos.Site{chaos.SiteAcceptFail}).Is(chaos.SiteAcceptFail) {
			mChaosAcceptFail.Inc()
			nc.Close()
			continue
		}
		s.connWG.Add(1)
		go s.serveConn(nc, connID)
	}
}

// stopping reports whether Shutdown/Close has begun.
func (s *Server) stopping() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state != stateRunning
}

// tryEnqueue submits a task to the worker queue without blocking: the
// overload answer is an immediate typed shed, never an unbounded queue.
// It returns a non-empty error code when the request was not accepted.
func (s *Server) tryEnqueue(t *task) (code string, retryMillis int64) {
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		return CodeShutdown, 0
	}
	s.inflight.Add(1)
	select {
	case s.queue <- t:
		s.mu.Unlock()
		return "", 0
	default:
		s.inflight.Done()
		s.mu.Unlock()
		mReqShed.Inc()
		return CodeOverCapacity, s.retryAfterMillis()
	}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		select {
		case t := <-s.queue:
			s.handle(t)
		case <-s.stopWorkers:
			return
		}
	}
}

// handle executes one request. Panics are isolated to the request: the
// worker survives, the client gets a typed internal error, and the
// connection keeps serving.
func (s *Server) handle(t *task) {
	defer s.inflight.Done()
	defer func() {
		if r := recover(); r != nil {
			mReqPanics.Inc()
			t.c.send(t.h.ID, TError, ErrorResponse{Code: CodeInternal, Message: fmt.Sprintf("panic: %v", r)})
		}
	}()
	if s.cfg.execHook != nil {
		s.cfg.execHook(t)
	}
	ctx := s.baseCtx
	if t.h.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(t.h.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	resp, err := s.execute(ctx, t)
	if err != nil {
		t.c.send(t.h.ID, TError, s.classify(err))
		return
	}
	mReqOK.Inc()
	t.c.send(t.h.ID, TResult, resp)
}

// badRequest marks errors caused by the request content (undecodable
// body, unknown mode, compile failure) as the client's fault.
type badRequest struct{ err error }

func (e badRequest) Error() string { return e.err.Error() }
func (e badRequest) Unwrap() error { return e.err }

// classify maps an execution error onto a typed wire error.
func (s *Server) classify(err error) ErrorResponse {
	var br badRequest
	switch {
	case errors.As(err, &br):
		mReqBad.Inc()
		return ErrorResponse{Code: CodeBadRequest, Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		mReqDeadline.Inc()
		return ErrorResponse{Code: CodeDeadline, Message: err.Error()}
	case errors.Is(err, serve.ErrEngineClosed):
		return ErrorResponse{Code: CodeShutdown, Message: err.Error()}
	case errors.Is(err, context.Canceled):
		mReqCanceled.Inc()
		if s.stopping() {
			return ErrorResponse{Code: CodeShutdown, Message: "canceled by server shutdown"}
		}
		return ErrorResponse{Code: CodeCanceled, Message: err.Error()}
	default:
		mReqInternal.Inc()
		return ErrorResponse{Code: CodeInternal, Message: err.Error()}
	}
}

// execute decodes and serves one request through the engine.
func (s *Server) execute(ctx context.Context, t *task) (any, error) {
	switch t.h.Type {
	case TBuild:
		var req BuildRequest
		if err := decode(t.body, &req); err != nil {
			return nil, err
		}
		mode, err := ParseMode(req.Mode)
		if err != nil {
			return nil, badRequest{err}
		}
		art, err := s.eng.BuildContext(ctx, req.Source, mode, req.Options.Options())
		if err != nil {
			return nil, buildErr(ctx, err)
		}
		return BuildResponse{Mode: mode.String(), CodeSize: art.CodeSize(), Stats: art.StaticStats()}, nil

	case TRun:
		var req RunRequest
		if err := decode(t.body, &req); err != nil {
			return nil, err
		}
		mode, err := ParseMode(req.Mode)
		if err != nil {
			return nil, badRequest{err}
		}
		art, err := s.eng.BuildContext(ctx, req.Source, mode, req.Options.Options())
		if err != nil {
			return nil, buildErr(ctx, err)
		}
		res, err := s.eng.RunContext(ctx, art)
		if err != nil {
			return nil, err
		}
		resp := RunResponse{
			Cycles:   res.Cycles,
			ExitCode: res.ExitCode,
			Output:   res.Output,
			HeapSpan: res.HeapSpan,
		}
		if res.Violation != nil {
			resp.Violation = res.Violation.Error()
		}
		t.c.observe(res.Cycles)
		return resp, nil

	case TCompare:
		var req CompareRequest
		if err := decode(t.body, &req); err != nil {
			return nil, err
		}
		cmp, err := s.eng.CompareContext(ctx, req.Name, req.Source, req.Options.Options())
		if err != nil {
			return nil, buildErr(ctx, err)
		}
		return CompareResponse{
			Name:            cmp.Name,
			GCC:             CompareModeNumbers{Cycles: cmp.GCC.Cycles, CodeSize: cmp.GCC.CodeSize},
			BCC:             CompareModeNumbers{Cycles: cmp.BCC.Cycles, CodeSize: cmp.BCC.CodeSize},
			Cash:            CompareModeNumbers{Cycles: cmp.Cash.Cycles, CodeSize: cmp.Cash.CodeSize},
			CashOverheadPct: cmp.CashOverheadPct(),
			BCCOverheadPct:  cmp.BCCOverheadPct(),
		}, nil

	case TTable:
		var req TableRequest
		if err := decode(t.body, &req); err != nil {
			return nil, err
		}
		tab, err := bench.TableByID(ctx, s.eng, req.ID, req.Requests)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, badRequest{err}
		}
		return TableResponse{ID: req.ID, Text: tab.Format()}, nil
	}
	return nil, badRequest{fmt.Errorf("unknown request type %d", t.h.Type)}
}

// decode unmarshals a request body, typing failures as the client's.
func decode(raw []byte, into any) error {
	if err := json.Unmarshal(raw, into); err != nil {
		return badRequest{fmt.Errorf("undecodable request body: %w", err)}
	}
	return nil
}

// buildErr types a build failure: compile errors are the client's
// fault, but a canceled or closed engine is not.
func buildErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if errors.Is(err, serve.ErrEngineClosed) {
		return err
	}
	return badRequest{err}
}

// mergeConnHistogram folds a closing connection's latency view into the
// server-wide one (obs.Histogram.Merge keeps quantiles equivalent to a
// single combined histogram).
func (s *Server) mergeConnHistogram(h *obs.Histogram) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	// Same bounds by construction; Merge only errors on bound mismatch
	// or self-merge.
	_ = s.hist.Merge(h)
}

// Shutdown drains the server gracefully: stop accepting, answer new
// requests with a typed shutting-down response, let in-flight requests
// finish, flush their responses, then tear down connections and
// workers. If ctx expires first, the drain turns hard: the base context
// is canceled — in-flight simulated runs stop at the next basic-block
// boundary via the vm's cancellation path — connections are severed,
// and Shutdown returns ctx.Err(). Safe to call multiple times and
// concurrently; every call waits for the teardown it observed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.state == stateRunning {
		s.state = stateDraining
	}
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	var hardErr error
	select {
	case <-drained:
	case <-ctx.Done():
		hardErr = ctx.Err()
		s.baseCancel()
		s.closeConns(true)
		<-drained
	}
	s.stopOnce.Do(func() { close(s.stopWorkers) })
	s.workerWG.Wait()
	s.closeConns(false)
	s.connWG.Wait()
	s.baseCancel()
	s.mu.Lock()
	s.state = stateClosed
	s.mu.Unlock()
	return hardErr
}

// Close stops the server immediately: in-flight work is canceled, not
// awaited. It always returns nil.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx)
	return nil
}

// closeConns signals every live connection to shut down. force severs
// the sockets immediately (hard cancel); otherwise writers flush their
// queued responses first.
func (s *Server) closeConns(force bool) {
	s.mu.Lock()
	conns := make([]*srvConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.close(force)
	}
}
