package srv

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// ServerError is a typed error response from the server. Shed codes
// (over-capacity, quota) carry a retry-after hint.
type ServerError struct {
	Code       string
	Message    string
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("srv: server error %s", e.Code)
	}
	return fmt.Sprintf("srv: %s: %s", e.Code, e.Message)
}

// IsShed reports whether err is a typed shed response — the server
// deliberately refused the request under overload or quota, and the
// client should back off and retry.
func IsShed(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && (se.Code == CodeOverCapacity || se.Code == CodeQuota)
}

// ErrClientClosed is returned for requests on a closed client.
var ErrClientClosed = errors.New("srv: client closed")

// Client speaks the wire protocol over one connection. It is safe for
// concurrent use: requests are pipelined and responses are demuxed by
// request id, so N goroutines can share one connection.
type Client struct {
	nc net.Conn

	wmu sync.Mutex // serializes request frames

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan clientResp
	err     error // terminal transport error, set once
}

type clientResp struct {
	typ  uint8
	body []byte
}

// NewClient wraps an established connection and starts its demux
// reader.
func NewClient(nc net.Conn) *Client {
	c := &Client{nc: nc, pending: make(map[uint64]chan clientResp)}
	go c.readLoop()
	return c
}

// Dial connects to a TCP server address.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error {
	c.fail(ErrClientClosed)
	return c.nc.Close()
}

// fail marks the client dead and wakes every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	c.err = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
}

// readLoop demuxes response frames to their waiting requests.
func (c *Client) readLoop() {
	for {
		h, body, err := readFrame(c.nc, DefaultMaxFrameBytes)
		if err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			c.fail(fmt.Errorf("srv: connection lost: %w", err))
			c.nc.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[h.ID]
		if ok {
			delete(c.pending, h.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- clientResp{typ: h.Type, body: body}
			close(ch)
		}
		// Responses to abandoned (ctx-canceled) requests are dropped.
	}
}

// do issues one request and waits for its response or ctx.
func (c *Client) do(ctx context.Context, typ uint8, body any) (clientResp, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return clientResp{}, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan clientResp, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	h := header{Version: ProtoVersion, Type: typ, ID: id}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		if ms > int64(^uint32(0)) {
			ms = int64(^uint32(0))
		}
		h.DeadlineMillis = uint32(ms)
	}
	c.wmu.Lock()
	err := writeFrame(c.nc, h, body)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		err = fmt.Errorf("srv: send request: %w", err)
		c.fail(err)
		return clientResp{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			if err == nil {
				err = ErrClientClosed
			}
			return clientResp{}, err
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return clientResp{}, ctx.Err()
	}
}

// call runs one typed request/response exchange.
func call[T any](ctx context.Context, c *Client, typ uint8, req any) (*T, error) {
	resp, err := c.do(ctx, typ, req)
	if err != nil {
		return nil, err
	}
	switch resp.typ {
	case TResult:
		out := new(T)
		if err := json.Unmarshal(resp.body, out); err != nil {
			return nil, fmt.Errorf("srv: undecodable response: %w", err)
		}
		return out, nil
	case TError:
		var e ErrorResponse
		if err := json.Unmarshal(resp.body, &e); err != nil {
			return nil, fmt.Errorf("srv: undecodable error response: %w", err)
		}
		return nil, &ServerError{
			Code:       e.Code,
			Message:    e.Message,
			RetryAfter: time.Duration(e.RetryAfterMillis) * time.Millisecond,
		}
	}
	return nil, fmt.Errorf("srv: unexpected response type %d", resp.typ)
}

// Build compiles a program remotely.
func (c *Client) Build(ctx context.Context, req BuildRequest) (*BuildResponse, error) {
	return call[BuildResponse](ctx, c, TBuild, req)
}

// Run compiles (cached server-side) and executes a program once.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	return call[RunResponse](ctx, c, TRun, req)
}

// Compare evaluates a program under all three compiler modes.
func (c *Client) Compare(ctx context.Context, req CompareRequest) (*CompareResponse, error) {
	return call[CompareResponse](ctx, c, TCompare, req)
}

// Table regenerates one registered result table.
func (c *Client) Table(ctx context.Context, req TableRequest) (*TableResponse, error) {
	return call[TableResponse](ctx, c, TTable, req)
}
