package srv

import (
	"fmt"
	"net"
	"sync"
	"time"

	"cash/internal/chaos"
	"cash/internal/obs"
)

// outMsg is one response waiting for the connection's writer.
type outMsg struct {
	h    header
	body any
}

// srvConn is one client connection: a reader that parses and admits
// request frames, a single writer that serializes response frames (the
// mux — workers finish in any order, responses carry the request id),
// a token bucket, and a latency histogram merged into the server-wide
// view on close.
type srvConn struct {
	s      *Server
	nc     net.Conn
	id     int
	out    chan outMsg
	closed chan struct{}
	once   sync.Once
	bucket *bucket
	hist   *obs.Histogram
	reqSeq int // request index on this connection, keys chaos draws
}

// serveConn runs one connection to completion. Panics anywhere in the
// connection's goroutines are isolated: the connection dies, the server
// does not.
func (s *Server) serveConn(nc net.Conn, connID int) {
	defer s.connWG.Done()
	c := &srvConn{
		s:      s,
		nc:     nc,
		id:     connID,
		out:    make(chan outMsg, 32),
		closed: make(chan struct{}),
		bucket: newBucket(s.cfg.QuotaRate, s.cfg.QuotaBurst),
		hist:   obs.NewCycleHistogram(),
	}
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	mConnsOpened.Inc()

	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		c.writeLoop()
	}()
	c.readLoop()
	c.close(false)
	writerWG.Wait()

	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.mergeConnHistogram(c.hist)
	mConnsClosed.Inc()
}

// observe records one request's simulated cost in the connection's
// latency view.
func (c *srvConn) observe(cycles uint64) { c.hist.Observe(cycles) }

// close begins connection teardown. The writer flushes queued responses
// before closing the socket; force severs the socket immediately (hard
// drain, stuck peer).
func (c *srvConn) close(force bool) {
	c.once.Do(func() { close(c.closed) })
	if force {
		c.nc.Close()
	}
}

// send queues a response for the writer. It blocks only while the
// writer is saturated, and gives up when the connection is closing —
// a response to a dead connection is not worth a wedged worker.
func (c *srvConn) send(reqID uint64, typ uint8, body any) {
	m := outMsg{h: header{Version: ProtoVersion, Type: typ, ID: reqID}, body: body}
	select {
	case c.out <- m:
	case <-c.closed:
	}
}

// writeLoop is the connection's only writer: it serializes response
// frames, each under a write deadline so a slow client is disconnected
// rather than allowed to pin the connection's memory forever. On
// shutdown it flushes what is already queued, then closes the socket.
func (c *srvConn) writeLoop() {
	defer func() {
		if r := recover(); r != nil {
			mReqPanics.Inc()
		}
		c.nc.Close() // unblocks the reader
	}()
	for {
		select {
		case m := <-c.out:
			if !c.writeOne(m) {
				c.close(false)
				return
			}
		case <-c.closed:
			for {
				select {
				case m := <-c.out:
					if !c.writeOne(m) {
						return
					}
				default:
					return
				}
			}
		}
	}
}

// writeOne writes a single frame under the write deadline.
func (c *srvConn) writeOne(m outMsg) bool {
	c.nc.SetWriteDeadline(c.s.now().Add(c.s.writeTimeout()))
	return writeFrame(c.nc, m.h, m.body) == nil
}

// readLoop parses request frames and admits them: protocol version
// gate, wire chaos, per-client quota, then the bounded queue. Every
// rejection is a typed response; only a protocol-version mismatch or a
// wire fault ends the connection.
func (c *srvConn) readLoop() {
	defer func() {
		if r := recover(); r != nil {
			mReqPanics.Inc()
		}
	}()
	scope := fmt.Sprintf("srv/conn/%d", c.id)
	for {
		reqIdx := c.reqSeq
		c.reqSeq++
		in := c.s.cfg.Chaos.Draw(scope, reqIdx, 0, []chaos.Site{chaos.SiteConnDrop, chaos.SiteSlowRead})
		if in.Is(chaos.SiteSlowRead) {
			// A congested client: the request trickles in late.
			mChaosSlowRead.Inc()
			time.Sleep(time.Duration(1+in.Aux%5) * time.Millisecond)
		}
		h, body, err := readFrame(c.nc, c.s.maxFrame())
		if err != nil {
			return // EOF, peer gone, or oversized/corrupt frame
		}
		if h.Version != ProtoVersion {
			c.send(h.ID, TError, ErrorResponse{
				Code:    CodeBadVersion,
				Message: fmt.Sprintf("protocol version %d not supported (want %d)", h.Version, ProtoVersion),
			})
			return
		}
		if in.Is(chaos.SiteConnDrop) {
			// The wire dies after the request was read, before any
			// response: the client sees a mid-request EOF.
			mChaosConnDrop.Inc()
			return
		}
		if ok, retry := c.bucket.take(c.s.now()); !ok {
			mReqQuota.Inc()
			c.send(h.ID, TError, ErrorResponse{Code: CodeQuota, Message: "per-client quota exhausted", RetryAfterMillis: ceilMillis(retry)})
			continue
		}
		if code, retry := c.s.tryEnqueue(&task{c: c, h: h, body: body}); code != "" {
			msg := "worker queue full"
			if code == CodeShutdown {
				msg = "server is draining"
			}
			c.send(h.ID, TError, ErrorResponse{Code: code, Message: msg, RetryAfterMillis: retry})
		}
	}
}
