package srv

import (
	"fmt"
	"net"
	"sync"
)

// PipeListener is an in-memory net.Listener over net.Pipe pairs: Dial
// creates a synchronous full-duplex connection whose server half is
// handed to Accept. It keeps the whole client/server stack hermetic —
// no ports, no kernel buffers, no flakes — which is what makes the
// seeded load-generator goldens byte-stable.
type PipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewPipeListener returns an open PipeListener.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial creates a new connection to the listener, blocking until the
// accept loop takes the server half (or the listener closes).
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, fmt.Errorf("srv: pipe listener closed")
	}
}

// Accept waits for the next dialed connection.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close stops the listener; blocked Dial and Accept calls fail.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }
