package srv

import (
	"sync"
	"time"
)

// bucket is a per-client token bucket: capacity burst, refilled at rate
// tokens per second. A nil bucket admits everything (quotas disabled).
// Time is injected by the caller so tests (and deterministic harnesses)
// can drive it with a manual clock.
type bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &bucket{rate: rate, burst: float64(burst), tokens: float64(burst)}
}

// take consumes one token if available. When the bucket is empty it
// reports how long until the next token accrues — the retry-after hint.
func (b *bucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	missing := 1 - b.tokens
	return false, time.Duration(missing / b.rate * float64(time.Second))
}
