// Package srv is the network serving front end: a TCP server that puts
// a wire protocol in front of serve.Engine, with the robustness
// envelope a real service needs — a bounded worker pool feeding the
// Engine's admission control, per-client token-bucket quotas,
// per-request deadlines propagated into the simulated machine's
// cancellation path, typed over-capacity responses with retry-after
// hints, slow-client write timeouts, per-connection panic isolation,
// deterministic wire-level chaos injection, and a graceful
// drain/shutdown state machine.
//
// The protocol is deliberately simple and versioned: length-prefixed
// binary frames carrying a fixed header (version, message type, request
// id, deadline) and a JSON body. Requests on one connection are
// multiplexed — a client may pipeline many requests and responses
// return tagged with the request id, possibly out of order.
package srv

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"cash/internal/core"
)

// ProtoVersion is the wire protocol version this package speaks. A
// frame with any other version is answered with CodeBadVersion and the
// connection is closed.
const ProtoVersion = 1

// DefaultMaxFrameBytes bounds a frame body unless Config overrides it.
const DefaultMaxFrameBytes = 4 << 20

// headerLen is the fixed frame header: version(1) type(1) id(8)
// deadline-millis(4).
const headerLen = 1 + 1 + 8 + 4

// Message types. Requests are client→server, responses server→client.
const (
	// TBuild compiles a program and reports its static properties.
	TBuild uint8 = 1
	// TRun compiles (served from the artifact cache) and executes a
	// program once, reporting the run outcome.
	TRun uint8 = 2
	// TCompare evaluates a program under GCC, BCC and Cash.
	TCompare uint8 = 3
	// TTable regenerates one registered result table.
	TTable uint8 = 4

	// TResult carries the successful response body for the request type.
	TResult uint8 = 16
	// TError carries an ErrorResponse.
	TError uint8 = 17
)

// Typed error codes carried by ErrorResponse.
const (
	// CodeOverCapacity: the worker queue is full; retry after the hint.
	CodeOverCapacity = "over_capacity"
	// CodeQuota: the connection's token bucket is empty; retry after the
	// hint.
	CodeQuota = "quota_exhausted"
	// CodeDeadline: the request's deadline expired before it finished.
	CodeDeadline = "deadline_exceeded"
	// CodeShutdown: the server is draining or the engine is closed; the
	// request was not (or could not be) served.
	CodeShutdown = "shutting_down"
	// CodeCanceled: the request was canceled mid-flight (hard drain).
	CodeCanceled = "canceled"
	// CodeBadRequest: the request could not be parsed or compiled.
	CodeBadRequest = "bad_request"
	// CodeBadVersion: the frame's protocol version is not spoken here.
	CodeBadVersion = "bad_version"
	// CodeInternal: the handler failed unexpectedly (including a
	// recovered panic). The connection survives.
	CodeInternal = "internal"
)

// header is the fixed preamble of every frame.
type header struct {
	Version uint8
	Type    uint8
	ID      uint64
	// DeadlineMillis is the client's per-request budget; 0 means no
	// deadline. Ignored in responses.
	DeadlineMillis uint32
}

// WireOptions is the serializable subset of core.Options a remote
// client may set. Option fields that carry process-local state (event
// traces) deliberately have no wire form.
type WireOptions struct {
	SegRegs         int      `json:"seg_regs,omitempty"`
	SkipReadChecks  bool     `json:"skip_read_checks,omitempty"`
	UseBoundInstr   bool     `json:"use_bound_instr,omitempty"`
	WithoutCallGate bool     `json:"without_call_gate,omitempty"`
	ElectricFence   bool     `json:"electric_fence,omitempty"`
	Passes          []string `json:"passes,omitempty"`
	StepLimit       uint64   `json:"step_limit,omitempty"`
	Tier2           bool     `json:"tier2,omitempty"`
}

// Options converts the wire form into build options.
func (w WireOptions) Options() core.Options {
	return core.Options{
		SegRegs:         w.SegRegs,
		SkipReadChecks:  w.SkipReadChecks,
		UseBoundInstr:   w.UseBoundInstr,
		WithoutCallGate: w.WithoutCallGate,
		ElectricFence:   w.ElectricFence,
		Passes:          w.Passes,
		StepLimit:       w.StepLimit,
		Tier2:           w.Tier2,
	}
}

// ParseMode maps a wire strategy name onto a compiler mode. Any
// registered strategy is accepted; empty defaults to cash.
func ParseMode(s string) (core.Mode, error) {
	if s == "" {
		return core.ModeCash, nil
	}
	for _, name := range core.StrategyNames() {
		if s == name {
			return core.Mode(s), nil
		}
	}
	return "", fmt.Errorf("unknown strategy %q (want one of %v)", s, core.StrategyNames())
}

// BuildRequest asks for a compilation.
type BuildRequest struct {
	Source  string      `json:"source"`
	Mode    string      `json:"mode"`
	Options WireOptions `json:"options"`
}

// BuildResponse reports the compiled artifact's static properties.
type BuildResponse struct {
	Mode     string            `json:"mode"`
	CodeSize int               `json:"code_size"`
	Stats    map[string]uint64 `json:"stats,omitempty"`
}

// RunRequest asks for one execution of a program. Requests are
// content-addressed server-side: identical (source, mode, options)
// triples share one compiled artifact and, for deterministic runs, one
// memoised result.
type RunRequest struct {
	Source  string      `json:"source"`
	Mode    string      `json:"mode"`
	Options WireOptions `json:"options"`
}

// RunResponse is the outcome of one execution. A detected array bound
// violation is a successful detection, not a transport error, so it
// rides in the result.
type RunResponse struct {
	Cycles    uint64  `json:"cycles"`
	ExitCode  int32   `json:"exit_code"`
	Output    []int32 `json:"output,omitempty"`
	HeapSpan  uint32  `json:"heap_span,omitempty"`
	Violation string  `json:"violation,omitempty"`
}

// CompareRequest asks for the three-mode evaluation of one program.
type CompareRequest struct {
	Name    string      `json:"name"`
	Source  string      `json:"source"`
	Options WireOptions `json:"options"`
}

// CompareModeNumbers is one mode's column of a comparison.
type CompareModeNumbers struct {
	Cycles   uint64 `json:"cycles"`
	CodeSize int    `json:"code_size"`
}

// CompareResponse is one row of the paper's tables, over the wire.
type CompareResponse struct {
	Name            string             `json:"name"`
	GCC             CompareModeNumbers `json:"gcc"`
	BCC             CompareModeNumbers `json:"bcc"`
	Cash            CompareModeNumbers `json:"cash"`
	CashOverheadPct float64            `json:"cash_overhead_pct"`
	BCCOverheadPct  float64            `json:"bcc_overhead_pct"`
}

// TableRequest asks for one registered result table by id.
type TableRequest struct {
	ID string `json:"id"`
	// Requests sets the client workload of the network experiments; 0
	// means the paper's default.
	Requests int `json:"requests,omitempty"`
}

// TableResponse carries the rendered table.
type TableResponse struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

// ErrorResponse is the body of every TError frame.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	// RetryAfterMillis hints when a shed (over-capacity or quota)
	// request is worth retrying.
	RetryAfterMillis int64 `json:"retry_after_millis,omitempty"`
}

// writeFrame encodes one frame — length prefix, header, JSON body —
// into a single buffer and writes it with one Write call, so concurrent
// writers never interleave partial frames (the caller still serializes
// writes per connection).
func writeFrame(w io.Writer, h header, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("srv: encode frame body: %w", err)
	}
	buf := make([]byte, 4+headerLen+len(raw))
	binary.BigEndian.PutUint32(buf[0:], uint32(headerLen+len(raw)))
	buf[4] = h.Version
	buf[5] = h.Type
	binary.BigEndian.PutUint64(buf[6:], h.ID)
	binary.BigEndian.PutUint32(buf[14:], h.DeadlineMillis)
	copy(buf[4+headerLen:], raw)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame, bounding the payload at max bytes.
func readFrame(r io.Reader, max int) (header, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return header{}, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if int(n) < headerLen {
		return header{}, nil, fmt.Errorf("srv: frame shorter than its header (%d bytes)", n)
	}
	if int(n) > max {
		return header{}, nil, fmt.Errorf("srv: frame of %d bytes exceeds the %d-byte limit", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return header{}, nil, err
	}
	h := header{
		Version:        payload[0],
		Type:           payload[1],
		ID:             binary.BigEndian.Uint64(payload[2:]),
		DeadlineMillis: binary.BigEndian.Uint32(payload[10:]),
	}
	return h, payload[headerLen:], nil
}
