package mem

// Image is a frozen copy of a Memory's contents, captured once and
// then shared — read-only — by any number of restored memories. The
// arena spans are copied up to their dirty watermarks; sparse pages
// are copied into a frozen page map that restored memories share
// copy-on-write: a read serves the frozen page directly, the first
// write to a page copies it into the restoring memory's private map.
type Image struct {
	geo   Geometry
	lo    []byte // frozen copy of lo[:loDirty]
	hi    []byte // frozen copy of hi[hiDirty:]
	hiOff uint32 // the captured hiDirty watermark
	pages map[uint32]*[PageSize]byte
}

// Capture freezes the memory's current contents. Sparse pages are
// deep-copied, so the image is immune to later writes through m; pages
// m itself was reading copy-on-write from a previous image are shared
// onward (they are already frozen).
func (m *Memory) Capture() *Image {
	img := &Image{geo: m.Geometry(), hiOff: m.hiDirty}
	img.lo = append([]byte(nil), m.lo[:m.loDirty]...)
	img.hi = append([]byte(nil), m.hi[m.hiDirty:]...)
	if len(m.pages) > 0 || len(m.frozen) > 0 {
		img.pages = make(map[uint32]*[PageSize]byte, len(m.pages)+len(m.frozen))
		for pn, p := range m.frozen {
			img.pages[pn] = p
		}
		for pn, p := range m.pages {
			cp := new([PageSize]byte)
			*cp = *p
			img.pages[pn] = cp
		}
	}
	return img
}

// Geometry returns the arena layout the image was captured from; only
// a Memory with equal Geometry can restore it.
func (img *Image) Geometry() Geometry { return img.geo }

// RestoreInto returns m to exactly the captured state, in place and
// without requiring a prior Reset: arena bytes outside the image's
// dirty spans are zeroed (bounded by m's own watermarks), private
// sparse pages are dropped, and the image's frozen pages are installed
// copy-on-write. Reports false — leaving m untouched — on a geometry
// mismatch.
func (img *Image) RestoreInto(m *Memory) bool {
	if m.Geometry() != img.geo {
		return false
	}
	n := uint32(len(img.lo))
	copy(m.lo[:n], img.lo)
	if m.loDirty > n {
		clear(m.lo[n:m.loDirty])
	}
	m.loDirty = n
	if m.hiDirty < img.hiOff {
		clear(m.hi[m.hiDirty:img.hiOff])
	}
	copy(m.hi[img.hiOff:], img.hi)
	m.hiDirty = img.hiOff
	clear(m.pages)
	m.frozen = img.pages
	m.cowPages = 0
	return true
}

// CowPages reports how many frozen pages this memory has privatised by
// writing to them since the last restore.
func (m *Memory) CowPages() uint64 { return m.cowPages }
