// Package mem provides a model of 32-bit physical memory.
//
// The simulated machine addresses a full 4 GiB physical space, but real
// workloads touch only a few megabytes in two clusters: the low
// code/data/heap span and the stack window just below the stack top. Those
// two regions can be backed by contiguous []byte arenas (NewDense), which
// turns the per-byte map lookup of the sparse store into a bounds check
// and an array index. Addresses outside the arenas spill to the original
// lazily-allocated page map, so the full 4 GiB space keeps working.
//
// Physical memory itself never faults: protection is enforced above it,
// by segmentation (internal/x86seg) and paging (internal/paging).
package mem

import "encoding/binary"

// PageSize is the allocation granule of the sparse store. It matches the
// x86 page size so the paging layer maps 1:1 onto backing chunks.
const PageSize = 4096

// Memory is a byte-addressable 32-bit physical memory: up to two dense
// arenas plus a sparse page map for everything else. The zero value is a
// purely sparse memory, ready to use. Memory is not safe for concurrent
// use.
type Memory struct {
	// lo backs [0, len(lo)); lo4 and lo2 are len(lo)-3 and len(lo)-1,
	// precomputed so the word fast paths are a single compare (they are 0
	// when the arena is absent or too small, which safely fails the
	// unsigned compare).
	lo  []byte
	lo4 uint32
	lo2 uint32

	// hi backs [hiBase, hiBase+len(hi)) — the stack window.
	hi     []byte
	hiBase uint32
	hi4    uint32
	hi2    uint32

	// Dirty watermarks bound the spans Reset must zero. The lo arena is
	// written from the bottom up (code, data, heap), so one high-water
	// mark — the end of the highest write — covers it. The hi arena is a
	// stack growing down from the arena top, so a low-water mark — the
	// offset of the lowest write — covers [loMark, len(hi)). Every write
	// fast path is fully inside one arena, so the marks are exact, not
	// conservative.
	loDirty uint32 // lo[:loDirty] may be nonzero
	hiDirty uint32 // hi[hiDirty:] may be nonzero

	pages map[uint32]*[PageSize]byte

	// frozen is an immutable page map installed by Image.RestoreInto,
	// shared read-only with the image (and every other memory restored
	// from it). Reads fall through to it; the first write to a frozen
	// page copies it into pages (copy-on-write) and bumps cowPages.
	frozen   map[uint32]*[PageSize]byte
	cowPages uint64
}

// Geometry identifies the arena layout of a dense memory: two Memory
// values with equal Geometry are interchangeable as machine backing
// stores (after Reset). The zero Geometry is a purely sparse memory.
type Geometry struct {
	LoSize uint32
	HiBase uint32
	HiSize uint32
}

// Geometry returns the arena layout this memory was built with. HiBase
// is the page-truncated base actually in use, so feeding the result back
// through NewDense reproduces an identical layout.
func (m *Memory) Geometry() Geometry {
	return Geometry{LoSize: uint32(len(m.lo)), HiBase: m.hiBase, HiSize: uint32(len(m.hi))}
}

// New returns an empty, purely sparse physical memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[PageSize]byte)}
}

// NewDense returns a memory whose address ranges [0, loSize) and
// [hiBase, hiBase+hiSize) are arena-backed. Either size may be zero to
// omit that arena. hiBase is truncated to a page boundary so the arena
// edge never splits a naturally aligned word.
func NewDense(loSize uint32, hiBase, hiSize uint32) *Memory {
	m := New()
	if loSize > 0 {
		m.lo = make([]byte, loSize)
		m.recompute()
	}
	if hiSize > 0 {
		m.hi = make([]byte, hiSize)
		m.hiBase = hiBase &^ (PageSize - 1)
		m.recompute()
	}
	m.hiDirty = uint32(len(m.hi))
	return m
}

func (m *Memory) recompute() {
	m.lo4, m.lo2, m.hi4, m.hi2 = 0, 0, 0, 0
	if len(m.lo) >= 4 {
		m.lo4 = uint32(len(m.lo) - 3)
	}
	if len(m.lo) >= 2 {
		m.lo2 = uint32(len(m.lo) - 1)
	}
	if len(m.hi) >= 4 {
		m.hi4 = uint32(len(m.hi) - 3)
	}
	if len(m.hi) >= 2 {
		m.hi2 = uint32(len(m.hi) - 1)
	}
}

func (m *Memory) page(addr uint32, create bool) *[PageSize]byte {
	pn := addr / PageSize
	if p, ok := m.pages[pn]; ok {
		return p
	}
	if fp, ok := m.frozen[pn]; ok {
		if !create {
			// Reads may serve the shared frozen page directly.
			return fp
		}
		// First write to a frozen page: privatise a copy.
		p := new([PageSize]byte)
		*p = *fp
		if m.pages == nil {
			m.pages = make(map[uint32]*[PageSize]byte)
		}
		m.pages[pn] = p
		m.cowPages++
		return p
	}
	if !create {
		return nil
	}
	if m.pages == nil {
		m.pages = make(map[uint32]*[PageSize]byte)
	}
	p := new([PageSize]byte)
	m.pages[pn] = p
	return p
}

// Read8 returns the byte at addr. Unbacked memory reads as zero.
func (m *Memory) Read8(addr uint32) uint8 {
	if addr < uint32(len(m.lo)) {
		return m.lo[addr]
	}
	if d := addr - m.hiBase; d < uint32(len(m.hi)) {
		return m.hi[d]
	}
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%PageSize]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v uint8) {
	if addr < uint32(len(m.lo)) {
		m.lo[addr] = v
		if addr >= m.loDirty {
			m.loDirty = addr + 1
		}
		return
	}
	if d := addr - m.hiBase; d < uint32(len(m.hi)) {
		m.hi[d] = v
		if d < m.hiDirty {
			m.hiDirty = d
		}
		return
	}
	m.page(addr, true)[addr%PageSize] = v
}

// Read16 returns the little-endian 16-bit value at addr.
// The access may straddle a page or arena boundary.
func (m *Memory) Read16(addr uint32) uint16 {
	if addr < m.lo2 {
		return binary.LittleEndian.Uint16(m.lo[addr:])
	}
	if d := addr - m.hiBase; d < m.hi2 {
		return binary.LittleEndian.Uint16(m.hi[d:])
	}
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores v little-endian at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	if addr < m.lo2 {
		binary.LittleEndian.PutUint16(m.lo[addr:], v)
		if addr+2 > m.loDirty {
			m.loDirty = addr + 2
		}
		return
	}
	if d := addr - m.hiBase; d < m.hi2 {
		binary.LittleEndian.PutUint16(m.hi[d:], v)
		if d < m.hiDirty {
			m.hiDirty = d
		}
		return
	}
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Read32Fast, Write32Fast, Read8Fast and Write8Fast are the inlinable
// arena fast paths for the tier-2 superblock engine: each handles only
// accesses that land wholly inside a dense arena and reports false
// otherwise, so the caller falls back to the full accessor. Their
// behaviour (including the dirty watermarks) is a strict subset of the
// corresponding Read/Write method.

// DenseWindows exposes the arena slices and their word-access bounds for
// callers that fuse the arena bounds check into their own compare (the
// tier-2 run loop). Conventions match the internal fast paths: a 4-byte
// access at address a is wholly inside the lo arena iff a < lo4, and
// wholly inside the hi arena iff a-hiBase < hi4. The slices alias the
// live arenas and stay valid for the life of the Memory.
func (m *Memory) DenseWindows() (lo, hi []byte, lo4, hiBase, hi4 uint32) {
	return m.lo, m.hi, m.lo4, m.hiBase, m.hi4
}

func (m *Memory) Read32Fast(addr uint32) (uint32, bool) {
	if addr < m.lo4 {
		return binary.LittleEndian.Uint32(m.lo[addr:]), true
	}
	if d := addr - m.hiBase; d < m.hi4 {
		return binary.LittleEndian.Uint32(m.hi[d:]), true
	}
	return 0, false
}

func (m *Memory) Write32Fast(addr uint32, v uint32) bool {
	if addr < m.lo4 {
		binary.LittleEndian.PutUint32(m.lo[addr:], v)
		if addr+4 > m.loDirty {
			m.loDirty = addr + 4
		}
		return true
	}
	if d := addr - m.hiBase; d < m.hi4 {
		binary.LittleEndian.PutUint32(m.hi[d:], v)
		if d < m.hiDirty {
			m.hiDirty = d
		}
		return true
	}
	return false
}

func (m *Memory) Read8Fast(addr uint32) (uint8, bool) {
	if addr < uint32(len(m.lo)) {
		return m.lo[addr], true
	}
	if d := addr - m.hiBase; d < uint32(len(m.hi)) {
		return m.hi[d], true
	}
	return 0, false
}

func (m *Memory) Write8Fast(addr uint32, v uint8) bool {
	if addr < uint32(len(m.lo)) {
		m.lo[addr] = v
		if addr >= m.loDirty {
			m.loDirty = addr + 1
		}
		return true
	}
	if d := addr - m.hiBase; d < uint32(len(m.hi)) {
		m.hi[d] = v
		if d < m.hiDirty {
			m.hiDirty = d
		}
		return true
	}
	return false
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr < m.lo4 {
		return binary.LittleEndian.Uint32(m.lo[addr:])
	}
	if d := addr - m.hiBase; d < m.hi4 {
		return binary.LittleEndian.Uint32(m.hi[d:])
	}
	return m.read32Slow(addr)
}

func (m *Memory) read32Slow(addr uint32) uint32 {
	if addr%PageSize <= PageSize-4 && addr >= uint32(len(m.lo)) && addr-m.hiBase >= uint32(len(m.hi)) {
		if p := m.page(addr, false); p != nil {
			off := addr % PageSize
			return binary.LittleEndian.Uint32(p[off : off+4])
		}
		// The whole aligned word is sparse and unbacked, but a byte of it
		// could live in an arena when the access straddles an arena edge;
		// only the all-sparse case may short-circuit to zero.
		if !m.straddlesArena(addr, 4) {
			return 0
		}
	}
	return uint32(m.Read8(addr)) | uint32(m.Read8(addr+1))<<8 |
		uint32(m.Read8(addr+2))<<16 | uint32(m.Read8(addr+3))<<24
}

// Write32 stores v little-endian at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr < m.lo4 {
		binary.LittleEndian.PutUint32(m.lo[addr:], v)
		if addr+4 > m.loDirty {
			m.loDirty = addr + 4
		}
		return
	}
	if d := addr - m.hiBase; d < m.hi4 {
		binary.LittleEndian.PutUint32(m.hi[d:], v)
		if d < m.hiDirty {
			m.hiDirty = d
		}
		return
	}
	m.write32Slow(addr, v)
}

func (m *Memory) write32Slow(addr uint32, v uint32) {
	if addr%PageSize <= PageSize-4 && addr >= uint32(len(m.lo)) && addr-m.hiBase >= uint32(len(m.hi)) &&
		!m.straddlesArena(addr, 4) {
		p := m.page(addr, true)
		off := addr % PageSize
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return
	}
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
	m.Write8(addr+2, uint8(v>>16))
	m.Write8(addr+3, uint8(v>>24))
}

// straddlesArena reports whether any byte of [addr, addr+n) falls inside
// an arena while the first byte does not (the caller has already
// established addr itself is outside both arenas).
func (m *Memory) straddlesArena(addr, n uint32) bool {
	for i := uint32(1); i < n; i++ {
		a := addr + i
		if a < uint32(len(m.lo)) || a-m.hiBase < uint32(len(m.hi)) {
			return true
		}
	}
	return false
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint32(i), v)
	}
}

// PagesAllocated reports how many sparse backing pages have been
// materialised. Arena-backed ranges are excluded: they are one host
// allocation regardless of use. Useful for space-overhead accounting in
// benchmarks of the sparse store.
func (m *Memory) PagesAllocated() int {
	return len(m.pages)
}

// Reset returns the memory to all-zero in place: sparse pages are
// dropped (the map's buckets are kept for reuse) and each arena is
// zeroed only up to its dirty watermark, so recycling a machine costs
// proportional to the bytes it actually wrote, not the arena sizes.
func (m *Memory) Reset() {
	clear(m.pages)
	m.frozen = nil
	m.cowPages = 0
	if m.loDirty > 0 {
		clear(m.lo[:m.loDirty])
		m.loDirty = 0
	}
	if d := m.hiDirty; d < uint32(len(m.hi)) {
		clear(m.hi[d:])
		m.hiDirty = uint32(len(m.hi))
	}
}
