// Package mem provides a sparse model of 32-bit physical memory.
//
// The simulated machine addresses a full 4 GiB physical space, but real
// workloads touch only a few megabytes, so storage is allocated lazily in
// page-sized chunks. Physical memory itself never faults: protection is
// enforced above it, by segmentation (internal/x86seg) and paging
// (internal/paging).
package mem

// PageSize is the allocation granule of the sparse store. It matches the
// x86 page size so the paging layer maps 1:1 onto backing chunks.
const PageSize = 4096

// Memory is a sparse byte-addressable 32-bit physical memory.
// The zero value is ready to use. Memory is not safe for concurrent use.
type Memory struct {
	pages map[uint32]*[PageSize]byte
}

// New returns an empty physical memory.
func New() *Memory {
	return &Memory{pages: make(map[uint32]*[PageSize]byte)}
}

func (m *Memory) page(addr uint32, create bool) *[PageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint32]*[PageSize]byte)
	}
	pn := addr / PageSize
	p, ok := m.pages[pn]
	if !ok {
		if !create {
			return nil
		}
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// Read8 returns the byte at addr. Unbacked memory reads as zero.
func (m *Memory) Read8(addr uint32) uint8 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%PageSize]
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr uint32, v uint8) {
	m.page(addr, true)[addr%PageSize] = v
}

// Read16 returns the little-endian 16-bit value at addr.
// The access may straddle a page boundary.
func (m *Memory) Read16(addr uint32) uint16 {
	return uint16(m.Read8(addr)) | uint16(m.Read8(addr+1))<<8
}

// Write16 stores v little-endian at addr.
func (m *Memory) Write16(addr uint32, v uint16) {
	m.Write8(addr, uint8(v))
	m.Write8(addr+1, uint8(v>>8))
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr%PageSize <= PageSize-4 {
		if p := m.page(addr, false); p != nil {
			off := addr % PageSize
			return uint32(p[off]) | uint32(p[off+1])<<8 | uint32(p[off+2])<<16 | uint32(p[off+3])<<24
		}
		return 0
	}
	return uint32(m.Read16(addr)) | uint32(m.Read16(addr+2))<<16
}

// Write32 stores v little-endian at addr.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr%PageSize <= PageSize-4 {
		p := m.page(addr, true)
		off := addr % PageSize
		p[off] = uint8(v)
		p[off+1] = uint8(v >> 8)
		p[off+2] = uint8(v >> 16)
		p[off+3] = uint8(v >> 24)
		return
	}
	m.Write16(addr, uint16(v))
	m.Write16(addr+2, uint16(v>>16))
}

// ReadBytes copies n bytes starting at addr into a new slice.
func (m *Memory) ReadBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + uint32(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint32, b []byte) {
	for i, v := range b {
		m.Write8(addr+uint32(i), v)
	}
}

// PagesAllocated reports how many backing pages have been materialised.
// Useful for space-overhead accounting in benchmarks.
func (m *Memory) PagesAllocated() int {
	return len(m.pages)
}

// Reset drops all backing pages, returning the memory to all-zero.
func (m *Memory) Reset() {
	m.pages = make(map[uint32]*[PageSize]byte)
}
