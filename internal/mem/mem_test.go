package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.Read32(0x1234); got != 0 {
		t.Fatalf("unbacked read = %#x, want 0", got)
	}
	m.Write32(0x1234, 0xdeadbeef)
	if got := m.Read32(0x1234); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, want 0xdeadbeef", got)
	}
}

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write8(10, 0xab)
	if got := m.Read8(10); got != 0xab {
		t.Errorf("Read8 = %#x, want 0xab", got)
	}
	m.Write16(20, 0x1234)
	if got := m.Read16(20); got != 0x1234 {
		t.Errorf("Read16 = %#x, want 0x1234", got)
	}
	m.Write32(30, 0x89abcdef)
	if got := m.Read32(30); got != 0x89abcdef {
		t.Errorf("Read32 = %#x, want 0x89abcdef", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write32(0, 0x04030201)
	for i := uint32(0); i < 4; i++ {
		if got := m.Read8(i); got != uint8(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint32(PageSize - 2) // 32-bit access straddles first page boundary
	m.Write32(addr, 0xcafebabe)
	if got := m.Read32(addr); got != 0xcafebabe {
		t.Fatalf("straddling Read32 = %#x, want 0xcafebabe", got)
	}
	if got := m.PagesAllocated(); got != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New()
	data := []byte("segmentation hardware")
	m.WriteBytes(0x2000, data)
	if got := string(m.ReadBytes(0x2000, len(data))); got != string(data) {
		t.Fatalf("ReadBytes = %q, want %q", got, data)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Write32(0x100, 42)
	m.Reset()
	if got := m.Read32(0x100); got != 0 {
		t.Fatalf("after Reset, Read32 = %d, want 0", got)
	}
	if got := m.PagesAllocated(); got != 0 {
		t.Fatalf("after Reset, PagesAllocated = %d, want 0", got)
	}
}

func TestSparseAllocation(t *testing.T) {
	m := New()
	m.Write8(0, 1)
	m.Write8(0xfffffff0, 2) // far end of the 32-bit space
	if got := m.PagesAllocated(); got != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", got)
	}
}

func TestQuickWord32RoundTrip(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDisjointWritesIndependent(t *testing.T) {
	f := func(a, b uint32, va, vb uint32) bool {
		if a == b || (a < b && b-a < 4) || (b < a && a-b < 4) {
			return true // overlapping accesses are allowed to interfere
		}
		m := New()
		m.Write32(a, va)
		m.Write32(b, vb)
		return m.Read32(a) == va && m.Read32(b) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// denseForTest returns a small dense memory: lo arena [0, 2 pages),
// stack window [0x10000, 0x10000+1 page).
func denseForTest() *Memory {
	return NewDense(2*PageSize, 0x10000, PageSize)
}

func TestDenseBasicWidths(t *testing.T) {
	m := denseForTest()
	m.Write8(10, 0xab)
	m.Write16(20, 0x1234)
	m.Write32(30, 0x89abcdef)
	if got := m.Read8(10); got != 0xab {
		t.Errorf("Read8 = %#x, want 0xab", got)
	}
	if got := m.Read16(20); got != 0x1234 {
		t.Errorf("Read16 = %#x, want 0x1234", got)
	}
	if got := m.Read32(30); got != 0x89abcdef {
		t.Errorf("Read32 = %#x, want 0x89abcdef", got)
	}
	// Stack window.
	m.Write32(0x10004, 0xfeedface)
	if got := m.Read32(0x10004); got != 0xfeedface {
		t.Errorf("stack Read32 = %#x, want 0xfeedface", got)
	}
}

func TestDenseArenaEdgeStraddles(t *testing.T) {
	m := denseForTest()
	loEnd := uint32(2 * PageSize)
	// Each access has its first bytes in the lo arena and its last bytes
	// in the sparse spill.
	for _, tc := range []struct {
		addr uint32
		n    uint32
	}{
		{loEnd - 1, 2}, {loEnd - 1, 4}, {loEnd - 2, 4}, {loEnd - 3, 4},
	} {
		var want uint32 = 0x04030201
		switch tc.n {
		case 2:
			m.Write16(tc.addr, uint16(want))
			if got := uint32(m.Read16(tc.addr)); got != want&0xffff {
				t.Errorf("Read16(%#x) = %#x, want %#x", tc.addr, got, want&0xffff)
			}
		case 4:
			m.Write32(tc.addr, want)
			if got := m.Read32(tc.addr); got != want {
				t.Errorf("Read32(%#x) = %#x, want %#x", tc.addr, got, want)
			}
		}
		// Byte-level agreement across the edge.
		for i := uint32(0); i < tc.n; i++ {
			if got := m.Read8(tc.addr + i); got != uint8(0x01+i) {
				t.Errorf("Read8(%#x+%d) = %#x, want %#x", tc.addr, i, got, 0x01+i)
			}
		}
	}
}

func TestDenseStackWindowEdges(t *testing.T) {
	m := denseForTest()
	// Straddle into the stack window from below (sparse -> hi arena) and
	// out the top (hi arena -> sparse).
	for _, addr := range []uint32{0x10000 - 2, 0x10000 - 1, 0x10000 + PageSize - 2, 0x10000 + PageSize - 1} {
		m.Write32(addr, 0xa1b2c3d4)
		if got := m.Read32(addr); got != 0xa1b2c3d4 {
			t.Fatalf("Read32(%#x) = %#x, want 0xa1b2c3d4", addr, got)
		}
	}
}

func TestDenseUnbackedReadsZero(t *testing.T) {
	m := denseForTest()
	for _, addr := range []uint32{0, 2*PageSize - 1, 2 * PageSize, 0xfff0, 0x10000, 0x20000, 0xfffffff0} {
		if got := m.Read32(addr); got != 0 {
			t.Fatalf("unbacked Read32(%#x) = %#x, want 0", addr, got)
		}
		if got := m.Read8(addr); got != 0 {
			t.Fatalf("unbacked Read8(%#x) = %#x, want 0", addr, got)
		}
	}
}

func TestDenseReset(t *testing.T) {
	m := denseForTest()
	m.Write32(0x40, 42)    // lo arena
	m.Write32(0x10040, 43) // stack window
	m.Write32(0x20000, 44) // sparse spill
	m.Reset()
	for _, addr := range []uint32{0x40, 0x10040, 0x20000} {
		if got := m.Read32(addr); got != 0 {
			t.Fatalf("after Reset, Read32(%#x) = %d, want 0", addr, got)
		}
	}
}

// TestDenseSparseEquivalence drives a dense and a sparse memory with the
// same pseudo-random access sequence and requires identical results. The
// address distribution clusters around the arena edges so straddles and
// spills are exercised.
func TestDenseSparseEquivalence(t *testing.T) {
	dense := denseForTest()
	sparse := New()
	// Deterministic LCG so the test is reproducible.
	state := uint32(12345)
	next := func() uint32 {
		state = state*1664525 + 1013904223
		return state
	}
	hotspots := []uint32{0, PageSize, 2 * PageSize, 0x10000 - 4, 0x10000, 0x10000 + PageSize - 4, 0x30000}
	addrOf := func(r uint32) uint32 {
		base := hotspots[r%uint32(len(hotspots))]
		return base + (r>>8)%16 - 8 + 4 // wander +-8 around the hotspot, offset to avoid underflow at 0
	}
	for i := 0; i < 20000; i++ {
		r := next()
		addr := addrOf(r)
		v := next()
		switch r % 6 {
		case 0:
			dense.Write8(addr, uint8(v))
			sparse.Write8(addr, uint8(v))
		case 1:
			dense.Write16(addr, uint16(v))
			sparse.Write16(addr, uint16(v))
		case 2:
			dense.Write32(addr, v)
			sparse.Write32(addr, v)
		case 3:
			if g, w := dense.Read8(addr), sparse.Read8(addr); g != w {
				t.Fatalf("op %d: Read8(%#x) dense=%#x sparse=%#x", i, addr, g, w)
			}
		case 4:
			if g, w := dense.Read16(addr), sparse.Read16(addr); g != w {
				t.Fatalf("op %d: Read16(%#x) dense=%#x sparse=%#x", i, addr, g, w)
			}
		case 5:
			if g, w := dense.Read32(addr), sparse.Read32(addr); g != w {
				t.Fatalf("op %d: Read32(%#x) dense=%#x sparse=%#x", i, addr, g, w)
			}
		}
	}
	// Final byte-for-byte sweep over every touched region.
	for _, base := range hotspots {
		lo := base - 16 + 16 // clamp below to avoid uint wrap at 0
		if base >= 16 {
			lo = base - 16
		}
		for a := lo; a < base+32; a++ {
			if g, w := dense.Read8(a), sparse.Read8(a); g != w {
				t.Fatalf("sweep: Read8(%#x) dense=%#x sparse=%#x", a, g, w)
			}
		}
	}
}

func TestQuickDenseWord32RoundTrip(t *testing.T) {
	m := denseForTest()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
