package mem

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if got := m.Read32(0x1234); got != 0 {
		t.Fatalf("unbacked read = %#x, want 0", got)
	}
	m.Write32(0x1234, 0xdeadbeef)
	if got := m.Read32(0x1234); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x, want 0xdeadbeef", got)
	}
}

func TestReadWriteWidths(t *testing.T) {
	m := New()
	m.Write8(10, 0xab)
	if got := m.Read8(10); got != 0xab {
		t.Errorf("Read8 = %#x, want 0xab", got)
	}
	m.Write16(20, 0x1234)
	if got := m.Read16(20); got != 0x1234 {
		t.Errorf("Read16 = %#x, want 0x1234", got)
	}
	m.Write32(30, 0x89abcdef)
	if got := m.Read32(30); got != 0x89abcdef {
		t.Errorf("Read32 = %#x, want 0x89abcdef", got)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write32(0, 0x04030201)
	for i := uint32(0); i < 4; i++ {
		if got := m.Read8(i); got != uint8(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, got, i+1)
		}
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint32(PageSize - 2) // 32-bit access straddles first page boundary
	m.Write32(addr, 0xcafebabe)
	if got := m.Read32(addr); got != 0xcafebabe {
		t.Fatalf("straddling Read32 = %#x, want 0xcafebabe", got)
	}
	if got := m.PagesAllocated(); got != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New()
	data := []byte("segmentation hardware")
	m.WriteBytes(0x2000, data)
	if got := string(m.ReadBytes(0x2000, len(data))); got != string(data) {
		t.Fatalf("ReadBytes = %q, want %q", got, data)
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Write32(0x100, 42)
	m.Reset()
	if got := m.Read32(0x100); got != 0 {
		t.Fatalf("after Reset, Read32 = %d, want 0", got)
	}
	if got := m.PagesAllocated(); got != 0 {
		t.Fatalf("after Reset, PagesAllocated = %d, want 0", got)
	}
}

func TestSparseAllocation(t *testing.T) {
	m := New()
	m.Write8(0, 1)
	m.Write8(0xfffffff0, 2) // far end of the 32-bit space
	if got := m.PagesAllocated(); got != 2 {
		t.Fatalf("PagesAllocated = %d, want 2", got)
	}
}

func TestQuickWord32RoundTrip(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDisjointWritesIndependent(t *testing.T) {
	f := func(a, b uint32, va, vb uint32) bool {
		if a == b || (a < b && b-a < 4) || (b < a && a-b < 4) {
			return true // overlapping accesses are allowed to interfere
		}
		m := New()
		m.Write32(a, va)
		m.Write32(b, vb)
		return m.Read32(a) == va && m.Read32(b) == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
