package ir

import (
	"fmt"
	"strings"
)

// Dump renders the module as a human-readable listing, one fragment per
// section, blocks numbered in layout order with their labels, loop
// depth, check-id and tag annotations. cashrun -dump-ir prints it.
func (m *Module) Dump() string {
	var sb strings.Builder
	for _, f := range m.Frags {
		kind := "fragment"
		if f.IsFunc {
			kind = "func"
		}
		fmt.Fprintf(&sb, "%s %s  (%d blocks, %d loops)\n", kind, f.Name, len(f.Blocks), len(f.Loops))
		depth := loopDepths(f)
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:", bi)
			for _, l := range b.Labels {
				fmt.Fprintf(&sb, " %s", l)
			}
			if d := depth[b]; d > 0 {
				fmt.Fprintf(&sb, "  ; loop depth %d", d)
			}
			sb.WriteByte('\n')
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				fmt.Fprintf(&sb, "    %s", in.Instr.String())
				if in.CheckID != 0 {
					fmt.Fprintf(&sb, "  ; check %d", in.CheckID)
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// loopDepths computes each block's innermost loop depth.
func loopDepths(f *Fragment) map[*Block]int {
	depth := make(map[*Block]int)
	for _, l := range f.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		for _, b := range l.Blocks {
			if d > depth[b] {
				depth[b] = d
			}
		}
	}
	return depth
}
