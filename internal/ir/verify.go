package ir

import "fmt"

// Verify checks the module's structural invariants. The compiler runs
// it after lowering and after every optimization pass, so a pass that
// corrupts the representation fails loudly instead of miscompiling:
//
//   - labels are unique module-wide and every branch target resolves;
//   - branches carry their symbolic target and only a block's last
//     instruction may transfer control away (calls may sit anywhere);
//   - every fragment ends in an instruction control cannot fall out of;
//   - the instructions of one check id form one contiguous run;
//   - the loop tree is consistent: header and latch are members, every
//     member belongs to the fragment, and nested loops are contained in
//     their parents.
func Verify(m *Module) error {
	labels := make(map[string]string) // label -> fragment name
	for _, f := range m.Frags {
		blockSet := make(map[*Block]bool, len(f.Blocks))
		for _, b := range f.Blocks {
			blockSet[b] = true
			for _, l := range b.Labels {
				if prev, dup := labels[l]; dup {
					return fmt.Errorf("ir: label %q bound in both %q and %q", l, prev, f.Name)
				}
				labels[l] = f.Name
			}
		}
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.IsBranch() {
					if in.FixupLabel == "" {
						return fmt.Errorf("ir: %s block %d instr %d: %s without a symbolic target", f.Name, bi, ii, in.Op)
					}
				} else if in.FixupLabel != "" {
					return fmt.Errorf("ir: %s block %d instr %d: non-branch %s carries target %q", f.Name, bi, ii, in.Op, in.FixupLabel)
				}
				if EndsBlock(in.Op) && ii != len(b.Instrs)-1 {
					return fmt.Errorf("ir: %s block %d: %s at %d is not the block's last instruction", f.Name, bi, in.Op, ii)
				}
			}
		}
		if n := len(f.Blocks); n > 0 {
			last := f.Blocks[n-1]
			if len(last.Instrs) == 0 || !IsUncondExit(last.Instrs[len(last.Instrs)-1].Op) {
				return fmt.Errorf("ir: fragment %q does not end in an unconditional exit", f.Name)
			}
		}
		if err := verifyCheckRuns(f); err != nil {
			return err
		}
		for li, l := range f.Loops {
			if l.Header == nil || l.Latch == nil {
				return fmt.Errorf("ir: %s loop %d: missing header or latch", f.Name, li)
			}
			if !l.Contains(l.Header) || !l.Contains(l.Latch) {
				return fmt.Errorf("ir: %s loop %d: header or latch not a member", f.Name, li)
			}
			for _, b := range l.Blocks {
				if !blockSet[b] {
					return fmt.Errorf("ir: %s loop %d: member block not in fragment", f.Name, li)
				}
				if l.Parent != nil && !l.Parent.Contains(b) {
					return fmt.Errorf("ir: %s loop %d: member block not in parent loop", f.Name, li)
				}
			}
		}
	}
	for _, f := range m.Frags {
		for bi, b := range f.Blocks {
			for ii := range b.Instrs {
				in := &b.Instrs[ii]
				if in.FixupLabel != "" {
					if _, ok := labels[in.FixupLabel]; !ok {
						return fmt.Errorf("ir: %s block %d instr %d: unresolved target %q", f.Name, bi, ii, in.FixupLabel)
					}
				}
			}
		}
	}
	return nil
}

// verifyCheckRuns checks that each nonzero check id covers exactly one
// contiguous run of the fragment's layout-order instruction stream —
// the property that makes "delete every instruction with this id" a
// well-defined transformation.
func verifyCheckRuns(f *Fragment) error {
	closed := make(map[int]bool)
	cur := 0
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			id := b.Instrs[ii].CheckID
			if id == cur {
				continue
			}
			if cur != 0 {
				closed[cur] = true
			}
			if id != 0 {
				if closed[id] {
					return fmt.Errorf("ir: %s block %d instr %d: check %d is not contiguous", f.Name, bi, ii, id)
				}
			}
			cur = id
		}
	}
	return nil
}
