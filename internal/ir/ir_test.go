package ir

import (
	"strings"
	"testing"

	"cash/internal/vm"
	"cash/internal/x86seg"
)

// buildLinear assembles a tiny straight-line fragment ending in HLT.
func buildLinear(t *testing.T) *Module {
	t.Helper()
	b := NewBuilder()
	b.BeginFragment("(main)")
	b.Label("start")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(1))
	b.Op(vm.ADD, vm.R(vm.EAX), vm.I(2))
	b.Emit(vm.Instr{Op: vm.HLT})
	m := b.Module()
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m
}

func TestEmitToMatchesDirectBuilder(t *testing.T) {
	// The same instruction stream emitted through the IR (with blocks,
	// labels and a branch) and directly into a vm.Builder must produce
	// identical programs.
	b := NewBuilder()
	b.BeginFragment("(main)")
	b.Label("entry")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(0))
	b.Label("loop")
	b.Op(vm.ADD, vm.R(vm.EAX), vm.I(1))
	b.Op(vm.CMP, vm.R(vm.EAX), vm.I(10))
	b.Jump(vm.JL, "loop")
	b.Emit(vm.Instr{Op: vm.HLT})
	m := b.Module()
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}

	vb := vm.NewBuilder()
	entry := m.EmitTo(vb, "(main)")
	if entry != 0 {
		t.Fatalf("entry = %d, want 0", entry)
	}
	got, err := vb.Finish("ir")
	if err != nil {
		t.Fatal(err)
	}

	db := vm.NewBuilder()
	db.Label("entry")
	db.Op(vm.MOV, vm.R(vm.EAX), vm.I(0))
	db.Label("loop")
	db.Op(vm.ADD, vm.R(vm.EAX), vm.I(1))
	db.Op(vm.CMP, vm.R(vm.EAX), vm.I(10))
	db.Jump(vm.JL, "loop")
	db.Emit(vm.Instr{Op: vm.HLT})
	want, err := db.Finish("direct")
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Instrs) != len(want.Instrs) {
		t.Fatalf("instr count %d vs %d", len(got.Instrs), len(want.Instrs))
	}
	for i := range got.Instrs {
		g, w := got.Instrs[i], want.Instrs[i]
		if g.Op != w.Op || g.Dst != w.Dst || g.Src != w.Src {
			t.Fatalf("instr %d differs: %+v vs %+v", i, g, w)
		}
	}
}

func TestBuilderSealsOnTerminators(t *testing.T) {
	b := NewBuilder()
	b.BeginFragment("f")
	b.Label("a")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(1))
	b.Jump(vm.JMP, "b")
	b.Label("b")
	b.Emit(vm.Instr{Op: vm.RET})
	m := b.Module()
	f := m.Frags[0]
	if len(f.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (JMP must seal)", len(f.Blocks))
	}
	if len(f.Blocks[0].Instrs) != 2 || f.Blocks[0].Instrs[1].Op != vm.JMP {
		t.Fatalf("block 0 should end with the JMP: %+v", f.Blocks[0].Instrs)
	}
}

func TestVerifyRejectsMalformed(t *testing.T) {
	// Branch without a fixup label.
	b := NewBuilder()
	b.BeginFragment("f")
	b.Label("x")
	b.Emit(vm.Instr{Op: vm.JMP})
	b.Emit(vm.Instr{Op: vm.HLT})
	m := b.Module()
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "symbolic target") {
		t.Fatalf("want missing-target error, got %v", err)
	}

	// Duplicate label across fragments.
	b = NewBuilder()
	b.BeginFragment("f")
	b.Label("dup")
	b.Emit(vm.Instr{Op: vm.HLT})
	b.BeginFragment("g")
	b.Label("dup")
	b.Emit(vm.Instr{Op: vm.HLT})
	m = b.Module()
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "dup") {
		t.Fatalf("want duplicate-label error, got %v", err)
	}

	// Unresolved branch target.
	b = NewBuilder()
	b.BeginFragment("f")
	b.Label("x")
	b.Jump(vm.JMP, "nowhere")
	b.Emit(vm.Instr{Op: vm.HLT})
	m = b.Module()
	if err := Verify(m); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("want unresolved-target error, got %v", err)
	}

	// Fragment not ending in an unconditional exit.
	b = NewBuilder()
	b.BeginFragment("f")
	b.Label("x")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(1))
	m = b.Module()
	if err := Verify(m); err == nil {
		t.Fatal("want missing-exit error, got nil")
	}
}

func TestCFGAndDominators(t *testing.T) {
	// Diamond: entry -> (then | else) -> join.
	b := NewBuilder()
	b.BeginFragment("f")
	b.Label("entry")
	b.Op(vm.CMP, vm.R(vm.EAX), vm.I(0))
	b.Jump(vm.JE, "else")
	b.Op(vm.MOV, vm.R(vm.EBX), vm.I(1))
	b.Jump(vm.JMP, "join")
	b.Label("else")
	b.Op(vm.MOV, vm.R(vm.EBX), vm.I(2))
	b.Label("join")
	b.Emit(vm.Instr{Op: vm.RET})
	m := b.Module()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	f := m.Frags[0]
	g := f.BuildCFG()
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if len(g.Succs[entry]) != 2 {
		t.Fatalf("entry succs = %d, want 2", len(g.Succs[entry]))
	}
	if len(g.Preds[join]) != 2 {
		t.Fatalf("join preds = %d, want 2", len(g.Preds[join]))
	}
	dom := g.Dominators()
	if !dom[join][entry] {
		t.Error("entry must dominate join")
	}
	if dom[join][then] || dom[join][els] {
		t.Error("neither branch arm may dominate the join")
	}
	if !dom[then][then] {
		t.Error("every block dominates itself")
	}
}

func TestLoopTreeAndMembership(t *testing.T) {
	b := NewBuilder()
	b.BeginFragment("f")
	b.Label("pre")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(0))
	outer := b.BeginLoop()
	b.Label("outer")
	b.SetLoopHeader(outer)
	b.Op(vm.CMP, vm.R(vm.EAX), vm.I(10))
	b.Jump(vm.JGE, "done")
	inner := b.BeginLoop()
	b.Label("inner")
	b.SetLoopHeader(inner)
	b.Op(vm.ADD, vm.R(vm.EAX), vm.I(1))
	b.Op(vm.CMP, vm.R(vm.EAX), vm.I(5))
	b.Jump(vm.JL, "inner")
	b.EndLoop()
	b.Jump(vm.JMP, "outer")
	b.EndLoop()
	b.Label("done")
	b.Emit(vm.Instr{Op: vm.RET})
	m := b.Module()
	if err := Verify(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	f := m.Frags[0]
	if len(f.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(f.Loops))
	}
	if f.Loops[1].Parent != f.Loops[0] {
		t.Error("inner loop's parent must be the outer loop")
	}
	for _, l := range f.Loops {
		if l.Header == nil || l.Latch == nil {
			t.Fatalf("loop missing header/latch")
		}
		if !l.Contains(l.Header) || !l.Contains(l.Latch) {
			t.Error("header and latch must be members")
		}
	}
}

func TestInsertBeforeAndCompact(t *testing.T) {
	b := NewBuilder()
	b.BeginFragment("f")
	b.Label("a")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.I(1))
	lp := b.BeginLoop()
	b.Label("h")
	b.SetLoopHeader(lp)
	b.Op(vm.ADD, vm.R(vm.EAX), vm.I(1))
	b.Op(vm.CMP, vm.R(vm.EAX), vm.I(3))
	b.Jump(vm.JL, "h")
	b.EndLoop()
	b.Emit(vm.Instr{Op: vm.HLT})
	m := b.Module()
	f := m.Frags[0]

	pre := &Block{Instrs: []Instr{{Instr: vm.Instr{Op: vm.MOV, Dst: vm.R(vm.EBX), Src: vm.I(7)}}}}
	if !f.InsertBefore(lp.Header, []*Block{pre}) {
		t.Fatal("InsertBefore failed to find the header")
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify after insert: %v", err)
	}
	// The preheader must execute before the loop: it precedes the header
	// in layout.
	var preIdx, headIdx int = -1, -1
	for i, blk := range f.Blocks {
		if blk == pre {
			preIdx = i
		}
		if blk == lp.Header {
			headIdx = i
		}
	}
	if preIdx == -1 || headIdx != preIdx+1 {
		t.Fatalf("preheader at %d, header at %d; want adjacent", preIdx, headIdx)
	}

	// Deleting a block's instructions and compacting removes it.
	pre.Instrs = nil
	before := len(f.Blocks)
	f.Compact()
	if len(f.Blocks) != before-1 {
		t.Fatalf("Compact kept the empty block: %d -> %d", before, len(f.Blocks))
	}
	if err := Verify(m); err != nil {
		t.Fatalf("verify after compact: %v", err)
	}
}

func TestEmitToResolvesSegments(t *testing.T) {
	// Memory operands with segment overrides survive the replay.
	b := NewBuilder()
	b.BeginFragment("(main)")
	b.Label("s")
	b.Op(vm.MOV, vm.R(vm.EAX), vm.M(vm.MemRef{Seg: x86seg.ES, Base: vm.EBX, HasBase: true}))
	b.Emit(vm.Instr{Op: vm.HLT})
	m := buildModuleOK(t, b)
	vb := vm.NewBuilder()
	m.EmitTo(vb, "(main)")
	p, err := vb.Finish("t")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Src.Mem.Seg != x86seg.ES {
		t.Fatalf("segment override lost: %+v", p.Instrs[0])
	}
}

func buildModuleOK(t *testing.T, b *Builder) *Module {
	t.Helper()
	m := b.Module()
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLinearModule(t *testing.T) {
	m := buildLinear(t)
	vb := vm.NewBuilder()
	if at := m.EmitTo(vb, "(main)"); at != 0 {
		t.Fatalf("entry = %d", at)
	}
	if _, err := vb.Finish("t"); err != nil {
		t.Fatal(err)
	}
}
