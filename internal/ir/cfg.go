package ir

import "cash/internal/vm"

// CFG is the control-flow graph of one fragment. Edges that leave the
// fragment (the jump into the shared trap sink, returns, halts) have no
// successor; a conditional jump out of the fragment keeps only its
// fall-through edge.
type CFG struct {
	Frag  *Fragment
	Succs map[*Block][]*Block
	Preds map[*Block][]*Block
}

// BuildCFG computes the fragment's control-flow graph from block
// layout, terminators and label targets.
func (f *Fragment) BuildCFG() *CFG {
	byLabel := make(map[string]*Block)
	for _, b := range f.Blocks {
		for _, l := range b.Labels {
			byLabel[l] = b
		}
	}
	g := &CFG{
		Frag:  f,
		Succs: make(map[*Block][]*Block, len(f.Blocks)),
		Preds: make(map[*Block][]*Block, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		var succs []*Block
		fallthru := func() {
			if i+1 < len(f.Blocks) {
				succs = append(succs, f.Blocks[i+1])
			}
		}
		if n := len(b.Instrs); n == 0 {
			fallthru()
		} else {
			last := &b.Instrs[n-1]
			switch {
			case last.Op == vm.JMP:
				if t := byLabel[last.FixupLabel]; t != nil {
					succs = append(succs, t)
				}
			case IsCondJump(last.Op):
				if t := byLabel[last.FixupLabel]; t != nil {
					succs = append(succs, t)
				}
				fallthru()
			case IsUncondExit(last.Op):
				// RET/HLT/TRAP: no successor.
			default:
				fallthru()
			}
		}
		g.Succs[b] = succs
		for _, s := range succs {
			g.Preds[s] = append(g.Preds[s], b)
		}
	}
	return g
}

// Dominators computes, for every block reachable from the fragment
// entry (the first block), its dominator set, with the straightforward
// iterative dataflow — fragments are small, so O(n²) is fine.
// Unreachable blocks are absent from the result.
func (g *CFG) Dominators() map[*Block]map[*Block]bool {
	blocks := g.Frag.Blocks
	if len(blocks) == 0 {
		return nil
	}
	entry := blocks[0]
	// Reachable set, depth-first.
	reach := map[*Block]bool{entry: true}
	stack := []*Block{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	dom := make(map[*Block]map[*Block]bool, len(blocks))
	dom[entry] = map[*Block]bool{entry: true}
	for _, b := range blocks {
		if b == entry || !reach[b] {
			continue
		}
		all := make(map[*Block]bool, len(blocks))
		for _, x := range blocks {
			if reach[x] {
				all[x] = true
			}
		}
		dom[b] = all
	}
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			if b == entry || !reach[b] {
				continue
			}
			var meet map[*Block]bool
			for _, p := range g.Preds[b] {
				if !reach[p] {
					continue
				}
				if meet == nil {
					meet = make(map[*Block]bool, len(dom[p]))
					for d := range dom[p] {
						meet[d] = true
					}
					continue
				}
				for d := range meet {
					if !dom[p][d] {
						delete(meet, d)
					}
				}
			}
			if meet == nil {
				meet = make(map[*Block]bool)
			}
			meet[b] = true
			if len(meet) != len(dom[b]) {
				dom[b] = meet
				changed = true
				continue
			}
			for d := range meet {
				if !dom[b][d] {
					dom[b] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}
