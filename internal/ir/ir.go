// Package ir is the compiler's intermediate representation: the typed
// instruction stream of one program, structured into basic blocks with an
// explicit control-flow graph and a loop tree, carrying enough
// provenance (check identity, reference tags) for optimization passes to
// transform bound checks soundly.
//
// The representation deliberately stays one-to-one with the target ISA:
// an ir.Instr wraps a vm.Instr, blocks record the exact label-binding
// order, and Module.EmitTo replays everything through a vm.Builder. A
// module that no pass has touched therefore assembles to the
// byte-identical vm.Program the old direct-emission back end produced —
// the property the golden tests pin.
package ir

import "cash/internal/vm"

// Instr is one IR instruction: the target-machine instruction plus the
// provenance the passes need.
type Instr struct {
	vm.Instr
	// FixupLabel is the symbolic branch/call target, resolved to an
	// instruction index at emission ("fn_"-prefixed for calls). Empty
	// for non-control instructions.
	FixupLabel string
	// CheckID groups the instructions of one software bound-check
	// sequence, including its metadata load. Zero means the instruction
	// is not part of a check. A pass that removes a check must remove
	// every instruction carrying its id.
	CheckID int
	// Tag is an opaque annotation the lowering attaches to memory-using
	// instructions (the code generator uses it to mark which object a
	// store goes through). Passes treat a missing tag conservatively.
	Tag any
}

// IsBranch reports whether the instruction transfers control to a label
// (conditional or unconditional jump, or call).
func (in *Instr) IsBranch() bool {
	switch in.Op {
	case vm.JMP, vm.JE, vm.JNE, vm.JL, vm.JLE, vm.JG, vm.JGE,
		vm.JB, vm.JAE, vm.JA, vm.JBE, vm.CALL:
		return true
	}
	return false
}

// EndsBlock reports whether the instruction terminates a basic block:
// any jump (control leaves or may leave the straight line) or an
// instruction execution never falls out of (RET, HLT, TRAP). CALL does
// not end a block — control returns.
func EndsBlock(op vm.Op) bool {
	switch op {
	case vm.JMP, vm.JE, vm.JNE, vm.JL, vm.JLE, vm.JG, vm.JGE,
		vm.JB, vm.JAE, vm.JA, vm.JBE, vm.RET, vm.HLT, vm.TRAP:
		return true
	}
	return false
}

// IsUncondExit reports whether control never falls through the
// instruction to the next one in layout.
func IsUncondExit(op vm.Op) bool {
	switch op {
	case vm.JMP, vm.RET, vm.HLT, vm.TRAP:
		return true
	}
	return false
}

// IsCondJump reports whether op is a conditional jump.
func IsCondJump(op vm.Op) bool {
	switch op {
	case vm.JE, vm.JNE, vm.JL, vm.JLE, vm.JG, vm.JGE,
		vm.JB, vm.JAE, vm.JA, vm.JBE:
		return true
	}
	return false
}

// Block is one basic block: the labels bound to its first instruction
// (in binding order — the vm.Builder attaches only the first to the
// emitted instruction, so order matters for byte-identity) and the
// instructions. Control enters only at the top and leaves only at the
// bottom.
type Block struct {
	Labels []string
	Instrs []Instr
}

// Loop is one node of a fragment's loop tree, built during lowering.
type Loop struct {
	// Parent is the enclosing loop, nil for outermost loops.
	Parent *Loop
	// Header is the block the back edge targets (the condition block).
	Header *Block
	// Latch is the block holding the back-edge jump.
	Latch *Block
	// Blocks are the member blocks in creation order; the header is a
	// member, the preheader is not.
	Blocks []*Block
}

// Contains reports whether b is a member of the loop.
func (l *Loop) Contains(b *Block) bool {
	for _, m := range l.Blocks {
		if m == b {
			return true
		}
	}
	return false
}

// Fragment is one linear code region of the module: a function, or one
// of the anonymous runtime stubs (trap sink, startup). Blocks are in
// layout order; a block without a terminating instruction falls through
// to the next block in the slice.
type Fragment struct {
	Name   string
	IsFunc bool
	Blocks []*Block
	// Loops lists every loop lowered in this fragment, outermost first
	// within each nest.
	Loops []*Loop
}

// InsertBefore splices blocks into the layout immediately before the
// marker block. It reports whether the marker was found.
func (f *Fragment) InsertBefore(marker *Block, blocks []*Block) bool {
	if len(blocks) == 0 {
		return true
	}
	for i, b := range f.Blocks {
		if b == marker {
			out := make([]*Block, 0, len(f.Blocks)+len(blocks))
			out = append(out, f.Blocks[:i]...)
			out = append(out, blocks...)
			out = append(out, f.Blocks[i:]...)
			f.Blocks = out
			return true
		}
	}
	return false
}

// Compact removes blocks that have neither instructions nor labels
// (left behind when a pass deletes a block's whole contents), from the
// layout and from every loop.
func (f *Fragment) Compact() {
	keep := f.Blocks[:0]
	dead := make(map[*Block]bool)
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 && len(b.Labels) == 0 {
			dead[b] = true
			continue
		}
		keep = append(keep, b)
	}
	f.Blocks = keep
	if len(dead) == 0 {
		return
	}
	for _, l := range f.Loops {
		kept := l.Blocks[:0]
		for _, b := range l.Blocks {
			if !dead[b] {
				kept = append(kept, b)
			}
		}
		l.Blocks = kept
	}
}

// Module is a whole lowered program: fragments in emission order.
type Module struct {
	Frags []*Fragment
}

// Fragment finds a fragment by name, or nil.
func (m *Module) Fragment(name string) *Fragment {
	for _, f := range m.Frags {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EmitTo replays the module through a vm.Builder, reproducing the exact
// emission a direct code generator would perform: labels bind in order,
// functions register through Builder.Func, and branch targets re-enter
// the builder's fixup machinery. It returns the instruction index at
// which the fragment named entryFrag begins (-1 if absent).
func (m *Module) EmitTo(vb *vm.Builder, entryFrag string) int {
	entry := -1
	for _, f := range m.Frags {
		if f.Name == entryFrag {
			entry = vb.Len()
		}
		fnLabel := "fn_" + f.Name
		first := true
		for _, blk := range f.Blocks {
			for _, l := range blk.Labels {
				if f.IsFunc && first && l == fnLabel {
					// Builder.Func registers the function and binds
					// fn_<name> itself.
					vb.Func(f.Name)
					continue
				}
				vb.Label(l)
			}
			first = false
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				idx := vb.Emit(in.Instr)
				if in.FixupLabel != "" {
					vb.Fixup(idx, in.FixupLabel)
				}
			}
		}
	}
	return entry
}
