package ir

import "cash/internal/vm"

// SuperblockHints computes the tier-2 superblock candidate regions of a
// module from its loop tree: for every loop, the layout-contiguous span
// of member blocks starting at the header, expressed as the instruction
// offsets Module.EmitTo assigns when emitting into a fresh builder (the
// only way the pipeline emits). Loop bodies are where simulated time
// goes, so loop spans are the whole hint set; the vm trace builder
// trims each span to a straight-line trace and deduplicates by head.
//
// Fragments emit in order and Loops lists outer loops before inner
// ones, so nested loops each get their own region: an outer trace ends
// at its first branch while the inner loop's header anchors the hot
// back-to-back trace.
func (m *Module) SuperblockHints() []vm.Region {
	start := make(map[*Block]int)
	off := 0
	for _, f := range m.Frags {
		for _, b := range f.Blocks {
			start[b] = off
			off += len(b.Instrs)
		}
	}
	var out []vm.Region
	for _, f := range m.Frags {
		for _, l := range f.Loops {
			if l.Header == nil {
				continue
			}
			hi := -1
			for i, b := range f.Blocks {
				if b == l.Header {
					hi = i
					break
				}
			}
			if hi < 0 {
				continue
			}
			end := start[l.Header]
			for i := hi; i < len(f.Blocks) && l.Contains(f.Blocks[i]); i++ {
				end = start[f.Blocks[i]] + len(f.Blocks[i].Instrs)
			}
			if end <= start[l.Header] {
				continue
			}
			name := f.Name
			if len(l.Header.Labels) > 0 {
				name += "/" + l.Header.Labels[0]
			}
			out = append(out, vm.Region{Start: start[l.Header], End: end, Name: name})
		}
	}
	return out
}
