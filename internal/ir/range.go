package ir

import (
	"fmt"
	"sort"
	"strings"
)

// range.go is a small SCEV-style symbolic value-range domain. The back
// end's affine check-consolidation pass ("affine", codegen/affine.go)
// derives {base, stride, trip-count} chains for counted-loop induction
// variables and represents each array-index expression as an Affine
// form over symbols; this file owns the algebra — normalization,
// canonical keys, and checked interval evaluation — while the pass owns
// the mapping from program variables to symbols and the soundness
// conditions for using the resulting ranges.
//
// All arithmetic is performed in int64 and rejected when a value leaves
// ±RangeBudget, so evaluation can never silently wrap: callers either
// get exact integer intervals or an explicit failure.

// Sym identifies a symbolic quantity — an induction variable or a
// loop-invariant scalar — inside an Affine form. Symbol identity and
// meaning belong to the caller; the domain only does arithmetic.
type Sym int

// NoSym marks an absent symbol slot in a Term.
const NoSym Sym = -1

// RangeBudget bounds every value the domain computes with. It is far
// above any legal 32-bit index or scaled address, so hitting it means
// the form is outside what the target's arithmetic can represent
// exactly — the caller must bail rather than reason with wrapped values.
const RangeBudget = int64(1) << 40

// Term is one monomial of an affine form: Coeff, Coeff*X, or
// Coeff*X*Y. Degree-0 constants fold into Affine.Const instead; X is
// always present in a stored term, Y may be NoSym. Terms are kept
// canonical with X <= Y.
type Term struct {
	Coeff int64
	X, Y  Sym
}

func (t Term) degree() int {
	if t.Y != NoSym {
		return 2
	}
	return 1
}

// Affine is the normal form Const + Σ Terms. The zero value is the
// constant 0.
type Affine struct {
	Const int64
	Terms []Term
}

// AffineConst returns the constant form c.
func AffineConst(c int64) Affine { return Affine{Const: c} }

// AffineSym returns the form 1*s.
func AffineSym(s Sym) Affine {
	return Affine{Terms: []Term{{Coeff: 1, X: s, Y: NoSym}}}
}

func inBudget(v int64) bool { return v >= -RangeBudget && v <= RangeBudget }

// addCheck adds with the budget enforced.
func addCheck(a, b int64) (int64, bool) {
	s := a + b
	if !inBudget(a) || !inBudget(b) || !inBudget(s) {
		return 0, false
	}
	return s, true
}

// mulCheck multiplies with the budget enforced. Inputs within
// ±RangeBudget cannot overflow int64 undetected because the product is
// checked by division.
func mulCheck(a, b int64) (int64, bool) {
	if !inBudget(a) || !inBudget(b) {
		return 0, false
	}
	p := a * b
	if a != 0 && p/a != b {
		return 0, false
	}
	if !inBudget(p) {
		return 0, false
	}
	return p, true
}

// normalize sorts terms, merges like monomials, and drops zero
// coefficients. Returns ok=false when a merged coefficient leaves the
// budget.
func (a Affine) normalize() (Affine, bool) {
	if !inBudget(a.Const) {
		return Affine{}, false
	}
	terms := append([]Term(nil), a.Terms...)
	for i := range terms {
		if terms[i].Y != NoSym && terms[i].Y < terms[i].X {
			terms[i].X, terms[i].Y = terms[i].Y, terms[i].X
		}
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].X != terms[j].X {
			return terms[i].X < terms[j].X
		}
		return terms[i].Y < terms[j].Y
	})
	out := terms[:0]
	for _, t := range terms {
		if len(out) > 0 && out[len(out)-1].X == t.X && out[len(out)-1].Y == t.Y {
			c, ok := addCheck(out[len(out)-1].Coeff, t.Coeff)
			if !ok {
				return Affine{}, false
			}
			out[len(out)-1].Coeff = c
			continue
		}
		out = append(out, t)
	}
	kept := out[:0]
	for _, t := range out {
		if t.Coeff != 0 {
			kept = append(kept, t)
		}
	}
	return Affine{Const: a.Const, Terms: append([]Term(nil), kept...)}, true
}

// Add returns a+b in normal form.
func (a Affine) Add(b Affine) (Affine, bool) {
	c, ok := addCheck(a.Const, b.Const)
	if !ok {
		return Affine{}, false
	}
	sum := Affine{Const: c, Terms: append(append([]Term(nil), a.Terms...), b.Terms...)}
	return sum.normalize()
}

// Sub returns a-b in normal form.
func (a Affine) Sub(b Affine) (Affine, bool) {
	nb, ok := b.MulConst(-1)
	if !ok {
		return Affine{}, false
	}
	return a.Add(nb)
}

// MulConst returns a*c in normal form.
func (a Affine) MulConst(c int64) (Affine, bool) {
	k, ok := mulCheck(a.Const, c)
	if !ok {
		return Affine{}, false
	}
	out := Affine{Const: k}
	for _, t := range a.Terms {
		nc, ok := mulCheck(t.Coeff, c)
		if !ok {
			return Affine{}, false
		}
		out.Terms = append(out.Terms, Term{Coeff: nc, X: t.X, Y: t.Y})
	}
	return out.normalize()
}

// Mul returns a*b when the product stays within degree 2 (the domain's
// ceiling: a product of two symbols). Anything higher — or a product of
// two degree-2 terms — is outside the affine discipline and fails.
func (a Affine) Mul(b Affine) (Affine, bool) {
	out := Affine{}
	var ok bool
	if out.Const, ok = mulCheck(a.Const, b.Const); !ok {
		return Affine{}, false
	}
	for _, t := range a.Terms {
		c, ok := mulCheck(t.Coeff, b.Const)
		if !ok {
			return Affine{}, false
		}
		if c != 0 {
			out.Terms = append(out.Terms, Term{Coeff: c, X: t.X, Y: t.Y})
		}
	}
	for _, t := range b.Terms {
		c, ok := mulCheck(t.Coeff, a.Const)
		if !ok {
			return Affine{}, false
		}
		if c != 0 {
			out.Terms = append(out.Terms, Term{Coeff: c, X: t.X, Y: t.Y})
		}
	}
	for _, ta := range a.Terms {
		for _, tb := range b.Terms {
			if ta.degree()+tb.degree() > 2 {
				return Affine{}, false
			}
			c, ok := mulCheck(ta.Coeff, tb.Coeff)
			if !ok {
				return Affine{}, false
			}
			if c != 0 {
				out.Terms = append(out.Terms, Term{Coeff: c, X: ta.X, Y: tb.X})
			}
		}
	}
	return out.normalize()
}

// Key renders the form canonically: equal forms produce equal keys, so
// the pass can group references covered by the same endpoint pair.
func (a Affine) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", a.Const)
	for _, t := range a.Terms {
		fmt.Fprintf(&sb, "+%d*s%d", t.Coeff, t.X)
		if t.Y != NoSym {
			fmt.Fprintf(&sb, "*s%d", t.Y)
		}
	}
	return sb.String()
}

// Interval is a closed integer interval [Lo, Hi].
type Interval struct{ Lo, Hi int64 }

// Point returns the degenerate interval [v, v].
func Point(v int64) Interval { return Interval{v, v} }

func (iv Interval) valid() bool {
	return iv.Lo <= iv.Hi && inBudget(iv.Lo) && inBudget(iv.Hi)
}

// addIv adds two intervals exactly.
func addIv(a, b Interval) (Interval, bool) {
	lo, ok1 := addCheck(a.Lo, b.Lo)
	hi, ok2 := addCheck(a.Hi, b.Hi)
	if !ok1 || !ok2 {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// mulIv multiplies two intervals exactly (4-corner min/max).
func mulIv(a, b Interval) (Interval, bool) {
	var vals [4]int64
	pairs := [4][2]int64{{a.Lo, b.Lo}, {a.Lo, b.Hi}, {a.Hi, b.Lo}, {a.Hi, b.Hi}}
	for i, p := range pairs {
		v, ok := mulCheck(p[0], p[1])
		if !ok {
			return Interval{}, false
		}
		vals[i] = v
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return Interval{lo, hi}, true
}

// Env assigns symbols known constant intervals. A symbol missing from
// the env is unbounded, which makes evaluation fail.
type Env map[Sym]Interval

// Eval computes the exact interval of the form under env. It fails when
// a symbol is unbounded, an interval is malformed, or any intermediate
// leaves ±RangeBudget. The result is the true min/max of the form over
// the box env describes: every term is monotone in each symbol, so
// corner evaluation (via interval arithmetic on the normal form) is
// exact, not an over-approximation — which is what lets the pass use
// the endpoints as actually-referenced indices.
func (a Affine) Eval(env Env) (Interval, bool) {
	acc := Point(a.Const)
	for _, t := range a.Terms {
		x, ok := env[t.X]
		if !ok || !x.valid() {
			return Interval{}, false
		}
		term := x
		if t.Y != NoSym {
			y, ok := env[t.Y]
			if !ok || !y.valid() {
				return Interval{}, false
			}
			if term, ok = mulIv(term, y); !ok {
				return Interval{}, false
			}
		}
		if term, ok = mulIv(term, Point(t.Coeff)); !ok {
			return Interval{}, false
		}
		if acc, ok = addIv(acc, term); !ok {
			return Interval{}, false
		}
	}
	return acc, true
}

// IVRange is the value range of a counted-loop induction variable
// `for (v = Lo; v < H; v++)` (or <= when Incl): the trip-count chain's
// {base, stride=1, bound} rendered as the closed interval of values v
// takes in iterations that execute the body. HiSym names a runtime
// bound; HiConst is used when HiSym is NoSym.
type IVRange struct {
	Lo      int64
	HiConst int64
	HiSym   Sym
	Incl    bool
}

// ConstRange resolves the iv's closed value interval when the bound is
// a compile-time constant; ok=false for symbolic bounds or empty loops.
func (r IVRange) ConstRange() (Interval, bool) {
	if r.HiSym != NoSym {
		return Interval{}, false
	}
	hi := r.HiConst
	if !r.Incl {
		hi--
	}
	if hi < r.Lo {
		return Interval{}, false // zero-trip loop: no values at all
	}
	return Interval{r.Lo, hi}, true
}

// Empty reports whether a constant-bound loop executes zero iterations.
func (r IVRange) Empty() bool {
	if r.HiSym != NoSym {
		return false
	}
	hi := r.HiConst
	if !r.Incl {
		hi--
	}
	return hi < r.Lo
}
