package ir

import "cash/internal/vm"

// Builder constructs a Module incrementally. Its emission surface
// (Emit/Op/Op1/Label/Func/Jump/Call/Len/Instr) mirrors vm.Builder
// exactly, so a code generator written against vm.Builder lowers to IR
// with the same call sequence; on top of that it structures the stream
// into fragments, basic blocks and a loop tree, and stamps check ids
// and memory tags onto instructions for the passes.
type Builder struct {
	mod    *Module
	frag   *Fragment
	cur    *Block
	sealed *Block // most recently completed block (latch candidate)
	flat   []flatRef
	open   []*Loop // open-loop stack of the current fragment
	check  int     // current check id (0 = none)
	memTag any     // sticky tag for subsequent memory-using instructions
}

type flatRef struct {
	blk *Block
	idx int
}

// NewBuilder returns an empty builder. Emission must start with
// BeginFragment or Func.
func NewBuilder() *Builder {
	return &Builder{mod: &Module{}}
}

// Module returns the module under construction.
func (b *Builder) Module() *Module { return b.mod }

// BeginFragment starts a new anonymous code fragment (trap sink,
// startup). Loops and sticky tags do not span fragments.
func (b *Builder) BeginFragment(name string) {
	b.sealCurrent()
	b.frag = &Fragment{Name: name}
	b.mod.Frags = append(b.mod.Frags, b.frag)
	b.open = nil
	b.memTag = nil
}

// Func starts a function fragment and binds its fn_<name> entry label,
// like vm.Builder.Func.
func (b *Builder) Func(name string) {
	b.BeginFragment(name)
	b.frag.IsFunc = true
	b.Label("fn_" + name)
}

// CurrentFragment returns the fragment being built.
func (b *Builder) CurrentFragment() *Fragment { return b.frag }

// block returns the open block, opening one if the previous was sealed.
func (b *Builder) block() *Block {
	if b.cur == nil {
		blk := &Block{}
		b.frag.Blocks = append(b.frag.Blocks, blk)
		for _, l := range b.open {
			l.Blocks = append(l.Blocks, blk)
		}
		b.cur = blk
	}
	return b.cur
}

func (b *Builder) sealCurrent() {
	if b.cur != nil {
		b.sealed = b.cur
		b.cur = nil
	}
}

// Label binds a label at the current point. A label starts a new basic
// block when instructions have already been emitted into the open one;
// consecutive labels accumulate on the same block in binding order.
func (b *Builder) Label(name string) {
	if b.cur != nil && len(b.cur.Instrs) > 0 {
		b.sealCurrent()
	}
	blk := b.block()
	blk.Labels = append(blk.Labels, name)
}

// Emit appends one instruction and returns its flat index (the same
// index vm.Builder would return). Jumps and non-returning instructions
// seal the block.
func (b *Builder) Emit(in vm.Instr) int {
	blk := b.block()
	ii := Instr{Instr: in, CheckID: b.check}
	if b.memTag != nil && (in.Dst.Kind == vm.KindMem || in.Src.Kind == vm.KindMem) {
		ii.Tag = b.memTag
	}
	idx := len(b.flat)
	blk.Instrs = append(blk.Instrs, ii)
	b.flat = append(b.flat, flatRef{blk, len(blk.Instrs) - 1})
	if EndsBlock(in.Op) {
		b.sealCurrent()
	}
	return idx
}

// Op emits a two-operand instruction.
func (b *Builder) Op(op vm.Op, dst, src vm.Operand) int {
	return b.Emit(vm.Instr{Op: op, Dst: dst, Src: src})
}

// Op1 emits a one-operand instruction (PUSH uses Src, POP/NEG/NOT use
// Dst — the same convention as vm.Builder.Op1).
func (b *Builder) Op1(op vm.Op, o vm.Operand) int {
	if op == vm.PUSH {
		return b.Emit(vm.Instr{Op: op, Src: o})
	}
	return b.Emit(vm.Instr{Op: op, Dst: o})
}

// Jump emits a jump to a label, recording the symbolic target for
// emission-time fixup.
func (b *Builder) Jump(op vm.Op, label string) int {
	blk := b.block()
	ii := Instr{Instr: vm.Instr{Op: op, Sym: label}, FixupLabel: label, CheckID: b.check}
	idx := len(b.flat)
	blk.Instrs = append(blk.Instrs, ii)
	b.flat = append(b.flat, flatRef{blk, len(blk.Instrs) - 1})
	b.sealCurrent()
	return idx
}

// Call emits a call to a named function.
func (b *Builder) Call(name string) int {
	blk := b.block()
	ii := Instr{Instr: vm.Instr{Op: vm.CALL, Sym: name}, FixupLabel: "fn_" + name, CheckID: b.check}
	idx := len(b.flat)
	blk.Instrs = append(blk.Instrs, ii)
	b.flat = append(b.flat, flatRef{blk, len(blk.Instrs) - 1})
	return idx
}

// Len returns the number of instructions emitted so far, matching the
// index vm.Builder.Len would report at the same point of lowering.
func (b *Builder) Len() int { return len(b.flat) }

// Instr returns a pointer to instruction i of the flat stream for
// back-patching (Note annotations). Pointers stay valid while lowering
// proceeds: instructions are only appended, never moved, until the
// passes run.
func (b *Builder) Instr(i int) *vm.Instr {
	r := b.flat[i]
	return &r.blk.Instrs[r.idx].Instr
}

// CurrentBlock returns the open block, materializing it if needed (so a
// just-bound label's block can be captured).
func (b *Builder) CurrentBlock() *Block { return b.block() }

// BeginLoop opens a loop nested in the innermost open loop. Blocks
// created while it is open become members. The caller marks the header
// with SetLoopHeader after binding the condition label.
func (b *Builder) BeginLoop() *Loop {
	l := &Loop{}
	if n := len(b.open); n > 0 {
		l.Parent = b.open[n-1]
	}
	b.open = append(b.open, l)
	b.frag.Loops = append(b.frag.Loops, l)
	return l
}

// SetLoopHeader records the current block as the loop's header. The
// block may predate BeginLoop (an empty block opened before the loop
// that the header label then reuses), so membership is ensured here
// rather than assumed from creation order.
func (b *Builder) SetLoopHeader(l *Loop) {
	blk := b.block()
	if !l.Contains(blk) {
		l.Blocks = append(l.Blocks, blk)
	}
	l.Header = blk
}

// EndLoop closes the innermost loop; the block sealed by the back-edge
// jump becomes its latch (made a member for the same reason as the
// header).
func (b *Builder) EndLoop() {
	n := len(b.open)
	l := b.open[n-1]
	b.open = b.open[:n-1]
	if b.sealed != nil && !l.Contains(b.sealed) {
		l.Blocks = append(l.Blocks, b.sealed)
	}
	l.Latch = b.sealed
}

// SetCheck makes subsequent instructions members of check id; 0 ends
// the group. It returns the previous id so nested check scopes restore
// correctly.
func (b *Builder) SetCheck(id int) int {
	prev := b.check
	b.check = id
	return prev
}

// CurCheck returns the check id in effect.
func (b *Builder) CurCheck() int { return b.check }

// TagMem attaches tag to subsequent memory-using instructions until the
// next TagMem call. The code generator calls it when handing out a
// memory operand, so the loads/stores built from that operand carry the
// referenced object.
func (b *Builder) TagMem(tag any) { b.memTag = tag }

// Detour redirects emission into a detached scratch fragment, runs fn,
// and returns the blocks it produced (possibly a trailing label-only
// block). The passes use it to synthesize code — e.g. hoisted range
// checks — with the compiler's ordinary emission helpers, then splice
// the blocks wherever they belong. Loop state does not leak in either
// direction.
func (b *Builder) Detour(fn func()) []*Block {
	savedFrag, savedCur, savedSealed := b.frag, b.cur, b.sealed
	savedOpen, savedTag := b.open, b.memTag
	b.frag = &Fragment{Name: "(detour)"}
	b.cur = nil
	b.open = nil
	b.memTag = nil
	fn()
	blocks := b.frag.Blocks
	b.frag, b.cur, b.sealed = savedFrag, savedCur, savedSealed
	b.open, b.memTag = savedOpen, savedTag
	return blocks
}
