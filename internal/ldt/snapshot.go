package ldt

import "cash/internal/x86seg"

// ManagerImage is a frozen copy of a Manager's user-space state — the
// free list, the recently-freed cache, the gate flag, and the activity
// counters. Captured once and restored into any manager (typically a
// machine clone's), reproducing the captured allocator exactly.
type ManagerImage struct {
	freeList   []int
	cache      []cacheEntry
	gate       bool
	live       int
	cycles     uint64
	stats      Stats
	gateCycles uint64
	ldtCycles  uint64
}

// Capture freezes the manager's state. It returns nil when the manager
// holds state a restored copy could not share faithfully: reservations
// (owned by an external consumer), audit bookkeeping (enabling it
// mid-life is unsupported), or an attached trace (traces observe one
// machine's life, not a lineage of clones).
func (m *Manager) Capture() *ManagerImage {
	if len(m.reserved) > 0 || m.audit || m.tr != nil {
		return nil
	}
	return &ManagerImage{
		freeList:   append([]int(nil), m.freeList...),
		cache:      append([]cacheEntry(nil), m.cache...),
		gate:       m.gate,
		live:       m.live,
		cycles:     m.cycles,
		stats:      m.stats,
		gateCycles: m.gateCycles,
		ldtCycles:  m.ldtCycles,
	}
}

// RestoreInto returns m to exactly the captured state over table (the
// kernel LDT the restored manager controls — the caller restores the
// table's contents separately, via the MMU image). Backing arrays are
// reused where possible. The published-metrics baselines are set to the
// image's counters, so a later PublishMetrics pushes only activity that
// happened after the restore — the capture source already published its
// own.
func (img *ManagerImage) RestoreInto(m *Manager, table *x86seg.DescriptorTable) {
	m.ldt = table
	m.freeList = append(m.freeList[:0], img.freeList...)
	m.cache = append(m.cache[:0], img.cache...)
	m.reserved = nil
	m.gate = img.gate
	m.live = img.live
	m.cycles = img.cycles
	m.stats = img.stats
	m.gateCycles, m.ldtCycles = img.gateCycles, img.ldtCycles
	m.pubStats = img.stats
	m.pubGateCycles, m.pubLDTCycles = img.gateCycles, img.ldtCycles
	m.tr = nil
	m.audit = false
	m.liveSet = nil
}
