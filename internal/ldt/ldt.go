// Package ldt models the operating-system support Cash adds to Linux
// (paper §3.6): segment allocation and deallocation against the
// per-process LDT.
//
// Because the LDT lives in kernel space, installing a descriptor needs a
// kernel entry. The paper measures the stock modify_ldt system call at 781
// cycles and introduces a leaner path — a call gate installed in LDT entry
// 0 leading to cash_modify_ldt — at 253 cycles. Two further optimisations
// avoid kernel entries entirely: a user-space free-entry list (freeing a
// segment never modifies the LDT) and a 3-entry cache of the most recently
// freed segments, reused wholesale when a new segment has the same base
// and limit.
package ldt

import (
	"errors"
	"fmt"

	"cash/internal/obs"
	"cash/internal/x86seg"
)

// Process-wide LDT metrics in the shared observability registry.
// Managers publish deltas via PublishMetrics (the VM calls it once per
// run), so the Alloc/Free paths stay free of atomics. The two cycle
// counters split the kernel-entry cost by path, making the paper's
// 253-vs-781-cycle comparison (§3.6) directly visible in -metrics.
var (
	mAllocRequests   = obs.Default().Counter("ldt.alloc_requests")
	mCacheHits       = obs.Default().Counter("ldt.cache_hits")
	mKernelCalls     = obs.Default().Counter("ldt.kernel_calls")
	mFrees           = obs.Default().Counter("ldt.frees")
	mCyclesCallGate  = obs.Default().Counter("ldt.cycles.call_gate")
	mCyclesModifyLDT = obs.Default().Counter("ldt.cycles.modify_ldt")
)

// Cycle costs, from the paper's measurements on a 1.1 GHz Pentium III
// running Red Hat Linux 7.2.
const (
	// CostModifyLDT is the stock Linux modify_ldt system call (§3.6).
	CostModifyLDT = 781
	// CostCallGate is one cash_modify_ldt invocation through the lcall
	// $0x7,$0x0 call gate (§3.6).
	CostCallGate = 253
	// CostProgramSetup is the per-program overhead: the
	// set_ldt_callgate system call plus free-list initialisation (§4.1).
	CostProgramSetup = 543
	// CostCacheHit is the user-space work to match and reuse a cached
	// segment without entering the kernel.
	CostCacheHit = 20
	// CostFree is the user-space work to push a freed segment onto the
	// cache/free list. Freeing never enters the kernel.
	CostFree = 10
)

// CallGateEntry is the LDT slot reserved for the cash_modify_ldt call
// gate; it is excluded from segment allocation, leaving 8191 usable
// entries (§3.4).
const CallGateEntry = 0

// UsableEntries is the number of LDT entries available for array segments.
const UsableEntries = x86seg.TableEntries - 1

// ErrExhausted is returned when all 8191 LDT entries are in use. The
// compiler's response (§3.4) is to fall back to the global data segment,
// disabling bound checking for the overflowing objects.
var ErrExhausted = errors.New("ldt: all 8191 LDT entries in use")

// ErrNoCallGate is returned when the fast path is requested before
// InstallCallGate has run.
var ErrNoCallGate = errors.New("ldt: call gate not installed")

// cacheEntry is one slot of the 3-entry recently-freed-segment cache.
type cacheEntry struct {
	index int
	base  uint32
	limit uint32 // raw descriptor limit field
	gran  bool
}

// Stats counts Manager activity for the paper's §4.5 analysis
// (e.g. Toast: 415,659 allocation requests, 53.8% cache hit ratio).
type Stats struct {
	AllocRequests uint64 // total segment allocation requests
	CacheHits     uint64 // requests satisfied from the 3-entry cache
	KernelCalls   uint64 // requests that entered the kernel
	Frees         uint64 // segment deallocations
	PeakLive      int    // maximum simultaneously live segments
}

// HitRatio returns the cache hit ratio over all allocation requests.
func (s Stats) HitRatio() float64 {
	if s.AllocRequests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.AllocRequests)
}

// Manager implements Cash's segment allocation protocol over a kernel
// LDT. The zero value is not usable; construct with NewManager.
type Manager struct {
	ldt      *x86seg.DescriptorTable
	freeList []int // user-space free_ldt_entry list (LIFO)
	cache    []cacheEntry
	reserved []int // entries held by other consumers (see Reserve)
	gate     bool
	live     int
	cycles   uint64
	stats    Stats

	// Kernel-entry cycles split by path, feeding the ldt.cycles.*
	// registry counters. Both also count into the cycles total above.
	gateCycles uint64
	ldtCycles  uint64

	// State already pushed to the shared registry (see PublishMetrics).
	pubStats      Stats
	pubGateCycles uint64
	pubLDTCycles  uint64

	tr *obs.Trace // nil unless event tracing is on; Emit on nil is a no-op

	// Audit mode (EnableAudit): liveSet mirrors what the manager believes
	// is installed in the kernel table, so CheckInvariants can detect
	// descriptor corruption and free-list damage. Off by default — the
	// hot allocation path pays nothing for it.
	audit   bool
	liveSet map[int]liveInfo
}

// liveInfo is the audit-mode record of one live descriptor.
type liveInfo struct {
	base  uint32
	limit uint32
	gran  bool
}

// cacheSlots is the size of the recently-freed-segment cache (§3.6).
const cacheSlots = 3

// NewManager returns a Manager over the given kernel LDT with all 8191
// non-gate entries free. The call gate is not yet installed; call
// InstallCallGate (normally done by the program prologue).
func NewManager(table *x86seg.DescriptorTable) *Manager {
	free := make([]int, 0, UsableEntries)
	// LIFO pop from the tail; seed so that low indices pop first.
	for i := UsableEntries; i >= 1; i-- {
		free = append(free, i)
	}
	return &Manager{
		ldt:      table,
		freeList: free,
		cache:    make([]cacheEntry, 0, cacheSlots),
	}
}

// LDT returns the kernel descriptor table the manager controls.
func (m *Manager) LDT() *x86seg.DescriptorTable { return m.ldt }

// Reset returns the manager to its NewManager(table) state in place,
// reusing the free-list backing array: all entries free, empty cache, no
// gate, no reservations, zero stats and cycles, audit off, no trace.
// The caller must have emptied (or be about to Reset) the kernel table
// itself. Safe with respect to PublishMetrics bookkeeping: the published
// baselines are zeroed in lockstep with the live counters, which is
// correct because the VM publishes at every run boundary, so by reset
// time everything accumulated has already been pushed to the registry.
func (m *Manager) Reset(table *x86seg.DescriptorTable) {
	m.ldt = table
	m.freeList = m.freeList[:0]
	for i := UsableEntries; i >= 1; i-- {
		m.freeList = append(m.freeList, i)
	}
	m.cache = m.cache[:0]
	m.reserved = nil
	m.gate = false
	m.live = 0
	m.cycles = 0
	m.stats = Stats{}
	m.gateCycles, m.ldtCycles = 0, 0
	m.pubStats = Stats{}
	m.pubGateCycles, m.pubLDTCycles = 0, 0
	m.tr = nil
	m.audit = false
	m.liveSet = nil
}

// InstallCallGate performs the set_ldt_callgate system call: it installs
// the cash_modify_ldt call gate in LDT entry 0 and pays the per-program
// set-up cost. It is idempotent.
func (m *Manager) InstallCallGate() error {
	if m.gate {
		return nil
	}
	gate := x86seg.Descriptor{
		Present:    true,
		DPL:        3,
		Kind:       x86seg.KindCallGate,
		GateTarget: 1, // cash_modify_ldt
	}
	if err := m.ldt.Set(CallGateEntry, gate); err != nil {
		return fmt.Errorf("install call gate: %w", err)
	}
	m.gate = true
	m.cycles += CostProgramSetup
	return nil
}

// GateInstalled reports whether the fast kernel path is available.
func (m *Manager) GateInstalled() bool { return m.gate }

// Alloc allocates a segment covering [base, base+size) and returns its
// selector. The fast paths are tried in order: the 3-entry cache (no
// kernel entry), then a free LDT entry written through the call gate (253
// cycles) or, if no gate is installed, through modify_ldt (781 cycles).
// When the LDT is exhausted it returns ErrExhausted and the caller falls
// back to the global data segment.
func (m *Manager) Alloc(base, size uint32) (x86seg.Selector, error) {
	m.stats.AllocRequests++
	d, err := x86seg.NewDataDescriptor(base, size)
	if err != nil {
		return 0, err
	}
	// §3.6: match base AND limit against the recently freed segments.
	// The descriptor is still sitting in the kernel LDT (freeing never
	// modifies it), so a hit costs no kernel entry.
	for i, ce := range m.cache {
		if ce.base == d.Base && ce.limit == d.Limit && ce.gran == d.Granularity {
			m.cache = append(m.cache[:i], m.cache[i+1:]...)
			m.cycles += CostCacheHit
			m.stats.CacheHits++
			m.live++
			if m.live > m.stats.PeakLive {
				m.stats.PeakLive = m.live
			}
			if m.audit {
				m.liveSet[ce.index] = liveInfo{base: ce.base, limit: ce.limit, gran: ce.gran}
			}
			m.tr.Emit(obs.EvLDTAlloc, uint64(ce.index), uint64(ce.base), "cache-hit")
			return x86seg.NewSelector(ce.index, x86seg.LDT, 3), nil
		}
	}
	idx, ok := m.popFree()
	if !ok {
		m.tr.Emit(obs.EvLDTAlloc, 0, uint64(base), "exhausted")
		return 0, ErrExhausted
	}
	if err := m.ldt.Set(idx, d); err != nil {
		m.freeList = append(m.freeList, idx)
		return 0, fmt.Errorf("install descriptor: %w", err)
	}
	path := "modify_ldt"
	if m.gate {
		m.cycles += CostCallGate
		m.gateCycles += CostCallGate
		path = "call-gate"
	} else {
		m.cycles += CostModifyLDT
		m.ldtCycles += CostModifyLDT
	}
	m.stats.KernelCalls++
	m.live++
	if m.live > m.stats.PeakLive {
		m.stats.PeakLive = m.live
	}
	if m.audit {
		m.liveSet[idx] = liveInfo{base: d.Base, limit: d.Limit, gran: d.Granularity}
	}
	if m.tr.Enabled() {
		m.tr.Emit(obs.EvDescInstall, uint64(idx), uint64(d.Base), path)
		m.tr.Emit(obs.EvLDTAlloc, uint64(idx), uint64(d.Base), path)
	}
	return x86seg.NewSelector(idx, x86seg.LDT, 3), nil
}

// Free releases a segment. Per §3.6 this never enters the kernel: the
// entry is pushed onto the 3-slot cache (the descriptor stays in the LDT
// for possible reuse); if the cache is full the oldest cached entry's
// index is recycled onto the user-space free list.
func (m *Manager) Free(sel x86seg.Selector) error {
	idx := sel.Index()
	if sel.Table() != x86seg.LDT || idx == CallGateEntry {
		return fmt.Errorf("ldt: cannot free %v", sel)
	}
	d, err := m.ldt.Lookup(sel)
	if err != nil {
		return fmt.Errorf("free %v: %w", sel, err)
	}
	if m.audit {
		// A double free (or a free of a selector the manager never handed
		// out) is an application bug contained to the process (§3.8);
		// refusing it here keeps the audit books conserved.
		if _, ok := m.liveSet[idx]; !ok {
			return fmt.Errorf("ldt: free of non-live entry %d", idx)
		}
		delete(m.liveSet, idx)
	}
	if len(m.cache) == cacheSlots {
		evicted := m.cache[0]
		m.cache = m.cache[1:]
		m.freeList = append(m.freeList, evicted.index)
		m.tr.Emit(obs.EvDescEvict, uint64(evicted.index), uint64(evicted.base), "cache overflow")
	}
	m.cache = append(m.cache, cacheEntry{index: idx, base: d.Base, limit: d.Limit, gran: d.Granularity})
	m.cycles += CostFree
	m.stats.Frees++
	m.live--
	m.tr.Emit(obs.EvLDTFree, uint64(idx), uint64(d.Base), "")
	return nil
}

func (m *Manager) popFree() (int, bool) {
	if len(m.freeList) == 0 {
		// The cache holds genuinely free entries too; evict the oldest
		// rather than reporting exhaustion.
		if len(m.cache) == 0 {
			return 0, false
		}
		evicted := m.cache[0]
		m.cache = m.cache[1:]
		m.tr.Emit(obs.EvDescEvict, uint64(evicted.index), uint64(evicted.base), "free-list raid")
		return evicted.index, true
	}
	idx := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	return idx, true
}

// Live returns the number of currently allocated segments.
func (m *Manager) Live() int { return m.live }

// FreeEntries returns how many LDT entries are immediately available
// (free list plus reusable cache slots).
func (m *Manager) FreeEntries() int { return len(m.freeList) + len(m.cache) }

// Cycles returns the cumulative cycle cost of all manager operations.
func (m *Manager) Cycles() uint64 { return m.cycles }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetCycles zeroes the cycle accumulator (used between benchmark
// phases); statistics are retained. The per-path kernel-entry counters
// feeding the registry are reset in lockstep so PublishMetrics deltas
// stay non-negative.
func (m *Manager) ResetCycles() {
	m.cycles = 0
	m.gateCycles, m.ldtCycles = 0, 0
	m.pubGateCycles, m.pubLDTCycles = 0, 0
}

// SetTrace attaches a structured event trace; LDT allocations, frees,
// descriptor installs and cache evictions are emitted into it. A nil
// trace (the default) disables emission at the cost of one nil check.
func (m *Manager) SetTrace(tr *obs.Trace) { m.tr = tr }

// PublishMetrics pushes this manager's activity into the shared
// observability registry (internal/obs). Only the delta since the last
// publish is added, so the call is idempotent over unchanged state and
// safe at every run boundary.
func (m *Manager) PublishMetrics() {
	mAllocRequests.Add(m.stats.AllocRequests - m.pubStats.AllocRequests)
	mCacheHits.Add(m.stats.CacheHits - m.pubStats.CacheHits)
	mKernelCalls.Add(m.stats.KernelCalls - m.pubStats.KernelCalls)
	mFrees.Add(m.stats.Frees - m.pubStats.Frees)
	mCyclesCallGate.Add(m.gateCycles - m.pubGateCycles)
	mCyclesModifyLDT.Add(m.ldtCycles - m.pubLDTCycles)
	m.pubStats = m.stats
	m.pubGateCycles, m.pubLDTCycles = m.gateCycles, m.ldtCycles
}

// EnableAudit turns on invariant bookkeeping: the manager mirrors every
// live descriptor so CheckInvariants can compare its view against the
// kernel table. Audit mode exists for the chaos/resilience harness; the
// normal benchmark path never pays for it. Enabling after allocations
// have already happened is unsupported (the mirror would be incomplete),
// so callers enable it right after NewManager.
func (m *Manager) EnableAudit() {
	if m.liveSet == nil {
		m.liveSet = make(map[int]liveInfo)
	}
	m.audit = true
}

// AuditEnabled reports whether audit bookkeeping is on.
func (m *Manager) AuditEnabled() bool { return m.audit }

// Reserve takes up to n entries off the user-space free list on behalf of
// an external consumer (the chaos plane uses it to model other processes
// exhausting the shared LDT budget). Reserved entries stay accounted for
// by CheckInvariants; they are returned by ReleaseReserved. Reserve
// reports how many entries it actually took.
func (m *Manager) Reserve(n int) int {
	took := 0
	for took < n && len(m.freeList) > 0 {
		idx := m.freeList[len(m.freeList)-1]
		m.freeList = m.freeList[:len(m.freeList)-1]
		m.reserved = append(m.reserved, idx)
		took++
	}
	return took
}

// ReleaseReserved returns every reserved entry to the free list and
// reports how many were released.
func (m *Manager) ReleaseReserved() int {
	n := len(m.reserved)
	m.freeList = append(m.freeList, m.reserved...)
	m.reserved = nil
	return n
}

// Reserved returns how many entries are held by Reserve.
func (m *Manager) Reserved() int { return len(m.reserved) }

// CorruptFreeList deliberately damages the user-space free_ldt_entry
// list — the §3.8 scenario where an application overwrite hits Cash's
// shadow structures. The damage is deterministic: a duplicate of the
// lowest live entry is pushed (so a future allocation would hand out a
// segment that is already in use), or, with no live entries, the
// reserved call-gate slot itself. CheckInvariants detects either.
func (m *Manager) CorruptFreeList(aux uint64) {
	if m.audit && len(m.liveSet) > 0 {
		lowest := -1
		for idx := range m.liveSet {
			if lowest < 0 || idx < lowest {
				lowest = idx
			}
		}
		m.freeList = append(m.freeList, lowest)
		return
	}
	_ = aux
	m.freeList = append(m.freeList, CallGateEntry)
}

// CheckInvariants validates the allocator's books against the kernel
// descriptor table after a (possibly fault-injected) run:
//
//   - free-list conservation: free + cached + reserved + live entries
//     account for exactly the 8191 usable slots, with no duplicates and
//     no index out of range or equal to the call-gate slot;
//   - the recently-freed cache holds at most its 3 slots, and every
//     cached descriptor is still installed with the remembered geometry
//     (freeing never modifies the kernel table);
//   - in audit mode, every live descriptor in the kernel table matches
//     the allocator's mirror (catching corruption behind its back);
//   - the call gate, once installed, still occupies entry 0.
//
// A nil return means the fault left the segment machinery consistent.
func (m *Manager) CheckInvariants() error {
	seen := make(map[int]string, len(m.freeList)+len(m.cache)+len(m.reserved))
	note := func(idx int, where string) error {
		if idx <= CallGateEntry || idx >= x86seg.TableEntries {
			return fmt.Errorf("ldt: %s holds out-of-range entry %d", where, idx)
		}
		if prev, dup := seen[idx]; dup {
			return fmt.Errorf("ldt: entry %d appears in both %s and %s", idx, prev, where)
		}
		seen[idx] = where
		return nil
	}
	for _, idx := range m.freeList {
		if err := note(idx, "free list"); err != nil {
			return err
		}
	}
	if len(m.cache) > cacheSlots {
		return fmt.Errorf("ldt: cache holds %d entries, max %d", len(m.cache), cacheSlots)
	}
	for _, ce := range m.cache {
		if err := note(ce.index, "cache"); err != nil {
			return err
		}
		d, err := m.ldt.Lookup(x86seg.NewSelector(ce.index, x86seg.LDT, 3))
		if err != nil {
			return fmt.Errorf("ldt: cached entry %d not installed: %w", ce.index, err)
		}
		if d.Base != ce.base || d.Limit != ce.limit || d.Granularity != ce.gran {
			return fmt.Errorf("ldt: cached entry %d descriptor drifted (base %#x limit %#x vs cached %#x %#x)",
				ce.index, d.Base, d.Limit, ce.base, ce.limit)
		}
	}
	for _, idx := range m.reserved {
		if err := note(idx, "reserved set"); err != nil {
			return err
		}
	}
	if m.live < 0 {
		return fmt.Errorf("ldt: negative live count %d", m.live)
	}
	if got := len(m.freeList) + len(m.cache) + len(m.reserved) + m.live; got != UsableEntries {
		return fmt.Errorf("ldt: conservation violated: free %d + cached %d + reserved %d + live %d = %d, want %d",
			len(m.freeList), len(m.cache), len(m.reserved), m.live, got, UsableEntries)
	}
	if m.audit {
		if len(m.liveSet) != m.live {
			return fmt.Errorf("ldt: audit mirror tracks %d live entries, counter says %d", len(m.liveSet), m.live)
		}
		for idx, want := range m.liveSet {
			if where, dup := seen[idx]; dup {
				return fmt.Errorf("ldt: live entry %d also on %s", idx, where)
			}
			d, err := m.ldt.Lookup(x86seg.NewSelector(idx, x86seg.LDT, 3))
			if err != nil {
				return fmt.Errorf("ldt: live entry %d missing from table: %w", idx, err)
			}
			if d.Base != want.base || d.Limit != want.limit || d.Granularity != want.gran {
				return fmt.Errorf("ldt: live entry %d corrupted (base %#x limit %#x, expected %#x %#x)",
					idx, d.Base, d.Limit, want.base, want.limit)
			}
		}
	}
	if m.gate {
		d, err := m.ldt.Lookup(x86seg.NewSelector(CallGateEntry, x86seg.LDT, 3))
		if err != nil || d.Kind != x86seg.KindCallGate {
			return fmt.Errorf("ldt: call-gate entry %d no longer holds the gate", CallGateEntry)
		}
	}
	return nil
}
