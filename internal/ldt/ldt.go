// Package ldt models the operating-system support Cash adds to Linux
// (paper §3.6): segment allocation and deallocation against the
// per-process LDT.
//
// Because the LDT lives in kernel space, installing a descriptor needs a
// kernel entry. The paper measures the stock modify_ldt system call at 781
// cycles and introduces a leaner path — a call gate installed in LDT entry
// 0 leading to cash_modify_ldt — at 253 cycles. Two further optimisations
// avoid kernel entries entirely: a user-space free-entry list (freeing a
// segment never modifies the LDT) and a 3-entry cache of the most recently
// freed segments, reused wholesale when a new segment has the same base
// and limit.
package ldt

import (
	"errors"
	"fmt"

	"cash/internal/x86seg"
)

// Cycle costs, from the paper's measurements on a 1.1 GHz Pentium III
// running Red Hat Linux 7.2.
const (
	// CostModifyLDT is the stock Linux modify_ldt system call (§3.6).
	CostModifyLDT = 781
	// CostCallGate is one cash_modify_ldt invocation through the lcall
	// $0x7,$0x0 call gate (§3.6).
	CostCallGate = 253
	// CostProgramSetup is the per-program overhead: the
	// set_ldt_callgate system call plus free-list initialisation (§4.1).
	CostProgramSetup = 543
	// CostCacheHit is the user-space work to match and reuse a cached
	// segment without entering the kernel.
	CostCacheHit = 20
	// CostFree is the user-space work to push a freed segment onto the
	// cache/free list. Freeing never enters the kernel.
	CostFree = 10
)

// CallGateEntry is the LDT slot reserved for the cash_modify_ldt call
// gate; it is excluded from segment allocation, leaving 8191 usable
// entries (§3.4).
const CallGateEntry = 0

// UsableEntries is the number of LDT entries available for array segments.
const UsableEntries = x86seg.TableEntries - 1

// ErrExhausted is returned when all 8191 LDT entries are in use. The
// compiler's response (§3.4) is to fall back to the global data segment,
// disabling bound checking for the overflowing objects.
var ErrExhausted = errors.New("ldt: all 8191 LDT entries in use")

// ErrNoCallGate is returned when the fast path is requested before
// InstallCallGate has run.
var ErrNoCallGate = errors.New("ldt: call gate not installed")

// cacheEntry is one slot of the 3-entry recently-freed-segment cache.
type cacheEntry struct {
	index int
	base  uint32
	limit uint32 // raw descriptor limit field
	gran  bool
}

// Stats counts Manager activity for the paper's §4.5 analysis
// (e.g. Toast: 415,659 allocation requests, 53.8% cache hit ratio).
type Stats struct {
	AllocRequests uint64 // total segment allocation requests
	CacheHits     uint64 // requests satisfied from the 3-entry cache
	KernelCalls   uint64 // requests that entered the kernel
	Frees         uint64 // segment deallocations
	PeakLive      int    // maximum simultaneously live segments
}

// HitRatio returns the cache hit ratio over all allocation requests.
func (s Stats) HitRatio() float64 {
	if s.AllocRequests == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.AllocRequests)
}

// Manager implements Cash's segment allocation protocol over a kernel
// LDT. The zero value is not usable; construct with NewManager.
type Manager struct {
	ldt      *x86seg.DescriptorTable
	freeList []int // user-space free_ldt_entry list (LIFO)
	cache    []cacheEntry
	gate     bool
	live     int
	cycles   uint64
	stats    Stats
}

// cacheSlots is the size of the recently-freed-segment cache (§3.6).
const cacheSlots = 3

// NewManager returns a Manager over the given kernel LDT with all 8191
// non-gate entries free. The call gate is not yet installed; call
// InstallCallGate (normally done by the program prologue).
func NewManager(table *x86seg.DescriptorTable) *Manager {
	free := make([]int, 0, UsableEntries)
	// LIFO pop from the tail; seed so that low indices pop first.
	for i := UsableEntries; i >= 1; i-- {
		free = append(free, i)
	}
	return &Manager{
		ldt:      table,
		freeList: free,
		cache:    make([]cacheEntry, 0, cacheSlots),
	}
}

// LDT returns the kernel descriptor table the manager controls.
func (m *Manager) LDT() *x86seg.DescriptorTable { return m.ldt }

// InstallCallGate performs the set_ldt_callgate system call: it installs
// the cash_modify_ldt call gate in LDT entry 0 and pays the per-program
// set-up cost. It is idempotent.
func (m *Manager) InstallCallGate() error {
	if m.gate {
		return nil
	}
	gate := x86seg.Descriptor{
		Present:    true,
		DPL:        3,
		Kind:       x86seg.KindCallGate,
		GateTarget: 1, // cash_modify_ldt
	}
	if err := m.ldt.Set(CallGateEntry, gate); err != nil {
		return fmt.Errorf("install call gate: %w", err)
	}
	m.gate = true
	m.cycles += CostProgramSetup
	return nil
}

// GateInstalled reports whether the fast kernel path is available.
func (m *Manager) GateInstalled() bool { return m.gate }

// Alloc allocates a segment covering [base, base+size) and returns its
// selector. The fast paths are tried in order: the 3-entry cache (no
// kernel entry), then a free LDT entry written through the call gate (253
// cycles) or, if no gate is installed, through modify_ldt (781 cycles).
// When the LDT is exhausted it returns ErrExhausted and the caller falls
// back to the global data segment.
func (m *Manager) Alloc(base, size uint32) (x86seg.Selector, error) {
	m.stats.AllocRequests++
	d, err := x86seg.NewDataDescriptor(base, size)
	if err != nil {
		return 0, err
	}
	// §3.6: match base AND limit against the recently freed segments.
	// The descriptor is still sitting in the kernel LDT (freeing never
	// modifies it), so a hit costs no kernel entry.
	for i, ce := range m.cache {
		if ce.base == d.Base && ce.limit == d.Limit && ce.gran == d.Granularity {
			m.cache = append(m.cache[:i], m.cache[i+1:]...)
			m.cycles += CostCacheHit
			m.stats.CacheHits++
			m.live++
			if m.live > m.stats.PeakLive {
				m.stats.PeakLive = m.live
			}
			return x86seg.NewSelector(ce.index, x86seg.LDT, 3), nil
		}
	}
	idx, ok := m.popFree()
	if !ok {
		return 0, ErrExhausted
	}
	if err := m.ldt.Set(idx, d); err != nil {
		m.freeList = append(m.freeList, idx)
		return 0, fmt.Errorf("install descriptor: %w", err)
	}
	if m.gate {
		m.cycles += CostCallGate
	} else {
		m.cycles += CostModifyLDT
	}
	m.stats.KernelCalls++
	m.live++
	if m.live > m.stats.PeakLive {
		m.stats.PeakLive = m.live
	}
	return x86seg.NewSelector(idx, x86seg.LDT, 3), nil
}

// Free releases a segment. Per §3.6 this never enters the kernel: the
// entry is pushed onto the 3-slot cache (the descriptor stays in the LDT
// for possible reuse); if the cache is full the oldest cached entry's
// index is recycled onto the user-space free list.
func (m *Manager) Free(sel x86seg.Selector) error {
	idx := sel.Index()
	if sel.Table() != x86seg.LDT || idx == CallGateEntry {
		return fmt.Errorf("ldt: cannot free %v", sel)
	}
	d, err := m.ldt.Lookup(sel)
	if err != nil {
		return fmt.Errorf("free %v: %w", sel, err)
	}
	if len(m.cache) == cacheSlots {
		evicted := m.cache[0]
		m.cache = m.cache[1:]
		m.freeList = append(m.freeList, evicted.index)
	}
	m.cache = append(m.cache, cacheEntry{index: idx, base: d.Base, limit: d.Limit, gran: d.Granularity})
	m.cycles += CostFree
	m.stats.Frees++
	m.live--
	return nil
}

func (m *Manager) popFree() (int, bool) {
	if len(m.freeList) == 0 {
		// The cache holds genuinely free entries too; evict the oldest
		// rather than reporting exhaustion.
		if len(m.cache) == 0 {
			return 0, false
		}
		evicted := m.cache[0]
		m.cache = m.cache[1:]
		return evicted.index, true
	}
	idx := m.freeList[len(m.freeList)-1]
	m.freeList = m.freeList[:len(m.freeList)-1]
	return idx, true
}

// Live returns the number of currently allocated segments.
func (m *Manager) Live() int { return m.live }

// FreeEntries returns how many LDT entries are immediately available
// (free list plus reusable cache slots).
func (m *Manager) FreeEntries() int { return len(m.freeList) + len(m.cache) }

// Cycles returns the cumulative cycle cost of all manager operations.
func (m *Manager) Cycles() uint64 { return m.cycles }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetCycles zeroes the cycle accumulator (used between benchmark
// phases); statistics are retained.
func (m *Manager) ResetCycles() { m.cycles = 0 }
