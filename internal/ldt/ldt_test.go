package ldt

import (
	"errors"
	"testing"
	"testing/quick"

	"cash/internal/x86seg"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	return NewManager(x86seg.NewTable("LDT"))
}

func TestInstallCallGate(t *testing.T) {
	m := newManager(t)
	if m.GateInstalled() {
		t.Fatal("gate must not be installed initially")
	}
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	if !m.GateInstalled() {
		t.Fatal("gate must be installed")
	}
	if got := m.Cycles(); got != CostProgramSetup {
		t.Fatalf("Cycles = %d, want per-program setup %d", got, CostProgramSetup)
	}
	// Idempotent: no second charge.
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Cycles(); got != CostProgramSetup {
		t.Fatalf("Cycles after repeat = %d, want %d", got, CostProgramSetup)
	}
	if !m.LDT().InUse(CallGateEntry) {
		t.Fatal("entry 0 must hold the call gate")
	}
}

func TestAllocInstallsDescriptor(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sel, err := m.Alloc(0x8000, 400)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Table() != x86seg.LDT {
		t.Fatalf("selector table = %v, want LDT", sel.Table())
	}
	if sel.Index() == CallGateEntry {
		t.Fatal("allocation must never hand out the call gate entry")
	}
	d, err := m.LDT().Lookup(sel)
	if err != nil {
		t.Fatal(err)
	}
	if d.Base != 0x8000 || d.ByteSize() != 400 {
		t.Fatalf("descriptor = %v, want base 0x8000 size 400", d)
	}
	if m.Live() != 1 {
		t.Fatalf("Live = %d, want 1", m.Live())
	}
}

func TestAllocCostGateVsSyscall(t *testing.T) {
	// Without the gate: stock modify_ldt (781 cycles).
	slow := newManager(t)
	if _, err := slow.Alloc(0, 64); err != nil {
		t.Fatal(err)
	}
	if got := slow.Cycles(); got != CostModifyLDT {
		t.Fatalf("syscall path cycles = %d, want %d", got, CostModifyLDT)
	}
	// With the gate: cash_modify_ldt (253 cycles).
	fast := newManager(t)
	if err := fast.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	fast.ResetCycles()
	if _, err := fast.Alloc(0, 64); err != nil {
		t.Fatal(err)
	}
	if got := fast.Cycles(); got != CostCallGate {
		t.Fatalf("call gate path cycles = %d, want %d", got, CostCallGate)
	}
}

func TestFreeNeverEntersKernel(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sel, err := m.Alloc(0x1000, 40)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats().KernelCalls
	m.ResetCycles()
	if err := m.Free(sel); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().KernelCalls; got != before {
		t.Fatal("Free must not enter the kernel")
	}
	if got := m.Cycles(); got != CostFree {
		t.Fatalf("Free cycles = %d, want %d", got, CostFree)
	}
	// The descriptor stays in the LDT (freeing never modifies it).
	if _, err := m.LDT().Lookup(sel); err != nil {
		t.Fatalf("descriptor must remain after Free: %v", err)
	}
}

// TestCacheReuse models the §3.6 scenario: a function with a local array
// called repeatedly in a loop. After the first call every alloc of the
// same (base, limit) hits the 3-entry cache and avoids the kernel.
func TestCacheReuse(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	const rounds = 100
	for i := 0; i < rounds; i++ {
		sel, err := m.Alloc(0xbff00000, 256) // same frame slot each call
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Free(sel); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.AllocRequests != rounds {
		t.Fatalf("AllocRequests = %d, want %d", st.AllocRequests, rounds)
	}
	if st.KernelCalls != 1 {
		t.Fatalf("KernelCalls = %d, want 1 (first alloc only)", st.KernelCalls)
	}
	if st.CacheHits != rounds-1 {
		t.Fatalf("CacheHits = %d, want %d", st.CacheHits, rounds-1)
	}
	if got := st.HitRatio(); got < 0.98 {
		t.Fatalf("HitRatio = %.3f, want ~0.99", got)
	}
}

func TestCacheMissOnDifferentLimit(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sel, err := m.Alloc(0x1000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(sel); err != nil {
		t.Fatal(err)
	}
	// Same base, different size: must not reuse the cached descriptor.
	sel2, err := m.Alloc(0x1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().CacheHits != 0 {
		t.Fatal("different limit must miss the cache")
	}
	d, err := m.LDT().Lookup(sel2)
	if err != nil {
		t.Fatal(err)
	}
	if d.ByteSize() != 128 {
		t.Fatalf("descriptor size = %d, want 128", d.ByteSize())
	}
}

func TestCacheHoldsThreeEntries(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	var sels []x86seg.Selector
	for i := 0; i < 4; i++ {
		sel, err := m.Alloc(uint32(0x1000*(i+1)), 64)
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, sel)
	}
	for _, sel := range sels {
		if err := m.Free(sel); err != nil {
			t.Fatal(err)
		}
	}
	// The first-freed segment was evicted; re-allocating it misses.
	kernelBefore := m.Stats().KernelCalls
	if _, err := m.Alloc(0x1000, 64); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().KernelCalls; got != kernelBefore+1 {
		t.Fatal("evicted segment must require a kernel call")
	}
	// The last three freed are still cached.
	hitsBefore := m.Stats().CacheHits
	for i := 1; i < 4; i++ {
		if _, err := m.Alloc(uint32(0x1000*(i+1)), 64); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Stats().CacheHits - hitsBefore; got != 3 {
		t.Fatalf("cache hits = %d, want 3", got)
	}
}

func TestExhaustion(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < UsableEntries; i++ {
		if _, err := m.Alloc(uint32(i)*16, 16); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if m.Live() != UsableEntries {
		t.Fatalf("Live = %d, want %d", m.Live(), UsableEntries)
	}
	_, err := m.Alloc(0xf0000000, 16)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("8192nd alloc: want ErrExhausted, got %v", err)
	}
}

func TestExhaustionRecyclesCache(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sels := make([]x86seg.Selector, 0, UsableEntries)
	for i := 0; i < UsableEntries; i++ {
		sel, err := m.Alloc(uint32(i)*16, 16)
		if err != nil {
			t.Fatal(err)
		}
		sels = append(sels, sel)
	}
	// Free one; a non-matching alloc must still succeed by evicting the
	// cached (free) entry rather than reporting exhaustion.
	if err := m.Free(sels[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(0xf0000000, 4096); err != nil {
		t.Fatalf("alloc after free must reuse the cached entry: %v", err)
	}
}

func TestFreeValidation(t *testing.T) {
	m := newManager(t)
	if err := m.Free(x86seg.NewSelector(5, x86seg.GDT, 0)); err == nil {
		t.Error("freeing a GDT selector must fail")
	}
	if err := m.Free(x86seg.NewSelector(CallGateEntry, x86seg.LDT, 0)); err == nil {
		t.Error("freeing the call gate entry must fail")
	}
	if err := m.Free(x86seg.NewSelector(77, x86seg.LDT, 0)); err == nil {
		t.Error("freeing a never-allocated entry must fail")
	}
}

func TestPeakLiveTracking(t *testing.T) {
	m := newManager(t)
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Alloc(0, 16)
	b, _ := m.Alloc(16, 16)
	if err := m.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().PeakLive; got != 2 {
		t.Fatalf("PeakLive = %d, want 2", got)
	}
}

// TestQuickFreeListConservation: any alloc/free interleaving conserves the
// total entry count: live + immediately-available == 8191.
func TestQuickFreeListConservation(t *testing.T) {
	f := func(ops []bool) bool {
		m := NewManager(x86seg.NewTable("LDT"))
		if err := m.InstallCallGate(); err != nil {
			return false
		}
		var live []x86seg.Selector
		for i, alloc := range ops {
			if alloc || len(live) == 0 {
				sel, err := m.Alloc(uint32(i)*64, 64)
				if err != nil {
					return false
				}
				live = append(live, sel)
			} else {
				sel := live[len(live)-1]
				live = live[:len(live)-1]
				if err := m.Free(sel); err != nil {
					return false
				}
			}
			if m.Live()+m.FreeEntries() != UsableEntries {
				return false
			}
			if m.Live() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
