package ldt

import (
	"errors"
	"testing"
	"testing/quick"

	"cash/internal/x86seg"
)

// driveOps interprets a byte string as an alloc/free/failure sequence
// against a fresh audited Manager and checks the invariants after every
// step. Each op byte selects the action; the geometry of allocations is
// derived from the byte so that cache hits, cache misses and large
// (page-granular) segments all occur.
func driveOps(t interface{ Fatalf(string, ...interface{}) }, ops []byte) {
	m := NewManager(x86seg.NewTable("LDT"))
	m.EnableAudit()
	if err := m.InstallCallGate(); err != nil {
		t.Fatalf("install gate: %v", err)
	}
	var live []x86seg.Selector
	for i, op := range ops {
		switch op % 5 {
		case 0, 1: // allocate; a few geometries so the 3-entry cache both hits and misses
			base := uint32(0x1000) + uint32(op%7)*0x100
			size := uint32(16 + int(op%3)*48)
			if op%13 == 0 {
				size = (1 << 20) + uint32(op)*17 // page-granular path (§3.5)
			}
			sel, err := m.Alloc(base, size)
			if err != nil && !errors.Is(err, ErrExhausted) {
				t.Fatalf("op %d: alloc: %v", i, err)
			}
			if err == nil {
				live = append(live, sel)
			}
		case 2: // free the op-selected live segment
			if len(live) > 0 {
				k := int(op) % len(live)
				if err := m.Free(live[k]); err != nil {
					t.Fatalf("op %d: free: %v", i, err)
				}
				live = append(live[:k], live[k+1:]...)
			}
		case 3: // external LDT pressure (the chaos exhaustion mechanism)
			m.Reserve(int(op) * 64)
		case 4: // pressure subsides
			if op%2 == 0 {
				m.ReleaseReserved()
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("op %d (%d): invariants violated: %v", i, op, err)
		}
		if m.Live() != len(live) {
			t.Fatalf("op %d: live count %d, harness tracks %d", i, m.Live(), len(live))
		}
	}
}

// TestQuickAuditedConservation is the property-based half of the chaos
// test plan: free-list conservation and the 3-entry segment cache must
// survive arbitrary injected alloc/free/reserve/release sequences, with
// the full invariant checker run after every step.
func TestQuickAuditedConservation(t *testing.T) {
	f := func(ops []byte) bool {
		driveOps(t, ops)
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConservationLongSequence pushes one long deterministic
// sequence through every op kind, including exhaustion via Reserve.
func TestQuickConservationLongSequence(t *testing.T) {
	ops := make([]byte, 4096)
	state := uint32(12345)
	for i := range ops {
		state = state*1664525 + 1013904223
		ops[i] = byte(state >> 24)
	}
	driveOps(t, ops)
}

// TestCheckInvariantsCatchesFreeListCorruption: the §3.8 shadow-damage
// injection must be *detected*, not survived silently.
func TestCheckInvariantsCatchesFreeListCorruption(t *testing.T) {
	m := NewManager(x86seg.NewTable("LDT"))
	m.EnableAudit()
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Alloc(0x2000, 64); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("clean state must pass: %v", err)
	}
	m.CorruptFreeList(99)
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("corrupted free list must fail the invariant check")
	}
}

// TestCheckInvariantsCatchesDescriptorCorruption: rewriting a live
// descriptor behind the manager's back must be detected.
func TestCheckInvariantsCatchesDescriptorCorruption(t *testing.T) {
	table := x86seg.NewTable("LDT")
	m := NewManager(table)
	m.EnableAudit()
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sel, err := m.Alloc(0x3000, 256)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := x86seg.NewDataDescriptor(0x3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Set(sel.Index(), bad); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("corrupted live descriptor must fail the invariant check")
	}
}

// TestAuditRejectsDoubleFree: audit mode refuses a double free instead of
// unbalancing the books.
func TestAuditRejectsDoubleFree(t *testing.T) {
	m := NewManager(x86seg.NewTable("LDT"))
	m.EnableAudit()
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	sel, err := m.Alloc(0x4000, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(sel); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(sel); err == nil {
		t.Fatal("double free must be rejected in audit mode")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("books unbalanced after rejected double free: %v", err)
	}
}

// TestReserveExhaustsAndReleases: Reserve models other processes filling
// the shared LDT; allocation must fail with ErrExhausted while reserved
// and recover after release.
func TestReserveExhaustsAndReleases(t *testing.T) {
	m := NewManager(x86seg.NewTable("LDT"))
	m.EnableAudit()
	if err := m.InstallCallGate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Reserve(UsableEntries + 5); got != UsableEntries {
		t.Fatalf("Reserve took %d entries, want %d", got, UsableEntries)
	}
	if _, err := m.Alloc(0x5000, 64); !errors.Is(err, ErrExhausted) {
		t.Fatalf("alloc under full reservation: err = %v, want ErrExhausted", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants under reservation: %v", err)
	}
	if got := m.ReleaseReserved(); got != UsableEntries {
		t.Fatalf("released %d, want %d", got, UsableEntries)
	}
	if _, err := m.Alloc(0x5000, 64); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants after release: %v", err)
	}
}
