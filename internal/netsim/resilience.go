package netsim

import (
	"context"
	"errors"
	"fmt"

	"cash/internal/chaos"
	"cash/internal/core"
	"cash/internal/ldt"
	"cash/internal/minic"
	"cash/internal/obs"
	"cash/internal/serve"
	"cash/internal/vm"
	"cash/internal/workload"
)

// Resilience accounting in the shared observability registry. Each
// mode's serving loop accumulates privately and publishes once at the
// end (counter adds and one histogram merge), so totals are identical
// at any par fan-out budget.
var (
	nmRequests  = obs.Default().Counter("netsim.requests")
	nmInjected  = obs.Default().Counter("netsim.injected")
	nmServed    = obs.Default().Counter("netsim.served")
	nmOK        = obs.Default().Counter("netsim.outcome.ok")
	nmTolerated = obs.Default().Counter("netsim.outcome.tolerated")
	nmDegraded  = obs.Default().Counter("netsim.outcome.degraded")
	nmShed      = obs.Default().Counter("netsim.outcome.shed")
	nmTimedOut  = obs.Default().Counter("netsim.outcome.timed_out")
	nmDetected  = obs.Default().Counter("netsim.outcome.detected")
	nmRetries   = obs.Default().Counter("netsim.retries")
	nmChecker   = obs.Default().Counter("netsim.checker_violations")

	nmLatency = obs.Default().Histogram("netsim.latency.cycles", obs.DefaultCycleBounds())
)

// This file is the resilient request-serving loop: the same fork-per-
// request server model as Measure, but driven through a deterministic
// fault-injection plane (internal/chaos) and hardened against every
// fault it injects. A faulting handler is a counted failed request, never
// an aborted run — the server survives transient kernel failures (retry
// with backoff), LDT exhaustion (graceful degradation to flat segments,
// §3.4), runaway handlers (per-request cycle-budget watchdog), corrupted
// descriptor state (post-fault invariant checker) and malformed or
// unmapped request buffers (fault isolation).
//
// Determinism contract: every injection decision is a pure function of
// (seed, application/mode scope, request index, attempt), so two runs
// with the same seed and rate produce byte-identical reports, regardless
// of scheduling. The chaos plane never consults wall-clock time or a
// shared PRNG stream.

// Retry policy for transient modify_ldt failures (EAGAIN-style).
const (
	// MaxAttempts bounds how often one request is retried before it is
	// shed. The first attempt plus three retries.
	MaxAttempts = 4
	// BackoffBaseCycles is the first retry's backoff, doubled per
	// attempt up to BackoffCapCycles. Backoff is charged to the
	// request's latency, mirroring a server that sleeps before
	// re-forking the handler.
	BackoffBaseCycles = 500
	BackoffCapCycles  = 4000
)

// Degradation and shedding policy.
const (
	// DegradeThreshold is how many consecutive LDT-exhaustion
	// degradations flip the server into flat-segment mode (§3.4): it
	// stops asking the kernel for per-array segments entirely instead
	// of paying the allocation cost just to fall back each time.
	DegradeThreshold = 3
	// ProbeInterval is how often (in requests) a degraded server probes
	// with a fully checked handler; a clean probe re-arms checking.
	ProbeInterval = 32
	// ShedWindow/ShedThreshold implement load shedding: when at least
	// ShedThreshold of the last ShedWindow outcomes were failures
	// (timeouts or detected corruption), the next request is refused
	// outright rather than served into a struggling system.
	ShedWindow    = 8
	ShedThreshold = 4
)

// DefaultCleanBudget is the watchdog step budget used when the caller
// sets no explicit core.Options.StepLimit. It is far above any clean
// handler's instruction count, so only runaway handlers hit it.
const DefaultCleanBudget = 50_000_000

// ModeResilience is one compiler mode's resilience numbers for one
// application under chaos.
type ModeResilience struct {
	Mode core.Mode

	Requests int // requests offered
	Injected int // requests the chaos plane picked for fault injection
	Served   int // requests that produced a response (OK + Tolerated + Degraded)

	OK        int // served by a fully checked, uninjected-equivalent handler
	Tolerated int // injected, but the handler absorbed it with correct output
	Retries   int // transient-failure retries performed (attempts, not requests)
	Shed      int // refused: retries exhausted or load shedding tripped
	Degraded  int // served in flat-segment fallback mode (§3.4)
	TimedOut  int // killed by the per-request watchdog budget
	Detected  int // handler fault or corruption caught (the system worked)

	// CheckerViolations counts Detected outcomes found only by the
	// post-fault LDT invariant checker (silent-corruption catches).
	CheckerViolations int

	// Handler latency percentiles over served requests, in cycles
	// (including retry backoff for retried requests).
	P50, P95, P99 uint64
}

// AvailabilityPct is the fraction of offered requests that were served.
func (m *ModeResilience) AvailabilityPct() float64 {
	if m.Requests == 0 {
		return 0
	}
	return float64(m.Served) / float64(m.Requests) * 100
}

// ResilienceReport aggregates the three compiler modes for one
// application.
type ResilienceReport struct {
	Name     string
	Paper    string
	Requests int
	Modes    [3]ModeResilience // GCC, Cash, BCC in order
}

// requestOutcome classifies one request for the accounting above.
type requestOutcome int

const (
	outcomeOK requestOutcome = iota
	outcomeTolerated
	outcomeDegraded
	outcomeTimedOut
	outcomeDetected
	outcomeShed
)

// served reports whether the outcome produced a response.
func (o requestOutcome) served() bool {
	return o == outcomeOK || o == outcomeTolerated || o == outcomeDegraded
}

// bad reports whether the outcome counts against the shedding window.
func (o requestOutcome) bad() bool {
	return o == outcomeTimedOut || o == outcomeDetected
}

// inputGlobal locates the application's embedded request buffer: the
// first global array with an initialiser (every network workload in the
// corpus embeds its request bytes that way). Returns ok=false for
// programs without one; buffer-targeting injection sites are then
// inapplicable.
func inputGlobal(ast *minic.Program) (addr uint32, size int, ok bool) {
	for _, g := range ast.Globals {
		if g.Type.Kind != minic.TypeArray {
			continue
		}
		if g.InitStr == "" && len(g.InitList) == 0 {
			continue
		}
		return g.Addr, g.Type.Size(), true
	}
	return 0, 0, false
}

// cleanRun is the memoised outcome of an uninjected handler execution.
type cleanRun struct {
	cycles uint64
	instrs uint64
	output []int32
	fault  *vm.Fault // non-nil when even the clean handler faults
}

// runClean executes the artifact once with no injection and caches the
// quantities every subsequent clean request reuses (the machine is
// deterministic, so one execution is exact for all of them). It runs
// the machine directly — not through the Engine's run cache — so the
// core.runs accounting counts this execution exactly once, and recycles
// the machine's parts through the server's local pool.
func runClean(art *core.Artifact, budget uint64, pool *serve.LocalPool) (*cleanRun, error) {
	opts := append(pool.Options(art.Program), vm.WithStepLimit(budget))
	m, err := art.NewMachine(opts...)
	if err != nil {
		return nil, err
	}
	res, runErr := m.Run()
	pool.Put(m)
	cr := &cleanRun{cycles: res.Cycles, instrs: res.Stats.Instructions, output: res.Output}
	if runErr != nil {
		var f *vm.Fault
		if !errors.As(runErr, &f) {
			return nil, runErr
		}
		cr.fault = f
	}
	return cr, nil
}

// modeServer holds the per-mode state of the resilient serving loop.
type modeServer struct {
	art     *core.Artifact
	flatArt *core.Artifact // Cash with checking disabled: the degraded server
	budget  uint64
	plan    *chaos.Plan
	scope   string
	sites   []chaos.Site

	reqAddr uint32
	reqSize int
	hasReq  bool

	clean     *cleanRun
	flatClean *cleanRun // lazily built on first degradation
	flatErr   error

	degraded    bool
	consecExh   int
	window      []bool // ring of recent outcome.bad() flags
	windowBad   int
	mr          *ModeResilience
	lat         *obs.Histogram   // served-request latencies, in cycles
	tr          *obs.Trace       // resilience decision trace (nil when off)
	pool        *serve.LocalPool // per-server machine recycler (nil = pooling off)
	shedArmed   bool
	sinceDegron int // requests since entering degraded mode, for probing
}

// equalOutput compares two handler transcripts.
func equalOutput(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// vmOptions maps one injection decision to the machine options that
// realise it. The bool result is false when the site cannot apply to
// this program (no request buffer); such injections are absorbed.
func (s *modeServer) vmOptions(inj chaos.Injection, budget uint64) ([]vm.Option, bool) {
	opts := []vm.Option{vm.WithStepLimit(budget), vm.WithLDTAudit()}
	switch inj.Site {
	case chaos.SiteTransientLDT:
		opts = append(opts, vm.WithTransientAllocFault())
	case chaos.SiteExhaustLDT:
		opts = append(opts, vm.WithLDTReserve(ldt.UsableEntries))
	case chaos.SiteCorruptDescriptor:
		opts = append(opts, vm.WithDescriptorCorruption())
	case chaos.SiteCorruptShadow:
		opts = append(opts, vm.WithShadowCorruption())
	case chaos.SiteUnmapPage:
		if !s.hasReq {
			return nil, false
		}
		opts = append(opts, vm.WithPaging(64<<20), vm.WithPageUnmap(s.reqAddr))
	case chaos.SiteMalformedRequest:
		if !s.hasReq || s.reqSize < 2 {
			return nil, false
		}
		garbage := make([]byte, s.reqSize-1)
		for i := range garbage {
			garbage[i] = 0xFF
		}
		opts = append(opts, vm.WithPoke(s.reqAddr, garbage))
	case chaos.SiteRunawayHandler:
		// A handler stuck in a loop: model it by a budget the clean
		// instruction count already exceeds, so the watchdog must fire.
		runaway := s.clean.instrs / 2
		if runaway < 1 {
			runaway = 1
		}
		opts = []vm.Option{vm.WithStepLimit(runaway), vm.WithLDTAudit()}
	default:
		return nil, false
	}
	return opts, true
}

// record books one finished request.
func (s *modeServer) record(o requestOutcome, latency uint64, injected bool) {
	switch o {
	case outcomeOK:
		s.mr.OK++
	case outcomeTolerated:
		s.mr.Tolerated++
	case outcomeDegraded:
		s.mr.Degraded++
	case outcomeTimedOut:
		s.mr.TimedOut++
	case outcomeDetected:
		s.mr.Detected++
	case outcomeShed:
		s.mr.Shed++
	}
	if injected {
		s.mr.Injected++
	}
	if o.served() {
		s.mr.Served++
		s.lat.Observe(latency)
	}
	// Shedding window: push the outcome's badness, evict the oldest.
	s.window = append(s.window, o.bad())
	if o.bad() {
		s.windowBad++
	}
	if len(s.window) > ShedWindow {
		if s.window[0] {
			s.windowBad--
		}
		s.window = s.window[1:]
	}
	s.shedArmed = s.windowBad >= ShedThreshold
}

// ensureFlat lazily builds the degraded-mode artifact (unchecked
// handler: no per-array segments, hence no LDT pressure) and its clean
// run. Only Cash mode degrades; the flat server is the GCC-compiled
// handler, which is exactly what §3.4's flat-segment fallback executes.
// The build goes through the Engine, so it is a cache hit whenever the
// GCC mode server already compiled the same source.
func (s *modeServer) ensureFlat(ctx context.Context, eng *serve.Engine, source string, opts core.Options) {
	if s.flatClean != nil || s.flatErr != nil {
		return
	}
	art, err := eng.BuildContext(ctx, source, core.ModeGCC, opts)
	if err != nil {
		s.flatErr = err
		return
	}
	s.flatArt = art
	cr, err := runClean(art, s.budget, s.pool)
	if err != nil {
		s.flatErr = err
		return
	}
	s.flatClean = cr
}

// serveInjected runs one injected request to completion (including
// retries) and returns its outcome and latency.
func (s *modeServer) serveInjected(req int, inj chaos.Injection) (requestOutcome, uint64) {
	var backoff uint64
	for attempt := 0; ; attempt++ {
		opts, applicable := s.vmOptions(inj, s.budget)
		if !applicable {
			// Site cannot bite this program: the request is served
			// normally, the injection is absorbed.
			return outcomeTolerated, s.clean.cycles
		}
		if s.degraded && s.flatClean != nil &&
			inj.Site != chaos.SiteUnmapPage && inj.Site != chaos.SiteMalformedRequest && inj.Site != chaos.SiteRunawayHandler {
			// A degraded server makes no segment allocations, so the
			// LDT-targeting sites have nothing to hit: the request is
			// served by the flat handler.
			return outcomeDegraded, s.flatClean.cycles + backoff
		}
		m, err := s.art.NewMachine(append(s.pool.Options(s.art.Program), opts...)...)
		if err != nil {
			return outcomeDetected, 0
		}
		res, runErr := m.Run()
		// The machine's last use is the post-run invariant check; after it
		// the parts go back to the local pool no matter how the run ended
		// (reset-on-reuse erases any injected damage).
		var invErr error
		if runErr == nil {
			invErr = m.LDTManager().CheckInvariants()
		}
		s.pool.Put(m)
		latency := res.Cycles + backoff
		if runErr != nil {
			var f *vm.Fault
			if !errors.As(runErr, &f) {
				return outcomeDetected, latency
			}
			switch f.Kind {
			case vm.FaultTransient:
				s.mr.Retries++
				s.tr.Emit(obs.EvRetry, uint64(req), uint64(attempt), "transient modify_ldt failure")
				if attempt+1 >= MaxAttempts {
					s.tr.Emit(obs.EvShed, uint64(req), uint64(attempt), "retries exhausted")
					return outcomeShed, latency
				}
				b := uint64(BackoffBaseCycles) << uint(attempt)
				if b > BackoffCapCycles {
					b = BackoffCapCycles
				}
				backoff += b
				// Redraw for the retry: the fault may not recur.
				inj = s.plan.Draw(s.scope, req, attempt+1, s.sites)
				if !inj.Active() {
					return s.serveCleanRetried(backoff)
				}
				continue
			case vm.FaultStepLimit:
				return outcomeTimedOut, latency
			default:
				// Bound violation, page fault, #GP from a corrupted
				// descriptor, …: the fault was contained to this
				// handler and counted — exactly what the paper's
				// process-per-request isolation buys.
				return outcomeDetected, latency
			}
		}
		// The handler completed. Corruption may still be latent: the
		// invariant checker ran over the descriptor table and shadow state
		// before the parts were recycled.
		if invErr != nil {
			s.mr.CheckerViolations++
			return outcomeDetected, latency
		}
		if res.Stats.FlatFallbacks > 0 {
			s.noteExhaustion()
			return outcomeDegraded, latency
		}
		if s.hasReq && !equalOutput(res.Output, s.clean.output) {
			// Malformed input changed the response: the handler's own
			// validation path rejected it. Count as detected.
			return outcomeDetected, latency
		}
		return outcomeTolerated, latency
	}
}

// serveCleanRetried serves a request whose injected transient fault did
// not recur on retry.
func (s *modeServer) serveCleanRetried(backoff uint64) (requestOutcome, uint64) {
	if s.clean.fault != nil {
		if s.clean.fault.Kind == vm.FaultStepLimit {
			return outcomeTimedOut, 0
		}
		return outcomeDetected, 0
	}
	return outcomeTolerated, s.clean.cycles + backoff
}

// noteExhaustion tracks consecutive LDT-exhaustion fallbacks and flips
// the server into degraded mode past the threshold.
func (s *modeServer) noteExhaustion() {
	s.consecExh++
	if s.consecExh >= DegradeThreshold && !s.degraded {
		s.degraded = true
		s.sinceDegron = 0
		s.tr.Emit(obs.EvDegrade, uint64(s.consecExh), 0, "enter flat-segment mode")
	}
}

// serve handles request i end to end.
func (s *modeServer) serve(i int) {
	if s.shedArmed {
		// Load shedding: refuse the request, give the window one
		// neutral slot so the server can recover.
		s.tr.Emit(obs.EvShed, uint64(i), uint64(s.windowBad), "shed window tripped")
		s.record(outcomeShed, 0, false)
		return
	}
	inj := s.plan.Draw(s.scope, i, 0, s.sites)
	if inj.Active() {
		o, lat := s.serveInjected(i, inj)
		if o != outcomeDegraded {
			s.consecExh = 0
		}
		s.record(o, lat, true)
		return
	}
	// Uninjected request.
	if s.degraded {
		s.sinceDegron++
		if s.sinceDegron%ProbeInterval == 0 && s.clean.fault == nil {
			// Probe with a fully checked handler; a clean result
			// re-arms checking.
			s.degraded = false
			s.consecExh = 0
			s.tr.Emit(obs.EvRearm, uint64(i), 0, "clean probe re-armed checking")
			s.record(outcomeOK, s.clean.cycles, false)
			return
		}
		if s.flatClean != nil {
			s.record(outcomeDegraded, s.flatClean.cycles, false)
		} else {
			s.record(outcomeDetected, 0, false)
		}
		return
	}
	s.consecExh = 0
	if s.clean.fault != nil {
		// Even the uninjected handler fails: a step-limit means every
		// request times out; anything else is detected per request.
		if s.clean.fault.Kind == vm.FaultStepLimit {
			s.record(outcomeTimedOut, 0, false)
		} else {
			s.record(outcomeDetected, 0, false)
		}
		return
	}
	s.record(outcomeOK, s.clean.cycles, false)
}

// publishResilience adds one finished mode run's accounting to the
// shared registry: counter sums plus one latency-histogram merge, all
// commutative, so registry totals are independent of fan-out order.
func publishResilience(mr *ModeResilience, lat *obs.Histogram) {
	nmRequests.Add(uint64(mr.Requests))
	nmInjected.Add(uint64(mr.Injected))
	nmServed.Add(uint64(mr.Served))
	nmOK.Add(uint64(mr.OK))
	nmTolerated.Add(uint64(mr.Tolerated))
	nmDegraded.Add(uint64(mr.Degraded))
	nmShed.Add(uint64(mr.Shed))
	nmTimedOut.Add(uint64(mr.TimedOut))
	nmDetected.Add(uint64(mr.Detected))
	nmRetries.Add(uint64(mr.Retries))
	nmChecker.Add(uint64(mr.CheckerViolations))
	if err := nmLatency.Merge(lat); err != nil {
		// Both sides are built over DefaultCycleBounds; a mismatch is a
		// programming error, not a data condition.
		panic(err)
	}
}

// measureModeResilience runs the resilient serving loop for one
// application and mode.
func measureModeResilience(ctx context.Context, eng *serve.Engine, w workload.Workload, mode core.Mode, requests int, opts core.Options, plan *chaos.Plan) (ModeResilience, error) {
	art, err := eng.BuildContext(ctx, w.Source, mode, opts)
	if err != nil {
		return ModeResilience{}, err
	}
	budget := opts.StepLimit
	if budget == 0 {
		budget = DefaultCleanBudget
	}
	pool := eng.NewLocalPool()
	clean, err := runClean(art, budget, pool)
	if err != nil {
		return ModeResilience{}, err
	}
	mr := ModeResilience{Mode: mode, Requests: requests}
	s := &modeServer{
		art:    art,
		budget: budget,
		plan:   plan,
		scope:  w.Name + "/" + mode.String(),
		clean:  clean,
		mr:     &mr,
		lat:    obs.NewCycleHistogram(),
		tr:     eng.EventTrace(),
		pool:   pool,
	}
	if mode == core.ModeCash {
		s.sites = chaos.AllSites()
	} else {
		// Only Cash allocates per-array segments; the LDT-targeting
		// sites cannot bite the other modes.
		s.sites = chaos.UniversalSites()
	}
	s.reqAddr, s.reqSize, s.hasReq = inputGlobal(art.AST)
	if mode == core.ModeCash && plan.Enabled() {
		// Degradation needs the flat handler; build it up front so the
		// serving loop never hits a build error mid-run.
		s.ensureFlat(ctx, eng, w.Source, opts)
	}
	for i := 0; i < requests; i++ {
		if err := ctx.Err(); err != nil {
			return ModeResilience{}, err
		}
		s.serve(i)
	}
	// Nearest-rank quantiles from the shared histogram. The population is
	// well inside the exact-sample cap, so these are exact order
	// statistics — the ceil(q·N/100)-th smallest latency — not the
	// floored linear index the old local percentile() computed.
	mr.P50 = s.lat.Quantile(50)
	mr.P95 = s.lat.Quantile(95)
	mr.P99 = s.lat.Quantile(99)
	publishResilience(&mr, s.lat)
	return mr, nil
}

// MeasureResilience runs one network application's resilient server
// under all three compiler modes against the given chaos plan. Build
// failures are errors; injected faults never are — they surface only in
// the report's accounting. It uses a fresh, private Engine so the
// published serve.* and core.builds.* deltas are a pure function of
// (w, requests, opts, plan) — independent of whatever an earlier table
// left in a shared cache (the metrics goldens pin this).
func MeasureResilience(w workload.Workload, requests int, opts core.Options, plan *chaos.Plan) (*ResilienceReport, error) {
	return MeasureResilienceContext(context.Background(), serve.NewEngine(serve.EngineConfig{}), w, requests, opts, plan)
}

// MeasureResilienceContext is MeasureResilience through an explicit
// Engine.
func MeasureResilienceContext(ctx context.Context, eng *serve.Engine, w workload.Workload, requests int, opts core.Options, plan *chaos.Plan) (*ResilienceReport, error) {
	if w.Category != workload.CategoryNetwork {
		return nil, fmt.Errorf("netsim: %s is not a network workload", w.Name)
	}
	if requests <= 0 {
		requests = DefaultRequests
	}
	rep := &ResilienceReport{Name: w.Name, Paper: w.Paper, Requests: requests}
	for i, mode := range []core.Mode{core.ModeGCC, core.ModeCash, core.ModeBCC} {
		mr, err := measureModeResilience(ctx, eng, w, mode, requests, opts, plan)
		if err != nil {
			return nil, fmt.Errorf("%s [%v]: %w", w.Name, mode, err)
		}
		rep.Modes[i] = mr
	}
	return rep, nil
}

// MeasureAllResilience runs every network application against the plan
// on one fresh, private Engine (see MeasureResilience for why fresh).
// Like MeasureAll it returns partial results: failed applications stay
// nil in the slice and their errors are joined.
func MeasureAllResilience(requests int, opts core.Options, plan *chaos.Plan) ([]*ResilienceReport, error) {
	return MeasureAllResilienceContext(context.Background(), serve.NewEngine(serve.EngineConfig{}), requests, opts, plan)
}

// MeasureAllResilienceContext is MeasureAllResilience through an
// explicit Engine, fanned out with the Engine's worker budget.
func MeasureAllResilienceContext(ctx context.Context, eng *serve.Engine, requests int, opts core.Options, plan *chaos.Plan) ([]*ResilienceReport, error) {
	apps := workload.NetworkApps()
	out := make([]*ResilienceReport, len(apps))
	errs := eng.DoCollect(len(apps), func(i int) error {
		rep, err := MeasureResilienceContext(ctx, eng, apps[i], requests, opts, plan)
		if err != nil {
			return err
		}
		out[i] = rep
		return nil
	})
	return out, errors.Join(errs...)
}
