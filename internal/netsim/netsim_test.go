package netsim

import (
	"testing"

	"cash/internal/core"
	"cash/internal/workload"
)

func TestMeasureQpopper(t *testing.T) {
	w, ok := workload.ByName("qpopper")
	if !ok {
		t.Fatal("qpopper missing")
	}
	rep, err := Measure(w, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GCC.HandlerCycles == 0 || rep.Cash.HandlerCycles == 0 {
		t.Fatal("handler cycles must be measured")
	}
	if rep.Cash.HandlerCycles <= rep.GCC.HandlerCycles {
		t.Fatal("cash must cost more than the unchecked baseline")
	}
	if rep.LatencyPenaltyPct <= 0 {
		t.Fatalf("latency penalty = %.2f%%, want positive", rep.LatencyPenaltyPct)
	}
	if rep.ThroughputPenaltyPct <= 0 || rep.ThroughputPenaltyPct >= rep.LatencyPenaltyPct {
		t.Fatalf("throughput penalty %.2f%% must be positive and below latency %.2f%% (fixed OS cost dilutes it)",
			rep.ThroughputPenaltyPct, rep.LatencyPenaltyPct)
	}
	if rep.SpaceOverheadPct <= 0 {
		t.Fatalf("space overhead = %.2f%%, want positive", rep.SpaceOverheadPct)
	}
}

func TestMeasureRejectsNonNetwork(t *testing.T) {
	w, ok := workload.ByName("toast")
	if !ok {
		t.Fatal("toast missing")
	}
	if _, err := Measure(w, 10, core.Options{}); err == nil {
		t.Fatal("non-network workload must be rejected")
	}
}

// TestMeasureAllShape reproduces the Table 8 envelope: every application
// pays a positive but modest Cash latency penalty, and BCC (which the
// paper could not even compile for these apps) costs much more.
func TestMeasureAllShape(t *testing.T) {
	reps, err := MeasureAll(100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 6 {
		t.Fatalf("apps = %d, want 6", len(reps))
	}
	for _, rep := range reps {
		if rep.LatencyPenaltyPct <= 0 || rep.LatencyPenaltyPct > 40 {
			t.Errorf("%s: cash latency penalty %.1f%% outside the plausible band",
				rep.Name, rep.LatencyPenaltyPct)
		}
		bccPenalty := (float64(rep.BCC.HandlerCycles) - float64(rep.GCC.HandlerCycles)) /
			float64(rep.GCC.HandlerCycles) * 100
		if bccPenalty <= rep.LatencyPenaltyPct {
			t.Errorf("%s: bcc penalty %.1f%% must exceed cash %.1f%%",
				rep.Name, bccPenalty, rep.LatencyPenaltyPct)
		}
	}
}
