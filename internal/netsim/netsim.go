// Package netsim reproduces the paper's network-application methodology
// (§4.4): a server handles each incoming request with a freshly forked
// process, so the per-program and per-array set-up costs of Cash are paid
// on every request. The experiment sends 2000 requests; latency is the
// mean CPU time of the handler processes and throughput is requests
// divided by the span from first fork to last exit.
//
// The simulated machine is deterministic, so one run per mode yields the
// exact per-request handler cost. The span adds a fixed per-request
// operating-system cost (fork, scheduling, network stack) that is
// identical across compiler modes — which is why the paper's throughput
// penalties sit slightly below its latency penalties.
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cash/internal/core"
	"cash/internal/serve"
	"cash/internal/workload"
)

// OSOverheadCycles is the per-request fork/network cost added to the
// server span. It is mode-independent.
const OSOverheadCycles = 20000

// DefaultRequests matches the paper's client workload.
const DefaultRequests = 2000

// LibReplicas is the static-link replication factor for the libc corpus
// (see internal/bench: the library dominates statically linked binaries).
const LibReplicas = 24

// ModeNumbers are one compiler mode's measurements for one application.
type ModeNumbers struct {
	HandlerCycles uint64  // CPU cycles of one handler process
	CodeSize      int     // binary text estimate
	Latency       float64 // mean per-request latency in cycles
	Throughput    float64 // requests per million cycles of server span
}

// AppReport is one row of Table 8 (plus the BCC column the paper could
// not produce because BCC miscompiled the nss library).
type AppReport struct {
	Name     string
	Paper    string
	Requests int
	GCC      ModeNumbers
	Cash     ModeNumbers
	BCC      ModeNumbers

	// Penalties of Cash relative to the unchecked baseline, in percent.
	LatencyPenaltyPct    float64
	ThroughputPenaltyPct float64
	SpaceOverheadPct     float64
}

// Measure runs one network application under GCC, Cash and BCC and
// computes the Table 8 quantities, through the process-default serving
// engine.
func Measure(w workload.Workload, requests int, opts core.Options) (*AppReport, error) {
	return MeasureContext(context.Background(), serve.Default(), w, requests, opts)
}

// MeasureContext is Measure through an explicit Engine: builds are
// served from the artifact cache, handler executions from pooled
// machines and the run cache, and ctx cancels between (and inside)
// runs.
func MeasureContext(ctx context.Context, eng *serve.Engine, w workload.Workload, requests int, opts core.Options) (*AppReport, error) {
	if w.Category != workload.CategoryNetwork {
		return nil, fmt.Errorf("netsim: %s is not a network workload", w.Name)
	}
	if requests <= 0 {
		requests = DefaultRequests
	}
	rep := &AppReport{Name: w.Name, Paper: w.Paper, Requests: requests}
	lib := workload.LibCorpus()
	for _, mode := range []core.Mode{core.ModeGCC, core.ModeCash, core.ModeBCC} {
		nums, err := measureMode(ctx, eng, w, mode, requests, opts)
		if err != nil {
			return nil, fmt.Errorf("%s [%v]: %w", w.Name, mode, err)
		}
		// Space overhead compares statically linked binaries (§4.4): the
		// per-mode recompiled library text is part of every server.
		libArt, err := eng.BuildContext(ctx, lib.Source, mode, opts)
		if err != nil {
			return nil, fmt.Errorf("libc corpus [%v]: %w", mode, err)
		}
		nums.CodeSize += libArt.CodeSize() * LibReplicas
		switch mode {
		case core.ModeGCC:
			rep.GCC = nums
		case core.ModeCash:
			rep.Cash = nums
		case core.ModeBCC:
			rep.BCC = nums
		}
	}
	rep.LatencyPenaltyPct = pctIncrease(rep.Cash.Latency, rep.GCC.Latency)
	// Throughput is better when higher: the penalty is the relative drop
	// from the unchecked server's throughput.
	rep.ThroughputPenaltyPct = (rep.GCC.Throughput - rep.Cash.Throughput) / rep.GCC.Throughput * 100
	rep.SpaceOverheadPct = pctIncrease(float64(rep.Cash.CodeSize), float64(rep.GCC.CodeSize))
	return rep, nil
}

func measureMode(ctx context.Context, eng *serve.Engine, w workload.Workload, mode core.Mode, requests int, opts core.Options) (ModeNumbers, error) {
	art, err := eng.BuildContext(ctx, w.Source, mode, opts)
	if err != nil {
		return ModeNumbers{}, err
	}
	res, err := eng.RunContext(ctx, art)
	if err != nil {
		return ModeNumbers{}, err
	}
	if res.Violation != nil {
		return ModeNumbers{}, fmt.Errorf("unexpected bound violation: %v", res.Violation)
	}
	handler := res.Cycles
	span := float64(requests) * (float64(handler) + OSOverheadCycles)
	return ModeNumbers{
		HandlerCycles: handler,
		CodeSize:      art.CodeSize(),
		Latency:       float64(handler),
		Throughput:    float64(requests) / span * 1e6,
	}, nil
}

// pctIncrease returns how much larger v is than base, in percent. A zero
// baseline has no meaningful relative increase, so the result is the NaN
// sentinel rather than a silent 0 — callers that format percentages
// render it as "n/a" (see bench.Table), and callers that compute with it
// can test math.IsNaN instead of mistaking "no baseline" for "no change".
func pctIncrease(v, base float64) float64 {
	if base == 0 {
		return math.NaN()
	}
	return (v - base) / base * 100
}

// MeasureAll runs every network application through the process-default
// engine. Applications are measured independently: when some fail, the
// returned slice still carries every completed report (failed
// applications stay nil) alongside an error joining all per-application
// failures, so one bad app no longer discards the rows that did
// complete.
func MeasureAll(requests int, opts core.Options) ([]*AppReport, error) {
	return MeasureAllContext(context.Background(), serve.Default(), requests, opts)
}

// MeasureAllContext is MeasureAll through an explicit Engine, fanned
// out with the Engine's worker budget.
func MeasureAllContext(ctx context.Context, eng *serve.Engine, requests int, opts core.Options) ([]*AppReport, error) {
	apps := workload.NetworkApps()
	out := make([]*AppReport, len(apps))
	errs := eng.DoCollect(len(apps), func(i int) error {
		rep, err := MeasureContext(ctx, eng, apps[i], requests, opts)
		if err != nil {
			return err
		}
		out[i] = rep
		return nil
	})
	return out, errors.Join(errs...)
}
