package netsim

import (
	"reflect"
	"testing"

	"cash/internal/chaos"
	"cash/internal/core"
	"cash/internal/workload"
)

func apacheWorkload(t *testing.T) workload.Workload {
	t.Helper()
	for _, w := range workload.NetworkApps() {
		if w.Name == "apache" {
			return w
		}
	}
	t.Fatal("apache workload missing")
	return workload.Workload{}
}

func chaosPlan(seed uint64, rate float64) *chaos.Plan {
	return chaos.NewPlan(chaos.Config{Seed: seed, Rate: rate})
}

// checkAccounting verifies the outcome counters balance: every offered
// request lands in exactly one bucket, and Served is the sum of the
// serving buckets.
func checkAccounting(t *testing.T, mr *ModeResilience) {
	t.Helper()
	total := mr.OK + mr.Tolerated + mr.Degraded + mr.TimedOut + mr.Detected + mr.Shed
	if total != mr.Requests {
		t.Errorf("%v: outcome sum %d != requests %d (%+v)", mr.Mode, total, mr.Requests, *mr)
	}
	if served := mr.OK + mr.Tolerated + mr.Degraded; served != mr.Served {
		t.Errorf("%v: served %d != OK+Tolerated+Degraded %d", mr.Mode, mr.Served, served)
	}
}

func TestResilienceChaosOffAllOK(t *testing.T) {
	rep, err := MeasureResilience(apacheWorkload(t), 100, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Modes {
		mr := &rep.Modes[i]
		checkAccounting(t, mr)
		if mr.OK != mr.Requests {
			t.Errorf("%v: chaos off but only %d/%d OK (%+v)", mr.Mode, mr.OK, mr.Requests, *mr)
		}
		if mr.Injected != 0 {
			t.Errorf("%v: chaos off but %d injected", mr.Mode, mr.Injected)
		}
		if mr.AvailabilityPct() != 100 {
			t.Errorf("%v: availability %.1f%% != 100%%", mr.Mode, mr.AvailabilityPct())
		}
		if mr.P50 == 0 || mr.P50 != mr.P99 {
			t.Errorf("%v: deterministic clean handler should have flat latency, got p50=%d p99=%d", mr.Mode, mr.P50, mr.P99)
		}
	}
}

func TestResilienceDeterministicAcrossRuns(t *testing.T) {
	w := apacheWorkload(t)
	run := func() *ResilienceReport {
		rep, err := MeasureResilience(w, 300, core.Options{}, chaosPlan(42, 0.10))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

func TestResilienceUnderInjection(t *testing.T) {
	rep, err := MeasureResilience(apacheWorkload(t), 400, core.Options{}, chaosPlan(1, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Modes {
		mr := &rep.Modes[i]
		checkAccounting(t, mr)
		if mr.Injected == 0 {
			t.Errorf("%v: 5%% rate over 400 requests injected nothing", mr.Mode)
		}
		if mr.AvailabilityPct() <= 0 {
			t.Errorf("%v: availability %.1f%% — server did not survive (%+v)", mr.Mode, mr.AvailabilityPct(), *mr)
		}
		// The harness never crashes: every injected request must land
		// in an explicit outcome bucket, which checkAccounting proves.
		// Faults must actually have been exercised somewhere.
		if handled := mr.Tolerated + mr.Degraded + mr.TimedOut + mr.Detected + mr.Shed; handled == 0 {
			t.Errorf("%v: injected %d but no non-OK outcomes recorded", mr.Mode, mr.Injected)
		}
	}
	// Cash is the only mode with LDT-targeting sites; across 400
	// requests at least one retry or degradation should appear.
	cash := &rep.Modes[1]
	if cash.Mode != core.ModeCash {
		t.Fatalf("mode order changed: %v", cash.Mode)
	}
	if cash.Retries == 0 && cash.Degraded == 0 && cash.Detected == 0 {
		t.Errorf("cash: no retries, degradations or detections under injection (%+v)", *cash)
	}
}

// TestResilienceWatchdog is the watchdog satellite: a handler that never
// terminates must be killed by the step budget, counted as timed out,
// and the measurement must return promptly instead of hanging.
func TestResilienceWatchdog(t *testing.T) {
	spin := workload.Workload{
		Name:     "spin",
		Paper:    "spin",
		Category: workload.CategoryNetwork,
		Source:   "void main() { int x = 1; while (x) { x = 1; } }",
	}
	rep, err := MeasureResilience(spin, 50, core.Options{StepLimit: 200_000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Modes {
		mr := &rep.Modes[i]
		checkAccounting(t, mr)
		// Every request either hits the watchdog or is refused by the
		// load shedder once the failure window fills — never served,
		// never hung.
		if mr.TimedOut == 0 {
			t.Errorf("%v: watchdog never fired (%+v)", mr.Mode, *mr)
		}
		if mr.TimedOut+mr.Shed != mr.Requests {
			t.Errorf("%v: %d timed out + %d shed != %d requests (%+v)", mr.Mode, mr.TimedOut, mr.Shed, mr.Requests, *mr)
		}
		if mr.Shed == 0 {
			t.Errorf("%v: sustained timeouts never tripped load shedding (%+v)", mr.Mode, *mr)
		}
		if mr.Served != 0 {
			t.Errorf("%v: runaway handler served %d requests", mr.Mode, mr.Served)
		}
	}
}

// TestResilienceRunawaySiteFires drives the runaway-handler site
// directly: with the site forced at rate 1 every request must hit the
// watchdog, never a hang or harness error.
func TestResilienceRunawaySiteFires(t *testing.T) {
	plan := chaos.NewPlan(chaos.Config{
		Seed:  7,
		Rate:  1,
		Sites: []chaos.Site{chaos.SiteRunawayHandler},
	})
	rep, err := MeasureResilience(apacheWorkload(t), 30, core.Options{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Modes {
		mr := &rep.Modes[i]
		checkAccounting(t, mr)
		if mr.TimedOut == 0 {
			t.Errorf("%v: forced runaway site produced no timeouts (%+v)", mr.Mode, *mr)
		}
	}
}

func TestMeasureAllResiliencePartial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every network app")
	}
	reps, err := MeasureAllResilience(100, core.Options{}, chaosPlan(1, 0.05))
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if len(reps) != len(workload.NetworkApps()) {
		t.Fatalf("got %d reports", len(reps))
	}
	for _, rep := range reps {
		if rep == nil {
			t.Fatal("nil report without error")
		}
		for i := range rep.Modes {
			checkAccounting(t, &rep.Modes[i])
		}
	}
}

func TestMeasureResilienceRejectsNonNetwork(t *testing.T) {
	ker := workload.Kernels()[0]
	if _, err := MeasureResilience(ker, 10, core.Options{}, nil); err == nil {
		t.Fatal("expected category error")
	}
}
