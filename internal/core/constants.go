package core

import (
	"fmt"

	"cash/internal/ldt"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// Overhead-constant measurement (§4.1).
//
// The paper reports three fixed costs of the Cash approach on a 1.1 GHz
// Pentium III: a per-program overhead of 543 cycles (call-gate
// installation and free-list set-up), a per-array overhead of 263 cycles
// (segment allocation through the call gate plus the user-space free),
// and a per-array-use overhead of 4 cycles (one segment-register load per
// use of an array). These functions measure the same quantities on the
// simulated machine so the calibration can be asserted by tests and
// reported by benchmarks.

// OverheadConstants are the measured fixed costs of the Cash mechanism.
type OverheadConstants struct {
	PerProgram  uint64 // call gate + free-list set-up (paper: 543)
	PerArray    uint64 // segment alloc + free lifecycle (paper: 263)
	PerArrayUse uint64 // segment register load (paper: 4)
}

// MeasureOverheadConstants runs three minimal machine workloads that
// isolate each constant.
func MeasureOverheadConstants() (OverheadConstants, error) {
	var oc OverheadConstants

	// Per-program: the set_ldt_callgate path alone.
	base, err := measure(func(b *vm.Builder) {})
	if err != nil {
		return oc, err
	}
	withSetup, err := measure(func(b *vm.Builder) {
		b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysSetLDTCallGate))
		b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
	})
	if err != nil {
		return oc, err
	}
	oc.PerProgram = withSetup - base - 1 // minus the MOV

	// Per-array: allocate and free one segment through the call gate.
	withArray, err := measure(func(b *vm.Builder) {
		b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.SysSetLDTCallGate))
		b.Emit(vm.Instr{Op: vm.INT, Src: vm.I(0x80)})
		b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.GateAllocSegment))
		b.Op(vm.MOV, vm.R(vm.EBX), vm.I(0x1000))
		b.Op(vm.MOV, vm.R(vm.ECX), vm.I(64))
		b.Op(vm.MOV, vm.R(vm.EDX), vm.I(0x2000))
		b.Emit(vm.Instr{Op: vm.LCALL, Src: vm.I(7)})
		b.Op(vm.MOV, vm.R(vm.ECX), vm.R(vm.EAX))
		b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.GateFreeSegment))
		b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.ECX))
		b.Emit(vm.Instr{Op: vm.LCALL, Src: vm.I(7)})
	})
	if err != nil {
		return oc, err
	}
	oc.PerArray = withArray - withSetup - 7 // minus the 7 parameter MOVs

	// Per-array-use: one segment-register load.
	withUse, err := measure(func(b *vm.Builder) {
		b.Op(vm.MOV, vm.R(vm.EAX), vm.I(int32(vm.FlatDataSelector)))
		b.Emit(vm.Instr{Op: vm.MOVSR, Dst: vm.SR(x86seg.ES), Src: vm.R(vm.EAX), Size: 2})
	})
	if err != nil {
		return oc, err
	}
	oc.PerArrayUse = withUse - base - 1 // minus the MOV

	return oc, nil
}

func measure(emit func(b *vm.Builder)) (uint64, error) {
	b := vm.NewBuilder()
	emit(b)
	b.Emit(vm.Instr{Op: vm.HLT})
	p, err := b.Finish("microbench")
	if err != nil {
		return 0, err
	}
	p.DataBase = 0x1000
	p.HeapBase = 0x100000
	p.StackTop = 0x7fff0000
	m, err := vm.New(p, vm.ModeCash)
	if err != nil {
		return 0, err
	}
	res, err := m.Run()
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// PaperConstants are the §4.1 reference values.
var PaperConstants = OverheadConstants{
	PerProgram:  ldt.CostProgramSetup,
	PerArray:    ldt.CostCallGate + ldt.CostFree,
	PerArrayUse: 4,
}

// Verify checks the measured constants against the paper's values.
func (oc OverheadConstants) Verify() error {
	if oc.PerProgram != PaperConstants.PerProgram {
		return fmt.Errorf("per-program overhead %d, paper reports %d", oc.PerProgram, PaperConstants.PerProgram)
	}
	if oc.PerArray != PaperConstants.PerArray {
		return fmt.Errorf("per-array overhead %d, paper reports %d", oc.PerArray, PaperConstants.PerArray)
	}
	if oc.PerArrayUse != PaperConstants.PerArrayUse {
		return fmt.Errorf("per-array-use overhead %d, paper reports %d", oc.PerArrayUse, PaperConstants.PerArrayUse)
	}
	return nil
}
