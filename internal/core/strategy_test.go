package core

import (
	"strings"
	"testing"

	"cash/internal/vm"
)

// TestStrategiesExposed pins the core-level registry view: four
// built-in strategies whose names are the valid Mode values.
func TestStrategiesExposed(t *testing.T) {
	names := StrategyNames()
	want := []string{"gcc", "bcc", "cash", "mpx"}
	if len(names) != len(want) {
		t.Fatalf("StrategyNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("StrategyNames() = %v, want %v", names, want)
		}
	}
	for i, info := range Strategies() {
		if info.Name != want[i] {
			t.Errorf("Strategies()[%d].Name = %q, want %q", i, info.Name, want[i])
		}
	}
}

// TestBuildUnknownStrategy: an unregistered name fails with an error
// listing the valid names.
func TestBuildUnknownStrategy(t *testing.T) {
	_, err := Build(sumKernel, Mode("asan"), Options{})
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, want := range []string{`"asan"`, "gcc", "bcc", "cash", "mpx"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

// TestModeConstantsAreNames: the deprecated Mode constants are the
// strategy names themselves, so enum-based and name-based callers build
// byte-identical artifacts.
func TestModeConstantsAreNames(t *testing.T) {
	if ModeCash != Mode("cash") || ModeGCC != "gcc" || ModeBCC != "bcc" || ModeMPX != "mpx" {
		t.Fatal("Mode constants must equal their string spellings")
	}
	a, err := Build(sumKernel, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sumKernel, Mode("cash"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Disassemble() != b.Disassemble() {
		t.Fatal("constant and name spelling compiled different programs")
	}
}

// TestBuildAndRunMPX: the mpx strategy runs a bound-respecting kernel
// with the same output as the other strategies and reports bounds-table
// activity in the vm counters.
func TestBuildAndRunMPX(t *testing.T) {
	before := BuildsOf(ModeMPX)
	art, err := Build(sumKernel, ModeMPX, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if BuildsOf(ModeMPX) != before+1 {
		t.Error("mpx build not counted by BuildsOf")
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("unexpected violation: %v", res.Violation)
	}
	if len(res.Output) != 1 || res.Output[0] != 496 {
		t.Fatalf("output %v, want [496]", res.Output)
	}
	if res.Stats.BndChecks == 0 {
		t.Error("mpx run reported no bndcl checks")
	}
}

// TestMPXDetectsViolation: an overflowing loop under mpx stops on a
// software-check fault, reported as a violation result like bcc's.
func TestMPXDetectsViolation(t *testing.T) {
	src := `
int a[4];
void main() {
	for (int i = 0; i < 8; i++) a[i] = i;
}`
	art, err := Build(src, ModeMPX, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatalf("violations are results, not errors: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("overflow must be reported")
	}
	if res.Violation.Kind != vm.FaultSoftwareCheck {
		t.Fatalf("violation kind %v, want software check", res.Violation.Kind)
	}
}

// TestCompareStrategies: a four-strategy comparison fills Reports in
// request order, keeps the legacy three-mode fields, and generalizes
// the overhead accessors.
func TestCompareStrategies(t *testing.T) {
	cmp, err := CompareStrategies("sum", sumKernel,
		CompareConfig{Strategies: []string{"gcc", "bcc", "cash", "mpx"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Reports) != 4 {
		t.Fatalf("Reports has %d entries, want 4", len(cmp.Reports))
	}
	for i, name := range []string{"gcc", "bcc", "cash", "mpx"} {
		if string(cmp.Reports[i].Mode) != name {
			t.Errorf("Reports[%d].Mode = %v, want %s", i, cmp.Reports[i].Mode, name)
		}
		if cmp.Reports[i].Cycles == 0 {
			t.Errorf("%s reported no cycles", name)
		}
	}
	// Legacy layout still filled for the classic three.
	if cmp.GCC.Cycles != cmp.Reports[0].Cycles || cmp.Cash.Cycles != cmp.Reports[2].Cycles {
		t.Error("legacy GCC/Cash fields not filled from Reports")
	}
	// Generalized accessors agree with the legacy ones.
	if cmp.OverheadPct("cash") != cmp.CashOverheadPct() {
		t.Errorf("OverheadPct(cash) = %v, CashOverheadPct = %v",
			cmp.OverheadPct("cash"), cmp.CashOverheadPct())
	}
	if cmp.OverheadPct("mpx") <= 0 {
		t.Errorf("mpx overhead %.1f%% must be positive", cmp.OverheadPct("mpx"))
	}
	if cmp.SizeOverheadPct("bcc") != cmp.BCCSizeOverheadPct() {
		t.Error("SizeOverheadPct(bcc) disagrees with BCCSizeOverheadPct")
	}
	if _, ok := cmp.Report("asan"); ok {
		t.Error("Report resolved a strategy that was not compared")
	}
}

// TestCompareStrategiesUnknownName: a bad name in the set fails up
// front with the registry's unknown-strategy error.
func TestCompareStrategiesUnknownName(t *testing.T) {
	_, err := CompareStrategies("sum", sumKernel,
		CompareConfig{Strategies: []string{"gcc", "asan"}})
	if err == nil || !strings.Contains(err.Error(), `unknown strategy "asan"`) {
		t.Fatalf("want unknown-strategy error, got %v", err)
	}
}

// TestCompareDefaultTrio: the deprecated wrapper and an empty
// CompareConfig both compare exactly gcc, bcc, cash.
func TestCompareDefaultTrio(t *testing.T) {
	cmp, err := CompareStrategies("sum", sumKernel, CompareConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Reports) != 3 {
		t.Fatalf("default comparison has %d reports, want 3", len(cmp.Reports))
	}
	legacy, err := Compare("sum", sumKernel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.GCC.Cycles != cmp.GCC.Cycles || legacy.Cash.Cycles != cmp.Cash.Cycles {
		t.Fatal("deprecated Compare disagrees with CompareStrategies default")
	}
}
