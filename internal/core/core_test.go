package core

import (
	"strings"
	"testing"
)

const sumKernel = `
int a[32];
void main() {
	int s = 0;
	for (int r = 0; r < 100; r++) {
		for (int i = 0; i < 32; i++) a[i] = i;
		for (int i = 0; i < 32; i++) s += a[i];
	}
	printi(s / 100);
}`

func TestBuildAndRunAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
		art, err := Build(sumKernel, mode, Options{})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		res, err := art.Run()
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Violation != nil {
			t.Fatalf("%v: unexpected violation %v", mode, res.Violation)
		}
		if len(res.Output) != 1 || res.Output[0] != 496 {
			t.Fatalf("%v: output %v, want [496]", mode, res.Output)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("int x = ;", ModeGCC, Options{}); err == nil {
		t.Error("syntax error must fail")
	}
	if _, err := Build("void main() { y = 1; }", ModeGCC, Options{}); err == nil {
		t.Error("check error must fail")
	}
	if _, err := Build(sumKernel, ModeCash, Options{SegRegs: 7}); err == nil {
		t.Error("bad register budget must fail")
	}
}

func TestRunReportsViolation(t *testing.T) {
	src := `
int a[4];
void main() {
	for (int i = 0; i < 8; i++) a[i] = i;
}`
	art, err := Build(src, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatalf("violations are results, not errors: %v", err)
	}
	if res.Violation == nil {
		t.Fatal("overflow must be reported")
	}
	if !res.Violation.IsBoundViolation() {
		t.Fatal("violation must be a bound violation")
	}
}

func TestCompare(t *testing.T) {
	cmp, err := Compare("sum", sumKernel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.GCC.Cycles == 0 || cmp.BCC.Cycles == 0 || cmp.Cash.Cycles == 0 {
		t.Fatal("all modes must report cycles")
	}
	if cmp.CashOverheadPct() >= cmp.BCCOverheadPct() {
		t.Fatalf("cash overhead %.1f%% must be below bcc %.1f%%",
			cmp.CashOverheadPct(), cmp.BCCOverheadPct())
	}
	if cmp.Cash.StaticHW == 0 {
		t.Error("cash must report static hardware checks")
	}
	if cmp.BCC.StaticSW == 0 {
		t.Error("bcc must report static software checks")
	}
	if cmp.CashSizeOverheadPct() <= 0 || cmp.BCCSizeOverheadPct() <= 0 {
		t.Error("both checkers must grow the binary")
	}
}

func TestCompareRejectsViolatingProgram(t *testing.T) {
	src := `
int a[4];
void main() { for (int i = 0; i <= 4; i++) a[i] = 0; }`
	if _, err := Compare("bad", src, Options{}); err == nil {
		t.Fatal("Compare must reject programs that violate bounds")
	}
}

func TestOverheadConstantsMatchPaper(t *testing.T) {
	oc, err := MeasureOverheadConstants()
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Verify(); err != nil {
		t.Fatal(err)
	}
	// Paper §4.1 reference values.
	if oc.PerProgram != 543 {
		t.Errorf("per-program = %d, paper: 543", oc.PerProgram)
	}
	if oc.PerArray != 263 {
		t.Errorf("per-array = %d, paper: 263", oc.PerArray)
	}
	if oc.PerArrayUse != 4 {
		t.Errorf("per-array-use = %d, paper: 4", oc.PerArrayUse)
	}
}

func TestCharacterize(t *testing.T) {
	src := `
int a[4]; int b[4]; int c[4]; int d[4];
void main() {
	for (int i = 0; i < 4; i++) a[i] = i;
	for (int i = 0; i < 4; i++) { a[i] = b[i]; c[i] = d[i]; }
	int x = 0;
	while (x < 10) x++;
}`
	ch, err := Characterize(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.ArrayUsingLoops != 2 {
		t.Errorf("ArrayUsingLoops = %d, want 2", ch.ArrayUsingLoops)
	}
	if ch.SpilledLoops != 1 {
		t.Errorf("SpilledLoops = %d, want 1", ch.SpilledLoops)
	}
	if ch.Lines != minicLines(src) {
		t.Errorf("Lines = %d, want %d", ch.Lines, minicLines(src))
	}
}

func minicLines(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

func TestSegRegBudgets(t *testing.T) {
	src := `
int a[4]; int b[4]; int c[4]; int d[4];
void main() {
	for (int i = 0; i < 4; i++) { a[i] = i; b[i] = i; c[i] = i; d[i] = i; }
}`
	swChecks := func(budget int) uint64 {
		art, err := Build(src, ModeCash, Options{SegRegs: budget})
		if err != nil {
			t.Fatal(err)
		}
		res, err := art.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatal(res.Violation)
		}
		return res.Stats.SWChecks
	}
	if got2, got3, got4 := swChecks(2), swChecks(3), swChecks(4); !(got2 > got3 && got3 > got4) {
		t.Fatalf("software checks must shrink with more registers: 2->%d 3->%d 4->%d", got2, got3, got4)
	}
	if swChecks(4) != 0 {
		t.Fatalf("4 registers must cover 4 arrays")
	}
}

func TestWithoutCallGateCostsMore(t *testing.T) {
	// Four distinct local-array sizes defeat the 3-entry segment cache,
	// so every allocation enters the kernel — through the 253-cycle call
	// gate normally, through the 781-cycle modify_ldt without the patch.
	src := `
int w1(int n) { int b[8];  for (int i = 0; i < 8; i++)  b[i] = n; return b[7]; }
int w2(int n) { int b[16]; for (int i = 0; i < 16; i++) b[i] = n; return b[15]; }
int w3(int n) { int b[24]; for (int i = 0; i < 24; i++) b[i] = n; return b[23]; }
int w4(int n) { int b[32]; for (int i = 0; i < 32; i++) b[i] = n; return b[31]; }
void main() {
	int s = 0;
	for (int i = 0; i < 50; i++) s += w1(i) + w2(i) + w3(i) + w4(i);
	printi(s);
}`
	fast, err := Build(src, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Build(src, ModeCash, Options{WithoutCallGate: true})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fast.Run()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := slow.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cycles <= fr.Cycles {
		t.Fatalf("modify_ldt path (%d) must cost more than call gate (%d)", sr.Cycles, fr.Cycles)
	}
}
