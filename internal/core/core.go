// Package core is the heart of the Cash reproduction: it ties the mini-C
// front end, the registered checking strategies and the simulated machine
// together into the workflow the paper evaluates — compile a program
// under each strategy (unchecked gcc, software-checked bcc,
// segmentation-checked cash, MPX-style mpx), run it, and compare cycle
// counts, check counts, code sizes and detection behaviour.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cash/internal/codegen"
	"cash/internal/ir"
	"cash/internal/ldt"
	"cash/internal/mem"
	"cash/internal/minic"
	"cash/internal/obs"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// Workflow-level metrics in the shared observability registry: how many
// artifacts were built per mode, how many executed, and the two
// coverage-loss signals the paper cares about (spilled loop iterations,
// §3.7, and flat-segment fallbacks on LDT exhaustion, §3.4).
var (
	mBuildsGCC  = obs.Default().Counter("core.builds.gcc")
	mBuildsBCC  = obs.Default().Counter("core.builds.bcc")
	mBuildsCash = obs.Default().Counter("core.builds.cash")
	mRuns       = obs.Default().Counter("core.runs")
	mViolations = obs.Default().Counter("core.violations")
	mSpilled    = obs.Default().Counter("core.segment_spilled_iters")
	mFlatFalls  = obs.Default().Counter("core.flat_fallbacks")
)

// mBuildsOther counts builds of strategies beyond the classic three
// (Mode -> *atomic.Uint64). Deliberately NOT in the obs registry: the
// registry's metric set is static per process — the metrics-delta
// goldens and the parallel-determinism diff depend on that — so a
// strategy registered after those goldens were pinned must not add a
// registry line. BuildsOf exposes the counts to tests.
var mBuildsOther sync.Map

func countBuild(mode Mode) {
	switch mode {
	case ModeGCC:
		mBuildsGCC.Inc()
	case ModeBCC:
		mBuildsBCC.Inc()
	case ModeCash:
		mBuildsCash.Inc()
	default:
		c, ok := mBuildsOther.Load(mode)
		if !ok {
			c, _ = mBuildsOther.LoadOrStore(mode, new(atomic.Uint64))
		}
		c.(*atomic.Uint64).Add(1)
	}
}

// BuildsOf reports how many builds (including cached ones, see
// NoteCachedBuild) this process requested under the given strategy.
// For the classic three the count is also published as the
// core.builds.* metric.
func BuildsOf(mode Mode) uint64 {
	switch mode {
	case ModeGCC:
		return mBuildsGCC.Value()
	case ModeBCC:
		return mBuildsBCC.Value()
	case ModeCash:
		return mBuildsCash.Value()
	}
	if c, ok := mBuildsOther.Load(mode); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// NoteCachedBuild records a logical build that was satisfied without
// compiling — an artifact-cache hit or a coalesced concurrent build in
// the serving engine. The core.builds.* counters thereby keep counting
// requests, not compiles, so their values are independent of cache
// state; the engine's own serve.cache.* counters carry the hit/miss
// split.
func NoteCachedBuild(mode Mode) { countBuild(mode) }

// Mode names a checking strategy from the codegen registry ("gcc",
// "bcc", "cash", "mpx" — see Strategies). It used to be a closed enum
// aliasing the vm execution mode; it is now the strategy name itself,
// so the constants below compare equal to their plain string
// spellings and any registered strategy can be requested by name.
type Mode string

// The registered checking strategies. The list is open-ended; these
// constants cover the built-in strategies.
const (
	ModeGCC  Mode = "gcc"
	ModeBCC  Mode = "bcc"
	ModeCash Mode = "cash"
	ModeMPX  Mode = "mpx"
)

// String returns the strategy name. Mode used to be an integer enum
// whose String method rendered these same names; keeping the method
// preserves %v formatting and callers that stringify modes explicitly.
func (m Mode) String() string { return string(m) }

// StrategyInfo describes one registered checking strategy.
type StrategyInfo = codegen.StrategyInfo

// Strategy kinds (StrategyInfo.Kind).
const (
	KindLowering = codegen.KindLowering
	KindHardware = codegen.KindHardware
)

// Strategies lists every registered checking strategy in registration
// order.
func Strategies() []StrategyInfo { return codegen.Strategies() }

// StrategyNames lists the registered strategy names in registration
// order — the valid Mode values.
func StrategyNames() []string { return codegen.StrategyNames() }

// resolve maps the strategy name to its registry entry, with the
// canonical unknown-name error (which lists the valid names).
func (m Mode) resolve() (StrategyInfo, error) {
	info, ok := codegen.StrategyByName(string(m))
	if !ok {
		return StrategyInfo{}, codegen.UnknownStrategyError(string(m))
	}
	return info, nil
}

// Options tunes a build.
type Options struct {
	// SegRegs is the Cash segment-register budget (2, 3 or 4 registers);
	// 0 means the prototype default of 3 (ES, FS, GS). 4 adds SS (§3.7).
	SegRegs int
	// SkipReadChecks enables the §3.8 security-only variant.
	SkipReadChecks bool
	// UseBoundInstr makes software checks use the IA-32 bound
	// instruction (7 cycles) instead of the 6-instruction sequence —
	// the §2 ablation explaining why bound lost.
	UseBoundInstr bool
	// WithoutCallGate runs without the Cash kernel patch: segment
	// allocations pay the stock modify_ldt cost (§3.6 ablation).
	WithoutCallGate bool
	// ElectricFence replaces malloc with the guard-page debugger of the
	// paper's related work (§2): heap objects end at a page boundary
	// followed by an unmapped page. Enables paging. Detects heap
	// overruns only, at a two-pages-per-allocation space cost.
	ElectricFence bool
	// Passes names the IR optimization passes to run in the back end
	// (see codegen.PassNames): "rce" eliminates redundant software
	// checks, "hoist" moves loop-invariant checks into a preheader,
	// "affine" replaces checks on affine computed indices (i*c1 + j*c2
	// + c3 over counted-loop nests) with convex-hull endpoint checks.
	// Order and duplicates are normalised away; empty keeps the output
	// byte-identical to the historical direct back end.
	Passes []string
	// StepLimit bounds execution; 0 means the VM default.
	StepLimit uint64
	// Tier2 enables superblock execution: the compiler's loop regions
	// are fused into single closures with bulk counter accounting,
	// deopting to the step interpreter at precise instruction boundaries
	// on any fault or side exit. Simulated output, counters and
	// violation verdicts are identical to step execution; only host
	// speed changes.
	Tier2 bool
	// EventTrace, when non-nil, receives structured machine events
	// (segment-register loads, descriptor installs/evicts, faults, LDT
	// traffic) from every machine the artifact creates. Nil — the
	// default — keeps event emission entirely off the hot paths.
	EventTrace *obs.Trace
}

func (o Options) segRegs() ([]x86seg.SegReg, error) {
	switch o.SegRegs {
	case 0, 3:
		return codegen.DefaultSegRegs, nil
	case 2:
		return codegen.DefaultSegRegs[:2], nil
	case 4:
		return codegen.SegRegsWithSS, nil
	default:
		return nil, fmt.Errorf("core: unsupported segment register budget %d", o.SegRegs)
	}
}

// NormalizePasses canonicalises a pass list: known names only, each at
// most once, in the registry's execution order. The serving layer hashes
// the result into artifact content addresses, so "hoist,rce" and
// ["rce","hoist"] share one cache entry.
func NormalizePasses(passes []string) ([]string, error) {
	want := make(map[string]bool, len(passes))
	for _, name := range passes {
		known := false
		for _, p := range codegen.PassNames() {
			if p == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("core: unknown pass %q (have %v)", name, codegen.PassNames())
		}
		want[name] = true
	}
	var out []string
	for _, p := range codegen.PassNames() {
		if want[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

// Artifact is a compiled program for one checking strategy.
type Artifact struct {
	Mode    Mode
	Program *vm.Program
	AST     *minic.Program
	ir      *ir.Module
	vmMode  vm.Mode
	opts    Options
}

// Build parses, checks and compiles source for the named strategy.
func Build(source string, mode Mode, opts Options) (*Artifact, error) {
	info, err := mode.resolve()
	if err != nil {
		return nil, err
	}
	ast, err := minic.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := minic.Check(ast); err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	regs, err := opts.segRegs()
	if err != nil {
		return nil, err
	}
	passes, err := NormalizePasses(opts.Passes)
	if err != nil {
		return nil, err
	}
	opts.Passes = passes
	prog, mod, err := codegen.CompileIR(ast, codegen.Config{
		Mode:           info.Mode,
		SegRegs:        regs,
		SkipReadChecks: opts.SkipReadChecks,
		UseBoundInstr:  opts.UseBoundInstr,
		Passes:         passes,
	})
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	countBuild(mode)
	return &Artifact{Mode: mode, Program: prog, AST: ast, ir: mod, vmMode: info.Mode, opts: opts}, nil
}

// CodeSize returns the estimated binary text size in bytes.
func (a *Artifact) CodeSize() int { return a.Program.CodeSize() }

// Options returns the build options the artifact was compiled with.
func (a *Artifact) Options() Options { return a.opts }

// WithEventTrace returns a shallow copy of the artifact whose machines
// emit into tr (the compiled Program is shared — predecoding happens
// once). The serving engine uses it to attach a request's trace to a
// cached, trace-free artifact.
func (a *Artifact) WithEventTrace(tr *obs.Trace) *Artifact {
	clone := *a
	clone.opts.EventTrace = tr
	return &clone
}

// StaticStats exposes the code generator's static counters.
func (a *Artifact) StaticStats() map[string]uint64 { return a.Program.Stats }

// DumpIR renders the optimized IR module the program was emitted from.
// Artifacts decoded from the disk store carry no IR (only the compiled
// Program is persisted) and render as the empty string.
func (a *Artifact) DumpIR() string {
	if a.ir == nil {
		return ""
	}
	return a.ir.Dump()
}

// DumpSuperblocks renders the tier-2 superblocks compiled from the
// program's region hints (compiling them if no machine has yet).
func (a *Artifact) DumpSuperblocks() string { return a.Program.DumpSuperblocks() }

// Disassemble renders the generated code.
func (a *Artifact) Disassemble() string { return a.Program.Disassemble() }

// NewMachine prepares a fresh machine for the artifact.
func (a *Artifact) NewMachine(extra ...vm.Option) (*vm.Machine, error) {
	opts := make([]vm.Option, 0, 4+len(extra))
	if a.opts.StepLimit > 0 {
		opts = append(opts, vm.WithStepLimit(a.opts.StepLimit))
	}
	if a.opts.EventTrace != nil {
		opts = append(opts, vm.WithEventTrace(a.opts.EventTrace))
	}
	if a.opts.WithoutCallGate {
		opts = append(opts, vm.WithoutCallGate())
	}
	if a.opts.ElectricFence {
		opts = append(opts, vm.WithPaging(64<<20), vm.WithElectricFence())
	}
	if a.opts.Tier2 {
		opts = append(opts, vm.WithTier2())
	}
	opts = append(opts, extra...)
	return vm.New(a.Program, a.vmMode, opts...)
}

// RunResult is the outcome of executing an artifact once.
type RunResult struct {
	*vm.Result
	// Violation is non-nil when execution stopped on a detected array
	// bound violation (hardware #GP, software check, or — under
	// ElectricFence — a guard-page fault).
	Violation *vm.Fault
	// HeapSpan is the heap address space the run consumed.
	HeapSpan uint32
}

// partsPools recycles machine parts (memory arenas, MMU, LDT) between
// runs, keyed by arena geometry so a pooled part set always fits the
// program it is handed to. Arena zeroing dominates machine construction;
// reusing reset parts removes it from the per-run cost.
var partsPools sync.Map // mem.Geometry -> *sync.Pool

func partsPoolFor(g mem.Geometry) *sync.Pool {
	if p, ok := partsPools.Load(g); ok {
		return p.(*sync.Pool)
	}
	p, _ := partsPools.LoadOrStore(g, &sync.Pool{})
	return p.(*sync.Pool)
}

// Run executes the artifact on a fresh machine. Detected bound violations
// are reported in the result, not as an error; any other fault is an
// error. Machine parts are drawn from and returned to a geometry-keyed
// pool; WithParts resets them before use, so each run still observes
// fresh-machine semantics.
func (a *Artifact) Run(extra ...vm.Option) (*RunResult, error) {
	pool := partsPoolFor(vm.GeometryFor(a.Program))
	if p, ok := pool.Get().(vm.Parts); ok {
		extra = append(extra[:len(extra):len(extra)], vm.WithParts(p))
	}
	m, err := a.NewMachine(extra...)
	if err != nil {
		return nil, err
	}
	res, runErr := a.RunOn(m)
	pool.Put(m.Parts())
	return res, runErr
}

// RunOn executes the artifact on a machine the caller already prepared
// (via NewMachine, possibly with recycled pooled parts) and classifies
// the outcome exactly as Run does.
func (a *Artifact) RunOn(m *vm.Machine) (*RunResult, error) {
	res, runErr := m.Run()
	out := &RunResult{Result: res, HeapSpan: m.HeapSpan()}
	mRuns.Inc()
	if res != nil {
		mSpilled.Add(res.Stats.SpilledIters)
		mFlatFalls.Add(res.Stats.FlatFallbacks)
	}
	if runErr != nil {
		f, ok := runErr.(*vm.Fault)
		if ok && (f.IsBoundViolation() || m.IsGuardFault(f)) {
			out.Violation = f
			mViolations.Inc()
			return out, nil
		}
		return out, runErr
	}
	return out, nil
}

// ModeReport captures one mode's measurements for a comparison.
type ModeReport struct {
	Mode     Mode
	Cycles   uint64
	CodeSize int
	Output   []int32
	Stats    vm.Stats
	LDTStats ldt.Stats
	StaticHW uint64
	StaticSW uint64
}

// Comparison is a multi-strategy evaluation of one program — one row of
// the paper's tables. Reports holds one entry per compared strategy in
// request order; the first is the baseline. The GCC, BCC and Cash fields
// mirror the classic three-mode comparison and are filled whenever the
// corresponding strategy was among those compared.
type Comparison struct {
	Name    string
	Reports []ModeReport
	GCC     ModeReport
	BCC     ModeReport
	Cash    ModeReport
}

// Report returns the report for the named strategy, if it was compared.
func (c *Comparison) Report(strategy string) (ModeReport, bool) {
	for _, r := range c.Reports {
		if string(r.Mode) == strategy {
			return r, true
		}
	}
	return ModeReport{}, false
}

// OverheadPct returns the named strategy's execution-time overhead over
// the comparison baseline (the first compared strategy) in percent, or 0
// if the strategy was not compared.
func (c *Comparison) OverheadPct(strategy string) float64 {
	r, ok := c.Report(strategy)
	if !ok || len(c.Reports) == 0 {
		return 0
	}
	return overheadPct(r.Cycles, c.Reports[0].Cycles)
}

// SizeOverheadPct returns the named strategy's binary-size overhead over
// the comparison baseline in percent, or 0 if it was not compared.
func (c *Comparison) SizeOverheadPct(strategy string) float64 {
	r, ok := c.Report(strategy)
	if !ok || len(c.Reports) == 0 {
		return 0
	}
	return overheadPct(uint64(r.CodeSize), uint64(c.Reports[0].CodeSize))
}

// CashOverheadPct returns Cash's execution-time overhead over GCC in
// percent.
func (c *Comparison) CashOverheadPct() float64 {
	return overheadPct(c.Cash.Cycles, c.GCC.Cycles)
}

// BCCOverheadPct returns BCC's execution-time overhead over GCC in
// percent.
func (c *Comparison) BCCOverheadPct() float64 {
	return overheadPct(c.BCC.Cycles, c.GCC.Cycles)
}

// CashSizeOverheadPct and BCCSizeOverheadPct return binary-size overheads
// in percent (Tables 2 and 6).
func (c *Comparison) CashSizeOverheadPct() float64 {
	return overheadPct(uint64(c.Cash.CodeSize), uint64(c.GCC.CodeSize))
}

// BCCSizeOverheadPct returns BCC's binary-size overhead in percent.
func (c *Comparison) BCCSizeOverheadPct() float64 {
	return overheadPct(uint64(c.BCC.CodeSize), uint64(c.GCC.CodeSize))
}

func overheadPct(v, base uint64) float64 {
	if base == 0 {
		return 0
	}
	return (float64(v) - float64(base)) / float64(base) * 100
}

// Runner abstracts how a comparison obtains and executes artifacts, so
// the same three-mode workflow can run either directly (build and run
// from scratch, the Compare default) or through a serving engine that
// caches artifacts and pools machines.
type Runner interface {
	BuildArtifact(source string, mode Mode, opts Options) (*Artifact, error)
	RunArtifact(art *Artifact) (*RunResult, error)
}

// directRunner is the Runner Compare uses: no caching, fresh machines.
type directRunner struct{}

func (directRunner) BuildArtifact(source string, mode Mode, opts Options) (*Artifact, error) {
	return Build(source, mode, opts)
}

func (directRunner) RunArtifact(art *Artifact) (*RunResult, error) { return art.Run() }

// CompareConfig configures a multi-strategy comparison.
type CompareConfig struct {
	// Strategies names the checking strategies to compare, in order. The
	// first is the baseline: every other strategy's output must match it,
	// and overhead percentages are relative to it. Empty means the
	// classic gcc, bcc, cash trio.
	Strategies []string
	// Options tunes every build in the comparison.
	Options Options
}

// DefaultCompareStrategies is the strategy set an empty
// CompareConfig.Strategies compares — the paper's three-column tables.
var DefaultCompareStrategies = []string{string(ModeGCC), string(ModeBCC), string(ModeCash)}

// CompareStrategies builds and runs source under every named strategy and
// checks that all executions produce output identical to the baseline
// (they must, for a bound-respecting program).
func CompareStrategies(name, source string, cfg CompareConfig) (*Comparison, error) {
	return CompareStrategiesUsing(directRunner{}, name, source, cfg)
}

// CompareStrategiesUsing is CompareStrategies with the build/run steps
// delegated to r.
func CompareStrategiesUsing(r Runner, name, source string, cfg CompareConfig) (*Comparison, error) {
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = DefaultCompareStrategies
	}
	cmp := &Comparison{Name: name}
	for _, s := range strategies {
		mode := Mode(s)
		if _, err := mode.resolve(); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		art, err := r.BuildArtifact(source, mode, cfg.Options)
		if err != nil {
			return nil, fmt.Errorf("%s [%v]: %w", name, mode, err)
		}
		res, err := r.RunArtifact(art)
		if err != nil {
			return nil, fmt.Errorf("%s [%v]: run: %w", name, mode, err)
		}
		if res.Violation != nil {
			return nil, fmt.Errorf("%s [%v]: unexpected bound violation: %v", name, mode, res.Violation)
		}
		report := ModeReport{
			Mode:     mode,
			Cycles:   res.Cycles,
			CodeSize: art.CodeSize(),
			Output:   res.Output,
			Stats:    res.Stats,
			LDTStats: res.LDTStats,
			StaticHW: art.Program.Stats[codegen.StatHWChecks],
			StaticSW: art.Program.Stats[codegen.StatSWChecks],
		}
		cmp.Reports = append(cmp.Reports, report)
		switch mode {
		case ModeGCC:
			cmp.GCC = report
		case ModeBCC:
			cmp.BCC = report
		case ModeCash:
			cmp.Cash = report
		}
	}
	base := cmp.Reports[0]
	for _, rep := range cmp.Reports[1:] {
		if err := sameOutput(base.Output, rep.Output); err != nil {
			return nil, fmt.Errorf("%s: %s output differs from %s: %w",
				name, rep.Mode, base.Mode, err)
		}
	}
	return cmp, nil
}

// Compare builds and runs source under the classic three modes and checks
// that the three executions produce identical program output.
//
// Deprecated: Use CompareStrategies, which accepts any registered
// strategy set. This wrapper keeps working and compares gcc, bcc, cash.
func Compare(name, source string, opts Options) (*Comparison, error) {
	return CompareStrategies(name, source, CompareConfig{Options: opts})
}

// CompareUsing is Compare with the build/run steps delegated to r.
//
// Deprecated: Use CompareStrategiesUsing. This wrapper keeps working and
// compares gcc, bcc, cash.
func CompareUsing(r Runner, name, source string, opts Options) (*Comparison, error) {
	return CompareStrategiesUsing(r, name, source, CompareConfig{Options: opts})
}

func sameOutput(a, b []int32) error {
	if len(a) != len(b) {
		return fmt.Errorf("length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("element %d: %d vs %d", i, a[i], b[i])
		}
	}
	return nil
}

// LoopCharacteristics reports the static loop statistics of a program for
// the paper's Tables 4 and 7: total array-using loops and loops that use
// more than budget distinct arrays ("spilled loops").
type LoopCharacteristics struct {
	Lines           int
	ArrayUsingLoops int
	SpilledLoops    int
}

// Characterize computes the static characteristics of a mini-C source
// with the given segment-register budget (3 in the paper's tables).
func Characterize(source string, budget int) (LoopCharacteristics, error) {
	ast, err := minic.Parse(source)
	if err != nil {
		return LoopCharacteristics{}, err
	}
	if err := minic.Check(ast); err != nil {
		return LoopCharacteristics{}, err
	}
	st := codegen.AnalyzeLoopStats(ast, budget)
	return LoopCharacteristics{
		Lines:           minic.LineCount(source),
		ArrayUsingLoops: st.ArrayUsingLoops,
		SpilledLoops:    st.SpilledLoops,
	}, nil
}
