package core

import (
	"errors"
	"testing"

	"cash/internal/ldt"
	"cash/internal/vm"
)

// These tests drive each fault-injection mechanism (the vm.With*
// options that internal/netsim's resilience loop composes) directly
// against a small Cash-compiled program, verifying that every injected
// fault manifests exactly as the serving loop classifies it.

const sitesProgram = `
char request[16] = "GET /index HTTP";
int sum[1];
void main() {
	char *buf = malloc(16);
	for (int i = 0; i < 15; i++) buf[i] = request[i];
	for (int i = 0; i < 15; i++) sum[0] += buf[i];
	printi(sum[0]);
}`

func buildSites(t *testing.T, mode Mode) *Artifact {
	t.Helper()
	art, err := Build(sitesProgram, mode, Options{StepLimit: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return art
}

func runMachine(t *testing.T, art *Artifact, extra ...vm.Option) (*vm.Machine, *vm.Result, *vm.Fault) {
	t.Helper()
	m, err := art.NewMachine(extra...)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := m.Run()
	if runErr == nil {
		return m, res, nil
	}
	var f *vm.Fault
	if !errors.As(runErr, &f) {
		t.Fatalf("non-fault run error: %v", runErr)
	}
	return m, res, f
}

func TestTransientAllocFaultIsRetryableKind(t *testing.T) {
	art := buildSites(t, ModeCash)
	_, _, f := runMachine(t, art, vm.WithTransientAllocFault())
	if f == nil {
		t.Fatal("injected transient failure but run completed")
	}
	if f.Kind != vm.FaultTransient {
		t.Fatalf("fault kind %v, want FaultTransient", f.Kind)
	}
	if !errors.Is(f, vm.ErrTransientLDT) {
		t.Fatalf("fault %v does not unwrap to ErrTransientLDT", f)
	}
	// A fresh machine without the injection must succeed — that is what
	// makes the fault retryable.
	_, _, f = runMachine(t, art)
	if f != nil {
		t.Fatalf("clean retry failed: %v", f)
	}
}

func TestLDTReserveForcesFlatFallback(t *testing.T) {
	art := buildSites(t, ModeCash)
	m, res, f := runMachine(t, art, vm.WithLDTReserve(ldt.UsableEntries), vm.WithLDTAudit())
	if f != nil {
		t.Fatalf("exhausted LDT must degrade, not fault: %v", f)
	}
	if res.Stats.FlatFallbacks == 0 {
		t.Fatal("full reservation but no flat-segment fallbacks recorded")
	}
	// Degradation is graceful: the descriptor-table invariants still
	// hold afterwards (reserved entries stay accounted for).
	if err := m.LDTManager().CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after degradation: %v", err)
	}
}

func TestDescriptorCorruptionIsDetected(t *testing.T) {
	art := buildSites(t, ModeCash)
	m, _, f := runMachine(t, art, vm.WithDescriptorCorruption(), vm.WithLDTAudit())
	checkErr := m.LDTManager().CheckInvariants()
	// The shrunk descriptor either faults the very next access through
	// it, or — if the segment register cache dodged the reload — the
	// post-run audit flags the drift. Silence on both channels would
	// mean corruption can hide.
	if f == nil && checkErr == nil {
		t.Fatal("descriptor corruption neither faulted nor failed the invariant check")
	}
}

func TestShadowCorruptionCaughtByChecker(t *testing.T) {
	art := buildSites(t, ModeCash)
	m, _, f := runMachine(t, art, vm.WithShadowCorruption(), vm.WithLDTAudit())
	checkErr := m.LDTManager().CheckInvariants()
	// The duplicated free-list entry either gets handed out again over
	// a live segment (the victim's next access then #GP-faults) or sits
	// latent until the post-run audit flags the duplicate. Either way
	// the corruption must not go unnoticed.
	if f == nil && checkErr == nil {
		t.Fatal("corrupted free list neither faulted nor failed the invariant check")
	}
}

func TestPokeChangesObservableOutput(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeCash, ModeBCC} {
		art := buildSites(t, mode)
		_, clean, f := runMachine(t, art)
		if f != nil {
			t.Fatalf("[%v] clean run faulted: %v", mode, f)
		}
		reqAddr := art.AST.Globals[0].Addr
		garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
		_, poked, _ := runMachine(t, art, vm.WithPoke(reqAddr, garbage))
		if len(poked.Output) == len(clean.Output) {
			same := true
			for i := range clean.Output {
				if poked.Output[i] != clean.Output[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("[%v] malformed request buffer left output unchanged", mode)
			}
		}
	}
}

func TestPageUnmapFaultsOnRequestAccess(t *testing.T) {
	art := buildSites(t, ModeGCC)
	reqAddr := art.AST.Globals[0].Addr
	_, _, f := runMachine(t, art, vm.WithPaging(64<<20), vm.WithPageUnmap(reqAddr))
	if f == nil {
		t.Fatal("request page unmapped but the handler completed")
	}
	if f.Kind != vm.FaultPage {
		t.Fatalf("fault kind %v, want FaultPage", f.Kind)
	}
}

func TestStepLimitKillsRunawayHandler(t *testing.T) {
	art, err := Build(`void main() { int x = 1; while (x) { x = 1; } }`, ModeGCC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, f := runMachine(t, art, vm.WithStepLimit(10_000))
	if f == nil {
		t.Fatal("infinite loop terminated without the watchdog")
	}
	if f.Kind != vm.FaultStepLimit {
		t.Fatalf("fault kind %v, want FaultStepLimit", f.Kind)
	}
}
