// Artifact and run-result codecs for the on-disk store layer
// (internal/store). Compiled artifacts and deterministic run outcomes
// are encoded with encoding/gob behind a version tag; the store's own
// content hash protects the bytes, so the codec only has to be
// self-consistent, not canonical.
//
// Persistence is strictly host-side: a decoded artifact produces
// machines (and therefore tables, counters and faults) byte-identical
// to a freshly compiled one. What cannot be made identical is refused
// at encode time — an attached event trace, a non-Fault run error —
// so the disk layer silently skips those entries and the memory layer
// still serves them for the life of the process.
package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"cash/internal/vm"
)

// persistVersion tags every encoded blob. Decoders reject any other
// value, so a format change after an upgrade degrades to a cache miss
// and a rebuild, never a wrong answer.
const persistVersion = 1

// persistedOptions mirrors Options minus the fields that cannot or
// must not survive a process: EventTrace is a live pointer into this
// process's observability registry.
type persistedOptions struct {
	SegRegs         int
	SkipReadChecks  bool
	UseBoundInstr   bool
	WithoutCallGate bool
	ElectricFence   bool
	Passes          []string
	StepLimit       uint64
	Tier2           bool
}

// artifactBlob is the gob payload for one compiled artifact. The AST
// and IR module are deliberately not persisted: machines only need the
// Program, and dropping the front-end trees keeps blobs small. DumpIR
// on a decoded artifact returns "".
type artifactBlob struct {
	Version int
	Mode    string
	Opts    persistedOptions
	Program *vm.Program
}

// EncodeArtifact serialises an artifact for the disk store. ok is
// false — with no error — for artifacts that must stay memory-only
// (currently: an attached event trace).
func EncodeArtifact(a *Artifact) (data []byte, ok bool, err error) {
	if a == nil || a.Program == nil {
		return nil, false, nil
	}
	if a.opts.EventTrace != nil {
		return nil, false, nil
	}
	blob := artifactBlob{
		Version: persistVersion,
		Mode:    string(a.Mode),
		Opts: persistedOptions{
			SegRegs:         a.opts.SegRegs,
			SkipReadChecks:  a.opts.SkipReadChecks,
			UseBoundInstr:   a.opts.UseBoundInstr,
			WithoutCallGate: a.opts.WithoutCallGate,
			ElectricFence:   a.opts.ElectricFence,
			Passes:          a.opts.Passes,
			StepLimit:       a.opts.StepLimit,
			Tier2:           a.opts.Tier2,
		},
		Program: a.Program,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
		return nil, false, fmt.Errorf("core: encode artifact: %w", err)
	}
	return buf.Bytes(), true, nil
}

// DecodeArtifact reconstructs an artifact from EncodeArtifact's bytes.
// The checking strategy is re-resolved against this process's registry,
// so a blob naming an unregistered strategy fails (and the caller
// treats the failure as a cache miss).
func DecodeArtifact(data []byte) (*Artifact, error) {
	var blob artifactBlob
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); err != nil {
		return nil, fmt.Errorf("core: decode artifact: %w", err)
	}
	if blob.Version != persistVersion {
		return nil, fmt.Errorf("core: artifact blob version %d, want %d", blob.Version, persistVersion)
	}
	if blob.Program == nil {
		return nil, errors.New("core: artifact blob has no program")
	}
	mode := Mode(blob.Mode)
	info, err := mode.resolve()
	if err != nil {
		return nil, err
	}
	return &Artifact{
		Mode:    mode,
		Program: blob.Program,
		vmMode:  info.Mode,
		opts: Options{
			SegRegs:         blob.Opts.SegRegs,
			SkipReadChecks:  blob.Opts.SkipReadChecks,
			UseBoundInstr:   blob.Opts.UseBoundInstr,
			WithoutCallGate: blob.Opts.WithoutCallGate,
			ElectricFence:   blob.Opts.ElectricFence,
			Passes:          blob.Opts.Passes,
			StepLimit:       blob.Opts.StepLimit,
			Tier2:           blob.Opts.Tier2,
		},
	}, nil
}

// faultBlob flattens a *vm.Fault. The cause chain is collapsed to its
// rendered text — Fault.Error() only ever appends Cause.Error(), so the
// reconstructed fault formats byte-identically.
type faultBlob struct {
	Kind     vm.FaultKind
	IP       int
	Instr    string
	Cause    string
	HasCause bool
}

func newFaultBlob(f *vm.Fault) *faultBlob {
	if f == nil {
		return nil
	}
	b := &faultBlob{Kind: f.Kind, IP: f.IP, Instr: f.Instr}
	if f.Cause != nil {
		b.Cause = f.Cause.Error()
		b.HasCause = true
	}
	return b
}

func (b *faultBlob) fault() *vm.Fault {
	if b == nil {
		return nil
	}
	f := &vm.Fault{Kind: b.Kind, IP: b.IP, Instr: b.Instr}
	if b.HasCause {
		f.Cause = errors.New(b.Cause)
	}
	return f
}

// runBlob is the gob payload for one deterministic run outcome —
// either a completed result (possibly carrying a violation verdict) or
// a terminal fault.
type runBlob struct {
	Version   int
	HasRes    bool
	Result    *vm.Result
	Violation *faultBlob
	HeapSpan  uint32
	RunErr    *faultBlob
}

// EncodeRunOutcome serialises a run-cache entry: the result and the
// run error exactly as the engine caches them. ok is false for
// outcomes that must not be persisted — a cancellation (FaultCanceled
// reflects the caller's context, not the program) or a run error that
// is not a *vm.Fault and so cannot be reconstructed faithfully.
func EncodeRunOutcome(res *RunResult, runErr error) (data []byte, ok bool) {
	blob := runBlob{Version: persistVersion}
	if runErr != nil {
		f, isFault := runErr.(*vm.Fault)
		if !isFault || f.Kind == vm.FaultCanceled {
			return nil, false
		}
		blob.RunErr = newFaultBlob(f)
	}
	if res != nil {
		blob.HasRes = true
		blob.Result = res.Result
		blob.Violation = newFaultBlob(res.Violation)
		blob.HeapSpan = res.HeapSpan
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&blob); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// DecodeRunOutcome reconstructs EncodeRunOutcome's entry. err is only
// non-nil for undecodable bytes; a decoded entry reproduces the cached
// (res, runErr) pair, including a nil res alongside a fault.
func DecodeRunOutcome(data []byte) (res *RunResult, runErr error, err error) {
	var blob runBlob
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&blob); derr != nil {
		return nil, nil, fmt.Errorf("core: decode run outcome: %w", derr)
	}
	if blob.Version != persistVersion {
		return nil, nil, fmt.Errorf("core: run blob version %d, want %d", blob.Version, persistVersion)
	}
	if blob.HasRes {
		res = &RunResult{
			Result:    blob.Result,
			Violation: blob.Violation.fault(),
			HeapSpan:  blob.HeapSpan,
		}
	}
	if blob.RunErr != nil {
		runErr = blob.RunErr.fault()
	}
	return res, runErr, nil
}
