package core

import (
	"fmt"
	"testing"

	"cash/internal/ldt"
)

// Failure injection: the §3.4 degradation path. When a program needs
// more than 8191 simultaneous segments, Cash assigns the overflowing
// objects to the global (flat) segment, silently disabling their bound
// checking rather than failing the program.

// exhaustionProgram allocates `live` heap buffers that stay live, then
// allocates one more probe buffer and overflows it inside a loop.
func exhaustionProgram(live int) string {
	return fmt.Sprintf(`
int keep[1];
void main() {
	// Pin %d buffers so their segments stay allocated.
	for (int i = 0; i < %d; i++) {
		char *p = malloc(8);
		p[0] = 1;
		keep[0] += p[0];
	}
	// The probe allocation and its overflow.
	char *q = malloc(8);
	for (int i = 0; i < 16; i++) q[i] = 2;
	printi(keep[0]);
}`, live, live)
}

func TestLDTExhaustionFallsBackToGlobalSegment(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates 8191 segments")
	}
	// More than 8191 live allocations (plus the globals/strings) exhaust
	// the LDT; the probe buffer gets the flat segment and its overflow
	// goes undetected — the documented §3.4 trade-off.
	art, err := Build(exhaustionProgram(ldt.UsableEntries+10), ModeCash, Options{StepLimit: 200_000_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatalf("exhausted program must keep running: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("overflow on a fall-back object must NOT be caught, got %v", res.Violation)
	}
	if res.LDTStats.PeakLive != ldt.UsableEntries {
		t.Fatalf("peak live segments = %d, want the full budget %d",
			res.LDTStats.PeakLive, ldt.UsableEntries)
	}
}

func TestBelowBudgetOverflowStillCaught(t *testing.T) {
	// The identical program with far fewer live buffers: the probe gets
	// a real segment and the overflow faults.
	art, err := Build(exhaustionProgram(50), ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("below the budget, the probe overflow must be caught")
	}
}

// TestShadowCorruptionOnlyHurtsSelf models §3.8: the free_ldt_entry list
// and shadow structures live in user space; corrupting a shadow pointer
// can crash the application but is contained to it (here: the universal
// info structure makes a zeroed shadow merely unchecked rather than
// wild).
func TestShadowCorruptionOnlyHurtsSelf(t *testing.T) {
	// A cast from int materialises a pointer with "unchecked" metadata —
	// the same state shadow corruption would leave. The program stays
	// inside its own memory and simply loses checking.
	src := `
int target[4];
void main() {
	int addr = (int)target;
	int *p = (int*)addr;
	for (int i = 0; i < 6; i++) p[i] = i; // 2 past the end, unchecked
	printi(p[0]);
}`
	art, err := Build(src, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatalf("unchecked pointer must not fault the machine: %v", err)
	}
	if res.Violation != nil {
		t.Fatalf("int-derived pointers are unchecked by design (§3.9), got %v", res.Violation)
	}
}

// TestElectricFenceEndToEnd drives the guard-page detector through the
// public core API.
func TestElectricFenceEndToEnd(t *testing.T) {
	overflow := `
void main() {
	char *b = malloc(100);
	for (int i = 0; i < 120; i++) b[i] = 'x';
}`
	art, err := Build(overflow, ModeGCC, Options{ElectricFence: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("guard page must catch the heap overrun")
	}
	// Space cost: ~2 pages for a 100-byte object.
	if res.HeapSpan < 8192 {
		t.Fatalf("HeapSpan = %d, want at least two pages", res.HeapSpan)
	}
}

func TestBoundInstrOptionEndToEnd(t *testing.T) {
	src := `
int a[8];
void main() {
	int s = 0;
	for (int i = 0; i < 8; i++) { a[i] = i; s += a[i]; }
	printi(s);
}`
	art, err := Build(src, ModeBCC, Options{UseBoundInstr: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BoundInstrs == 0 {
		t.Fatal("bound instructions must execute")
	}
	if res.Output[0] != 28 {
		t.Fatalf("output = %v, want [28]", res.Output)
	}
}
