package core

import (
	"fmt"
	"reflect"
	"testing"

	"cash/internal/vm"
	"cash/internal/workload"
)

// Tier-2 superblock execution must be invisible in everything but host
// speed: simulated output, cycle and check counters, fault identity and
// violation verdicts have to match step execution byte for byte, on the
// happy path and on every deopt path. These tests drive both engines
// over the same programs — including runs forced to stop or fault at
// every single instruction offset inside a compiled superblock — and
// compare the complete results.

// tierPair builds the same program twice: step-only and tier-2.
func tierPair(t *testing.T, source string, mode Mode, opts Options) (step, tier2 *Artifact) {
	t.Helper()
	a1, err := Build(source, mode, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Tier2 = true
	a2, err := Build(source, mode, opts)
	if err != nil {
		t.Fatal(err)
	}
	return a1, a2
}

// runRaw executes one artifact on a fresh machine without the Run
// classification layer, so faults surface as errors for comparison.
func runRaw(t *testing.T, art *Artifact, extra ...vm.Option) (*vm.Result, error) {
	t.Helper()
	m, err := art.NewMachine(extra...)
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

// compareTiers runs both artifacts under identical machine options and
// requires the full results — and any faults — to be identical, modulo
// the tier-2 run's SB stats block.
func compareTiers(t *testing.T, label string, step, tier2 *Artifact, extra ...vm.Option) {
	t.Helper()
	r1, e1 := runRaw(t, step, extra...)
	r2, e2 := runRaw(t, tier2, extra...)
	if fmt.Sprint(e1) != fmt.Sprint(e2) || !reflect.DeepEqual(e1, e2) {
		t.Fatalf("%s: errors differ\n step:  %v\n tier2: %v", label, e1, e2)
	}
	if (r1 == nil) != (r2 == nil) {
		t.Fatalf("%s: one tier returned no result (step=%v tier2=%v)", label, r1 != nil, r2 != nil)
	}
	if r1 == nil {
		return
	}
	c2 := *r2
	c2.SB = nil
	if !reflect.DeepEqual(*r1, c2) {
		t.Fatalf("%s: results differ\n step:  %+v\n tier2: %+v", label, *r1, c2)
	}
}

// TestTier2Equivalence runs every Table 1 kernel in all three modes
// under both engines and requires identical results end to end.
func TestTier2Equivalence(t *testing.T) {
	for _, w := range workload.Kernels() {
		for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
			a1, a2 := tierPair(t, w.Source, mode, Options{SegRegs: 4})
			compareTiers(t, fmt.Sprintf("%s/%v", w.Name, mode), a1, a2)

			// The tier-2 run must actually have used superblocks —
			// equivalence by never entering them proves nothing.
			r2, err := runRaw(t, a2)
			if err != nil {
				t.Fatalf("%s %v tier2: %v", w.Name, mode, err)
			}
			if r2.SB == nil || r2.SB.Entries == 0 || r2.SB.InstrsRetired == 0 {
				t.Fatalf("%s %v: tier-2 run retired nothing in superblocks: %+v", w.Name, mode, r2.SB)
			}
		}
	}
}

// TestTier2RangeKernels extends the equivalence sweep to the range
// kernels under the full pass pipeline: the affine pass's preheader
// blocks (guards, endpoint computations, skip detours) are new
// superblock-formation territory and must deopt identically.
func TestTier2RangeKernels(t *testing.T) {
	for _, w := range workload.RangeKernels() {
		for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
			opts := Options{SegRegs: 4, Passes: []string{"rce", "hoist", "affine"}}
			a1, a2 := tierPair(t, w.Source, mode, opts)
			compareTiers(t, fmt.Sprintf("%s/%v", w.Name, mode), a1, a2)

			r2, err := runRaw(t, a2)
			if err != nil {
				t.Fatalf("%s %v tier2: %v", w.Name, mode, err)
			}
			if r2.SB == nil || r2.SB.Entries == 0 || r2.SB.InstrsRetired == 0 {
				t.Fatalf("%s %v: tier-2 run retired nothing in superblocks: %+v", w.Name, mode, r2.SB)
			}
		}
	}
}

// tier2LoopProgram is small enough to sweep exhaustively but loops
// enough that most of its execution sits inside compiled superblocks.
const tier2LoopProgram = `
int a[8];
void main() {
	for (int i = 0; i < 20; i++) {
		a[i % 8] = a[i % 8] + i;
	}
	int s = 0;
	for (int i = 0; i < 8; i++) s = s + a[i];
	printi(s);
}`

// TestTier2StepLimitEveryOffset forces a stop at every instruction
// boundary of the whole program — including every offset inside each
// compiled superblock — by sweeping the step limit one instruction at a
// time. At each limit the tier-2 engine must deopt and deliver the same
// step-limit fault with the same counters as pure step execution.
func TestTier2StepLimitEveryOffset(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
		a1, a2 := tierPair(t, tier2LoopProgram, mode, Options{})
		clean, err := runRaw(t, a1)
		if err != nil {
			t.Fatalf("%v clean: %v", mode, err)
		}
		total := clean.Stats.Instructions
		for limit := uint64(1); limit <= total+1; limit++ {
			compareTiers(t, fmt.Sprintf("%v limit=%d", mode, limit), a1, a2,
				vm.WithStepLimit(limit))
		}
	}
}

// TestTier2DivideFaultInLoop faults with a divide error part-way
// through a hot loop — a deopt from deep inside a superblock pass —
// and requires the identical fault and counters from both engines.
func TestTier2DivideFaultInLoop(t *testing.T) {
	const src = `
void main() {
	int d = 13;
	int x = 0;
	for (int i = 0; i < 20; i++) {
		d = d - 1;
		x = x + 100 / d;
	}
	printi(x);
}`
	for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
		a1, a2 := tierPair(t, src, mode, Options{})
		compareTiers(t, fmt.Sprintf("divide/%v", mode), a1, a2)
	}
}

// TestTier2ViolationVerdict drives an out-of-bound write from inside a
// hot loop. The checking modes must deliver the identical violation
// verdict from both engines, GCC the identical silent corruption.
func TestTier2ViolationVerdict(t *testing.T) {
	const src = `
int a[8];
int b[8];
void main() {
	for (int i = 0; i < 12; i++) {
		a[i] = i;
	}
	printi(b[0]);
}`
	for _, mode := range []Mode{ModeGCC, ModeBCC, ModeCash} {
		a1, a2 := tierPair(t, src, mode, Options{})
		r1, err1 := a1.Run()
		r2, err2 := a2.Run()
		if fmt.Sprint(err1) != fmt.Sprint(err2) {
			t.Fatalf("%v: run errors differ: %v vs %v", mode, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if (r1.Violation == nil) != (r2.Violation == nil) {
			t.Fatalf("%v: verdicts differ: step=%v tier2=%v", mode, r1.Violation, r2.Violation)
		}
		if mode != ModeGCC && r1.Violation == nil {
			t.Fatalf("%v: out-of-bound write went undetected", mode)
		}
		if r1.Violation != nil && !reflect.DeepEqual(r1.Violation, r2.Violation) {
			t.Fatalf("%v: violation faults differ\n step:  %+v\n tier2: %+v", mode, r1.Violation, r2.Violation)
		}
		c2 := *r2.Result
		c2.SB = nil
		if !reflect.DeepEqual(*r1.Result, c2) {
			t.Fatalf("%v: results differ\n step:  %+v\n tier2: %+v", mode, *r1.Result, c2)
		}
	}
}

// TestTier2ChaosDeoptSites reuses the fault-injection sites of the
// resilience suite against tier-2 execution: every injected fault must
// manifest identically — same fault, same counters, same output — as
// under step execution.
func TestTier2ChaosDeoptSites(t *testing.T) {
	a1, a2 := tierPair(t, sitesProgram, ModeCash, Options{StepLimit: 1_000_000})
	reqAddr := a1.AST.Globals[0].Addr
	garbage := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	cases := []struct {
		name  string
		extra []vm.Option
	}{
		{"clean", nil},
		{"transient-alloc", []vm.Option{vm.WithTransientAllocFault()}},
		{"descriptor-corruption", []vm.Option{vm.WithDescriptorCorruption(), vm.WithLDTAudit()}},
		{"shadow-corruption", []vm.Option{vm.WithShadowCorruption(), vm.WithLDTAudit()}},
		{"poke", []vm.Option{vm.WithPoke(reqAddr, garbage)}},
		{"page-unmap", []vm.Option{vm.WithPaging(64 << 20), vm.WithPageUnmap(reqAddr)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			compareTiers(t, tc.name, a1, a2, tc.extra...)
		})
	}
}

// TestTier2DumpSuperblocks pins the compiled form of the sweep
// program's hot loops: region selection and trace layout only change
// for a reason, and the dump is the first thing a reader sees of the
// engine.
func TestTier2DumpSuperblocks(t *testing.T) {
	art, err := Build(tier2LoopProgram, ModeGCC, Options{Tier2: true})
	if err != nil {
		t.Fatal(err)
	}
	dump := art.DumpSuperblocks()
	if dump == "" {
		t.Fatal("empty superblock dump")
	}
	t.Logf("\n%s", dump)
	if _, err := art.Run(); err != nil {
		t.Fatal(err)
	}
}
