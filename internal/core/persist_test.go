package core

import (
	"reflect"
	"testing"

	"cash/internal/obs"
	"cash/internal/vm"
)

// TestArtifactCodecRoundtrip pins that a decoded artifact runs
// byte-identically to the compiled one it came from: same output, same
// cycle count, same dynamic statistics.
func TestArtifactCodecRoundtrip(t *testing.T) {
	for _, mode := range []Mode{ModeGCC, ModeCash} {
		art, err := Build(sumKernel, mode, Options{Passes: []string{"rce", "hoist"}})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		data, ok, err := EncodeArtifact(art)
		if err != nil || !ok {
			t.Fatalf("%v: encode: ok=%v err=%v", mode, ok, err)
		}
		back, err := DecodeArtifact(data)
		if err != nil {
			t.Fatalf("%v: decode: %v", mode, err)
		}
		if back.Mode != art.Mode {
			t.Fatalf("%v: mode changed to %v", mode, back.Mode)
		}
		if !reflect.DeepEqual(back.Options(), art.Options()) {
			t.Fatalf("%v: options drifted: %+v vs %+v", mode, back.Options(), art.Options())
		}
		if back.DumpIR() != "" {
			t.Fatalf("%v: decoded artifact should have no IR", mode)
		}
		want, err := art.Run()
		if err != nil {
			t.Fatalf("%v: run original: %v", mode, err)
		}
		got, err := back.Run()
		if err != nil {
			t.Fatalf("%v: run decoded: %v", mode, err)
		}
		if !reflect.DeepEqual(got.Output, want.Output) {
			t.Fatalf("%v: output %v, want %v", mode, got.Output, want.Output)
		}
		if got.Cycles != want.Cycles || got.Stats != want.Stats {
			t.Fatalf("%v: decoded run diverged: cycles %d vs %d, stats %+v vs %+v",
				mode, got.Cycles, want.Cycles, got.Stats, want.Stats)
		}
	}
}

// TestArtifactCodecRefusesTrace pins that a trace-bearing artifact is
// never persisted — the trace is a live pointer into this process.
func TestArtifactCodecRefusesTrace(t *testing.T) {
	art, err := Build(sumKernel, ModeCash, Options{EventTrace: obs.NewTrace(8)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := EncodeArtifact(art); ok || err != nil {
		t.Fatalf("trace-bearing artifact must not encode: ok=%v err=%v", ok, err)
	}
}

func TestDecodeArtifactRejectsGarbage(t *testing.T) {
	if _, err := DecodeArtifact([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage must not decode")
	}
}

// TestRunOutcomeCodecRoundtrip covers the three persistable outcome
// shapes: clean completion, detected violation, and a terminal fault.
func TestRunOutcomeCodecRoundtrip(t *testing.T) {
	// Clean completion.
	art, err := Build(sumKernel, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := art.Run()
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomeRoundtrip(t, res, nil)

	// Detected violation.
	vart, err := Build(`
int a[4];
void main() { for (int i = 0; i < 8; i++) a[i] = i; }`, ModeCash, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vres, err := vart.Run()
	if err != nil {
		t.Fatal(err)
	}
	if vres.Violation == nil {
		t.Fatal("expected a violation")
	}
	assertOutcomeRoundtrip(t, vres, nil)

	// Terminal fault (step limit exceeded) surfaces as a run error.
	lart, err := Build(sumKernel, ModeCash, Options{StepLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	lres, lerr := lart.Run()
	if lerr == nil {
		t.Fatal("expected a step-limit fault")
	}
	assertOutcomeRoundtrip(t, lres, lerr)
}

func assertOutcomeRoundtrip(t *testing.T, res *RunResult, runErr error) {
	t.Helper()
	data, ok := EncodeRunOutcome(res, runErr)
	if !ok {
		t.Fatalf("outcome (res=%v err=%v) must encode", res != nil, runErr)
	}
	gotRes, gotErr, err := DecodeRunOutcome(data)
	if err != nil {
		t.Fatal(err)
	}
	if (gotRes == nil) != (res == nil) {
		t.Fatalf("result presence changed: got %v want %v", gotRes != nil, res != nil)
	}
	if res != nil {
		if !reflect.DeepEqual(gotRes.Result, res.Result) {
			t.Fatalf("result drifted: %+v vs %+v", gotRes.Result, res.Result)
		}
		if gotRes.HeapSpan != res.HeapSpan {
			t.Fatalf("heap span %d, want %d", gotRes.HeapSpan, res.HeapSpan)
		}
		switch {
		case res.Violation == nil:
			if gotRes.Violation != nil {
				t.Fatal("violation appeared from nowhere")
			}
		case gotRes.Violation == nil:
			t.Fatal("violation lost")
		case gotRes.Violation.Error() != res.Violation.Error():
			t.Fatalf("violation text %q, want %q", gotRes.Violation.Error(), res.Violation.Error())
		}
	}
	switch {
	case runErr == nil:
		if gotErr != nil {
			t.Fatalf("error appeared from nowhere: %v", gotErr)
		}
	case gotErr == nil:
		t.Fatalf("run error lost (want %v)", runErr)
	case gotErr.Error() != runErr.Error():
		t.Fatalf("run error text %q, want %q", gotErr.Error(), runErr.Error())
	}
}

// TestRunOutcomeCodecRefusals pins the never-persist cases: canceled
// runs and non-Fault errors.
func TestRunOutcomeCodecRefusals(t *testing.T) {
	canceled := &vm.Fault{Kind: vm.FaultCanceled, IP: 3, Instr: "add"}
	if _, ok := EncodeRunOutcome(nil, canceled); ok {
		t.Fatal("canceled outcome must not encode")
	}
	if _, ok := EncodeRunOutcome(nil, errExotic{}); ok {
		t.Fatal("non-Fault error must not encode")
	}
}

type errExotic struct{}

func (errExotic) Error() string { return "exotic" }
