package codegen

import (
	"errors"
	"fmt"
	"testing"

	"cash/internal/vm"
)

// --- Chop: straight-line check consolidation -----------------------------

// chopStencilSrc reads a 3-point stencil per iteration: three checks on
// the same array whose indices differ only by a constant, all in one
// straight-line region — the canonical chop shape.
const chopStencilSrc = `
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = 1; i < 9; i++) {
		s = s + a[i - 1] + a[i] + a[i + 1];
	}
	printi(s);
	return 0;
}
`

// chopLocalStencilSrc is the same stencil over a frame-allocated array,
// exercising the LEA-displacement bound shape.
const chopLocalStencilSrc = `
int main() {
	int a[10];
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) {
		a[i] = i;
	}
	s = 0;
	for (i = 1; i < 9; i++) {
		s = s + a[i - 1] + a[i] + a[i + 1];
	}
	printi(s);
	return 0;
}
`

// chopConstDupSrc references constant subscripts repeatedly in straight
// line (BCC checks outside loops too): duplicates and near-duplicates
// collapse to one check.
const chopConstDupSrc = `
int a[10];
int main() {
	int s;
	s = a[2] + a[3] + a[2] + a[7];
	printi(s);
	return 0;
}
`

func chopConfigs(base Config) (off, on Config) {
	off = base
	on = base
	on.Passes = []string{"chop"}
	return off, on
}

// expectChopWins compiles src with and without the chop pass and
// requires static and dynamic check reduction with identical output.
func expectChopWins(t *testing.T, src string, base Config) {
	t.Helper()
	off, on := chopConfigs(base)
	pOff := compile(t, src, off)
	pOn := compile(t, src, on)
	if pOn.Stats[StatChecksChop] == 0 {
		t.Fatal("chop consolidated nothing on a stencil program")
	}
	if pOn.Stats[StatSWChecks] >= pOff.Stats[StatSWChecks] {
		t.Fatalf("static sw checks not reduced: %d -> %d",
			pOff.Stats[StatSWChecks], pOn.Stats[StatSWChecks])
	}
	resOff := mustRunMode(t, src, off)
	resOn := mustRunMode(t, src, on)
	if len(resOff.Output) != len(resOn.Output) {
		t.Fatalf("output length changed: %v vs %v", resOff.Output, resOn.Output)
	}
	for i := range resOff.Output {
		if resOff.Output[i] != resOn.Output[i] {
			t.Fatalf("output[%d] changed: %d vs %d", i, resOff.Output[i], resOn.Output[i])
		}
	}
	if resOn.Stats.SWChecks >= resOff.Stats.SWChecks {
		t.Fatalf("dynamic sw checks not reduced: %d -> %d",
			resOff.Stats.SWChecks, resOn.Stats.SWChecks)
	}
}

func TestChopConsolidatesStencil(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cfg  Config
	}{
		{"bcc global", chopStencilSrc, Config{Mode: vm.ModeBCC}},
		{"bcc local", chopLocalStencilSrc, Config{Mode: vm.ModeBCC}},
		{"bcc const dup", chopConstDupSrc, Config{Mode: vm.ModeBCC}},
		{"bcc bound instr", chopStencilSrc, Config{Mode: vm.ModeBCC, UseBoundInstr: true}},
		{"mpx global", chopStencilSrc, Config{Mode: vm.ModeMPX}},
		{"mpx local", chopLocalStencilSrc, Config{Mode: vm.ModeMPX}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { expectChopWins(t, tc.src, tc.cfg) })
	}
}

// TestChopPreservesViolation: the widened hull check must still trap
// when any member of the consolidated group would have, on both bound
// edges, with and without consolidation.
func TestChopPreservesViolation(t *testing.T) {
	srcs := map[string]string{
		// i reaches 9: a[i+1] is a[10], one past the end.
		"upper": `
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = 1; i < 12; i++) {
		s = s + a[i - 1] + a[i] + a[i + 1];
	}
	printi(s);
	return 0;
}
`,
		// i starts at 0: a[i-1] is a[-1].
		"lower": `
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 9; i++) {
		s = s + a[i - 1] + a[i] + a[i + 1];
	}
	printi(s);
	return 0;
}
`,
	}
	for name, src := range srcs {
		for _, mode := range []vm.Mode{vm.ModeBCC, vm.ModeMPX} {
			t.Run(fmt.Sprintf("%s %v", name, mode), func(t *testing.T) {
				off, on := chopConfigs(Config{Mode: mode})
				if p := compile(t, src, on); p.Stats[StatChecksChop] == 0 {
					t.Fatal("chop consolidated nothing")
				}
				var f *vm.Fault
				_, err := runMode(t, src, off)
				if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
					t.Fatalf("unconsolidated: want software check fault, got %v", err)
				}
				_, err = runMode(t, src, on)
				if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
					t.Fatalf("consolidated: want software check fault, got %v", err)
				}
			})
		}
	}
}

// TestChopVerdictDifferential sweeps the stencil's loop bounds across
// both array edges and requires the consolidated program to agree with
// the unconsolidated one on the verdict — same output when neither
// traps, a bound violation in both when either member trips — for every
// strategy the pass applies to.
func TestChopVerdictDifferential(t *testing.T) {
	for _, mode := range []vm.Mode{vm.ModeBCC, vm.ModeMPX} {
		for start := 0; start <= 2; start++ {
			for end := 8; end <= 11; end++ {
				src := fmt.Sprintf(`
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = %d; i < %d; i++) {
		s = s + a[i - 1] + a[i + 1];
	}
	printi(s);
	return 0;
}
`, start, end)
				off, on := chopConfigs(Config{Mode: mode})
				resOff, errOff := runMode(t, src, off)
				resOn, errOn := runMode(t, src, on)
				var fOff, fOn *vm.Fault
				trapOff := errors.As(errOff, &fOff) && fOff.IsBoundViolation()
				trapOn := errors.As(errOn, &fOn) && fOn.IsBoundViolation()
				if (errOff == nil) != (errOn == nil) || trapOff != trapOn {
					t.Fatalf("%v start=%d end=%d: verdict diverged: %v vs %v",
						mode, start, end, errOff, errOn)
				}
				if errOff != nil {
					continue
				}
				if len(resOff.Output) != len(resOn.Output) || resOff.Output[0] != resOn.Output[0] {
					t.Fatalf("%v start=%d end=%d: output diverged: %v vs %v",
						mode, start, end, resOff.Output, resOn.Output)
				}
			}
		}
	}
}

// TestChopRespectsRegionBreaks: a call between stencil members makes
// consolidation unsound (output could precede the moved trap); the pass
// must leave such groups alone.
func TestChopRespectsRegionBreaks(t *testing.T) {
	src := `
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = 1; i < 9; i++) {
		s = s + a[i - 1];
		printi(i);
		s = s + a[i + 1];
	}
	printi(s);
	return 0;
}
`
	_, on := chopConfigs(Config{Mode: vm.ModeBCC})
	if p := compile(t, src, on); p.Stats[StatChecksChop] != 0 {
		t.Fatalf("chop consolidated across a call: %d", p.Stats[StatChecksChop])
	}
}

// TestChopRespectsIndexStores: writing the index variable between two
// references severs their group (the cores no longer match at runtime).
func TestChopRespectsIndexStores(t *testing.T) {
	src := `
int a[10];
int main() {
	int i;
	int s = 0;
	for (i = 1; i < 8; i++) {
		s = s + a[i];
		i = i + 1;
		s = s + a[i];
	}
	printi(s);
	return 0;
}
`
	_, on := chopConfigs(Config{Mode: vm.ModeBCC})
	if p := compile(t, src, on); p.Stats[StatChecksChop] != 0 {
		t.Fatalf("chop consolidated across an index store: %d", p.Stats[StatChecksChop])
	}
	expectSameOutput := func(cfg Config) []int32 {
		res := mustRunMode(t, src, cfg)
		return res.Output
	}
	off, _ := chopConfigs(Config{Mode: vm.ModeBCC})
	a, b := expectSameOutput(off), expectSameOutput(on)
	if len(a) != len(b) {
		t.Fatalf("output diverged: %v vs %v", a, b)
	}
}
