package codegen

import (
	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
)

// Redundant-check elimination. A software check is removable when, on
// every path from the function entry to it, an identical check (same
// canonical object+index key) has already executed and nothing since
// could have changed the key's meaning: the scalar variables the index
// reads, or the checked object's bounds/base (a pointer's slot, an info
// structure). This is a forward available-expressions analysis over the
// fragment CFG, with stores resolved against the function's frame and
// global layout; anything unresolvable (calls, stores through inexact
// operands) conservatively kills every available key.

type rcePass struct{}

func (rcePass) Name() string { return "rce" }

func (rcePass) run(c *compiler, m *ir.Module) error {
	c.stats[StatChecksElim] += 0 // the key is present whenever the pass ran
	// Key provenance, module-wide: declKey ordinals are unique per
	// declaration, so equal keys always mean equal (object, vars).
	keyVars := make(map[string][]*minic.VarDecl)
	keyObj := make(map[string]*minic.VarDecl)
	for _, rec := range c.checks {
		if rec.key == "" {
			continue
		}
		keyVars[rec.key] = rec.vars
		keyObj[rec.key] = rec.decl
	}
	for _, fs := range c.fns {
		c.rceFunc(fs, keyVars, keyObj)
	}
	return nil
}

// Slot classification: what a resolved store can invalidate.
type slotClass int

const (
	slotScalar  slotClass = iota + 1 // int/char variable: kills keys reading it
	slotPointer                      // pointer variable (value+metadata): kills its object's keys
	slotArray                        // array storage: checked interior, kills nothing
	slotInfo                         // Cash info structure: kills its object's keys
	slotTemp                         // compiler-internal hoisting slot: kills nothing
)

type slotRange struct {
	lo, hi int32 // [lo, hi)
	class  slotClass
	decl   *minic.VarDecl
}

func classOf(d *minic.VarDecl) slotClass {
	switch d.Type.Kind {
	case minic.TypeArray:
		return slotArray
	case minic.TypePointer:
		return slotPointer
	default:
		return slotScalar
	}
}

// rceFunc runs the analysis and deletes redundant checks in one function.
func (c *compiler) rceFunc(fs *fnState, keyVars map[string][]*minic.VarDecl, keyObj map[string]*minic.VarDecl) {
	// Frame layout: variable slots, info structures, hoisting temps.
	var frame []slotRange
	for d, off := range fs.frameOff {
		frame = append(frame, slotRange{off, off + c.slotSize(d.Type), classOf(d), d})
		if d.Type.Kind == minic.TypeArray {
			if ioff, ok := c.localInfo[d]; ok {
				frame = append(frame, slotRange{ioff, ioff + vm.InfoStructSize, slotInfo, d})
			}
		}
	}
	for off := range fs.temps {
		frame = append(frame, slotRange{off, off + 4, slotTemp, nil})
	}
	// Global layout.
	var globals []slotRange
	for _, g := range c.src.Globals {
		lo := int32(g.Addr)
		globals = append(globals, slotRange{lo, lo + c.slotSize(g.Type), classOf(g), g})
		if ioff, ok := c.gInfo[g]; ok {
			globals = append(globals, slotRange{int32(ioff), int32(ioff) + vm.InfoStructSize, slotInfo, g})
		}
	}

	kill := func(avail map[string]bool, in *ir.Instr) {
		switch in.Op {
		case vm.CALL, vm.LCALL, vm.HCALL, vm.INT:
			// A call may store anywhere (globals, through pointers).
			for k := range avail {
				delete(avail, k)
			}
			return
		}
		if in.Dst.Kind != vm.KindMem || in.Op == vm.CMP || in.Op == vm.BOUND {
			return
		}
		m := in.Dst.Mem
		var ranges []slotRange
		switch {
		case m.HasBase && m.Base == vm.EBP && !m.HasIndex:
			ranges = frame
		case !m.HasBase && !m.HasIndex:
			ranges = globals
		default:
			// Store through a computed address: sound only when the
			// lowering tagged it as checked against a declared array's
			// true storage, which cannot overlap scalar or pointer slots.
			if t, ok := in.Tag.(refTag); ok && t.exact {
				return
			}
			for k := range avail {
				delete(avail, k)
			}
			return
		}
		var hit *slotRange
		for i := range ranges {
			if m.Disp >= ranges[i].lo && m.Disp < ranges[i].hi {
				hit = &ranges[i]
				break
			}
		}
		if hit == nil {
			for k := range avail {
				delete(avail, k)
			}
			return
		}
		switch hit.class {
		case slotScalar:
			for k := range avail {
				for _, v := range keyVars[k] {
					if v == hit.decl {
						delete(avail, k)
						break
					}
				}
			}
		case slotPointer, slotInfo:
			for k := range avail {
				if keyObj[k] == hit.decl {
					delete(avail, k)
				}
			}
		case slotArray, slotTemp:
			// In-bounds object interior: cannot alias a slot.
		}
	}

	g := fs.frag.BuildCFG()
	blocks := fs.frag.Blocks
	if len(blocks) == 0 {
		return
	}

	// True head of each check sequence. A sequence can span blocks (its
	// trap jumps end blocks mid-check), so the head must be identified
	// over the whole layout: a continuation at a block start is not a
	// fresh check, or it would see its own gen as availability.
	type instrPos struct {
		blk *ir.Block
		idx int
	}
	heads := make(map[int]instrPos)
	prevID := 0
	for _, blk := range blocks {
		for i := range blk.Instrs {
			id := blk.Instrs[i].CheckID
			if id == 0 {
				prevID = 0
				continue
			}
			if id != prevID {
				heads[id] = instrPos{blk, i}
				prevID = id
			}
		}
	}

	// transfer applies one block's effect to avail (mutating it) and, when
	// victims is non-nil, records checks whose key is already available.
	transfer := func(blk *ir.Block, avail map[string]bool, victims map[int]bool) {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if id := in.CheckID; id != 0 {
				if heads[id] == (instrPos{blk, i}) {
					if rec := c.checks[id]; rec != nil && rec.key != "" {
						if victims != nil && avail[rec.key] {
							victims[id] = true
						}
						avail[rec.key] = true
					}
				}
				// Check sequences contain no stores.
				continue
			}
			kill(avail, in)
		}
	}
	entry := blocks[0]
	reach := map[*ir.Block]bool{entry: true}
	work := []*ir.Block{entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.Succs[b] {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}

	// Universe of keys generated in this fragment (optimistic start for
	// the must-analysis, so loop-carried availability converges properly).
	universe := make(map[string]bool)
	for id := range heads {
		if rec := c.checks[id]; rec != nil && rec.key != "" {
			universe[rec.key] = true
		}
	}
	if len(universe) == 0 {
		return
	}
	copySet := func(s map[string]bool) map[string]bool {
		out := make(map[string]bool, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	}

	out := make(map[*ir.Block]map[string]bool, len(blocks))
	for _, b := range blocks {
		if reach[b] {
			out[b] = copySet(universe)
		}
	}
	in := make(map[*ir.Block]map[string]bool, len(blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			if !reach[b] {
				continue
			}
			var meet map[string]bool
			if b == entry {
				meet = make(map[string]bool)
			} else {
				for _, p := range g.Preds[b] {
					if !reach[p] {
						continue
					}
					if meet == nil {
						meet = copySet(out[p])
						continue
					}
					for k := range meet {
						if !out[p][k] {
							delete(meet, k)
						}
					}
				}
				if meet == nil {
					meet = make(map[string]bool) // unreachable-pred-only: entry-like
				}
			}
			in[b] = meet
			next := copySet(meet)
			transfer(b, next, nil)
			if len(next) != len(out[b]) {
				out[b] = next
				changed = true
				continue
			}
			for k := range next {
				if !out[b][k] {
					out[b] = next
					changed = true
					break
				}
			}
		}
	}

	victims := make(map[int]bool)
	for _, b := range blocks {
		if !reach[b] {
			continue
		}
		transfer(b, copySet(in[b]), victims)
	}
	if len(victims) == 0 {
		return
	}
	for _, blk := range blocks {
		kept := blk.Instrs[:0]
		for _, iin := range blk.Instrs {
			if iin.CheckID != 0 && victims[iin.CheckID] {
				continue
			}
			kept = append(kept, iin)
		}
		blk.Instrs = kept
	}
	fs.frag.Compact()
	for id := range victims {
		c.deadChecks[id] = true
	}
	c.stats[StatSWChecks] -= uint64(len(victims))
	c.stats[StatChecksElim] += uint64(len(victims))
}
