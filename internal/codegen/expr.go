package codegen

import (
	"fmt"

	"cash/internal/minic"
	"cash/internal/vm"
)

// Expression code generation. Convention: an expression's value lands in
// EAX. Pointer-typed values additionally carry metadata in registers
// according to the mode: Cash keeps the shadow info pointer in EDX; BCC
// keeps base in EDX and limit in ECX. Temporaries across sub-expressions
// are kept on the machine stack; EBX/ESI/EDI are scratch within one node.
// All mode-specific metadata flow goes through the strategy (strategy.go).

// loadUncheckedMeta sets the metadata registers to "no bounds known":
// Cash points the shadow at the universal info structure, BCC uses
// [0, 4GiB). Used for pointers materialised from integers, NULL, or
// loaded thin from memory.
func (c *compiler) loadUncheckedMeta() {
	c.strat.loadUncheckedMeta(c)
}

// pushPtr / popPtr save and restore a pointer value plus metadata around
// a sub-evaluation. Fat-pointer strategies stack the metadata words above
// the value word (value pushed last so it pops first); MPX keys its
// bounds table by the spill slot's address instead.
func (c *compiler) pushPtr() {
	c.strat.pushPtr(c)
}

// popPtr restores a pushed pointer into EAX + metadata registers.
func (c *compiler) popPtr() {
	c.strat.popPtr(c)
}

// genExpr compiles e; result in EAX (+ metadata for pointers).
func (c *compiler) genExpr(e minic.Expr) error {
	switch e := e.(type) {
	case *minic.NumberLit:
		c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(e.Value))
		return nil

	case *minic.StringLit:
		lit := c.internString(e)
		c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(int32(lit.addr)))
		c.strat.stringLitMeta(c, lit)
		return nil

	case *minic.VarRef:
		return c.genVarRef(e.Decl)

	case *minic.Unary:
		return c.genUnary(e)

	case *minic.IncDec:
		return c.genIncDec(e)

	case *minic.Binary:
		return c.genBinary(e)

	case *minic.Assign:
		return c.genAssign(e)

	case *minic.Index:
		op, err := c.genRef(e.Base, e.Index, elemSizeOf(e.Base), false)
		if err != nil {
			return err
		}
		return c.genLoadThrough(op, e.Type())

	case *minic.Call:
		return c.genCall(e)

	case *minic.Cast:
		if err := c.genExpr(e.X); err != nil {
			return err
		}
		from := e.X.Type()
		switch {
		case e.To.Kind == minic.TypePointer && from.Kind == minic.TypePointer:
			// Metadata carries over (§3.9: casts copy the shadow info).
		case e.To.Kind == minic.TypePointer:
			// Integer materialised as pointer: unchecked.
			c.loadUncheckedMeta()
		}
		return nil

	default:
		return fmt.Errorf("codegen: unknown expression %T", e)
	}
}

// elemSizeOf returns the element size of a pointer-typed base expression.
func elemSizeOf(base minic.Expr) int32 {
	t := base.Type()
	if t.Kind == minic.TypePointer {
		return int32(t.Elem.Size())
	}
	return 4
}

// genLoadThrough loads a value of the given (element) type through a
// memory operand produced by genRef.
func (c *compiler) genLoadThrough(op vm.Operand, t *minic.Type) error {
	c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.R(vm.EAX), Src: op, Size: accSize(t)})
	if t.Kind == minic.TypePointer {
		// Pointers stored inside objects are thin; a loaded pointer
		// carries no bounds (documented representation decision).
		c.loadUncheckedMeta()
	}
	return nil
}

func (c *compiler) genVarRef(d *minic.VarDecl) error {
	switch d.Type.Kind {
	case minic.TypeArray:
		// Array decays to a pointer to its first element.
		if d.Storage == minic.StorageGlobal {
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(int32(d.Addr)))
		} else {
			c.b.Op(vm.LEA, vm.R(vm.EAX), vm.M(c.slotRef(d, 0)))
		}
		c.strat.arrayDecayMeta(c, d)
		return nil

	case minic.TypePointer:
		c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(c.slotRef(d, 0)))
		c.strat.pointerLoadMeta(c, d)
		return nil

	default:
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.R(vm.EAX), Src: vm.M(c.slotRef(d, 0)), Size: accSize(d.Type)})
		return nil
	}
}

func (c *compiler) genUnary(e *minic.Unary) error {
	switch e.Op {
	case "-":
		if err := c.genExpr(e.X); err != nil {
			return err
		}
		c.b.Op1(vm.NEG, vm.R(vm.EAX))
		return nil
	case "~":
		if err := c.genExpr(e.X); err != nil {
			return err
		}
		c.b.Op1(vm.NOT, vm.R(vm.EAX))
		return nil
	case "!":
		return c.materializeCond(e)
	case "*":
		op, err := c.genRef(e.X, nil, elemSizeOf(e.X), false)
		if err != nil {
			return err
		}
		return c.genLoadThrough(op, e.Type())
	case "&":
		return c.genAddrOf(e.X)
	default:
		return fmt.Errorf("codegen: unary %s", e.Op)
	}
}

// genAddrOf compiles &x: the address in EAX with the enclosing object's
// metadata.
func (c *compiler) genAddrOf(x minic.Expr) error {
	switch x := x.(type) {
	case *minic.VarRef:
		d := x.Decl
		if d.Type.Kind == minic.TypeArray {
			return c.genVarRef(d) // &a == a for our purposes
		}
		// Address of a scalar. Cash associates scalars with the global
		// segment, disabling checks (§3.9); BCC gives exact bounds.
		if d.Storage == minic.StorageGlobal {
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(int32(d.Addr)))
		} else {
			c.b.Op(vm.LEA, vm.R(vm.EAX), vm.M(c.slotRef(d, 0)))
		}
		c.strat.scalarAddrMeta(c, d)
		return nil

	case *minic.Index:
		// &base[i]: address arithmetic only, no memory access, metadata of
		// the underlying object.
		d := refObject(x.Base)
		elem := elemSizeOf(x.Base)
		if d == nil {
			// Computed base: pointer arithmetic base + i.
			return c.genPtrPlusInt(x.Base, x.Index, elem, false)
		}
		if err := c.genVarRef(d); err != nil { // EAX = base ptr, metadata set
			return err
		}
		if v, ok := constEval(x.Index); ok {
			if v != 0 {
				c.b.Op(vm.ADD, vm.R(vm.EAX), vm.I(v*elem))
			}
			return nil
		}
		c.pushPtr()
		if err := c.genExpr(x.Index); err != nil {
			return err
		}
		c.scaleReg(vm.EAX, elem)
		c.b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.EAX))
		c.popPtr()
		c.b.Op(vm.ADD, vm.R(vm.EAX), vm.R(vm.EBX))
		return nil

	default:
		return fmt.Errorf("codegen: cannot take address of %T", x)
	}
}

func (c *compiler) genIncDec(e *minic.IncDec) error {
	delta := int32(1)
	t := e.X.Type()
	if t.Kind == minic.TypePointer {
		delta = int32(t.Elem.Size())
	}
	if e.Op == "--" {
		delta = -delta
	}
	switch x := e.X.(type) {
	case *minic.VarRef:
		d := x.Decl
		size := accSize(d.Type)
		if err := c.genVarRef(d); err != nil { // old value in EAX (+meta)
			return err
		}
		if e.Post {
			c.b.Op(vm.MOV, vm.R(vm.EBX), vm.R(vm.EAX))
			c.b.Op(vm.ADD, vm.R(vm.EBX), vm.I(delta))
			c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.M(c.slotRef(d, 0)), Src: vm.R(vm.EBX), Size: size})
			return nil // EAX holds the old value; metadata unchanged
		}
		c.b.Op(vm.ADD, vm.R(vm.EAX), vm.I(delta))
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.M(c.slotRef(d, 0)), Src: vm.R(vm.EAX), Size: size})
		return nil

	default:
		// ++/-- on a dereferenced location: read-modify-write through the
		// checked operand.
		op, size, err := c.genLValueRef(e.X, true)
		if err != nil {
			return err
		}
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.R(vm.ESI), Src: op, Size: size})
		c.b.Op(vm.MOV, vm.R(vm.EDI), vm.R(vm.ESI))
		c.b.Op(vm.ADD, vm.R(vm.EDI), vm.I(delta))
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: op, Src: vm.R(vm.EDI), Size: size})
		if e.Post {
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.R(vm.ESI))
		} else {
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.R(vm.EDI))
		}
		if e.Type().Kind == minic.TypePointer {
			c.loadUncheckedMeta()
		}
		return nil
	}
}

// genLValueRef produces a checked memory operand for an Index or deref
// lvalue.
func (c *compiler) genLValueRef(e minic.Expr, write bool) (vm.Operand, uint8, error) {
	switch e := e.(type) {
	case *minic.Index:
		op, err := c.genRef(e.Base, e.Index, elemSizeOf(e.Base), write)
		return op, accSize(e.Type()), err
	case *minic.Unary:
		if e.Op != "*" {
			break
		}
		op, err := c.genRef(e.X, nil, elemSizeOf(e.X), write)
		return op, accSize(e.Type()), err
	}
	return vm.Operand{}, 0, fmt.Errorf("codegen: not a memory lvalue: %T", e)
}

var compareJcc = map[string][2]vm.Op{
	// signed, unsigned variants
	"==": {vm.JE, vm.JE},
	"!=": {vm.JNE, vm.JNE},
	"<":  {vm.JL, vm.JB},
	"<=": {vm.JLE, vm.JBE},
	">":  {vm.JG, vm.JA},
	">=": {vm.JGE, vm.JAE},
}

var negatedJcc = map[vm.Op]vm.Op{
	vm.JE: vm.JNE, vm.JNE: vm.JE,
	vm.JL: vm.JGE, vm.JGE: vm.JL, vm.JLE: vm.JG, vm.JG: vm.JLE,
	vm.JB: vm.JAE, vm.JAE: vm.JB, vm.JBE: vm.JA, vm.JA: vm.JBE,
}

// genCondJump compiles e as a condition: control transfers to target when
// the condition's truth equals jumpIfTrue, and falls through otherwise.
func (c *compiler) genCondJump(e minic.Expr, target string, jumpIfTrue bool) error {
	switch e := e.(type) {
	case *minic.Binary:
		if jcc, ok := compareJcc[e.Op]; ok {
			if rhs, direct := c.directOperand(e.Y); direct {
				if err := c.genExpr(e.X); err != nil {
					return err
				}
				c.b.Op(vm.CMP, vm.R(vm.EAX), rhs)
			} else {
				if err := c.genExpr(e.Y); err != nil {
					return err
				}
				c.b.Op1(vm.PUSH, vm.R(vm.EAX))
				if err := c.genExpr(e.X); err != nil {
					return err
				}
				c.b.Op1(vm.POP, vm.R(vm.EBX))
				c.b.Op(vm.CMP, vm.R(vm.EAX), vm.R(vm.EBX))
			}
			unsigned := e.X.Type().IsPointerLike() || e.Y.Type().IsPointerLike()
			op := jcc[0]
			if unsigned {
				op = jcc[1]
			}
			if !jumpIfTrue {
				op = negatedJcc[op]
			}
			c.b.Jump(op, target)
			return nil
		}
		// Short-circuit right operands execute conditionally: bracket them
		// for the hoist candidates.
		if e.Op == "&&" {
			if jumpIfTrue {
				skip := c.lbl("and")
				if err := c.genCondJump(e.X, skip, false); err != nil {
					return err
				}
				c.condEnter()
				err := c.genCondJump(e.Y, target, true)
				c.condExit()
				if err != nil {
					return err
				}
				c.b.Label(skip)
				return nil
			}
			if err := c.genCondJump(e.X, target, false); err != nil {
				return err
			}
			c.condEnter()
			err := c.genCondJump(e.Y, target, false)
			c.condExit()
			return err
		}
		if e.Op == "||" {
			if jumpIfTrue {
				if err := c.genCondJump(e.X, target, true); err != nil {
					return err
				}
				c.condEnter()
				err := c.genCondJump(e.Y, target, true)
				c.condExit()
				return err
			}
			skip := c.lbl("or")
			if err := c.genCondJump(e.X, skip, true); err != nil {
				return err
			}
			c.condEnter()
			err := c.genCondJump(e.Y, target, false)
			c.condExit()
			if err != nil {
				return err
			}
			c.b.Label(skip)
			return nil
		}

	case *minic.Unary:
		if e.Op == "!" {
			return c.genCondJump(e.X, target, !jumpIfTrue)
		}
	}
	// Generic: evaluate and compare against zero.
	if err := c.genExpr(e); err != nil {
		return err
	}
	c.b.Op(vm.CMP, vm.R(vm.EAX), vm.I(0))
	op := vm.JNE
	if !jumpIfTrue {
		op = vm.JE
	}
	c.b.Jump(op, target)
	return nil
}

// materializeCond turns a boolean expression into 0/1 in EAX.
func (c *compiler) materializeCond(e minic.Expr) error {
	tl, end := c.lbl("ct"), c.lbl("ce")
	if err := c.genCondJump(e, tl, true); err != nil {
		return err
	}
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(0))
	c.b.Jump(vm.JMP, end)
	c.b.Label(tl)
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(1))
	c.b.Label(end)
	return nil
}

// genPtrPlusInt compiles ptrExpr +/- intExpr with the pointer's metadata
// preserved. neg selects subtraction.
func (c *compiler) genPtrPlusInt(ptr minic.Expr, idx minic.Expr, elem int32, neg bool) error {
	if v, ok := constEval(idx); ok {
		if err := c.genExpr(ptr); err != nil {
			return err
		}
		d := v * elem
		if neg {
			d = -d
		}
		if d != 0 {
			c.b.Op(vm.ADD, vm.R(vm.EAX), vm.I(d))
		}
		return nil
	}
	if rhs, direct := c.directOperand(idx); direct {
		if err := c.genExpr(ptr); err != nil {
			return err
		}
		c.b.Op(vm.MOV, vm.R(vm.EBX), rhs)
	} else {
		if err := c.genExpr(idx); err != nil {
			return err
		}
		c.b.Op1(vm.PUSH, vm.R(vm.EAX))
		if err := c.genExpr(ptr); err != nil {
			return err
		}
		c.b.Op1(vm.POP, vm.R(vm.EBX))
	}
	c.scaleReg(vm.EBX, elem)
	if neg {
		c.b.Op(vm.SUB, vm.R(vm.EAX), vm.R(vm.EBX))
	} else {
		c.b.Op(vm.ADD, vm.R(vm.EAX), vm.R(vm.EBX))
	}
	return nil
}

var aluOps = map[string]vm.Op{
	"+": vm.ADD, "-": vm.SUB, "*": vm.IMUL, "/": vm.IDIV, "%": vm.IMOD,
	"&": vm.AND, "|": vm.OR, "^": vm.XOR, "<<": vm.SHL, ">>": vm.SAR,
}

// directOperand returns an immediate or memory operand for expressions
// that need no computation: integer constants and scalar int variables.
// (char variables need a width-changing load and pointers carry
// metadata, so both evaluate normally.)
func (c *compiler) directOperand(e minic.Expr) (vm.Operand, bool) {
	if v, ok := constEval(e); ok {
		return vm.I(v), true
	}
	if ref, ok := e.(*minic.VarRef); ok && ref.Decl != nil && ref.Decl.Type == minic.Int {
		return vm.M(c.slotRef(ref.Decl, 0)), true
	}
	return vm.Operand{}, false
}

func (c *compiler) genBinary(e *minic.Binary) error {
	if _, isCmp := compareJcc[e.Op]; isCmp || e.Op == "&&" || e.Op == "||" {
		return c.materializeCond(e)
	}
	xt, yt := e.X.Type(), e.Y.Type()

	// Pointer arithmetic.
	if e.Op == "+" || e.Op == "-" {
		switch {
		case xt.Kind == minic.TypePointer && yt.IsArith():
			return c.genPtrPlusInt(e.X, e.Y, int32(xt.Elem.Size()), e.Op == "-")
		case e.Op == "+" && xt.IsArith() && yt.Kind == minic.TypePointer:
			return c.genPtrPlusInt(e.Y, e.X, int32(yt.Elem.Size()), false)
		case e.Op == "-" && xt.Kind == minic.TypePointer && yt.Kind == minic.TypePointer:
			if err := c.genExpr(e.Y); err != nil {
				return err
			}
			c.b.Op1(vm.PUSH, vm.R(vm.EAX))
			if err := c.genExpr(e.X); err != nil {
				return err
			}
			c.b.Op1(vm.POP, vm.R(vm.EBX))
			c.b.Op(vm.SUB, vm.R(vm.EAX), vm.R(vm.EBX))
			elem := int32(xt.Elem.Size())
			if elem > 1 {
				c.b.Op(vm.IDIV, vm.R(vm.EAX), vm.I(elem))
			}
			return nil
		}
	}

	op, ok := aluOps[e.Op]
	if !ok {
		return fmt.Errorf("codegen: binary %s", e.Op)
	}
	// Constant or plain-variable RHS uses an immediate/memory operand
	// directly, as any real x86 compiler does, avoiding the push/pop
	// spill — this keeps the unchecked baseline tight so the check
	// overheads are not diluted.
	if rhs, direct := c.directOperand(e.Y); direct {
		if err := c.genExpr(e.X); err != nil {
			return err
		}
		c.b.Op(op, vm.R(vm.EAX), rhs)
		return nil
	}
	if err := c.genExpr(e.Y); err != nil {
		return err
	}
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
	if err := c.genExpr(e.X); err != nil {
		return err
	}
	c.b.Op1(vm.POP, vm.R(vm.EBX))
	c.b.Op(op, vm.R(vm.EAX), vm.R(vm.EBX))
	return nil
}

func (c *compiler) genAssign(e *minic.Assign) error {
	switch lhs := e.LHS.(type) {
	case *minic.VarRef:
		return c.genAssignVar(e, lhs.Decl)
	default:
		return c.genAssignMem(e)
	}
}

// genAssignVar stores into a named variable's slot.
func (c *compiler) genAssignVar(e *minic.Assign, d *minic.VarDecl) error {
	size := accSize(d.Type)
	if e.Op == "=" {
		if err := c.genExpr(e.RHS); err != nil {
			return err
		}
		if d.Type.Kind == minic.TypePointer && !e.RHS.Type().IsPointerLike() {
			// NULL (0) literal assigned to a pointer.
			c.loadUncheckedMeta()
		}
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.M(c.slotRef(d, 0)), Src: vm.R(vm.EAX), Size: size})
		if d.Type.Kind == minic.TypePointer {
			c.strat.storePointerMeta(c, d)
		}
		return nil
	}

	// Compound assignment.
	op := aluOps[e.Op[:len(e.Op)-1]]
	if err := c.genExpr(e.RHS); err != nil {
		return err
	}
	if d.Type.Kind == minic.TypePointer {
		// p += n scales by the element size; metadata is unchanged.
		c.scaleReg(vm.EAX, int32(d.Type.Elem.Size()))
	}
	c.b.Emit(vm.Instr{Op: op, Dst: vm.M(c.slotRef(d, 0)), Src: vm.R(vm.EAX), Size: size})
	// The assignment's value is the updated variable.
	return c.genVarRef(d)
}

// genAssignMem stores through a checked Index/deref lvalue.
func (c *compiler) genAssignMem(e *minic.Assign) error {
	if err := c.genExpr(e.RHS); err != nil {
		return err
	}
	c.b.Op1(vm.PUSH, vm.R(vm.EAX))
	op, size, err := c.genLValueRef(e.LHS, true)
	if err != nil {
		return err
	}
	c.b.Op1(vm.POP, vm.R(vm.ESI))
	if e.Op == "=" {
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: op, Src: vm.R(vm.ESI), Size: size})
		c.b.Op(vm.MOV, vm.R(vm.EAX), vm.R(vm.ESI))
		if e.Type().Kind == minic.TypePointer {
			c.loadUncheckedMeta()
		}
		return nil
	}
	alu := aluOps[e.Op[:len(e.Op)-1]]
	c.b.Emit(vm.Instr{Op: alu, Dst: op, Src: vm.R(vm.ESI), Size: size})
	c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.R(vm.EAX), Src: op, Size: size})
	return nil
}

func (c *compiler) genCall(e *minic.Call) error {
	if minic.IsBuiltin(e.Name) {
		return c.genBuiltin(e)
	}
	fn := e.Decl
	// Push arguments right-to-left; fat pointer parameters take their
	// metadata words too, exactly the copying cost §4.5 discusses.
	total := int32(0)
	for i := len(e.Args) - 1; i >= 0; i-- {
		arg := e.Args[i]
		param := fn.Params[i]
		if err := c.genExpr(arg); err != nil {
			return err
		}
		if param.Type.Kind == minic.TypePointer {
			if !arg.Type().IsPointerLike() {
				c.loadUncheckedMeta()
			}
			c.pushPtr()
			total += c.strat.ptrWords() * 4
		} else {
			c.b.Op1(vm.PUSH, vm.R(vm.EAX))
			total += 4
		}
	}
	c.b.Call(e.Name)
	if total > 0 {
		c.b.Op(vm.ADD, vm.R(vm.ESP), vm.I(total))
	}
	return nil
}

func (c *compiler) genBuiltin(e *minic.Call) error {
	switch e.Name {
	case "printi", "printc":
		if err := c.genExpr(e.Args[0]); err != nil {
			return err
		}
		svc := vm.HostPrintInt
		if e.Name == "printc" {
			svc = vm.HostPrintCh
		}
		c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(int32(svc))})
		return nil

	case "malloc":
		if err := c.genExpr(e.Args[0]); err != nil {
			return err
		}
		c.strat.mallocCall(c)
		return nil

	case "free":
		if err := c.genExpr(e.Args[0]); err != nil {
			return err
		}
		c.b.Emit(vm.Instr{Op: vm.HCALL, Src: vm.I(vm.HostFree)})
		return nil

	default:
		return fmt.Errorf("codegen: unknown builtin %s", e.Name)
	}
}
