package codegen

import (
	"testing"

	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/workload"
)

// --- The affine pass on computed indices ---------------------------------

// TestAffineMatMul pins the headline: matmul's flattened 2-D accesses
// (i*n+j and friends) are beyond rce and hoist, and the affine pass
// replaces all five of them with preheader endpoint pairs.
func TestAffineMatMul(t *testing.T) {
	w := workload.MatMul(12)
	base := Config{Mode: vm.ModeBCC, Passes: []string{"rce", "hoist"}}
	full := Config{Mode: vm.ModeBCC, Passes: []string{"rce", "hoist", "affine"}}
	off := compile(t, w.Source, base)
	on := compile(t, w.Source, full)
	if on.Stats[StatChecksAffine] == 0 {
		t.Fatal("affine pass removed nothing on matmul")
	}
	resOff := mustRunMode(t, w.Source, base)
	resOn := mustRunMode(t, w.Source, full)
	if len(resOff.Output) == 0 || resOff.Output[0] != resOn.Output[0] {
		t.Fatalf("output changed: %v vs %v", resOff.Output, resOn.Output)
	}
	if resOn.Stats.SWChecks >= resOff.Stats.SWChecks {
		t.Fatalf("dynamic sw checks not reduced: %d -> %d",
			resOff.Stats.SWChecks, resOn.Stats.SWChecks)
	}
	if resOn.Cycles >= resOff.Cycles {
		t.Fatalf("cycles not reduced: %d -> %d", resOff.Cycles, resOn.Cycles)
	}
	// Stat key is additive: present only when the pass ran.
	if _, ok := off.Stats[StatChecksAffine]; ok {
		t.Error("sw_checks_affine present without the affine pass")
	}
}

// TestAffineRangeKernels covers the shapes the pass was built for:
// triangular nests (chain shrinking), runtime strides (guard
// justification through the inner bound), constant strides — and the
// gather control it must not touch.
func TestAffineRangeKernels(t *testing.T) {
	base := Config{Mode: vm.ModeBCC, Passes: []string{"rce", "hoist"}}
	full := Config{Mode: vm.ModeBCC, Passes: []string{"rce", "hoist", "affine"}}
	for _, w := range workload.RangeKernels() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			on := compile(t, w.Source, full)
			resOff := mustRunMode(t, w.Source, base)
			resOn := mustRunMode(t, w.Source, full)
			if len(resOff.Output) == 0 || resOff.Output[0] != resOn.Output[0] {
				t.Fatalf("output changed: %v vs %v", resOff.Output, resOn.Output)
			}
			if w.Name == workload.Gather(256).Name {
				// The control: a[idx[i]] is not affine, and the idx[i]
				// reads belong to hoist. The pass must find nothing.
				if got := on.Stats[StatChecksAffine]; got != 0 {
					t.Fatalf("affine removed %d checks on the gather control", got)
				}
				off := compile(t, w.Source, base)
				if len(off.Instrs) != len(on.Instrs) {
					t.Fatalf("gather instruction stream changed: %d -> %d instrs",
						len(off.Instrs), len(on.Instrs))
				}
				for i := range off.Instrs {
					if off.Instrs[i] != on.Instrs[i] {
						t.Fatalf("gather instr %d differs: %v vs %v",
							i, off.Instrs[i], on.Instrs[i])
					}
				}
				return
			}
			if on.Stats[StatChecksAffine] == 0 {
				t.Fatal("affine pass removed nothing")
			}
			if resOn.Stats.SWChecks >= resOff.Stats.SWChecks {
				t.Fatalf("dynamic sw checks not reduced: %d -> %d",
					resOff.Stats.SWChecks, resOn.Stats.SWChecks)
			}
			if resOn.Cycles >= resOff.Cycles {
				t.Fatalf("cycles not reduced: %d -> %d", resOff.Cycles, resOn.Cycles)
			}
		})
	}
}

// affineViolationSrcs walk a computed index off the end of the array;
// the transformed program must still report a violation (it may trap
// earlier, at the preheader).
var affineViolationSrcs = map[string]string{
	// Constant-bound nest: rows*cols exceeds the array by one row.
	"const-nest": `
int a[16];
int main() {
	int s = 0;
	for (int i = 0; i < 5; i++) {
		for (int j = 0; j < 4; j++) {
			s += a[i*4+j];
		}
	}
	printi(s);
	return 0;
}
`,
	// Runtime-bound nest: the guard limit admits n=5, the max endpoint
	// (5-1)*4+3 = 19 is out of [0,16).
	"runtime-nest": `
int a[16];
int main() {
	int n = 5;
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < 4; j++) {
			s += a[i*4+j];
		}
	}
	printi(s);
	return 0;
}
`,
	// Oversized runtime stride: the violating reference is mid-row, not
	// at a corner of a well-formed box.
	"stride-overrun": `
int a[24];
int main() {
	int n = 4;
	int w = 7;
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < w; j++) {
			s += a[i*w+j];
		}
	}
	printi(s);
	return 0;
}
`,
}

func TestAffinePreservesViolation(t *testing.T) {
	for name, src := range affineViolationSrcs {
		t.Run(name, func(t *testing.T) {
			for _, passes := range [][]string{nil, {"affine"}, {"rce", "hoist", "affine"}} {
				_, err := runMode(t, src, Config{Mode: vm.ModeBCC, Passes: passes})
				f, ok := err.(*vm.Fault)
				if !ok || !f.IsBoundViolation() {
					t.Fatalf("passes=%v: want bound violation, got %v", passes, err)
				}
			}
		})
	}
}

// TestAffineSkipsEmptyRuntimeLoop: when a runtime bound admits zero
// iterations the skip guard must bypass the endpoint checks — a trap on
// an endpoint the program never touches would be a false positive.
func TestAffineSkipsEmptyRuntimeLoop(t *testing.T) {
	src := `
int a[4];
int main() {
	int n = 0;
	int s = 0;
	for (int i = 0; i < n; i++) {
		for (int j = 0; j < 100; j++) {
			s += a[i*100+j];
		}
	}
	printi(s);
	return 0;
}
`
	res := mustRunMode(t, src, Config{Mode: vm.ModeBCC, Passes: []string{"affine"}})
	if res.Output[0] != 0 {
		t.Fatalf("output = %v, want [0]", res.Output)
	}
}

// --- Satellite: hoist endpoint arithmetic --------------------------------

// TestHoistLargeLowerBound pins the endpoint-overflow fix: a loop whose
// lower bound sits at the matcher's cap still hoists with the correct
// verdict (a wrap in the scaled low endpoint would have checked a bogus
// in-range address and lost the violation).
func TestHoistLargeLowerBound(t *testing.T) {
	src := `
int a[16];
int main() {
	int i;
	int s = 0;
	for (i = 1048570; i < 1048576; i++) {
		s += a[i];
	}
	printi(s);
	return 0;
}
`
	for _, passes := range [][]string{nil, {"hoist"}} {
		_, err := runMode(t, src, Config{Mode: vm.ModeBCC, Passes: passes})
		f, ok := err.(*vm.Fault)
		if !ok || !f.IsBoundViolation() {
			t.Fatalf("passes=%v: want bound violation, got %v", passes, err)
		}
	}
}

// TestHoistEndpointsOK exercises the int64 endpoint validation directly:
// offsets representable in 32-bit address arithmetic pass, anything that
// would wrap is rejected (the caller then keeps per-iteration checks).
func TestHoistEndpointsOK(t *testing.T) {
	intArr := &minic.VarDecl{
		Name: "g", Storage: minic.StorageGlobal, Addr: 4096,
		Type: minic.ArrayOf(minic.Int, 16),
	}
	c := &compiler{}
	cases := []struct {
		name string
		cl   countedLoop
		want bool
	}{
		{"plain", countedLoop{lo: 0, hiConst: 16}, true},
		{"capped lo", countedLoop{lo: 1 << 20, hiConst: 1<<20 + 8}, true},
		{"negative lo", countedLoop{lo: -(1 << 20), hiConst: 0}, true},
		{"huge const hi", countedLoop{lo: 0, hiConst: 1 << 30}, false},
		{"runtime hi", countedLoop{lo: 0, hiVar: &minic.VarDecl{Name: "n"}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := c.hoistEndpointsOK(intArr, tc.cl); got != tc.want {
				t.Fatalf("hoistEndpointsOK = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestHoistNarrowingAudit pins the element-size assumption the emission
// paths narrow under: mini-C array elements are 1 (char) or 4 (int)
// bytes, so scaled offsets of |lo| <= 2^20 indices stay far inside
// int32. A wider element type would invalidate the audit comments in
// hoist.go and must fail here first.
func TestHoistNarrowingAudit(t *testing.T) {
	prog := mustParse(t, `
int a[4];
char b[8];
int main() { return 0; }
`)
	sizes := map[string]int{}
	for _, d := range prog.Globals {
		if d.Type.Kind == minic.TypeArray {
			sizes[d.Name] = d.Type.Elem.Size()
		}
	}
	if sizes["a"] != 4 || sizes["b"] != 1 {
		t.Fatalf("element sizes = %v, want a:4 b:1", sizes)
	}
	for _, d := range prog.Globals {
		if d.Type.Kind != minic.TypeArray {
			continue
		}
		elem := d.Type.Elem.Size()
		if elem != 1 && elem != 4 {
			t.Fatalf("%s: element size %d outside the audited {1,4} set", d.Name, elem)
		}
	}
}
