package codegen

import (
	"fmt"

	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// Function and statement code generation: frames, prologue/epilogue
// (segment-register save/restore and local-array segment lifecycle, §3.6
// and §3.7), loop preambles (hoisted segment set-up, §3.3), and control
// flow. Loops additionally build the IR loop tree (ir.Builder.BeginLoop)
// and register hoisting candidates for the optional passes.

func (c *compiler) genFunc(fn *minic.FuncDecl) error {
	c.fn = fn
	c.fa = c.strat.analyzeFunc(c, fn)
	c.frameOff = make(map[*minic.VarDecl]int32)
	c.loopCtxFor = make(map[minic.Stmt]*loopCtx)
	c.loops = nil
	c.inLoop = 0
	c.hoistCands = nil
	if c.wantHoist || c.wantAffine {
		c.addrTaken = make(map[*minic.VarDecl]bool)
		c.scanAddrTaken(fn.Body)
	}

	// Parameter slots: pushed right-to-left, so the first parameter is at
	// EBP+8. Fat pointer parameters occupy 2 (Cash) or 3 (BCC) words.
	off := int32(8)
	for _, p := range fn.Params {
		c.frameOff[p] = off
		off += c.slotSize(p.Type)
	}

	// Local slots. Every declaration in the function, however nested,
	// gets its own slot. Cash local arrays get an info structure
	// immediately below the array storage (§3.2).
	cur := int32(0)
	var localArrays []*minic.VarDecl
	var collect func(s minic.Stmt)
	collectDecl := func(d *minic.VarDecl) {
		if d.Type.Kind == minic.TypeArray {
			cur -= int32((d.Type.Size() + 3) &^ 3)
			c.frameOff[d] = cur
			var track bool
			cur, track = c.strat.localArrayFrame(c, d, cur)
			if track {
				localArrays = append(localArrays, d)
			}
			return
		}
		cur -= c.slotSize(d.Type)
		c.frameOff[d] = cur
	}
	collect = func(s minic.Stmt) {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				collect(sub)
			}
		case *minic.DeclStmt:
			for _, d := range s.Decls {
				collectDecl(d)
			}
		case *minic.IfStmt:
			if s.Then != nil {
				collect(s.Then)
			}
			if s.Else != nil {
				collect(s.Else)
			}
		case *minic.WhileStmt:
			if s.Body != nil {
				collect(s.Body)
			}
		case *minic.ForStmt:
			if s.Init != nil {
				collect(s.Init)
			}
			if s.Body != nil {
				collect(s.Body)
			}
		}
	}
	collect(fn.Body)

	// Hoisting slots for the per-loop segment set-up (§3.3).
	temps := make(map[int32]bool)
	for stmt, li := range c.fa.loops {
		lc := &loopCtx{
			info:    li,
			relSlot: make(map[*minic.VarDecl]int32),
			lowSlot: make(map[*minic.VarDecl]int32),
		}
		for _, d := range li.order {
			if _, ok := li.assigned[d]; !ok || d.Type.Kind != minic.TypePointer {
				continue
			}
			cur -= 4
			lc.lowSlot[d] = cur
			temps[cur] = true
			if !li.modified[d] {
				cur -= 4
				lc.relSlot[d] = cur
				temps[cur] = true
			}
		}
		c.loopCtxFor[stmt] = lc
	}
	frameSize := -cur

	// Prologue.
	c.b.Func(fn.Name)
	c.curFn = &fnState{
		fn:       fn,
		frag:     c.b.CurrentFragment(),
		frameOff: c.frameOff,
		temps:    temps,
	}
	c.fns = append(c.fns, c.curFn)
	c.b.Op1(vm.PUSH, vm.R(vm.EBP))
	c.b.Op(vm.MOV, vm.R(vm.EBP), vm.R(vm.ESP))
	if frameSize > 0 {
		c.b.Op(vm.SUB, vm.R(vm.ESP), vm.I(frameSize))
	}
	// Save the segment registers this function will use (§3.7).
	for _, r := range c.fa.segRegsUsed {
		c.b.Emit(vm.Instr{Op: vm.MOVRS, Dst: vm.R(vm.EBX), Src: vm.SR(r)})
		c.b.Op1(vm.PUSH, vm.R(vm.EBX))
	}
	// Allocate segments for local arrays (§3.4: one segment per array,
	// set up in the function prologue).
	for _, d := range localArrays {
		c.emitGateAlloc(
			vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d]}),
			int32(d.Type.Size()),
			vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.localInfo[d]}),
		)
		c.stats[StatLocalArrays]++
	}

	c.epilogue = c.lbl("epi")
	if err := c.genStmt(fn.Body); err != nil {
		return err
	}
	// Fall-through return value.
	c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(0))
	c.b.Label(c.epilogue)

	// Free local-array segments; never enters the kernel (§3.6). The
	// return value (and pointer metadata) must survive the gate calls.
	if len(localArrays) > 0 {
		c.b.Op1(vm.PUSH, vm.R(vm.EAX))
		c.b.Op1(vm.PUSH, vm.R(vm.EDX))
		c.b.Op1(vm.PUSH, vm.R(vm.ECX))
		for i := len(localArrays) - 1; i >= 0; i-- {
			d := localArrays[i]
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.I(vm.GateFreeSegment))
			c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.localInfo[d]}))
			c.b.Emit(vm.Instr{Op: vm.LCALL, Src: vm.I(7)})
		}
		c.b.Op1(vm.POP, vm.R(vm.ECX))
		c.b.Op1(vm.POP, vm.R(vm.EDX))
		c.b.Op1(vm.POP, vm.R(vm.EAX))
	}
	for i := len(c.fa.segRegsUsed) - 1; i >= 0; i-- {
		c.b.Op1(vm.POP, vm.R(vm.EBX))
		c.b.Emit(vm.Instr{Op: vm.MOVSR, Dst: vm.SR(c.fa.segRegsUsed[i]), Src: vm.R(vm.EBX), Size: 2})
	}
	c.b.Op(vm.MOV, vm.R(vm.ESP), vm.R(vm.EBP))
	c.b.Op1(vm.POP, vm.R(vm.EBP))
	c.b.Emit(vm.Instr{Op: vm.RET})
	return nil
}

// emitLoopPreamble emits the hoisted per-array segment set-up before an
// outermost loop: load the shadow pointer, load the segment register (4
// cycles), and hoist lower bound / relative base for pointer objects —
// the code marked '#' in the paper's §3.3 example.
func (c *compiler) emitLoopPreamble(lc *loopCtx) {
	for _, d := range lc.info.order {
		seg, ok := lc.info.assigned[d]
		if !ok {
			continue
		}
		first := c.b.Len()
		switch {
		case d.Type.Kind == minic.TypeArray && d.Storage == minic.StorageGlobal:
			c.b.Emit(vm.Instr{Op: vm.MOVSR, Dst: vm.SR(seg),
				Src: vm.M(vm.MemRef{Seg: x86seg.DS, Disp: int32(c.gInfo[d])}), Size: 2})
		case d.Type.Kind == minic.TypeArray:
			c.b.Emit(vm.Instr{Op: vm.MOVSR, Dst: vm.SR(seg),
				Src: vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.localInfo[d]}), Size: 2})
		default: // pointer variable
			c.b.Op(vm.MOV, vm.R(vm.ECX), vm.M(c.slotRef(d, 4))) // shadow
			c.b.Emit(vm.Instr{Op: vm.MOVSR, Dst: vm.SR(seg),
				Src: vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.ECX, HasBase: true}), Size: 2})
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(vm.MemRef{Seg: x86seg.DS, Base: vm.ECX, HasBase: true, Disp: 4}))
			c.b.Op(vm.MOV, vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: lc.lowSlot[d]}), vm.R(vm.EAX))
			if rel, ok := lc.relSlot[d]; ok {
				c.b.Op(vm.MOV, vm.R(vm.EBX), vm.M(c.slotRef(d, 0)))
				c.b.Op(vm.SUB, vm.R(vm.EBX), vm.R(vm.EAX))
				c.b.Op(vm.MOV, vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: rel}), vm.R(vm.EBX))
			}
		}
		for i := first; i < c.b.Len(); i++ {
			c.b.Instr(i).Note = vm.NoteSegSetup
		}
	}
}

func (c *compiler) genStmt(s minic.Stmt) error {
	switch s := s.(type) {
	case *minic.BlockStmt:
		for _, sub := range s.Stmts {
			if err := c.genStmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *minic.DeclStmt:
		for _, d := range s.Decls {
			if err := c.genLocalDecl(d); err != nil {
				return err
			}
		}
		return nil

	case *minic.ExprStmt:
		return c.genExpr(s.X)

	case *minic.IfStmt:
		elseLbl, endLbl := c.lbl("else"), c.lbl("fi")
		target := endLbl
		if s.Else != nil {
			target = elseLbl
		}
		if err := c.genCondJump(s.Cond, target, false); err != nil {
			return err
		}
		if s.Then != nil {
			c.condEnter()
			err := c.genStmt(s.Then)
			c.condExit()
			if err != nil {
				return err
			}
		}
		if s.Else != nil {
			c.b.Jump(vm.JMP, endLbl)
			c.b.Label(elseLbl)
			c.condEnter()
			err := c.genStmt(s.Else)
			c.condExit()
			if err != nil {
				return err
			}
		}
		c.b.Label(endLbl)
		return nil

	case *minic.WhileStmt:
		condLbl, endLbl := c.lbl("while"), c.lbl("wend")
		lc := c.loopCtxFor[s]
		if lc != nil {
			c.emitLoopPreamble(lc)
			c.loops = append(c.loops, lc)
		}
		c.inLoop++
		c.breakLbl = append(c.breakLbl, endLbl)
		c.contLbl = append(c.contLbl, condLbl)
		c.condEnter() // body of a nested loop is conditional for outer candidates
		lp := c.b.BeginLoop()
		c.b.Label(condLbl)
		c.b.SetLoopHeader(lp)
		if err := c.genCondJump(s.Cond, endLbl, false); err != nil {
			return err
		}
		if s.Body != nil {
			if err := c.genStmt(s.Body); err != nil {
				return err
			}
		}
		c.markBackedge(c.b.Jump(vm.JMP, condLbl), s.Body, nil)
		c.b.EndLoop()
		c.b.Label(endLbl)
		c.condExit()
		c.popLoop(lc)
		return nil

	case *minic.ForStmt:
		condLbl, postLbl, endLbl := c.lbl("for"), c.lbl("fpost"), c.lbl("fend")
		if s.Init != nil {
			if err := c.genStmt(s.Init); err != nil {
				return err
			}
		}
		lc := c.loopCtxFor[s]
		if lc != nil {
			// The preamble runs after the init, so "for (p = a; ...)"
			// hoists the just-assigned pointer.
			c.emitLoopPreamble(lc)
			c.loops = append(c.loops, lc)
		}
		c.inLoop++
		c.breakLbl = append(c.breakLbl, endLbl)
		c.contLbl = append(c.contLbl, postLbl)
		c.condEnter()
		lp := c.b.BeginLoop()
		c.b.Label(condLbl)
		c.b.SetLoopHeader(lp)
		if s.Cond != nil {
			if err := c.genCondJump(s.Cond, endLbl, false); err != nil {
				return err
			}
		}
		// The loop's own hoist candidacy starts here, after its condition:
		// references in the condition belong to enclosing candidates.
		cand := c.enterHoistLoop(s, lp)
		if s.Body != nil {
			if err := c.genStmt(s.Body); err != nil {
				return err
			}
		}
		c.b.Label(postLbl)
		if s.Post != nil {
			if err := c.genExpr(s.Post); err != nil {
				return err
			}
		}
		c.leaveHoistLoop(cand)
		c.markBackedge(c.b.Jump(vm.JMP, condLbl), s.Body, s)
		c.b.EndLoop()
		c.b.Label(endLbl)
		c.condExit()
		c.popLoop(lc)
		return nil

	case *minic.ReturnStmt:
		if s.X != nil {
			if err := c.genExpr(s.X); err != nil {
				return err
			}
			if c.fn.Ret.Kind == minic.TypePointer && !s.X.Type().IsPointerLike() {
				c.loadUncheckedMeta()
			}
		}
		c.b.Jump(vm.JMP, c.epilogue)
		return nil

	case *minic.BreakStmt:
		c.b.Jump(vm.JMP, c.breakLbl[len(c.breakLbl)-1])
		return nil

	case *minic.ContinueStmt:
		c.b.Jump(vm.JMP, c.contLbl[len(c.contLbl)-1])
		return nil

	default:
		return fmt.Errorf("codegen: unknown statement %T", s)
	}
}

// markBackedge annotates a loop's back-edge jump so the machine can
// count loop iterations — and specifically iterations of "spilled" loops
// (more distinct arrays than segment registers), the dynamic percentage
// the paper's Tables 4 and 7 report.
func (c *compiler) markBackedge(idx int, body minic.Stmt, forStmt *minic.ForStmt) {
	note := vm.NoteLoopBackedge
	if analyzeLoop(body, forStmt, nil).distinct > len(c.segRegs) {
		note = vm.NoteSpilledBackedge
	}
	c.b.Instr(idx).Note = note
}

func (c *compiler) popLoop(lc *loopCtx) {
	c.inLoop--
	c.breakLbl = c.breakLbl[:len(c.breakLbl)-1]
	c.contLbl = c.contLbl[:len(c.contLbl)-1]
	if lc != nil {
		c.loops = c.loops[:len(c.loops)-1]
	}
}

func (c *compiler) genLocalDecl(d *minic.VarDecl) error {
	switch {
	case d.InitStr != "":
		for i := 0; i <= len(d.InitStr); i++ { // include NUL
			v := int32(0)
			if i < len(d.InitStr) {
				v = int32(d.InitStr[i])
			}
			c.b.Emit(vm.Instr{Op: vm.MOV,
				Dst:  vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + int32(i)}),
				Src:  vm.I(v),
				Size: 1,
			})
		}
		return nil

	case d.InitList != nil:
		elem := int32(d.Type.Elem.Size())
		size := accSize(d.Type.Elem)
		for i, e := range d.InitList {
			if err := c.genExpr(e); err != nil {
				return err
			}
			c.b.Emit(vm.Instr{Op: vm.MOV,
				Dst:  vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d] + int32(i)*elem}),
				Src:  vm.R(vm.EAX),
				Size: size,
			})
		}
		return nil

	case d.Init != nil:
		if err := c.genExpr(d.Init); err != nil {
			return err
		}
		if d.Type.Kind == minic.TypePointer && !d.Init.Type().IsPointerLike() {
			c.loadUncheckedMeta()
		}
		c.b.Emit(vm.Instr{Op: vm.MOV, Dst: vm.M(c.slotRef(d, 0)), Src: vm.R(vm.EAX), Size: accSize(d.Type)})
		if d.Type.Kind == minic.TypePointer {
			c.strat.storePointerMeta(c, d)
		}
		return nil

	default:
		// Uninitialised pointer variables get "unchecked" metadata so a
		// stray use cannot confuse the segment machinery.
		if d.Type.Kind == minic.TypePointer {
			c.strat.storeUncheckedPointerMeta(c, d)
		}
		return nil
	}
}
