package codegen

import (
	"fmt"

	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
)

// Affine check consolidation ("affine" pass). The canonical-form hoist
// (hoist.go) only recognizes a[v] where v is the innermost induction
// variable, which leaves every computed index — i*n+k flattened-matrix
// references, strided accesses, cross-loop sums — checked on every
// iteration. This pass closes that gap, CHOP-style: an index that is an
// affine form over a chain of enclosing counted loops
//
//	idx = C + Σ c·iv  + Σ c·w·iv  + Σ c·w[·w']      (w loop-invariant)
//
// is replaced by two convex-hull endpoint checks in a preheader before
// the chain's outermost loop: the minimum and maximum index the whole
// iteration space references. The symbolic algebra lives in
// internal/ir/range.go (ir.Affine / ir.IVRange); this file owns the
// mapping from program variables to symbols and the soundness gates.
//
// Soundness rests on three facts (DESIGN.md §14 gives the full
// argument):
//
//  1. Ring equality. The parser accepts only +, -, * and int casts, all
//     of which the target evaluates mod 2^32 — exactly the image of the
//     int64 form under truncation. So the preheader's endpoint
//     computation produces bit-for-bit the index value the body would
//     compute on the corner iteration, wrap included, and the endpoint
//     check behaves identically to that iteration's own check.
//  2. Confined walk. Guards cap every runtime quantity so the true
//     integer extent (max-min over the iteration box) of the scaled
//     index stays below 2^30 bytes, while arrays are capped at 2^24
//     bytes. An address arc of length < 2^32 - size cannot leave
//     [base, limit) and re-enter, so if both endpoints pass their
//     checks, every intermediate reference was in bounds too.
//  3. Guard justification. A trap guard "w > limit -> trap" is only
//     emitted when w bounds a chain loop whose induction variable
//     carries a term with coefficient >= 1 (directly, or scaled by an
//     already-guarded positive variable): more than limit >= sizeElems
//     iterations walk the reference off the end of the array in steps
//     too small to jump the 2^32-size gap, so the original execution
//     was going to trap as well. Trapping in the preheader preserves
//     the violation verdict, the documented observable — the same
//     contract the canonical hoist already has.
//
// Candidacy is recorded during lowering (noteAffineRef); chain
// formation, parsing, planning and the transform all run at pass time.

const (
	// affineMaxChain caps the loop-chain depth a reference may span.
	affineMaxChain = 4
	// affineMaxTerms caps the parsed form's monomial count.
	affineMaxTerms = 6
	// affineSymBase is where loop-invariant variable symbols start;
	// chain induction variables use symbols 0..affineMaxChain-1.
	affineSymBase = ir.Sym(64)
	// affineGuardMax is the largest runtime guard limit ever emitted.
	affineGuardMax = int64(1) << 26
	// affineSpanMax bounds the scaled extent of the reference footprint
	// (fact 2 above): far below 2^32 - affineMaxArray.
	affineSpanMax = int64(1) << 30
	// affineMaxArray is the largest array the pass will transform for.
	affineMaxArray = int64(1) << 24
)

// affineRef is one lowering-time candidate: a checked direct-array
// reference with a register index, unconditional in every loop of its
// candidate chain.
type affineRef struct {
	d   *minic.VarDecl
	idx minic.Expr
	id  int
	// chain lists the enclosing counted-loop candidates outermost
	// first; the last element is the loop holding the reference.
	chain []*hoistCand
}

// noteAffineRef records a candidate reference during lowering. Gates
// mirror noteHoistRef: direct array, register index, conditional depth
// 0 in the innermost candidate — and depth exactly j at stack distance
// j for every further chain member, so the reference provably executes
// on every iteration of the whole chain.
func (c *compiler) noteAffineRef(d *minic.VarDecl, idx minic.Expr, idxConst int32, idxReg bool, id int) {
	if !c.wantAffine || len(c.hoistCands) == 0 || c.curFn == nil {
		return
	}
	if d == nil || d.Type.Kind != minic.TypeArray {
		return
	}
	if !idxReg || idxConst != 0 || idx == nil {
		return
	}
	var chain []*hoistCand
	for j := 0; j < len(c.hoistCands) && j < affineMaxChain; j++ {
		cand := c.hoistCands[len(c.hoistCands)-1-j]
		if cand.depth != j {
			break
		}
		chain = append([]*hoistCand{cand}, chain...)
	}
	if len(chain) == 0 {
		return
	}
	c.curFn.affineRefs = append(c.curFn.affineRefs, &affineRef{d: d, idx: idx, id: id, chain: chain})
}

// ---------------------------------------------------------------------
// Parsing: index expression -> ir.Affine over chain/invariant symbols.

// parseAffine maps the index expression to an affine form over the
// effective chain eff. Chain induction variables become symbols
// 0..len(eff)-1; any other int scalar that is local and never
// address-taken becomes an invariant symbol (affineSymBase+declKey).
// Whether those variables really are invariant over the chain is
// checked separately (affineInvariantOK). Only +, -, * , unary minus
// and int casts are accepted — the ring-equality discipline.
func (c *compiler) parseAffine(e minic.Expr, eff []*hoistCand) (ir.Affine, map[ir.Sym]*minic.VarDecl, bool) {
	ivSym := make(map[*minic.VarDecl]ir.Sym, len(eff))
	for m, cand := range eff {
		ivSym[cand.cl.v] = ir.Sym(m)
	}
	syms := make(map[ir.Sym]*minic.VarDecl)
	var walk func(e minic.Expr) (ir.Affine, bool)
	walk = func(e minic.Expr) (ir.Affine, bool) {
		// A fully-constant subtree folds to the same int32 the emitted
		// code computes, whatever operators it uses.
		if v, ok := constEval(e); ok {
			return ir.AffineConst(int64(v)), true
		}
		switch e := e.(type) {
		case *minic.VarRef:
			d := e.Decl
			if d == nil || d.Type != minic.Int {
				return ir.Affine{}, false
			}
			if s, ok := ivSym[d]; ok {
				return ir.AffineSym(s), true
			}
			if d.Storage == minic.StorageGlobal || c.addrTaken[d] {
				return ir.Affine{}, false
			}
			s := affineSymBase + ir.Sym(c.declKey(d))
			syms[s] = d
			return ir.AffineSym(s), true
		case *minic.Unary:
			if e.Op != "-" {
				return ir.Affine{}, false
			}
			x, ok := walk(e.X)
			if !ok {
				return ir.Affine{}, false
			}
			return x.MulConst(-1)
		case *minic.Cast:
			if e.To != minic.Int {
				return ir.Affine{}, false
			}
			return walk(e.X)
		case *minic.Binary:
			x, ok := walk(e.X)
			if !ok {
				return ir.Affine{}, false
			}
			y, ok := walk(e.Y)
			if !ok {
				return ir.Affine{}, false
			}
			switch e.Op {
			case "+":
				return x.Add(y)
			case "-":
				return x.Sub(y)
			case "*":
				return x.Mul(y)
			}
			return ir.Affine{}, false
		default:
			return ir.Affine{}, false
		}
	}
	aff, ok := walk(e)
	if !ok || len(aff.Terms) == 0 || len(aff.Terms) > affineMaxTerms {
		return ir.Affine{}, nil, false
	}
	return aff, syms, true
}

// affineChainRect rejects chains whose iteration space is not a box: a
// member bounded by an outer member's induction variable (triangular
// nest). Shrinking the chain past the boundary turns the outer variable
// into an invariant, which is how triangular forms are still served.
func affineChainRect(eff []*hoistCand) bool {
	for i := 1; i < len(eff); i++ {
		hv := eff[i].cl.hiVar
		if hv == nil {
			continue
		}
		for j := 0; j < i; j++ {
			if eff[j].cl.v == hv {
				return false
			}
		}
	}
	return true
}

// affineInvariantOK verifies at pass time that no support variable —
// invariant symbols and the runtime bounds of inner chain members — is
// written (assigned, incremented, or re-declared) anywhere inside the
// effective chain's outermost For statement. Unconfined stores cannot
// reach them (hoistExprSafe admits only scalar and direct-array
// stores), and calls cannot either (support variables are local and
// never address-taken), so a direct write scan is complete.
func (c *compiler) affineInvariantOK(eff []*hoistCand, syms map[ir.Sym]*minic.VarDecl) bool {
	support := make(map[*minic.VarDecl]bool)
	for _, d := range syms {
		support[d] = true
	}
	for _, m := range eff {
		if m.cl.hiVar != nil {
			support[m.cl.hiVar] = true
		}
	}
	if len(support) == 0 {
		return true
	}
	return !affineWrites(eff[0].s, support)
}

func affineWrites(s minic.Stmt, support map[*minic.VarDecl]bool) bool {
	var expr func(e minic.Expr) bool
	expr = func(e minic.Expr) bool {
		switch e := e.(type) {
		case *minic.Assign:
			if vr, ok := e.LHS.(*minic.VarRef); ok && support[vr.Decl] {
				return true
			}
			return expr(e.LHS) || expr(e.RHS)
		case *minic.IncDec:
			if vr, ok := e.X.(*minic.VarRef); ok && support[vr.Decl] {
				return true
			}
			return expr(e.X)
		case *minic.Unary:
			return expr(e.X)
		case *minic.Cast:
			return expr(e.X)
		case *minic.Binary:
			return expr(e.X) || expr(e.Y)
		case *minic.Index:
			return expr(e.Base) || expr(e.Index)
		case *minic.Call:
			for _, a := range e.Args {
				if expr(a) {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	var stmt func(s minic.Stmt) bool
	stmt = func(s minic.Stmt) bool {
		switch s := s.(type) {
		case *minic.BlockStmt:
			for _, sub := range s.Stmts {
				if stmt(sub) {
					return true
				}
			}
			return false
		case *minic.DeclStmt:
			for _, d := range s.Decls {
				// Re-declaring a support variable inside the chain means
				// its preheader-time slot value is not the body's value.
				if support[d] {
					return true
				}
				if d.Init != nil && expr(d.Init) {
					return true
				}
				for _, e := range d.InitList {
					if expr(e) {
						return true
					}
				}
			}
			return false
		case *minic.ExprStmt:
			return expr(s.X)
		case *minic.IfStmt:
			return expr(s.Cond) || (s.Then != nil && stmt(s.Then)) || (s.Else != nil && stmt(s.Else))
		case *minic.WhileStmt:
			return expr(s.Cond) || (s.Body != nil && stmt(s.Body))
		case *minic.ForStmt:
			return (s.Init != nil && stmt(s.Init)) ||
				(s.Cond != nil && expr(s.Cond)) ||
				(s.Post != nil && expr(s.Post)) ||
				(s.Body != nil && stmt(s.Body))
		case *minic.ReturnStmt:
			return s.X != nil && expr(s.X)
		default:
			return false
		}
	}
	return s != nil && stmt(s)
}

// ---------------------------------------------------------------------
// Planning: affine form -> endpoint emission plan with guards.

// affRunTerm is one runtime contribution to an endpoint: load a, minus
// one when sub1, times [b], times coeff, accumulate. coeff is applied
// mod 2^32 (ring equality makes truncation exact, not lossy).
type affRunTerm struct {
	a     *minic.VarDecl
	sub1  bool
	b     *minic.VarDecl
	coeff int64
}

// affinePlan is everything applyAffine needs to emit one group's
// preheader.
type affinePlan struct {
	d     *minic.VarDecl
	eff   []*hoistCand
	empty bool // a const-bound chain member runs zero times: checks are dead
	// Endpoint computations: constant part plus runtime terms.
	maxConst, minConst int64
	maxTerms, minTerms []affRunTerm
	// guards are the runtime variables capped at limit before the
	// endpoints are computed, in justification-dependency order.
	guards []*minic.VarDecl
	limit  int64
}

// affAdd / affMul are int64 arithmetic with overflow detection (the
// planning-time analog of ir's budget-checked helpers).
func affAdd(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func affMul(a, b int64) (int64, bool) {
	p := a * b
	if a != 0 && p/a != b {
		return 0, false
	}
	return p, true
}

// extent pieces: worst-case contribution of one term to the footprint
// extent, as a function of the guard limit T.
type affExtent struct {
	c    int64 // scale (always >= 0)
	lo   int64 // runtime iv low bound (kinds 1 and 2)
	kind int   // 0: constant c; 1: c*(T-lo); 2: c*T*(T-lo); 3: c*T
}

func (x affExtent) eval(t int64) (int64, bool) {
	switch x.kind {
	case 0:
		return x.c, true
	case 1:
		return affMul(x.c, t-x.lo)
	case 2:
		v, ok := affMul(t, t-x.lo)
		if !ok {
			return 0, false
		}
		return affMul(x.c, v)
	default:
		return affMul(x.c, t)
	}
}

// planAffine classifies the form's terms against the effective chain
// and produces the emission plan, or fails (the caller then shrinks the
// chain or leaves the per-iteration checks — always a safe fallback).
func (c *compiler) planAffine(d *minic.VarDecl, eff []*hoistCand, aff ir.Affine, syms map[ir.Sym]*minic.VarDecl) (*affinePlan, bool) {
	elem := int64(d.Type.Elem.Size())
	size := int64(d.Type.Size())
	if elem <= 0 || size > affineMaxArray {
		return nil, false
	}
	sizeElems := size / elem
	p := &affinePlan{d: d, eff: eff}

	// Induction-variable value ranges, via the ir domain.
	rngs := make([]ir.IVRange, len(eff))
	for m, cand := range eff {
		r := ir.IVRange{Lo: int64(cand.cl.lo), HiSym: ir.NoSym, Incl: cand.cl.incl}
		if cand.cl.hiVar != nil {
			r.HiSym = ir.Sym(m)
		} else {
			r.HiConst = int64(cand.cl.hiConst)
			if r.Empty() {
				p.empty = true
			}
		}
		rngs[m] = r
	}
	if p.empty {
		return p, true // dead references: delete checks, no preheader
	}

	isIv := func(s ir.Sym) bool { return s >= 0 && int(s) < len(eff) }
	runtimeOf := func(m int) *minic.VarDecl { return eff[m].cl.hiVar }

	p.maxConst, p.minConst = aff.Const, aff.Const
	signOf := make([]int, len(eff))      // per-iv effective term sign
	constCoeff := make([]bool, len(eff)) // iv has a const-coeff term >= 1
	varCoeffOf := make([][]*minic.VarDecl, len(eff))
	var extents []affExtent
	var guards []*minic.VarDecl
	guarded := make(map[*minic.VarDecl]bool)
	needGuard := func(v *minic.VarDecl) {
		if !guarded[v] {
			guarded[v] = true
			guards = append(guards, v)
		}
	}
	addConst := func(dst *int64, v int64) bool {
		s, ok := affAdd(*dst, v)
		if !ok {
			return false
		}
		*dst = s
		return true
	}
	haveIv := false

	for _, t := range aff.Terms {
		sign := 1
		if t.Coeff < 0 {
			sign = -1
		}
		switch {
		case isIv(t.X) && t.Y == ir.NoSym:
			// c * iv
			m := int(t.X)
			haveIv = true
			if signOf[m] != 0 && signOf[m] != sign {
				return nil, false // mixed directions: corners not achievable
			}
			signOf[m] = sign
			r := rngs[m]
			if r.HiSym != ir.NoSym {
				if t.Coeff < 1 {
					return nil, false
				}
				constCoeff[m] = true
				p.maxTerms = append(p.maxTerms, affRunTerm{a: runtimeOf(m), sub1: !r.Incl, coeff: t.Coeff})
				v, ok := affMul(t.Coeff, r.Lo)
				if !ok || !addConst(&p.minConst, v) {
					return nil, false
				}
				if t.Coeff > affineSpanMax {
					return nil, false
				}
				needGuard(runtimeOf(m))
				extents = append(extents, affExtent{c: t.Coeff, lo: r.Lo, kind: 1})
			} else {
				iv, _ := r.ConstRange()
				up, dn := iv.Hi, iv.Lo
				if t.Coeff < 0 {
					up, dn = iv.Lo, iv.Hi
				}
				vu, ok1 := affMul(t.Coeff, up)
				vd, ok2 := affMul(t.Coeff, dn)
				if !ok1 || !ok2 || !addConst(&p.maxConst, vu) || !addConst(&p.minConst, vd) {
					return nil, false
				}
				span, ok := affMul(abs64(t.Coeff), iv.Hi-iv.Lo)
				if !ok {
					return nil, false
				}
				extents = append(extents, affExtent{c: span, kind: 0})
			}

		case isIv(t.X) && isIv(t.Y):
			return nil, false // iv*iv: outside the discipline

		case isIv(t.X) && t.Y != ir.NoSym:
			// c * w * iv with w loop-invariant. w must be provably
			// positive: the runtime bound of a chain member whose low
			// bound is >= 0, so its skip guard establishes w >= 1.
			m := int(t.X)
			w := syms[t.Y]
			if w == nil {
				return nil, false
			}
			haveIv = true
			positive := false
			for _, cand := range eff {
				if cand.cl.hiVar == w && int64(cand.cl.lo) >= 0 {
					positive = true
					break
				}
			}
			if !positive {
				return nil, false
			}
			if signOf[m] != 0 && signOf[m] != sign {
				return nil, false
			}
			signOf[m] = sign
			r := rngs[m]
			if r.HiSym != ir.NoSym {
				if t.Coeff < 1 {
					return nil, false
				}
				varCoeffOf[m] = append(varCoeffOf[m], w)
				p.maxTerms = append(p.maxTerms, affRunTerm{a: runtimeOf(m), sub1: !r.Incl, b: w, coeff: t.Coeff})
				if r.Lo != 0 {
					v, ok := affMul(t.Coeff, r.Lo)
					if !ok {
						return nil, false
					}
					p.minTerms = append(p.minTerms, affRunTerm{a: w, coeff: v})
				}
				needGuard(w)
				needGuard(runtimeOf(m))
				extents = append(extents, affExtent{c: t.Coeff, lo: r.Lo, kind: 2})
			} else {
				iv, _ := r.ConstRange()
				up, dn := iv.Hi, iv.Lo
				if t.Coeff < 0 {
					up, dn = iv.Lo, iv.Hi
				}
				cu, ok1 := affMul(t.Coeff, up)
				cd, ok2 := affMul(t.Coeff, dn)
				if !ok1 || !ok2 {
					return nil, false
				}
				if cu != 0 {
					p.maxTerms = append(p.maxTerms, affRunTerm{a: w, coeff: cu})
				}
				if cd != 0 {
					p.minTerms = append(p.minTerms, affRunTerm{a: w, coeff: cd})
				}
				span, ok := affMul(abs64(t.Coeff), iv.Hi-iv.Lo)
				if !ok {
					return nil, false
				}
				needGuard(w)
				extents = append(extents, affExtent{c: span, kind: 3})
			}

		case t.Y == ir.NoSym:
			// c * w: invariant, identical in both endpoints, no extent.
			w := syms[t.X]
			if w == nil {
				return nil, false
			}
			p.maxTerms = append(p.maxTerms, affRunTerm{a: w, coeff: t.Coeff})
			p.minTerms = append(p.minTerms, affRunTerm{a: w, coeff: t.Coeff})

		default:
			// c * w * w': invariant product.
			w1, w2 := syms[t.X], syms[t.Y]
			if w1 == nil || w2 == nil {
				return nil, false
			}
			p.maxTerms = append(p.maxTerms, affRunTerm{a: w1, b: w2, coeff: t.Coeff})
			p.minTerms = append(p.minTerms, affRunTerm{a: w1, b: w2, coeff: t.Coeff})
		}
	}
	if !haveIv {
		return nil, false // pure-invariant index: rce territory, not ours
	}

	// Guard justification (fact 3). J1: the variable bounds a member
	// whose iv has a const-coeff term. J2: it bounds a member whose iv
	// has a var-coeff term scaled by an already-J1-justified variable.
	just := make(map[*minic.VarDecl]int64) // justified guard -> required floor for limit
	improve := func(v *minic.VarDecl, lo int64) {
		floor := lo + sizeElems
		if old, ok := just[v]; !ok || floor < old {
			just[v] = floor
		}
	}
	for m, cand := range eff {
		if cand.cl.hiVar == nil || !constCoeff[m] {
			continue
		}
		improve(cand.cl.hiVar, int64(cand.cl.lo))
	}
	for m, cand := range eff {
		if cand.cl.hiVar == nil {
			continue
		}
		for _, w := range varCoeffOf[m] {
			if _, ok := just[w]; ok {
				improve(cand.cl.hiVar, int64(cand.cl.lo))
			}
		}
	}
	floor := int64(1)
	for _, g := range guards {
		f, ok := just[g]
		if !ok {
			return nil, false // unjustifiable guard: bail, keep body checks
		}
		if f > floor {
			floor = f
		}
	}
	// Emission order: J2-justified guards rely on their scale variable
	// having been capped first. Justification only ever chains one step
	// (J2's w is J1), so a stable partition suffices.
	ordered := make([]*minic.VarDecl, 0, len(guards))
	for _, g := range guards {
		if isJ1(g, eff, constCoeff) {
			ordered = append(ordered, g)
		}
	}
	for _, g := range guards {
		if !isJ1(g, eff, constCoeff) {
			ordered = append(ordered, g)
		}
	}
	p.guards = ordered

	// Pick the largest limit within budget: extent(limit)*elem must stay
	// under affineSpanMax (fact 2). Monotone in limit -> binary search.
	extOK := func(t int64) bool {
		sum := int64(0)
		for _, x := range extents {
			v, ok := x.eval(t)
			if !ok {
				return false
			}
			if sum, ok = affAdd(sum, v); !ok {
				return false
			}
		}
		s, ok := affMul(sum, elem)
		return ok && s <= affineSpanMax
	}
	if len(p.guards) == 0 {
		if !extOK(0) {
			return nil, false
		}
		p.limit = 0
		return p, true
	}
	lo, hi := floor, affineGuardMax
	if lo > hi || !extOK(lo) {
		return nil, false // can't cap tightly enough to stay sound
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if extOK(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	p.limit = lo
	return p, true
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func isJ1(g *minic.VarDecl, eff []*hoistCand, constCoeff []bool) bool {
	for m, cand := range eff {
		if cand.cl.hiVar == g && constCoeff[m] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// The transform.

type affinePass struct{}

func (affinePass) Name() string { return "affine" }

func (affinePass) run(c *compiler, m *ir.Module) error {
	c.stats[StatChecksAffine] += 0 // the key is present whenever the pass ran
	for _, fs := range c.fns {
		if len(fs.affineRefs) == 0 {
			continue
		}
		c.affineFunc(fs)
	}
	return nil
}

// affineGroup collects the checks covered by one endpoint pair.
type affineGroup struct {
	plan *affinePlan
	ids  []int
}

func (c *compiler) affineFunc(fs *fnState) {
	c.fn = fs.fn
	c.frameOff = fs.frameOff

	g := fs.frag.BuildCFG()
	dom := g.Dominators()
	headBlock := make(map[int]*ir.Block)
	for _, blk := range fs.frag.Blocks {
		for i := range blk.Instrs {
			if id := blk.Instrs[i].CheckID; id != 0 && headBlock[id] == nil {
				headBlock[id] = blk
			}
		}
	}

	groups := make(map[string]*affineGroup)
	var order []string
	for _, ref := range fs.affineRefs {
		if c.deadChecks[ref.id] {
			continue // rce or hoist already removed it
		}
		hb := headBlock[ref.id]
		if hb == nil {
			continue
		}
		// Longest workable chain suffix wins: a failed parse or plan
		// retries with outer members demoted to invariants (which is
		// how triangular nests and loop-carried products are served).
		var plan *affinePlan
		var start int
		for start = 0; start < len(ref.chain); start++ {
			eff := ref.chain[start:]
			if !affineChainRect(eff) {
				continue
			}
			// CFG restatement of the depth==j chain construction: the
			// check block dominates the innermost latch (it executes on
			// every innermost iteration), and each member's loop header
			// dominates the enclosing member's latch (the nest is
			// perfect: the inner loop runs on every outer iteration).
			// Zero-trip inner loops are no escape hatch — the skip
			// guards (runtime bounds) and the empty-plan path (constant
			// bounds) handle them — and loopBodySafe has already
			// rejected break/continue/return anywhere in the nest, so
			// once entered the whole iteration box is traversed unless
			// a trap cuts it short (in which case the original program
			// reports a violation too).
			domOK := true
			for mi, m := range eff {
				ld := dom[m.loop.Latch]
				if ld == nil {
					domOK = false
					break
				}
				if mi == len(eff)-1 {
					if !ld[hb] {
						domOK = false
						break
					}
				} else if !ld[eff[mi+1].loop.Header] {
					domOK = false
					break
				}
			}
			if !domOK {
				continue
			}
			aff, syms, ok := c.parseAffine(ref.idx, eff)
			if !ok {
				continue
			}
			pl, ok := c.planAffine(ref.d, eff, aff, syms)
			if !ok {
				continue
			}
			if !pl.empty && !c.affineInvariantOK(eff, syms) {
				continue
			}
			plan = pl
			break
		}
		if plan == nil {
			continue
		}
		key := fmt.Sprintf("%p|%d|%d|%s", ref.chain[len(ref.chain)-1], start,
			c.declKey(ref.d), affinePlanKey(plan))
		gr, ok := groups[key]
		if !ok {
			gr = &affineGroup{plan: plan}
			groups[key] = gr
			order = append(order, key)
		}
		gr.ids = append(gr.ids, ref.id)
	}
	for _, key := range order {
		c.applyAffine(fs, groups[key])
	}
}

// affinePlanKey renders the endpoint computation canonically so refs
// covered by the same endpoints share one preheader pair.
func affinePlanKey(p *affinePlan) string {
	s := fmt.Sprintf("%d|%d", p.maxConst, p.minConst)
	for _, t := range p.maxTerms {
		s += fmt.Sprintf("|M%p:%v:%p:%d", t.a, t.sub1, t.b, t.coeff)
	}
	for _, t := range p.minTerms {
		s += fmt.Sprintf("|m%p:%v:%p:%d", t.a, t.sub1, t.b, t.coeff)
	}
	return s
}

func (c *compiler) applyAffine(fs *fnState, gr *affineGroup) {
	p := gr.plan
	removed := make(map[int]bool, len(gr.ids))
	for _, id := range gr.ids {
		removed[id] = true
	}
	for _, blk := range fs.frag.Blocks {
		kept := blk.Instrs[:0]
		for _, iin := range blk.Instrs {
			if iin.CheckID != 0 && removed[iin.CheckID] {
				continue
			}
			kept = append(kept, iin)
		}
		blk.Instrs = kept
	}
	fs.frag.Compact()
	for id := range removed {
		c.deadChecks[id] = true
	}
	c.stats[StatSWChecks] -= uint64(len(removed))
	c.stats[StatChecksAffine] += uint64(len(removed))

	if p.empty {
		return
	}

	d := p.d
	elem := int32(d.Type.Elem.Size())
	blocks := c.b.Detour(func() {
		// Zero-trip skips: one per runtime-bound chain member. Passing
		// them also establishes bound > lo for the positivity and
		// justification arguments.
		skip := ""
		for _, m := range p.eff {
			cl := m.cl
			if cl.hiVar == nil {
				continue
			}
			if skip == "" {
				skip = c.lbl("ask")
			}
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(c.slotRef(cl.hiVar, 0)))
			c.b.Op(vm.CMP, vm.R(vm.EAX), vm.I(cl.lo))
			if cl.incl {
				c.b.Jump(vm.JL, skip)
			} else {
				c.b.Jump(vm.JLE, skip)
			}
		}
		// Trap guards: each capped variable that exceeds the limit
		// proves the original execution walks off the array, so the
		// verdict is preserved (DESIGN.md §14).
		for _, gv := range p.guards {
			c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(c.slotRef(gv, 0)))
			c.b.Op(vm.CMP, vm.R(vm.EAX), vm.I(int32(p.limit)))
			c.b.Jump(vm.JG, "__bounds_trap")
		}
		// Endpoints. int32 truncation of the folded constants is the
		// mod-2^32 ring map — it reproduces the body's own wrap exactly
		// rather than losing information.
		endpoint := func(constPart int64, terms []affRunTerm) {
			c.b.Op(vm.MOV, vm.R(vm.EBX), vm.I(int32(uint32(uint64(constPart)))))
			for _, t := range terms {
				c.b.Op(vm.MOV, vm.R(vm.EAX), vm.M(c.slotRef(t.a, 0)))
				if t.sub1 {
					c.b.Op(vm.SUB, vm.R(vm.EAX), vm.I(1))
				}
				if t.b != nil {
					c.b.Op(vm.IMUL, vm.R(vm.EAX), vm.M(c.slotRef(t.b, 0)))
				}
				if t.coeff != 1 {
					c.b.Op(vm.IMUL, vm.R(vm.EAX), vm.I(int32(uint32(uint64(t.coeff)))))
				}
				c.b.Op(vm.ADD, vm.R(vm.EBX), vm.R(vm.EAX))
			}
			c.scaleReg(vm.EBX, elem)
			if d.Storage == minic.StorageGlobal {
				c.b.Op(vm.ADD, vm.R(vm.EBX), vm.I(int32(d.Addr)))
			} else {
				c.b.Op(vm.LEA, vm.R(vm.EAX), vm.M(vm.MemRef{Seg: c.stackSeg, Base: vm.EBP, HasBase: true, Disp: c.frameOff[d]}))
				c.b.Op(vm.ADD, vm.R(vm.EBX), vm.R(vm.EAX))
			}
			c.emitCheckForDecl(vm.EBX, d)
		}
		endpoint(p.maxConst, p.maxTerms)
		endpoint(p.minConst, p.minTerms)
		if skip != "" {
			c.b.Label(skip)
		}
	})
	fs.frag.InsertBefore(p.eff[0].loop.Header, blocks)
	// The preheader executes inside every loop enclosing the chain.
	for lp := p.eff[0].loop.Parent; lp != nil; lp = lp.Parent {
		lp.Blocks = append(lp.Blocks, blocks...)
	}
}
