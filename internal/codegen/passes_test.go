package codegen

import (
	"strings"
	"testing"

	"cash/internal/minic"
	"cash/internal/vm"
	"cash/internal/x86seg"
)

// mustParse parses and type-checks a test program.
func mustParse(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := minic.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog
}

// --- Satellite 1: configuration validation -------------------------------

func TestConfigValidation(t *testing.T) {
	src := "int main() { return 0; }"
	prog := mustParse(t, src)
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the expected error; "" means valid
	}{
		{"missing mode", Config{}, "missing mode"},
		{"unknown mode", Config{Mode: vm.Mode(99)}, "unknown mode"},
		{"duplicate segreg", Config{Mode: vm.ModeCash,
			SegRegs: []x86seg.SegReg{x86seg.ES, x86seg.ES}}, "duplicate segment register"},
		{"ss not last", Config{Mode: vm.ModeCash,
			SegRegs: []x86seg.SegReg{x86seg.SS, x86seg.ES}}, "SS must be the last"},
		{"cs rejected", Config{Mode: vm.ModeCash,
			SegRegs: []x86seg.SegReg{x86seg.CS}}, "cannot hold array segments"},
		{"unknown pass", Config{Mode: vm.ModeBCC, Passes: []string{"vectorize"}}, "unknown pass"},
		{"duplicate pass", Config{Mode: vm.ModeBCC, Passes: []string{"rce", "rce"}}, "duplicate pass"},
		{"ss last ok", Config{Mode: vm.ModeCash,
			SegRegs: []x86seg.SegReg{x86seg.ES, x86seg.FS, x86seg.GS, x86seg.SS}}, ""},
		{"passes ok", Config{Mode: vm.ModeBCC, Passes: []string{"hoist", "rce"}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(prog, tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted (want error containing %q)", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// --- Pass behavior -------------------------------------------------------

// dupReadSrc reads a[j] twice with no intervening write: the second
// check is dominated-redundant. The loop keeps the checks in a checked
// region under Cash too (checks only instrumented inside loops).
const dupReadSrc = `
int a[8];
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 8; i++) {
		s = s + a[i];
		s = s + a[i];
	}
	printi(s);
	return 0;
}
`

func TestRCEEliminatesDuplicateRead(t *testing.T) {
	off := compile(t, dupReadSrc, Config{Mode: vm.ModeBCC})
	on := compile(t, dupReadSrc, Config{Mode: vm.ModeBCC, Passes: []string{"rce"}})
	if on.Stats[StatChecksElim] == 0 {
		t.Fatal("rce eliminated nothing on a program with a duplicate read")
	}
	if on.Stats[StatSWChecks] >= off.Stats[StatSWChecks] {
		t.Fatalf("static sw checks not reduced: %d -> %d",
			off.Stats[StatSWChecks], on.Stats[StatSWChecks])
	}
	resOff := mustRunMode(t, dupReadSrc, Config{Mode: vm.ModeBCC})
	resOn := mustRunMode(t, dupReadSrc, Config{Mode: vm.ModeBCC, Passes: []string{"rce"}})
	if len(resOff.Output) != len(resOn.Output) || resOff.Output[0] != resOn.Output[0] {
		t.Fatalf("output changed: %v vs %v", resOff.Output, resOn.Output)
	}
	if resOn.Stats.SWChecks >= resOff.Stats.SWChecks {
		t.Fatalf("dynamic sw checks not reduced: %d -> %d",
			resOff.Stats.SWChecks, resOn.Stats.SWChecks)
	}
	if resOn.Cycles >= resOff.Cycles {
		t.Fatalf("cycles not reduced: %d -> %d", resOff.Cycles, resOn.Cycles)
	}
}

// hoistSrc is a canonical counted loop over one array: hoist replaces
// the per-iteration check with two preheader endpoint checks.
const hoistSrc = `
int a[100];
int main() {
	int i;
	for (i = 0; i < 100; i++) {
		a[i] = i;
	}
	printi(a[99]);
	return 0;
}
`

func TestHoistMovesLoopChecks(t *testing.T) {
	off := compile(t, hoistSrc, Config{Mode: vm.ModeBCC})
	on := compile(t, hoistSrc, Config{Mode: vm.ModeBCC, Passes: []string{"hoist"}})
	if on.Stats[StatChecksHoisted] == 0 {
		t.Fatal("hoist moved nothing on a canonical counted loop")
	}
	resOff := mustRunMode(t, hoistSrc, Config{Mode: vm.ModeBCC})
	resOn := mustRunMode(t, hoistSrc, Config{Mode: vm.ModeBCC, Passes: []string{"hoist"}})
	if resOff.Output[0] != resOn.Output[0] {
		t.Fatalf("output changed: %v vs %v", resOff.Output, resOn.Output)
	}
	if resOn.Stats.SWChecks >= resOff.Stats.SWChecks {
		t.Fatalf("dynamic sw checks not reduced: %d -> %d",
			resOff.Stats.SWChecks, resOn.Stats.SWChecks)
	}
	if resOn.Cycles >= resOff.Cycles {
		t.Fatalf("cycles not reduced: %d -> %d", resOff.Cycles, resOn.Cycles)
	}
	// Stat keys are additive: the stat appears only when its pass ran.
	if _, ok := off.Stats[StatChecksHoisted]; ok {
		t.Error("sw_checks_hoisted present without the hoist pass")
	}
}

// hoistViolationSrc walks past the end of the array; hoisting must not
// lose the violation (it may trap earlier, at the preheader).
const hoistViolationSrc = `
int a[10];
int main() {
	int i;
	for (i = 0; i < 20; i++) {
		a[i] = i;
	}
	return 0;
}
`

func TestHoistPreservesViolation(t *testing.T) {
	for _, passes := range [][]string{nil, {"hoist"}, {"rce", "hoist"}} {
		_, err := runMode(t, hoistViolationSrc, Config{Mode: vm.ModeBCC, Passes: passes})
		f, ok := err.(*vm.Fault)
		if !ok || !f.IsBoundViolation() {
			t.Fatalf("passes=%v: want bound violation, got %v", passes, err)
		}
	}
}

// TestPassesByteIdenticalWhenOff pins the tentpole property directly:
// Compile with Passes == nil must reproduce the exact instruction stream
// of the historical direct emitter (also pinned transitively by every
// golden test, but this checks a nontrivial program in-place).
func TestPassesByteIdenticalWhenOff(t *testing.T) {
	for _, mode := range allModes {
		a := compile(t, dupReadSrc, Config{Mode: mode})
		b := compile(t, dupReadSrc, Config{Mode: mode, Passes: nil})
		if len(a.Instrs) != len(b.Instrs) {
			t.Fatalf("%v: instruction count differs", mode)
		}
		for i := range a.Instrs {
			if a.Instrs[i] != b.Instrs[i] {
				t.Fatalf("%v: instr %d differs: %v vs %v", mode, i, a.Instrs[i], b.Instrs[i])
			}
		}
	}
}

// TestPassesUnderCash checks the passes compose with segment-register
// allocation: spilled arrays keep software checks, and those checks are
// still optimizable.
func TestPassesUnderCash(t *testing.T) {
	src := `
int a[16];
int b[16];
int c[16];
int d[16];
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 16; i++) {
		s = s + a[i] + b[i] + c[i] + d[i];
	}
	printi(s);
	return 0;
}
`
	cfg := Config{Mode: vm.ModeCash, SegRegs: DefaultSegRegs[:2]}
	off := mustRunMode(t, src, cfg)
	cfgOn := cfg
	cfgOn.Passes = []string{"rce", "hoist"}
	on := mustRunMode(t, src, cfgOn)
	if off.Output[0] != on.Output[0] {
		t.Fatalf("output changed: %v vs %v", off.Output, on.Output)
	}
	if on.Stats.SWChecks > off.Stats.SWChecks {
		t.Fatalf("passes increased dynamic sw checks: %d -> %d",
			off.Stats.SWChecks, on.Stats.SWChecks)
	}
	if on.Stats.HWChecks != off.Stats.HWChecks {
		t.Fatalf("passes changed hardware check count: %d -> %d",
			off.Stats.HWChecks, on.Stats.HWChecks)
	}
}

// TestStatKeysDeterministic pins the -stats print order contract.
func TestStatKeysDeterministic(t *testing.T) {
	keys := StatKeys()
	if len(keys) == 0 {
		t.Fatal("no stat keys")
	}
	seen := make(map[string]bool)
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate stat key %q", k)
		}
		seen[k] = true
	}
	for _, want := range []string{StatHWChecks, StatSWChecks, StatChecksElim, StatChecksHoisted} {
		if !seen[want] {
			t.Errorf("StatKeys missing %q", want)
		}
	}
	again := StatKeys()
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("StatKeys order not deterministic")
		}
	}
}

// TestPassNames pins the public registry: canonical order, no dups.
func TestPassNames(t *testing.T) {
	got := PassNames()
	if len(got) != 4 || got[0] != "rce" || got[1] != "hoist" || got[2] != "affine" || got[3] != "chop" {
		t.Fatalf("PassNames() = %v, want [rce hoist affine chop]", got)
	}
}
