package codegen

import (
	"errors"
	"testing"

	"cash/internal/vm"
)

// Tests for the bound-instruction checker variant (§2 ablation).

const boundKernel = `
int a[32];
int b[32];
void main() {
	int s = 0;
	for (int r = 0; r < 50; r++) {
		for (int i = 0; i < 32; i++) a[i] = i * r;
		for (int i = 0; i < 32; i++) s += a[i] + b[i];
	}
	printi(s);
}`

func TestBoundInstrSameOutput(t *testing.T) {
	seqRes := mustRunMode(t, boundKernel, Config{Mode: vm.ModeBCC})
	bndRes := mustRunMode(t, boundKernel, Config{Mode: vm.ModeBCC, UseBoundInstr: true})
	if seqRes.Output[0] != bndRes.Output[0] {
		t.Fatalf("outputs differ: %v vs %v", seqRes.Output, bndRes.Output)
	}
	if bndRes.Stats.BoundInstrs == 0 {
		t.Fatal("bound variant must execute bound instructions")
	}
	if seqRes.Stats.BoundInstrs != 0 {
		t.Fatal("sequence variant must not execute bound instructions")
	}
	// Both variants perform the same number of logical checks.
	if seqRes.Stats.SWChecks != bndRes.Stats.SWChecks {
		t.Fatalf("check counts differ: %d vs %d", seqRes.Stats.SWChecks, bndRes.Stats.SWChecks)
	}
	// §2: bound costs 7 cycles against the 6-cycle sequence, so on a
	// check-dominated kernel the bound variant is slower.
	if bndRes.Cycles <= seqRes.Cycles {
		t.Fatalf("bound (%d cycles) must lose to the sequence (%d cycles)",
			bndRes.Cycles, seqRes.Cycles)
	}
}

func TestBoundInstrDetects(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{name: "global array overflow", src: `
int a[8];
void main() { for (int i = 0; i <= 8; i++) a[i] = i; }`},
		{name: "heap overflow", src: `
void main() {
	int *p = malloc(16);
	for (int i = 0; i < 8; i++) p[i] = i;
}`},
		{name: "underflow", src: `
int a[8];
void main() { for (int i = 0; i < 2; i++) a[i-1] = i; }`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := runMode(t, tt.src, Config{Mode: vm.ModeBCC, UseBoundInstr: true})
			var f *vm.Fault
			if !errors.As(err, &f) || f.Kind != vm.FaultSoftwareCheck {
				t.Fatalf("want bound-instruction violation, got %v", err)
			}
		})
	}
}

func TestBoundInstrCashSpillPath(t *testing.T) {
	// Five arrays against three registers: the spilled arrays check via
	// the info structure; with UseBoundInstr those checks use bound.
	src := `
int a[4]; int b[4]; int c[4]; int d[4]; int e[4];
void main() {
	for (int i = 0; i < 4; i++) {
		a[i] = i; b[i] = i; c[i] = i; d[i] = i; e[i] = i;
	}
	printi(a[0] + e[3]);
}`
	res := mustRunMode(t, src, Config{Mode: vm.ModeCash, UseBoundInstr: true})
	if res.Stats.BoundInstrs == 0 {
		t.Fatal("spilled Cash checks must use bound")
	}
	if res.Stats.HWChecks == 0 {
		t.Fatal("assigned arrays must stay on the hardware path")
	}
}

func TestBoundsPoolDeduplicates(t *testing.T) {
	// Two references to the same global array share one static bounds
	// pair in the data image.
	src := `
int a[8];
void main() {
	for (int i = 0; i < 8; i++) a[i] = i;
	for (int i = 0; i < 8; i++) a[i] += 1;
	printi(a[7]);
}`
	p := compile(t, src, Config{Mode: vm.ModeBCC, UseBoundInstr: true})
	// Count BOUND instructions with distinct displacement targets.
	targets := make(map[int32]bool)
	bounds := 0
	for _, in := range p.Instrs {
		if in.Op == vm.BOUND {
			bounds++
			targets[in.Src.Mem.Disp] = true
		}
	}
	if bounds < 2 {
		t.Fatalf("expected at least 2 bound instructions, got %d", bounds)
	}
	if len(targets) != 1 {
		t.Fatalf("bounds pairs = %d, want 1 (pooled)", len(targets))
	}
}
