package codegen

import (
	"fmt"
	"strings"

	"cash/internal/ir"
	"cash/internal/minic"
	"cash/internal/vm"
)

// Check consolidation ("chop"). Several checked references to the same
// direct array in one straight-line region often share an index core
// and differ only by a constant byte offset — a stencil a[i-1], a[i],
// a[i+1], or repeated constant subscripts. One convex-hull range check
// at the first reference covers them all: widen the first check's
// window so it traps exactly when some member of the group would have,
// then delete the other members. The transform moves the trap to the
// region head, which is observable only in *when* the program dies, not
// in whether it dies or in anything it prints — the same verdict
// contract the hoist and affine passes already rely on — so the region
// rules below forbid everything that could produce output or a
// different fault between the head and the last member.
//
// Soundness of the widened window. Let the members' addresses be
// core+δ_i, the head's be core+δ_h, and the original bounds [lo, hi).
// Some member violates iff core+δ_min < lo or core+δ_max >= hi, and the
// patched head check
//
//	[lo + (δ_h-δ_min), hi + (δ_h-δ_max))
//
// applied to core+δ_h tests exactly that — including under 32-bit
// modular address arithmetic, provided hi < 2^31 (true for both bound
// shapes: globals sit at the bottom of the address space and frame
// bounds are EBP-relative below StackTop = 0x7fff0000) and all deltas
// are small (chopMaxDelta). A wrapped member address always drags
// core+δ_min out of [lo, hi) as well, so the disjunction is preserved.

type chopPass struct{}

func (chopPass) Name() string { return "chop" }

const (
	// chopMaxDelta bounds every member's |δ| so the modular-arithmetic
	// argument above holds with room to spare.
	chopMaxDelta = int64(1) << 24
	// chopMaxDisp bounds the patched frame displacements.
	chopMaxDisp = int32(1) << 24
)

func (chopPass) run(c *compiler, m *ir.Module) error {
	c.stats[StatChecksChop] += 0 // the key is present whenever the pass ran
	if !c.strat.chopDirectArray() {
		return nil
	}
	for _, fs := range c.fns {
		if len(fs.chopRefs) > 0 {
			c.chopFunc(fs)
		}
	}
	return nil
}

// chopRef is the lowering-time shape of one consolidation candidate: a
// checked direct-array reference whose address is core + delta, where
// core renders the variable part of the scaled index canonically (empty
// for constant subscripts) and delta is the constant byte offset.
type chopRef struct {
	id    int
	d     *minic.VarDecl
	core  string
	delta int64
	vars  []*minic.VarDecl // scalar variables core reads
}

// noteChopRef records a candidate during lowering. Only direct-array
// references qualify: their bounds are constants or frame-relative, the
// two shapes the patcher knows how to widen.
func (c *compiler) noteChopRef(d *minic.VarDecl, idx minic.Expr, idxConst int32, idxReg bool, id int) {
	if !c.wantChop || c.curFn == nil || !c.strat.chopDirectArray() {
		return
	}
	if d == nil || d.Type.Kind != minic.TypeArray {
		return
	}
	ref := &chopRef{id: id, d: d}
	if idx == nil || !idxReg {
		// Constant subscript, already scaled into the displacement.
		ref.delta = int64(idxConst)
	} else {
		core, off := peelConstOffset(idx)
		var vars []*minic.VarDecl
		s, ok := c.canonExpr(core, &vars)
		if !ok {
			return
		}
		ref.core = s
		ref.delta = off * int64(d.Type.Elem.Size())
		ref.vars = vars
	}
	if c.curFn.chopRefs == nil {
		c.curFn.chopRefs = make(map[int]*chopRef)
	}
	c.curFn.chopRefs[id] = ref
}

// peelConstOffset strips top-level +/- constant terms off an index
// expression, returning the remaining core and the accumulated offset
// in index units. Addition is associative and commutative modulo 2^32
// and scaling distributes over it, so the emitted address equals
// core*elem + off*elem regardless of the peeled shape.
func peelConstOffset(e minic.Expr) (minic.Expr, int64) {
	var off int64
	for {
		b, ok := e.(*minic.Binary)
		if !ok {
			return e, off
		}
		switch b.Op {
		case "+":
			if v, ok := constEval(b.Y); ok {
				off += int64(v)
				e = b.X
				continue
			}
			if v, ok := constEval(b.X); ok {
				off += int64(v)
				e = b.Y
				continue
			}
		case "-":
			if v, ok := constEval(b.Y); ok {
				off -= int64(v)
				e = b.X
				continue
			}
		}
		return e, off
	}
}

// chopMember is one group member found during the region scan.
type chopMember struct {
	ref    *chopRef
	instrs []*ir.Instr // the member's check sequence, in layout order
}

type chopGroup struct {
	members []chopMember
}

// chopFunc scans one function's layout for straight-line regions,
// groups same-(array, core, scalar-version) members within each region,
// patches each group's head check to the convex hull and deletes the
// other members.
func (c *compiler) chopFunc(fs *fnState) {
	// Frame and global layout, as in rce: what a resolved store can
	// invalidate and what a resolved access can touch.
	var frame []slotRange
	for d, off := range fs.frameOff {
		frame = append(frame, slotRange{off, off + c.slotSize(d.Type), classOf(d), d})
		if d.Type.Kind == minic.TypeArray {
			if ioff, ok := c.localInfo[d]; ok {
				frame = append(frame, slotRange{ioff, ioff + vm.InfoStructSize, slotInfo, d})
			}
		}
	}
	for off := range fs.temps {
		frame = append(frame, slotRange{off, off + 4, slotTemp, nil})
	}
	var globals []slotRange
	for _, g := range c.src.Globals {
		lo := int32(g.Addr)
		globals = append(globals, slotRange{lo, lo + c.slotSize(g.Type), classOf(g), g})
		if ioff, ok := c.gInfo[g]; ok {
			globals = append(globals, slotRange{int32(ioff), int32(ioff) + vm.InfoStructSize, slotInfo, g})
		}
	}
	resolve := func(m vm.MemRef) *slotRange {
		var ranges []slotRange
		switch {
		case m.HasBase && m.Base == vm.EBP && !m.HasIndex:
			ranges = frame
		case !m.HasBase && !m.HasIndex:
			ranges = globals
		default:
			return nil
		}
		for i := range ranges {
			if m.Disp >= ranges[i].lo && m.Disp < ranges[i].hi {
				return &ranges[i]
			}
		}
		return nil
	}

	// Collect every live check's instruction sequence. Ids are unique
	// and a sequence is contiguous in layout (its trap branches end
	// blocks mid-sequence, but the continuation follows immediately).
	checkInstrs := make(map[int][]*ir.Instr)
	for _, blk := range fs.frag.Blocks {
		for i := range blk.Instrs {
			if id := blk.Instrs[i].CheckID; id != 0 {
				checkInstrs[id] = append(checkInstrs[id], &blk.Instrs[i])
			}
		}
	}

	// Region scan. A region is a maximal run of layout-order code with
	// one entry, no observable effects and no other fault sources:
	// broken by labels (join points), branches and calls outside check
	// sequences, faultable arithmetic, and any memory access that can't
	// be proven slot-resolved or array-interior. Resolved stores to
	// scalar and pointer slots stay inside the region but version-bump
	// the variable, so references reading it stop matching earlier ones.
	region := 0
	versions := make(map[*minic.VarDecl]int)
	groups := make(map[string]*chopGroup)
	var order []string

	exactTag := func(in *ir.Instr) bool {
		t, ok := in.Tag.(refTag)
		return ok && t.exact
	}
	breakRegion := func() { region++ }

	prevID := 0
	for _, blk := range fs.frag.Blocks {
		if len(blk.Labels) > 0 {
			breakRegion()
		}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			id := in.CheckID
			if id != 0 {
				// Check sequences hold no stores and trap-only branches;
				// they never break a region. A fresh id at its head may
				// join a group.
				if id != prevID {
					prevID = id
					ref := fs.chopRefs[id]
					if ref == nil || c.deadChecks[id] {
						continue
					}
					var sig strings.Builder
					fmt.Fprintf(&sig, "r%d|d%d|%s", region, c.declKey(ref.d), ref.core)
					for _, v := range ref.vars {
						fmt.Fprintf(&sig, "|v%d=%d", c.declKey(v), versions[v])
					}
					key := sig.String()
					g := groups[key]
					if g == nil {
						g = &chopGroup{}
						groups[key] = g
						order = append(order, key)
					}
					g.members = append(g.members, chopMember{ref: ref, instrs: checkInstrs[id]})
				}
				continue
			}
			prevID = 0
			switch in.Op {
			case vm.CALL, vm.LCALL, vm.HCALL, vm.INT,
				vm.RET, vm.HLT, vm.TRAP, vm.IDIV, vm.IMOD:
				// Output, arbitrary stores, or a possible non-check fault.
				breakRegion()
				continue
			}
			if in.IsBranch() {
				breakRegion()
				continue
			}
			if in.Op == vm.LEA {
				continue // address arithmetic: no memory access
			}
			// Reads must be provably non-faulting: a frame slot (the
			// stack is always mapped), a named global, or a checked
			// array interior. Resolution runs before the tag is
			// consulted — TagMem persists across instructions, so only
			// computed addresses see a fresh tag. (CMP/BOUND mem
			// operands read, as do resolvable RMW destinations, which
			// the store handling below re-examines for write effects.)
			readOK := func(m vm.MemRef) bool {
				if m.HasBase && m.Base == vm.EBP && !m.HasIndex {
					return true
				}
				if !m.HasBase && !m.HasIndex {
					return resolve(m) != nil
				}
				return exactTag(in)
			}
			if in.Src.Kind == vm.KindMem && !readOK(in.Src.Mem) {
				breakRegion()
				continue
			}
			if in.Dst.Kind != vm.KindMem {
				continue
			}
			if in.Op == vm.CMP || in.Op == vm.BOUND {
				if !readOK(in.Dst.Mem) {
					breakRegion()
				}
				continue
			}
			// A store. Slot stores bump the variable's version;
			// array-interior stores (exact tag on a computed address)
			// can't change bounds or index variables; anything else
			// ends the region.
			dm := in.Dst.Mem
			if (dm.HasBase && dm.Base == vm.EBP && !dm.HasIndex) ||
				(!dm.HasBase && !dm.HasIndex) {
				hit := resolve(dm)
				if hit == nil {
					breakRegion()
					continue
				}
				switch hit.class {
				case slotScalar, slotPointer:
					versions[hit.decl]++
				case slotArray, slotTemp, slotInfo:
					// Checked interior / compiler temp: no effect on keys.
				}
				continue
			}
			if !exactTag(in) {
				breakRegion()
			}
		}
	}

	// Consolidate. The head is the group's first member in layout order;
	// its check is widened to the hull and the rest are deleted. Verify
	// shape and guards for the whole group before mutating anything.
	victims := make(map[int]bool)
	for _, key := range order {
		g := groups[key]
		if len(g.members) < 2 {
			continue
		}
		head := g.members[0]
		dMin, dMax := head.ref.delta, head.ref.delta
		ok := true
		for _, m := range g.members {
			if m.ref.delta < -chopMaxDelta || m.ref.delta > chopMaxDelta {
				ok = false
				break
			}
			if m.ref.delta < dMin {
				dMin = m.ref.delta
			}
			if m.ref.delta > dMax {
				dMax = m.ref.delta
			}
		}
		if !ok || dMax-dMin > int64(head.ref.d.Type.Size()) {
			continue
		}
		// Widen by dLo >= 0 below, dHi <= 0 above.
		dLo := head.ref.delta - dMin
		dHi := head.ref.delta - dMax
		if dLo != 0 || dHi != 0 {
			if !c.chopPatch(head.instrs, dLo, dHi) {
				continue
			}
		}
		for _, m := range g.members[1:] {
			victims[m.ref.id] = true
		}
	}
	if len(victims) == 0 {
		return
	}
	for _, blk := range fs.frag.Blocks {
		kept := blk.Instrs[:0]
		for _, in := range blk.Instrs {
			if in.CheckID != 0 && victims[in.CheckID] {
				continue
			}
			kept = append(kept, in)
		}
		blk.Instrs = kept
	}
	fs.frag.Compact()
	for id := range victims {
		c.deadChecks[id] = true
	}
	c.stats[StatSWChecks] -= uint64(len(victims))
	c.stats[StatChecksChop] += uint64(len(victims))
}

// chopPatch widens a direct-array check's window by dLo at the lower
// bound and dHi at the upper, recognising the four shapes the
// strategies emit for direct arrays: the 6-instruction compare sequence
// with constant (global) or LEA frame-relative (local) bounds, the
// pooled BOUND form, and the MPX bndcl/bndcu pairs. Anything else — or
// a patched value outside the guards — reports false and the group is
// left alone.
func (c *compiler) chopPatch(instrs []*ir.Instr, dLo, dHi int64) bool {
	// Both bounds verify before either mutates, so a failed guard never
	// leaves a half-patched check behind.
	patchImms := func(loIn, hiIn *ir.Instr) bool {
		if loIn.Src.Kind != vm.KindImm || hiIn.Src.Kind != vm.KindImm {
			return false
		}
		lo := int64(uint32(loIn.Src.Imm)) + dLo
		hi := int64(uint32(hiIn.Src.Imm)) + dHi
		if lo < 0 || hi < lo || hi >= int64(1)<<31 {
			return false
		}
		loIn.Src.Imm = int32(lo)
		hiIn.Src.Imm = int32(hi)
		return true
	}
	patchDisps := func(loIn, hiIn *ir.Instr) bool {
		for _, in := range []*ir.Instr{loIn, hiIn} {
			if in.Src.Kind != vm.KindMem || !in.Src.Mem.HasBase ||
				in.Src.Mem.Base != vm.EBP || in.Src.Mem.HasIndex {
				return false
			}
		}
		lo := int64(loIn.Src.Mem.Disp) + dLo
		hi := int64(hiIn.Src.Mem.Disp) + dHi
		if lo < int64(-chopMaxDisp) || lo > int64(chopMaxDisp) ||
			hi < int64(-chopMaxDisp) || hi > int64(chopMaxDisp) {
			return false
		}
		loIn.Src.Mem.Disp = int32(lo)
		hiIn.Src.Mem.Disp = int32(hi)
		return true
	}
	isTrapJump := func(in *ir.Instr, op vm.Op) bool {
		return in.Op == op && in.FixupLabel == "__bounds_trap"
	}

	switch {
	case len(instrs) == 1 && instrs[0].Op == vm.BOUND:
		// Pooled constant bounds: point the instruction at a fresh
		// descriptor holding the widened pair.
		in := instrs[0]
		m := in.Src.Mem
		if in.Src.Kind != vm.KindMem || m.HasBase || m.HasIndex || m.Disp < 0 {
			return false
		}
		var pair [2]uint32
		found := false
		for p, at := range c.boundsPool {
			if at == uint32(m.Disp) {
				pair, found = p, true
				break
			}
		}
		if !found {
			return false
		}
		lo := int64(pair[0]) + dLo
		hi := int64(pair[1]) + dHi
		if lo < 0 || hi < lo || hi >= int64(1)<<31 {
			return false
		}
		widened := [2]uint32{uint32(lo), uint32(hi)}
		at, ok := c.boundsPool[widened]
		if !ok {
			at = c.allocData(8, 4)
			c.writeWord(at, widened[0])
			c.writeWord(at+4, widened[1])
			c.boundsPool[widened] = at
		}
		in.Src.Mem.Disp = int32(at)
		return true

	case len(instrs) == 2 && instrs[0].Op == vm.BNDCL && instrs[1].Op == vm.BNDCU:
		// MPX, constant bounds.
		return patchImms(instrs[0], instrs[1])

	case len(instrs) == 4 && instrs[0].Op == vm.LEA &&
		instrs[1].Op == vm.BNDCL && instrs[2].Op == vm.LEA && instrs[3].Op == vm.BNDCU:
		// MPX, frame-relative bounds.
		return patchDisps(instrs[0], instrs[2])

	case len(instrs) == 6 && instrs[1].Op == vm.CMP && instrs[4].Op == vm.CMP &&
		isTrapJump(instrs[2], vm.JB) && isTrapJump(instrs[5], vm.JAE):
		// The classic compare sequence; bounds in instrs[0] and [3].
		switch {
		case instrs[0].Op == vm.MOV && instrs[3].Op == vm.MOV:
			return patchImms(instrs[0], instrs[3])
		case instrs[0].Op == vm.LEA && instrs[3].Op == vm.LEA:
			return patchDisps(instrs[0], instrs[3])
		}
		return false
	}
	return false
}
